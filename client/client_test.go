package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRequestTimeout verifies every request gets a deadline even when the
// caller's context has none: a stalled server fails the call quickly
// instead of hanging.
func TestRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release) // unblock the handler before ts.Close waits on it
	cl := New(ts.URL, WithRequestTimeout(50*time.Millisecond))
	start := time.Now()
	_, _, err := cl.Get(context.Background(), "slow")
	if err == nil {
		t.Fatal("Get against a stalled server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Get took %v, want ≈50ms request timeout", elapsed)
	}
}

// TestContextCancellation verifies the caller's context aborts a request
// mid-flight.
func TestContextCancellation(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release) // unblock the handler before ts.Close waits on it
	cl := New(ts.URL)    // default 30s timeout must not be what fires
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := cl.Put(ctx, "k", []byte("v")); err == nil {
		t.Fatal("Put with cancelled context succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled Put took %v", elapsed)
	}
}

// TestBodyCap verifies the client refuses to slurp an oversized response
// body into memory.
func TestBodyCap(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		chunk := strings.Repeat("x", 1<<20)
		for i := 0; i <= MaxBodyBytes>>20; i++ {
			if _, err := w.Write([]byte(chunk)); err != nil {
				return
			}
		}
	}))
	defer ts.Close()
	cl := New(ts.URL)
	_, _, err := cl.Get(context.Background(), "huge")
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized Get error = %v, want a body-cap error", err)
	}
}
