package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRequestTimeout verifies every request gets a deadline even when the
// caller's context has none: a stalled server fails the call quickly
// instead of hanging.
func TestRequestTimeout(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release) // unblock the handler before ts.Close waits on it
	cl := New(ts.URL, WithRequestTimeout(50*time.Millisecond))
	start := time.Now()
	_, _, err := cl.Get(context.Background(), "slow")
	if err == nil {
		t.Fatal("Get against a stalled server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Get took %v, want ≈50ms request timeout", elapsed)
	}
}

// TestContextCancellation verifies the caller's context aborts a request
// mid-flight.
func TestContextCancellation(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()
	defer close(release) // unblock the handler before ts.Close waits on it
	cl := New(ts.URL)    // default 30s timeout must not be what fires
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := cl.Put(ctx, "k", []byte("v")); err == nil {
		t.Fatal("Put with cancelled context succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled Put took %v", elapsed)
	}
}

// TestBodyCap verifies the client refuses to slurp an oversized response
// body into memory.
func TestBodyCap(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		chunk := strings.Repeat("x", 1<<20)
		for i := 0; i <= MaxBodyBytes>>20; i++ {
			if _, err := w.Write([]byte(chunk)); err != nil {
				return
			}
		}
	}))
	defer ts.Close()
	cl := New(ts.URL)
	_, _, err := cl.Get(context.Background(), "huge")
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized Get error = %v, want a body-cap error", err)
	}
}

// TestWriteRetryBatch verifies that with a retry budget only the
// transiently failed keys of a batch are re-issued, and the merged
// results come back in input order.
func TestWriteRetryBatch(t *testing.T) {
	var attempts int
	var secondBody batchRequest
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode batch request: %v", err)
		}
		attempts++
		var resp batchResponse
		for _, it := range req.Items {
			res := Result{Key: it.Key}
			// First attempt: keys on the "promoting" partition fail.
			if attempts == 1 && strings.HasPrefix(it.Key, "hot-") {
				res.Error = "partition frozen for handover"
			}
			resp.Results = append(resp.Results, res)
		}
		if attempts == 2 {
			secondBody = req
		}
		json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()
	cl := New(ts.URL, WithWriteRetry(2*time.Second))
	items := []Item{
		{Key: "cold-0", Value: []byte("a")},
		{Key: "hot-0", Value: []byte("b")},
		{Key: "cold-1", Value: []byte("c")},
		{Key: "hot-1", Value: []byte("d")},
	}
	res, err := cl.MPut(context.Background(), items)
	if err != nil {
		t.Fatalf("MPut: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("server saw %d attempts, want 2", attempts)
	}
	if len(secondBody.Items) != 2 || secondBody.Items[0].Key != "hot-0" || secondBody.Items[1].Key != "hot-1" {
		t.Fatalf("retry re-sent %+v, want only the two hot keys", secondBody.Items)
	}
	if len(res) != len(items) {
		t.Fatalf("got %d results, want %d", len(res), len(items))
	}
	for i, r := range res {
		if !r.OK() || r.Key != items[i].Key {
			t.Fatalf("result[%d] = %+v, want OK for %q", i, r, items[i].Key)
		}
	}
}

// TestWriteRetryPermanentError verifies non-transient per-key failures
// are returned immediately, not retried.
func TestWriteRetryPermanentError(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		json.NewEncoder(w).Encode(batchResponse{Results: []Result{
			{Key: "k", Error: "value exceeds maximum size"},
		}})
	}))
	defer ts.Close()
	cl := New(ts.URL, WithWriteRetry(2*time.Second))
	res, err := cl.MPut(context.Background(), []Item{{Key: "k", Value: []byte("v")}})
	if err != nil {
		t.Fatalf("MPut: %v", err)
	}
	if attempts != 1 {
		t.Fatalf("server saw %d attempts, want 1 (permanent error must not retry)", attempts)
	}
	if res[0].OK() {
		t.Fatal("permanent error reported as success")
	}
}

// TestWriteRetryBudget verifies a persistently failing transient write
// gives up once the budget is spent instead of retrying forever.
func TestWriteRetryBudget(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		json.NewEncoder(w).Encode(batchResponse{Results: []Result{
			{Key: "k", Error: "no route to partition"},
		}})
	}))
	defer ts.Close()
	cl := New(ts.URL, WithWriteRetry(150*time.Millisecond))
	start := time.Now()
	res, err := cl.MPut(context.Background(), []Item{{Key: "k", Value: []byte("v")}})
	if err != nil {
		t.Fatalf("MPut: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ran %v, want bounded by the 150ms budget", elapsed)
	}
	if attempts < 2 {
		t.Fatalf("server saw %d attempts, want at least one retry", attempts)
	}
	if res[0].OK() {
		t.Fatal("exhausted retry reported success")
	}
}

// TestPutRetry verifies the single-key write path retries a frozen
// partition until it thaws.
func TestPutRetry(t *testing.T) {
	var attempts int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(apiError{Error: "partition frozen for handover"})
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()
	cl := New(ts.URL, WithWriteRetry(5*time.Second))
	if err := cl.Put(context.Background(), "k", []byte("v")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("server saw %d attempts, want 3", attempts)
	}
}
