// Package client is a small Go client for the dbdht HTTP API served by
// internal/server (and cmd/dhtd).  It reuses connections across calls —
// one Client is meant to live for the life of the program — and offers
// batch helpers mapping 1:1 onto the cluster's MPut/MGet/MDelete, which
// fan out across the DHT's groups in parallel server-side.
//
// Every method takes a context.Context: cancel it (or let its deadline
// pass) to abort the request.  Contexts without a deadline get the
// client's per-request timeout (WithRequestTimeout, default 30s), so no
// call can hang on an unresponsive server.  Response bodies are read with
// a hard size cap.
package client
