// Package client is a small Go client for the dbdht HTTP API served by
// internal/server (and cmd/dhtd).  It reuses connections across calls —
// one Client is meant to live for the life of the program — and offers
// batch helpers mapping 1:1 onto the cluster's MPut/MGet/MDelete, which
// fan out across the DHT's groups in parallel server-side.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client talks to one dhtd endpoint.  Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a Client for a base URL such as "http://127.0.0.1:8080".
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		hc: &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// apiError is the server's JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// errorFrom decodes the error body of a non-2xx response.
func errorFrom(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var ae apiError
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		return fmt.Errorf("dhtd: %s (HTTP %d)", ae.Error, resp.StatusCode)
	}
	return fmt.Errorf("dhtd: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

func (c *Client) do(method, path string, body io.Reader, contentType string) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return c.hc.Do(req)
}

// doJSON performs a request with optional JSON body, decoding a JSON
// response into out (if non-nil) and mapping non-2xx statuses to errors.
func (c *Client) doJSON(method, path string, in, out any) error {
	var body io.Reader
	ct := ""
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
		ct = "application/json"
	}
	resp, err := c.do(method, path, body, ct)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return errorFrom(resp)
	}
	defer resp.Body.Close()
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func kvPath(key string) string { return "/v1/kv/" + url.PathEscape(key) }

// Put stores a key/value pair.
func (c *Client) Put(key string, value []byte) error {
	resp, err := c.do(http.MethodPut, kvPath(key), bytes.NewReader(value), "application/octet-stream")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusNoContent {
		return errorFrom(resp)
	}
	resp.Body.Close()
	return nil
}

// Get fetches a key; found is false for absent keys.
func (c *Client) Get(key string) (value []byte, found bool, err error) {
	resp, err := c.do(http.MethodGet, kvPath(key), nil, "")
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, errorFrom(resp)
	}
	defer resp.Body.Close()
	value, err = io.ReadAll(resp.Body)
	return value, err == nil, err
}

// Delete removes a key; found reports whether it existed.
func (c *Client) Delete(key string) (found bool, err error) {
	var out struct {
		Found bool `json:"found"`
	}
	if err := c.doJSON(http.MethodDelete, kvPath(key), nil, &out); err != nil {
		return false, err
	}
	return out.Found, nil
}

// Item is one key/value pair of a batch put.
type Item struct {
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"`
}

// Result is one key's outcome in a batch response; Error is empty on
// success.
type Result struct {
	Key   string `json:"key"`
	Found bool   `json:"found"`
	Value []byte `json:"value,omitempty"`
	Error string `json:"error,omitempty"`
}

// OK reports whether the operation on this key succeeded.
func (r Result) OK() bool { return r.Error == "" }

type batchRequest struct {
	Op    string `json:"op"`
	Items []Item `json:"items"`
}

type batchResponse struct {
	Results []Result `json:"results"`
}

func (c *Client) batch(op string, items []Item) ([]Result, error) {
	var out batchResponse
	if err := c.doJSON(http.MethodPost, "/v1/kv:batch", batchRequest{Op: op, Items: items}, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// MPut stores many pairs in one request; results are parallel to items
// and partial failures are reported per key.
func (c *Client) MPut(items []Item) ([]Result, error) { return c.batch("put", items) }

// MGet fetches many keys in one request.
func (c *Client) MGet(keys []string) ([]Result, error) {
	return c.batch("get", keyItems(keys))
}

// MDelete removes many keys in one request.
func (c *Client) MDelete(keys []string) ([]Result, error) {
	return c.batch("delete", keyItems(keys))
}

func keyItems(keys []string) []Item {
	items := make([]Item, len(keys))
	for i, k := range keys {
		items[i] = Item{Key: k}
	}
	return items
}

// --- admin plane ---

// AddSnode joins one fresh snode and returns its id.
func (c *Client) AddSnode() (int, error) {
	var out struct {
		ID int `json:"id"`
	}
	if err := c.doJSON(http.MethodPost, "/v1/snodes", nil, &out); err != nil {
		return 0, err
	}
	return out.ID, nil
}

// RemoveSnode gracefully withdraws an snode.
func (c *Client) RemoveSnode(id int) error {
	return c.doJSON(http.MethodDelete, fmt.Sprintf("/v1/snodes/%d", id), nil, nil)
}

// CreateVnode enrolls one vnode at the given snode (0 lets the server
// pick the least-loaded snode) and returns the vnode name and group.
func (c *Client) CreateVnode(snode int) (vnode, group string, err error) {
	var out struct {
		Vnode string `json:"vnode"`
		Group string `json:"group"`
	}
	in := struct {
		Snode int `json:"snode"`
	}{Snode: snode}
	if err := c.doJSON(http.MethodPost, "/v1/vnodes", in, &out); err != nil {
		return "", "", err
	}
	return out.Vnode, out.Group, nil
}

// SetEnrollment adjusts an snode's hosted vnode count and returns the
// count after adjustment.
func (c *Client) SetEnrollment(id, target int) (int, error) {
	var out struct {
		Hosted int `json:"hosted"`
	}
	in := struct {
		Target int `json:"target"`
	}{Target: target}
	if err := c.doJSON(http.MethodPut, fmt.Sprintf("/v1/snodes/%d/enrollment", id), in, &out); err != nil {
		return 0, err
	}
	return out.Hosted, nil
}

// --- introspection ---

// SnodeStatus summarizes one live snode.
type SnodeStatus struct {
	ID     int `json:"id"`
	Vnodes int `json:"vnodes"`
	Keys   int `json:"keys"`
}

// VnodeStatus is one vnode's materialized state.
type VnodeStatus struct {
	Name       string `json:"name"`
	Snode      int    `json:"snode"`
	Group      string `json:"group"`
	Level      int    `json:"level"`
	Partitions int    `json:"partitions"`
	Keys       int    `json:"keys"`
}

// Stats mirrors the cluster's aggregated runtime counters.
type Stats struct {
	MsgsIn         int64 `json:"MsgsIn"`
	Forwards       int64 `json:"Forwards"`
	PartitionsSent int64 `json:"PartitionsSent"`
	KeysMoved      int64 `json:"KeysMoved"`
	SplitAlls      int64 `json:"SplitAlls"`
	GroupSplits    int64 `json:"GroupSplits"`
	JoinsLed       int64 `json:"JoinsLed"`
	LeavesLed      int64 `json:"LeavesLed"`
	DataOps        int64 `json:"DataOps"`
	Requeues       int64 `json:"Requeues"`
	Batches        int64 `json:"Batches"`
}

// Status is the GET /v1/status document.
type Status struct {
	Snodes        []SnodeStatus `json:"snodes"`
	Vnodes        []VnodeStatus `json:"vnodes"`
	Groups        int           `json:"groups"`
	Keys          int           `json:"keys"`
	SigmaQv       float64       `json:"sigma_qv"`
	Stats         Stats         `json:"stats"`
	UptimeSeconds float64       `json:"uptime_seconds"`
}

// Status fetches the cluster status snapshot.
func (c *Client) Status() (Status, error) {
	var out Status
	err := c.doJSON(http.MethodGet, "/v1/status", nil, &out)
	return out, err
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics() (string, error) {
	resp, err := c.do(http.MethodGet, "/v1/metrics", nil, "")
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", errorFrom(resp)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}
