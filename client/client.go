package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// MaxBodyBytes caps how much of any response body the client will read.
// It must fit a legal batch response: the server bounds a *request* at
// 8 MiB, but a batch GET of keys whose values were written individually
// can return many 8 MiB values, base64-inflated 4/3× in JSON.  64 MiB
// bounds memory while accommodating realistic batches.
const MaxBodyBytes = 64 << 20

// DefaultRequestTimeout bounds a request whose context has no deadline.
const DefaultRequestTimeout = 30 * time.Second

// Client talks to one dhtd endpoint.  Safe for concurrent use.
type Client struct {
	base        string
	hc          *http.Client
	reqTimeout  time.Duration
	retryBudget time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (transports,
// proxies, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRequestTimeout sets the per-request deadline applied when the
// caller's context has none.  Zero disables the default (the caller's
// context alone governs the request).
func WithRequestTimeout(d time.Duration) Option {
	return func(c *Client) { c.reqTimeout = d }
}

// WithWriteRetry enables automatic retry of transiently failed writes —
// keys landing on a partition that is frozen mid-migration, being
// promoted after its primary crashed, or momentarily unrouted — with
// jittered exponential backoff.  budget bounds the total time spent
// retrying one operation (on top of the first attempt); zero, the
// default, disables retry.  Only the failed keys of a batch are retried;
// puts and deletes are idempotent, so re-issuing a failed key is safe.
func WithWriteRetry(budget time.Duration) Option {
	return func(c *Client) { c.retryBudget = budget }
}

// New returns a Client for a base URL such as "http://127.0.0.1:8080".
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		reqTimeout: DefaultRequestTimeout,
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// apiError is the server's JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// errorFrom decodes the error body of a non-2xx response.
func errorFrom(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var ae apiError
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		return fmt.Errorf("dhtd: %s (HTTP %d)", ae.Error, resp.StatusCode)
	}
	return fmt.Errorf("dhtd: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// reqContext applies the default per-request timeout when ctx carries no
// deadline of its own.
func (c *Client) reqContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok || c.reqTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.reqTimeout)
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, contentType string) (*http.Response, context.CancelFunc, error) {
	rctx, cancel := c.reqContext(ctx)
	req, err := http.NewRequestWithContext(rctx, method, c.base+path, body)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return resp, cancel, nil
}

// readBody drains at most MaxBodyBytes of a response body, erroring if
// the server sends more.
func readBody(resp *http.Response) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(resp.Body, MaxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if len(body) > MaxBodyBytes {
		return nil, fmt.Errorf("dhtd: response body exceeds %d bytes", MaxBodyBytes)
	}
	return body, nil
}

// doJSON performs a request with optional JSON body, decoding a JSON
// response into out (if non-nil) and mapping non-2xx statuses to errors.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	ct := ""
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
		ct = "application/json"
	}
	resp, cancel, err := c.do(ctx, method, path, body, ct)
	if err != nil {
		return err
	}
	defer cancel()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return errorFrom(resp)
	}
	defer resp.Body.Close()
	if out == nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, MaxBodyBytes))
		return nil
	}
	raw, err := readBody(resp)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}

func kvPath(key string) string { return "/v1/kv/" + url.PathEscape(key) }

// Put stores a key/value pair.  With WithWriteRetry set, transient
// failures (partition frozen or promoting) are retried within the
// budget.
func (c *Client) Put(ctx context.Context, key string, value []byte) error {
	return c.retrying(ctx, func() error { return c.putOnce(ctx, key, value) })
}

func (c *Client) putOnce(ctx context.Context, key string, value []byte) error {
	resp, cancel, err := c.do(ctx, http.MethodPut, kvPath(key), bytes.NewReader(value), "application/octet-stream")
	if err != nil {
		return err
	}
	defer cancel()
	if resp.StatusCode != http.StatusNoContent {
		return errorFrom(resp)
	}
	resp.Body.Close()
	return nil
}

// Get fetches a key; found is false for absent keys.
func (c *Client) Get(ctx context.Context, key string) (value []byte, found bool, err error) {
	resp, cancel, err := c.do(ctx, http.MethodGet, kvPath(key), nil, "")
	if err != nil {
		return nil, false, err
	}
	defer cancel()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, MaxBodyBytes))
		resp.Body.Close()
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, errorFrom(resp)
	}
	defer resp.Body.Close()
	value, err = readBody(resp)
	if err != nil {
		return nil, false, err
	}
	return value, true, nil
}

// Delete removes a key; found reports whether it existed.  With
// WithWriteRetry set, transient failures are retried within the budget.
func (c *Client) Delete(ctx context.Context, key string) (found bool, err error) {
	err = c.retrying(ctx, func() error {
		var out struct {
			Found bool `json:"found"`
		}
		if err := c.doJSON(ctx, http.MethodDelete, kvPath(key), nil, &out); err != nil {
			return err
		}
		found = out.Found
		return nil
	})
	return found, err
}

// Item is one key/value pair of a batch put.
type Item struct {
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"`
}

// Result is one key's outcome in a batch response; Error is empty on
// success.
type Result struct {
	Key   string `json:"key"`
	Found bool   `json:"found"`
	Value []byte `json:"value,omitempty"`
	Error string `json:"error,omitempty"`
}

// OK reports whether the operation on this key succeeded.
func (r Result) OK() bool { return r.Error == "" }

type batchRequest struct {
	Op    string `json:"op"`
	Items []Item `json:"items"`
}

type batchResponse struct {
	Results []Result `json:"results"`
}

func (c *Client) batch(ctx context.Context, op string, items []Item) ([]Result, error) {
	var out batchResponse
	if err := c.doJSON(ctx, http.MethodPost, "/v1/kv:batch", batchRequest{Op: op, Items: items}, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// --- write retry ---

const (
	writeRetryBase = 25 * time.Millisecond
	writeRetryCap  = 2 * time.Second
)

// transientWriteError reports whether a write failure is worth retrying:
// the key's partition was frozen for a migration handover, is being
// promoted after a primary crash, or the route to it lapsed — all states
// that resolve on their own within the failover window.  Permanent
// errors (bad request, oversized value) are not retried.
func transientWriteError(msg string) bool {
	for _, s := range [...]string{
		"frozen",
		"no route",
		"no snode",
		"replication aborted",
		"sub-request",
		"timed out",
		"timeout",
		"connection refused",
		"EOF",
	} {
		if strings.Contains(msg, s) {
			return true
		}
	}
	return false
}

// retryBackoff returns the jittered delay before retry attempt n: base
// 25 ms doubling each attempt, capped at 2 s, drawn uniformly from
// [d/2, d] so a herd of clients retrying into the same promoting
// partition does not stay synchronized.
func retryBackoff(attempt int) time.Duration {
	d := writeRetryBase
	for i := 0; i < attempt && d < writeRetryCap; i++ {
		d *= 2
	}
	if d > writeRetryCap {
		d = writeRetryCap
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half+1))
}

// retrying runs op, re-issuing it on transient write failures with
// jittered exponential backoff until it succeeds, the failure turns
// permanent, or the write-retry budget (or caller's context) expires.
func (c *Client) retrying(ctx context.Context, op func() error) error {
	err := op()
	if c.retryBudget <= 0 {
		return err
	}
	deadline := time.Now().Add(c.retryBudget)
	for attempt := 0; err != nil && transientWriteError(err.Error()); attempt++ {
		d := retryBackoff(attempt)
		if time.Now().Add(d).After(deadline) {
			break
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(d):
		}
		err = op()
	}
	return err
}

// writeBatch issues one batch write and, when a retry budget is set,
// re-issues just the transiently failed keys with jittered backoff until
// all succeed or the budget runs out.  Results stay parallel to items.
func (c *Client) writeBatch(ctx context.Context, op string, items []Item) ([]Result, error) {
	results, err := c.batch(ctx, op, items)
	if c.retryBudget <= 0 {
		return results, err
	}
	deadline := time.Now().Add(c.retryBudget)
	for attempt := 0; ; attempt++ {
		var pending []int
		if err != nil {
			if !transientWriteError(err.Error()) {
				return results, err
			}
			pending = make([]int, len(items))
			for i := range pending {
				pending[i] = i
			}
		} else {
			for i, r := range results {
				if !r.OK() && transientWriteError(r.Error) {
					pending = append(pending, i)
				}
			}
		}
		if len(pending) == 0 {
			return results, err
		}
		d := retryBackoff(attempt)
		if time.Now().Add(d).After(deadline) {
			return results, err
		}
		select {
		case <-ctx.Done():
			if err == nil {
				err = ctx.Err()
			}
			return results, err
		case <-time.After(d):
		}
		sub := make([]Item, len(pending))
		for j, i := range pending {
			sub[j] = items[i]
		}
		rres, rerr := c.batch(ctx, op, sub)
		if rerr != nil {
			err = rerr
			continue
		}
		if results == nil {
			results = make([]Result, len(items))
			for i, it := range items {
				results[i] = Result{Key: it.Key, Error: "not attempted"}
			}
		}
		for j, i := range pending {
			if j < len(rres) {
				results[i] = rres[j]
			}
		}
		err = nil
	}
}

// MPut stores many pairs in one request; results are parallel to items
// and partial failures are reported per key.  With WithWriteRetry set,
// transiently failed keys are retried within the budget.
func (c *Client) MPut(ctx context.Context, items []Item) ([]Result, error) {
	return c.writeBatch(ctx, "put", items)
}

// MGet fetches many keys in one request.
func (c *Client) MGet(ctx context.Context, keys []string) ([]Result, error) {
	return c.batch(ctx, "get", keyItems(keys))
}

// MDelete removes many keys in one request.  With WithWriteRetry set,
// transiently failed keys are retried within the budget.
func (c *Client) MDelete(ctx context.Context, keys []string) ([]Result, error) {
	return c.writeBatch(ctx, "delete", keyItems(keys))
}

func keyItems(keys []string) []Item {
	items := make([]Item, len(keys))
	for i, k := range keys {
		items[i] = Item{Key: k}
	}
	return items
}

// --- admin plane ---

// AddSnode joins one fresh snode and returns its id.
func (c *Client) AddSnode(ctx context.Context) (int, error) {
	var out struct {
		ID int `json:"id"`
	}
	if err := c.doJSON(ctx, http.MethodPost, "/v1/snodes", nil, &out); err != nil {
		return 0, err
	}
	return out.ID, nil
}

// RemoveSnode gracefully withdraws an snode.
func (c *Client) RemoveSnode(ctx context.Context, id int) error {
	return c.doJSON(ctx, http.MethodDelete, fmt.Sprintf("/v1/snodes/%d", id), nil, nil)
}

// CreateVnode enrolls one vnode at the given snode (0 lets the server
// pick the least-loaded snode) and returns the vnode name and group.
func (c *Client) CreateVnode(ctx context.Context, snode int) (vnode, group string, err error) {
	var out struct {
		Vnode string `json:"vnode"`
		Group string `json:"group"`
	}
	in := struct {
		Snode int `json:"snode"`
	}{Snode: snode}
	if err := c.doJSON(ctx, http.MethodPost, "/v1/vnodes", in, &out); err != nil {
		return "", "", err
	}
	return out.Vnode, out.Group, nil
}

// SetEnrollment adjusts an snode's hosted vnode count and returns the
// count after adjustment.
func (c *Client) SetEnrollment(ctx context.Context, id, target int) (int, error) {
	var out struct {
		Hosted int `json:"hosted"`
	}
	in := struct {
		Target int `json:"target"`
	}{Target: target}
	if err := c.doJSON(ctx, http.MethodPut, fmt.Sprintf("/v1/snodes/%d/enrollment", id), in, &out); err != nil {
		return 0, err
	}
	return out.Hosted, nil
}

// --- introspection ---

// SnodeStatus summarizes one live snode.
type SnodeStatus struct {
	ID     int `json:"id"`
	Vnodes int `json:"vnodes"`
	Keys   int `json:"keys"`
}

// VnodeStatus is one vnode's materialized state.
type VnodeStatus struct {
	Name       string `json:"name"`
	Snode      int    `json:"snode"`
	Group      string `json:"group"`
	Level      int    `json:"level"`
	Partitions int    `json:"partitions"`
	Keys       int    `json:"keys"`
}

// Stats mirrors the cluster's aggregated runtime counters.
type Stats struct {
	MsgsIn         int64 `json:"MsgsIn"`
	Forwards       int64 `json:"Forwards"`
	PartitionsSent int64 `json:"PartitionsSent"`
	KeysMoved      int64 `json:"KeysMoved"`
	SplitAlls      int64 `json:"SplitAlls"`
	GroupSplits    int64 `json:"GroupSplits"`
	JoinsLed       int64 `json:"JoinsLed"`
	LeavesLed      int64 `json:"LeavesLed"`
	DataOps        int64 `json:"DataOps"`
	Requeues       int64 `json:"Requeues"`
	Batches        int64 `json:"Batches"`
	ReplWrites     int64 `json:"ReplWrites"`
	ReplRepairs    int64 `json:"ReplRepairs"`
	ReplLagged     int64 `json:"ReplLagged"`
	FailoverReads  int64 `json:"FailoverReads"`

	Elections       int64 `json:"Elections"`
	Promotions      int64 `json:"Promotions"`
	FailoverDetects int64 `json:"FailoverDetects"`
}

// Status is the GET /v1/status document.
type Status struct {
	Snodes        []SnodeStatus `json:"snodes"`
	Vnodes        []VnodeStatus `json:"vnodes"`
	Groups        int           `json:"groups"`
	Keys          int           `json:"keys"`
	Replicas      int           `json:"replicas"`
	SigmaQv       float64       `json:"sigma_qv"`
	Stats         Stats         `json:"stats"`
	UptimeSeconds float64       `json:"uptime_seconds"`
}

// Status fetches the cluster status snapshot.
func (c *Client) Status(ctx context.Context) (Status, error) {
	var out Status
	err := c.doJSON(ctx, http.MethodGet, "/v1/status", nil, &out)
	return out, err
}

// Metrics fetches the Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	resp, cancel, err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, "")
	if err != nil {
		return "", err
	}
	defer cancel()
	if resp.StatusCode != http.StatusOK {
		return "", errorFrom(resp)
	}
	defer resp.Body.Close()
	body, err := readBody(resp)
	return string(body), err
}
