// Package dbdht is a from-scratch Go implementation of the cluster-oriented
// model for dynamically balanced Distributed Hash Tables of Rufino, Alves,
// Exposto and Pina (IPDPS 2004), including:
//
//   - the paper's primary contribution, the *local approach*: the DHT's
//     vnodes are divided into groups that balance themselves independently
//     and in parallel, each around its own Local Partition Distribution
//     Record (LPDR);
//   - the *global approach* base model it extends (one GPDR, serial
//     balancement, invariants G1–G5);
//   - the Consistent Hashing reference model it is evaluated against;
//   - a cluster runtime where snodes are live actors exchanging protocol
//     messages (in-memory or TCP fabric) and storing real key/value data
//     that migrates with its partitions;
//   - the simulation harness reproducing every figure of the paper's
//     evaluation (see cmd/dhtsim and EXPERIMENTS.md).
//
// # Quick start
//
//	d, err := dbdht.NewLocal(dbdht.Options{Pmin: 32, Vmin: 32, Seed: 1})
//	if err != nil { ... }
//	for i := 0; i < 1024; i++ {
//		if _, _, err := d.AddVnode(); err != nil { ... }
//	}
//	fmt.Printf("σ̄(Qv) = %.2f%%\n", 100*d.QualityOfBalancement())
//
// For a live message-passing cluster with a key/value data plane, see
// NewCluster; for a real TCP fabric, see NewClusterTCP.  The cluster can
// be served over HTTP by cmd/dhtd (see internal/server for the API and
// package client for the Go client).
package dbdht

import (
	"log/slog"
	"math/rand"
	"time"

	"dbdht/internal/ch"
	"dbdht/internal/cluster"
	"dbdht/internal/cluster/transport"
	"dbdht/internal/core"
	"dbdht/internal/global"
	"dbdht/internal/hashspace"
	"dbdht/internal/wal"
)

// LocalDHT is a local-approach DHT (the paper's contribution); see
// internal/core for the full method set: AddVnode, RemoveVnode, Lookup,
// QualityOfBalancement, GroupBalancement, Groups, CheckInvariants, ...
type LocalDHT = core.DHT

// GlobalDHT is a global-approach DHT (the base model of §2).
type GlobalDHT = global.DHT

// ConsistentHashing is the Karger et al. reference ring of §4.3.
type ConsistentHashing = ch.Ring

// Cluster is a live message-passing DHT cluster with a key/value data
// plane; see internal/cluster for the full method set: AddSnode,
// CreateVnode, RemoveVnode, SetEnrollment, RemoveSnode, Put/Get/Delete,
// MPut/MGet/MDelete, Snapshot, StatsTotal, ...
type Cluster = cluster.Cluster

// KV is one key/value pair of a batched MPut.
type KV = cluster.KV

// BatchResult is the per-key outcome of a batched MPut/MGet/MDelete;
// batches have partial-failure semantics — check each result's Err.
type BatchResult = cluster.BatchResult

// BalanceConfig tunes the autonomous load-aware balancer (interval,
// quota-deviation threshold, per-round move budget).
type BalanceConfig = cluster.BalanceConfig

// BalanceRound is one balancer round's outcome.
type BalanceRound = cluster.BalanceRound

// BalancerStats aggregates the balancer's lifetime counters.
type BalancerStats = cluster.BalancerStats

// SnodeLoad is one snode's load report (capacity, quota, EWMA rates).
type SnodeLoad = cluster.SnodeLoad

// DurabilityConfig configures the per-snode write-ahead log and
// snapshots (Dir, Fsync, SnapshotInterval); the zero value disables
// durability entirely.
type DurabilityConfig = cluster.DurabilityConfig

// FsyncMode is the durability class of acknowledged writes.
type FsyncMode = wal.FsyncMode

// Fsync modes for DurabilityConfig.Fsync: FsyncOff never syncs (an
// acknowledged write may die with the process), FsyncBatch group-commits
// an fsync before every ack, FsyncAlways additionally syncs every append
// eagerly.
const (
	FsyncOff    = wal.FsyncOff
	FsyncBatch  = wal.FsyncBatch
	FsyncAlways = wal.FsyncAlways
)

// ParseFsyncMode parses "off", "batch" or "always" (the -fsync flag).
func ParseFsyncMode(s string) (FsyncMode, error) { return wal.ParseFsyncMode(s) }

// SnodeID identifies a cluster snode on the message fabric — the id
// AddSnode returns and the unit NetFaults host sets are expressed in.
type SnodeID = transport.NodeID

// NetFaults is a nemesis fault plan for the message fabric: symmetric or
// asymmetric partitions between host sets, per-link one-way delay with
// jitter, probabilistic frame drop, and Heal — all reproducible from one
// seed.  Attach via ClusterOptions.Faults.
type NetFaults = transport.Faults

// NewNetFaults returns an empty fabric fault plan seeded for
// reproducibility.
func NewNetFaults(seed int64) *NetFaults { return transport.NewFaults(seed) }

// DiskFaults is a nemesis fault plan for the write-ahead log: slow
// fsyncs and probabilistic fsync failures, reproducible from one seed.
// Attach via DurabilityConfig.Faults.
type DiskFaults = wal.Faults

// NewDiskFaults returns an empty disk fault plan seeded for
// reproducibility.
func NewDiskFaults(seed int64) *DiskFaults { return wal.NewFaults(seed) }

// GroupID is the decentralized binary group identifier of §3.7.1.
type GroupID = core.GroupID

// VnodeID identifies a vnode in the algorithmic DHTs.
type VnodeID = core.VnodeID

// VnodeName is a cluster vnode's canonical snode_id.vnode_id name.
type VnodeName = cluster.VnodeName

// Partition is a binary-aligned subset of the hash range R_h.
type Partition = hashspace.Partition

// Options configures the algorithmic DHTs.  Pmin controls the grain of
// balancement inside a scope; Vmin controls group size (local approach
// only).  Both must be powers of two (§4.1).  Seed makes every run
// reproducible.
type Options struct {
	Pmin int
	Vmin int
	Seed int64
}

// ClusterOptions configures a live cluster.
type ClusterOptions struct {
	Pmin int
	Vmin int
	Seed int64
	// RPCTimeout bounds internal request/response exchanges (default 30s).
	RPCTimeout time.Duration
	// Replicas is R, the number of copies of every partition (primary
	// included; default 1 = replication off).  With R ≥ 2 an abrupt
	// single-snode crash loses no acknowledged write: reads fail over to
	// the partition's replicas.
	Replicas int
	// AntiEntropyInterval paces the background replica repair pass
	// (default 1s; only runs when Replicas > 1).
	AntiEntropyInterval time.Duration
	// FailoverPingInterval paces the liveness detector: every interval
	// each snode is pinged, and one missing FailoverPingMisses
	// consecutive rounds is declared crashed, triggering automatic
	// replica promotion (default 0 = detector off; crashes must then be
	// reported via KillSnode).
	FailoverPingInterval time.Duration
	// FailoverPingMisses is how many consecutive missed pings declare an
	// snode dead (default 3).
	FailoverPingMisses int
	// Balance configures the autonomous load-aware balancer.  Zero value:
	// the background loop is off; Cluster.BalanceNow still runs rounds on
	// demand.
	Balance BalanceConfig
	// LoadInterval paces the per-bucket EWMA load accounting the balancer
	// observes (default 500ms).
	LoadInterval time.Duration
	// Durability configures the per-snode write-ahead log and snapshots
	// (see internal/cluster/durable.go and docs/OPERATIONS.md).  Zero
	// value: no disk I/O; a restarted snode comes back empty.
	Durability DurabilityConfig
	// TraceSample is the probability in [0, 1] that a client operation is
	// traced (default 0 = tracing off; adjustable live with
	// Cluster.SetTraceSampling).
	TraceSample float64
	// TraceBuffer sizes each snode's span ring buffer (default 4096).
	TraceBuffer int
	// SlowOpThreshold logs any client batch slower than this with its full
	// span breakdown (default 0 = off).
	SlowOpThreshold time.Duration
	// Logger receives structured cluster and WAL events.  Nil discards.
	Logger *slog.Logger
	// Faults optionally attaches a nemesis fault plan to the message
	// fabric (partitions, lossy or slow links); see NewNetFaults.  Disk
	// faults ride Durability.Faults.  Nil means a healthy fabric.
	Faults *NetFaults
}

// NewLocal returns an empty local-approach DHT.
func NewLocal(o Options) (*LocalDHT, error) {
	return core.New(core.Config{Pmin: o.Pmin, Vmin: o.Vmin}, rand.New(rand.NewSource(o.Seed)))
}

// NewGlobal returns an empty global-approach DHT (Vmin is ignored).
func NewGlobal(o Options) (*GlobalDHT, error) {
	return global.New(o.Pmin, rand.New(rand.NewSource(o.Seed)))
}

// NewConsistentHashing returns an empty Consistent Hashing ring with k
// points per unit of node weight.
func NewConsistentHashing(k int, seed int64) (*ConsistentHashing, error) {
	return ch.New(k, rand.New(rand.NewSource(seed)))
}

// NewCluster starts a cluster over an in-memory message fabric — the
// default for experiments and tests.
func NewCluster(o ClusterOptions) (*Cluster, error) {
	net := transport.NewMem()
	if o.Faults != nil {
		net.SetFaults(o.Faults)
	}
	return cluster.New(cluster.Config{
		Pmin: o.Pmin, Vmin: o.Vmin, Seed: o.Seed, RPCTimeout: o.RPCTimeout,
		Replicas: o.Replicas, AntiEntropyInterval: o.AntiEntropyInterval,
		FailoverPingInterval: o.FailoverPingInterval, FailoverPingMisses: o.FailoverPingMisses,
		Balance: o.Balance, LoadInterval: o.LoadInterval,
		Durability:  o.Durability,
		TraceSample: o.TraceSample, TraceBufferSize: o.TraceBuffer,
		SlowOpThreshold: o.SlowOpThreshold, Logger: o.Logger,
	}, net)
}

// NewClusterTCP starts a cluster whose snodes communicate over real TCP
// connections bound to the given host (e.g. "127.0.0.1").
func NewClusterTCP(o ClusterOptions, host string) (*Cluster, error) {
	net := transport.NewTCP(host)
	if o.Faults != nil {
		net.SetFaults(o.Faults)
	}
	return cluster.New(cluster.Config{
		Pmin: o.Pmin, Vmin: o.Vmin, Seed: o.Seed, RPCTimeout: o.RPCTimeout,
		Replicas: o.Replicas, AntiEntropyInterval: o.AntiEntropyInterval,
		FailoverPingInterval: o.FailoverPingInterval, FailoverPingMisses: o.FailoverPingMisses,
		Balance: o.Balance, LoadInterval: o.LoadInterval,
		Durability:  o.Durability,
		TraceSample: o.TraceSample, TraceBufferSize: o.TraceBuffer,
		SlowOpThreshold: o.SlowOpThreshold, Logger: o.Logger,
	}, net)
}

// Hash maps an arbitrary key to the hash range R_h.
func Hash(key []byte) uint64 { return hashspace.Hash(key) }

// HashString is Hash for string keys.
func HashString(key string) uint64 { return hashspace.HashString(key) }
