package dbdht_test

import (
	"fmt"
	"testing"

	"dbdht"
)

func TestFacadeLocal(t *testing.T) {
	d, err := dbdht.NewLocal(dbdht.Options{Pmin: 16, Vmin: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := d.AddVnode(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if d.Vnodes() != 100 {
		t.Fatalf("V = %d", d.Vnodes())
	}
	if q := d.QualityOfBalancement(); q < 0 || q > 1 {
		t.Fatalf("σ̄ = %v", q)
	}
}

func TestFacadeGlobal(t *testing.T) {
	d, err := dbdht.NewGlobal(dbdht.Options{Pmin: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := d.AddVnode(); err != nil {
			t.Fatal(err)
		}
	}
	if q := d.QualityOfBalancement(); q != 0 {
		t.Fatalf("σ̄ at power-of-two V = %v, want 0", q)
	}
}

func TestFacadeCH(t *testing.T) {
	r, err := dbdht.NewConsistentHashing(32, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := r.AddNode(1); err != nil {
			t.Fatal(err)
		}
	}
	if q := r.QualityOfBalancement(); q <= 0 {
		t.Fatalf("CH σ̄ = %v, must be positive", q)
	}
}

func TestFacadeCluster(t *testing.T) {
	c, err := dbdht.NewCluster(dbdht.ClusterOptions{Pmin: 8, Vmin: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < 9; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i++ {
		if _, found, err := c.Get(fmt.Sprintf("k%d", i)); err != nil || !found {
			t.Fatalf("get k%d: %v %v", i, err, found)
		}
	}
}

func TestFacadeHash(t *testing.T) {
	if dbdht.Hash([]byte("x")) != dbdht.HashString("x") {
		t.Fatal("Hash and HashString disagree")
	}
}

// ExampleNewLocal grows a small DHT and reports its balancement, showing
// the deterministic, seeded API surface.
func ExampleNewLocal() {
	d, err := dbdht.NewLocal(dbdht.Options{Pmin: 8, Vmin: 8, Seed: 1})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 16; i++ {
		if _, _, err := d.AddVnode(); err != nil {
			panic(err)
		}
	}
	// 16 vnodes is a power of two and fits one group: balance is perfect.
	fmt.Printf("vnodes=%d groups=%d sigma=%.1f%%\n",
		d.Vnodes(), d.Groups(), 100*d.QualityOfBalancement())
	// Output: vnodes=16 groups=1 sigma=0.0%
}
