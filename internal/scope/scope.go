package scope

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"dbdht/internal/balance"
	"dbdht/internal/hashspace"
)

// ErrIncompleteTiling is reported by partition coalescing when some sibling
// partition lives outside the scope.  A scope that covers all of R_h (the
// global approach) always owns complete sibling pairs; a *group* scope owns
// a scattered subset of R_h, so after heavy shrink a merge may be
// impossible.  Scopes with a soft upper bound treat this as a benign state.
var ErrIncompleteTiling = errors.New("scope: sibling partition outside scope; cannot coalesce")

// VnodeID identifies a vnode.  IDs are assigned by the embedding DHT and are
// unique DHT-wide (not merely scope-wide), so vnodes can migrate between
// scopes during group splits without renaming.
type VnodeID int

// Observer receives structural-change events as a scope mutates.  The local
// approach uses it to maintain a DHT-wide partition→owner index; the cluster
// runtime uses it to emit partition/data transfer messages.  Implementations
// must not call back into the scope.  A nil Observer is valid.
type Observer interface {
	// PartitionMoved fires when partition p changes owner (a handover
	// scheduled by the balancement algorithm, §2.5 step 4a).
	PartitionMoved(p hashspace.Partition, from, to VnodeID)
	// PartitionSplit fires when p is replaced by its two children, both
	// staying with the same owner (the scope-wide binary split of §2.5).
	PartitionSplit(p hashspace.Partition, owner VnodeID)
	// PartitionMerged fires when the children of p coalesce back into p,
	// owned by owner (partition coalescing after vnode removal; an
	// extension — the paper only sketches dynamic leave as feature (c)).
	PartitionMerged(p hashspace.Partition, owner VnodeID)
	// VnodeRemoved fires when a vnode leaves the scope after its partitions
	// were reassigned.
	VnodeRemoved(v VnodeID)
}

// Stats counts the structural work a scope has performed; the evaluation
// harness reports these as the "cost" side of the balancement-quality
// tradeoff (§4.1.2 discusses storage/time resources).
type Stats struct {
	// Handovers is the number of single-partition ownership transfers.
	Handovers int
	// Splits is the number of scope-wide binary splits (each multiplies the
	// partition count by two).
	Splits int
	// Merges is the number of scope-wide coalescings (each halves it).
	Merges int
}

// Scope is one balancement domain.  It is not safe for concurrent use; the
// cluster runtime serializes access through each group's leader, exactly as
// the paper serializes vnode creations within a group (§3.6).
type Scope struct {
	pmin, pmax int
	level      uint8 // common splitlevel of every partition (G3/G3′)
	table      *balance.Table[VnodeID]
	sets       map[VnodeID]*hashspace.Set
	index      map[hashspace.Partition]VnodeID
	rng        *rand.Rand
	obs        Observer
	stats      Stats
	softUpper  bool
}

// New returns an empty scope.  pmin must be a power of two (invariant G4);
// rng drives the only nondeterministic choice the paper leaves open — which
// victim partition a victim vnode hands over.  obs may be nil.
func New(pmin int, rng *rand.Rand, obs Observer) (*Scope, error) {
	if pmin < 1 || pmin&(pmin-1) != 0 {
		return nil, fmt.Errorf("scope: Pmin must be a positive power of two, got %d", pmin)
	}
	if rng == nil {
		return nil, fmt.Errorf("scope: rng must not be nil")
	}
	return &Scope{
		pmin:  pmin,
		pmax:  2 * pmin,
		table: balance.NewTable[VnodeID](func(a, b VnodeID) bool { return a < b }),
		sets:  make(map[VnodeID]*hashspace.Set),
		index: make(map[hashspace.Partition]VnodeID),
		rng:   rng,
		obs:   obs,
	}, nil
}

// SetSoftUpperBound switches invariant G4's upper bound to best-effort:
// when partition coalescing is impossible because sibling partitions live
// in other scopes (group scopes of the local approach), vnode counts may
// transiently exceed Pmax after removals, healing as the scope regrows.
// The paper defines removal only informally (base-model feature (c)); this
// relaxation mirrors the one it already grants L2 for group 0.
func (s *Scope) SetSoftUpperBound(on bool) { s.softUpper = on }

// Pmin returns the scope's Pmin parameter.
func (s *Scope) Pmin() int { return s.pmin }

// Pmax returns 2·Pmin (invariant G4).
func (s *Scope) Pmax() int { return s.pmax }

// Level returns the common splitlevel l (or l_g) of the scope's partitions.
func (s *Scope) Level() uint8 { return s.level }

// Vnodes returns the scope's vnode IDs in ascending order.
func (s *Scope) Vnodes() []VnodeID { return s.table.Keys() }

// Len returns the number of vnodes (V or V_g).
func (s *Scope) Len() int { return s.table.Len() }

// TotalPartitions returns P (or P_g), the scope's overall partition count.
func (s *Scope) TotalPartitions() int { return s.table.Total() }

// Stats returns the cumulative structural-work counters.
func (s *Scope) Stats() Stats { return s.stats }

// PartitionCount returns P_v for a vnode, and whether it is a member.
func (s *Scope) PartitionCount(v VnodeID) (int, bool) { return s.table.Count(v) }

// Counts returns a copy of the scope's PDR: vnode → partition count.
func (s *Scope) Counts() map[VnodeID]int { return s.table.Counts() }

// unitQuota returns the quota of one partition at the scope's level.
func (s *Scope) unitQuota() float64 {
	return hashspace.Partition{Level: s.level}.Quota()
}

// Quota returns Q_v = P_v · 2^(−level), the fraction of R_h held by v.
func (s *Scope) Quota(v VnodeID) (float64, bool) {
	c, ok := s.table.Count(v)
	if !ok {
		return 0, false
	}
	return float64(c) * s.unitQuota(), true
}

// TotalQuota returns the fraction of R_h covered by the whole scope — the
// group quota Q_g of §4.2.1 when the scope is a group, or 1.0 for the
// global approach.
func (s *Scope) TotalQuota() float64 {
	return float64(s.table.Total()) * s.unitQuota()
}

// Quotas returns every vnode's quota in ascending vnode order.
func (s *Scope) Quotas() []float64 {
	ids := s.table.Keys()
	out := make([]float64, len(ids))
	unit := s.unitQuota()
	for i, v := range ids {
		c, _ := s.table.Count(v)
		out[i] = float64(c) * unit
	}
	return out
}

// Partitions returns the partitions of vnode v, sorted, or nil if absent.
func (s *Scope) Partitions(v VnodeID) []hashspace.Partition {
	set, ok := s.sets[v]
	if !ok {
		return nil
	}
	return set.Partitions()
}

// Lookup returns the vnode owning index i.  Because every partition shares
// the scope's level, one index probe suffices.  ok is false when the scope
// does not own the containing partition (it belongs to another group).
func (s *Scope) Lookup(i hashspace.Index) (VnodeID, bool) {
	v, ok := s.index[hashspace.Containing(i, s.level)]
	return v, ok
}

// Owns reports whether partition p is held by this scope, and by which vnode.
func (s *Scope) Owns(p hashspace.Partition) (VnodeID, bool) {
	v, ok := s.index[p]
	return v, ok
}

// Bootstrap installs the scope's first vnode, materializing invariant G4's
// floor: the vnode receives the whole of R_h divided into Pmin partitions at
// level log2(Pmin).  It fails if the scope is non-empty.
func (s *Scope) Bootstrap(v VnodeID) error {
	if s.table.Len() != 0 {
		return fmt.Errorf("scope: Bootstrap on non-empty scope")
	}
	if err := s.table.Add(v); err != nil {
		return err
	}
	if _, _, err := s.table.PlanCreate(v, s.pmin); err != nil {
		return err
	}
	s.level = uint8(bits.TrailingZeros(uint(s.pmin)))
	set := hashspace.NewSet()
	for pre := uint64(0); pre < uint64(s.pmin); pre++ {
		p := hashspace.Partition{Prefix: pre, Level: s.level}
		if err := set.Add(p); err != nil {
			return fmt.Errorf("scope: bootstrap tiling: %w", err)
		}
		s.index[p] = v
	}
	s.sets[v] = set
	return nil
}

// AddVnode runs the §2.5 creation algorithm for a new vnode v: registers it
// with zero partitions, performs the scope-wide binary split if the scope
// sits at the G5/G5′ floor, then applies the σ-decreasing handovers.
func (s *Scope) AddVnode(v VnodeID) error {
	if s.table.Len() == 0 {
		return s.Bootstrap(v)
	}
	if _, ok := s.sets[v]; ok {
		return fmt.Errorf("scope: vnode %d already present", v)
	}
	if err := s.table.Add(v); err != nil {
		return err
	}
	s.sets[v] = hashspace.NewSet()
	split, moves, err := s.table.PlanCreate(v, s.pmin)
	if split {
		// The plan doubled the PDR counts; materialize on the real sets.
		s.splitAll()
	}
	if err != nil {
		return fmt.Errorf("scope: create vnode %d: %w", v, err)
	}
	for _, m := range moves {
		if err := s.moveOne(m.From, m.To); err != nil {
			return err
		}
	}
	return nil
}

// RemoveVnode reassigns v's partitions greedily to the least-loaded vnodes,
// coalesces partitions if the departure breaches G4's upper bound, and
// flattens the result.  Removing the last vnode empties the scope.
func (s *Scope) RemoveVnode(v VnodeID) error {
	set, ok := s.sets[v]
	if !ok {
		return fmt.Errorf("scope: vnode %d not present", v)
	}
	if s.table.Len() == 1 {
		// Last vnode: there is nowhere to reassign partitions inside the
		// scope, so the removal is refused (checked before any mutation);
		// the embedding DHT must dissolve or merge the scope first.
		if set.Len() > 0 {
			return fmt.Errorf("scope: cannot remove last vnode %d: %d partitions would be orphaned", v, set.Len())
		}
		if _, err := s.table.Remove(v); err != nil {
			return err
		}
		delete(s.sets, v)
		if s.obs != nil {
			s.obs.VnodeRemoved(v)
		}
		return nil
	}
	dests, err := s.table.PlanRemove(v)
	if err != nil {
		return err
	}
	parts := set.Partitions()
	if len(parts) != len(dests) {
		return fmt.Errorf("scope: plan/set mismatch removing %d: %d parts, %d dests", v, len(parts), len(dests))
	}
	for i, p := range parts {
		if err := s.transfer(p, v, dests[i]); err != nil {
			return err
		}
	}
	delete(s.sets, v)
	if s.obs != nil {
		s.obs.VnodeRemoved(v)
	}
	for s.table.MergeNeeded(s.pmax) {
		if err := s.mergeAll(); err != nil {
			if s.softUpper && errors.Is(err, ErrIncompleteTiling) {
				break // tolerated: counts may exceed Pmax until regrowth
			}
			return err
		}
	}
	for _, m := range s.table.Flatten(s.pmin) {
		if err := s.moveOne(m.From, m.To); err != nil {
			return err
		}
	}
	return nil
}

// moveOne hands over one partition from one vnode to another, choosing the
// victim partition uniformly at random (the paper leaves the choice open in
// §2.5 step 4a).  The PDR counts were already updated by the planner.
func (s *Scope) moveOne(from, to VnodeID) error {
	fromSet, ok := s.sets[from]
	if !ok || fromSet.Len() == 0 {
		return fmt.Errorf("scope: no partition to move from vnode %d", from)
	}
	parts := fromSet.Partitions()
	p := parts[s.rng.Intn(len(parts))]
	return s.transfer(p, from, to)
}

// transfer moves a specific partition between vnodes' sets and updates the
// index; PDR counts are the planner's responsibility.
func (s *Scope) transfer(p hashspace.Partition, from, to VnodeID) error {
	fromSet, ok := s.sets[from]
	if !ok {
		return fmt.Errorf("scope: transfer from absent vnode %d", from)
	}
	toSet, ok := s.sets[to]
	if !ok {
		return fmt.Errorf("scope: transfer to absent vnode %d", to)
	}
	if !fromSet.Remove(p) {
		return fmt.Errorf("scope: vnode %d does not own %v", from, p)
	}
	if err := toSet.Add(p); err != nil {
		return fmt.Errorf("scope: receiving vnode %d: %w", to, err)
	}
	s.index[p] = to
	s.stats.Handovers++
	if s.obs != nil {
		s.obs.PartitionMoved(p, from, to)
	}
	return nil
}

// splitAll performs the scope-wide binary split: every partition of every
// vnode splits in two, doubling every P_v to Pmax and incrementing the
// common splitlevel (§2.5; the PDR was already doubled by the planner).
func (s *Scope) splitAll() {
	for v, set := range s.sets {
		old := set.Partitions()
		next := hashspace.NewSet()
		for _, p := range old {
			lo, hi := p.Split()
			// Adds into a fresh set of strictly deeper level cannot fail.
			if err := next.Add(lo); err != nil {
				panic(fmt.Sprintf("scope: splitAll lo: %v", err))
			}
			if err := next.Add(hi); err != nil {
				panic(fmt.Sprintf("scope: splitAll hi: %v", err))
			}
			delete(s.index, p)
			s.index[lo] = v
			s.index[hi] = v
			if s.obs != nil {
				s.obs.PartitionSplit(p, v)
			}
		}
		s.sets[v] = next
	}
	s.level++
	s.stats.Splits++
}

// mergeAll coalesces every sibling pair back into its parent, halving the
// scope's partition count and decrementing the level.  The merged partition
// stays with the owner of the low child; when the high child lived elsewhere
// that is an ownership transfer of the high half.  Afterwards the PDR is
// recomputed from the materialized sets.
func (s *Scope) mergeAll() error {
	if s.level == 0 {
		return fmt.Errorf("scope: cannot merge below level 0")
	}
	type pair struct{ lo, hi VnodeID }
	pairs := make(map[hashspace.Partition]*pair)
	for v, set := range s.sets {
		for _, p := range set.Partitions() {
			parent := p.Parent()
			pr, ok := pairs[parent]
			if !ok {
				pr = &pair{lo: -1, hi: -1}
				pairs[parent] = pr
			}
			if p.IsLowChild() {
				pr.lo = v
			} else {
				pr.hi = v
			}
		}
	}
	// Deterministic order over parents.
	parents := make([]hashspace.Partition, 0, len(pairs))
	for p := range pairs {
		parents = append(parents, p)
	}
	sort.Slice(parents, func(i, j int) bool { return parents[i].Prefix < parents[j].Prefix })
	// Verify completeness before mutating anything, so a failed merge
	// leaves the scope untouched.
	for _, parent := range parents {
		if pr := pairs[parent]; pr.lo < 0 || pr.hi < 0 {
			return fmt.Errorf("scope: merging %v: %w", parent, ErrIncompleteTiling)
		}
	}
	for _, parent := range parents {
		pr := pairs[parent]
		lo, hi := parent.Split()
		owner := pr.lo
		s.sets[pr.lo].Remove(lo)
		s.sets[pr.hi].Remove(hi)
		delete(s.index, lo)
		delete(s.index, hi)
		if err := s.sets[owner].Add(parent); err != nil {
			return fmt.Errorf("scope: merge into %v: %w", parent, err)
		}
		s.index[parent] = owner
		if s.obs != nil {
			s.obs.PartitionMerged(parent, owner)
		}
	}
	s.level--
	s.stats.Merges++
	for v, set := range s.sets {
		if err := s.table.SetCount(v, set.Len()); err != nil {
			return err
		}
	}
	return nil
}

// Detach removes vnode v from the scope *without* reassigning partitions;
// the vnode keeps its set.  Used by group splits (§3.7), where vnodes move
// wholesale into a child group.  Returns the vnode's partition set.
func (s *Scope) Detach(v VnodeID) (*hashspace.Set, error) {
	set, ok := s.sets[v]
	if !ok {
		return nil, fmt.Errorf("scope: detach absent vnode %d", v)
	}
	if _, err := s.table.Remove(v); err != nil {
		return nil, err
	}
	delete(s.sets, v)
	for _, p := range set.Partitions() {
		delete(s.index, p)
	}
	return set, nil
}

// Attach inserts a vnode carrying an existing partition set, as produced by
// Detach on a sibling scope.  The set's partitions must sit at the scope's
// level; an empty scope adopts the incoming level.
func (s *Scope) Attach(v VnodeID, set *hashspace.Set, level uint8) error {
	if _, ok := s.sets[v]; ok {
		return fmt.Errorf("scope: attach duplicate vnode %d", v)
	}
	if s.table.Len() == 0 {
		s.level = level
	} else if level != s.level {
		return fmt.Errorf("scope: attach level %d into scope at level %d", level, s.level)
	}
	if err := s.table.Add(v); err != nil {
		return err
	}
	if err := s.table.SetCount(v, set.Len()); err != nil {
		return err
	}
	s.sets[v] = set
	for _, p := range set.Partitions() {
		s.index[p] = v
	}
	return nil
}

// CheckInvariants verifies the paper's per-scope invariants: G2/G2′ (P is a
// power of two), G3/G3′ (uniform splitlevel), G4/G4′ (Pmin ≤ P_v ≤ Pmax),
// G5/G5′ (V a power of two ⇒ all P_v = Pmin), plus internal consistency of
// PDR counts, sets and index.  An empty scope is trivially valid.
func (s *Scope) CheckInvariants() error {
	if s.table.Len() == 0 {
		return nil
	}
	p := s.table.Total()
	if p&(p-1) != 0 {
		return fmt.Errorf("scope: G2 violated: P=%d not a power of two", p)
	}
	upper := s.pmax
	if s.softUpper {
		// Counts may exceed Pmax after merges proved impossible; the lower
		// bound Pmin remains strict.
		upper = int(^uint(0) >> 1)
	}
	if err := s.table.CheckBounds(s.pmin, upper); err != nil {
		return fmt.Errorf("scope: G4 violated: %w", err)
	}
	v := s.table.Len()
	if v&(v-1) == 0 && p == v*s.pmin {
		// G5 in its canonical growth form: at power-of-two V with the
		// canonical partition total, every vnode holds exactly Pmin.  (On
		// soft-upper scopes the total can legitimately be larger.)
		for _, id := range s.table.Keys() {
			if c, _ := s.table.Count(id); c != s.pmin {
				return fmt.Errorf("scope: G5 violated: V=%d power of two but vnode %d has %d ≠ Pmin", v, id, c)
			}
		}
	}
	idxCount := 0
	for id, set := range s.sets {
		c, ok := s.table.Count(id)
		if !ok {
			return fmt.Errorf("scope: set for vnode %d missing from PDR", id)
		}
		if set.Len() != c {
			return fmt.Errorf("scope: vnode %d PDR count %d ≠ set size %d", id, c, set.Len())
		}
		for _, part := range set.Partitions() {
			if part.Level != s.level {
				return fmt.Errorf("scope: G3 violated: partition %v at level %d, scope at %d", part, part.Level, s.level)
			}
			owner, ok := s.index[part]
			if !ok || owner != id {
				return fmt.Errorf("scope: index inconsistent for %v: owner %d, set says %d", part, owner, id)
			}
			idxCount++
		}
	}
	if idxCount != len(s.index) {
		return fmt.Errorf("scope: index has %d entries, sets have %d partitions", len(s.index), idxCount)
	}
	if len(s.sets) != s.table.Len() {
		return fmt.Errorf("scope: %d sets vs %d PDR entries", len(s.sets), s.table.Len())
	}
	return nil
}
