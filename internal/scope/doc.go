// Package scope implements a balancement scope: a set of vnodes whose
// partitions all share one splitlevel and are kept balanced by the §2.5
// algorithm of Rufino et al. (IPDPS 2004).
//
// The paper instantiates this structure twice.  In the global approach the
// whole DHT is a single scope (the GPDR records its distribution, invariants
// G1–G5 hold).  In the local approach each *group* of vnodes is a scope of
// its own (the LPDR records it, invariants G2′–G5′ hold per group).  Both
// packages — internal/global and internal/core — and the cluster runtime's
// group leaders build on this one implementation, mirroring the paper's
// statement that groups reuse the global algorithm unchanged (§3.1).
package scope
