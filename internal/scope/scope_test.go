package scope

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dbdht/internal/hashspace"
)

func newScope(t *testing.T, pmin int, seed int64) *Scope {
	t.Helper()
	s, err := New(pmin, rand.New(rand.NewSource(seed)), nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bad := range []int{0, -4, 3, 12} {
		if _, err := New(bad, rng, nil); err == nil {
			t.Errorf("Pmin=%d must be rejected", bad)
		}
	}
	if _, err := New(8, nil, nil); err == nil {
		t.Fatal("nil rng must be rejected")
	}
	s, err := New(8, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pmin() != 8 || s.Pmax() != 16 {
		t.Fatalf("Pmin/Pmax = %d/%d", s.Pmin(), s.Pmax())
	}
}

func TestBootstrapTilesRange(t *testing.T) {
	s := newScope(t, 32, 1)
	if err := s.AddVnode(0); err != nil {
		t.Fatal(err)
	}
	if s.Level() != 5 {
		t.Fatalf("level = %d, want log2(32)=5", s.Level())
	}
	if got := s.TotalPartitions(); got != 32 {
		t.Fatalf("P = %d, want 32", got)
	}
	if q := s.TotalQuota(); q != 1.0 {
		t.Fatalf("total quota = %v, want 1", q)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Lookup(0xDEADBEEF); !ok || v != 0 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if err := s.Bootstrap(1); err == nil {
		t.Fatal("second Bootstrap must fail")
	}
}

func TestAddVnodeSequenceInvariants(t *testing.T) {
	s := newScope(t, 8, 7)
	for v := VnodeID(0); v < 100; v++ {
		if err := s.AddVnode(v); err != nil {
			t.Fatalf("add %d: %v", v, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("after add %d: %v", v, err)
		}
		if q := s.TotalQuota(); q < 0.999999 || q > 1.000001 {
			t.Fatalf("after add %d: total quota %v", v, q)
		}
	}
	if s.Len() != 100 {
		t.Fatalf("Len = %d", s.Len())
	}
	if err := s.AddVnode(5); err == nil {
		t.Fatal("duplicate vnode must be rejected")
	}
}

func TestPowerOfTwoPerfectBalance(t *testing.T) {
	s := newScope(t, 16, 3)
	for v := VnodeID(0); v < 64; v++ {
		if err := s.AddVnode(v); err != nil {
			t.Fatal(err)
		}
		n := int(v) + 1
		if n&(n-1) == 0 {
			for _, id := range s.Vnodes() {
				if c, _ := s.PartitionCount(id); c != 16 {
					t.Fatalf("V=%d: vnode %d has %d partitions, want Pmin", n, id, c)
				}
			}
			qs := s.Quotas()
			for _, q := range qs {
				if q != qs[0] {
					t.Fatalf("V=%d: quotas not uniform: %v", n, qs)
				}
			}
		}
	}
}

func TestRemoveVnodeRestoresInvariants(t *testing.T) {
	s := newScope(t, 8, 11)
	for v := VnodeID(0); v < 37; v++ {
		if err := s.AddVnode(v); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(99))
	for s.Len() > 1 {
		ids := s.Vnodes()
		victim := ids[rng.Intn(len(ids))]
		if err := s.RemoveVnode(victim); err != nil {
			t.Fatalf("remove %d at V=%d: %v", victim, s.Len(), err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("after remove %d: %v", victim, err)
		}
		if q := s.TotalQuota(); q < 0.999999 || q > 1.000001 {
			t.Fatalf("after remove: total quota %v", q)
		}
	}
	// Final vnode owns everything and cannot leave.
	last := s.Vnodes()[0]
	if err := s.RemoveVnode(last); err == nil {
		t.Fatal("removing last vnode with partitions must fail")
	}
	if err := s.RemoveVnode(999); err == nil {
		t.Fatal("removing absent vnode must fail")
	}
}

func TestStatsCounting(t *testing.T) {
	s := newScope(t, 8, 5)
	for v := VnodeID(0); v < 4; v++ {
		if err := s.AddVnode(v); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// Splits happen at V transitions 1→2 and 2→3 (each when all at Pmin).
	if st.Splits != 2 {
		t.Fatalf("Splits = %d, want 2", st.Splits)
	}
	if st.Handovers == 0 {
		t.Fatal("handovers must have occurred")
	}
	if st.Merges != 0 {
		t.Fatalf("Merges = %d, want 0", st.Merges)
	}
}

func TestMergeHappensOnShrink(t *testing.T) {
	s := newScope(t, 8, 13)
	for v := VnodeID(0); v < 16; v++ {
		if err := s.AddVnode(v); err != nil {
			t.Fatal(err)
		}
	}
	// V=16 (power of two): P = 128.  Shrinking to V=9 keeps P < V*Pmax
	// (128 < 144); reaching V=8 hits P = V*Pmax and G5 forces the merge.
	for v := VnodeID(15); v >= 9; v-- {
		if err := s.RemoveVnode(v); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Merges != 0 {
		t.Fatalf("no merge expected at V=9 yet, got %d", s.Stats().Merges)
	}
	if err := s.RemoveVnode(8); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Merges != 1 {
		t.Fatalf("Merges = %d, want 1 after shrinking to V=8", s.Stats().Merges)
	}
	// G5 restored: all vnodes back at Pmin.
	for _, id := range s.Vnodes() {
		if c, _ := s.PartitionCount(id); c != 8 {
			t.Fatalf("vnode %d has %d partitions after merge, want Pmin=8", id, c)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if q := s.TotalQuota(); q < 0.999999 || q > 1.000001 {
		t.Fatalf("total quota after merge = %v", q)
	}
}

func TestDetachAttach(t *testing.T) {
	s := newScope(t, 8, 17)
	for v := VnodeID(0); v < 8; v++ {
		if err := s.AddVnode(v); err != nil {
			t.Fatal(err)
		}
	}
	other := newScope(t, 8, 18)
	level := s.Level()
	for v := VnodeID(4); v < 8; v++ {
		set, err := s.Detach(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := other.Attach(v, set, level); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 4 || other.Len() != 4 {
		t.Fatalf("lens = %d,%d", s.Len(), other.Len())
	}
	// The two scopes' quotas must sum to 1 (they tile R_h together).
	if q := s.TotalQuota() + other.TotalQuota(); q < 0.999999 || q > 1.000001 {
		t.Fatalf("combined quota = %v", q)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := other.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A detached vnode is gone.
	if _, err := s.Detach(4); err == nil {
		t.Fatal("detaching absent vnode must fail")
	}
	// Level mismatch on attach is rejected.
	extra, _ := s.Detach(0)
	if err := other.Attach(0, extra, level+1); err == nil {
		t.Fatal("level mismatch must be rejected")
	}
	if err := other.Attach(0, extra, level); err != nil {
		t.Fatal(err)
	}
	if err := other.Attach(0, extra, level); err == nil {
		t.Fatal("duplicate attach must be rejected")
	}
}

func TestLookupCoversWholeRange(t *testing.T) {
	s := newScope(t, 8, 23)
	for v := VnodeID(0); v < 13; v++ {
		if err := s.AddVnode(v); err != nil {
			t.Fatal(err)
		}
	}
	f := func(i uint64) bool {
		_, ok := s.Lookup(i)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOwns(t *testing.T) {
	s := newScope(t, 8, 29)
	if err := s.AddVnode(0); err != nil {
		t.Fatal(err)
	}
	p := s.Partitions(0)[0]
	if v, ok := s.Owns(p); !ok || v != 0 {
		t.Fatalf("Owns = %d,%v", v, ok)
	}
	if _, ok := s.Owns(hashspace.Partition{Prefix: 0, Level: 63}); ok {
		t.Fatal("deep foreign partition must not be owned")
	}
	if s.Partitions(99) != nil {
		t.Fatal("partitions of absent vnode must be nil")
	}
}

type recordingObserver struct {
	moved, split, merged, removed int
}

func (r *recordingObserver) PartitionMoved(hashspace.Partition, VnodeID, VnodeID) { r.moved++ }
func (r *recordingObserver) PartitionSplit(hashspace.Partition, VnodeID)          { r.split++ }
func (r *recordingObserver) PartitionMerged(hashspace.Partition, VnodeID)         { r.merged++ }
func (r *recordingObserver) VnodeRemoved(VnodeID)                                 { r.removed++ }

func TestObserverEvents(t *testing.T) {
	obs := &recordingObserver{}
	s, err := New(8, rand.New(rand.NewSource(31)), obs)
	if err != nil {
		t.Fatal(err)
	}
	for v := VnodeID(0); v < 3; v++ {
		if err := s.AddVnode(v); err != nil {
			t.Fatal(err)
		}
	}
	if obs.split == 0 || obs.moved == 0 {
		t.Fatalf("observer missed events: %+v", obs)
	}
	if obs.moved != s.Stats().Handovers {
		t.Fatalf("moved events %d ≠ handovers %d", obs.moved, s.Stats().Handovers)
	}
	if err := s.RemoveVnode(2); err != nil {
		t.Fatal(err)
	}
	if obs.removed != 1 {
		t.Fatalf("removed events = %d, want 1", obs.removed)
	}
}

// Property: arbitrary interleavings of adds and removes keep every invariant
// and full coverage of R_h.
func TestRandomChurnProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := New(8, rand.New(rand.NewSource(seed+1)), nil)
		if err != nil {
			return false
		}
		next := VnodeID(0)
		live := []VnodeID{}
		for op := 0; op < 60; op++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				if err := s.AddVnode(next); err != nil {
					return false
				}
				live = append(live, next)
				next++
			} else if len(live) > 1 {
				i := rng.Intn(len(live))
				if err := s.RemoveVnode(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if err := s.CheckInvariants(); err != nil {
				return false
			}
			if q := s.TotalQuota(); q < 0.999999 || q > 1.000001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuotaAccessors(t *testing.T) {
	s := newScope(t, 8, 41)
	for v := VnodeID(0); v < 4; v++ {
		if err := s.AddVnode(v); err != nil {
			t.Fatal(err)
		}
	}
	q, ok := s.Quota(0)
	if !ok || q != 0.25 {
		t.Fatalf("Quota(0) = %v,%v want 0.25 at V=4", q, ok)
	}
	if _, ok := s.Quota(99); ok {
		t.Fatal("quota of absent vnode must miss")
	}
	counts := s.Counts()
	if len(counts) != 4 {
		t.Fatalf("Counts len = %d", len(counts))
	}
	for v, c := range counts {
		if c != 8 {
			t.Fatalf("vnode %d count %d, want Pmin at power-of-two V", v, c)
		}
	}
	if s.TotalPartitions() != 32 {
		t.Fatalf("P = %d", s.TotalPartitions())
	}
}

// A soft-upper scope that cannot merge keeps working and self-heals as it
// regrows: counts come back inside [Pmin, Pmax].
func TestSoftUpperHealsOnRegrowth(t *testing.T) {
	s := newScope(t, 8, 43)
	s.SetSoftUpperBound(true)
	for v := VnodeID(0); v < 16; v++ {
		if err := s.AddVnode(v); err != nil {
			t.Fatal(err)
		}
	}
	// Detach half the vnodes WITH their partitions (simulating a group
	// split), leaving a scope that owns a scattered subset of R_h...
	other := newScope(t, 8, 44)
	other.SetSoftUpperBound(true)
	for v := VnodeID(8); v < 16; v++ {
		set, err := s.Detach(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := other.Attach(v, set, s.Level()); err != nil {
			t.Fatal(err)
		}
	}
	// ...then shrink it: merges are impossible (siblings live in `other`),
	// so counts may exceed Pmax.
	for v := VnodeID(1); v < 6; v++ {
		if err := s.RemoveVnode(v); err != nil {
			t.Fatal(err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	overfull := false
	for _, c := range s.Counts() {
		if c > s.Pmax() {
			overfull = true
		}
	}
	if !overfull {
		t.Skip("shrink did not overfill; seed-dependent")
	}
	// Regrow: new vnodes absorb the excess until G4's upper bound holds.
	for v := VnodeID(100); ; v++ {
		if err := s.AddVnode(v); err != nil {
			t.Fatal(err)
		}
		healed := true
		for _, c := range s.Counts() {
			if c > s.Pmax() {
				healed = false
			}
		}
		if healed {
			break
		}
		if v > 200 {
			t.Fatal("scope did not heal within 100 additions")
		}
	}
}
