// Package metrics implements the statistical machinery of the paper's
// evaluation: population standard deviation, the relative standard deviation
// σ̄(X, X̄) = σ(X, X̄)/X̄ used as the quality-of-balancement metric (§2.3,
// §3.5), and the aggregation of per-step series across the 100 simulation
// runs every published figure averages over (§4).
package metrics
