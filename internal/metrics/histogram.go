package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-boundary latency histogram safe for concurrent
// observation without locks: one atomic add per bucket hit plus two for
// the running sum/count.  Boundaries are chosen at construction and never
// change, so readers can snapshot with plain atomic loads — a snapshot is
// not a consistent cut across buckets, which is the standard (and
// Prometheus-accepted) trade for a lock-free hot path.
type Histogram struct {
	bounds []float64       // ascending upper bounds in seconds; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	sumNs  atomic.Int64    // sum of observations in nanoseconds
	count  atomic.Uint64
}

// DefaultLatencyBounds covers the cluster's operating range — sub-µs
// in-memory hops to multi-second fsync stalls — in powers of four, so a
// dozen buckets span seven decades.
func DefaultLatencyBounds() []float64 {
	return []float64{
		1e-6, 4e-6, 16e-6, 64e-6, 256e-6, // 1µs .. 256µs
		1e-3, 4e-3, 16e-3, 64e-3, 256e-3, // 1ms .. 256ms
		1, 4, // 1s, 4s
	}
}

// NewHistogram returns a histogram over the given ascending upper bounds
// (seconds).  It panics on unsorted or empty bounds — boundaries are
// compile-time constants of the instrumentation, not runtime input.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// NewLatencyHistogram returns a histogram over DefaultLatencyBounds.
func NewLatencyHistogram() *Histogram { return NewHistogram(DefaultLatencyBounds()) }

// Observe records one value in seconds.
func (h *Histogram) Observe(seconds float64) {
	// Linear scan: a dozen comparisons over a cache-resident slice beats a
	// branchy binary search at this size.
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(seconds * 1e9))
	h.count.Add(1)
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Snapshot returns a point-in-time copy (per-bucket counts are loaded
// individually; see the type comment on consistency).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction: shared, not copied
		Counts: make([]uint64, len(h.counts)),
		Sum:    float64(h.sumNs.Load()) / 1e9,
		Count:  h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable copy of a histogram's state.  Counts
// are per-bucket (NOT cumulative); Counts[len(Bounds)] is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Merge folds another snapshot into s (for aggregating per-snode
// histograms and carrying retired snodes' totals forward).  Both sides
// must share bounds; an empty s adopts o's shape.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if o.Count == 0 && len(o.Counts) == 0 {
		return
	}
	if len(s.Counts) == 0 {
		s.Bounds = o.Bounds
		s.Counts = append([]uint64(nil), o.Counts...)
		s.Sum, s.Count = o.Sum, o.Count
		return
	}
	if len(o.Counts) != len(s.Counts) {
		panic("metrics: merging histograms with different bucket layouts")
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation within the containing bucket, the same estimate a
// Prometheus histogram_quantile() would produce.  It returns 0 for an
// empty snapshot; a quantile landing in the +Inf bucket reports the
// highest finite bound (the histogram cannot resolve beyond it).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*math.Min(1, math.Max(0, frac))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// HistogramFamily renders a snapshot as one TypeHistogram exposition
// family: cumulative `_bucket` samples with `le` labels (ending in +Inf),
// then `_sum` and `_count`.  Extra labels are attached to every sample,
// before `le`.
func HistogramFamily(name, help string, s HistogramSnapshot, labels ...Label) Family {
	f := Family{Name: name, Help: help, Type: TypeHistogram}
	if len(s.Counts) == 0 {
		return f
	}
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatValue(s.Bounds[i])
		}
		ls := make([]Label, 0, len(labels)+1)
		ls = append(ls, labels...)
		ls = append(ls, Label{Name: "le", Value: le})
		f.Samples = append(f.Samples, Sample{Suffix: "_bucket", Labels: ls, Value: float64(cum)})
	}
	f.Samples = append(f.Samples,
		Sample{Suffix: "_sum", Labels: labels, Value: s.Sum},
		Sample{Suffix: "_count", Labels: labels, Value: float64(s.Count)})
	return f
}
