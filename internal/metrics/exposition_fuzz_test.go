package metrics

import (
	"strings"
	"testing"
)

// unescapeExposition inverts the text-format escaping (`\\` → `\`,
// `\n` → newline, and for label values `\"` → `"`), per the Prometheus
// text exposition rules.  Test-only: the writer never needs to parse.
func unescapeExposition(s string, label bool) (string, bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(s) {
			return "", false // trailing bare backslash: not a valid escape
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case 'n':
			b.WriteByte('\n')
		case '"':
			if !label {
				return "", false
			}
			b.WriteByte('"')
		default:
			return "", false
		}
	}
	return b.String(), true
}

// FuzzEscapeRoundTrip asserts that escapeLabel/escapeHelp produce output
// that (a) contains none of the characters that would corrupt the text
// format and (b) unescapes back to the original string byte-for-byte.
func FuzzEscapeRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"", "plain", `back\slash`, "new\nline", `quo"te`, `\n`, `\\n`,
		"mix\\\"\n", "\\", "trailing\\", "µ±∞", string([]byte{0, 0xff}),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		lab := escapeLabel(s)
		if strings.Contains(lab, "\n") {
			t.Fatalf("escapeLabel(%q) = %q still contains a raw newline", s, lab)
		}
		// A bare (unescaped) quote would terminate the label value early.
		for i := 0; i < len(lab); i++ {
			switch lab[i] {
			case '\\':
				i++ // escape sequence: consumes the next byte
			case '"':
				t.Fatalf("escapeLabel(%q) = %q contains an unescaped quote", s, lab)
			}
		}
		if got, ok := unescapeExposition(lab, true); !ok || got != s {
			t.Fatalf("escapeLabel(%q) = %q does not round-trip (got %q, ok=%v)", s, lab, got, ok)
		}
		help := escapeHelp(s)
		if strings.Contains(help, "\n") {
			t.Fatalf("escapeHelp(%q) = %q still contains newline", s, help)
		}
		// Help text may contain quotes unescaped (they are legal there),
		// but the escape sequences must still round-trip exactly.
		if got, ok := unescapeExposition(help, false); !ok || got != s {
			t.Fatalf("escapeHelp(%q) = %q does not round-trip (got %q, ok=%v)", s, help, got, ok)
		}
	})
}
