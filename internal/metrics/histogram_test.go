package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 50, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bucket semantics are le (inclusive upper bound), matching Prometheus.
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Fatalf("count: got %d want 6", s.Count)
	}
	if math.Abs(s.Sum-1063) > 1e-6 {
		t.Fatalf("sum: got %g want 1063", s.Sum)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race it proves the lock-free observation path, and the final
// snapshot proves no observation was lost.
func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%1000) * 1e-6)
			}
		}(w)
	}
	// Concurrent snapshots must be safe (if not cut-consistent).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = h.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("lost observations: got %d want %d", s.Count, workers*perWorker)
	}
	var inBuckets uint64
	for _, c := range s.Counts {
		inBuckets += c
	}
	if inBuckets != s.Count {
		t.Fatalf("bucket sum %d != count %d", inBuckets, s.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 90; i++ {
		h.Observe(0.0005) // 90% in the first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.05) // 10% in the (0.01, 0.1] bucket
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 <= 0 || p50 > 0.001 {
		t.Fatalf("p50 = %g, want within first bucket (0, 0.001]", p50)
	}
	if p99 := s.Quantile(0.99); p99 <= 0.01 || p99 > 0.1 {
		t.Fatalf("p99 = %g, want within (0.01, 0.1]", p99)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty snapshot quantile = %g, want 0", q)
	}
	// A quantile in the +Inf bucket saturates at the highest finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Snapshot().Quantile(0.99); q != 1 {
		t.Fatalf("+Inf quantile = %g, want 1", q)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a, b := NewHistogram([]float64{1, 10}), NewHistogram([]float64{1, 10})
	a.Observe(0.5)
	a.Observe(5)
	b.Observe(50)
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 3 || s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("merge mismatch: %+v", s)
	}
	var empty HistogramSnapshot
	empty.Merge(s)
	if empty.Count != 3 {
		t.Fatalf("merge into empty: got count %d want 3", empty.Count)
	}
}
