package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty must be 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean of 1..4 must be 2.5")
	}
}

func TestStdDevKnownValues(t *testing.T) {
	// Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); !almost(got, 2) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := RelStdDev(xs); !almost(got, 2.0/5.0) {
		t.Fatalf("RelStdDev = %v, want 0.4", got)
	}
}

func TestStdDevAroundIdealCenter(t *testing.T) {
	// Deviation around an ideal center differs from around the mean.
	xs := []float64{1, 1, 1, 1}
	if got := StdDevAround(xs, 2); !almost(got, 1) {
		t.Fatalf("StdDevAround = %v, want 1", got)
	}
	if got := RelStdDevAround(xs, 2); !almost(got, 0.5) {
		t.Fatalf("RelStdDevAround = %v, want 0.5", got)
	}
	if RelStdDevAround(xs, 0) != 0 {
		t.Fatal("zero center must yield 0 by convention")
	}
}

func TestRelStdDevZeroMean(t *testing.T) {
	if RelStdDev([]float64{0, 0, 0}) != 0 {
		t.Fatal("all-zero population is balanced by convention")
	}
	if RelStdDev(nil) != 0 {
		t.Fatal("empty population is balanced by convention")
	}
}

// Paper §2.4: if Y_i = c·X_i then σ̄(Y) = σ̄(X) — the scale invariance that
// lets the global approach use partition counts in place of quotas.
func TestRelStdDevScaleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		c := 0.5 + rng.Float64()*10
		for i := range xs {
			xs[i] = 1 + rng.Float64()*100
			ys[i] = c * xs[i]
		}
		return math.Abs(RelStdDev(xs)-RelStdDev(ys)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 50
			w.Add(xs[i])
		}
		return w.N() == n &&
			math.Abs(w.Mean()-Mean(xs)) < 1e-9 &&
			math.Abs(w.StdDev()-StdDev(xs)) < 1e-9 &&
			math.Abs(w.RelStdDev()-RelStdDev(xs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1, n2 := rng.Intn(30), rng.Intn(30)
		var a, b, all Welford
		for i := 0; i < n1; i++ {
			x := rng.Float64() * 100
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := rng.Float64() * 100
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.StdDev()-all.StdDev()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.StdDev() != 0 || w.RelStdDev() != 0 || w.Variance() != 0 {
		t.Fatal("empty Welford must report zeros")
	}
	var other Welford
	other.Add(5)
	w.Merge(other)
	if w.N() != 1 || w.Mean() != 5 {
		t.Fatal("merging into empty must copy")
	}
	var empty Welford
	w.Merge(empty)
	if w.N() != 1 {
		t.Fatal("merging empty must be a no-op")
	}
}

func TestSeriesAtLastTail(t *testing.T) {
	s := Series{Label: "t", X: []int{1, 2, 3, 4}, Y: []float64{10, 20, 30, 40}}
	if v, err := s.At(3); err != nil || v != 30 {
		t.Fatalf("At(3) = %v,%v", v, err)
	}
	if _, err := s.At(99); err == nil {
		t.Fatal("At(absent) must error")
	}
	if s.Last() != 40 {
		t.Fatal("Last mismatch")
	}
	if got := s.Tail(0.5); !almost(got, 35) {
		t.Fatalf("Tail(0.5) = %v, want 35", got)
	}
	if got := s.Tail(1.0); !almost(got, 25) {
		t.Fatalf("Tail(1.0) = %v, want 25", got)
	}
	if s.Tail(0) != 0 {
		t.Fatal("Tail(0) must be 0")
	}
	if got := s.Tail(2); !almost(got, 25) {
		t.Fatalf("Tail(>1) must clamp to full mean, got %v", got)
	}
}

func TestSeriesLastPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Last on empty series must panic")
		}
	}()
	(&Series{}).Last()
}

func TestMeanSeries(t *testing.T) {
	runs := []Series{
		{Label: "a", X: []int{1, 2}, Y: []float64{1, 3}},
		{Label: "a", X: []int{1, 2}, Y: []float64{3, 5}},
	}
	m, err := MeanSeries(runs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m.Y[0], 2) || !almost(m.Y[1], 4) {
		t.Fatalf("MeanSeries Y = %v", m.Y)
	}
	if _, err := MeanSeries(nil); err == nil {
		t.Fatal("MeanSeries of no runs must error")
	}
	if _, err := MeanSeries([]Series{{X: []int{1}, Y: []float64{1}}, {X: []int{2}, Y: []float64{1}}}); err == nil {
		t.Fatal("mismatched X axes must error")
	}
	if _, err := MeanSeries([]Series{{X: []int{1}, Y: []float64{1}}, {X: []int{1, 2}, Y: []float64{1, 2}}}); err == nil {
		t.Fatal("mismatched lengths must error")
	}
}

func TestSeriesTailSinglePoint(t *testing.T) {
	s := Series{X: []int{1}, Y: []float64{7}}
	if got := s.Tail(0.1); got != 7 {
		t.Fatalf("Tail of single point = %v", got)
	}
	if s.Last() != 7 {
		t.Fatal("Last of single point")
	}
}

func TestWelfordSingleValue(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 || w.StdDev() != 0 {
		t.Fatalf("single value: mean=%v sd=%v", w.Mean(), w.StdDev())
	}
}
