package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4): the serving layer publishes
// the cluster's runtime counters and balancement gauges in the de-facto
// standard scrape format, without taking a client-library dependency.

// Metric types understood by the exposition writer.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Label is one name/value pair attached to a sample.  Labels are written
// in slice order, so callers control the (stable) ordering.
type Label struct {
	Name, Value string
}

// Sample is one measured value of a family.
type Sample struct {
	// Suffix, if set, is appended to the family name for this sample —
	// how a histogram family emits `_bucket`/`_sum`/`_count` series under
	// one TYPE declaration.  See HistogramFamily.
	Suffix string
	Labels []Label
	Value  float64
}

// Family is one named metric with HELP/TYPE metadata and its samples.
type Family struct {
	Name    string
	Help    string
	Type    string // TypeCounter, TypeGauge or TypeHistogram — required
	Samples []Sample
}

// WritePrometheus renders the families in the Prometheus text exposition
// format, in the given order.  A family with no samples is skipped.
func WritePrometheus(w io.Writer, families []Family) error {
	for _, f := range families {
		if len(f.Samples) == 0 {
			continue
		}
		if err := validName(f.Name); err != nil {
			return err
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		switch f.Type {
		case TypeCounter, TypeGauge, TypeHistogram:
		case "":
			// An unset type used to silently publish as a gauge, hiding
			// families that were never classified; fail loudly instead.
			return fmt.Errorf("metrics: family %s has no type", f.Name)
		default:
			return fmt.Errorf("metrics: family %s has unknown type %q", f.Name, f.Type)
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if _, err := io.WriteString(w, f.Name+s.Suffix); err != nil {
				return err
			}
			if len(s.Labels) > 0 {
				parts := make([]string, len(s.Labels))
				for i, l := range s.Labels {
					if err := validName(l.Name); err != nil {
						return err
					}
					parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
				}
				if _, err := io.WriteString(w, "{"+strings.Join(parts, ",")+"}"); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, " %s\n", formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// validName enforces the Prometheus metric/label name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("metrics: empty metric or label name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("metrics: invalid name %q", name)
		}
	}
	return nil
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes backslashes, quotes and newlines in label values.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
