package metrics

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	err := WritePrometheus(&sb, []Family{
		{
			Name: "dbdht_msgs_total", Help: "messages received", Type: TypeCounter,
			Samples: []Sample{{Value: 1234}},
		},
		{
			Name: "dbdht_keys", Help: "stored keys", Type: TypeGauge,
			Samples: []Sample{
				{Labels: []Label{{"snode", "1"}}, Value: 10},
				{Labels: []Label{{"snode", "2"}}, Value: 0.5},
			},
		},
		{Name: "dbdht_empty", Help: "skipped", Type: TypeGauge}, // no samples
	})
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP dbdht_msgs_total messages received
# TYPE dbdht_msgs_total counter
dbdht_msgs_total 1234
# HELP dbdht_keys stored keys
# TYPE dbdht_keys gauge
dbdht_keys{snode="1"} 10
dbdht_keys{snode="2"} 0.5
`
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if strings.Contains(got, "dbdht_empty") {
		t.Fatal("sampleless family should be skipped")
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	var sb strings.Builder
	err := WritePrometheus(&sb, []Family{{
		Name: "m", Help: "line1\nline2 \\ backslash", Type: TypeGauge,
		Samples: []Sample{{Labels: []Label{{"l", "a\"b\\c\nd"}}, Value: 1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `# HELP m line1\nline2 \\ backslash`) {
		t.Fatalf("help not escaped: %s", got)
	}
	if !strings.Contains(got, `m{l="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped: %s", got)
	}
}

func TestWritePrometheusRejectsBadNames(t *testing.T) {
	for _, name := range []string{"", "9lead", "has space", "dash-ed"} {
		err := WritePrometheus(&strings.Builder{}, []Family{{Name: name, Type: TypeGauge, Samples: []Sample{{Value: 1}}}})
		if err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
	err := WritePrometheus(&strings.Builder{}, []Family{{
		Name: "ok", Type: TypeGauge,
		Samples: []Sample{{Labels: []Label{{"bad name", "v"}}, Value: 1}},
	}})
	if err == nil {
		t.Fatal("bad label name accepted")
	}
}

func TestWritePrometheusRejectsBadTypes(t *testing.T) {
	for _, typ := range []string{"", "histo", "summary", "Counter"} {
		err := WritePrometheus(&strings.Builder{}, []Family{{
			Name: "m", Type: typ, Samples: []Sample{{Value: 1}},
		}})
		if err == nil {
			t.Fatalf("type %q accepted", typ)
		}
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5) // +Inf bucket
	var sb strings.Builder
	if err := WritePrometheus(&sb, []Family{
		HistogramFamily("dbdht_op_seconds", "op latency", h.Snapshot(), Label{"snode", "3"}),
	}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP dbdht_op_seconds op latency
# TYPE dbdht_op_seconds histogram
dbdht_op_seconds_bucket{snode="3",le="0.001"} 2
dbdht_op_seconds_bucket{snode="3",le="0.01"} 3
dbdht_op_seconds_bucket{snode="3",le="+Inf"} 4
dbdht_op_seconds_sum{snode="3"} 5.006
dbdht_op_seconds_count{snode="3"} 4
`
	if got != want {
		t.Fatalf("histogram exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
