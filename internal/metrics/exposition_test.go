package metrics

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	err := WritePrometheus(&sb, []Family{
		{
			Name: "dbdht_msgs_total", Help: "messages received", Type: TypeCounter,
			Samples: []Sample{{Value: 1234}},
		},
		{
			Name: "dbdht_keys", Help: "stored keys", Type: TypeGauge,
			Samples: []Sample{
				{Labels: []Label{{"snode", "1"}}, Value: 10},
				{Labels: []Label{{"snode", "2"}}, Value: 0.5},
			},
		},
		{Name: "dbdht_empty", Help: "skipped", Type: TypeGauge}, // no samples
	})
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP dbdht_msgs_total messages received
# TYPE dbdht_msgs_total counter
dbdht_msgs_total 1234
# HELP dbdht_keys stored keys
# TYPE dbdht_keys gauge
dbdht_keys{snode="1"} 10
dbdht_keys{snode="2"} 0.5
`
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if strings.Contains(got, "dbdht_empty") {
		t.Fatal("sampleless family should be skipped")
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	var sb strings.Builder
	err := WritePrometheus(&sb, []Family{{
		Name: "m", Help: "line1\nline2 \\ backslash",
		Samples: []Sample{{Labels: []Label{{"l", "a\"b\\c\nd"}}, Value: 1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, `# HELP m line1\nline2 \\ backslash`) {
		t.Fatalf("help not escaped: %s", got)
	}
	if !strings.Contains(got, `m{l="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped: %s", got)
	}
}

func TestWritePrometheusRejectsBadNames(t *testing.T) {
	for _, name := range []string{"", "9lead", "has space", "dash-ed"} {
		err := WritePrometheus(&strings.Builder{}, []Family{{Name: name, Samples: []Sample{{Value: 1}}}})
		if err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
	err := WritePrometheus(&strings.Builder{}, []Family{{
		Name:    "ok",
		Samples: []Sample{{Labels: []Label{{"bad name", "v"}}, Value: 1}},
	}})
	if err == nil {
		t.Fatal("bad label name accepted")
	}
}
