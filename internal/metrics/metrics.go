package metrics

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDevAround returns the population standard deviation of xs measured
// around the given center.  The paper measures deviation from the *ideal*
// average (e.g. Q̄_g = 1/G in §4.2.1), which need not equal the sample mean,
// so the center is a parameter.
func StdDevAround(xs []float64, center float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		d := x - center
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// StdDev returns the population standard deviation around the sample mean.
func StdDev(xs []float64) float64 { return StdDevAround(xs, Mean(xs)) }

// RelStdDev returns σ̄(X, X̄) = σ(X, X̄)/X̄, the paper's quality metric, as a
// fraction (multiply by 100 for the percentages plotted in figures 4–9).
// The center is the sample mean.  It returns 0 when the mean is 0 (an empty
// or all-zero population is perfectly balanced by convention).
func RelStdDev(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// RelStdDevAround is RelStdDev measured around an explicit ideal center,
// e.g. the ideal group quota 1/G of §4.2.1.
func RelStdDevAround(xs []float64, center float64) float64 {
	if center == 0 {
		return 0
	}
	return StdDevAround(xs, center) / center
}

// Welford is a single-pass mean/variance accumulator (Welford's algorithm),
// used where the simulator streams values without retaining them.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 if fewer than one value).
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// RelStdDev returns σ/mean, or 0 when the mean is 0.
func (w *Welford) RelStdDev() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.StdDev() / w.mean
}

// Merge folds another accumulator into w (parallel Welford combination).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	d := o.mean - w.mean
	tot := n1 + n2
	w.mean += d * n2 / tot
	w.m2 += o.m2 + d*d*n1*n2/tot
	w.n += o.n
}

// Series is a measured curve: Y[i] observed at X[i].  The simulation harness
// produces one Series per figure line (e.g. σ̄(Q_v) vs overall number of
// vnodes).
type Series struct {
	Label string
	X     []int
	Y     []float64
}

// At returns the Y value for the given X, or an error if absent.
func (s *Series) At(x int) (float64, error) {
	for i, xi := range s.X {
		if xi == x {
			return s.Y[i], nil
		}
	}
	return 0, fmt.Errorf("metrics: series %q has no point at x=%d", s.Label, x)
}

// Last returns the final Y value; it panics on an empty series, which would
// indicate a harness bug.
func (s *Series) Last() float64 {
	if len(s.Y) == 0 {
		panic("metrics: Last on empty series")
	}
	return s.Y[len(s.Y)-1]
}

// Tail returns the mean of the final frac of the series (0 < frac ≤ 1),
// used to summarize plateau values such as figure 4's 2nd-zone levels.
func (s *Series) Tail(frac float64) float64 {
	if len(s.Y) == 0 || frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	start := len(s.Y) - int(math.Ceil(frac*float64(len(s.Y))))
	if start < 0 {
		start = 0
	}
	return Mean(s.Y[start:])
}

// MeanSeries averages several runs of the same curve point-wise.  All runs
// must share the X axis; the result carries the label of the first run.
// This is exactly the paper's "averages of 100 runs of the same test".
func MeanSeries(runs []Series) (Series, error) {
	if len(runs) == 0 {
		return Series{}, fmt.Errorf("metrics: no runs to average")
	}
	n := len(runs[0].X)
	out := Series{
		Label: runs[0].Label,
		X:     append([]int(nil), runs[0].X...),
		Y:     make([]float64, n),
	}
	for r, run := range runs {
		if len(run.X) != n || len(run.Y) != n {
			return Series{}, fmt.Errorf("metrics: run %d has %d/%d points, want %d", r, len(run.X), len(run.Y), n)
		}
		for i := range run.Y {
			if run.X[i] != out.X[i] {
				return Series{}, fmt.Errorf("metrics: run %d x-axis mismatch at %d", r, i)
			}
			out.Y[i] += run.Y[i]
		}
	}
	for i := range out.Y {
		out.Y[i] /= float64(len(runs))
	}
	return out, nil
}
