package viz

import (
	"strings"
	"testing"

	"dbdht/internal/metrics"
)

func line(label string, ys ...float64) metrics.Series {
	s := metrics.Series{Label: label}
	for i, y := range ys {
		s.X = append(s.X, i+1)
		s.Y = append(s.Y, y)
	}
	return s
}

func TestRenderBasics(t *testing.T) {
	out, err := Render("test chart", []metrics.Series{line("a", 0, 0.5, 1.0)}, Options{Width: 30, Height: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "test chart") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "* a") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("missing data markers")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + x labels + legend
	if len(lines) != 1+10+1+1+1 {
		t.Fatalf("got %d lines", len(lines))
	}
}

func TestRenderMultipleSeries(t *testing.T) {
	out, err := Render("two", []metrics.Series{
		line("first", 1, 2, 3),
		line("second", 3, 2, 1),
	}, Options{Width: 20, Height: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "o second") || !strings.Contains(out, "* first") {
		t.Fatalf("legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Fatal("second marker missing from plot")
	}
}

func TestRenderPercentScaling(t *testing.T) {
	out, err := Render("pct", []metrics.Series{line("a", 0.10, 0.20)}, Options{Percent: true, Width: 20, Height: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "20.00") {
		t.Fatalf("expected percent-scaled axis:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := Render("x", nil, Options{}); err == nil {
		t.Fatal("no series must error")
	}
	if _, err := Render("x", []metrics.Series{{Label: "empty"}}, Options{}); err == nil {
		t.Fatal("empty series must error")
	}
	ragged := metrics.Series{Label: "r", X: []int{1, 2}, Y: []float64{1}}
	if _, err := Render("x", []metrics.Series{ragged}, Options{}); err == nil {
		t.Fatal("ragged series must error")
	}
	var many []metrics.Series
	for i := 0; i < 11; i++ {
		many = append(many, line("s", 1))
	}
	if _, err := Render("x", many, Options{}); err == nil {
		t.Fatal("too many series must error")
	}
}

func TestRenderFlatAndFixedYMax(t *testing.T) {
	// All-zero data must not divide by zero.
	out, err := Render("flat", []metrics.Series{line("z", 0, 0, 0)}, Options{Width: 10, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("empty render")
	}
	// Fixed YMax clamps values above the axis into the top row.
	out, err = Render("clamp", []metrics.Series{line("c", 5, 10)}, Options{Width: 10, Height: 4, YMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4.00") {
		t.Fatalf("fixed axis missing:\n%s", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	s := metrics.Series{Label: "one", X: []int{7}, Y: []float64{3}}
	out, err := Render("single", []metrics.Series{s}, Options{Width: 12, Height: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("marker missing for single point")
	}
}
