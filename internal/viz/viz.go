package viz

import (
	"fmt"
	"math"
	"strings"

	"dbdht/internal/metrics"
)

// markers distinguish up to ten overlaid series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&', '=', '~'}

// Options controls chart geometry.
type Options struct {
	// Width and Height are the plot area size in characters (default
	// 72×20).
	Width, Height int
	// YMax fixes the y-axis maximum; 0 auto-scales to the data.
	YMax float64
	// Percent renders y values ×100.
	Percent bool
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 20
	}
	return o
}

// Render draws the series overlaid on one chart with a legend.  All series
// must be non-empty; they may have different x grids.
func Render(title string, series []metrics.Series, o Options) (string, error) {
	o = o.withDefaults()
	if len(series) == 0 {
		return "", fmt.Errorf("viz: no series")
	}
	if len(series) > len(markers) {
		return "", fmt.Errorf("viz: at most %d series per chart, got %d", len(markers), len(series))
	}
	scale := 1.0
	if o.Percent {
		scale = 100
	}
	xmin, xmax := math.MaxInt, math.MinInt
	ymax := o.YMax
	for _, s := range series {
		if len(s.X) == 0 || len(s.X) != len(s.Y) {
			return "", fmt.Errorf("viz: series %q empty or ragged", s.Label)
		}
		for i, x := range s.X {
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if o.YMax == 0 && s.Y[i]*scale > ymax {
				ymax = s.Y[i] * scale
			}
		}
	}
	if ymax == 0 {
		ymax = 1
	}
	grid := make([][]byte, o.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", o.Width))
	}
	for si, s := range series {
		for i, x := range s.X {
			col := 0
			if xmax > xmin {
				col = (x - xmin) * (o.Width - 1) / (xmax - xmin)
			}
			y := s.Y[i] * scale
			row := o.Height - 1
			if ymax > 0 {
				row = o.Height - 1 - int(math.Round(y/ymax*float64(o.Height-1)))
			}
			if row < 0 {
				row = 0
			}
			if row > o.Height-1 {
				row = o.Height - 1
			}
			grid[row][col] = markers[si]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.2f ", ymax)
		case o.Height - 1:
			label = fmt.Sprintf("%7.2f ", 0.0)
		case (o.Height - 1) / 2:
			label = fmt.Sprintf("%7.2f ", ymax/2)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, strings.TrimRight(string(line), " "))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", o.Width))
	fmt.Fprintf(&b, "        %-10d%*d\n", xmin, o.Width-10, xmax)
	for si, s := range series {
		fmt.Fprintf(&b, "        %c %s\n", markers[si], s.Label)
	}
	return b.String(), nil
}
