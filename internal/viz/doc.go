// Package viz renders measurement series as ASCII charts, so cmd/dhtsim
// can show the *shape* of each reproduced figure — sawtooths, plateaus,
// crossovers — directly in a terminal, next to the numeric tables.
package viz
