package cluster

import (
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/core"
	"dbdht/internal/hashspace"
	"dbdht/internal/metrics"
	"dbdht/internal/wal"
)

// clientID is the fabric endpoint the Cluster handle itself occupies.
const clientID transport.NodeID = -1

// Cluster is the client handle to a running DHT cluster: it manages snode
// membership and enrollment and offers the key/value data plane.  It is
// safe for concurrent use; operations on different groups proceed in
// parallel inside the cluster (§3.1).
type Cluster struct {
	cfg Config
	net transport.Network

	pendMu  sync.Mutex
	pending map[uint64]chan any // guarded by pendMu
	opSeq   atomic.Uint64

	mu           sync.Mutex
	snodes       map[transport.NodeID]*Snode  // guarded by mu
	order        []transport.NodeID           // guarded by mu
	caps         map[transport.NodeID]float64 // guarded by mu; per-snode capacity weights
	deadCaps     map[transport.NodeID]float64 // guarded by mu; weights of crashed snodes, for RestartSnode
	nextID       transport.NodeID             // guarded by mu
	viewEpoch    uint64                       // guarded by mu
	bootstrapped bool                         // guarded by mu
	firstOwner   ownerRef                     // guarded by mu
	rng          *rand.Rand                   // guarded by mu

	// Autonomous balancer state (see balancer.go).
	balMu     sync.Mutex // serializes balance rounds
	balRounds atomic.Int64
	balMoves  atomic.Int64
	balSigma  atomic.Uint64 // float64 bits of the last round's deviation

	// subFails counts batch sub-requests that failed with a transport or
	// RPC error — the handle-side cost of stale routes (tests assert a
	// graceful departure leaves none behind).
	subFails atomic.Int64

	// failoverDetects counts snodes the liveness detector (failoverLoop)
	// declared crashed after missing consecutive pings.
	failoverDetects atomic.Int64

	// Owner-route cache learned from batch responses: batches aim straight
	// at believed owners instead of random entry snodes.
	routeMu   sync.Mutex
	routes    map[hashspace.Partition]route // guarded by routeMu
	routeLvls levelSet                      // guarded by routeMu

	retiredMu  sync.Mutex
	retired    StatsSnapshot     // guarded by retiredMu; counters of snodes that left the cluster
	retiredWal wal.StatsSnapshot // guarded by retiredMu; durability counters of snodes that left
	retiredLat LatencySnapshot   // guarded by retiredMu; latency histograms of snodes that left

	// Observability at the handle: the head sampler for client operations,
	// the client-side span ring, the batch sub-RPC latency histogram, the
	// slow-op threshold and the structured logger (trace.go).
	sampler  sampler
	tracer   *tracer
	batchRPC *metrics.Histogram
	slowOp   time.Duration
	log      *slog.Logger

	stopOnce sync.Once
	done     chan struct{}
}

// foldStats accumulates a departing snode's counters so cluster-wide totals
// are monotonic across membership changes.
func (a *StatsSnapshot) fold(b StatsSnapshot) {
	a.MsgsIn += b.MsgsIn
	a.Forwards += b.Forwards
	a.PartitionsSent += b.PartitionsSent
	a.KeysMoved += b.KeysMoved
	a.SplitAlls += b.SplitAlls
	a.GroupSplits += b.GroupSplits
	a.JoinsLed += b.JoinsLed
	a.LeavesLed += b.LeavesLed
	a.DataOps += b.DataOps
	a.Requeues += b.Requeues
	a.Batches += b.Batches
	a.ReplWrites += b.ReplWrites
	a.ReplRepairs += b.ReplRepairs
	a.ReplLagged += b.ReplLagged
	a.FailoverReads += b.FailoverReads
	a.ChunksSent += b.ChunksSent
	a.MigAborts += b.MigAborts
	a.FreezeTimeouts += b.FreezeTimeouts
	a.Elections += b.Elections
	a.Promotions += b.Promotions
}

// New starts an empty cluster over the given fabric (use transport.NewMem()
// for simulations, transport.NewTCP for a real network).
func New(cfg Config, net transport.Network) (*Cluster, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	inbox, err := net.Register(clientID)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:      cfg,
		net:      net,
		pending:  make(map[uint64]chan any),
		snodes:   make(map[transport.NodeID]*Snode),
		caps:     make(map[transport.NodeID]float64),
		deadCaps: make(map[transport.NodeID]float64),
		nextID:   1,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D)),
		routes:   make(map[hashspace.Partition]route),
		tracer:   newTracer(cfg.TraceBufferSize),
		batchRPC: metrics.NewLatencyHistogram(),
		slowOp:   cfg.SlowOpThreshold,
		log:      cfg.Logger.With("component", "cluster"),
		done:     make(chan struct{}),
	}
	c.sampler.setRate(cfg.TraceSample)
	go c.loop(inbox)
	if cfg.Balance.Interval > 0 {
		go c.balancerLoop()
	}
	if cfg.FailoverPingInterval > 0 {
		go c.failoverLoop()
	}
	return c, nil
}

// loop routes responses to waiting client calls.
func (c *Cluster) loop(inbox <-chan transport.Envelope) {
	defer close(c.done)
	for env := range inbox {
		var op uint64
		switch m := env.Msg.(type) {
		case snodeRecoveredMsg:
			// A promoted (failover.go) or restarted primary re-announced
			// custody of its partitions: fold the fresh owner pointers into
			// the route cache so the next batch aims straight at the new
			// primary instead of a route the crash left dead.
			c.learnRoutes(m.Routes)
			continue
		case createVnodeResp:
			op = m.Op
		case leaveVnodeResp:
			op = m.Op
		case pingResp:
			op = m.Op
		case lookupResp:
			op = m.Op
		case batchResp:
			op = m.Op
		case loadReportResp:
			op = m.Op
		default:
			continue
		}
		c.pendMu.Lock()
		ch, ok := c.pending[op]
		c.pendMu.Unlock()
		if ok {
			select {
			case ch <- env.Msg:
			default:
			}
		}
	}
}

// rpc issues one correlated request from the client endpoint.
func (c *Cluster) rpc(to transport.NodeID, build func(op uint64) any) (any, error) {
	return c.rpcTr(to, transport.TraceContext{}, build)
}

// rpcTr is rpc with a trace context riding the request envelope.
func (c *Cluster) rpcTr(to transport.NodeID, tr transport.TraceContext, build func(op uint64) any) (any, error) {
	op := c.opSeq.Add(1)
	ch := make(chan any, 1)
	c.pendMu.Lock()
	c.pending[op] = ch
	c.pendMu.Unlock()
	defer func() {
		c.pendMu.Lock()
		delete(c.pending, op)
		c.pendMu.Unlock()
	}()
	if err := c.net.Send(transport.Envelope{From: clientID, To: to, Trace: tr, Msg: build(op)}); err != nil {
		return nil, err
	}
	select {
	case v := <-ch:
		return v, nil
	case <-time.After(c.cfg.RPCTimeout):
		return nil, fmt.Errorf("cluster: client rpc to %d timed out", to)
	}
}

// AddSnode joins a fresh snode of unit capacity to the cluster and
// returns its id.
func (c *Cluster) AddSnode() (transport.NodeID, error) {
	return c.AddSnodeWithCapacity(1)
}

// validCapacity rejects non-positive, NaN and infinite weights — the
// same domain balance.WeightedTargets demands, enforced at the entry
// points so a bad weight cannot wedge the balancer's rounds later.
func validCapacity(w float64) bool {
	return w > 0 && !math.IsInf(w, 0) // NaN fails w > 0
}

// AddSnodeWithCapacity joins a fresh snode with the given capacity weight
// (base-model feature (a): heterogeneous nodes).  The autonomous balancer
// aims each snode's share of the hash space at weight/Σweights.
func (c *Cluster) AddSnodeWithCapacity(weight float64) (transport.NodeID, error) {
	if !validCapacity(weight) {
		return 0, fmt.Errorf("cluster: capacity weight must be a positive finite number, got %v", weight)
	}
	c.mu.Lock()
	id := c.nextID
	c.nextID++
	cfg := c.cfg
	cfg.Seed = c.cfg.Seed ^ int64(id)<<17
	boot := c.firstOwner
	haveBoot := c.bootstrapped
	c.mu.Unlock()
	s, err := newSnode(id, cfg, c.net)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.snodes[id] = s
	c.order = append(c.order, id)
	c.caps[id] = weight
	c.mu.Unlock()
	if haveBoot {
		_ = c.net.Send(transport.Envelope{From: clientID, To: id, Msg: bootstrapInfo{Owner: boot}})
	}
	c.broadcastView()
	// With durability on, a fresh data directory may not be fresh at all:
	// a dhtd rebooted over its -data-dir re-adds snodes that recover their
	// vnodes from disk, and the handle adopts the recovered DHT instead of
	// bootstrapping a new one over it.
	if !haveBoot && cfg.Durability.Dir != "" && s.recoveredVnodes() {
		c.adoptRecovered(s)
	}
	return id, nil
}

// adoptRecovered makes a recovered snode's DHT the handle's own: the
// bootstrap flag flips, the fallback route aims at a recovered vnode,
// and every snode (the recovered one included) learns it.
func (c *Cluster) adoptRecovered(s *Snode) {
	hosted := s.hostedVnodes()
	if len(hosted) == 0 {
		return
	}
	owner := ownerRef{Vnode: hosted[0], Host: s.ID()}
	c.mu.Lock()
	if c.bootstrapped {
		c.mu.Unlock()
		return
	}
	c.bootstrapped = true
	c.firstOwner = owner
	ids := append([]transport.NodeID(nil), c.order...)
	c.mu.Unlock()
	for _, id := range ids {
		_ = c.net.Send(transport.Envelope{From: clientID, To: id, Msg: bootstrapInfo{Owner: owner}})
	}
}

// broadcastView refreshes every snode's sorted membership view — the
// basis of replica placement.  The epoch is taken under the same lock as
// the membership snapshot, so concurrent membership changes cannot make
// an older view overwrite a newer one at a receiver.
func (c *Cluster) broadcastView() {
	c.mu.Lock()
	ids := append([]transport.NodeID(nil), c.order...)
	c.viewEpoch++
	epoch := c.viewEpoch
	c.mu.Unlock()
	view := append([]transport.NodeID(nil), ids...)
	sort.Slice(view, func(i, j int) bool { return view[i] < view[j] })
	for _, id := range ids {
		_ = c.net.Send(transport.Envelope{From: clientID, To: id, Msg: viewUpdate{Epoch: epoch, Snodes: view}})
	}
}

// ReplicationFactor returns R, the configured number of copies per
// partition (1 = replication off).
func (c *Cluster) ReplicationFactor() int { return c.cfg.Replicas }

// SetCapacity re-weights a live snode; the balancer's next round adjusts
// enrollment toward the new target.
func (c *Cluster) SetCapacity(id transport.NodeID, weight float64) error {
	if !validCapacity(weight) {
		return fmt.Errorf("cluster: capacity weight must be a positive finite number, got %v", weight)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.snodes[id]; !ok {
		return fmt.Errorf("cluster: snode %d not in cluster", id)
	}
	c.caps[id] = weight
	return nil
}

// Capacities returns the per-snode capacity weights.
func (c *Cluster) Capacities() map[transport.NodeID]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[transport.NodeID]float64, len(c.caps))
	for id, w := range c.caps {
		out[id] = w
	}
	return out
}

// Snodes returns the live snode ids in join order.
func (c *Cluster) Snodes() []transport.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]transport.NodeID(nil), c.order...)
}

// CreateVnode asks the given snode to enroll one more vnode (§3.6) and
// returns the vnode's canonical name and the group it joined.
func (c *Cluster) CreateVnode(at transport.NodeID) (VnodeName, core.GroupID, error) {
	c.mu.Lock()
	if _, ok := c.snodes[at]; !ok {
		c.mu.Unlock()
		return VnodeName{}, core.GroupID{}, fmt.Errorf("cluster: snode %d not in cluster", at)
	}
	bootstrap := !c.bootstrapped
	if bootstrap {
		c.bootstrapped = true // optimistic; reverted on failure
	}
	c.mu.Unlock()
	v, err := c.rpc(at, func(op uint64) any {
		return createVnodeReq{Op: op, ReplyTo: clientID, Bootstrap: bootstrap}
	})
	if err != nil {
		if bootstrap {
			c.mu.Lock()
			c.bootstrapped = false
			c.mu.Unlock()
		}
		return VnodeName{}, core.GroupID{}, err
	}
	resp := v.(createVnodeResp)
	if resp.Err != "" {
		if bootstrap {
			c.mu.Lock()
			c.bootstrapped = false
			c.mu.Unlock()
		}
		return VnodeName{}, core.GroupID{}, fmt.Errorf("cluster: create vnode at %d: %s", at, resp.Err)
	}
	if bootstrap {
		owner := ownerRef{Vnode: resp.Vnode, Host: at}
		c.mu.Lock()
		c.firstOwner = owner
		ids := append([]transport.NodeID(nil), c.order...)
		c.mu.Unlock()
		for _, id := range ids {
			_ = c.net.Send(transport.Envelope{From: clientID, To: id, Msg: bootstrapInfo{Owner: owner}})
		}
	}
	return resp.Vnode, resp.Group, nil
}

// RemoveVnode dissolves one vnode (dynamic leave), reassigning its
// partitions and data within its group.
func (c *Cluster) RemoveVnode(name VnodeName) error {
	const maxRetries = 16
	for attempt := 0; attempt < maxRetries; attempt++ {
		v, err := c.rpc(name.Snode, func(op uint64) any {
			return leaveVnodeReq{Op: op, Vnode: name, ReplyTo: clientID}
		})
		if err != nil {
			return err
		}
		resp := v.(leaveVnodeResp)
		if resp.Retry {
			continue
		}
		if resp.Err != "" {
			return fmt.Errorf("cluster: remove vnode %v: %s", name, resp.Err)
		}
		return nil
	}
	return fmt.Errorf("cluster: remove vnode %v: retries exhausted", name)
}

// SetEnrollment adjusts how many vnodes the snode hosts — the base model's
// dynamic enrollment level (feature (b) of §1).  It returns the hosted
// count after adjustment.
func (c *Cluster) SetEnrollment(at transport.NodeID, target int) (int, error) {
	if target < 0 {
		return 0, fmt.Errorf("cluster: enrollment must be ≥ 0, got %d", target)
	}
	c.mu.Lock()
	s, ok := c.snodes[at]
	c.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("cluster: snode %d not in cluster", at)
	}
	for {
		hosted := s.hostedVnodes()
		switch {
		case len(hosted) < target:
			if _, _, err := c.CreateVnode(at); err != nil {
				return len(hosted), err
			}
		case len(hosted) > target:
			if err := c.RemoveVnode(hosted[len(hosted)-1]); err != nil {
				return len(hosted), err
			}
		default:
			return target, nil
		}
	}
}

// RemoveSnode gracefully withdraws an snode: all its vnodes leave, its led
// groups hand leadership to other members, and it disconnects.
func (c *Cluster) RemoveSnode(id transport.NodeID) error {
	c.mu.Lock()
	s, ok := c.snodes[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: snode %d not in cluster", id)
	}
	for _, name := range s.hostedVnodes() {
		if err := c.RemoveVnode(name); err != nil {
			return err
		}
	}
	if err := s.relinquishLeadership(); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.snodes, id)
	delete(c.caps, id)
	for i, o := range c.order {
		if o == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	survivors := append([]transport.NodeID(nil), c.order...)
	needNewBoot := c.firstOwner.Host == id
	c.mu.Unlock()
	c.broadcastView() // before any fallible step: placement must stop using the leaver
	// Proactive purge: the leaver's partitions all moved to survivors, so
	// every cached pointer at it — owner routes and replica sets alike —
	// is stale now, not on the first failed batch RPC.
	c.purgeRoutesTo(id, false)
	// Bequeath the leaver's custody table so no routing chain dangles.
	leaving := snodeLeavingMsg{Leaving: id, Routes: s.routingTable()}
	for _, sid := range survivors {
		_ = c.net.Send(transport.Envelope{From: clientID, To: sid, Msg: leaving})
	}
	if needNewBoot {
		if err := c.reseedBootstrap(survivors); err != nil {
			return err
		}
	}
	c.retiredMu.Lock()
	c.retired.fold(s.stats.snapshot())
	if s.dur != nil {
		c.retiredWal.Fold(s.dur.log.Stats().Snapshot())
	}
	c.retiredLat.fold(s.lat)
	c.retiredMu.Unlock()
	s.stop()
	return nil
}

// KillSnode stops an snode abruptly — no graceful leave, no partition
// migration — simulating a crash.  Its vnodes' partitions lose their
// primary: with replication on (R ≥ 2) their data stays readable from the
// replicas (failover reads) while the surviving replica set elects and
// promotes a new primary (failover.go), after which writes resume without
// operator action; with R = 1 the data is lost, exactly the failure the
// paper's model excludes (§5).  Survivors drop their routing pointers at
// the dead snode and learn the shrunken membership view, so anti-entropy
// re-homes the replica sets that included it.
func (c *Cluster) KillSnode(id transport.NodeID) error {
	c.mu.Lock()
	s, ok := c.snodes[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: snode %d not in cluster", id)
	}
	delete(c.snodes, id)
	c.deadCaps[id] = c.caps[id] // RestartSnode restores the weight
	delete(c.caps, id)
	for i, o := range c.order {
		if o == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	survivors := append([]transport.NodeID(nil), c.order...)
	needNewBoot := c.firstOwner.Host == id
	c.mu.Unlock()
	// Proactive purge: routes aimed at the dead snode with surviving
	// replicas are retargeted (marked dead-primary, so the very next read
	// goes straight to a replica instead of burning a failed RPC first);
	// routes with no surviving copy are dropped, and the dead host is
	// stripped from every cached replica set.
	c.purgeRoutesTo(id, true)
	c.retiredMu.Lock()
	c.retired.fold(s.stats.snapshot())
	if s.dur != nil {
		c.retiredWal.Fold(s.dur.log.Stats().Snapshot())
	}
	c.retiredLat.fold(s.lat)
	c.retiredMu.Unlock()
	s.crashed.Store(true) // abandon (not flush) the WAL: crashes do not get to fsync
	s.stop()
	c.broadcastView() // before any fallible step: placement must stop using the dead snode
	// A crash bequeaths nothing: survivors just drop pointers at the dead
	// snode (stale chains through it would only hit fast send errors).
	// Crashed starts the failover election at every survivor backing one
	// of the victim's partitions as a replica.
	dead := snodeLeavingMsg{Leaving: id, Crashed: true}
	for _, sid := range survivors {
		_ = c.net.Send(transport.Envelope{From: clientID, To: sid, Msg: dead})
	}
	if needNewBoot {
		if err := c.reseedBootstrap(survivors); err != nil {
			return err
		}
	}
	return nil
}

// RestartSnode brings a previously crashed (or otherwise departed) snode
// back under the SAME id, recovering its state from the data directory:
// snapshot + WAL tail replay into its buckets before it rejoins the
// fabric.  Requires durability to be configured.  The restarted snode
// re-announces its owned partitions so the custody pointers the crash
// pruned grow back, and — when the whole DHT died with it (the R=1
// single-snode case) — the handle re-adopts the recovered DHT.
func (c *Cluster) RestartSnode(id transport.NodeID) error {
	if c.cfg.Durability.Dir == "" {
		return fmt.Errorf("cluster: RestartSnode requires a durability data dir")
	}
	c.mu.Lock()
	if _, live := c.snodes[id]; live {
		c.mu.Unlock()
		return fmt.Errorf("cluster: snode %d is still in the cluster", id)
	}
	cfg := c.cfg
	cfg.Seed = c.cfg.Seed ^ int64(id)<<17
	boot := c.firstOwner
	haveBoot := c.bootstrapped
	c.mu.Unlock()
	s, err := newSnode(id, cfg, c.net)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.snodes[id] = s
	c.order = append(c.order, id)
	// A crashed snode comes back with the capacity weight it had (the
	// balancer would otherwise migrate most of its recovered share away);
	// an id never seen before defaults to unit capacity.
	w := 1.0
	if prev, ok := c.deadCaps[id]; ok && prev > 0 {
		w = prev
		delete(c.deadCaps, id)
	}
	c.caps[id] = w
	if id >= c.nextID {
		c.nextID = id + 1
	}
	survivors := append([]transport.NodeID(nil), c.order...)
	c.mu.Unlock()
	c.broadcastView()
	if haveBoot {
		_ = c.net.Send(transport.Envelope{From: clientID, To: id, Msg: bootstrapInfo{Owner: boot}})
	} else if s.recoveredVnodes() {
		c.adoptRecovered(s)
	}
	// Re-announce the recovered regions: survivors dropped every custody
	// pointer at this snode when it crashed, so without this the data it
	// recovered would be unroutable from elsewhere.
	if routes := s.ownedRoutes(); len(routes) > 0 {
		announce := snodeRecoveredMsg{Recovered: id, Routes: routes}
		for _, sid := range survivors {
			if sid != id {
				_ = c.net.Send(transport.Envelope{From: clientID, To: sid, Msg: announce})
			}
		}
	}
	// Routes the crash marked dead-primary point at live data again.
	c.routeMu.Lock()
	for p, rt := range c.routes {
		if rt.dead && rt.ref.Host == id {
			rt.dead = false
			c.routes[p] = rt
		}
	}
	c.routeMu.Unlock()
	return nil
}

// failoverLoop is the handle's liveness detector: every
// FailoverPingInterval it pings each snode, and one that misses
// FailoverPingMisses consecutive rounds is declared crashed via KillSnode
// — which fences it out of the view and starts the replica-set failover
// election, so a wedged or silently dead snode loses its partitions to
// promoted replicas without operator action.
func (c *Cluster) failoverLoop() {
	misses := make(map[transport.NodeID]int)
	t := time.NewTicker(c.cfg.FailoverPingInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		for _, id := range c.Snodes() {
			_, err := c.rpc(id, func(op uint64) any {
				return pingReq{Op: op, ReplyTo: clientID}
			})
			if err == nil {
				delete(misses, id)
				continue
			}
			misses[id]++
			if misses[id] < c.cfg.FailoverPingMisses {
				continue
			}
			delete(misses, id)
			c.failoverDetects.Add(1)
			c.log.Warn("liveness detector declaring snode crashed",
				"snode", id, "misses", c.cfg.FailoverPingMisses)
			if err := c.KillSnode(id); err != nil {
				c.log.Warn("liveness detector kill failed", "snode", id, "err", err)
			}
		}
	}
}

// reseedBootstrap points every snode's fallback route at a live vnode after
// the previous bootstrap owner's host left.
func (c *Cluster) reseedBootstrap(survivors []transport.NodeID) error {
	c.mu.Lock()
	var owner ownerRef
	found := false
	for _, sid := range survivors {
		if s, ok := c.snodes[sid]; ok {
			if hosted := s.hostedVnodes(); len(hosted) > 0 {
				owner = ownerRef{Vnode: hosted[0], Host: sid}
				found = true
				break
			}
		}
	}
	if !found {
		// No vnodes remain anywhere: the DHT is empty again.
		c.bootstrapped = false
		c.firstOwner = ownerRef{}
		c.mu.Unlock()
		return nil
	}
	c.firstOwner = owner
	c.mu.Unlock()
	for _, sid := range survivors {
		_ = c.net.Send(transport.Envelope{From: clientID, To: sid, Msg: bootstrapInfo{Owner: owner}})
	}
	return nil
}

// entry picks a random snode as the entry point for a data operation.
func (c *Cluster) entry() (transport.NodeID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return 0, fmt.Errorf("cluster: no snodes")
	}
	return c.order[c.rng.Intn(len(c.order))], nil
}

// Single-key operations ride the batched data plane as one-item batches:
// they share its owner-route cache (a warmed key goes straight to its
// owner instead of through a random entry snode), its stale-route
// invalidation and retry, and — with replication on — its read failover
// to replica hosts when the owner stopped answering.

// Put stores a key/value pair.
func (c *Cluster) Put(key string, value []byte) error {
	res, err := c.MPut([]KV{{Key: key, Value: value}})
	if err != nil {
		return err
	}
	if res[0].Err != "" {
		return fmt.Errorf("cluster: put %q: %s", key, res[0].Err)
	}
	return nil
}

// Get fetches a key; found is false for absent keys.
func (c *Cluster) Get(key string) (value []byte, found bool, err error) {
	res, err := c.MGet([]string{key})
	if err != nil {
		return nil, false, err
	}
	if res[0].Err != "" {
		return nil, false, fmt.Errorf("cluster: get %q: %s", key, res[0].Err)
	}
	return res[0].Value, res[0].Found, nil
}

// Delete removes a key; found reports whether it existed.
func (c *Cluster) Delete(key string) (found bool, err error) {
	res, err := c.MDelete([]string{key})
	if err != nil {
		return false, err
	}
	if res[0].Err != "" {
		return false, fmt.Errorf("cluster: delete %q: %s", key, res[0].Err)
	}
	return res[0].Found, nil
}

// Lookup resolves the vnode responsible for a key.
func (c *Cluster) Lookup(key string) (VnodeName, error) {
	at, err := c.entry()
	if err != nil {
		return VnodeName{}, err
	}
	v, err := c.rpc(at, func(op uint64) any {
		return lookupReq{Op: op, R: hashspace.HashString(key), ReplyTo: clientID}
	})
	if err != nil {
		return VnodeName{}, err
	}
	resp := v.(lookupResp)
	if resp.Err != "" {
		return VnodeName{}, fmt.Errorf("cluster: lookup %q: %s", key, resp.Err)
	}
	return resp.Owner, nil
}

// Ping round-trips every snode's inbox, draining previously queued
// fire-and-forget traffic on each (client → snode) pair.
func (c *Cluster) Ping() error {
	for _, id := range c.Snodes() {
		v, err := c.rpc(id, func(op uint64) any {
			return pingReq{Op: op, ReplyTo: clientID}
		})
		if err != nil {
			return err
		}
		if _, ok := v.(pingResp); !ok {
			return fmt.Errorf("cluster: unexpected ping reply %T", v)
		}
	}
	return nil
}

// Close stops every snode and the fabric.
func (c *Cluster) Close() {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		snodes := make([]*Snode, 0, len(c.snodes))
		for _, s := range c.snodes {
			snodes = append(snodes, s)
		}
		c.mu.Unlock()
		for _, s := range snodes {
			s.stop()
		}
		c.net.Close()
	})
}

// --- introspection (tests, examples, benches) ---

// hostedVnodes returns the names of the vnodes hosted at this snode, in
// creation order.
func (s *Snode) hostedVnodes() []VnodeName {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]VnodeName, 0, len(s.vnodes))
	for name, vs := range s.vnodes {
		if vs.joined {
			out = append(out, name)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// VnodeInfo is one vnode's materialized state in a snapshot.
type VnodeInfo struct {
	Name       VnodeName
	Host       transport.NodeID
	Group      core.GroupID
	Level      uint8
	Partitions []hashspace.Partition
	Keys       int
}

// Snapshot is a cluster-wide state dump for verification and metrics.
type Snapshot struct {
	Vnodes   []VnodeInfo
	Replicas map[transport.NodeID][]lpdrState
	Leaders  map[core.GroupID]transport.NodeID
}

// Snapshot collects the materialized state of every snode.  The cluster
// should be quiescent (no in-flight operations) for a consistent picture.
func (c *Cluster) Snapshot() Snapshot {
	c.mu.Lock()
	snodes := make([]*Snode, 0, len(c.snodes))
	for _, id := range c.order {
		snodes = append(snodes, c.snodes[id])
	}
	c.mu.Unlock()
	snap := Snapshot{
		Replicas: make(map[transport.NodeID][]lpdrState),
		Leaders:  make(map[core.GroupID]transport.NodeID),
	}
	for _, s := range snodes {
		s.mu.Lock()
		for name, vs := range s.vnodes {
			if !vs.joined {
				continue
			}
			info := VnodeInfo{Name: name, Host: s.id, Group: vs.group, Level: vs.level}
			for p, bk := range vs.parts {
				info.Partitions = append(info.Partitions, p)
				info.Keys += bk.keys()
			}
			sort.Slice(info.Partitions, func(i, j int) bool {
				return info.Partitions[i].Prefix < info.Partitions[j].Prefix
			})
			snap.Vnodes = append(snap.Vnodes, info)
		}
		for _, rep := range s.replicas {
			snap.Replicas[s.id] = append(snap.Replicas[s.id], *rep)
		}
		for gid := range s.led {
			snap.Leaders[gid] = s.id
		}
		s.mu.Unlock()
	}
	sort.Slice(snap.Vnodes, func(i, j int) bool { return snap.Vnodes[i].Name.Less(snap.Vnodes[j].Name) })
	return snap
}

// VnodeQuotas computes Q_v for every vnode from a snapshot, in name order.
func (snap Snapshot) VnodeQuotas() []float64 {
	out := make([]float64, len(snap.Vnodes))
	for i, v := range snap.Vnodes {
		q := 0.0
		for _, p := range v.Partitions {
			q += p.Quota()
		}
		out[i] = q
	}
	return out
}

// StatsTotal aggregates every snode's runtime counters.
func (c *Cluster) StatsTotal() StatsSnapshot {
	c.mu.Lock()
	snodes := make([]*Snode, 0, len(c.snodes))
	for _, s := range c.snodes {
		snodes = append(snodes, s)
	}
	c.mu.Unlock()
	c.retiredMu.Lock()
	tot := c.retired
	c.retiredMu.Unlock()
	for _, s := range snodes {
		tot.fold(s.stats.snapshot())
	}
	tot.FailoverDetects = c.failoverDetects.Load()
	return tot
}
