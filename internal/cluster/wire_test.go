package cluster

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"
	"time"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/core"
	"dbdht/internal/hashspace"
)

// roundTrip frames msg as an envelope, decodes it, and returns the decoded
// payload.
func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	frame, err := transport.AppendFrame(nil, transport.Envelope{From: -1, To: 42, Msg: msg})
	if err != nil {
		t.Fatalf("AppendFrame(%T): %v", msg, err)
	}
	env, err := transport.DecodeFrame(frame[4:])
	if err != nil {
		t.Fatalf("DecodeFrame(%T): %v", msg, err)
	}
	if env.From != -1 || env.To != 42 {
		t.Fatalf("%T: envelope header mangled: %+v", msg, env)
	}
	return env.Msg
}

// TestWireRoundTrips round-trips every hot message type through the binary
// frame codec and requires an exact value match.
func TestWireRoundTrips(t *testing.T) {
	p := hashspace.Partition{Prefix: 0b1011, Level: 4}
	owner := VnodeName{Snode: 3, Local: 7}
	cases := []any{
		lookupReq{Op: 9, R: 1 << 60, ReplyTo: -1, Hops: 12},
		lookupResp{Op: 10, Owner: owner, Host: 3, Partition: p,
			Group: core.GroupID{Bits: 0b110, Len: 3}, Leader: 5, Err: "boom"},
		lookupResp{Op: 11}, // zero-valued optional fields
		batchReq{Op: 12, Kind: opPut, Items: []batchItem{
			{Key: "a", Value: []byte("va")},
			{Key: "b"}, // nil value (deletes, gets)
		}, ReplyTo: -1, Hops: 2, ReadReplica: true, private: true},
		batchReq{Op: 13, Kind: opGet, private: true}, // empty batch
		batchResp{Op: 14, Results: []batchItemResp{
			{Value: []byte("v"), Found: true},
			{Err: "missing"},
		}, Served: []routeEntry{
			{Partition: p, Ref: ownerRef{Vnode: owner, Host: 3}, Replicas: []transport.NodeID{1, 2}},
			{Partition: hashspace.Partition{}, Ref: ownerRef{Vnode: VnodeName{Snode: 1}, Host: 1}},
		}},
		replWriteReq{Op: 15, Kind: opDel, Sets: []replWriteSet{
			{Partition: p, Items: []batchItem{{Key: "k", Value: []byte("v")}}},
			{Partition: p.Sibling()},
		}, ReplyTo: 4, private: true},
		replWriteResp{Op: 16, Err: "lagging"},
		replProbeReq{Op: 17, Partition: p, Count: 321, Sum: 1<<63 + 5, ReplyTo: 2},
		replProbeResp{Op: 18, InSync: true},
		pingReq{Op: 19, ReplyTo: -1},
		pingResp{Op: 20},
		migBeginReq{Op: 21, Group: core.GroupID{Bits: 0b10, Len: 2}, To: owner,
			Partition: p, Level: 4, ReplyTo: 6},
		migBeginResp{Op: 22, Err: "not allocated"},
		migChunkReq{Op: 23, To: owner, Partition: p, Items: []migItem{
			{Key: "live", Value: []byte("v1")},
			{Key: "gone", Del: true},
			{Key: "empty"}, // nil value, not deleted
		}, ReplyTo: 6, private: true},
		migChunkReq{Op: 24, To: owner, Partition: p, private: true}, // empty chunk
		migChunkResp{Op: 25},
		migCommitReq{Op: 26, To: owner, Partition: p, Items: []migItem{
			{Key: "final", Value: []byte("vf")},
		}, ReplyTo: 6, private: true},
		migCommitResp{Op: 27, Err: "boom"},
		migAbortMsg{To: owner, Partition: p},
		loadReportReq{Op: 28, ReplyTo: -1},
		loadReportResp{Op: 29, Vnodes: 4, Keys: 12345, Quota: 0.375,
			Reads: 1234.5, Writes: 0.25, Bytes: 9.75e6},
		loadReportResp{Op: 30}, // all-zero floats
	}
	for _, want := range cases {
		got := roundTrip(t, want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %T:\n got  %+v\n want %+v", want, got, want)
		}
	}
}

// TestWireTruncatedFrames cuts a realistic batchReq frame at every byte
// offset: each prefix must decode to a clean error, never panic.
func TestWireTruncatedFrames(t *testing.T) {
	items := make([]batchItem, 16)
	for i := range items {
		items[i] = batchItem{Key: fmt.Sprintf("key-%04d", i), Value: []byte("0123456789abcdef")}
	}
	msg := batchReq{Op: 77, Kind: opPut, Items: items, ReplyTo: -1}
	frame, err := transport.AppendFrame(nil, transport.Envelope{From: 1, To: 2, Msg: msg})
	if err != nil {
		t.Fatal(err)
	}
	body := frame[4:]
	for cut := 0; cut < len(body); cut++ {
		if _, err := transport.DecodeFrame(body[:cut]); err == nil {
			t.Fatalf("truncated frame (%d/%d bytes) decoded without error", cut, len(body))
		}
	}
	// Flipping the length of the items array to a huge value must error,
	// not allocate.
	corrupt := append([]byte(nil), body...)
	// Body layout: version, format, flags, From varint, To varint,
	// tag uvarint, Op uvarint, Kind varint, then the item count.
	off := 3
	for n := 0; n < 4; n++ { // From, To, tag, Op, Kind occupy varints
		_, w := binary.Uvarint(corrupt[off:])
		off += w
	}
	_, w := binary.Varint(corrupt[off:])
	off += w
	huge := binary.AppendUvarint(nil, 1<<50)
	corrupt = append(corrupt[:off], append(huge, corrupt[off:]...)...)
	if _, err := transport.DecodeFrame(corrupt); err == nil {
		t.Fatal("frame with a corrupt huge item count decoded without error")
	}
}

// TestWireRejectsInvalidPartition: a structurally valid frame carrying an
// out-of-range partition (level beyond MaxLevel, or stray prefix bits)
// must decode to an error — downstream bookkeeping indexes arrays by
// level, so an unvalidated level would be a remote panic.
func TestWireRejectsInvalidPartition(t *testing.T) {
	for _, bad := range []struct {
		name string
		pre  uint64
		lvl  uint64
	}{
		{"level-past-max", 0, uint64(hashspace.MaxLevel) + 1},
		{"level-huge", 0, 300},
		{"prefix-bits-above-level", 0b111, 1},
	} {
		t.Run(bad.name, func(t *testing.T) {
			var body []byte
			body = append(body, 1, 1) // wire version, binary format
			body = transport.AppendVarint(body, 1)
			body = transport.AppendVarint(body, 2)
			body = transport.AppendUvarint(body, uint64(wireTagReplProbeReq))
			body = transport.AppendUvarint(body, 9) // Op
			body = transport.AppendUvarint(body, bad.pre)
			body = transport.AppendUvarint(body, bad.lvl)
			body = transport.AppendVarint(body, 0) // Count
			body = transport.AppendUvarint(body, 0)
			body = transport.AppendVarint(body, 1) // ReplyTo
			if _, err := transport.DecodeFrame(body); err == nil {
				t.Fatalf("frame with partition (prefix=%b, level=%d) decoded without error", bad.pre, bad.lvl)
			}
		})
	}
}

// TestDataPlaneStaysOnBinaryCodec is the codec-path guarantee: once a TCP
// cluster is serving, batched operations, single-key operations, lookups
// and the replica write fan-out must not touch the gob fallback — only
// rare control-plane traffic may.
func TestDataPlaneStaysOnBinaryCodec(t *testing.T) {
	c, err := New(Config{
		Pmin: 16, Vmin: 4, Seed: 7, RPCTimeout: 20 * time.Second,
		Replicas: 2, AntiEntropyInterval: time.Hour, // keep repair traffic out of the measured window
	}, transport.NewTCP("127.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 4; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < 8; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the route caches so the measured window has no cold-path
	// surprises, then let in-flight control traffic drain.
	var kv []KV
	var keys []string
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("codec-key-%d", i)
		kv = append(kv, KV{Key: k, Value: []byte("v")})
		keys = append(keys, k)
	}
	if _, err := c.MPut(kv); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	binEncBefore, gobEncBefore, _, _ := transport.CodecCounters()
	for round := 0; round < 3; round++ {
		if _, err := c.MPut(kv); err != nil {
			t.Fatal(err)
		}
		if _, err := c.MGet(keys); err != nil {
			t.Fatal(err)
		}
		if _, err := c.MDelete(keys[:4]); err != nil {
			t.Fatal(err)
		}
		if err := c.Put("codec-single", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Get("codec-single"); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Lookup("codec-key-0"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Ping(); err != nil { // drain the batch/replica responses
		t.Fatal(err)
	}
	binEnc, gobEnc, _, _ := transport.CodecCounters()
	if gobEnc != gobEncBefore {
		t.Fatalf("data plane fell back to gob: %d gob encodes during the measured window", gobEnc-gobEncBefore)
	}
	if binEnc == binEncBefore {
		t.Fatal("no binary encodes recorded — counters broken or wrong fabric")
	}
}
