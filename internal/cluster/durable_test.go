package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/wal"
)

// durableCluster boots a mem-fabric cluster journaling into dir.
func durableCluster(t *testing.T, dir string, snodes, vnodes int, mode wal.FsyncMode, replicas int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Pmin: 32, Vmin: 8, Seed: 42, Replicas: replicas,
		RPCTimeout:          10 * time.Second,
		AntiEntropyInterval: 50 * time.Millisecond,
		Durability: DurabilityConfig{
			Dir: dir, Fsync: mode,
			SnapshotInterval: -1, // snapshots only via SnapshotNow in tests
		},
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < snodes; i++ {
		if _, err := c.AddSnode(); err != nil {
			c.Close()
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < vnodes; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			c.Close()
			t.Fatal(err)
		}
	}
	return c
}

// ackedPuts MPuts n keys with the given prefix and returns those acked.
func ackedPuts(t *testing.T, c *Cluster, prefix string, n int) map[string][]byte {
	t.Helper()
	items := make([]KV, n)
	for i := range items {
		items[i] = KV{Key: fmt.Sprintf("%s-%05d", prefix, i), Value: []byte(fmt.Sprintf("val-%s-%05d", prefix, i))}
	}
	res, err := c.MPut(items)
	if err != nil {
		t.Fatal(err)
	}
	acked := make(map[string][]byte, n)
	for i, r := range res {
		if r.OK() {
			acked[items[i].Key] = items[i].Value
		}
	}
	return acked
}

// verifyReadable asserts every key in want reads back with its value.
func verifyReadable(t *testing.T, c *Cluster, want map[string][]byte) {
	t.Helper()
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	res, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for _, r := range res {
		if !r.OK() || !r.Found || string(r.Value) != string(want[r.Key]) {
			lost++
			if lost <= 3 {
				t.Errorf("key %q: ok=%v found=%v value=%q err=%q", r.Key, r.OK(), r.Found, r.Value, r.Err)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acknowledged keys lost", lost, len(want))
	}
}

// TestSingleSnodeRestartRecovers is the tentpole's acceptance scenario:
// R=1, one snode, fsync=batch — kill it abruptly (the WAL's userspace
// buffer is abandoned, not flushed) and restart it; zero acknowledged
// writes may be lost.
func TestSingleSnodeRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, dir, 1, 4, wal.FsyncBatch, 1)
	defer c.Close()

	acked := ackedPuts(t, c, "restart", 3000)
	if len(acked) == 0 {
		t.Fatal("nothing acknowledged")
	}
	// Delete a slice of them: deletions must also survive recovery.
	var dels []string
	for i := 0; i < 3000; i += 10 {
		k := fmt.Sprintf("restart-%05d", i)
		if _, ok := acked[k]; ok {
			dels = append(dels, k)
		}
	}
	res, err := c.MDelete(dels)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.OK() {
			delete(acked, r.Key)
		}
	}

	id := c.Snodes()[0]
	if err := c.KillSnode(id); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartSnode(id); err != nil {
		t.Fatal(err)
	}
	verifyReadable(t, c, acked)

	// Deleted keys must stay deleted.
	got, err := c.MGet(dels)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.OK() && r.Found {
			t.Fatalf("deleted key %q resurrected by recovery", r.Key)
		}
	}

	// The recovered snode keeps serving writes (leadership recovered too:
	// new vnodes can still enroll through the recovered group leaders).
	more := ackedPuts(t, c, "post", 500)
	verifyReadable(t, c, more)
	if _, _, err := c.CreateVnode(id); err != nil {
		t.Fatalf("enrollment after recovery: %v", err)
	}
}

// TestRestartWithSurvivors kills one snode of three (R=1) and restarts
// it: the recovered regions must be readable again from the handle —
// the recovery announcement re-grows the custody pointers the crash
// pruned at the survivors.
func TestRestartWithSurvivors(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, dir, 3, 9, wal.FsyncBatch, 1)
	defer c.Close()

	acked := ackedPuts(t, c, "multi", 3000)
	id := c.Snodes()[1]
	if err := c.KillSnode(id); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartSnode(id); err != nil {
		t.Fatal(err)
	}
	verifyReadable(t, c, acked)
}

// TestSnapshotReplayEquivalence proves snapshot+tail recovery equals
// full-log recovery: state is mutated across a SnapshotNow barrier (so
// recovery must stitch snapshot and tail together), then the snode is
// crash-stopped and restarted.
func TestSnapshotReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, dir, 1, 4, wal.FsyncBatch, 1)
	defer c.Close()

	want := ackedPuts(t, c, "pre", 1500)
	if err := c.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutations: overwrites, fresh keys, deletions.
	over := make([]KV, 0, 300)
	i := 0
	for k := range want {
		if i >= 300 {
			break
		}
		over = append(over, KV{Key: k, Value: []byte("overwritten-" + k)})
		i++
	}
	res, err := c.MPut(over)
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range res {
		if r.OK() {
			want[over[j].Key] = over[j].Value
		}
	}
	for k, v := range ackedPuts(t, c, "post", 800) {
		want[k] = v
	}
	var dels []string
	i = 0
	for k := range want {
		if i >= 200 {
			break
		}
		dels = append(dels, k)
		i++
	}
	dres, err := c.MDelete(dels)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range dres {
		if r.OK() {
			delete(want, r.Key)
		}
	}

	id := c.Snodes()[0]
	if err := c.KillSnode(id); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartSnode(id); err != nil {
		t.Fatal(err)
	}
	verifyReadable(t, c, want)
	got, err := c.MGet(dels)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.OK() && r.Found {
			t.Fatalf("deleted key %q resurrected", r.Key)
		}
	}
}

// TestSnapshotUnderConcurrentWrites hammers writes while snapshot passes
// run, then crash-restarts — the cut consistency argument under real
// concurrency (meaningful chiefly under -race).
func TestSnapshotUnderConcurrentWrites(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, dir, 2, 6, wal.FsyncOff, 1)
	defer c.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	written := make(map[string][]byte)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				batch := make([]KV, 32)
				for j := range batch {
					k := fmt.Sprintf("conc-%d-%d-%d", g, r, j)
					batch[j] = KV{Key: k, Value: []byte("v-" + k)}
				}
				res, err := c.MPut(batch)
				if err != nil {
					continue
				}
				mu.Lock()
				for j, br := range res {
					if br.OK() {
						written[batch[j].Key] = batch[j].Value
					}
				}
				mu.Unlock()
			}
		}(g)
	}
	for i := 0; i < 5; i++ {
		time.Sleep(20 * time.Millisecond)
		if err := c.SnapshotNow(); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()

	// Graceful stop flushes the WAL even at fsync=off, so a restart after
	// a CLEAN shutdown must recover everything acknowledged.
	ids := c.Snodes()
	for _, id := range ids {
		c.mu.Lock()
		s := c.snodes[id]
		c.mu.Unlock()
		_ = s // graceful path: RemoveSnode would migrate data; stop directly instead
	}
	c.Close()

	c2, err := New(Config{
		Pmin: 32, Vmin: 8, Seed: 42, Replicas: 1,
		RPCTimeout: 10 * time.Second,
		Durability: DurabilityConfig{Dir: dir, Fsync: wal.FsyncOff, SnapshotInterval: -1},
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for range ids {
		if _, err := c2.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	verifyReadable(t, c2, written)
}

// TestWholeClusterRestart reboots a multi-snode cluster over the same
// data dir — the dhtd restart story: every snode recovers its share and
// the handle adopts the recovered DHT instead of bootstrapping over it.
func TestWholeClusterRestart(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, dir, 3, 9, wal.FsyncBatch, 1)
	want := ackedPuts(t, c, "boot", 2000)
	if err := c.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	for k, v := range ackedPuts(t, c, "tail", 500) {
		want[k] = v
	}
	c.Close() // graceful: flush everything

	c2, err := New(Config{
		Pmin: 32, Vmin: 8, Seed: 42, Replicas: 1,
		RPCTimeout: 10 * time.Second,
		Durability: DurabilityConfig{Dir: dir, Fsync: wal.FsyncBatch, SnapshotInterval: -1},
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 3; i++ {
		if _, err := c2.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	verifyReadable(t, c2, want)
	// And it still takes writes.
	verifyReadable(t, c2, ackedPuts(t, c2, "reborn", 300))
}

// TestDurableMigrationWriteThrough runs partition migrations (via
// enrollment changes) with durability on, then crash-restarts BOTH
// snodes: the migrated buckets must come back on the new owner, not the
// old one, and no acknowledged key may be lost.
func TestDurableMigrationWriteThrough(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, dir, 2, 2, wal.FsyncBatch, 1)
	defer c.Close()

	acked := ackedPuts(t, c, "mig", 2000)
	// Force handovers: enroll several more vnodes at snode 2.
	ids := c.Snodes()
	if _, err := c.SetEnrollment(ids[1], 6); err != nil {
		t.Fatal(err)
	}
	moved := c.StatsTotal().PartitionsSent
	if moved == 0 {
		t.Fatal("no partitions migrated; test exercises nothing")
	}
	for k, v := range ackedPuts(t, c, "mig2", 1000) {
		acked[k] = v
	}

	for _, id := range ids {
		if err := c.KillSnode(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range ids {
		if err := c.RestartSnode(id); err != nil {
			t.Fatal(err)
		}
	}
	verifyReadable(t, c, acked)
}

// TestReplicaStoreRecovers: with R=2, a restarted snode recovers its
// replica buckets too — failover reads keep working when the OTHER
// snode (a primary) later crashes.
func TestReplicaStoreRecovers(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, dir, 3, 6, wal.FsyncBatch, 2)
	defer c.Close()

	acked := ackedPuts(t, c, "repl", 2000)
	// Let anti-entropy settle the replica placement.
	time.Sleep(300 * time.Millisecond)

	ids := c.Snodes()
	// Crash-restart snode 3: its replica store must come back from disk.
	if err := c.KillSnode(ids[2]); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartSnode(ids[2]); err != nil {
		t.Fatal(err)
	}
	s := func() *Snode {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.snodes[ids[2]]
	}()
	if len(s.replicaPartitions()) == 0 {
		t.Fatal("restarted snode recovered no replica buckets")
	}
	verifyReadable(t, c, acked)
}

// TestWALStatsSurface sanity-checks the aggregated counters.
func TestWALStatsSurface(t *testing.T) {
	dir := t.TempDir()
	c := durableCluster(t, dir, 1, 2, wal.FsyncBatch, 1)
	defer c.Close()
	ackedPuts(t, c, "stats", 100)
	st := c.WALStats()
	if st.Appends == 0 || st.Bytes == 0 || st.Fsyncs == 0 {
		t.Fatalf("expected non-zero WAL counters, got %+v", st)
	}
	if on, mode := c.DurabilityEnabled(); !on || mode != wal.FsyncBatch {
		t.Fatalf("DurabilityEnabled = %v, %v", on, mode)
	}
	if err := c.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	if st := c.WALStats(); st.SnapWrites == 0 {
		t.Fatalf("no snapshot writes recorded: %+v", st)
	}
}
