package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/hashspace"
	"dbdht/internal/wal"
)

// intentCluster boots a durable single-snode cluster on the given fabric:
// every partition lives on snode 1, so a vnode created later on a second
// snode makes snode 1 the migration sender deterministically.
func intentCluster(t *testing.T, dir string, net transport.Network) *Cluster {
	t.Helper()
	c, err := New(Config{
		Pmin: 32, Vmin: 8, Seed: 42,
		RPCTimeout:          10 * time.Second,
		AntiEntropyInterval: 50 * time.Millisecond,
		Durability: DurabilityConfig{
			Dir: dir, Fsync: wal.FsyncBatch, SnapshotInterval: -1,
		},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddSnode(); err != nil {
		c.Close()
		t.Fatal(err)
	}
	id := c.Snodes()[0]
	for i := 0; i < 4; i++ {
		if _, _, err := c.CreateVnode(id); err != nil {
			c.Close()
			t.Fatal(err)
		}
	}
	return c
}

// armCrashHook installs a one-shot crash injector on the sender snode:
// the first migration reaching the chosen protocol point reports its
// partition on the channel and bails out as if the process died there.
// Later migrations (retries of other partitions) run normally.
func armCrashHook(t *testing.T, c *Cluster, id transport.NodeID, afterCommit bool) <-chan hashspace.Partition {
	t.Helper()
	crashed := make(chan hashspace.Partition, 1)
	var once sync.Once
	hook := func(p hashspace.Partition) error {
		var err error
		once.Do(func() {
			crashed <- p
			err = errors.New("simulated sender crash")
		})
		return err
	}
	c.mu.Lock()
	s, ok := c.snodes[id]
	c.mu.Unlock()
	if !ok {
		t.Fatalf("snode %d not found", id)
	}
	// Safe to set without s.mu: the snode cannot be mid-migration yet
	// (the vnode that triggers one is created after this), and the
	// CreateVnode RPC's channel hand-off orders these writes before the
	// migration goroutine reads them.
	if afterCommit {
		s.testCrashAfterCommit = hook
	} else {
		s.testCrashBeforeCommit = hook
	}
	return crashed
}

// inDoubtDrained polls until the snode has no unresolved migration
// intents left.
func inDoubtDrained(t *testing.T, c *Cluster, id transport.NodeID) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		s, ok := c.snodes[id]
		c.mu.Unlock()
		if !ok {
			t.Fatalf("snode %d not found", id)
		}
		s.mu.Lock()
		n := len(s.inDoubt)
		s.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("migration intents still in doubt after 15s")
}

// runMigrationIntentRecovery is the satellite's recovery scenario for
// the two-phase migration handover: the sender journals a migration
// intent (WAL tag 43), "dies" right before or right after the receiver
// commits, and is then killed abruptly and restarted.  Recovery replays
// the intent in-doubt and the resolver must settle it by probing the
// receiver — reverting to live when the receiver never committed,
// finalizing the drop when it did.  Either way every acknowledged write
// stays readable and a rewrite round proves no stale copy resurrected.
func runMigrationIntentRecovery(t *testing.T, net transport.Network, afterCommit bool) {
	dir := t.TempDir()
	c := intentCluster(t, dir, net)
	defer c.Close()
	sender := c.Snodes()[0]

	acked := ackedPuts(t, c, "intent", 2000)
	if len(acked) == 0 {
		t.Fatal("nothing acknowledged")
	}

	crashed := armCrashHook(t, c, sender, afterCommit)

	// A vnode on a fresh snode pulls partitions from snode 1; the first
	// transfer trips the crash hook.  The join itself may fail — the
	// sender just "died" mid-handover — so run it detached and ignore
	// its outcome.
	receiver, err := c.AddSnode()
	if err != nil {
		t.Fatal(err)
	}
	joinDone := make(chan struct{})
	go func() {
		defer close(joinDone)
		_, _, _ = c.CreateVnode(receiver)
	}()

	var inDoubt hashspace.Partition
	select {
	case inDoubt = <-crashed:
	case <-time.After(15 * time.Second):
		t.Fatal("no migration reached the crash hook")
	}
	if err := c.KillSnode(sender); err != nil {
		t.Fatal(err)
	}
	// The join coordinator is still timing out against the dead sender;
	// let it finish in the background, but before the cluster closes.
	defer func() { <-joinDone }()
	if err := c.RestartSnode(sender); err != nil {
		t.Fatal(err)
	}
	inDoubtDrained(t, c, sender)

	// Zero acknowledged-write loss, whichever way the intent resolved.
	verifyReadable(t, c, acked)

	// Rewrite every key and read it back: if the crashed handover left
	// two live copies (or resurrected a stale one), some read would now
	// return the old value.
	items := make([]KV, 0, len(acked))
	for k := range acked {
		items = append(items, KV{Key: k, Value: []byte("rewritten-" + k)})
	}
	res, err := c.MPut(items)
	if err != nil {
		t.Fatal(err)
	}
	rewritten := make(map[string][]byte, len(items))
	for i, r := range res {
		if r.OK() {
			rewritten[items[i].Key] = items[i].Value
		}
	}
	if len(rewritten) != len(items) {
		t.Fatalf("only %d of %d rewrites acknowledged after intent resolution", len(rewritten), len(items))
	}
	verifyReadable(t, c, rewritten)

	st := c.StatsTotal()
	if afterCommit {
		// The receiver committed, so resolution must finalize the drop,
		// not revert: the restarted sender may not resurrect its copy —
		// it must hold a custody tombstone pointing at the receiver and
		// own nothing at the in-doubt partition.  (The receiver's vnode
		// never finished its join, so Snapshot hides it; assert on the
		// sender's state instead.)
		c.mu.Lock()
		s := c.snodes[sender]
		c.mu.Unlock()
		s.mu.Lock()
		tomb, tombed := s.tombs[inDoubt]
		ownsIt := false
		for _, vs := range s.vnodes {
			if _, ok := vs.parts[inDoubt]; ok {
				ownsIt = true
			}
		}
		s.mu.Unlock()
		if ownsIt {
			t.Errorf("sender still owns in-doubt partition %v after finalize", inDoubt)
		}
		if !tombed || tomb.Host != receiver {
			t.Errorf("sender tomb for %v = %+v (tombed=%v), want custody pointer to snode %d", inDoubt, tomb, tombed, receiver)
		}
	} else if st.MigAborts == 0 {
		t.Error("before-commit crash resolved without a revert (MigAborts == 0)")
	}
}

func TestMigrationIntentRecoveryBeforeCommitMem(t *testing.T) {
	runMigrationIntentRecovery(t, transport.NewMem(), false)
}

func TestMigrationIntentRecoveryAfterCommitMem(t *testing.T) {
	runMigrationIntentRecovery(t, transport.NewMem(), true)
}

func TestMigrationIntentRecoveryBeforeCommitTCP(t *testing.T) {
	runMigrationIntentRecovery(t, transport.NewTCP("127.0.0.1"), false)
}

func TestMigrationIntentRecoveryAfterCommitTCP(t *testing.T) {
	runMigrationIntentRecovery(t, transport.NewTCP("127.0.0.1"), true)
}
