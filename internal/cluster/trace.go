package cluster

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/metrics"
)

// Request tracing.  A sampled operation carries a transport.TraceContext
// through every hop — by value on the in-memory fabric, in the frame
// header on TCP (codec.go) — and each stage records one Span into its
// snode's fixed-size ring buffer.  The cluster handle, which hosts every
// snode in-process on both fabrics, assembles a trace by sweeping the
// rings (Cluster.Trace), so collection needs no wire protocol of its own.
//
// Cost discipline: with sampling off (the default) the data plane pays
// exactly one atomic load per client operation (sampler.next) and zero
// allocations; every downstream instrumentation point is gated on
// TraceContext.Active(), a two-field check on a by-value struct.  The
// latency histograms (metrics.Histogram) are NOT gated — they observe
// per batch, not per key, and one lock-free histogram observation is
// noise against a batch's map work.

// Span is one recorded stage of a traced operation.
type Span struct {
	TraceID  uint64
	SpanID   uint64
	Parent   uint64 // span id of the parent stage; 0 for the root
	Name     string // stage name, e.g. "op.mput", "batch.serve", "repl.write"
	Snode    transport.NodeID
	Start    time.Time
	Duration time.Duration
	Outcome  string // "ok" or an error summary
}

// spanSeq hands out process-unique span ids; traceSalt decorrelates trace
// ids across processes and runs.
var (
	spanSeq   atomic.Uint64
	traceSalt = uint64(time.Now().UnixNano()) | 1
)

// mix64 is SplitMix64's finalizer: cheap, and every input bit affects
// every output bit — good enough for both trace ids and sampling coins.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newTraceID mints a non-zero trace id unique within (and overwhelmingly
// likely across) processes.
func newTraceID() uint64 {
	id := mix64(traceSalt + spanSeq.Add(1))
	if id == 0 {
		id = 1
	}
	return id
}

// sampler makes the head-sampling decision for new traces.  Off (rate 0,
// the default) costs one atomic load per operation and allocates nothing.
type sampler struct {
	bits atomic.Uint64 // float64 bits of the sampling probability; 0 = off
	seq  atomic.Uint64
}

// setRate sets the sampling probability, clamped to [0, 1].
func (sm *sampler) setRate(p float64) {
	if p <= 0 || math.IsNaN(p) {
		sm.bits.Store(0)
		return
	}
	if p > 1 {
		p = 1
	}
	sm.bits.Store(math.Float64bits(p))
}

// rate returns the current sampling probability.
func (sm *sampler) rate() float64 {
	bits := sm.bits.Load()
	if bits == 0 {
		return 0
	}
	return math.Float64frombits(bits)
}

// next returns a fresh root trace context, or the zero (inactive) context
// when this operation is not sampled.
func (sm *sampler) next() transport.TraceContext {
	bits := sm.bits.Load()
	if bits == 0 {
		return transport.TraceContext{}
	}
	p := math.Float64frombits(bits)
	if p < 1 {
		// A hashed counter as the coin: deterministic per-process sequence,
		// no RNG lock, 53 uniform bits.
		coin := float64(mix64(traceSalt^sm.seq.Add(1))>>11) / (1 << 53)
		if coin >= p {
			return transport.TraceContext{}
		}
	}
	return transport.TraceContext{TraceID: newTraceID(), Sampled: true}
}

// activeSpan is one in-flight span.  The zero value is inactive: begun
// under an unsampled context, every method is a no-op, so call sites need
// no branches of their own.
type activeSpan struct {
	ctx    transport.TraceContext // child context: SpanID is THIS span's id
	parent uint64
	name   string
	start  time.Time
}

// active reports whether finishing this span records anything.
func (a activeSpan) active() bool { return a.ctx.TraceID != 0 }

// beginSpan opens a child span under tr.  An inactive context returns the
// inactive span without reading the clock or allocating.
func beginSpan(tr transport.TraceContext, name string) activeSpan {
	if !tr.Active() {
		return activeSpan{}
	}
	return activeSpan{
		ctx:    transport.TraceContext{TraceID: tr.TraceID, SpanID: spanSeq.Add(1), Sampled: true},
		parent: tr.SpanID,
		name:   name,
		start:  time.Now(),
	}
}

// tracer is a fixed-size ring of finished spans.  Recording takes one
// short mutex hold (only sampled operations ever get here); the ring
// never grows, so a forgotten sampler at 1.0 costs bounded memory.
type tracer struct {
	mu  sync.Mutex
	buf []Span // guarded by mu
	n   uint64 // spans recorded over the tracer's lifetime; guarded by mu
}

// defaultTraceBufferSize is the per-snode span ring capacity.
const defaultTraceBufferSize = 4096

func newTracer(size int) *tracer {
	if size <= 0 {
		size = defaultTraceBufferSize
	}
	return &tracer{buf: make([]Span, size)}
}

// finish records the span with the given outcome; empty outcome means ok.
func (t *tracer) finish(a activeSpan, snode transport.NodeID, outcome string) {
	if !a.active() {
		return
	}
	if outcome == "" {
		outcome = "ok"
	}
	sp := Span{
		TraceID: a.ctx.TraceID, SpanID: a.ctx.SpanID, Parent: a.parent,
		Name: a.name, Snode: snode,
		Start: a.start, Duration: time.Since(a.start), Outcome: outcome,
	}
	t.mu.Lock()
	t.buf[t.n%uint64(len(t.buf))] = sp
	t.n++
	t.mu.Unlock()
}

// collect appends the ring's spans (oldest first) to out, keeping only
// those matching traceID (0 = all).
func (t *tracer) collect(out []Span, traceID uint64) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	size := uint64(len(t.buf))
	start := uint64(0)
	if t.n > size {
		start = t.n - size
	}
	for i := start; i < t.n; i++ {
		sp := t.buf[i%size]
		if traceID == 0 || sp.TraceID == traceID {
			out = append(out, sp)
		}
	}
	return out
}

// latencies groups one snode's always-on latency histograms.
type latencies struct {
	replAck  *metrics.Histogram // replica-ack wait per batch fan-out
	walWait  *metrics.Histogram // WAL append → durable wait
	migChunk *metrics.Histogram // one migration chunk round-trip
	aePass   *metrics.Histogram // one full anti-entropy pass
}

func newLatencies() *latencies {
	return &latencies{
		replAck:  metrics.NewLatencyHistogram(),
		walWait:  metrics.NewLatencyHistogram(),
		migChunk: metrics.NewLatencyHistogram(),
		aePass:   metrics.NewLatencyHistogram(),
	}
}

// LatencySnapshot aggregates the cluster's latency histograms: the
// handle's client-side batch RPC distribution plus every snode's
// server-side distributions (live snodes and departed ones folded in).
type LatencySnapshot struct {
	BatchRPC        metrics.HistogramSnapshot // client-observed batch sub-RPC round-trip
	ReplicaAckWait  metrics.HistogramSnapshot // primary's wait for replica write acks
	WALDurableWait  metrics.HistogramSnapshot // WAL append → durable (group-commit) wait
	MigrationChunk  metrics.HistogramSnapshot // one live-migration chunk round-trip
	AntiEntropyPass metrics.HistogramSnapshot // one full anti-entropy pass
}

// fold accumulates one snode's histograms into the snapshot.
func (ls *LatencySnapshot) fold(lat *latencies) {
	ls.ReplicaAckWait.Merge(lat.replAck.Snapshot())
	ls.WALDurableWait.Merge(lat.walWait.Snapshot())
	ls.MigrationChunk.Merge(lat.migChunk.Snapshot())
	ls.AntiEntropyPass.Merge(lat.aePass.Snapshot())
}

// merge accumulates another snapshot (a departing snode's totals).
func (ls *LatencySnapshot) merge(o LatencySnapshot) {
	ls.BatchRPC.Merge(o.BatchRPC)
	ls.ReplicaAckWait.Merge(o.ReplicaAckWait)
	ls.WALDurableWait.Merge(o.WALDurableWait)
	ls.MigrationChunk.Merge(o.MigrationChunk)
	ls.AntiEntropyPass.Merge(o.AntiEntropyPass)
}

// --- cluster-handle collection API ---

// Latencies folds every live snode's histograms (plus departed snodes'
// retained totals) with the handle's own client-side distribution.
func (c *Cluster) Latencies() LatencySnapshot {
	c.mu.Lock()
	snodes := make([]*Snode, 0, len(c.snodes))
	for _, s := range c.snodes {
		snodes = append(snodes, s)
	}
	c.mu.Unlock()
	c.retiredMu.Lock()
	out := c.retiredLat
	// The retained snapshot's slices are shared with the accumulator;
	// deep-copy via merge into a zero value so callers cannot alias it.
	var tot LatencySnapshot
	tot.merge(out)
	c.retiredMu.Unlock()
	tot.BatchRPC.Merge(c.batchRPC.Snapshot())
	for _, s := range snodes {
		tot.fold(s.lat)
	}
	return tot
}

// SetTraceSampling changes the head-sampling probability for new client
// operations at runtime (0 disables, 1 traces everything).  Snode-side
// background tracing (migrations) follows the same rate.
func (c *Cluster) SetTraceSampling(p float64) {
	c.sampler.setRate(p)
	c.mu.Lock()
	snodes := make([]*Snode, 0, len(c.snodes))
	for _, s := range c.snodes {
		snodes = append(snodes, s)
	}
	c.mu.Unlock()
	for _, s := range snodes {
		s.sampler.setRate(p)
	}
}

// TraceSampling returns the current head-sampling probability.
func (c *Cluster) TraceSampling() float64 { return c.sampler.rate() }

// allTracers snapshots the handle's tracer plus every live snode's.
func (c *Cluster) allTracers() []*tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*tracer, 0, len(c.snodes)+1)
	out = append(out, c.tracer)
	for _, id := range c.order {
		out = append(out, c.snodes[id].tracer)
	}
	return out
}

// Trace gathers every recorded span of one trace across the handle and
// all live snodes, ordered by start time.  Empty means the trace id is
// unknown, unsampled, or already evicted from the rings.
func (c *Cluster) Trace(id uint64) []Span {
	if id == 0 {
		return nil
	}
	var spans []Span
	for _, t := range c.allTracers() {
		spans = t.collect(spans, id)
	}
	sort.Slice(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	return spans
}

// TraceSummary describes one recently sampled trace (its root span plus
// the number of spans currently held for it across the rings).
type TraceSummary struct {
	TraceID  uint64
	Name     string
	Start    time.Time
	Duration time.Duration
	Outcome  string
	Spans    int
}

// Traces lists the sampled traces whose root span is still in a ring,
// newest first.  Bounded by the ring sizes; an admin/debug surface, not a
// hot path.
func (c *Cluster) Traces() []TraceSummary {
	tracers := c.allTracers()
	var all []Span
	for _, t := range tracers {
		all = t.collect(all, 0)
	}
	counts := make(map[uint64]int, len(all))
	for _, sp := range all {
		counts[sp.TraceID]++
	}
	var out []TraceSummary
	for _, sp := range all {
		if sp.Parent != 0 {
			continue
		}
		out = append(out, TraceSummary{
			TraceID: sp.TraceID, Name: sp.Name,
			Start: sp.Start, Duration: sp.Duration, Outcome: sp.Outcome,
			Spans: counts[sp.TraceID],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}
