package cluster

import (
	"fmt"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/core"
	"dbdht/internal/hashspace"
)

// WAL record codecs.  Every durable mutation of an snode's local state is
// journaled as one typed record, encoded with the same varint helpers as
// the wire codecs in wire.go and framed (length + CRC) by internal/wal.
// A record's first field is its tag; tags share the number space with
// the wire message tags 1–19 (see docs/WIRE.md) so a number can never
// mean two different things — journal tags start at 32, leaving room for
// future wire messages.  Like wire tags, they are a compatibility
// contract: never renumber, only append.
//
// Replay applies records in sequence order on top of the latest
// snapshot; every record is idempotent (set/delete semantics, guarded
// lifecycle transitions), so a record may be replayed even though the
// snapshot it lands on already reflects it.

const (
	walTagWrite      uint16 = 32 // owned-bucket mutations (one batch's share of one bucket)
	walTagReplWrite  uint16 = 33 // replica-store mutations (one replWriteReq)
	walTagVnode      uint16 = 34 // vnode allocated (bootstrap carries its pre-split partitions)
	walTagVnodeGone  uint16 = 35 // vnode dissolved or abandoned
	walTagSplitAll   uint16 = 36 // scope-wide binary split of a group's partitions
	walTagMigInstall uint16 = 37 // live-migration commit: full bucket installed
	walTagBucketDrop uint16 = 38 // partition migrated away; custody tombstone left
	walTagReplSync   uint16 = 39 // replica bucket overwritten with the primary's copy
	walTagReplDrop   uint16 = 40 // replica buckets discarded
	walTagLpdr       uint16 = 41 // LPDR replica refresh (group membership/level/leader)
	walTagBoot       uint16 = 42 // bootstrap fallback route learned
	// Two-phase migration handover (see migrate.go): an intent is
	// journaled right before the receiver may commit; the bucket-drop
	// record (tag 38) resolves it on success, tag 44 on abort.  A replayed
	// intent with neither resolution recovers the bucket frozen and
	// in-doubt.
	walTagMigIntent         uint16 = 43 // pre-commit handover intent (same payload as tag 38)
	walTagMigIntentResolved uint16 = 44 // handover aborted or reverted; intent closed
)

// --- shared helpers ---

func appendOwnerRef(b []byte, ref ownerRef) []byte {
	b = appendVnodeName(b, ref.Vnode)
	return transport.AppendVarint(b, int64(ref.Host))
}

func readOwnerRef(r *transport.WireReader) ownerRef {
	var ref ownerRef
	ref.Vnode = readVnodeName(r)
	ref.Host = transport.NodeID(r.Varint())
	return ref
}

func appendKVMap(b []byte, m map[string][]byte) []byte {
	b = transport.AppendUvarint(b, uint64(len(m)))
	for k, v := range m {
		b = transport.AppendString(b, k)
		b = transport.AppendBytes(b, v)
	}
	return b
}

func readKVMap(r *transport.WireReader) map[string][]byte {
	n := r.ArrayLen(2)
	m := make(map[string][]byte, n)
	for i := 0; i < n; i++ {
		k := r.String()
		v := r.Bytes()
		if r.Err() != nil {
			return m
		}
		m[k] = v
	}
	return m
}

func appendPartitions(b []byte, ps []hashspace.Partition) []byte {
	b = transport.AppendUvarint(b, uint64(len(ps)))
	for _, p := range ps {
		b = appendPartition(b, p)
	}
	return b
}

func readPartitions(r *transport.WireReader) []hashspace.Partition {
	n := r.ArrayLen(2)
	if n == 0 {
		return nil
	}
	ps := make([]hashspace.Partition, n)
	for i := range ps {
		ps[i] = readPartition(r)
	}
	return ps
}

func appendLpdrState(b []byte, st lpdrState) []byte {
	b = appendGroup(b, st.Group)
	b = transport.AppendUvarint(b, uint64(st.Level))
	b = transport.AppendVarint(b, int64(st.Leader))
	b = transport.AppendUvarint(b, uint64(len(st.Members)))
	for _, m := range st.Members {
		b = appendVnodeName(b, m.Vnode)
		b = transport.AppendVarint(b, int64(m.Host))
		b = transport.AppendVarint(b, int64(m.Count))
	}
	return b
}

func readLpdrState(r *transport.WireReader) lpdrState {
	var st lpdrState
	st.Group = readGroup(r)
	st.Level = uint8(r.Uvarint())
	st.Leader = transport.NodeID(r.Varint())
	if n := r.ArrayLen(3); n > 0 {
		st.Members = make([]memberInfo, n)
		for i := range st.Members {
			st.Members[i].Vnode = readVnodeName(r)
			st.Members[i].Host = transport.NodeID(r.Varint())
			st.Members[i].Count = int(r.Varint())
		}
	}
	return st
}

// --- record payloads ---

// walWriteRec journals one batch's mutations of one owned bucket.
type walWriteRec struct {
	Kind      dataOp
	Partition hashspace.Partition
	Items     []batchItem
}

func encodeWalWrite(buf []byte, kind dataOp, p hashspace.Partition, items []batchItem) []byte {
	buf = encodeWalWriteHeader(buf, kind, p, len(items))
	for _, it := range items {
		buf = transport.AppendString(buf, it.Key)
		buf = transport.AppendBytes(buf, it.Value)
	}
	return buf
}

// encodeWalWriteHeader starts a walWrite record whose count items the
// caller appends itself (string key, bytes value — the appendBatchItems
// layout), letting the batch apply loop encode inline without building
// an intermediate slice.
func encodeWalWriteHeader(buf []byte, kind dataOp, p hashspace.Partition, count int) []byte {
	buf = transport.AppendUvarint(buf, uint64(walTagWrite))
	buf = transport.AppendVarint(buf, int64(kind))
	buf = appendPartition(buf, p)
	return transport.AppendUvarint(buf, uint64(count))
}

func decodeWalWrite(r *transport.WireReader) walWriteRec {
	var rec walWriteRec
	rec.Kind = dataOp(r.Varint())
	rec.Partition = readPartition(r)
	rec.Items = readBatchItems(r)
	return rec
}

// walReplWriteRec journals one replica-plane write fan-in.
type walReplWriteRec struct {
	Kind dataOp
	Sets []replWriteSet
}

func encodeWalReplWrite(buf []byte, kind dataOp, sets []replWriteSet) []byte {
	buf = transport.AppendUvarint(buf, uint64(walTagReplWrite))
	buf = transport.AppendVarint(buf, int64(kind))
	buf = transport.AppendUvarint(buf, uint64(len(sets)))
	for _, set := range sets {
		buf = appendPartition(buf, set.Partition)
		buf = appendBatchItems(buf, set.Items)
	}
	return buf
}

func decodeWalReplWrite(r *transport.WireReader) walReplWriteRec {
	var rec walReplWriteRec
	rec.Kind = dataOp(r.Varint())
	if n := r.ArrayLen(3); n > 0 {
		rec.Sets = make([]replWriteSet, n)
		for i := range rec.Sets {
			rec.Sets[i].Partition = readPartition(r)
			rec.Sets[i].Items = readBatchItems(r)
		}
	}
	return rec
}

// walVnodeRec journals a vnode allocation.  Parts is non-empty only for
// the bootstrap vnode, which is born owning the Pmin-way pre-split.
type walVnodeRec struct {
	Name   VnodeName
	Group  core.GroupID
	Level  uint8
	Joined bool
	Parts  []hashspace.Partition
}

func encodeWalVnode(buf []byte, rec walVnodeRec) []byte {
	buf = transport.AppendUvarint(buf, uint64(walTagVnode))
	buf = appendVnodeName(buf, rec.Name)
	buf = appendGroup(buf, rec.Group)
	buf = transport.AppendUvarint(buf, uint64(rec.Level))
	buf = transport.AppendBool(buf, rec.Joined)
	return appendPartitions(buf, rec.Parts)
}

func decodeWalVnode(r *transport.WireReader) walVnodeRec {
	var rec walVnodeRec
	rec.Name = readVnodeName(r)
	rec.Group = readGroup(r)
	rec.Level = uint8(r.Uvarint())
	rec.Joined = r.Bool()
	rec.Parts = readPartitions(r)
	return rec
}

func encodeWalVnodeGone(buf []byte, name VnodeName) []byte {
	buf = transport.AppendUvarint(buf, uint64(walTagVnodeGone))
	return appendVnodeName(buf, name)
}

// walSplitAllRec journals one scope-wide split; replay re-buckets the
// affected vnodes' data by the next hash bit, exactly like the live
// handler (the re-bucketing is a pure function of the stored keys).
type walSplitAllRec struct {
	Group    core.GroupID
	NewLevel uint8
}

func encodeWalSplitAll(buf []byte, g core.GroupID, newLevel uint8) []byte {
	buf = transport.AppendUvarint(buf, uint64(walTagSplitAll))
	buf = appendGroup(buf, g)
	return transport.AppendUvarint(buf, uint64(newLevel))
}

func decodeWalSplitAll(r *transport.WireReader) walSplitAllRec {
	var rec walSplitAllRec
	rec.Group = readGroup(r)
	rec.NewLevel = uint8(r.Uvarint())
	return rec
}

// walMigInstallRec journals a live-migration commit at the receiver with
// the bucket's FULL contents (staging folded with the final delta), so
// replay never depends on the volatile staging state: a migration whose
// commit record is durable installs completely; one whose commit never
// landed leaves the partition with its old owner, which aborts and
// stays live.
type walMigInstallRec struct {
	To        VnodeName
	Group     core.GroupID
	Level     uint8
	Partition hashspace.Partition
	Data      map[string][]byte
}

func encodeWalMigInstall(buf []byte, rec walMigInstallRec) []byte {
	buf = transport.AppendUvarint(buf, uint64(walTagMigInstall))
	buf = appendVnodeName(buf, rec.To)
	buf = appendGroup(buf, rec.Group)
	buf = transport.AppendUvarint(buf, uint64(rec.Level))
	buf = appendPartition(buf, rec.Partition)
	return appendKVMap(buf, rec.Data)
}

func decodeWalMigInstall(r *transport.WireReader) walMigInstallRec {
	var rec walMigInstallRec
	rec.To = readVnodeName(r)
	rec.Group = readGroup(r)
	rec.Level = uint8(r.Uvarint())
	rec.Partition = readPartition(r)
	rec.Data = readKVMap(r)
	return rec
}

// walBucketDropRec journals the sender-side retirement after a committed
// migration: the bucket dies behind a custody tombstone at NewOwner.
type walBucketDropRec struct {
	Vnode     VnodeName
	Partition hashspace.Partition
	NewOwner  ownerRef
}

func encodeWalBucketDrop(buf []byte, rec walBucketDropRec) []byte {
	buf = transport.AppendUvarint(buf, uint64(walTagBucketDrop))
	buf = appendVnodeName(buf, rec.Vnode)
	buf = appendPartition(buf, rec.Partition)
	return appendOwnerRef(buf, rec.NewOwner)
}

func decodeWalBucketDrop(r *transport.WireReader) walBucketDropRec {
	var rec walBucketDropRec
	rec.Vnode = readVnodeName(r)
	rec.Partition = readPartition(r)
	rec.NewOwner = readOwnerRef(r)
	return rec
}

// encodeWalMigIntent journals phase one of a migration handover.  The
// payload is exactly a walBucketDropRec — the intent names the same
// (vnode, partition, new owner) triple the eventual drop will.
func encodeWalMigIntent(buf []byte, rec walBucketDropRec) []byte {
	buf = transport.AppendUvarint(buf, uint64(walTagMigIntent))
	buf = appendVnodeName(buf, rec.Vnode)
	buf = appendPartition(buf, rec.Partition)
	return appendOwnerRef(buf, rec.NewOwner)
}

// encodeWalMigIntentResolved closes an intent without a drop: the
// handover aborted (or recovery reverted it) and the bucket is live here.
func encodeWalMigIntentResolved(buf []byte, p hashspace.Partition) []byte {
	buf = transport.AppendUvarint(buf, uint64(walTagMigIntentResolved))
	return appendPartition(buf, p)
}

// walReplSyncRec journals a replica bucket overwrite (full sync from the
// primary, or the re-homing push after a transfer).
type walReplSyncRec struct {
	Partition hashspace.Partition
	Data      map[string][]byte
}

func encodeWalReplSync(buf []byte, p hashspace.Partition, data map[string][]byte) []byte {
	buf = transport.AppendUvarint(buf, uint64(walTagReplSync))
	buf = appendPartition(buf, p)
	return appendKVMap(buf, data)
}

func decodeWalReplSync(r *transport.WireReader) walReplSyncRec {
	var rec walReplSyncRec
	rec.Partition = readPartition(r)
	rec.Data = readKVMap(r)
	return rec
}

func encodeWalReplDrop(buf []byte, ps []hashspace.Partition) []byte {
	buf = transport.AppendUvarint(buf, uint64(walTagReplDrop))
	return appendPartitions(buf, ps)
}

// walLpdrRec journals an LPDR replica refresh; replay rebuilds the
// group view and — when the recorded leader is this snode — reinstalls
// leadership after the replay completes.
type walLpdrRec struct {
	State     lpdrState
	Dissolved []core.GroupID
}

func encodeWalLpdr(buf []byte, st lpdrState, dissolved []core.GroupID) []byte {
	buf = transport.AppendUvarint(buf, uint64(walTagLpdr))
	buf = appendLpdrState(buf, st)
	buf = transport.AppendUvarint(buf, uint64(len(dissolved)))
	for _, g := range dissolved {
		buf = appendGroup(buf, g)
	}
	return buf
}

func decodeWalLpdr(r *transport.WireReader) walLpdrRec {
	var rec walLpdrRec
	rec.State = readLpdrState(r)
	if n := r.ArrayLen(2); n > 0 {
		rec.Dissolved = make([]core.GroupID, n)
		for i := range rec.Dissolved {
			rec.Dissolved[i] = readGroup(r)
		}
	}
	return rec
}

func encodeWalBoot(buf []byte, owner ownerRef) []byte {
	buf = transport.AppendUvarint(buf, uint64(walTagBoot))
	return appendOwnerRef(buf, owner)
}

// --- snapshot payloads ---

// snapVersion guards the snapshot encoding; bump on breaking layout
// changes so an old snapshot fails loudly instead of mis-decoding.
// Version 2 appended the unresolved migration intents to snapMeta;
// decoders still accept version-1 files (which simply carry no intents).
const snapVersion = 2

// snapOldestVersion is the oldest snapshot layout this node still reads.
const snapOldestVersion = 1

// snapMeta is the snode-level metadata captured by one snapshot pass:
// everything except the bucket contents, which live in per-bucket files.
type snapMeta struct {
	NextLocal int
	HasBoot   bool
	Boot      ownerRef
	Vnodes    []walVnodeRec // one per hosted vnode, Parts = its partitions
	Tombs     []routeEntry  // custody pointers (Replicas unused)
	Lpdrs     []lpdrState
	Rprov     []hashspace.Partition // provisional (write-created) replica buckets
	Intents   []walBucketDropRec    // unresolved migration intents (v2+)
}

func encodeSnapMeta(buf []byte, m snapMeta) []byte {
	buf = transport.AppendUvarint(buf, snapVersion)
	buf = transport.AppendVarint(buf, int64(m.NextLocal))
	buf = transport.AppendBool(buf, m.HasBoot)
	buf = appendOwnerRef(buf, m.Boot)
	buf = transport.AppendUvarint(buf, uint64(len(m.Vnodes)))
	for _, v := range m.Vnodes {
		buf = appendVnodeName(buf, v.Name)
		buf = appendGroup(buf, v.Group)
		buf = transport.AppendUvarint(buf, uint64(v.Level))
		buf = transport.AppendBool(buf, v.Joined)
		buf = appendPartitions(buf, v.Parts)
	}
	buf = transport.AppendUvarint(buf, uint64(len(m.Tombs)))
	for _, t := range m.Tombs {
		buf = appendPartition(buf, t.Partition)
		buf = appendOwnerRef(buf, t.Ref)
	}
	buf = transport.AppendUvarint(buf, uint64(len(m.Lpdrs)))
	for _, st := range m.Lpdrs {
		buf = appendLpdrState(buf, st)
	}
	buf = appendPartitions(buf, m.Rprov)
	buf = transport.AppendUvarint(buf, uint64(len(m.Intents)))
	for _, in := range m.Intents {
		buf = appendVnodeName(buf, in.Vnode)
		buf = appendPartition(buf, in.Partition)
		buf = appendOwnerRef(buf, in.NewOwner)
	}
	return buf
}

func decodeSnapMeta(payload []byte) (snapMeta, error) {
	r := transport.NewWireReader(payload)
	var m snapMeta
	v := r.Uvarint()
	if v < snapOldestVersion || v > snapVersion {
		return m, fmt.Errorf("cluster: snapshot meta version %d, this node speaks %d–%d", v, snapOldestVersion, snapVersion)
	}
	m.NextLocal = int(r.Varint())
	m.HasBoot = r.Bool()
	m.Boot = readOwnerRef(r)
	if n := r.ArrayLen(4); n > 0 {
		m.Vnodes = make([]walVnodeRec, n)
		for i := range m.Vnodes {
			m.Vnodes[i].Name = readVnodeName(r)
			m.Vnodes[i].Group = readGroup(r)
			m.Vnodes[i].Level = uint8(r.Uvarint())
			m.Vnodes[i].Joined = r.Bool()
			m.Vnodes[i].Parts = readPartitions(r)
		}
	}
	if n := r.ArrayLen(4); n > 0 {
		m.Tombs = make([]routeEntry, n)
		for i := range m.Tombs {
			m.Tombs[i].Partition = readPartition(r)
			m.Tombs[i].Ref = readOwnerRef(r)
		}
	}
	if n := r.ArrayLen(4); n > 0 {
		m.Lpdrs = make([]lpdrState, n)
		for i := range m.Lpdrs {
			m.Lpdrs[i] = readLpdrState(r)
		}
	}
	m.Rprov = readPartitions(r)
	if v >= 2 {
		if n := r.ArrayLen(4); n > 0 {
			m.Intents = make([]walBucketDropRec, n)
			for i := range m.Intents {
				m.Intents[i].Vnode = readVnodeName(r)
				m.Intents[i].Partition = readPartition(r)
				m.Intents[i].NewOwner = readOwnerRef(r)
			}
		}
	}
	return m, r.Err()
}

// snapBucket is one partition's contents in a snapshot file.
type snapBucket struct {
	Partition hashspace.Partition
	Data      map[string][]byte
}

func encodeSnapBucket(buf []byte, p hashspace.Partition, data map[string][]byte) []byte {
	buf = transport.AppendUvarint(buf, snapVersion)
	buf = appendPartition(buf, p)
	return appendKVMap(buf, data)
}

func decodeSnapBucket(payload []byte) (snapBucket, error) {
	r := transport.NewWireReader(payload)
	var b snapBucket
	if v := r.Uvarint(); v < snapOldestVersion || v > snapVersion {
		return b, fmt.Errorf("cluster: snapshot bucket version %d, this node speaks %d–%d", v, snapOldestVersion, snapVersion)
	}
	b.Partition = readPartition(r)
	b.Data = readKVMap(r)
	return b, r.Err()
}

// encodeManifest/decodeManifest frame the snapshot manifest: the replay
// cut (the first WAL sequence NOT covered by the snapshot).
func encodeManifest(cut uint64) []byte {
	buf := transport.AppendUvarint(nil, snapVersion)
	return transport.AppendUvarint(buf, cut)
}

func decodeManifest(payload []byte) (uint64, error) {
	r := transport.NewWireReader(payload)
	if v := r.Uvarint(); v < snapOldestVersion || v > snapVersion {
		return 0, fmt.Errorf("cluster: snapshot manifest version %d, this node speaks %d–%d", v, snapOldestVersion, snapVersion)
	}
	cut := r.Uvarint()
	return cut, r.Err()
}
