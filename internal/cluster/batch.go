package cluster

import (
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/core"
	"dbdht/internal/hashspace"
)

// Batched data plane.  A batch groups same-verb operations and moves them
// toward their owners in sub-batches: the receiving snode serves the keys
// it owns locally and forwards one sub-batch per next-hop host, waiting on
// all of them in parallel.  Because keys owned by different vnodes/groups
// are handled by different snodes concurrently, a batch exploits exactly
// the per-group parallelism the local approach is built around (§3.1) —
// one client round-trip fans out into parallel per-owner work instead of
// N serial request/response cycles.

// batchItem is one operation of a batch (Value is used by puts only).
type batchItem struct {
	Key   string
	Value []byte
}

// batchReq carries a group of same-verb data operations.  Like the single
// operation messages it is forwarded along custody chains, but grouped:
// each hop serves what it owns and splits the rest by next hop.
type batchReq struct {
	Op      uint64
	Kind    dataOp
	Items   []batchItem
	ReplyTo transport.NodeID
	Hops    int
	// ReadReplica marks a failover read: the receiver serves the keys
	// straight from its replica store instead of the ownership path.
	ReadReplica bool
	// private (never on the wire; set by the frame decoder) marks Items
	// whose slices are exclusively owned by this message — freshly
	// allocated during decode — so puts may store the values without the
	// defensive copy the by-reference in-memory fabric requires.
	private bool
}

// batchItemResp is the per-key outcome inside a batchResp, parallel to the
// request's Items.
type batchItemResp struct {
	Value []byte
	Found bool
	Err   string
}

// batchResp answers a batchReq.  Served carries the partitions the
// responder chain resolved, so requesters (the cluster handle included)
// can aim future batches directly at the owners.
type batchResp struct {
	Op      uint64
	Results []batchItemResp
	Served  []routeEntry
}

func init() {
	gob.Register(batchReq{})
	gob.Register(batchResp{})
}

// handleBatch serves a batch: local keys are applied immediately, the rest
// are regrouped by next hop and forwarded as sub-batches awaited in
// parallel.  Runs outside the actor loop (it performs nested RPCs).
//
//dbdht:dataplane
func (s *Snode) handleBatch(m batchReq, tr transport.TraceContext) {
	if m.ReadReplica {
		s.serveReplicaRead(m, tr)
		return
	}
	sp := beginSpan(tr, "batch.serve")
	s.stats.Batches.Add(1)
	results := make([]batchItemResp, len(m.Items))
	var served []routeEntry
	forwards := make(map[transport.NodeID][]int)
	replicate := s.cfg.Replicas > 1 && m.Kind != opGet
	var (
		replWrites map[hashspace.Partition][]batchItem
		replDests  map[hashspace.Partition][]transport.NodeID
		replMeta   map[hashspace.Partition]replFanMeta
	)
	var localWrites []int // indices applied locally and pending replica acks
	var (
		walMax     uint64 // highest WAL sequence journaled for this batch
		walClosed  bool   // a journal append was refused (snode stopping)
		durWrites  []int  // indices whose ack awaits WAL durability
		walScratch []byte // reused record-encoding slab (durability on)
	)
	if s.cfg.Replicas > 1 {
		// replDests doubles as a per-batch cache of replica placements for
		// the served-route entries.
		replDests = make(map[hashspace.Partition][]transport.NodeID)
		if replicate {
			replWrites = make(map[hashspace.Partition][]batchItem)
			replMeta = make(map[hashspace.Partition]replFanMeta)
		}
	}

	// Hash every key before taking any lock.
	hashes := make([]hashspace.Index, len(m.Items))
	for i, it := range m.Items {
		hashes[i] = hashspace.HashString(it.Key)
	}

	// bucketWork is one bucket's share of the batch: resolved during the
	// classification pass, applied under the bucket's own lock.
	type bucketWork struct {
		owner ownerRef
		p     hashspace.Partition
		group core.GroupID
		reps  []transport.NodeID
		idxs  []int
	}

	// Classification runs under one short s.mu pass that only resolves
	// ownership — no data is read or written while the snode-wide lock is
	// held.  The data itself is then applied per bucket under that
	// bucket's lock, so concurrent batches for different partitions on
	// this snode proceed in parallel.  Items landing on a frozen
	// partition (mid-transfer) are retried until the transfer settles and
	// they either apply locally or chase the new custody pointer — but
	// only within FreezeTimeout: a wedged transfer must surface per-key
	// errors, not spin this goroutine forever.
	pending := make([]int, len(m.Items))
	for i := range pending {
		pending[i] = i
	}
	var freezeDeadline time.Time
	for len(pending) > 0 {
		var frozen []int
		work := make(map[*bucket]*bucketWork)
		s.mu.Lock()
		for _, i := range pending {
			h := hashes[i]
			if ref, p, ok := s.ownedForLocked(h); ok {
				bk := ref.bk
				if bk.state == bucketFrozen && m.Kind != opGet { //lint:dbdht lockguard state transitions under BOTH s.mu and bk.mu, so this read under s.mu is race-free
					frozen = append(frozen, i)
					continue
				}
				w := work[bk]
				if w == nil {
					var reps []transport.NodeID
					if s.cfg.Replicas > 1 {
						if d, ok := replDests[p]; ok {
							reps = d
						} else {
							reps = s.replicaHostsLocked(p)
							replDests[p] = reps
						}
					}
					w = &bucketWork{owner: ownerRef{Vnode: ref.vs.name, Host: s.id}, p: p, group: ref.vs.group, reps: reps}
					work[bk] = w
				}
				w.idxs = append(w.idxs, i)
				continue
			}
			if m.Hops >= s.cfg.MaxHops {
				results[i] = batchItemResp{Err: fmt.Sprintf("data op exceeded %d hops", m.Hops)}
				continue
			}
			ref, ok := s.forwardTargetLocked(h, m.Hops == 0)
			if !ok {
				results[i] = batchItemResp{Err: "no route: empty DHT view"}
				continue
			}
			forwards[ref.Host] = append(forwards[ref.Host], i)
		}
		s.mu.Unlock()

		// Apply each bucket's share under its own lock.  A bucket whose
		// state moved since classification requeues its items: a freeze
		// joins the frozen-deadline path, a death (shipped or split away)
		// re-classifies against the new ownership.  Writes are journaled
		// under the same bucket lock that applies them (one record per
		// bucket per batch) and acknowledged only once durable.
		var again []int
		for bk, w := range work {
			var verAfter uint64 // bucket write version after this apply
			if m.Kind == opGet {
				bk.mu.RLock()
				if bk.state == bucketDead {
					bk.mu.RUnlock()
					again = append(again, w.idxs...)
					continue
				}
				var readBytes int64
				for _, i := range w.idxs {
					v, found := bk.m[m.Items[i].Key]
					readBytes += int64(len(v))
					results[i] = batchItemResp{Value: append([]byte(nil), v...), Found: found}
				}
				bk.mu.RUnlock()
				bk.noteReads(int64(len(w.idxs)), readBytes)
			} else {
				bk.mu.Lock()
				if bk.state != bucketLive {
					st := bk.state
					bk.mu.Unlock()
					if st == bucketFrozen {
						frozen = append(frozen, w.idxs...)
					} else {
						again = append(again, w.idxs...)
					}
					continue
				}
				var wroteBytes int64
				if s.dur != nil {
					// The journal record is encoded inline as the items
					// apply (layout of encodeWalWrite/decodeWalWrite, with
					// the item count known upfront), into a scratch slab
					// reused across this batch's buckets — no per-bucket
					// slice or closure allocations on the hot path.
					walScratch = encodeWalWriteHeader(walScratch[:0], m.Kind, w.p, len(w.idxs))
				}
				for _, i := range w.idxs {
					it := m.Items[i]
					switch m.Kind {
					case opPut:
						v := it.Value
						if !m.private {
							v = append([]byte(nil), v...)
						}
						bk.m[it.Key] = v
						wroteBytes += int64(len(v))
						results[i] = batchItemResp{Found: true}
					case opDel:
						_, found := bk.m[it.Key]
						delete(bk.m, it.Key)
						results[i] = batchItemResp{Found: found}
					}
					if s.dur != nil {
						walScratch = transport.AppendString(walScratch, it.Key)
						walScratch = transport.AppendBytes(walScratch, it.Value)
					}
					if bk.mig != nil {
						// The bucket is streaming out in a live migration:
						// record the key so a delta round re-ships it.
						bk.mig.dirty[it.Key] = struct{}{}
					}
				}
				if s.dur != nil {
					// Journal under the bucket lock: the snapshot pass reads
					// buckets under the same lock, so a record below its cut
					// is always reflected in the bucket it serializes.
					seq := s.durAppend(walScratch)
					if seq == 0 {
						walClosed = true
					} else if seq > walMax {
						walMax = seq
					}
					durWrites = append(durWrites, w.idxs...)
				}
				// Bump the bucket's write version under the same lock that
				// applied the writes: the replica fan-out below carries it, so
				// replicas rank freshness during a failover election.
				bk.ver++
				verAfter = bk.ver
				bk.mu.Unlock()
				bk.noteWrites(int64(len(w.idxs)), wroteBytes)
			}
			s.stats.DataOps.Add(int64(len(w.idxs)))
			if replicate && len(w.reps) > 0 {
				for _, i := range w.idxs {
					replWrites[w.p] = append(replWrites[w.p], m.Items[i])
				}
				replMeta[w.p] = replFanMeta{ver: verAfter, group: w.group}
				localWrites = append(localWrites, w.idxs...)
			}
			served = append(served, routeEntry{Partition: w.p, Ref: w.owner, Replicas: w.reps})
		}

		if len(frozen) > 0 {
			now := time.Now()
			if freezeDeadline.IsZero() {
				freezeDeadline = now.Add(s.cfg.FreezeTimeout)
			} else if now.After(freezeDeadline) {
				s.stats.FreezeTimeouts.Add(int64(len(frozen)))
				for _, i := range frozen {
					results[i] = batchItemResp{Err: fmt.Sprintf(
						"partition frozen: transfer did not settle within %v", s.cfg.FreezeTimeout)}
				}
				frozen = nil
			}
			if len(frozen) > 0 {
				s.stats.Requeues.Add(int64(len(frozen)))
				time.Sleep(200 * time.Microsecond)
			}
		}
		pending = append(frozen, again...)
	}

	// Fan the sub-batches out in parallel — each next hop resolves its
	// share concurrently — and scatter the answers back in place.  The
	// replica fan-out for locally applied writes rides the same wait:
	// writes are acknowledged only after their replicas answered.
	var (
		wg      sync.WaitGroup
		mergeMu sync.Mutex
		replErr error
	)
	if replicate && len(replWrites) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rsp := beginSpan(sp.ctx, "batch.repl-ack")
			t0 := time.Now()
			err := s.replicate(m.Kind, replWrites, replDests, replMeta, rsp.ctx)
			s.lat.replAck.ObserveSince(t0)
			outcome := ""
			if err != nil {
				outcome = err.Error()
			}
			s.tracer.finish(rsp, s.id, outcome)
			if err != nil {
				mergeMu.Lock()
				replErr = err
				mergeMu.Unlock()
			}
		}()
	}
	for host, idxs := range forwards {
		wg.Add(1)
		go func(host transport.NodeID, idxs []int) {
			defer wg.Done()
			sub := make([]batchItem, len(idxs))
			for j, i := range idxs {
				sub[j] = m.Items[i]
			}
			s.stats.Forwards.Add(1)
			fsp := beginSpan(sp.ctx, "batch.forward")
			v, err := s.rpcTr(host, fsp.ctx, func(op uint64) any {
				return batchReq{Op: op, Kind: m.Kind, Items: sub, ReplyTo: s.id, Hops: m.Hops + 1}
			})
			if fsp.active() {
				outcome := ""
				if err != nil {
					outcome = err.Error()
				}
				s.tracer.finish(fsp, s.id, outcome)
			}
			mergeMu.Lock()
			defer mergeMu.Unlock()
			if err != nil {
				for _, i := range idxs {
					results[i] = batchItemResp{Err: err.Error()}
				}
				return
			}
			resp := v.(batchResp)
			for j, i := range idxs {
				if j < len(resp.Results) {
					results[i] = resp.Results[j]
				} else {
					results[i] = batchItemResp{Err: fmt.Sprintf("short batch response from %d", host)}
				}
			}
			served = append(served, resp.Served...)
		}(host, idxs)
	}
	wg.Wait()
	if replErr != nil {
		// Stopping mid-batch: the local copies die with this snode, so
		// the affected writes must not be acknowledged as durable.
		for _, i := range localWrites {
			results[i] = batchItemResp{Err: "replication aborted: " + replErr.Error()}
		}
	}
	// The durability wait rides after the parallel fan-out (the group
	// fsync overlapped with the network round-trips): a write is
	// acknowledged only once its journal record is on disk per the
	// configured fsync mode.
	walOK := !walClosed
	if walOK && walMax > 0 && !s.durFastAck() {
		wsp := beginSpan(sp.ctx, "batch.wal-wait")
		t0 := time.Now()
		walOK = s.durWaitSeq(walMax)
		s.lat.walWait.ObserveSince(t0)
		outcome := ""
		if !walOK {
			outcome = "wal-closed"
		}
		s.tracer.finish(wsp, s.id, outcome)
	}
	if !walOK {
		for _, i := range durWrites {
			results[i] = batchItemResp{Err: "wal aborted: snode stopping"}
		}
	}

	s.tracer.finish(sp, s.id, "")
	s.send(m.ReplyTo, batchResp{Op: m.Op, Results: results, Served: dedupRoutes(served)})
}

// dedupRoutes keeps one entry per partition (the last one wins — deeper
// in the response merge means closer to the current owner), so Served
// lists stay proportional to partitions touched, not items served.
func dedupRoutes(entries []routeEntry) []routeEntry {
	if len(entries) <= 1 {
		return entries
	}
	seen := make(map[hashspace.Partition]int, len(entries))
	out := entries[:0]
	for _, e := range entries {
		if i, ok := seen[e.Partition]; ok {
			out[i] = e
			continue
		}
		seen[e.Partition] = len(out)
		out = append(out, e)
	}
	return out
}

// --- client side (the Cluster handle) ---

// KV is one key/value pair of a batch put.
type KV struct {
	Key   string
	Value []byte
}

// BatchResult is the per-key outcome of a batch operation, parallel to the
// input slice.  Err is empty on success; Found/Value follow the semantics
// of the single-key Get/Put/Delete.
type BatchResult struct {
	Key   string
	Value []byte
	Found bool
	Err   string
}

// OK reports whether the operation on this key succeeded.
func (r BatchResult) OK() bool { return r.Err == "" }

// MPut stores many key/value pairs in one batched operation.  Results are
// parallel to items; batches are partial-failure capable — inspect each
// BatchResult.Err.  The returned error is reserved for cluster-level
// failures (no snodes, shut down fabric).
func (c *Cluster) MPut(items []KV) ([]BatchResult, error) {
	bi := make([]batchItem, len(items))
	keys := make([]string, len(items))
	for i, it := range items {
		bi[i] = batchItem{Key: it.Key, Value: it.Value}
		keys[i] = it.Key
	}
	return c.mbatch(opPut, keys, bi)
}

// MGet fetches many keys in one batched operation.
func (c *Cluster) MGet(keys []string) ([]BatchResult, error) {
	bi := make([]batchItem, len(keys))
	for i, k := range keys {
		bi[i] = batchItem{Key: k}
	}
	return c.mbatch(opGet, keys, bi)
}

// MDelete removes many keys in one batched operation.
func (c *Cluster) MDelete(keys []string) ([]BatchResult, error) {
	bi := make([]batchItem, len(keys))
	for i, k := range keys {
		bi[i] = batchItem{Key: k}
	}
	return c.mbatch(opDel, keys, bi)
}

// route is one cached owner pointer at the handle, together with the
// partition's replica hosts for read failover.  dead marks a route whose
// primary crashed but whose replicas survive: reads aim straight at a
// replica (no doomed RPC to the dead primary first), writes re-resolve.
// keep marks a route whose replica list was emptied by a crash purge while
// its primary stayed live: invalidateStaleRoutes treats it like a
// replica-backed route (retained on transient RPC failure), because a
// crash can orphan custody chains and leave this cached pointer as the
// only path to a perfectly healthy partition.
type route struct {
	ref      ownerRef
	replicas []transport.NodeID
	dead     bool
	keep     bool
}

// learnRoutes folds served-partition info from batch responses into the
// handle's owner cache, so subsequent batches aim straight at the owners.
func (c *Cluster) learnRoutes(entries []routeEntry) {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	for _, e := range entries {
		if _, ok := c.routes[e.Partition]; !ok {
			c.routeLvls.add(e.Partition.Level)
		}
		c.routes[e.Partition] = route{ref: e.Ref, replicas: e.Replicas}
	}
}

// purgeRoutesTo rewrites the handle's cache when a snode departs, so the
// first post-departure batch pays no failed round-trip discovering it.
//
// Graceful leave: the leaver's partitions all migrated to survivors and
// its custody table was bequeathed, so every pointer at it — owner routes
// and replica-set entries alike — is dropped outright; re-resolution
// through the (intact) custody chains relearns fresh routes.
//
// Crash: a route whose primary died but whose replicas survive is kept
// and marked dead, so the very next read goes straight to a replica
// instead of burning a failed RPC; a victim route that knows no replicas
// is dropped (nothing can serve it).  The dead host is also stripped from
// the replica list of every OTHER route — a failover read must never aim
// at the crashed replica.  When that strip empties a previously non-empty
// list the route is marked keep instead of losing its retention signal:
// a crash can orphan custody chains, leaving cached routes as the only
// path to perfectly healthy partitions, and invalidateStaleRoutes must
// not let one transient post-crash timeout evict the irreplaceable route.
func (c *Cluster) purgeRoutesTo(host transport.NodeID, crashed bool) {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	for p, rt := range c.routes {
		if n := stripHost(rt.replicas, host); len(n) != len(rt.replicas) {
			if crashed && len(n) == 0 {
				rt.keep = true
			}
			rt.replicas = n
			c.routes[p] = rt
		}
		if rt.ref.Host != host {
			continue
		}
		if crashed && len(rt.replicas) > 0 {
			rt.dead = true
			c.routes[p] = rt
			continue
		}
		delete(c.routes, p)
		c.routeLvls.remove(p.Level)
	}
}

// stripHost filters one host out of a replica list, returning the input
// slice unchanged when the host is absent.
func stripHost(reps []transport.NodeID, host transport.NodeID) []transport.NodeID {
	found := false
	for _, r := range reps {
		if r == host {
			found = true
			break
		}
	}
	if !found {
		return reps
	}
	out := make([]transport.NodeID, 0, len(reps)-1)
	for _, r := range reps {
		if r != host {
			out = append(out, r)
		}
	}
	return out
}

// invalidateStaleRoutes handles a host that stopped answering mid-batch:
// routes aimed at it with no surviving replica are dropped (stale — the
// retry re-resolves them via the normal lookup path), while routes that
// know replica hosts — or carry the keep mark from a crash purge that
// emptied their list — are retained, so every later read of a dead
// primary's partition keeps failing over instead of dead-ending in the
// custody chain.  Kept routes are deliberately NOT marked dead here: an
// RPC failure may be transient congestion at a live host (e.g. it is
// stuck forwarding into a crash), and only an authoritative departure
// (purgeRoutesTo, from RemoveSnode/KillSnode) may divert its traffic
// permanently.
func (c *Cluster) invalidateStaleRoutes(host transport.NodeID) {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	for p, rt := range c.routes {
		if rt.ref.Host != host {
			continue
		}
		keep := rt.keep
		for _, rep := range rt.replicas {
			if rep != host {
				keep = true
				break
			}
		}
		if keep {
			continue
		}
		delete(c.routes, p)
		c.routeLvls.remove(p.Level)
	}
}

// planFailover maps the items of a failed sub-batch to replica hosts able
// to serve them, using the replica sets cached alongside the owner routes.
// Called before the stale routes are dropped.
func (c *Cluster) planFailover(failed transport.NodeID, idxs []int, items []batchItem) map[transport.NodeID][]int {
	var plan map[transport.NodeID][]int
	c.routeMu.Lock()
	for _, i := range idxs {
		rt, ok := probeLevels(hashspace.HashString(items[i].Key), c.routes, &c.routeLvls)
		if !ok {
			continue
		}
		for _, rep := range rt.replicas {
			if rep != failed {
				if plan == nil {
					plan = make(map[transport.NodeID][]int)
				}
				plan[rep] = append(plan[rep], i)
				break
			}
		}
	}
	c.routeMu.Unlock()
	return plan
}

// mbatch groups the items by believed owner — cache hits go straight to
// the owning host, the rest spread across entry snodes by key hash — and
// issues every sub-batch in parallel.
//
// Failure handling: when the RPC to a believed owner errors, its routes
// are invalidated (invalidateStaleRoutes — routes whose partitions know
// surviving replicas are deliberately KEPT so later reads keep failing
// over), reads are failed over to the partition's cached replica hosts,
// and whatever remains is retried once through the normal lookup path via
// fresh entry snodes — hosts that just failed are not re-picked — before
// per-key errors surface.
//
//dbdht:dataplane
func (c *Cluster) mbatch(kind dataOp, keys []string, items []batchItem) ([]BatchResult, error) {
	results := make([]BatchResult, len(items))
	for i, k := range keys {
		results[i].Key = k
	}
	if len(items) == 0 {
		return results, nil
	}
	// Head-sampling decision for the whole operation: one atomic load when
	// tracing is off.  The root span's parent is 0 (the sampler context
	// carries no span id), marking it as an operation root for Traces().
	root := beginSpan(c.sampler.next(), batchOpName(kind))
	start := root.start
	if !root.active() && c.slowOp > 0 {
		start = time.Now()
	}
	defer func() {
		c.tracer.finish(root, clientID, "")
		if c.slowOp > 0 && time.Since(start) >= c.slowOp {
			c.logSlowOp(batchOpName(kind), len(items), time.Since(start), root)
		}
	}()
	hashes := make([]hashspace.Index, len(items))
	for i := range items {
		hashes[i] = hashspace.HashString(items[i].Key)
	}
	pending := make([]int, len(items))
	for i := range pending {
		pending[i] = i
	}
	failedHosts := make(map[transport.NodeID]bool)
	for attempt := 0; attempt < 2 && len(pending) > 0; attempt++ {
		c.mu.Lock()
		order := append([]transport.NodeID(nil), c.order...)
		c.mu.Unlock()
		if len(order) == 0 {
			return results, fmt.Errorf("cluster: no snodes")
		}
		// Entry candidates exclude hosts that already failed this batch
		// (unless that would leave none).
		entries := order
		if len(failedHosts) > 0 {
			live := make([]transport.NodeID, 0, len(order))
			for _, id := range order {
				if !failedHosts[id] {
					live = append(live, id)
				}
			}
			if len(live) > 0 {
				entries = live
			}
		}
		groups := make(map[transport.NodeID][]int)
		var unrouted []int
		var replicaGroups map[transport.NodeID][]int
		if attempt == 0 {
			// Probe the owner cache for the whole batch under one lock
			// acquisition, not one per item.  A dead-primary route (crash
			// with surviving replicas) sends reads straight to a replica
			// and everything else back through the lookup path — never a
			// doomed RPC at the dead host.
			c.routeMu.Lock()
			for _, i := range pending {
				rt, ok := probeLevels(hashes[i], c.routes, &c.routeLvls)
				switch {
				case !ok:
					unrouted = append(unrouted, i)
				case rt.dead:
					if kind == opGet && len(rt.replicas) > 0 {
						if replicaGroups == nil {
							replicaGroups = make(map[transport.NodeID][]int)
						}
						replicaGroups[rt.replicas[0]] = append(replicaGroups[rt.replicas[0]], i)
					} else {
						unrouted = append(unrouted, i)
					}
				default:
					groups[rt.ref.Host] = append(groups[rt.ref.Host], i)
				}
			}
			c.routeMu.Unlock()
		} else {
			unrouted = pending
		}
		for _, i := range unrouted {
			// Unknown owner: deterministic spread over entry snodes, so
			// cold batches still classify in parallel across the cluster.
			// Retries rotate the entry so a dead first pick isn't re-chosen.
			entry := entries[(hashes[i]+uint64(attempt))%uint64(len(entries))]
			groups[entry] = append(groups[entry], i)
		}
		var (
			wg      sync.WaitGroup
			mergeMu sync.Mutex
			retry   []int
		)
		if len(replicaGroups) > 0 {
			wg.Add(1)
			go func() {
				defer wg.Done()
				served := c.failoverReads(kind, replicaGroups, items, results, &mergeMu, root.ctx)
				mergeMu.Lock()
				for _, idxs := range replicaGroups {
					for _, i := range idxs {
						if !served[i] {
							retry = append(retry, i)
						}
					}
				}
				mergeMu.Unlock()
			}()
		}
		for host, idxs := range groups {
			wg.Add(1)
			go func(host transport.NodeID, idxs []int) {
				defer wg.Done()
				sub := make([]batchItem, len(idxs))
				for j, i := range idxs {
					sub[j] = items[i]
				}
				rsp := beginSpan(root.ctx, "batch.rpc")
				t0 := time.Now()
				v, err := c.rpcTr(host, rsp.ctx, func(op uint64) any {
					return batchReq{Op: op, Kind: kind, Items: sub, ReplyTo: clientID}
				})
				c.batchRPC.ObserveSince(t0)
				if rsp.active() {
					outcome := ""
					if err != nil {
						outcome = err.Error()
					}
					c.tracer.finish(rsp, clientID, outcome)
				}
				if err != nil {
					// The believed owner stopped answering.  Plan read
					// failover from the replica sets cached with the
					// routes, then invalidate the stale routes.
					c.subFails.Add(1)
					var plan map[transport.NodeID][]int
					if kind == opGet {
						plan = c.planFailover(host, idxs, items)
					}
					c.invalidateStaleRoutes(host)
					served := c.failoverReads(kind, plan, items, results, &mergeMu, root.ctx)
					mergeMu.Lock()
					failedHosts[host] = true
					for _, i := range idxs {
						if !served[i] {
							retry = append(retry, i)
						}
					}
					mergeMu.Unlock()
					return
				}
				mergeMu.Lock()
				defer mergeMu.Unlock()
				resp := v.(batchResp)
				for j, i := range idxs {
					if j < len(resp.Results) {
						r := resp.Results[j]
						results[i].Value = r.Value
						results[i].Found = r.Found
						results[i].Err = r.Err
					} else {
						results[i].Err = fmt.Sprintf("short batch response from %d", host)
					}
				}
				c.learnRoutes(resp.Served)
			}(host, idxs)
		}
		wg.Wait()
		if attempt == 1 {
			for _, i := range retry {
				results[i].Err = "cluster: batch sub-request failed after retry"
			}
			retry = nil
		}
		pending = retry
	}
	return results, nil
}

// failoverReads issues the planned ReadReplica sub-batches and merges the
// answers, returning the set of item indices actually served.
func (c *Cluster) failoverReads(kind dataOp, plan map[transport.NodeID][]int, items []batchItem, results []BatchResult, mergeMu *sync.Mutex, tr transport.TraceContext) map[int]bool {
	served := make(map[int]bool)
	for rhost, ridxs := range plan {
		sub := make([]batchItem, len(ridxs))
		for j, i := range ridxs {
			sub[j] = items[i]
		}
		rsp := beginSpan(tr, "batch.failover-read")
		t0 := time.Now()
		v, err := c.rpcTr(rhost, rsp.ctx, func(op uint64) any {
			return batchReq{Op: op, Kind: kind, Items: sub, ReplyTo: clientID, ReadReplica: true}
		})
		c.batchRPC.ObserveSince(t0)
		if rsp.active() {
			outcome := ""
			if err != nil {
				outcome = err.Error()
			}
			c.tracer.finish(rsp, clientID, outcome)
		}
		if err != nil {
			c.subFails.Add(1)
			continue
		}
		resp := v.(batchResp)
		mergeMu.Lock()
		for j, i := range ridxs {
			if j < len(resp.Results) && resp.Results[j].Err == "" {
				results[i].Value = resp.Results[j].Value
				results[i].Found = resp.Results[j].Found
				results[i].Err = ""
				served[i] = true
			}
		}
		mergeMu.Unlock()
	}
	return served
}

// batchOpName names a batch verb for spans and slow-op logs.
func batchOpName(kind dataOp) string {
	switch kind {
	case opPut:
		return "op.mput"
	case opDel:
		return "op.mdel"
	default:
		return "op.mget"
	}
}

// logSlowOp emits a structured warning for a client batch that exceeded
// SlowOpThreshold.  A traced operation includes its full span breakdown —
// the root span just finished, so the rings hold the complete tree.
func (c *Cluster) logSlowOp(op string, items int, d time.Duration, root activeSpan) {
	if !root.active() {
		c.log.Warn("slow operation", "op", op, "items", items, "dur", d)
		return
	}
	spans := c.Trace(root.ctx.TraceID)
	attrs := make([]any, 0, 2*len(spans)+8)
	attrs = append(attrs, "op", op, "items", items, "dur", d, "trace", root.ctx.TraceID)
	for _, sp := range spans {
		attrs = append(attrs,
			fmt.Sprintf("span.%s@%d", sp.Name, sp.Snode), sp.Duration)
	}
	c.log.Warn("slow operation", attrs...)
}
