package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/hashspace"
)

// TestGenerateFuzzCorpus regenerates the committed seed corpus for
// transport.FuzzDecodeFrame: one frame body per wire message kind, plus a
// gob-fallback control frame and a traced frame.  Run manually with
// DBDHT_GEN_CORPUS=1 when the wire protocol grows a new message.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("DBDHT_GEN_CORPUS") == "" {
		t.Skip("set DBDHT_GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("..", "cluster", "transport", "testdata", "fuzz", "FuzzDecodeFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	p := hashspace.Partition{Level: 3, Prefix: 5}
	items := []batchItem{{Key: "seed-key", Value: []byte("seed-value")}}
	seeds := map[string]transport.Envelope{
		"seed-lookup-req":  {From: -1, To: 1, Msg: lookupReq{Op: 7, R: 0xdead, ReplyTo: -1, Hops: 1}},
		"seed-lookup-resp": {From: 1, To: -1, Msg: lookupResp{Op: 7, Host: 1, Partition: p}},
		"seed-batch-req":   {From: -1, To: 1, Msg: batchReq{Op: 8, Kind: opPut, Items: items, ReplyTo: -1}},
		"seed-batch-resp":  {From: 1, To: -1, Msg: batchResp{Op: 8, Results: []batchItemResp{{Value: []byte("seed-value"), Found: true}}}},
		"seed-repl-write-req": {From: 1, To: 2, Msg: replWriteReq{
			Op: 9, Kind: opPut, ReplyTo: 1,
			Sets: []replWriteSet{{Partition: p, Items: items, Ver: 4}},
		}},
		"seed-repl-write-resp": {From: 2, To: 1, Msg: replWriteResp{Op: 9}},
		"seed-repl-probe-req":  {From: 1, To: 2, Msg: replProbeReq{Op: 10, Partition: p, ReplyTo: 1}},
		"seed-repl-probe-resp": {From: 2, To: 1, Msg: replProbeResp{Op: 10, InSync: true}},
		"seed-ping-req":        {From: -1, To: 1, Msg: pingReq{Op: 11, ReplyTo: -1}},
		"seed-ping-resp":       {From: 1, To: -1, Msg: pingResp{Op: 11}},
		"seed-mig-begin-req":   {From: 1, To: 2, Msg: migBeginReq{Op: 12, Partition: p, ReplyTo: 1}},
		"seed-mig-begin-resp":  {From: 2, To: 1, Msg: migBeginResp{Op: 12}},
		"seed-mig-chunk-req": {From: 1, To: 2, Msg: migChunkReq{
			Op: 13, Partition: p, ReplyTo: 1,
			Items: []migItem{{Key: "seed-key", Value: []byte("seed-value")}},
		}},
		"seed-mig-chunk-resp":  {From: 2, To: 1, Msg: migChunkResp{Op: 13}},
		"seed-mig-commit-req":  {From: 1, To: 2, Msg: migCommitReq{Op: 14, Partition: p, ReplyTo: 1}},
		"seed-mig-commit-resp": {From: 2, To: 1, Msg: migCommitResp{Op: 14}},
		"seed-mig-abort":       {From: 1, To: 2, Msg: migAbortMsg{Partition: p}},
		"seed-load-req":        {From: -1, To: 1, Msg: loadReportReq{Op: 15, ReplyTo: -1}},
		"seed-load-resp":       {From: 1, To: -1, Msg: loadReportResp{Op: 15, Vnodes: 2, Keys: 42}},
		// Control messages ride the gob fallback format.
		"seed-gob-control": {From: 1, To: 2, Msg: snodeRecoveredMsg{Recovered: 1}},
		// A traced data frame exercises the trace-context header fields.
		"seed-traced-batch-req": {
			From: -1, To: 1, Msg: batchReq{Op: 16, Kind: opGet, Items: items, ReplyTo: -1},
			Trace: transport.TraceContext{TraceID: 0xabcdef, SpanID: 2, Sampled: true},
		},
	}
	for name, env := range seeds {
		frame, err := transport.AppendFrame(nil, env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		body := frame[4:] // FuzzDecodeFrame consumes the body after the length prefix
		if err := writeSeed(dir, name, body); err != nil {
			t.Fatal(err)
		}
	}

	// A multi-item batch frame cut mid-payload: the decoder must reject a
	// body whose declared item lengths run past the truncated end instead
	// of over-reading.  This is the shape a torn TCP read (or a nemesis
	// drop landing mid-burst) would hand the framer.
	burst, err := transport.AppendFrame(nil, transport.Envelope{
		From: -1, To: 1, Msg: batchReq{
			Op: 17, Kind: opPut, ReplyTo: -1,
			Items: []batchItem{
				{Key: "burst-key-0", Value: []byte("burst-value-0")},
				{Key: "burst-key-1", Value: []byte("burst-value-1")},
				{Key: "burst-key-2", Value: []byte("burst-value-2")},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	body := burst[4:]
	// Cut inside the second item's payload, past the header and first item.
	if err := writeSeed(dir, "seed-truncated-mid-burst", body[:len(body)*2/3]); err != nil {
		t.Fatal(err)
	}
}

func writeSeed(dir, name string, body []byte) error {
	content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(body)))
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}
