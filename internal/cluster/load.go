package cluster

import (
	"encoding/gob"
	"time"

	"dbdht/internal/cluster/transport"
)

// Per-bucket load accounting.  The §2.5 algorithm balances *quotas* —
// which balances load only under uniform access (the paper's §6 caveat,
// made quantitative by the simulator's skew experiment).  The autonomous
// balancer (balancer.go) therefore also observes real traffic: every
// bucket keeps read/write/byte window counters, bumped on the data path,
// that a background ticker decays into EWMA rates; load reports roll
// them up per snode for the cluster handle's control loop and the
// dbdht_balance_* metrics.

// loadAlpha is the EWMA smoothing factor per load tick: ~0.5 keeps the
// rates responsive to a shifting hot spot (a few ticks of memory) without
// jittering on a single bursty interval.
const loadAlpha = 0.5

// loadRates is the decayed per-second view of one bucket's traffic.
// Guarded by the bucket's mutex, like the bucket's data.
type loadRates struct {
	reads, writes, bytes float64
}

// noteReads/noteWrites bump the bucket's window counters; called on the
// batch apply path with no extra locking (the counters are atomic).
func (b *bucket) noteReads(n, bytes int64) {
	b.nReads.Add(n)
	b.nBytes.Add(bytes)
}

func (b *bucket) noteWrites(n, bytes int64) {
	b.nWrites.Add(n)
	b.nBytes.Add(bytes)
}

// loadLoop periodically folds every owned bucket's window counters into
// its EWMA rates.  Started by newSnode.
func (s *Snode) loadLoop() {
	t := time.NewTicker(s.cfg.LoadInterval)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-s.stopCh:
			return
		case now := <-t.C:
			dt := now.Sub(last).Seconds()
			last = now
			s.decayLoads(dt)
		}
	}
}

// decayLoads advances every owned bucket's EWMA by one window of dt
// seconds.  The bucket list is snapshotted under s.mu; each bucket's
// update takes only its own lock, so the pass never stalls the data plane
// as a whole.
func (s *Snode) decayLoads(dt float64) {
	if dt <= 0 {
		return
	}
	s.mu.Lock()
	bks := make([]*bucket, 0, 64)
	for _, vs := range s.vnodes {
		for _, bk := range vs.parts {
			bks = append(bks, bk)
		}
	}
	s.mu.Unlock()
	for _, bk := range bks {
		r := float64(bk.nReads.Swap(0)) / dt
		w := float64(bk.nWrites.Swap(0)) / dt
		by := float64(bk.nBytes.Swap(0)) / dt
		bk.mu.Lock()
		bk.rates.reads = loadAlpha*r + (1-loadAlpha)*bk.rates.reads
		bk.rates.writes = loadAlpha*w + (1-loadAlpha)*bk.rates.writes
		bk.rates.bytes = loadAlpha*by + (1-loadAlpha)*bk.rates.bytes
		bk.mu.Unlock()
	}
}

// loadReportReq asks an snode for its rolled-up load report; the cluster
// handle's balancer (and the metrics scrape) fans it out to every snode.
// Rides the binary frame codec: with the balancer and scrapes polling
// continuously these are steady-state traffic, not one-off control.
type loadReportReq struct {
	Op      uint64
	ReplyTo transport.NodeID
}

// loadReportResp is one snode's aggregate: enrollment, stored keys, the
// quota it owns (fraction of R_h across its joined vnodes' partitions)
// and its decayed traffic rates.
type loadReportResp struct {
	Op     uint64
	Vnodes int
	Keys   int
	Quota  float64
	Reads  float64 // EWMA ops/s
	Writes float64 // EWMA ops/s
	Bytes  float64 // EWMA bytes/s
}

func init() {
	gob.Register(loadReportReq{})
	gob.Register(loadReportResp{})
}

// handleLoadReport rolls the snode's owned buckets up into one report.
// Runs inline: no nested RPCs, one pass under s.mu with per-bucket read
// locks (the same nesting order as the batch path).
func (s *Snode) handleLoadReport(m loadReportReq) {
	resp := loadReportResp{Op: m.Op}
	s.mu.Lock()
	for _, vs := range s.vnodes {
		if !vs.joined {
			continue
		}
		resp.Vnodes++
		for p, bk := range vs.parts {
			resp.Quota += p.Quota()
			bk.mu.RLock()
			resp.Keys += len(bk.m)
			resp.Reads += bk.rates.reads
			resp.Writes += bk.rates.writes
			resp.Bytes += bk.rates.bytes
			bk.mu.RUnlock()
		}
	}
	s.mu.Unlock()
	s.send(m.ReplyTo, resp)
}
