package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dbdht/internal/cluster/transport"
)

func batchKeys(n int) ([]string, []KV) {
	keys := make([]string, n)
	items := make([]KV, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("batch-key-%04d", i)
		items[i] = KV{Key: keys[i], Value: []byte(fmt.Sprintf("batch-val-%04d", i))}
	}
	return keys, items
}

func TestBatchRoundTrip(t *testing.T) {
	c := newTestCluster(t, 32, 8, 4, 1)
	growCluster(t, c, 16)
	keys, items := batchKeys(128)

	results, err := c.MPut(items)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OK() {
			t.Fatalf("MPut %q: %s", r.Key, r.Err)
		}
	}
	results, err = c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Key != keys[i] {
			t.Fatalf("MGet result %d is for %q, want %q (order must be preserved)", i, r.Key, keys[i])
		}
		if !r.OK() || !r.Found || string(r.Value) != fmt.Sprintf("batch-val-%04d", i) {
			t.Fatalf("MGet %q = %+v", keys[i], r)
		}
	}
	results, err = c.MDelete(keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OK() || !r.Found {
			t.Fatalf("MDelete %q = %+v", r.Key, r)
		}
	}
	// Deleted keys are gone; a second delete reports Found=false.
	results, err = c.MDelete(keys[:8])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OK() || r.Found {
			t.Fatalf("second MDelete %q = %+v, want Found=false", r.Key, r)
		}
	}
	if st := c.StatsTotal(); st.Batches == 0 {
		t.Fatal("batch traffic left Batches counter at zero")
	}
}

// TestBatchSurvivesRebalancement interleaves batches with vnode enrollment
// (which migrates partitions): batches must chase custody chains and stale
// client-side routes to the current owners.
func TestBatchSurvivesRebalancement(t *testing.T) {
	c := newTestCluster(t, 32, 8, 4, 2)
	growCluster(t, c, 8)
	keys, items := batchKeys(256)
	if _, err := c.MPut(items); err != nil {
		t.Fatal(err)
	}
	// Warm the handle's route cache, then invalidate it wholesale by
	// growing the DHT (splits + partition migrations).
	if _, err := c.MGet(keys); err != nil {
		t.Fatal(err)
	}
	growCluster(t, c, 24)
	results, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.OK() || !r.Found || string(r.Value) != fmt.Sprintf("batch-val-%04d", i) {
			t.Fatalf("MGet %q after rebalancement = %+v", keys[i], r)
		}
	}
}

// TestBatchPartialFailure abruptly stops one snode (no graceful leave, so
// its partitions are simply unreachable): keys owned by survivors succeed,
// keys owned by the dead snode fail individually, and the batch as a whole
// still answers — the documented partial-failure semantics.
func TestBatchPartialFailure(t *testing.T) {
	c := newTestCluster(t, 32, 8, 4, 7)
	growCluster(t, c, 16)
	keys, items := batchKeys(64)

	// The first vnode (the bootstrap fallback route) lives at the first
	// snode; kill a different one so routing itself stays alive.
	ids := c.Snodes()
	dead := ids[2]
	c.mu.Lock()
	s := c.snodes[dead]
	c.mu.Unlock()
	s.stop()

	results, err := c.MPut(items)
	if err != nil {
		t.Fatal(err)
	}
	var ok, failed int
	succeeded := make(map[string]bool)
	for _, r := range results {
		if r.OK() {
			ok++
			succeeded[r.Key] = true
		} else {
			failed++
			if r.Err == "" {
				t.Fatalf("failed result for %q carries no error", r.Key)
			}
		}
	}
	if ok == 0 || failed == 0 {
		t.Fatalf("want a partial failure, got %d ok / %d failed", ok, failed)
	}
	// Successful puts taught the handle their owners, so reads of those
	// keys go direct to live snodes and succeed.
	results, err = c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if succeeded[r.Key] {
			if !r.OK() || !r.Found {
				t.Fatalf("MGet %q after successful put = %+v", r.Key, r)
			}
		} else if r.OK() && r.Found {
			t.Fatalf("MGet %q found a value whose put failed", r.Key)
		}
	}
}

// TestBatchOverTCP round-trips batches over the real TCP fabric: the
// batch messages must survive gob encoding.
func TestBatchOverTCP(t *testing.T) {
	c, err := New(Config{Pmin: 8, Vmin: 4, Seed: 21, RPCTimeout: 20 * time.Second}, transport.NewTCP("127.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	growCluster(t, c, 8)
	keys, items := batchKeys(64)
	results, err := c.MPut(items)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OK() {
			t.Fatalf("MPut %q over TCP: %s", r.Key, r.Err)
		}
	}
	results, err = c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.OK() || !r.Found || string(r.Value) != fmt.Sprintf("batch-val-%04d", i) {
			t.Fatalf("MGet %q over TCP = %+v", keys[i], r)
		}
	}
}

func TestDataOpsOnEmptyAndClosedCluster(t *testing.T) {
	// No snodes at all: every data op fails fast.
	c := newTestCluster(t, 32, 8, 0, 3)
	if err := c.Put("k", []byte("v")); err == nil || !strings.Contains(err.Error(), "no snodes") {
		t.Fatalf("Put on snode-less cluster: %v", err)
	}
	if _, _, err := c.Get("k"); err == nil {
		t.Fatal("Get on snode-less cluster succeeded")
	}
	if _, err := c.Delete("k"); err == nil {
		t.Fatal("Delete on snode-less cluster succeeded")
	}
	if _, err := c.MGet([]string{"k"}); err == nil {
		t.Fatal("MGet on snode-less cluster succeeded")
	}

	// Snodes but no vnodes: the DHT is empty, there is no route.
	c2 := newTestCluster(t, 32, 8, 2, 4)
	if err := c2.Put("k", []byte("v")); err == nil || !strings.Contains(err.Error(), "no route") {
		t.Fatalf("Put on vnode-less cluster: %v", err)
	}
	results, err := c2.MPut([]KV{{Key: "k", Value: []byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].OK() || !strings.Contains(results[0].Err, "no route") {
		t.Fatalf("MPut on vnode-less cluster = %+v", results[0])
	}

	// Closed cluster: the fabric is gone; single ops error, batches report
	// the failure per key.
	c3, err := New(Config{Pmin: 32, Vmin: 8, Seed: 5}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.AddSnode(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c3.CreateVnode(c3.Snodes()[0]); err != nil {
		t.Fatal(err)
	}
	c3.Close()
	if err := c3.Put("k", []byte("v")); err == nil {
		t.Fatal("Put on closed cluster succeeded")
	}
	if _, _, err := c3.Get("k"); err == nil {
		t.Fatal("Get on closed cluster succeeded")
	}
	results, err = c3.MGet([]string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].OK() {
		t.Fatal("MGet on closed cluster reported per-key success")
	}
}

func TestDataOpsAfterRemoveSnode(t *testing.T) {
	c := newTestCluster(t, 32, 8, 4, 6)
	growCluster(t, c, 16)
	keys, items := batchKeys(128)
	if _, err := c.MPut(items); err != nil {
		t.Fatal(err)
	}
	// Warm the route cache so some cached owners go stale on removal.
	if _, err := c.MGet(keys); err != nil {
		t.Fatal(err)
	}
	ids := c.Snodes()
	if err := c.RemoveSnode(ids[1]); err != nil {
		t.Fatal(err)
	}
	// Single-key and batched reads all still resolve: data migrated to the
	// survivors and routing chains were repaired.
	for _, k := range keys[:16] {
		if _, found, err := c.Get(k); err != nil || !found {
			t.Fatalf("Get %q after RemoveSnode = %v, %v", k, found, err)
		}
	}
	results, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.OK() || !r.Found || string(r.Value) != fmt.Sprintf("batch-val-%04d", i) {
			t.Fatalf("MGet %q after RemoveSnode = %+v", keys[i], r)
		}
	}
	if err := c.Put("post-removal", []byte("v")); err != nil {
		t.Fatalf("Put after RemoveSnode: %v", err)
	}
	if _, err := c.Delete("post-removal"); err != nil {
		t.Fatalf("Delete after RemoveSnode: %v", err)
	}

	// Shrink further: data keeps flowing with each departure.
	ids = c.Snodes()
	if err := c.RemoveSnode(ids[len(ids)-1]); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:16] {
		if _, found, err := c.Get(k); err != nil || !found {
			t.Fatalf("Get %q after second RemoveSnode = %v, %v", k, found, err)
		}
	}
	// Operations aimed at the departed snode are rejected by the admin
	// plane.
	if _, _, err := c.CreateVnode(ids[len(ids)-1]); err == nil {
		t.Fatal("CreateVnode at removed snode succeeded")
	}
}
