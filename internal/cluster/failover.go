package cluster

import (
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/hashspace"
)

// Automatic primary failover.  When an snode crashes (KillSnode, or the
// cluster handle's liveness detector declaring it dead), every partition
// it was primary for still has R−1 replica buckets on survivors — but
// until this file, those buckets only served failover *reads* and an
// operator had to re-home the partition by hand before writes resumed.
//
// The protocol, run independently per dead primary:
//
//  1. Scan.  Each survivor receives snodeLeavingMsg{Crashed: true} and
//     scans its replica metadata (rmeta) for partitions whose primary
//     was the dead snode.
//  2. Coordinate.  For each such partition the pre-crash replica set is
//     recomputed from the placement function (the view plus the dead
//     snode); the lowest-id live member of that set is the coordinator.
//     Every survivor derives the same coordinator without messages, so
//     exactly one election runs per partition.
//  3. Elect.  The coordinator queries each live replica host
//     (promoteQueryReq) for its copy's write version and provisional
//     flag.  The winner is the most-caught-up copy: authoritative
//     (full-synced) beats provisional, then the highest version wins,
//     ties broken by the lower node id.  A restarted replica re-joins
//     with version 0 and so never outranks one that stayed up.
//  4. Promote.  The winner (ordered via promoteOrderReq, or locally if
//     the coordinator won) installs the replica bucket as a primary
//     bucket on a joined vnode of the partition's group — allocating a
//     fresh joined vnode if it hosts none — journals the install like a
//     migration commit, re-announces custody to every survivor and the
//     cluster handle exactly like RestartSnode does, and re-homes fresh
//     replicas for the partition.  Writes resume with no operator action.
//
// The election is best-effort by design: with R=2 there is one replica,
// so the "election" degenerates to promoting it; a partition whose every
// replica host also died is orphaned (reads and writes fail fast) until
// an operator restarts one of the snodes from its journal.  Promotion is
// idempotent — a duplicate order finds the partition already owned and
// succeeds without side effects.

// promoteQueryReq asks a replica host for its copy's election credentials
// for one partition of a dead primary.
type promoteQueryReq struct {
	Op        uint64
	Partition hashspace.Partition
	Dead      transport.NodeID
	ReplyTo   transport.NodeID
}

type promoteQueryResp struct {
	Op   uint64
	Has  bool   // this host backs the partition and its metadata names Dead as primary
	Prov bool   // the copy is provisional (write-created, never full-synced)
	Ver  uint64 // highest primary write version folded into the copy
}

// promoteOrderReq tells the election winner to promote its replica bucket
// to primary.
type promoteOrderReq struct {
	Op        uint64
	Partition hashspace.Partition
	Dead      transport.NodeID
	ReplyTo   transport.NodeID
}

type promoteOrderResp struct {
	Op  uint64
	Err string
}

// overlapQueryReq asks whether the receiver knows — as owner, replica
// holder, replica metadata or custody tomb — any partition strictly
// deeper than Partition that overlaps it.  Partition geometry only ever
// deepens (splits refine, migrations preserve level), so one positive
// answer proves Partition is stale geometry and must not be promoted:
// its region was since refined, and the stale replica bucket backing it
// is bounded garbage, not the current copy.
type overlapQueryReq struct {
	Op        uint64
	Partition hashspace.Partition
	ReplyTo   transport.NodeID
}

type overlapQueryResp struct {
	Op     uint64
	Deeper bool
}

func init() {
	for _, m := range []any{
		promoteQueryReq{}, promoteQueryResp{},
		promoteOrderReq{}, promoteOrderResp{},
		overlapQueryReq{}, overlapQueryResp{},
	} {
		gob.Register(m)
	}
}

// failoverScan runs on every survivor after a crash notice: find the
// partitions this snode backs whose primary died, and for those where
// this snode is the deterministic coordinator, run the election.
func (s *Snode) failoverScan(dead transport.NodeID) {
	s.mu.Lock()
	view := append([]transport.NodeID(nil), s.view...)
	live := make(map[transport.NodeID]bool, len(view))
	for _, id := range view {
		live[id] = true
	}
	// The placement the dead primary replicated with was computed over a
	// view that still contained it.
	preCrash := make([]transport.NodeID, 0, len(s.view)+1)
	preCrash = append(preCrash, s.view...)
	if !live[dead] {
		preCrash = append(preCrash, dead)
	}
	sort.Slice(preCrash, func(i, j int) bool { return preCrash[i] < preCrash[j] })
	var targets []hashspace.Partition
	for p, m := range s.rmeta {
		if m.prim == dead {
			targets = append(targets, p)
		}
	}
	r := s.cfg.Replicas
	s.mu.Unlock()

	// Elections for distinct partitions are independent — only the
	// coordinator-per-partition rule must hold, and that is decided
	// locally.  Run them concurrently: each election is a chain of small
	// RPCs (overlap probes, vote queries, the promotion order), so a
	// crashed primary with hundreds of partitions would otherwise pay the
	// whole chain's latency per partition and stretch the write blackout
	// by seconds.  Bounded, so a large custody set cannot stampede the
	// survivors with hundreds of simultaneous probe fan-outs.
	var wg sync.WaitGroup
	sem := make(chan struct{}, failoverElectionWorkers)
	for _, p := range targets {
		select {
		case <-s.stopCh:
			wg.Wait()
			return
		default:
		}
		cands := replicaHostsFor(p, dead, preCrash, r)
		coord := transport.NodeID(-1)
		for _, id := range cands {
			if live[id] && (coord < 0 || id < coord) {
				coord = id
			}
		}
		if coord != s.id {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(p hashspace.Partition) {
			defer func() { <-sem; wg.Done() }()
			if s.staleGeometry(p, view) {
				// A leftover replica of a refined partition: the deeper
				// descendants hold the current copies and run their own
				// elections; promoting the ancestor would shadow them with
				// an empty bucket.
				s.mu.Lock()
				s.delReplicaBucketLocked(p)
				s.mu.Unlock()
				return
			}
			s.electAndPromote(p, dead, cands, live)
		}(p)
	}
	wg.Wait()
}

// failoverElectionWorkers bounds how many partition elections one
// coordinator runs concurrently after a crash notice.
const failoverElectionWorkers = 8

// deeperOverlapLocked reports whether this snode knows any partition
// strictly deeper than p overlapping p — as a primary bucket, a replica
// bucket, replica metadata or a custody tomb.  Caller holds s.mu.
func (s *Snode) deeperOverlapLocked(p hashspace.Partition) bool {
	for q := range s.owned {
		if q.Level > p.Level && overlapping(q, p) {
			return true
		}
	}
	for q := range s.rparts {
		if q.Level > p.Level && overlapping(q, p) {
			return true
		}
	}
	for q := range s.rmeta {
		if q.Level > p.Level && overlapping(q, p) {
			return true
		}
	}
	for q := range s.tombs {
		if q.Level > p.Level && overlapping(q, p) {
			return true
		}
	}
	return false
}

// handleOverlapQuery answers a stale-geometry probe.  Fast (no nested
// RPCs) — runs inline in the actor loop.
func (s *Snode) handleOverlapQuery(m overlapQueryReq) {
	s.mu.Lock()
	deeper := s.deeperOverlapLocked(m.Partition)
	s.mu.Unlock()
	s.send(m.ReplyTo, overlapQueryResp{Op: m.Op, Deeper: deeper})
}

// staleGeometry asks every live view member whether it knows a partition
// strictly deeper than p overlapping it.  Replica buckets survive splits
// as bounded garbage at their old hosts, so a dead primary's rmeta may
// name partitions the geometry has since refined; promoting one would
// install an empty ancestor that shadows live deeper partitions.  Levels
// only grow, so one positive answer anywhere is proof of staleness; an
// unreachable member is skipped (the check is best-effort, like the
// election it guards).
func (s *Snode) staleGeometry(p hashspace.Partition, view []transport.NodeID) bool {
	s.mu.Lock()
	local := s.deeperOverlapLocked(p)
	s.mu.Unlock()
	if local {
		return true
	}
	for _, id := range view {
		if id == s.id {
			continue
		}
		v, err := s.rpc(id, func(op uint64) any {
			return overlapQueryReq{Op: op, Partition: p, ReplyTo: s.id}
		})
		if err != nil {
			continue
		}
		if v.(overlapQueryResp).Deeper {
			return true
		}
	}
	return false
}

// electAndPromote runs one partition's failover election as coordinator
// and dispatches the promotion order to the winner.
func (s *Snode) electAndPromote(p hashspace.Partition, dead transport.NodeID, cands []transport.NodeID, live map[transport.NodeID]bool) {
	s.stats.Elections.Add(1)
	type vote struct {
		id   transport.NodeID
		prov bool
		ver  uint64
	}
	var votes []vote
	for _, id := range cands {
		if !live[id] {
			continue
		}
		if id == s.id {
			s.mu.Lock()
			m := s.rmeta[p]
			_, has := s.rparts[p]
			prov := s.rprov[p]
			s.mu.Unlock()
			if has && m != nil && m.prim == dead {
				votes = append(votes, vote{id: id, prov: prov, ver: m.ver})
			}
			continue
		}
		v, err := s.rpc(id, func(op uint64) any {
			return promoteQueryReq{Op: op, Partition: p, Dead: dead, ReplyTo: s.id}
		})
		if err != nil {
			continue // unreachable elector: proceed with the quorum we have
		}
		resp := v.(promoteQueryResp)
		if resp.Has {
			votes = append(votes, vote{id: id, prov: resp.Prov, ver: resp.Ver})
		}
	}
	if len(votes) == 0 {
		s.log.Warn("failover: no promotable replica", "partition", p.String(), "dead", int(dead))
		return
	}
	// Authoritative beats provisional, then highest version, then lowest id.
	win := votes[0]
	for _, v := range votes[1:] {
		switch {
		case win.prov != v.prov:
			if win.prov {
				win = v
			}
		case v.ver != win.ver:
			if v.ver > win.ver {
				win = v
			}
		case v.id < win.id:
			win = v
		}
	}
	if win.id == s.id {
		if err := s.promotePartition(p, dead); err != nil {
			s.log.Warn("failover: local promotion failed", "partition", p.String(), "err", err)
		}
		return
	}
	v, err := s.rpc(win.id, func(op uint64) any {
		return promoteOrderReq{Op: op, Partition: p, Dead: dead, ReplyTo: s.id}
	})
	if err != nil {
		s.log.Warn("failover: promotion order failed", "partition", p.String(), "winner", int(win.id), "err", err)
		return
	}
	if resp := v.(promoteOrderResp); resp.Err != "" {
		s.log.Warn("failover: promotion refused", "partition", p.String(), "winner", int(win.id), "err", resp.Err)
	}
}

// handlePromoteQuery answers an election query from the replica store.
// Fast (no nested RPCs) — runs inline in the actor loop.
func (s *Snode) handlePromoteQuery(m promoteQueryReq) {
	s.mu.Lock()
	meta := s.rmeta[m.Partition]
	_, has := s.rparts[m.Partition]
	prov := s.rprov[m.Partition]
	s.mu.Unlock()
	resp := promoteQueryResp{Op: m.Op}
	if has && meta != nil && meta.prim == m.Dead {
		resp.Has, resp.Prov, resp.Ver = true, prov, meta.ver
	}
	s.send(m.ReplyTo, resp)
}

// handlePromoteOrder executes a promotion order from the coordinator.
// Runs in its own goroutine: promotion journals durably and re-homes
// replicas over the fabric.
func (s *Snode) handlePromoteOrder(m promoteOrderReq) {
	resp := promoteOrderResp{Op: m.Op}
	if err := s.promotePartition(m.Partition, m.Dead); err != nil {
		resp.Err = err.Error()
	}
	s.send(m.ReplyTo, resp)
}

// promotePartition installs this snode's replica bucket for p as the
// partition's new primary bucket.  Idempotent: promoting a partition this
// snode already owns (any deeper split of it included) is a no-op.
func (s *Snode) promotePartition(p hashspace.Partition, dead transport.NodeID) error {
	s.mu.Lock()
	if _, _, owned := s.ownedForLocked(p.Start()); owned {
		s.mu.Unlock()
		return nil // duplicate order, or custody already moved here
	}
	data, has := s.rparts[p]
	meta := s.rmeta[p]
	if !has || meta == nil {
		s.mu.Unlock()
		return fmt.Errorf("cluster: snode %d holds no promotable replica of %s", s.id, p.String())
	}
	if meta.prim != dead {
		s.mu.Unlock()
		return fmt.Errorf("cluster: snode %d replica of %s names primary %d, not %d", s.id, p.String(), meta.prim, dead)
	}
	// Host the partition on a joined vnode of its group, allocating a
	// fresh one (journaled, so a restart replays the allocation) when
	// none lives here.
	var vs *vnodeState
	for _, v := range s.vnodes {
		if v.joined && v.group == meta.group && v.level == p.Level {
			vs = v
			break
		}
	}
	if vs == nil {
		name := VnodeName{Snode: s.id, Local: s.nextLocal}
		s.nextLocal++
		vs = &vnodeState{
			name: name, group: meta.group, level: p.Level, joined: true,
			parts: make(map[hashspace.Partition]*bucket),
		}
		s.vnodes[name] = vs
		s.durAppendWith(func(b []byte) []byte {
			return encodeWalVnode(b, walVnodeRec{Name: name, Group: meta.group, Level: p.Level, Joined: true})
		})
	}
	ver := meta.ver
	// Journal the install first — exactly like a migration commit — and
	// only then flip the in-memory state, so a crash mid-promotion
	// replays to the same outcome.
	seq := s.durAppendWith(func(b []byte) []byte {
		return encodeWalMigInstall(b, walMigInstallRec{
			To: vs.name, Group: meta.group, Level: p.Level, Partition: p, Data: data,
		})
	})
	name := vs.name
	s.mu.Unlock()
	if s.dur != nil && !s.durFastAck() && !s.durWaitSeq(seq) {
		return fmt.Errorf("cluster: snode %d stopping: promotion not durable", s.id)
	}
	s.mu.Lock()
	vs2, still := s.vnodes[name]
	if !still {
		s.mu.Unlock()
		return fmt.Errorf("cluster: snode %d: vnode %v vanished during promotion", s.id, name)
	}
	if _, _, owned := s.ownedForLocked(p.Start()); owned {
		s.mu.Unlock()
		return nil
	}
	s.installBucketLocked(vs2, meta.group, p.Level, p, data)
	if bk, ok := vs2.parts[p]; ok {
		bk.mu.Lock()
		bk.ver = ver // keep the version climbing across the handover
		bk.mu.Unlock()
	}
	route := routeEntry{
		Partition: p,
		Ref:       ownerRef{Vnode: name, Host: s.id},
		Replicas:  s.replicaHostsLocked(p),
	}
	view := append([]transport.NodeID(nil), s.view...)
	s.mu.Unlock()
	s.stats.Promotions.Add(1)
	s.log.Info("failover: promoted to primary", "partition", p.String(), "dead", int(dead), "ver", ver)
	// Re-announce custody exactly like a restart does: survivors adopt
	// pointers to the new primary, and the cluster handle repairs its
	// client routes.
	ann := snodeRecoveredMsg{Recovered: s.id, Routes: []routeEntry{route}}
	for _, id := range view {
		if id != s.id {
			s.send(id, ann)
		}
	}
	s.send(clientID, ann)
	s.rehomeReplicas(p)
	return nil
}
