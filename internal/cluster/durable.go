package cluster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/hashspace"
	"dbdht/internal/wal"
)

// Crash-durable snode storage.  With a data directory configured, every
// mutation of an snode's local state — live-bucket writes, replica-store
// writes, migration installs and drops, splits, vnode and LPDR lifecycle
// — is journaled to a per-snode write-ahead log (internal/wal) before it
// is acknowledged, and a background pass periodically snapshots the
// materialized buckets and truncates the log behind them.  A restarted
// snode (Cluster.RestartSnode, or a dhtd reboot over the same -data-dir)
// replays snapshot + log tail into its buckets before it starts serving,
// so an R=1 single-snode restart loses zero acknowledged writes — the
// durability the paper's failure-free model never needed, and the
// foundation under the replication layer's crash story (a whole-cluster
// restart no longer loses everything).
//
// Layout under DurabilityConfig.Dir:
//
//	snode-<id>/
//	  wal/<firstseq>.seg   CRC-framed record segments (internal/wal)
//	  snap/MANIFEST        replay cut of the latest complete snapshot
//	  snap/<cut>/meta.snap           snode metadata (vnodes, tombs, LPDRs, …)
//	  snap/<cut>/own-<lvl>-<pfx>.snap  one owned bucket's contents
//	  snap/<cut>/repl-<lvl>-<pfx>.snap one replica bucket's contents
//
// Consistency model: records append under the same fine-grained lock
// that applies the mutation (the bucket's mutex for data writes, the
// snode mutex for the rest), and the snapshot pass captures its cut
// BEFORE serializing any state, so every record outside the snapshot has
// a sequence at or above the cut.  Records are idempotent, which lets a
// bucket serialized late in the pass — already containing post-cut
// writes — absorb their replay harmlessly.
//
// Migration handovers are journaled in two phases (migrate.go): the
// sender makes a walTagMigIntent record durable before the receiver may
// commit, and the bucket-drop (or abort-resolution) record closes it.  A
// sender crashing anywhere in between — including the once-documented
// window after the receiver committed but before the drop became durable
// — replays the partition FROZEN and in-doubt; the resolveIntents
// goroutine probes the receiver and either finalizes the drop (receiver
// owns the region) or reverts to live (receiver provably never
// committed), so a crash can no longer resurrect a stale copy of a
// partition that lives elsewhere.

// DurabilityConfig parameterizes the per-snode durability layer.  The
// zero value disables it (no I/O on any path).
type DurabilityConfig struct {
	// Dir is the root data directory; each snode uses Dir/snode-<id>.
	// Empty disables durability.
	Dir string
	// Fsync selects the durability class of acknowledged writes
	// (default wal.FsyncOff; wal.FsyncBatch group-commits an fsync per
	// flush round before acks).
	Fsync wal.FsyncMode
	// SnapshotInterval paces the background snapshot+truncate pass
	// (default 30s; negative disables background snapshots — the log
	// then grows until SnapshotNow).
	SnapshotInterval time.Duration
	// SegmentBytes caps one WAL segment file (default 16 MiB).
	SegmentBytes int64
	// Faults optionally injects disk faults (slow or failing fsyncs)
	// into every snode's WAL — the nemesis hook for fault-tolerance
	// scenarios.  Nil means healthy disks.
	Faults *wal.Faults
}

// durable is an snode's durability state (nil when off).
type durable struct {
	log      *wal.Log
	snapRoot string
	interval time.Duration

	// snapMu serializes snapshot passes (the background loop and
	// SnapshotNow can otherwise interleave two passes whose retire steps
	// delete each other's directories); lastCut is the cut of the latest
	// PUBLISHED snapshot — a pass whose cut has not advanced is a no-op,
	// which also guarantees a fresh pass never writes into (or aborts
	// away) the directory the manifest currently references.
	snapMu  sync.Mutex
	lastCut uint64 // guarded by snapMu
}

// durAppend journals one encoded record; 0 means durability is off or
// the log already closed (the caller's ack path must fail, not lie).
func (s *Snode) durAppend(payload []byte) uint64 {
	if s.dur == nil {
		return 0
	}
	return s.dur.log.Append(payload)
}

// durAppendWith is durAppend for the hot paths: the record is encoded
// directly into the WAL buffer, skipping the intermediate allocation.
func (s *Snode) durAppendWith(enc func([]byte) []byte) uint64 {
	if s.dur == nil {
		return 0
	}
	return s.dur.log.AppendWith(enc)
}

// durWaitSeq blocks until the record is durable per the configured
// fsync mode; false means the log closed first (or never accepted the
// record) and the mutation must not be acknowledged as durable.
func (s *Snode) durWaitSeq(seq uint64) bool {
	if seq == 0 {
		return false
	}
	return s.dur.log.WaitDurable(seq)
}

// durFastAck reports whether an ack may be sent inline without a
// durability wait (durability off entirely, or FsyncOff mode where
// WaitDurable never blocks).
func (s *Snode) durFastAck() bool {
	return s.dur == nil || s.dur.log.Mode() == wal.FsyncOff
}

// --- open & recover ---

// snodeDataDir returns one snode's directory under the configured root.
func snodeDataDir(root string, id transport.NodeID) string {
	return filepath.Join(root, fmt.Sprintf("snode-%d", id))
}

// openDurability opens the snode's WAL and replays snapshot + tail into
// its (not yet serving) state.  Called by newSnode before the actor
// starts, so no locks are needed.
//
//dbdht:exclusive
func (s *Snode) openDurability() error {
	dc := s.cfg.Durability
	root := snodeDataDir(dc.Dir, s.id)
	snapRoot := filepath.Join(root, "snap")
	if err := os.MkdirAll(snapRoot, 0o755); err != nil {
		return fmt.Errorf("cluster: durability: %w", err)
	}
	cut := uint64(0)
	manifest := filepath.Join(snapRoot, "MANIFEST")
	if payload, err := wal.ReadSnapshot(manifest); err == nil {
		c, derr := decodeManifest(payload)
		if derr != nil {
			return fmt.Errorf("cluster: durability: %w", derr)
		}
		if err := s.loadSnapshot(filepath.Join(snapRoot, strconv.FormatUint(c, 10))); err != nil {
			return err
		}
		cut = c
	} else if !errors.Is(err, os.ErrNotExist) {
		// The manifest exists but does not verify: the log may have been
		// truncated against it, so replay-from-zero could silently lose
		// data.  Refuse to start instead.
		return fmt.Errorf("cluster: durability: %w", err)
	}
	log, err := wal.Open(filepath.Join(root, "wal"), wal.Options{
		Fsync: dc.Fsync, SegmentBytes: dc.SegmentBytes, Logger: s.log,
		Faults: dc.Faults,
	})
	if err != nil {
		return err
	}
	if err := log.Replay(cut, s.applyWalRecord); err != nil {
		_ = log.Close()
		return err
	}
	s.dur = &durable{log: log, snapRoot: snapRoot, interval: dc.SnapshotInterval, lastCut: cut}
	// Freeze every in-doubt partition before the snode starts serving:
	// whether the crashed handover's receiver committed is unknown, so
	// reads may serve (both copies agree — the bucket froze before the
	// final delta shipped) but writes must wait for resolveIntents'
	// verdict.  An intent for a partition no longer owned (its drop
	// record followed in the log) is stale bookkeeping and is pruned.
	for p := range s.inDoubt {
		if ref, ok := s.owned[p]; ok {
			ref.bk.state = bucketFrozen // pre-start: snode owned exclusively
		} else {
			delete(s.inDoubt, p)
		}
	}
	// Reinstall leadership for the groups this snode led: the recovered
	// LPDR states carry the leader, and installLeaderLocked rebuilds the
	// balance table from the members (no lock needed pre-start).
	for _, st := range s.replicas {
		if st.Leader == s.id {
			if _, dup := s.led[st.Group]; !dup {
				s.installLeaderLocked(*st)
			}
		}
	}
	return nil
}

// recovered reports whether recovery produced any joined vnode — the
// signal for the cluster handle to adopt this snode's DHT instead of
// bootstrapping a fresh one.
func (s *Snode) recoveredVnodes() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, vs := range s.vnodes {
		if vs.joined {
			return true
		}
	}
	return false
}

// ownedRoutes lists this snode's owned partitions as route entries — the
// recovery announcement RestartSnode broadcasts so survivors' custody
// chains (pruned when the snode crashed) reach the recovered data again.
func (s *Snode) ownedRoutes() []routeEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]routeEntry, 0, len(s.owned))
	for p, ref := range s.owned {
		out = append(out, routeEntry{Partition: p, Ref: ownerRef{Vnode: ref.vs.name, Host: s.id}})
	}
	return out
}

// loadSnapshot rebuilds the snode's state from one complete snapshot
// directory.  Runs pre-start: no locks.
//
//dbdht:exclusive
func (s *Snode) loadSnapshot(dir string) error {
	payload, err := wal.ReadSnapshot(filepath.Join(dir, "meta.snap"))
	if err != nil {
		return err
	}
	meta, err := decodeSnapMeta(payload)
	if err != nil {
		return err
	}
	s.nextLocal = meta.NextLocal
	s.hasBoot = meta.HasBoot
	s.boot = meta.Boot
	for _, v := range meta.Vnodes {
		vs := &vnodeState{
			name: v.Name, group: v.Group, level: v.Level, joined: v.Joined,
			parts: make(map[hashspace.Partition]*bucket, len(v.Parts)),
		}
		for _, p := range v.Parts {
			bk := newBucket(nil)
			vs.parts[p] = bk
			s.setOwnedLocked(p, vs, bk)
		}
		s.vnodes[v.Name] = vs
	}
	for _, t := range meta.Tombs {
		s.setTombLocked(t.Partition, t.Ref)
	}
	for i := range meta.Lpdrs {
		st := meta.Lpdrs[i]
		s.replicas[st.Group] = &st
	}
	for _, p := range meta.Rprov {
		s.rprov[p] = true
	}
	for _, in := range meta.Intents {
		s.inDoubt[in.Partition] = &migIntent{vnode: in.Vnode, newOwner: in.NewOwner}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("cluster: durability: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		// Only complete bucket files: a crash mid-WriteSnapshot can leave
		// *.snap.tmp leftovers in the directory, which must not be read.
		if !strings.HasSuffix(name, ".snap") {
			continue
		}
		isOwn := strings.HasPrefix(name, "own-")
		isRepl := strings.HasPrefix(name, "repl-")
		if !isOwn && !isRepl {
			continue
		}
		payload, err := wal.ReadSnapshot(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		b, err := decodeSnapBucket(payload)
		if err != nil {
			return err
		}
		if isOwn {
			if ref, ok := s.owned[b.Partition]; ok {
				ref.bk.m = b.Data
			}
			continue
		}
		s.setReplicaBucketLocked(b.Partition, b.Data)
	}
	return nil
}

// --- replay ---

// applyWalRecord decodes and applies one journal record during recovery.
// Runs pre-start: no locks, no fabric.  Records are idempotent, so a
// record the snapshot already reflects applies harmlessly.
//
//dbdht:exclusive
func (s *Snode) applyWalRecord(seq uint64, payload []byte) error {
	r := transport.NewWireReader(payload)
	tag := r.Uvarint()
	switch uint16(tag) {
	case walTagWrite:
		rec := decodeWalWrite(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("cluster: wal record %d: %w", seq, err)
		}
		// Apply only while the partition is owned at exactly this level:
		// ownership transitions are journaled too, so a write that replays
		// against a later state (bucket dropped, split deeper) is already
		// reflected there.
		if ref, ok := s.owned[rec.Partition]; ok {
			applyItems(ref.bk.m, rec.Kind, rec.Items)
		}
		return nil
	case walTagReplWrite:
		rec := decodeWalReplWrite(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("cluster: wal record %d: %w", seq, err)
		}
		s.applyReplWriteLocked(rec.Kind, rec.Sets, true)
		return nil
	case walTagVnode:
		rec := decodeWalVnode(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("cluster: wal record %d: %w", seq, err)
		}
		if rec.Name.Snode == s.id && rec.Name.Local >= s.nextLocal {
			s.nextLocal = rec.Name.Local + 1
		}
		if _, dup := s.vnodes[rec.Name]; dup {
			return nil
		}
		vs := &vnodeState{
			name: rec.Name, group: rec.Group, level: rec.Level, joined: rec.Joined,
			parts: make(map[hashspace.Partition]*bucket, len(rec.Parts)),
		}
		for _, p := range rec.Parts {
			bk := newBucket(nil)
			vs.parts[p] = bk
			s.setOwnedLocked(p, vs, bk)
		}
		s.vnodes[rec.Name] = vs
		return nil
	case walTagVnodeGone:
		name := readVnodeName(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("cluster: wal record %d: %w", seq, err)
		}
		if vs, ok := s.vnodes[name]; ok {
			for p, bk := range vs.parts {
				s.delOwnedLocked(p, bk)
			}
			delete(s.vnodes, name)
		}
		return nil
	case walTagSplitAll:
		rec := decodeWalSplitAll(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("cluster: wal record %d: %w", seq, err)
		}
		s.splitGroupLocked(rec.Group, rec.NewLevel)
		return nil
	case walTagMigInstall:
		rec := decodeWalMigInstall(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("cluster: wal record %d: %w", seq, err)
		}
		if vs, ok := s.vnodes[rec.To]; ok {
			s.installBucketLocked(vs, rec.Group, rec.Level, rec.Partition, rec.Data)
		}
		return nil
	case walTagBucketDrop:
		rec := decodeWalBucketDrop(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("cluster: wal record %d: %w", seq, err)
		}
		if vs, ok := s.vnodes[rec.Vnode]; ok {
			if bk, ok := vs.parts[rec.Partition]; ok {
				bk.state = bucketDead
				bk.m = nil
				delete(vs.parts, rec.Partition)
				s.delOwnedLocked(rec.Partition, bk)
			}
		}
		s.setTombLocked(rec.Partition, rec.NewOwner)
		delete(s.inDoubt, rec.Partition) // the drop resolves any open intent
		return nil
	case walTagMigIntent:
		rec := decodeWalBucketDrop(r) // same payload layout as tag 38
		if err := r.Err(); err != nil {
			return fmt.Errorf("cluster: wal record %d: %w", seq, err)
		}
		s.inDoubt[rec.Partition] = &migIntent{vnode: rec.Vnode, newOwner: rec.NewOwner}
		return nil
	case walTagMigIntentResolved:
		p := readPartition(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("cluster: wal record %d: %w", seq, err)
		}
		delete(s.inDoubt, p)
		return nil
	case walTagReplSync:
		rec := decodeWalReplSync(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("cluster: wal record %d: %w", seq, err)
		}
		// Mirror handleReplSync: replace only this exact bucket, sparing
		// strictly deeper ones (they can only exist if the sync's sender
		// was stale geometry).
		s.delReplicaBucketLocked(rec.Partition)
		s.setReplicaBucketLocked(rec.Partition, rec.Data)
		delete(s.rprov, rec.Partition)
		return nil
	case walTagReplDrop:
		ps := readPartitions(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("cluster: wal record %d: %w", seq, err)
		}
		for _, p := range ps {
			s.delReplicaBucketLocked(p)
		}
		return nil
	case walTagLpdr:
		rec := decodeWalLpdr(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("cluster: wal record %d: %w", seq, err)
		}
		st := rec.State
		s.replicas[st.Group] = &st
		for _, d := range rec.Dissolved {
			delete(s.replicas, d)
		}
		for _, mem := range st.Members {
			if vs, ok := s.vnodes[mem.Vnode]; ok && mem.Host == s.id {
				vs.group = st.Group
				vs.level = st.Level
				vs.joined = true
			}
		}
		return nil
	case walTagBoot:
		s.boot = readOwnerRef(r)
		if err := r.Err(); err != nil {
			return fmt.Errorf("cluster: wal record %d: %w", seq, err)
		}
		s.hasBoot = true
		return nil
	}
	return fmt.Errorf("cluster: wal record %d: unknown tag %d — downgraded binary over a newer log?", seq, tag)
}

// applyItems folds batch items into a bucket map (replay side of the
// batch apply loop).
func applyItems(m map[string][]byte, kind dataOp, items []batchItem) {
	for _, it := range items {
		switch kind {
		case opPut:
			m[it.Key] = it.Value
		case opDel:
			delete(m, it.Key)
		}
	}
}

// --- snapshots ---

// snapshotLoop paces the background snapshot+truncate pass.
func (s *Snode) snapshotLoop() {
	t := time.NewTicker(s.dur.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			_ = s.snapshotPass()
		}
	}
}

// snapshotPass writes one complete snapshot (metadata + every bucket)
// and truncates the log behind it.  The cut is captured first, so every
// mutation not yet serialized has a record at or above it; a bucket that
// DIES mid-pass (migrated or split away) invalidates the pass — its data
// would otherwise be lost to replay — and the pass retries with a fresh
// cut (splits and handovers are rare; the retry converges).
func (s *Snode) snapshotPass() error {
	if s.dur == nil {
		return nil
	}
	s.dur.snapMu.Lock()
	defer s.dur.snapMu.Unlock()
	const maxAttempts = 3
	for attempt := 0; attempt < maxAttempts; attempt++ {
		cut, ok, err := s.trySnapshot(s.dur.lastCut)
		if ok {
			s.dur.lastCut = cut
		}
		if ok || err != nil {
			return err
		}
	}
	// Every attempt found a captured bucket dead mid-pass (heavy migration
	// churn).  Surface it: the manifest cut did not advance, so callers
	// relying on a fresh snapshot (POST /v1/snapshot before a backup) must
	// not be told it exists.
	return fmt.Errorf("cluster: snode %d: snapshot aborted %d times by concurrent handovers; retry when migration settles", s.id, maxAttempts)
}

// trySnapshot runs one snapshot attempt against the last published cut;
// ok=false (with nil error) means a bucket died mid-pass and the caller
// should retry.  On ok it returns the cut now published, which the caller
// records as lastCut — the caller (snapshotPass) owns that field's guard,
// so the guarded access stays where snapMu is visibly held.
func (s *Snode) trySnapshot(lastCut uint64) (newCut uint64, ok bool, err error) {
	cut := s.dur.log.NextSeq()
	if cut <= lastCut {
		// No record landed since the published snapshot: it is already
		// current, and re-running would write into (and, on abort, delete)
		// the very directory the manifest references.
		return lastCut, true, nil
	}
	dir := filepath.Join(s.dur.snapRoot, strconv.FormatUint(cut, 10))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return lastCut, false, fmt.Errorf("cluster: snapshot: %w", err)
	}
	abort := func() {
		_ = os.RemoveAll(dir)
	}

	// Capture the metadata and the bucket set under one s.mu pass.
	type ownedSnap struct {
		p  hashspace.Partition
		bk *bucket
	}
	var (
		meta   snapMeta
		owned  []ownedSnap
		rparts []hashspace.Partition
	)
	s.mu.Lock()
	meta.NextLocal = s.nextLocal
	meta.HasBoot = s.hasBoot
	meta.Boot = s.boot
	for name, vs := range s.vnodes {
		rec := walVnodeRec{Name: name, Group: vs.group, Level: vs.level, Joined: vs.joined}
		for p, bk := range vs.parts {
			rec.Parts = append(rec.Parts, p)
			owned = append(owned, ownedSnap{p: p, bk: bk})
		}
		meta.Vnodes = append(meta.Vnodes, rec)
	}
	for p, ref := range s.tombs {
		meta.Tombs = append(meta.Tombs, routeEntry{Partition: p, Ref: ref})
	}
	for _, st := range s.replicas {
		meta.Lpdrs = append(meta.Lpdrs, *st)
	}
	for p := range s.rprov {
		meta.Rprov = append(meta.Rprov, p)
	}
	for p, in := range s.inDoubt {
		// An open intent must survive the truncation of its (pre-cut)
		// journal record, or a crash before its resolution would replay
		// without it — reopening the stale-copy window the intent exists
		// to close.
		meta.Intents = append(meta.Intents, walBucketDropRec{Vnode: in.vnode, Partition: p, NewOwner: in.newOwner})
	}
	for p := range s.rparts {
		rparts = append(rparts, p)
	}
	s.mu.Unlock()

	stats := s.dur.log.Stats()

	// Serialize each owned bucket under its own lock — post-cut writes it
	// already absorbed replay idempotently on top.
	for _, o := range owned {
		o.bk.mu.RLock()
		if o.bk.state == bucketDead {
			o.bk.mu.RUnlock()
			abort()
			return lastCut, false, nil // moved or split away; retry with a fresh cut
		}
		payload := encodeSnapBucket(nil, o.p, o.bk.m)
		o.bk.mu.RUnlock()
		name := fmt.Sprintf("own-%d-%d.snap", o.p.Level, o.p.Prefix)
		if err := stats.WriteSnapshot(filepath.Join(dir, name), payload); err != nil {
			abort()
			return lastCut, false, err
		}
	}
	// Replica buckets are guarded by s.mu; serialize one at a time so the
	// stall is per-bucket, not per-store.  A bucket dropped since the
	// capture is simply skipped (its drop record is post-cut and replays).
	for _, p := range rparts {
		s.mu.Lock()
		b, ok := s.rparts[p]
		var payload []byte
		if ok {
			payload = encodeSnapBucket(nil, p, b)
		}
		s.mu.Unlock()
		if !ok {
			continue
		}
		name := fmt.Sprintf("repl-%d-%d.snap", p.Level, p.Prefix)
		if err := stats.WriteSnapshot(filepath.Join(dir, name), payload); err != nil {
			abort()
			return lastCut, false, err
		}
	}
	if err := stats.WriteSnapshot(filepath.Join(dir, "meta.snap"), encodeSnapMeta(nil, meta)); err != nil {
		abort()
		return lastCut, false, err
	}
	// Publish: fsync the log through the cut (records below it must not
	// be lost once the segments holding them are truncated), then flip
	// the manifest and drop what the snapshot covers.
	if err := s.dur.log.Sync(); err != nil {
		abort()
		return lastCut, false, err
	}
	if err := stats.WriteSnapshot(filepath.Join(s.dur.snapRoot, "MANIFEST"), encodeManifest(cut)); err != nil {
		abort()
		return lastCut, false, err
	}
	if cut > 0 {
		if err := s.dur.log.TruncateThrough(cut - 1); err != nil {
			return cut, true, err
		}
	}
	// Retire superseded snapshot directories.
	ents, err := os.ReadDir(s.dur.snapRoot)
	if err != nil {
		return cut, true, nil
	}
	for _, e := range ents {
		if !e.IsDir() || e.Name() == strconv.FormatUint(cut, 10) {
			continue
		}
		if _, perr := strconv.ParseUint(e.Name(), 10, 64); perr == nil {
			_ = os.RemoveAll(filepath.Join(s.dur.snapRoot, e.Name()))
		}
	}
	return cut, true, nil
}

// SnapshotNow forces one snapshot+truncate pass on every live snode —
// operator hook (tests, the HTTP admin plane, graceful shutdowns).
func (c *Cluster) SnapshotNow() error {
	c.mu.Lock()
	snodes := make([]*Snode, 0, len(c.snodes))
	for _, s := range c.snodes {
		snodes = append(snodes, s)
	}
	c.mu.Unlock()
	for _, s := range snodes {
		if err := s.snapshotPass(); err != nil {
			return err
		}
	}
	return nil
}

// WALStats aggregates the live snodes' durability counters (plus those
// of snodes that already left), for the dbdht_wal_* metrics.  All zeros
// when durability is off.
func (c *Cluster) WALStats() wal.StatsSnapshot {
	c.mu.Lock()
	snodes := make([]*Snode, 0, len(c.snodes))
	for _, s := range c.snodes {
		snodes = append(snodes, s)
	}
	c.mu.Unlock()
	c.retiredMu.Lock()
	tot := c.retiredWal
	c.retiredMu.Unlock()
	for _, s := range snodes {
		if s.dur != nil {
			tot.Fold(s.dur.log.Stats().Snapshot())
		}
	}
	return tot
}

// DurabilityEnabled reports whether the cluster journals to disk, and
// under which fsync mode.
func (c *Cluster) DurabilityEnabled() (bool, wal.FsyncMode) {
	return c.cfg.Durability.Dir != "", c.cfg.Durability.Fsync
}
