package cluster

import (
	"encoding/gob"
	"fmt"
	"time"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/core"
	"dbdht/internal/hashspace"
)

// Chunked live partition migration.  The original transfer path froze the
// whole bucket for the entire handover — snapshot, ship, ack — so a large
// partition under sustained writes could hold writers across the full
// transfer and, with an autonomous balancer migrating frequently, drive
// them into FreezeTimeout errors.  This file replaces it with an
// incremental protocol that keeps the bucket LIVE while its contents
// stream out in bounded chunks and freezes only for the final delta:
//
//  1. migBeginReq opens a staging bucket at the receiving snode.
//  2. The sender snapshots the key list, turns on dirty-key tracking in
//     the live bucket (writes keep landing locally and are recorded), and
//     streams the base contents as migChunkReq messages of bounded size.
//  3. Keys written during the stream are re-sent in delta rounds, still
//     live, until the dirty set is small or the round budget is spent.
//  4. Only then does the bucket freeze: migCommitReq carries the last
//     (small) delta, the receiver folds it into the staging bucket and
//     installs it as the live owned partition, and the sender retires its
//     copy behind a custody tombstone.  The freeze window is one small
//     message round-trip instead of a whole-bucket ship.
//
// Any failure aborts: the sender flips its bucket back to live (requeued
// writes proceed) and the receiver discards the staging bucket, so the
// partition stays owned by exactly one host.  The one ambiguous case is
// a commit whose ACK is lost after the receiver installed: the sender
// then probes the receiver with a lookup and completes the handover if
// the receiver answers as owner, aborting only when it provably does
// not own the region — reverting blindly would leave both sides
// serving.
//
// The handover is journaled in two phases (closing the crash window the
// durable layer used to document as a limitation): right before the
// commit RPC — while the bucket is frozen — the sender journals a
// *migration intent* (walTagMigIntent) and waits for it to be durable.
// On success the existing bucket-drop record doubles as the resolution;
// an abort journals walTagMigIntentResolved.  A sender that crashes
// anywhere between the intent and its resolution therefore replays into
// an *in-doubt* state: the bucket recovers FROZEN (reads serve, writes
// wait) and a resolver goroutine probes the receiver with a lookup —
// exactly the lost-ack probe — finalizing the drop if the receiver (or
// any third party, after a later handover) owns the region, reverting to
// live if the probe resolves back to this snode, and staying frozen
// while the receiver is unreachable (it may have durably committed, so a
// blind revert could resurrect a stale copy — the precise bug this
// protocol exists to prevent).
//
// All five messages ride the hand-rolled binary frame codec (wire.go):
// with the balancer migrating continuously they are data-plane volume,
// not control-plane volume.

// migSender is the outbound side's tracking state, hung off the live
// bucket.  The pointer itself transitions under BOTH s.mu and the
// bucket's mutex (like bucket.state), so either lock alone makes a read
// race-free; the dirty set inside is guarded by the bucket's mutex alone,
// exactly like the bucket's data map.
type migSender struct {
	// dirty records keys written (put or deleted) since their last chunk
	// was streamed; each delta round swaps it for a fresh map.
	dirty map[string]struct{}
}

// migIntent is one journaled, not-yet-resolved migration handover: the
// sending vnode and the destination the frozen bucket was committed
// towards.  Live entries exist only between the intent record and its
// resolution; recovery rebuilds the map from the journal and the
// resolver goroutine (resolveIntents) settles each entry by probing the
// receiver.
type migIntent struct {
	vnode    VnodeName
	newOwner ownerRef
}

// migInbound is one staging bucket at the receiving snode: contents
// accumulate here, invisible to the data plane, until the commit installs
// them as the live owned partition.
type migInbound struct {
	to    VnodeName
	group core.GroupID
	level uint8
	data  map[string][]byte
}

// migItem is one key of a migration chunk.  Del marks a deletion observed
// during the live stream (the staging bucket must forget the key).
type migItem struct {
	Key   string
	Value []byte
	Del   bool
}

// migBeginReq opens a staging bucket for a partition about to stream in.
type migBeginReq struct {
	Op        uint64
	Group     core.GroupID
	To        VnodeName
	Partition hashspace.Partition
	Level     uint8
	ReplyTo   transport.NodeID
}

type migBeginResp struct {
	Op  uint64
	Err string
}

// migChunkReq carries one bounded slice of the partition's contents (base
// snapshot or delta round) into the staging bucket.
type migChunkReq struct {
	Op        uint64
	To        VnodeName
	Partition hashspace.Partition
	Items     []migItem
	ReplyTo   transport.NodeID
	// private is the frame decoder's exclusively-owned-slices mark, as on
	// batchReq: decoded values may be stored without a defensive copy.
	private bool
}

type migChunkResp struct {
	Op  uint64
	Err string
}

// migCommitReq is the final, frozen-window delta: the receiver folds it in
// and installs the staging bucket as the live owned partition.
type migCommitReq struct {
	Op        uint64
	To        VnodeName
	Partition hashspace.Partition
	Items     []migItem
	ReplyTo   transport.NodeID
	private   bool
}

type migCommitResp struct {
	Op  uint64
	Err string
}

// migAbortMsg discards a staging bucket after a sender-side failure
// (fire-and-forget; a missed abort is bounded garbage, not corruption —
// a later begin for the same partition replaces the staging bucket).
type migAbortMsg struct {
	To        VnodeName
	Partition hashspace.Partition
}

func init() {
	for _, m := range []any{
		migBeginReq{}, migBeginResp{},
		migChunkReq{}, migChunkResp{},
		migCommitReq{}, migCommitResp{},
		migAbortMsg{},
	} {
		gob.Register(m)
	}
}

// --- sender side ---

// collectDeltaLocked turns a dirty-key set into chunk items reflecting the
// bucket's current contents (absent key ⇒ deletion).  Caller holds the
// bucket's mutex (read or write).
func collectDeltaLocked(bk *bucket, dirty map[string]struct{}) []migItem {
	if len(dirty) == 0 {
		return nil
	}
	items := make([]migItem, 0, len(dirty))
	for k := range dirty {
		if v, ok := bk.m[k]; ok {
			items = append(items, migItem{Key: k, Value: v})
		} else {
			items = append(items, migItem{Key: k, Del: true})
		}
	}
	return items
}

// sendChunk ships one chunk and waits for the ack.
func (s *Snode) sendChunk(toHost transport.NodeID, to VnodeName, p hashspace.Partition, items []migItem, tr transport.TraceContext) error {
	csp := beginSpan(tr, "mig.chunk")
	t0 := time.Now()
	v, err := s.rpcTr(toHost, csp.ctx, func(op uint64) any {
		return migChunkReq{Op: op, To: to, Partition: p, Items: items, ReplyTo: s.id}
	})
	s.lat.migChunk.ObserveSince(t0)
	if err == nil {
		if resp := v.(migChunkResp); resp.Err != "" {
			err = fmt.Errorf("cluster: migration chunk at %d: %s", toHost, resp.Err)
		}
	}
	if csp.active() {
		outcome := ""
		if err != nil {
			outcome = err.Error()
		}
		s.tracer.finish(csp, s.id, outcome)
	}
	if err != nil {
		return err
	}
	s.stats.ChunksSent.Add(1)
	return nil
}

// migratePartition streams one owned, live partition to its new owner and
// returns the number of key entries shipped.  On error the bucket is live
// again and still owned here; on success it is dead behind a custody
// tombstone and the receiver owns the partition.
func (s *Snode) migratePartition(g core.GroupID, to VnodeName, toHost transport.NodeID, p hashspace.Partition, level uint8, vs *vnodeState, bk *bucket) (int, error) {
	chunk := s.cfg.MigrationChunkKeys

	// Migrations originate at this snode, not at a client, so they draw
	// their own head-sampling decision; the whole handover becomes one
	// trace ("mig.partition" root, chunk and install children).
	root := beginSpan(s.sampler.next(), "mig.partition")

	// Open the staging bucket before touching local state, so a dead or
	// refusing receiver costs nothing.
	v, err := s.rpcTr(toHost, root.ctx, func(op uint64) any {
		return migBeginReq{Op: op, Group: g, To: to, Partition: p, Level: level, ReplyTo: s.id}
	})
	if err != nil {
		s.tracer.finish(root, s.id, err.Error())
		return 0, err
	}
	if resp := v.(migBeginResp); resp.Err != "" {
		err := fmt.Errorf("cluster: migration begin at %d: %s", toHost, resp.Err)
		s.tracer.finish(root, s.id, err.Error())
		return 0, err
	}

	// Turn on dirty tracking and snapshot the key list in one critical
	// section: every write from here on either is in the key snapshot or
	// lands in the dirty set (or both — re-sent values are idempotent).
	s.mu.Lock()
	bk.mu.Lock()
	if bk.state != bucketLive || bk.mig != nil {
		bk.mu.Unlock()
		s.mu.Unlock()
		s.send(toHost, migAbortMsg{To: to, Partition: p})
		err := fmt.Errorf("cluster: partition %v not live for migration", p)
		s.tracer.finish(root, s.id, err.Error())
		return 0, err
	}
	bk.mig = &migSender{dirty: make(map[string]struct{})}
	keys := make([]string, 0, len(bk.m))
	for k := range bk.m {
		keys = append(keys, k)
	}
	bk.mu.Unlock()
	s.mu.Unlock()

	moved := 0
	abort := func(err error) (int, error) {
		s.mu.Lock()
		bk.mu.Lock()
		bk.mig = nil
		if bk.state == bucketFrozen {
			bk.state = bucketLive
		}
		bk.mu.Unlock()
		s.mu.Unlock()
		s.send(toHost, migAbortMsg{To: to, Partition: p})
		s.stats.MigAborts.Add(1)
		s.tracer.finish(root, s.id, err.Error())
		s.log.Warn("migration aborted", "partition", p, "to", int(toHost), "err", err)
		return moved, err
	}

	// Base stream: bounded chunks read under the bucket's read lock, so
	// concurrent writes proceed between chunks.  A key deleted since the
	// snapshot is skipped here — the deletion is in the dirty set.
	for start := 0; start < len(keys); start += chunk {
		end := min(start+chunk, len(keys))
		items := make([]migItem, 0, end-start)
		bk.mu.RLock()
		for _, k := range keys[start:end] {
			if v, ok := bk.m[k]; ok {
				items = append(items, migItem{Key: k, Value: v})
			}
		}
		bk.mu.RUnlock()
		if len(items) == 0 {
			continue
		}
		if err := s.sendChunk(toHost, to, p, items, root.ctx); err != nil {
			return abort(err)
		}
		moved += len(items)
	}

	// Delta rounds, still live: keys written during the stream are re-sent
	// until the dirty set fits the final frozen delta or the round budget
	// is spent (a write rate that outruns the stream indefinitely would
	// otherwise never converge — the final delta then pays a longer freeze,
	// bounded by the write rate times one round).
	for round := 0; round < s.cfg.MigrationMaxDeltaRounds; round++ {
		bk.mu.Lock()
		if len(bk.mig.dirty) <= chunk {
			bk.mu.Unlock()
			break
		}
		dirty := bk.mig.dirty
		bk.mig.dirty = make(map[string]struct{})
		items := collectDeltaLocked(bk, dirty)
		bk.mu.Unlock()
		if err := s.sendChunk(toHost, to, p, items, root.ctx); err != nil {
			return abort(err)
		}
		moved += len(items)
	}

	// Freeze for the final delta only.  Writes arriving now requeue on the
	// batch path's frozen-deadline loop; the window is one commit
	// round-trip carrying at most one round of residual writes.
	//
	// Phase one of the two-phase handover: with the bucket frozen (no
	// write can land between the intent and the commit), journal the
	// migration intent and make it durable BEFORE the receiver is allowed
	// to commit.  From here to the resolution record, a crash replays
	// into the in-doubt state resolved by resolveIntents.
	s.mu.Lock()
	bk.mu.Lock()
	bk.state = bucketFrozen
	final := collectDeltaLocked(bk, bk.mig.dirty)
	bk.mu.Unlock()
	intent := &migIntent{vnode: vs.name, newOwner: ownerRef{Vnode: to, Host: toHost}}
	s.inDoubt[p] = intent
	intentSeq := s.durAppendWith(func(b []byte) []byte {
		return encodeWalMigIntent(b, walBucketDropRec{
			Vnode: vs.name, Partition: p, NewOwner: ownerRef{Vnode: to, Host: toHost},
		})
	})
	s.mu.Unlock()
	abortResolved := func(err error) (int, error) {
		// The intent is on disk; journal its resolution so a later crash
		// does not replay into a needless in-doubt probe.
		s.mu.Lock()
		delete(s.inDoubt, p)
		s.durAppendWith(func(b []byte) []byte { return encodeWalMigIntentResolved(b, p) })
		s.mu.Unlock()
		return abort(err)
	}
	if s.dur != nil && !s.durFastAck() && !s.durWaitSeq(intentSeq) {
		return abortResolved(fmt.Errorf("cluster: snode %d stopping: migration intent not durable", s.id))
	}
	if s.testCrashBeforeCommit != nil {
		if err := s.testCrashBeforeCommit(p); err != nil {
			return moved, err // simulated sender death: no abort, no cleanup
		}
	}

	csp := beginSpan(root.ctx, "mig.commit")
	v, err = s.rpcTr(toHost, csp.ctx, func(op uint64) any {
		return migCommitReq{Op: op, To: to, Partition: p, Items: final, ReplyTo: s.id}
	})
	if csp.active() {
		outcome := ""
		if err != nil {
			outcome = err.Error()
		}
		s.tracer.finish(csp, s.id, outcome)
	}
	if err != nil {
		// The commit RPC failing does NOT mean the commit failed: the
		// receiver installs before acking (and re-homes replicas, which
		// can outlast the RPC timeout), so the install may have landed
		// with only its ack lost.  Blindly reverting to live would leave
		// BOTH snodes serving the partition.  Ask the receiver who owns
		// the region now and complete the handover if it answers as
		// owner.  A probe error or a not-yet-owning answer is retried
		// with a pause: the commit handler runs in its own goroutine, so
		// a just-dispatched install may still be racing the (inline)
		// lookup.  Abort only when the receiver repeatedly answers as
		// NOT owning, or never answers at all (under the model's
		// no-partition assumption an unreachable receiver has crashed,
		// and a crashed receiver serves nobody, so reverting to live
		// cannot create a second server).
		for attempt := 0; attempt < 5; attempt++ {
			if attempt > 0 {
				time.Sleep(20 * time.Millisecond)
			}
			lv, lerr := s.rpc(toHost, func(op uint64) any {
				return lookupReq{Op: op, R: p.Start(), ReplyTo: s.id}
			})
			if lerr != nil {
				continue
			}
			if lr, ok := lv.(lookupResp); ok && lr.Err == "" &&
				lr.Owner == to && lr.Host == toHost && lr.Partition == p {
				err = nil
				break
			}
		}
		if err != nil {
			return abortResolved(err)
		}
	} else if resp := v.(migCommitResp); resp.Err != "" {
		return abortResolved(fmt.Errorf("cluster: migration commit at %d: %s", toHost, resp.Err))
	}
	moved += len(final)

	if s.testCrashAfterCommit != nil {
		if err := s.testCrashAfterCommit(p); err != nil {
			return moved, err // simulated sender death after receiver commit
		}
	}

	// Committed: retire the local copy behind a custody tombstone.  The
	// retirement is journaled (resolving the intent — tag 38 closes tag
	// 43) so a restart does not resurrect a partition that provably lives
	// elsewhere now.
	s.mu.Lock()
	bk.mu.Lock()
	bk.state = bucketDead
	bk.m = nil
	bk.mig = nil
	bk.mu.Unlock()
	delete(vs.parts, p)
	s.delOwnedLocked(p, bk)
	s.setTombLocked(p, ownerRef{Vnode: to, Host: toHost})
	delete(s.inDoubt, p)
	seq := s.durAppendWith(func(b []byte) []byte {
		return encodeWalBucketDrop(b, walBucketDropRec{
			Vnode: vs.name, Partition: p, NewOwner: ownerRef{Vnode: to, Host: toHost},
		})
	})
	s.mu.Unlock()
	if s.dur != nil && !s.durFastAck() {
		s.durWaitSeq(seq) // best-effort: a failed wait means we are stopping
	}
	s.dropOrphanReplicas(p, toHost)
	s.stats.PartitionsSent.Add(1)
	s.stats.KeysMoved.Add(int64(moved))
	s.tracer.finish(root, s.id, "")
	s.log.Debug("partition migrated", "partition", p, "to", int(toHost), "keys", moved)
	return moved, nil
}

// --- receiver side ---

// applyMigItems folds chunk items into a staging map.
func applyMigItems(data map[string][]byte, items []migItem, private bool) {
	for _, it := range items {
		if it.Del {
			delete(data, it.Key)
			continue
		}
		v := it.Value
		if !private {
			// Over the by-reference in-memory fabric values stay shared
			// with the sender's bucket (immutable by convention, exactly
			// as the data plane stores them); only the slice header is
			// copied.  Decoded frames pass private and skip even that.
			v = append([]byte(nil), v...)
		}
		data[it.Key] = v
	}
}

// handleMigBegin opens (or replaces) the staging bucket for a partition.
// Runs inline: no nested RPCs.
func (s *Snode) handleMigBegin(m migBeginReq) {
	s.mu.Lock()
	if _, ok := s.vnodes[m.To]; !ok {
		s.mu.Unlock()
		s.send(m.ReplyTo, migBeginResp{Op: m.Op, Err: fmt.Sprintf("vnode %v not allocated at %d", m.To, s.id)})
		return
	}
	s.migIn[m.Partition] = &migInbound{
		to: m.To, group: m.Group, level: m.Level,
		data: make(map[string][]byte),
	}
	s.mu.Unlock()
	s.send(m.ReplyTo, migBeginResp{Op: m.Op})
}

// handleMigChunk folds one chunk into the staging bucket.  Runs inline.
//
//dbdht:dataplane
func (s *Snode) handleMigChunk(m migChunkReq) {
	s.mu.Lock()
	st, ok := s.migIn[m.Partition]
	if !ok || st.to != m.To {
		s.mu.Unlock()
		s.send(m.ReplyTo, migChunkResp{Op: m.Op, Err: fmt.Sprintf("no migration staged for %v at %d", m.Partition, s.id)})
		return
	}
	applyMigItems(st.data, m.Items, m.private)
	s.mu.Unlock()
	s.send(m.ReplyTo, migChunkResp{Op: m.Op})
}

// handleMigCommit applies the final delta and installs the staging bucket
// as the live owned partition — the successor of the retired
// whole-bucket install, same bookkeeping: ownership index, level/group
// adoption, custody cleanup, replica re-homing before the ack.  Runs in
// its own goroutine (re-homing performs nested RPCs).
//
//dbdht:dataplane
func (s *Snode) handleMigCommit(m migCommitReq, tr transport.TraceContext) {
	sp := beginSpan(tr, "mig.install")
	defer func() { s.tracer.finish(sp, s.id, "") }()
	s.mu.Lock()
	st, ok := s.migIn[m.Partition]
	if !ok || st.to != m.To {
		s.mu.Unlock()
		s.send(m.ReplyTo, migCommitResp{Op: m.Op, Err: fmt.Sprintf("no migration staged for %v at %d", m.Partition, s.id)})
		return
	}
	vs, ok := s.vnodes[m.To]
	if !ok {
		delete(s.migIn, m.Partition)
		s.mu.Unlock()
		s.send(m.ReplyTo, migCommitResp{Op: m.Op, Err: fmt.Sprintf("vnode %v not allocated at %d", m.To, s.id)})
		return
	}
	applyMigItems(st.data, m.Items, m.private)
	// Journal the install with the FULL folded contents before it goes
	// live: the staging chunks were volatile, so the commit record alone
	// must reconstruct the bucket at replay (see walrec.go).  Encoded
	// lazily — the whole-bucket serialization must cost nothing when
	// durability is off.
	seq := s.durAppendWith(func(b []byte) []byte {
		return encodeWalMigInstall(b, walMigInstallRec{
			To: m.To, Group: st.group, Level: st.level,
			Partition: m.Partition, Data: st.data,
		})
	})
	if s.dur != nil && !s.durFastAck() {
		// The durability wait must come BEFORE the install goes live: an
		// error reply makes the sender abort back to a live bucket, so
		// installing first and then failing the wait would leave BOTH
		// sides serving.  The staging entry stays in place across the
		// wait (s.mu released) so a racing abort or re-begin is detected
		// by the pointer check below.
		s.mu.Unlock()
		if !s.durWaitSeq(seq) {
			s.send(m.ReplyTo, migCommitResp{Op: m.Op, Err: fmt.Sprintf("snode %d stopping: install not durable", s.id)})
			return
		}
		s.mu.Lock()
		if cur, ok := s.migIn[m.Partition]; !ok || cur != st {
			s.mu.Unlock()
			s.send(m.ReplyTo, migCommitResp{Op: m.Op, Err: fmt.Sprintf("migration for %v superseded at %d", m.Partition, s.id)})
			return
		}
		if vs, ok = s.vnodes[m.To]; !ok {
			delete(s.migIn, m.Partition)
			s.mu.Unlock()
			s.send(m.ReplyTo, migCommitResp{Op: m.Op, Err: fmt.Sprintf("vnode %v not allocated at %d", m.To, s.id)})
			return
		}
	}
	delete(s.migIn, m.Partition)
	s.installBucketLocked(vs, st.group, st.level, m.Partition, st.data)
	s.mu.Unlock()
	// Re-home the replica set with the primary before acknowledging, so
	// the handover never shrinks the number of copies.
	if s.cfg.Replicas > 1 {
		s.rehomeReplicas(m.Partition)
	}
	s.send(m.ReplyTo, migCommitResp{Op: m.Op})
}

// installBucketLocked makes data the live owned bucket of a partition at
// the receiving vnode — ownership index, level/group adoption, custody
// cleanup, replica-store cleanup.  Shared by the live commit handler and
// recovery replay.  Caller holds s.mu (or owns the snode exclusively).
func (s *Snode) installBucketLocked(vs *vnodeState, g core.GroupID, level uint8, p hashspace.Partition, data map[string][]byte) {
	if vs.parts == nil {
		vs.parts = make(map[hashspace.Partition]*bucket)
	}
	if old, ok := vs.parts[p]; ok {
		old.setStateLocked(bucketDead) // a re-install supersedes the previous bucket
	}
	bk := newBucket(data)
	vs.parts[p] = bk
	s.setOwnedLocked(p, vs, bk)
	vs.level = level
	vs.group = g
	// Owning again supersedes any old custody pointer for this region,
	// and any replica bucket we held for the previous primary.
	s.delTombLocked(p)
	s.dropReplicaWithinLocked(p)
}

// handleMigAbort discards a staging bucket.  Runs inline.
func (s *Snode) handleMigAbort(m migAbortMsg) {
	s.mu.Lock()
	if st, ok := s.migIn[m.Partition]; ok && st.to == m.To {
		delete(s.migIn, m.Partition)
	}
	s.mu.Unlock()
}

// --- in-doubt intent resolution (recovery) ---

// resolveIntents settles every migration intent that recovery replayed
// without a resolution: the sender crashed somewhere between journaling
// the intent and journaling the bucket drop, so whether the receiver
// committed is unknown.  Each in-doubt bucket recovered FROZEN (reads
// serve, writes requeue); this goroutine probes until every intent is
// settled or the snode stops.  Started by newSnode after recovery.
func (s *Snode) resolveIntents() {
	for {
		s.mu.Lock()
		ps := make([]hashspace.Partition, 0, len(s.inDoubt))
		for p := range s.inDoubt {
			ps = append(ps, p)
		}
		s.mu.Unlock()
		if len(ps) == 0 {
			return
		}
		for _, p := range ps {
			s.resolveIntentOnce(p)
		}
		select {
		case <-s.stopCh:
			return
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// resolveIntentOnce probes the receiver of one in-doubt intent and
// settles it when the answer is conclusive:
//
//   - the lookup resolves at another host for this region (the receiver
//     itself, or a third party after a later handover) ⇒ the commit
//     landed; finalize the drop exactly like a clean handover;
//   - the lookup resolves back to THIS snode (the probe was forwarded
//     around and our own frozen bucket answered) ⇒ the receiver provably
//     does not own the region, so the commit never landed; revert to
//     live and tell the receiver to discard any staging leftovers;
//   - the receiver is unreachable or the lookup fails ⇒ stay frozen and
//     retry: the receiver may have durably committed and be mid-restart,
//     and a blind revert would put two live copies on the fabric.
func (s *Snode) resolveIntentOnce(p hashspace.Partition) {
	s.mu.Lock()
	in, ok := s.inDoubt[p]
	s.mu.Unlock()
	if !ok {
		return
	}
	// The probe uses a short deadline of its own: this loop is the retry
	// layer, and the first reply after a restart is routinely lost to a
	// peer's stale connection — waiting out the full RPC timeout for it
	// would stall every requeued write behind the frozen bucket.
	timeout := time.Second
	if s.cfg.RPCTimeout < timeout {
		timeout = s.cfg.RPCTimeout
	}
	v, err := s.rpcTimeout(in.newOwner.Host, transport.TraceContext{}, timeout, func(op uint64) any {
		return lookupReq{Op: op, R: p.Start(), ReplyTo: s.id}
	})
	if err != nil {
		s.log.Debug("intent probe failed, staying in doubt", "partition", p.String(), "err", err)
		return
	}
	lr, ok := v.(lookupResp)
	if !ok || lr.Err != "" {
		return
	}
	if lr.Host != s.id && lr.Partition.Level >= p.Level && overlapping(lr.Partition, p) {
		s.finalizeIntent(p, in)
		return
	}
	if lr.Host == s.id && lr.Partition == p {
		s.revertIntent(p, in)
	}
}

// finalizeIntent completes a crashed handover whose receiver committed:
// the local frozen copy dies behind a custody tombstone, mirroring the
// retire sequence of migratePartition's success path.
func (s *Snode) finalizeIntent(p hashspace.Partition, in *migIntent) {
	s.mu.Lock()
	if cur, ok := s.inDoubt[p]; !ok || cur != in {
		s.mu.Unlock()
		return
	}
	delete(s.inDoubt, p)
	vs, p2, owned := s.ownsLocked(p.Start())
	if owned && p2 == p {
		bk := vs.parts[p]
		bk.mu.Lock()
		bk.state = bucketDead
		bk.m = nil
		bk.mig = nil
		bk.mu.Unlock()
		delete(vs.parts, p)
		s.delOwnedLocked(p, bk)
	}
	s.setTombLocked(p, in.newOwner)
	seq := s.durAppendWith(func(b []byte) []byte {
		return encodeWalBucketDrop(b, walBucketDropRec{Vnode: in.vnode, Partition: p, NewOwner: in.newOwner})
	})
	s.mu.Unlock()
	if s.dur != nil && !s.durFastAck() {
		s.durWaitSeq(seq) // best-effort: a failed wait means we are stopping
	}
	s.dropOrphanReplicas(p, in.newOwner.Host)
	s.log.Info("migration intent finalized: receiver owns the partition",
		"partition", p.String(), "to", int(in.newOwner.Host))
}

// revertIntent settles a crashed handover whose receiver provably never
// committed: the frozen bucket goes back to live (requeued writes
// proceed) and the resolution is journaled.
func (s *Snode) revertIntent(p hashspace.Partition, in *migIntent) {
	s.mu.Lock()
	if cur, ok := s.inDoubt[p]; !ok || cur != in {
		s.mu.Unlock()
		return
	}
	delete(s.inDoubt, p)
	vs, p2, owned := s.ownsLocked(p.Start())
	if owned && p2 == p {
		bk := vs.parts[p]
		bk.mu.Lock()
		if bk.state == bucketFrozen {
			bk.state = bucketLive
		}
		bk.mig = nil
		bk.mu.Unlock()
	}
	s.durAppendWith(func(b []byte) []byte { return encodeWalMigIntentResolved(b, p) })
	s.mu.Unlock()
	s.send(in.newOwner.Host, migAbortMsg{To: in.newOwner.Vnode, Partition: p})
	s.stats.MigAborts.Add(1)
	s.log.Info("migration intent reverted: receiver never committed",
		"partition", p.String(), "to", int(in.newOwner.Host))
}
