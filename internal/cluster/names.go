// Package cluster is the runtime substrate of the model: it turns the
// algorithmic local approach (package core) into a live system of *software
// nodes* — the paper's snodes (§2.1.1) — that exchange protocol messages
// over a transport fabric, store real key/value data in their partitions,
// and rebalance by actually shipping partition contents between cluster
// nodes.
//
// The architecture follows the paper §3 directly:
//
//   - every snode is an actor (goroutine + unbounded inbox) hosting vnodes;
//   - each group of vnodes has a *leader* snode holding the authoritative
//     LPDR; balancement events within a group are serialized by its leader,
//     while different groups progress in parallel — the paper's central
//     parallelism claim;
//   - vnode creation follows §3.6: draw r ∈ R_h, route a lookup to the
//     victim vnode, ask the victim group's leader to run the §2.5 algorithm
//     over its LPDR, splitting the group first when it is full (§3.7);
//   - lookups route by *custody forwarding*: when a partition leaves a
//     host, the host keeps a tombstone pointing at the new owner, so any
//     stale request chases the chain of custody to the current owner.
//
// Faithful to §5, there is no fault tolerance: the fabric is reliable and
// nodes do not crash (graceful leave is supported).
package cluster

import (
	"fmt"

	"dbdht/internal/cluster/transport"
)

// VnodeName is a vnode's canonical, DHT-wide unique name.  Per the paper
// (§3.6, footnote 2) vnodes are identified as snode_id.vnode_id.
type VnodeName struct {
	Snode transport.NodeID
	Local int
}

// Less orders canonical names (snode id, then local id).  The smallest name
// in a group determines nothing protocol-visible beyond deterministic
// tie-breaks in the LPDR.
func (n VnodeName) Less(o VnodeName) bool {
	if n.Snode != o.Snode {
		return n.Snode < o.Snode
	}
	return n.Local < o.Local
}

// String renders the canonical snode_id.vnode_id form.
func (n VnodeName) String() string { return fmt.Sprintf("%d.%d", n.Snode, n.Local) }

// ownerRef is a forwarding target: a vnode and the snode hosting it.
type ownerRef struct {
	Vnode VnodeName
	Host  transport.NodeID
}
