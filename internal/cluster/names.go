package cluster

import (
	"fmt"

	"dbdht/internal/cluster/transport"
)

// VnodeName is a vnode's canonical, DHT-wide unique name.  Per the paper
// (§3.6, footnote 2) vnodes are identified as snode_id.vnode_id.
type VnodeName struct {
	Snode transport.NodeID
	Local int
}

// Less orders canonical names (snode id, then local id).  The smallest name
// in a group determines nothing protocol-visible beyond deterministic
// tie-breaks in the LPDR.
func (n VnodeName) Less(o VnodeName) bool {
	if n.Snode != o.Snode {
		return n.Snode < o.Snode
	}
	return n.Local < o.Local
}

// String renders the canonical snode_id.vnode_id form.
func (n VnodeName) String() string { return fmt.Sprintf("%d.%d", n.Snode, n.Local) }

// ownerRef is a forwarding target: a vnode and the snode hosting it.
type ownerRef struct {
	Vnode VnodeName
	Host  transport.NodeID
}
