package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dbdht/internal/balance"
	"dbdht/internal/cluster/transport"
)

// snodeQuotaSigma computes the convergence metric from a quiescent
// snapshot: relative stddev of capacity-normalized per-snode quotas.
func snodeQuotaSigma(c *Cluster) float64 {
	snap := c.Snapshot()
	caps := c.Capacities()
	quotas := snap.VnodeQuotas()
	loads := make(map[transport.NodeID]*SnodeLoad)
	for id, w := range caps {
		loads[id] = &SnodeLoad{Snode: id, Capacity: w}
	}
	for i, v := range snap.Vnodes {
		loads[v.Host].Quota += quotas[i]
	}
	flat := make([]SnodeLoad, 0, len(loads))
	for _, l := range loads {
		flat = append(flat, *l)
	}
	return quotaSigma(flat)
}

// runBalancerConvergence is the ISSUE-4 acceptance scenario on any
// fabric: 1:4 heterogeneous capacities start equally enrolled, a 10×
// hot-spot key skew writes continuously, and balancer rounds must pull
// the capacity-normalized per-snode quota deviation below the threshold
// with zero acknowledged-write loss and zero FreezeTimeout errors.
func runBalancerConvergence(t *testing.T, net transport.Network, seed int64) {
	t.Helper()
	const threshold = 0.2
	c, err := New(Config{
		Pmin: 32, Vmin: 8, Seed: seed,
		RPCTimeout:   20 * time.Second,
		LoadInterval: 10 * time.Millisecond,
		Balance:      BalanceConfig{QuotaDeviation: threshold, MaxMovesPerRound: 2},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, w := range []float64{1, 1, 4, 4} {
		if _, err := c.AddSnodeWithCapacity(w); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < 16; i++ { // equal enrollment — wrong for 1:4 capacities
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}

	const n = 4000
	items := make([]KV, n)
	for i := range items {
		items[i] = KV{Key: fmt.Sprintf("skew-%05d", i), Value: []byte(fmt.Sprintf("v-%05d", i))}
	}
	results, err := c.MPut(items)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OK() {
			t.Fatalf("preload %q: %s", r.Key, r.Err)
		}
	}

	// Sustained 10× hot-spot skew on a key range DISJOINT from the
	// preload: 90% of writes hammer a hot tenth of the writer keys.  The
	// preload keys are never rewritten, so a migration that drops one
	// cannot be masked by a later identical write — the final per-key
	// check genuinely detects acknowledged-write loss.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ackedWrites, failedWrites atomic.Int64
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				batch := make([]KV, 32)
				for j := range batch {
					idx := (r*32 + j*7) % (n / 10)
					if j%10 == 0 {
						idx = (r*32 + j*13) % n
					}
					k := fmt.Sprintf("hot-%05d", idx)
					batch[j] = KV{Key: k, Value: []byte("h-" + k)}
				}
				res, err := c.MPut(batch)
				if err != nil {
					continue
				}
				for _, br := range res {
					if br.OK() {
						ackedWrites.Add(1)
					} else {
						failedWrites.Add(1)
					}
				}
			}
		}()
	}

	first, err := c.BalanceNow()
	if err != nil {
		t.Fatalf("first balance round: %v", err)
	}
	if first.Sigma <= threshold {
		t.Fatalf("equal enrollment over 1:4 capacities should start unbalanced, got sigma=%.3f", first.Sigma)
	}
	last := first
	for round := 0; round < 40 && last.Sigma > threshold; round++ {
		if last, err = c.BalanceNow(); err != nil {
			t.Fatalf("balance round: %v", err)
		}
	}
	close(stop)
	wg.Wait()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	if sigma := snodeQuotaSigma(c); sigma > threshold {
		t.Fatalf("per-snode quota deviation did not converge: sigma=%.3f > %.2f", sigma, threshold)
	}
	st := c.StatsTotal()
	if st.FreezeTimeouts != 0 {
		t.Fatalf("%d writes hit FreezeTimeout during live migrations", st.FreezeTimeouts)
	}
	if st.PartitionsSent == 0 || st.ChunksSent == 0 {
		t.Fatalf("balancer converged without chunked migrations? partitions=%d chunks=%d", st.PartitionsSent, st.ChunksSent)
	}
	if failedWrites.Load() != 0 {
		t.Fatalf("%d writes failed during rebalancing (%d succeeded)", failedWrites.Load(), ackedWrites.Load())
	}
	// Zero acknowledged-write loss: every preload key still readable with
	// a current value (writers only rewrite the same values).
	keys := make([]string, n)
	for i := range items {
		keys[i] = items[i].Key
	}
	reads, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reads {
		if !r.OK() || !r.Found || string(r.Value) != string(items[i].Value) {
			t.Fatalf("acknowledged key %q lost after rebalancing: %+v", keys[i], r)
		}
	}
	bs := c.BalancerStats()
	if bs.Rounds == 0 || bs.Moves == 0 {
		t.Fatalf("balancer stats empty: %+v", bs)
	}
}

func TestBalancerConvergesMem(t *testing.T) {
	runBalancerConvergence(t, transport.NewMem(), 41)
}

func TestBalancerConvergesTCP(t *testing.T) {
	runBalancerConvergence(t, transport.NewTCP("127.0.0.1"), 42)
}

// TestBalancerBackgroundLoop: with an interval configured, the loop runs
// rounds on its own and converges a capacity-skewed cluster without any
// BalanceNow calls.
func TestBalancerBackgroundLoop(t *testing.T) {
	c, err := New(Config{
		Pmin: 32, Vmin: 8, Seed: 43,
		RPCTimeout:   20 * time.Second,
		LoadInterval: 10 * time.Millisecond,
		Balance:      BalanceConfig{Interval: 20 * time.Millisecond, QuotaDeviation: 0.2, MaxMovesPerRound: 4},
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, w := range []float64{1, 4} {
		if _, err := c.AddSnodeWithCapacity(w); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < 8; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if sigma := snodeQuotaSigma(c); sigma <= 0.2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background loop did not converge: sigma=%.3f after 10s (rounds=%d)",
				snodeQuotaSigma(c), c.BalancerStats().Rounds)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if c.BalancerStats().Rounds == 0 {
		t.Fatal("background loop ran no rounds")
	}
}

// TestBalancerRespectsThreshold: a balanced homogeneous cluster must not
// be churned.
func TestBalancerRespectsThreshold(t *testing.T) {
	c, err := New(Config{Pmin: 32, Vmin: 8, Seed: 44, RPCTimeout: 20 * time.Second}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 4; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < 16; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	before := c.StatsTotal().PartitionsSent
	for i := 0; i < 3; i++ {
		round, err := c.BalanceNow()
		if err != nil {
			t.Fatal(err)
		}
		if round.Moves != 0 {
			t.Fatalf("round on a balanced cluster made %d moves (sigma=%.3f)", round.Moves, round.Sigma)
		}
	}
	if moved := c.StatsTotal().PartitionsSent - before; moved != 0 {
		t.Fatalf("balanced cluster migrated %d partitions", moved)
	}
}

// TestLoadReportObservesTraffic: the EWMA counters must attribute reads
// and writes to the snodes that own the touched partitions.
func TestLoadReportObservesTraffic(t *testing.T) {
	c, err := New(Config{
		Pmin: 16, Vmin: 4, Seed: 45,
		RPCTimeout: 20 * time.Second, LoadInterval: 5 * time.Millisecond,
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 2; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < 4; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		for i := 0; i < 512; i++ {
			if err := c.Put(fmt.Sprintf("load-%d", i), []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		loads, err := c.LoadReport()
		if err != nil {
			t.Fatal(err)
		}
		var writes float64
		for _, l := range loads {
			writes += l.Writes
		}
		if writes > 0 {
			return // EWMA picked the traffic up
		}
		if time.Now().After(deadline) {
			t.Fatalf("load report never observed write traffic: %+v", loads)
		}
	}
}

// TestWeightedTargets pins the capacity apportionment rule.
func TestWeightedTargets(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	cases := []struct {
		weights map[int]float64
		total   int
		want    map[int]int
	}{
		{map[int]float64{1: 1, 2: 1, 3: 4, 4: 4}, 20, map[int]int{1: 2, 2: 2, 3: 8, 4: 8}},
		{map[int]float64{1: 1, 2: 1}, 3, map[int]int{1: 2, 2: 1}},   // remainder to smallest key
		{map[int]float64{1: 1, 2: 100}, 4, map[int]int{1: 1, 2: 3}}, // min-one fixup
		{map[int]float64{1: 2, 2: 2}, 0, map[int]int{1: 0, 2: 0}},
	}
	for _, tc := range cases {
		got, err := balance.WeightedTargets(tc.weights, tc.total, less)
		if err != nil {
			t.Fatalf("WeightedTargets(%v, %d): %v", tc.weights, tc.total, err)
		}
		for k, w := range tc.want {
			if got[k] != w {
				t.Fatalf("WeightedTargets(%v, %d) = %v, want %v", tc.weights, tc.total, got, tc.want)
			}
		}
	}
	if _, err := balance.WeightedTargets(map[int]float64{1: -1}, 4, less); err == nil {
		t.Fatal("negative weight accepted")
	}
}

// TestChunkedMigrationUnderWrites: a transfer of a hot partition must
// complete while writes keep landing, with the data intact at the new
// owner, no FreezeTimeout errors, and the migration actually chunked.
func TestChunkedMigrationUnderWrites(t *testing.T) {
	c, err := New(Config{
		Pmin: 8, Vmin: 4, Seed: 46,
		RPCTimeout:         20 * time.Second,
		MigrationChunkKeys: 64, // force multi-chunk streams
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 2; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	if _, _, err := c.CreateVnode(ids[0]); err != nil {
		t.Fatal(err)
	}
	const n = 5000
	items := make([]KV, n)
	for i := range items {
		items[i] = KV{Key: fmt.Sprintf("mig-%05d", i), Value: []byte(fmt.Sprintf("v-%05d", i))}
	}
	if _, err := c.MPut(items); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failed atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; ; r++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]KV, 16)
			for j := range batch {
				batch[j] = items[(r*16+j)%n]
			}
			res, err := c.MPut(batch)
			if err != nil {
				continue
			}
			for _, br := range res {
				if !br.OK() {
					failed.Add(1)
				}
			}
		}
	}()

	// Every join triggers §2.5 transfers from the loaded snode's vnode.
	for i := 0; i < 6; i++ {
		if _, _, err := c.CreateVnode(ids[1]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	st := c.StatsTotal()
	if st.ChunksSent == 0 {
		t.Fatal("transfers moved data without chunked streaming")
	}
	if st.FreezeTimeouts != 0 {
		t.Fatalf("%d writes hit FreezeTimeout during chunked migration", st.FreezeTimeouts)
	}
	if failed.Load() != 0 {
		t.Fatalf("%d writes failed during chunked migration", failed.Load())
	}
	keys := make([]string, n)
	for i := range items {
		keys[i] = items[i].Key
	}
	reads, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reads {
		if !r.OK() || !r.Found || string(r.Value) != string(items[i].Value) {
			t.Fatalf("key %q corrupted by live migration: %+v", keys[i], r)
		}
	}
}

// TestMigrationShipsConcurrentWrites pins the delta semantics: a value
// overwritten WHILE its partition streams out must arrive at the new
// owner in its newest version, and a key deleted mid-stream must not
// resurrect.
func TestMigrationShipsConcurrentWrites(t *testing.T) {
	c, err := New(Config{
		Pmin: 4, Vmin: 4, Seed: 47,
		RPCTimeout:         20 * time.Second,
		MigrationChunkKeys: 32,
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 2; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	if _, _, err := c.CreateVnode(ids[0]); err != nil {
		t.Fatal(err)
	}
	const n = 2000
	items := make([]KV, n)
	for i := range items {
		items[i] = KV{Key: fmt.Sprintf("delta-%05d", i), Value: []byte("old")}
	}
	if _, err := c.MPut(items); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; ; r++ {
			select {
			case <-stop:
				return
			default:
			}
			i := r % n
			if i%2 == 0 {
				_ = c.Put(items[i].Key, []byte("new"))
			} else {
				_, _ = c.Delete(items[i].Key)
			}
		}
	}()
	for i := 0; i < 4; i++ {
		if _, _, err := c.CreateVnode(ids[1]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Writer state is deterministic per key: even → "new" or "old",
	// odd → deleted or "old".  Anything else means a delta was lost.
	keys := make([]string, n)
	for i := range items {
		keys[i] = items[i].Key
	}
	reads, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reads {
		if !r.OK() {
			t.Fatalf("key %q unreadable after migration: %s", keys[i], r.Err)
		}
		switch {
		case i%2 == 0:
			if !r.Found || (string(r.Value) != "new" && string(r.Value) != "old") {
				t.Fatalf("even key %q = %+v, want old or new value", keys[i], r)
			}
		default:
			if r.Found && string(r.Value) != "old" {
				t.Fatalf("odd key %q = %+v, want deleted or old", keys[i], r)
			}
		}
	}
}
