package cluster

import (
	"fmt"
	"sort"

	"dbdht/internal/balance"
	"dbdht/internal/cluster/transport"
	"dbdht/internal/core"
)

// groupOp is one serialized balancement event for a led group.
type groupOp struct {
	join  *joinGroupReq
	leave *leaveVnodeReq
}

// ledGroup is the authoritative state of a group at its leader: the LPDR as
// a balance table plus each member's host.  All mutations happen on the
// group's worker goroutine, which serializes balancement events within the
// group while other groups progress on their own leaders — the paper's
// parallelism model (§3.1).
type ledGroup struct {
	id    core.GroupID
	level uint8
	table *balance.Table[VnodeName]
	host  map[VnodeName]transport.NodeID
	ops   *queue[groupOp]
	dead  bool
}

// installLeaderLocked makes this snode the leader of the group described by
// st and starts its worker.  Caller holds s.mu.
func (s *Snode) installLeaderLocked(st lpdrState) {
	lg := &ledGroup{
		id:    st.Group,
		level: st.Level,
		table: balance.NewTable[VnodeName](func(a, b VnodeName) bool { return a.Less(b) }),
		host:  make(map[VnodeName]transport.NodeID, len(st.Members)),
		ops:   newQueue[groupOp](),
	}
	for _, m := range st.Members {
		if err := lg.table.Add(m.Vnode); err != nil {
			panic(fmt.Sprintf("cluster: duplicate member %v in group init", m.Vnode))
		}
		if err := lg.table.SetCount(m.Vnode, m.Count); err != nil {
			panic(fmt.Sprintf("cluster: invalid count for %v: %v", m.Vnode, err))
		}
		lg.host[m.Vnode] = m.Host
	}
	s.led[st.Group] = lg
	go s.groupWorker(lg)
}

// handleGroupInit accepts leadership of a (child) group after a split or a
// leadership handoff.
func (s *Snode) handleGroupInit(m groupInit) {
	s.mu.Lock()
	if _, dup := s.led[m.State.Group]; dup {
		s.mu.Unlock()
		s.send(m.ReplyTo, groupInitResp{Op: m.Op, Err: fmt.Sprintf("group %v already led at %d", m.State.Group, s.id)})
		return
	}
	st := m.State
	st.Leader = s.id
	s.replicas[st.Group] = &st
	s.installLeaderLocked(st)
	s.mu.Unlock()
	// Announce the new group (and the dissolution of its parent, if this
	// init came from a split) to every member host.
	var dissolved []core.GroupID
	if st.Group.Len > 0 {
		dissolved = append(dissolved, parentGroup(st.Group))
	}
	s.broadcastSync(st, dissolved)
	s.send(m.ReplyTo, groupInitResp{Op: m.Op})
}

// parentGroup strips the most-significant digit of a child identifier.
func parentGroup(g core.GroupID) core.GroupID {
	return core.GroupID{Bits: g.Bits &^ (1 << (g.Len - 1)), Len: g.Len - 1}
}

// routeJoin steers a join request: process if led here, forward if the
// leader is known, otherwise ask the initiator to retry.
func (s *Snode) routeJoin(m joinGroupReq) {
	s.mu.Lock()
	if lg, ok := s.led[m.Group]; ok && !lg.dead {
		ok := lg.ops.push(groupOp{join: &m})
		s.mu.Unlock()
		if !ok {
			s.send(m.ReplyTo, joinGroupResp{Op: m.Op, Retry: true})
		}
		return
	}
	rep, ok := s.replicas[m.Group]
	s.mu.Unlock()
	if ok && rep.Leader != s.id && m.Hops < s.cfg.MaxHops {
		m.Hops++
		s.stats.Forwards.Add(1)
		s.send(rep.Leader, m)
		return
	}
	s.send(m.ReplyTo, joinGroupResp{Op: m.Op, Retry: true})
}

// routeLeave steers a vnode-leave request analogously.  A request arriving
// at the vnode's host without group information is annotated first.
func (s *Snode) routeLeave(m leaveVnodeReq) {
	s.mu.Lock()
	if m.Group == (core.GroupID{}) || m.Hops == 0 {
		if vs, ok := s.vnodes[m.Vnode]; ok && vs.joined {
			m.Group = vs.group
		}
	}
	if lg, ok := s.led[m.Group]; ok && !lg.dead {
		ok := lg.ops.push(groupOp{leave: &m})
		s.mu.Unlock()
		if !ok {
			s.send(m.ReplyTo, leaveVnodeResp{Op: m.Op, Retry: true})
		}
		return
	}
	rep, ok := s.replicas[m.Group]
	s.mu.Unlock()
	if ok && rep.Leader != s.id && m.Hops < s.cfg.MaxHops {
		m.Hops++
		s.stats.Forwards.Add(1)
		s.send(rep.Leader, m)
		return
	}
	s.send(m.ReplyTo, leaveVnodeResp{Op: m.Op, Retry: true})
}

// groupWorker serializes one group's balancement events.
func (s *Snode) groupWorker(lg *ledGroup) {
	for {
		op, ok := lg.ops.pop()
		if !ok {
			return
		}
		s.mu.Lock()
		dead := lg.dead
		s.mu.Unlock()
		if dead {
			// The group dissolved (split) while this op was queued.
			if op.join != nil {
				s.send(op.join.ReplyTo, joinGroupResp{Op: op.join.Op, Retry: true})
			}
			if op.leave != nil {
				s.send(op.leave.ReplyTo, leaveVnodeResp{Op: op.leave.Op, Retry: true})
			}
			continue
		}
		switch {
		case op.join != nil:
			s.leaderJoin(lg, *op.join)
		case op.leave != nil:
			s.leaderLeave(lg, *op.leave)
		}
	}
}

// memberHosts returns the deduplicated hosts of a group's members.
func (lg *ledGroup) memberHosts() []transport.NodeID {
	seen := make(map[transport.NodeID]struct{}, len(lg.host))
	for _, h := range lg.host {
		seen[h] = struct{}{}
	}
	out := make([]transport.NodeID, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// state serializes the group's LPDR for syncs and inits.
func (lg *ledGroup) state(leader transport.NodeID) lpdrState {
	st := lpdrState{Group: lg.id, Level: lg.level, Leader: leader}
	for _, v := range lg.table.Keys() {
		c, _ := lg.table.Count(v)
		st.Members = append(st.Members, memberInfo{Vnode: v, Host: lg.host[v], Count: c})
	}
	return st
}

// broadcastSync refreshes every member host's replica, including the
// leader's own (a leader need not host any member vnode, so it would miss a
// fabric-only broadcast).
func (s *Snode) broadcastSync(st lpdrState, dissolved []core.GroupID) {
	msg := lpdrSyncMsg{State: st, Dissolved: dissolved}
	s.handleSync(msg)
	hosts := make(map[transport.NodeID]struct{})
	for _, m := range st.Members {
		hosts[m.Host] = struct{}{}
	}
	delete(hosts, s.id)
	for h := range hosts {
		s.send(h, msg)
	}
}

// leaderJoin runs the §2.5 creation algorithm for one new vnode inside the
// led group, splitting the group first if it is full (§3.7).
func (s *Snode) leaderJoin(lg *ledGroup, m joinGroupReq) {
	if lg.table.Len() >= s.cfg.vmax() {
		s.splitLedGroup(lg, m)
		return
	}
	fail := func(err string) {
		s.send(m.ReplyTo, joinGroupResp{Op: m.Op, Err: err})
	}
	if _, exists := lg.table.Count(m.NewVnode); exists {
		fail(fmt.Sprintf("vnode %v already in group %v", m.NewVnode, lg.id))
		return
	}
	if err := lg.table.Add(m.NewVnode); err != nil {
		fail(err.Error())
		return
	}
	lg.host[m.NewVnode] = m.NewHost
	split, moves, err := lg.table.PlanCreate(m.NewVnode, s.cfg.Pmin)
	if split {
		lg.level++
		for _, h := range lg.memberHosts() {
			v, rerr := s.rpc(h, func(op uint64) any {
				return splitAllReq{Op: op, Group: lg.id, NewLevel: lg.level, ReplyTo: s.id}
			})
			if rerr != nil {
				fail(rerr.Error())
				return
			}
			if resp := v.(splitAllResp); resp.Err != "" {
				fail(resp.Err)
				return
			}
		}
	}
	if err != nil {
		fail(err.Error())
		return
	}
	if lg.table.Len() == 1 {
		// First vnode of a scope is bootstrapped elsewhere; a led group is
		// never empty, so this cannot happen.
		fail("internal: join into empty group")
		return
	}
	for _, mv := range moves {
		if err := s.orderTransfer(lg, mv.From, mv.To); err != nil {
			fail(err.Error())
			return
		}
	}
	s.stats.JoinsLed.Add(1)
	s.broadcastSync(lg.state(s.id), nil)
	s.send(m.ReplyTo, joinGroupResp{Op: m.Op, Group: lg.id})
}

// orderTransfer executes one planned handover: instruct the victim's host,
// wait for completion.
func (s *Snode) orderTransfer(lg *ledGroup, from, to VnodeName) error {
	fromHost, ok := lg.host[from]
	if !ok {
		return fmt.Errorf("cluster: no host for victim %v", from)
	}
	toHost, ok := lg.host[to]
	if !ok {
		return fmt.Errorf("cluster: no host for receiver %v", to)
	}
	v, err := s.rpc(fromHost, func(op uint64) any {
		return transferReq{Op: op, Group: lg.id, From: from, To: to, ToHost: toHost, Level: lg.level, ReplyTo: s.id}
	})
	if err != nil {
		return err
	}
	if resp := v.(transferResp); resp.Err != "" {
		return fmt.Errorf("cluster: transfer %v→%v: %s", from, to, resp.Err)
	}
	return nil
}

// splitLedGroup divides a full group into two random halves of Vmin vnodes
// (§3.7), hands each child to its leader, then forwards the pending join to
// a randomly chosen child.
func (s *Snode) splitLedGroup(lg *ledGroup, m joinGroupReq) {
	members := lg.table.Keys()
	s.randShuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	loID, hiID := lg.id.Split()
	halves := map[core.GroupID][]VnodeName{
		loID: members[:s.cfg.Vmin],
		hiID: members[s.cfg.Vmin:],
	}
	childLeaders := make(map[core.GroupID]transport.NodeID, 2)
	for _, childID := range []core.GroupID{loID, hiID} {
		half := halves[childID]
		st := lpdrState{Group: childID, Level: lg.level}
		minName := half[0]
		for _, v := range half {
			if v.Less(minName) {
				minName = v
			}
			c, _ := lg.table.Count(v)
			st.Members = append(st.Members, memberInfo{Vnode: v, Host: lg.host[v], Count: c})
		}
		leader := lg.host[minName]
		childLeaders[childID] = leader
		st.Leader = leader
		v, err := s.rpc(leader, func(op uint64) any {
			return groupInit{Op: op, State: st, ReplyTo: s.id}
		})
		if err != nil {
			s.send(m.ReplyTo, joinGroupResp{Op: m.Op, Err: err.Error()})
			return
		}
		if resp := v.(groupInitResp); resp.Err != "" {
			s.send(m.ReplyTo, joinGroupResp{Op: m.Op, Err: resp.Err})
			return
		}
	}
	// The parent group is gone; retire its worker after the queue drains.
	s.mu.Lock()
	lg.dead = true
	delete(s.led, lg.id)
	s.mu.Unlock()
	s.stats.GroupSplits.Add(1)
	// One of the two children, randomly chosen, receives the new vnode.
	chosen := loID
	if s.randIntn(2) == 1 {
		chosen = hiID
	}
	fwd := m
	fwd.Group = chosen
	fwd.Hops++
	s.send(childLeaders[chosen], fwd)
}

// leaderLeave dissolves one vnode inside the led group: ship its partitions
// to the planned destinations, then flatten.  Merging (halving P_g) is
// skipped — a group scope rarely owns complete sibling pairs (see
// scope.ErrIncompleteTiling), so G4′'s upper bound is soft here exactly as
// in package core.
func (s *Snode) leaderLeave(lg *ledGroup, m leaveVnodeReq) {
	fail := func(err string) {
		s.send(m.ReplyTo, leaveVnodeResp{Op: m.Op, Err: err})
	}
	if _, ok := lg.table.Count(m.Vnode); !ok {
		fail(fmt.Sprintf("vnode %v not in group %v", m.Vnode, lg.id))
		return
	}
	if lg.table.Len() == 1 {
		fail(fmt.Sprintf("vnode %v is the last member of group %v; group dissolution is undefined in the model", m.Vnode, lg.id))
		return
	}
	vnodeHost := lg.host[m.Vnode]
	dests, err := lg.table.PlanRemove(m.Vnode)
	if err != nil {
		fail(err.Error())
		return
	}
	refs := make([]ownerRef, len(dests))
	for i, d := range dests {
		refs[i] = ownerRef{Vnode: d, Host: lg.host[d]}
	}
	v, err := s.rpc(vnodeHost, func(op uint64) any {
		return shipVnodeReq{Op: op, Vnode: m.Vnode, Dests: refs, ReplyTo: s.id}
	})
	if err != nil {
		fail(err.Error())
		return
	}
	if resp := v.(shipVnodeResp); resp.Err != "" {
		fail(resp.Err)
		return
	}
	delete(lg.host, m.Vnode)
	for _, mv := range lg.table.Flatten(s.cfg.Pmin) {
		if err := s.orderTransfer(lg, mv.From, mv.To); err != nil {
			fail(err.Error())
			return
		}
	}
	s.stats.LeavesLed.Add(1)
	s.broadcastSync(lg.state(s.id), nil)
	s.send(m.ReplyTo, leaveVnodeResp{Op: m.Op})
}

// relinquishLeadership hands every group this snode leads to another member
// host, in preparation for the snode leaving the cluster.  Groups whose
// only member hosts are this snode cannot be handed off and are reported.
func (s *Snode) relinquishLeadership() error {
	s.mu.Lock()
	groups := make([]*ledGroup, 0, len(s.led))
	for _, lg := range s.led {
		groups = append(groups, lg)
	}
	s.mu.Unlock()
	for _, lg := range groups {
		s.mu.Lock()
		if lg.dead {
			s.mu.Unlock()
			continue
		}
		var target transport.NodeID
		found := false
		// Successor: host of the smallest member vnode not hosted here.
		for _, v := range lg.table.Keys() {
			if h := lg.host[v]; h != s.id {
				target, found = h, true
				break
			}
		}
		if !found {
			s.mu.Unlock()
			return fmt.Errorf("cluster: group %v has no member host other than %d", lg.id, s.id)
		}
		st := lg.state(target)
		lg.dead = true
		delete(s.led, lg.id)
		lg.ops.close()
		s.mu.Unlock()
		v, err := s.rpc(target, func(op uint64) any {
			return groupInit{Op: op, State: st, ReplyTo: s.id}
		})
		if err != nil {
			return err
		}
		if resp := v.(groupInitResp); resp.Err != "" {
			return fmt.Errorf("cluster: handoff of %v to %d: %s", lg.id, target, resp.Err)
		}
	}
	return nil
}
