package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is a nemesis fault plan shared by the fabrics: a set of
// per-directed-link rules — blocked (partition), probabilistic frame
// drop, and one-way delay with jitter — consulted once per envelope.
// Every random decision (drop coin flips, jitter draws) comes from one
// seeded *rand.Rand, so a scenario's fault behaviour is reproducible
// from a printed seed; the rule set itself is mutated only by the
// nemesis schedule, which is deterministic by construction.
//
// Attach a plan with Mem.SetFaults or TCP.SetFaults before the fabric
// carries traffic; rules may then be installed, changed and healed live.
// All rules are directed (from → to): Partition installs both
// directions, PartitionOneWay and the link setters exactly what they
// are given, so asymmetric partitions are first-class.
//
// Semantics on each fabric:
//
//   - Mem: a blocked or dropped envelope vanishes at Send (the sender
//     sees success, exactly like a lost datagram — RPCs surface it as
//     timeouts).  A delayed envelope is queued on a per-link delay line
//     that preserves the link's FIFO order without head-of-line blocking
//     other senders into the same mailbox.
//   - TCP: faults are applied on the receive side, after a frame is
//     decoded and before it is delivered, so an injected drop can never
//     corrupt framing — the stream stays intact and only whole messages
//     vanish.  Delay sleeps in the connection's read loop; each ordered
//     (from, to) pair has its own connection, so only that link slows.
type Faults struct {
	seed int64
	// ruled counts installed rules so the per-envelope judge call is a
	// single atomic load while the plan is empty (the common case: a
	// scenario attaches the plan up front and injects faults briefly).
	ruled atomic.Int64

	mu      sync.Mutex
	rng     *rand.Rand              // guarded by mu
	blocked map[faultLink]bool      // guarded by mu
	drops   map[faultLink]float64   // guarded by mu
	delays  map[faultLink]delayRule // guarded by mu
}

// faultLink is one directed fabric link.
type faultLink struct {
	from, to NodeID
}

type delayRule struct {
	base, jitter time.Duration
}

// faultVerdict is judge's per-envelope decision.
type faultVerdict struct {
	drop  bool
	delay time.Duration
}

// NewFaults returns an empty fault plan whose randomness derives from
// seed alone.
func NewFaults(seed int64) *Faults {
	return &Faults{
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
		blocked: make(map[faultLink]bool),
		drops:   make(map[faultLink]float64),
		delays:  make(map[faultLink]delayRule),
	}
}

// Seed returns the seed the plan was built from, for printing alongside
// scenario results.
func (f *Faults) Seed() int64 { return f.seed }

// Partition symmetrically blocks every link between the two host sets:
// no envelope crosses in either direction until Heal (or a new plan
// overwrites the links).  Hosts within one set stay connected.
func (f *Faults) Partition(a, b []NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			f.blocked[faultLink{x, y}] = true
			f.blocked[faultLink{y, x}] = true
		}
	}
	f.recountLocked()
}

// PartitionOneWay blocks only the from → to direction of every link
// between the sets: requests still arrive, responses (or vice versa)
// vanish — the classic asymmetric partition.
func (f *Faults) PartitionOneWay(from, to []NodeID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, x := range from {
		for _, y := range to {
			f.blocked[faultLink{x, y}] = true
		}
	}
	f.recountLocked()
}

// SetLinkDelay installs a one-way delay of base ± jitter (uniform) on
// every from → to link.  Call twice with the sets swapped for a
// symmetric slow link.  A zero base and jitter removes the rule.
func (f *Faults) SetLinkDelay(from, to []NodeID, base, jitter time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, x := range from {
		for _, y := range to {
			l := faultLink{x, y}
			if base == 0 && jitter == 0 {
				delete(f.delays, l)
			} else {
				f.delays[l] = delayRule{base: base, jitter: jitter}
			}
		}
	}
	f.recountLocked()
}

// SetLinkDrop installs a probabilistic one-way frame drop on every
// from → to link: each envelope is independently lost with probability
// p.  p = 0 removes the rule.
func (f *Faults) SetLinkDrop(from, to []NodeID, p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, x := range from {
		for _, y := range to {
			l := faultLink{x, y}
			if p <= 0 {
				delete(f.drops, l)
			} else {
				f.drops[l] = p
			}
		}
	}
	f.recountLocked()
}

// Heal removes every rule: the fabric is whole again.  Envelopes already
// queued on delay lines still deliver (late packets from the bad period).
func (f *Faults) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	clear(f.blocked)
	clear(f.drops)
	clear(f.delays)
	f.recountLocked()
}

// Describe renders the installed rules, sorted, for scenario logs.
func (f *Faults) Describe() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var parts []string
	for l := range f.blocked {
		parts = append(parts, fmt.Sprintf("block %d→%d", l.from, l.to))
	}
	for l, p := range f.drops {
		parts = append(parts, fmt.Sprintf("drop %d→%d p=%.2f", l.from, l.to, p))
	}
	for l, d := range f.delays {
		parts = append(parts, fmt.Sprintf("delay %d→%d %v±%v", l.from, l.to, d.base, d.jitter))
	}
	if len(parts) == 0 {
		return "healthy"
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

// recountLocked refreshes the fast-path rule gate.  Caller holds f.mu.
func (f *Faults) recountLocked() {
	f.ruled.Store(int64(len(f.blocked) + len(f.drops) + len(f.delays)))
}

// judge decides one envelope's fate on the from → to link.  Nil plans
// and empty plans answer without locking.
func (f *Faults) judge(from, to NodeID) faultVerdict {
	if f == nil || f.ruled.Load() == 0 {
		return faultVerdict{}
	}
	l := faultLink{from, to}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.blocked[l] {
		return faultVerdict{drop: true}
	}
	if p, ok := f.drops[l]; ok && f.rng.Float64() < p {
		return faultVerdict{drop: true}
	}
	var v faultVerdict
	if d, ok := f.delays[l]; ok {
		v.delay = d.base
		if d.jitter > 0 {
			v.delay += time.Duration((2*f.rng.Float64() - 1) * float64(d.jitter))
		}
		if v.delay < 0 {
			v.delay = 0
		}
	}
	return v
}

// delayLine delivers the delayed envelopes of one directed mem-fabric
// link in FIFO order at their due times.  A dedicated queue per link —
// rather than due times in the destination's shared mailbox — keeps a
// slow link from head-of-line blocking every other sender into the same
// mailbox, matching what a slow wire does.
type delayLine struct {
	deliver func(Envelope)
	wake    chan struct{}

	mu       sync.Mutex
	queue    []timedEnvelope // guarded by mu
	lastDue  time.Time       // guarded by mu
	inflight bool            // pump holds a popped envelope; guarded by mu
	closed   bool            // guarded by mu
}

func newDelayLine(deliver func(Envelope)) *delayLine {
	l := &delayLine{deliver: deliver, wake: make(chan struct{}, 1)}
	go l.pump()
	return l
}

// push enqueues an envelope due at the given time.  Due times are
// clamped monotone so shrinking jitter cannot reorder the link.
func (l *delayLine) push(env Envelope, due time.Time) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	if due.Before(l.lastDue) {
		due = l.lastDue
	}
	l.lastDue = due
	l.queue = append(l.queue, timedEnvelope{env: env, due: due})
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// pending reports whether any envelope is queued or in flight.  While
// true, new sends on the link must route through the line even when the
// delay rule is gone, or they would overtake the queued ones.
func (l *delayLine) pending() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.queue) > 0 || l.inflight
}

func (l *delayLine) pump() {
	for {
		l.mu.Lock()
		for len(l.queue) == 0 {
			if l.closed {
				l.mu.Unlock()
				return
			}
			l.mu.Unlock()
			<-l.wake
			l.mu.Lock()
		}
		if l.closed {
			// Fabric going down: drop the backlog instead of sleeping it out.
			l.queue = nil
			l.mu.Unlock()
			return
		}
		te := l.queue[0]
		l.queue = l.queue[1:]
		l.inflight = true
		l.mu.Unlock()
		if wait := time.Until(te.due); wait > 0 {
			time.Sleep(wait)
		}
		l.deliver(te.env)
		l.mu.Lock()
		l.inflight = false
		l.mu.Unlock()
	}
}

func (l *delayLine) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
}
