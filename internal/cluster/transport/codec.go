package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"
	"sync/atomic"
)

// Wire framing.  Every envelope on the TCP fabric travels as one
// length-prefixed frame:
//
//	uint32   big-endian length of the frame body
//	byte     wire version (wireVersion; mismatches fail loudly)
//	byte     format: formatBinary or formatGob
//	byte     flags: flagTrace | flagSampled
//	uvarint  trace ID   (only when flagTrace is set)
//	uvarint  span ID    (only when flagTrace is set)
//
// followed, for formatBinary, by
//
//	varint   From (zigzag — NodeID may be negative, the client endpoint)
//	varint   To
//	uvarint  message type tag (see RegisterWire)
//	...      the message's hand-rolled payload
//
// and, for formatGob, by a self-contained encoding/gob stream of the
// Envelope.  Hot-path messages (batch req/resp, replica fan-out, lookup)
// implement WireMessage and ride the binary path; rare control messages
// (join/split/transfer/...) keep gob, whose reflection cost is irrelevant
// at their volume.  The per-frame version byte makes a mixed cluster fail
// with an explicit error instead of silently mis-decoding.
//
// Version history: v1 had no flags byte; v2 added it (with the optional
// trace context) — a frame-level layout change, hence the bump per
// docs/WIRE.md rule 1.  v3 changed the replWriteReq (tag 5) payload in
// place (each set now carries the primary's write version and replica
// group); the bump keeps a mixed cluster failing loudly — an old decoder
// would otherwise mis-read the trailing fields of a one-set request as
// its ReplyTo.

const (
	wireVersion byte = 3

	formatGob    byte = 0
	formatBinary byte = 1

	// Frame flags (v2+).  flagTrace marks a trace context present in the
	// header; flagSampled carries the head-sampling decision.
	flagTrace   byte = 1 << 0
	flagSampled byte = 1 << 1

	// maxFrame bounds a frame body so a corrupt length prefix cannot make
	// the reader allocate unbounded memory.
	maxFrame = 256 << 20

	frameHeaderLen = 4 // length prefix

	// minFrameBody is version + format + flags — the smallest well-formed
	// frame body.
	minFrameBody = 3
)

// WireMessage is implemented by payloads with a hand-rolled binary codec.
// AppendWire appends the payload encoding to buf and returns the extended
// slice; the matching decoder is registered with RegisterWire under the
// same tag.
type WireMessage interface {
	WireTag() uint16
	AppendWire(buf []byte) []byte
}

// WireDecoder decodes one payload from a reader positioned right after the
// type tag.  It must return the concrete message *value* (not a pointer),
// matching what receivers type-switch on.
type WireDecoder func(r *WireReader) (any, error)

var (
	wireMu       sync.RWMutex
	wireDecoders = make(map[uint16]WireDecoder)
)

// RegisterWire installs the decoder for a message type tag.  Registering a
// tag twice panics: tags are a wire-compatibility contract.
func RegisterWire(tag uint16, dec WireDecoder) {
	wireMu.Lock()
	defer wireMu.Unlock()
	if _, dup := wireDecoders[tag]; dup {
		panic(fmt.Sprintf("transport: wire tag %d registered twice", tag))
	}
	wireDecoders[tag] = dec
}

func wireDecoderFor(tag uint16) (WireDecoder, bool) {
	wireMu.RLock()
	dec, ok := wireDecoders[tag]
	wireMu.RUnlock()
	return dec, ok
}

// Codec-path counters (process-wide).  The binary/gob split verifies that
// hot-path messages never fall back to reflection-based encoding.
var (
	binaryEncodes atomic.Int64
	gobEncodes    atomic.Int64
	binaryDecodes atomic.Int64
	gobDecodes    atomic.Int64
)

// CodecCounters reports how many envelopes each codec path has handled
// process-wide: (binary encodes, gob encodes, binary decodes, gob decodes).
func CodecCounters() (binaryEnc, gobEnc, binaryDec, gobDec int64) {
	return binaryEncodes.Load(), gobEncodes.Load(), binaryDecodes.Load(), gobDecodes.Load()
}

// AppendFrame appends env as one complete frame (length prefix included)
// and returns the extended buffer.  On error buf is returned unchanged.
func AppendFrame(buf []byte, env Envelope) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length back-patched below
	var flags byte
	if env.Trace.TraceID != 0 {
		flags |= flagTrace
	}
	if env.Trace.Sampled {
		flags |= flagSampled
	}
	appendTrace := func(buf []byte) []byte {
		buf = append(buf, flags)
		if flags&flagTrace != 0 {
			buf = binary.AppendUvarint(buf, env.Trace.TraceID)
			buf = binary.AppendUvarint(buf, env.Trace.SpanID)
		}
		return buf
	}
	if wm, ok := env.Msg.(WireMessage); ok {
		buf = append(buf, wireVersion, formatBinary)
		buf = appendTrace(buf)
		buf = binary.AppendVarint(buf, int64(env.From))
		buf = binary.AppendVarint(buf, int64(env.To))
		buf = binary.AppendUvarint(buf, uint64(wm.WireTag()))
		buf = wm.AppendWire(buf)
		binaryEncodes.Add(1)
	} else {
		buf = append(buf, wireVersion, formatGob)
		buf = appendTrace(buf)
		// The header owns the trace context for every format; zero it in
		// the gob stream so it is not encoded twice.
		env.Trace = TraceContext{}
		var gb bytes.Buffer
		if err := gob.NewEncoder(&gb).Encode(&env); err != nil {
			return buf[:start], fmt.Errorf("transport: gob encode %T: %w", env.Msg, err)
		}
		buf = append(buf, gb.Bytes()...)
		gobEncodes.Add(1)
	}
	body := len(buf) - start - frameHeaderLen
	if body > maxFrame {
		return buf[:start], fmt.Errorf("transport: frame of %d bytes exceeds limit", body)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(body))
	return buf, nil
}

// DecodeFrame decodes one frame body (the bytes after the length prefix).
// The returned envelope never aliases body: decoders copy what they keep,
// so the caller may reuse the buffer.  Truncated or corrupt input returns
// an error, never panics.
func DecodeFrame(body []byte) (Envelope, error) {
	if len(body) < minFrameBody {
		return Envelope{}, fmt.Errorf("transport: frame body of %d bytes is shorter than its header", len(body))
	}
	if body[0] != wireVersion {
		return Envelope{}, fmt.Errorf("transport: peer speaks wire version %d, this node speaks %d — mixed cluster?", body[0], wireVersion)
	}
	format, flags := body[1], body[2]
	if flags&^(flagTrace|flagSampled) != 0 {
		// Unknown flag bits would mean a frame-level change that should
		// have bumped the version — treat as corruption, not extension.
		return Envelope{}, fmt.Errorf("transport: unknown frame flags %#x", flags)
	}
	var tr TraceContext
	rest := body[3:]
	if flags&flagTrace != 0 {
		var n, m int
		tr.TraceID, n = binary.Uvarint(rest)
		if n > 0 {
			tr.SpanID, m = binary.Uvarint(rest[n:])
		}
		if n <= 0 || m <= 0 {
			return Envelope{}, fmt.Errorf("transport: truncated trace context in frame header")
		}
		rest = rest[n+m:]
	}
	tr.Sampled = flags&flagSampled != 0
	switch format {
	case formatBinary:
		r := NewWireReader(rest)
		from := r.Varint()
		to := r.Varint()
		tag := r.Uvarint()
		if err := r.Err(); err != nil {
			return Envelope{}, fmt.Errorf("transport: frame envelope header: %w", err)
		}
		if tag > uint64(^uint16(0)) {
			return Envelope{}, fmt.Errorf("transport: wire tag %d out of range", tag)
		}
		dec, ok := wireDecoderFor(uint16(tag))
		if !ok {
			return Envelope{}, fmt.Errorf("transport: no decoder for wire tag %d — mixed cluster?", tag)
		}
		msg, err := dec(r)
		if err != nil {
			return Envelope{}, fmt.Errorf("transport: decode wire tag %d: %w", tag, err)
		}
		binaryDecodes.Add(1)
		return Envelope{From: NodeID(from), To: NodeID(to), Trace: tr, Msg: msg}, nil
	case formatGob:
		var env Envelope
		if err := gob.NewDecoder(bytes.NewReader(rest)).Decode(&env); err != nil {
			return Envelope{}, fmt.Errorf("transport: gob decode frame: %w", err)
		}
		if env.Msg == nil {
			return Envelope{}, fmt.Errorf("transport: gob frame decoded to an empty envelope")
		}
		env.Trace = tr
		gobDecodes.Add(1)
		return env, nil
	default:
		return Envelope{}, fmt.Errorf("transport: unknown frame format %d", format)
	}
}

// --- encode helpers (append-style, mirrored by WireReader) ---

// AppendUvarint appends an unsigned varint.
func AppendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

// AppendVarint appends a zigzag-encoded signed varint.
func AppendVarint(buf []byte, v int64) []byte { return binary.AppendVarint(buf, v) }

// AppendBool appends a bool as one byte.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(buf, p []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	return append(buf, p...)
}

// AppendString appends a length-prefixed string.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// WireReader is a cursor over a frame payload with a sticky error: after
// the first malformed field every subsequent read returns the zero value,
// so decoders check Err once at the end instead of after every field.  All
// reads are bounds-checked — corrupt input errors, it never panics.
type WireReader struct {
	data []byte
	off  int
	err  error
}

// NewWireReader returns a reader over data.  The reader never mutates or
// retains data beyond the decode call.
func NewWireReader(data []byte) *WireReader { return &WireReader{data: data} }

func (r *WireReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("truncated or corrupt %s at offset %d", what, r.off)
	}
}

// Err returns the first decode error, if any.
func (r *WireReader) Err() error { return r.err }

// Invalid marks the input malformed from the caller's side — for
// message-level validation (range checks on decoded fields) that the
// reader's own bounds checks cannot see.  Like any reader error it is
// sticky and surfaces from Err.
func (r *WireReader) Invalid(what string) { r.fail(what) }

// Len returns the number of unread bytes.
func (r *WireReader) Len() int { return len(r.data) - r.off }

// Uvarint reads an unsigned varint.
func (r *WireReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag-encoded signed varint.
func (r *WireReader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// Bool reads one bool byte.
func (r *WireReader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.data) {
		r.fail("bool")
		return false
	}
	b := r.data[r.off]
	r.off++
	return b != 0
}

// Bytes reads a length-prefixed byte slice.  The result is a copy — the
// frame buffer is pooled and reused after decode.  A zero-length slice
// decodes as nil, matching gob's round-trip of empty values.
func (r *WireReader) Bytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Len()) {
		r.fail("byte slice")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.data[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (r *WireReader) String() string {
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(r.Len()) {
		r.fail("string")
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// ArrayLen reads a uvarint element count for a slice whose elements occupy
// at least minPerElem bytes each, rejecting counts that cannot fit in the
// remaining input — so a corrupt count cannot force a huge allocation.
func (r *WireReader) ArrayLen(minPerElem int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if minPerElem < 1 {
		minPerElem = 1
	}
	if n > uint64(r.Len()/minPerElem) {
		r.fail("array length")
		return 0
	}
	return int(n)
}
