package transport

import (
	"bytes"
	"encoding/gob"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// benchPayload models a hot-path message: a 16-item batch with 64-byte
// values, implemented both as a WireMessage (binary path) and as a plain
// gob-registered struct (fallback path).
type benchPayloadBinary struct {
	Op    uint64
	Items []benchItem
}

type benchItem struct {
	Key   string
	Value []byte
}

const benchTag uint16 = 0x7e58

func (m benchPayloadBinary) WireTag() uint16 { return benchTag }

func (m benchPayloadBinary) AppendWire(buf []byte) []byte {
	buf = AppendUvarint(buf, m.Op)
	buf = AppendUvarint(buf, uint64(len(m.Items)))
	for _, it := range m.Items {
		buf = AppendString(buf, it.Key)
		buf = AppendBytes(buf, it.Value)
	}
	return buf
}

func init() {
	RegisterWire(benchTag, func(r *WireReader) (any, error) {
		var m benchPayloadBinary
		m.Op = r.Uvarint()
		if n := r.ArrayLen(2); n > 0 {
			m.Items = make([]benchItem, n)
			for i := range m.Items {
				m.Items[i].Key = r.String()
				m.Items[i].Value = r.Bytes()
			}
		}
		return m, r.Err()
	})
}

type benchPayloadGob struct {
	Op    uint64
	Items []benchItem
}

func init() { gob.Register(benchPayloadGob{}) }

func benchItems() []benchItem {
	items := make([]benchItem, 16)
	val := bytes.Repeat([]byte("x"), 64)
	for i := range items {
		items[i] = benchItem{Key: "bench-key-0123456789", Value: val}
	}
	return items
}

// BenchmarkEncodeFrameBinary measures the hand-rolled codec: one frame
// append into a reused buffer, the writer goroutine's steady state.
func BenchmarkEncodeFrameBinary(b *testing.B) {
	env := Envelope{From: 1, To: 2, Msg: benchPayloadBinary{Op: 7, Items: benchItems()}}
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkEncodeFrameGob measures the reflection fallback on the same
// payload shape — the cost every hot message paid before the binary codec.
func BenchmarkEncodeFrameGob(b *testing.B) {
	env := Envelope{From: 1, To: 2, Msg: benchPayloadGob{Op: 7, Items: benchItems()}}
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkDecodeFrameBinary is the read-side counterpart.
func BenchmarkDecodeFrameBinary(b *testing.B) {
	frame, err := AppendFrame(nil, Envelope{From: 1, To: 2, Msg: benchPayloadBinary{Op: 7, Items: benchItems()}})
	if err != nil {
		b.Fatal(err)
	}
	body := frame[frameHeaderLen:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeFrameGob decodes the gob fallback frame.
func BenchmarkDecodeFrameGob(b *testing.B) {
	frame, err := AppendFrame(nil, Envelope{From: 1, To: 2, Msg: benchPayloadGob{Op: 7, Items: benchItems()}})
	if err != nil {
		b.Fatal(err)
	}
	body := frame[frameHeaderLen:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportPipe measures envelopes/sec through one (From, To)
// connection of each fabric: a sender pushing batch payloads, a receiver
// draining.  The sender keeps a bounded number of envelopes in flight —
// like the request/response traffic the cluster actually runs — so the
// TCP writer queue's byte budget (there to cut off peers that STOP
// reading) never trips against a healthy-but-slower reader.  On the TCP
// fabric this exercises the full framed path: sender-side slab encode,
// writer goroutine, flush coalescing, pooled frame reads.
func BenchmarkTransportPipe(b *testing.B) {
	for name, mk := range map[string]func() Network{
		"mem": func() Network { return NewMem() },
		"tcp": func() Network { return NewTCP("127.0.0.1") },
	} {
		b.Run(name, func(b *testing.B) {
			n := mk()
			defer n.Close()
			in, err := n.Register(1)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := n.Register(2); err != nil {
				b.Fatal(err)
			}
			env := Envelope{From: 2, To: 1, Msg: benchPayloadBinary{Op: 1, Items: benchItems()}}
			const window = 1024 // envelopes in flight (~1.4 MB) — a realistic RPC fan-out depth
			var received atomic.Int64
			done := make(chan int)
			go func() {
				got := 0
				for range in {
					got++
					received.Store(int64(got))
					if got == b.N {
						break
					}
				}
				done <- got
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for i-int(received.Load()) >= window {
					runtime.Gosched()
				}
				if err := n.Send(env); err != nil {
					b.Fatal(err)
				}
			}
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				b.Fatal("receiver starved")
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "envelopes/s")
		})
	}
}
