package transport

import (
	"encoding/gob"
	"fmt"
	"sync"
	"testing"
	"time"
)

type testMsg struct {
	Seq int
	S   string
}

func init() { gob.Register(testMsg{}) }

// networks under test, by constructor.
func fabrics() map[string]func() Network {
	return map[string]func() Network{
		"mem": func() Network { return NewMem() },
		"tcp": func() Network { return NewTCP("127.0.0.1") },
	}
}

func recvOne(t *testing.T, ch <-chan Envelope) Envelope {
	t.Helper()
	select {
	case env, ok := <-ch:
		if !ok {
			t.Fatal("inbox closed unexpectedly")
		}
		return env
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
	}
	panic("unreachable")
}

func TestSendReceive(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			in1, err := n.Register(1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := n.Register(2); err != nil {
				t.Fatal(err)
			}
			if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: 7, S: "hi"}}); err != nil {
				t.Fatal(err)
			}
			env := recvOne(t, in1)
			got, ok := env.Msg.(testMsg)
			if !ok || got.Seq != 7 || got.S != "hi" || env.From != 2 || env.To != 1 {
				t.Fatalf("got %+v", env)
			}
		})
	}
}

func TestFIFOPerPair(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			in, err := n.Register(1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := n.Register(2); err != nil {
				t.Fatal(err)
			}
			const count = 500
			for i := 0; i < count; i++ {
				if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: i}}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < count; i++ {
				env := recvOne(t, in)
				if got := env.Msg.(testMsg).Seq; got != i {
					t.Fatalf("out of order: got %d at position %d", got, i)
				}
			}
		})
	}
}

func TestManySendersNoLoss(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			in, err := n.Register(0)
			if err != nil {
				t.Fatal(err)
			}
			const senders, each = 8, 200
			for s := 1; s <= senders; s++ {
				if _, err := n.Register(NodeID(s)); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			for s := 1; s <= senders; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						if err := n.Send(Envelope{From: NodeID(s), To: 0, Msg: testMsg{Seq: i}}); err != nil {
							t.Error(err)
							return
						}
					}
				}(s)
			}
			wg.Wait()
			seen := make(map[NodeID]int)
			for i := 0; i < senders*each; i++ {
				env := recvOne(t, in)
				seq := env.Msg.(testMsg).Seq
				if seq != seen[env.From] {
					t.Fatalf("sender %d: got seq %d, want %d (per-pair FIFO)", env.From, seq, seen[env.From])
				}
				seen[env.From]++
			}
		})
	}
}

func TestSendToUnknown(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			if _, err := n.Register(1); err != nil {
				t.Fatal(err)
			}
			if err := n.Send(Envelope{From: 1, To: 99, Msg: testMsg{}}); err == nil {
				t.Fatal("send to unregistered node must fail")
			}
		})
	}
}

func TestDuplicateRegister(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			if _, err := n.Register(1); err != nil {
				t.Fatal(err)
			}
			if _, err := n.Register(1); err == nil {
				t.Fatal("duplicate register must fail")
			}
		})
	}
}

func TestUnregisterClosesInbox(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			in, err := n.Register(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := n.Unregister(1); err != nil {
				t.Fatal(err)
			}
			select {
			case _, ok := <-in:
				if ok {
					t.Fatal("expected closed inbox")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("inbox did not close")
			}
			if err := n.Unregister(1); err == nil {
				t.Fatal("double unregister must fail")
			}
		})
	}
}

func TestCloseClosesAllInboxes(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			var ins []<-chan Envelope
			for i := 0; i < 4; i++ {
				in, err := n.Register(NodeID(i))
				if err != nil {
					t.Fatal(err)
				}
				ins = append(ins, in)
			}
			if err := n.Close(); err != nil {
				t.Fatal(err)
			}
			for i, in := range ins {
				select {
				case _, ok := <-in:
					if ok {
						t.Fatalf("inbox %d delivered after close", i)
					}
				case <-time.After(5 * time.Second):
					t.Fatalf("inbox %d did not close", i)
				}
			}
			if _, err := n.Register(9); err == nil {
				t.Fatal("register after close must fail")
			}
			if err := n.Close(); err != nil {
				t.Fatal("double close must be a no-op")
			}
		})
	}
}

func TestSelfSend(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			in, err := n.Register(1)
			if err != nil {
				t.Fatal(err)
			}
			if err := n.Send(Envelope{From: 1, To: 1, Msg: testMsg{Seq: 42}}); err != nil {
				t.Fatal(err)
			}
			if got := recvOne(t, in).Msg.(testMsg).Seq; got != 42 {
				t.Fatalf("self-send got %d", got)
			}
		})
	}
}

func TestMailboxBuffersWithoutReceiver(t *testing.T) {
	// Unbounded mailboxes must accept arbitrary backlog without blocking
	// the sender (deadlock freedom for the actor runtime).
	n := NewMem()
	defer n.Close()
	in, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	n.Register(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100000; i++ {
			if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: i}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sender blocked; mailbox not unbounded")
	}
	for i := 0; i < 100000; i++ {
		if got := recvOne(t, in).Msg.(testMsg).Seq; got != i {
			t.Fatalf("lost or reordered at %d (got %d)", i, got)
		}
	}
}

func TestTCPSendFromUnregistered(t *testing.T) {
	n := NewTCP("127.0.0.1")
	defer n.Close()
	if _, err := n.Register(1); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Envelope{From: 5, To: 1, Msg: testMsg{}}); err == nil {
		t.Fatal("tcp send from unregistered sender must fail")
	}
}

func TestEnvelopeStringTypes(t *testing.T) {
	// Envelope must carry arbitrary registered payloads for the TCP fabric.
	gob.Register(map[string][]byte{})
	n := NewTCP("127.0.0.1")
	defer n.Close()
	in, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	n.Register(2)
	payload := map[string][]byte{"k": []byte("v")}
	if err := n.Send(Envelope{From: 2, To: 1, Msg: payload}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, in)
	got, ok := env.Msg.(map[string][]byte)
	if !ok || string(got["k"]) != "v" {
		t.Fatalf("payload mangled: %+v", env.Msg)
	}
	_ = fmt.Sprintf("%v", env)
}

func TestMemLatencyDelaysDelivery(t *testing.T) {
	n := NewMemLatency(20 * time.Millisecond)
	defer n.Close()
	in, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(2); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, in)
	if env.Msg.(testMsg).Seq != 1 {
		t.Fatal("wrong message")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delivered after %v, want ≥ ~20ms", elapsed)
	}
	// FIFO is preserved under latency.
	for i := 0; i < 20; i++ {
		if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: i}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if got := recvOne(t, in).Msg.(testMsg).Seq; got != i {
			t.Fatalf("reordered under latency: got %d at %d", got, i)
		}
	}
}
