package transport

import (
	"net"
	"strings"
	"testing"
	"time"
)

// fakeStalledPeer accepts TCP connections and never reads a byte from
// them — the failure mode of a wedged process whose kernel still
// completes handshakes.
func fakeStalledPeer(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			// Hold the connection open, read nothing.
		}
	}()
	return lis
}

// TestWriterQueueBudget: a peer that accepts TCP but stops reading must
// not grow the sender's memory without bound.  Once the socket and the
// writer queue's byte budget fill, enqueue fails fast and tears the
// connection down.
func TestWriterQueueBudget(t *testing.T) {
	lis := fakeStalledPeer(t)
	tr := NewTCP("127.0.0.1")
	defer tr.Close()
	tr.SetWriterBudget(128 << 10)
	if _, err := tr.Register(1); err != nil {
		t.Fatal(err)
	}
	tr.mu.RLock()
	ep := tr.endpoints[1]
	tr.mu.RUnlock()
	oc := ep.connTo(2, lis.Addr().String())
	if oc == nil {
		t.Fatal("connTo returned nil")
	}

	env := Envelope{From: 1, To: 2, Msg: testMsg{S: strings.Repeat("x", 8<<10)}}
	// 4000 × 8 KiB ≈ 32 MiB — far beyond the 128 KiB budget plus any
	// kernel socket buffering, so an unbounded queue would keep growing
	// while a bounded one must overflow.
	var overflow error
	for i := 0; i < 4000; i++ {
		if err := oc.enqueue(env); err != nil {
			overflow = err
			break
		}
		oc.mu.Lock()
		// The backlog is bounded by the budget plus one frame: an
		// envelope is admitted while the bytes AHEAD of it fit the
		// budget.
		if len(oc.buf) > 128<<10+16<<10 {
			oc.mu.Unlock()
			t.Fatalf("queue grew past its budget: %d bytes", len(oc.buf))
		}
		oc.mu.Unlock()
	}
	if overflow == nil {
		t.Fatal("no overflow after 32 MiB enqueued against a 128 KiB budget: writer queue is unbounded")
	}
	if !strings.Contains(overflow.Error(), "budget") {
		t.Fatalf("overflow error %q does not mention the budget", overflow)
	}
	// Teardown: the queue is dropped and the record removed from the
	// endpoint's map, so the next send redials instead of re-growing it.
	oc.mu.Lock()
	if !oc.closed || oc.buf != nil {
		t.Fatalf("overflowed connection not torn down: closed=%v queued=%d bytes", oc.closed, len(oc.buf))
	}
	oc.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ep.mu.Lock()
		_, still := ep.conns[2]
		ep.mu.Unlock()
		if !still {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("overflowed connection still in the endpoint's map")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSendFailsFastOverBudget: the overflow surfaces from Send itself as
// a synchronous error — no silent drop, no blocking.  The budget bounds
// the backlog only: a single frame on an empty queue is always
// admissible, so an oversized payload can never become permanently
// unsendable.
func TestSendFailsFastOverBudget(t *testing.T) {
	lis := fakeStalledPeer(t)
	tr := NewTCP("127.0.0.1")
	defer tr.Close()
	tr.SetWriterBudget(1024)
	if _, err := tr.Register(1); err != nil {
		t.Fatal(err)
	}
	// Aim node 1's outbound connection at the non-reading peer so the
	// queued frame cannot drain between the two sends.
	tr.mu.RLock()
	ep := tr.endpoints[1]
	tr.mu.RUnlock()
	oc := ep.connTo(2, lis.Addr().String())
	big := Envelope{From: 1, To: 2, Msg: testMsg{S: strings.Repeat("y", 64<<10)}}
	if err := oc.enqueue(big); err != nil {
		t.Fatalf("single frame larger than the budget must be admissible on an empty queue, got %v", err)
	}
	err := oc.enqueue(big)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("second frame over the budget = %v, want budget error", err)
	}
	// The teardown removed the record; a fresh connection accepts again.
	oc2 := ep.connTo(2, lis.Addr().String())
	if oc2 == oc {
		t.Fatal("overflowed connection record was not replaced")
	}
	if err := oc2.enqueue(Envelope{From: 1, To: 2, Msg: testMsg{S: "ok"}}); err != nil {
		t.Fatalf("enqueue after teardown should start a fresh queue: %v", err)
	}
}
