// Package transport provides the message fabric the cluster runtime's
// snodes communicate over.  The paper's model assumes the basic properties
// of a cluster interconnect — reliable delivery, short one-hop paths, high
// bandwidth, no partitions (§5) — so the abstraction is deliberately small:
// asynchronous, reliable, FIFO-per-sender-receiver-pair message passing.
//
// Two implementations are provided: an in-memory fabric built on unbounded
// mailboxes (the default for simulations and tests), and a TCP fabric for
// loopback or real interfaces.  On TCP every envelope travels as one
// length-prefixed, versioned frame (codec.go): hot-path messages use
// hand-rolled binary codecs registered via RegisterWire, rare control
// messages fall back to encoding/gob, and each (From, To) pair owns one
// connection drained by a dedicated writer goroutine with a byte-budgeted
// queue and flush coalescing.  docs/WIRE.md is the formal format spec.
package transport
