package transport

import (
	"encoding/binary"
	"strings"
	"testing"
)

// fuzzMsg is a binary-path payload covering every field shape the helpers
// support, registered under a test-only tag.
type fuzzMsg struct {
	U   uint64
	I   int64
	B   bool
	Bs  []byte
	S   string
	Seq []uint64
}

const fuzzTag uint16 = 0x7e57

func (m fuzzMsg) WireTag() uint16 { return fuzzTag }

func (m fuzzMsg) AppendWire(buf []byte) []byte {
	buf = AppendUvarint(buf, m.U)
	buf = AppendVarint(buf, m.I)
	buf = AppendBool(buf, m.B)
	buf = AppendBytes(buf, m.Bs)
	buf = AppendString(buf, m.S)
	buf = AppendUvarint(buf, uint64(len(m.Seq)))
	for _, v := range m.Seq {
		buf = AppendUvarint(buf, v)
	}
	return buf
}

func init() {
	RegisterWire(fuzzTag, func(r *WireReader) (any, error) {
		var m fuzzMsg
		m.U = r.Uvarint()
		m.I = r.Varint()
		m.B = r.Bool()
		m.Bs = r.Bytes()
		m.S = r.String()
		if n := r.ArrayLen(1); n > 0 {
			m.Seq = make([]uint64, n)
			for i := range m.Seq {
				m.Seq[i] = r.Uvarint()
			}
		}
		return m, r.Err()
	})
}

func encodeFrame(t testing.TB, env Envelope) []byte {
	t.Helper()
	frame, err := AppendFrame(nil, env)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	if got := binary.BigEndian.Uint32(frame); int(got) != len(frame)-frameHeaderLen {
		t.Fatalf("length prefix %d, body is %d bytes", got, len(frame)-frameHeaderLen)
	}
	return frame
}

func TestFrameRoundTripBinary(t *testing.T) {
	want := fuzzMsg{U: 9000, I: -42, B: true, Bs: []byte{1, 2, 3}, S: "hello", Seq: []uint64{7, 8}}
	frame := encodeFrame(t, Envelope{From: -1, To: 12, Msg: want})
	env, err := DecodeFrame(frame[frameHeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if env.From != -1 || env.To != 12 {
		t.Fatalf("envelope header mangled: %+v", env)
	}
	got, ok := env.Msg.(fuzzMsg)
	if !ok {
		t.Fatalf("decoded %T, want fuzzMsg", env.Msg)
	}
	if got.U != want.U || got.I != want.I || got.B != want.B ||
		string(got.Bs) != string(want.Bs) || got.S != want.S || len(got.Seq) != 2 {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestFrameRoundTripGobFallback(t *testing.T) {
	// testMsg (registered with gob in transport_test.go) has no wire
	// codec, so it must travel on the gob path.
	frame := encodeFrame(t, Envelope{From: 3, To: 4, Msg: testMsg{Seq: 5, S: "fallback"}})
	if frame[frameHeaderLen+1] != formatGob {
		t.Fatalf("format byte %d, want gob", frame[frameHeaderLen+1])
	}
	env, err := DecodeFrame(frame[frameHeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if got := env.Msg.(testMsg); got.Seq != 5 || got.S != "fallback" {
		t.Fatalf("gob round trip: %+v", env.Msg)
	}
}

func TestDecodeFrameVersionMismatch(t *testing.T) {
	frame := encodeFrame(t, Envelope{From: 1, To: 2, Msg: fuzzMsg{U: 1}})
	body := append([]byte(nil), frame[frameHeaderLen:]...)
	body[0] = wireVersion + 1
	if _, err := DecodeFrame(body); err == nil {
		t.Fatal("future wire version must fail loudly, not decode")
	}
}

func TestDecodeFrameUnknownTag(t *testing.T) {
	var body []byte
	body = append(body, wireVersion, formatBinary, 0) // no flags
	body = binary.AppendVarint(body, 1)
	body = binary.AppendVarint(body, 2)
	body = binary.AppendUvarint(body, 0xfffe) // never registered
	if _, err := DecodeFrame(body); err == nil {
		t.Fatal("unknown wire tag must error")
	}
}

func TestFrameRoundTripTraceContext(t *testing.T) {
	tr := TraceContext{TraceID: 0xfeedface12345678, SpanID: 42, Sampled: true}
	// Binary path: trace context rides the frame header.
	frame := encodeFrame(t, Envelope{From: -1, To: 3, Trace: tr, Msg: fuzzMsg{U: 7}})
	env, err := DecodeFrame(frame[frameHeaderLen:])
	if err != nil {
		t.Fatal(err)
	}
	if env.Trace != tr {
		t.Fatalf("binary trace round trip: got %+v, want %+v", env.Trace, tr)
	}
	if !env.Trace.Active() {
		t.Fatal("sampled trace context must be Active after decode")
	}
	// Gob path: the header owns the context there too.
	frame = encodeFrame(t, Envelope{From: 1, To: 2, Trace: tr, Msg: testMsg{Seq: 9, S: "traced"}})
	if env, err = DecodeFrame(frame[frameHeaderLen:]); err != nil {
		t.Fatal(err)
	}
	if env.Trace != tr || env.Msg.(testMsg).Seq != 9 {
		t.Fatalf("gob trace round trip: got %+v / %+v", env.Trace, env.Msg)
	}
	// An untraced envelope pays exactly one flags byte and decodes to the
	// zero context.
	traced := encodeFrame(t, Envelope{From: -1, To: 3, Trace: tr, Msg: fuzzMsg{U: 7}})
	plain := encodeFrame(t, Envelope{From: -1, To: 3, Msg: fuzzMsg{U: 7}})
	if len(traced) <= len(plain) {
		t.Fatalf("traced frame (%d bytes) not larger than plain (%d)", len(traced), len(plain))
	}
	if env, err = DecodeFrame(plain[frameHeaderLen:]); err != nil {
		t.Fatal(err)
	}
	if env.Trace != (TraceContext{}) {
		t.Fatalf("plain frame decoded a trace context: %+v", env.Trace)
	}
}

func TestDecodeFrameOldVersionRejected(t *testing.T) {
	// A v1 frame (no flags byte) from a pre-upgrade peer: the version check
	// must reject it with the mixed-cluster error before misreading its
	// envelope header as a flags byte.
	var body []byte
	body = append(body, 1, formatBinary) // v1 layout: version, format
	body = binary.AppendVarint(body, -1)
	body = binary.AppendVarint(body, 2)
	body = binary.AppendUvarint(body, uint64(fuzzTag))
	body = fuzzMsg{U: 1}.AppendWire(body)
	_, err := DecodeFrame(body)
	if err == nil {
		t.Fatal("v1 frame must be rejected, not decoded")
	}
	if want := "wire version 1"; !strings.Contains(err.Error(), want) {
		t.Fatalf("rejection error %q does not name the peer's version", err)
	}
}

func TestDecodeFrameBadTraceHeader(t *testing.T) {
	// Truncated trace context: flags promise trace IDs the body lacks.
	if _, err := DecodeFrame([]byte{wireVersion, formatBinary, flagTrace | flagSampled, 0x80}); err == nil {
		t.Fatal("truncated trace context must error")
	}
	// Unknown flag bits are corruption, not extension (a frame-level
	// change bumps the version instead).
	if _, err := DecodeFrame([]byte{wireVersion, formatBinary, 0x80}); err == nil {
		t.Fatal("unknown frame flags must error")
	}
}

func TestDecodeFrameTruncated(t *testing.T) {
	frame := encodeFrame(t, Envelope{From: -1, To: 9, Msg: fuzzMsg{
		U: 1 << 40, I: -1 << 40, B: true, Bs: make([]byte, 100), S: "truncate-me", Seq: []uint64{1, 2, 3},
	}})
	body := frame[frameHeaderLen:]
	for cut := 0; cut < len(body); cut++ {
		if _, err := DecodeFrame(body[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded, want error", cut, len(body))
		}
	}
}

func TestWireReaderHugeCountRejected(t *testing.T) {
	// A corrupt element count larger than the remaining input must error
	// out instead of driving a huge allocation.
	var body []byte
	body = binary.AppendUvarint(body, 1<<40)
	r := NewWireReader(body)
	if n := r.ArrayLen(1); n != 0 || r.Err() == nil {
		t.Fatalf("ArrayLen = %d, err = %v; want 0 and an error", n, r.Err())
	}
	r = NewWireReader(body)
	if b := r.Bytes(); b != nil || r.Err() == nil {
		t.Fatalf("Bytes = %v, err = %v; want nil and an error", b, r.Err())
	}
}

// FuzzDecodeFrame asserts that arbitrarily corrupt frame bodies error
// cleanly — DecodeFrame must never panic or over-allocate, whatever the
// bytes.  Run with: go test -fuzz FuzzDecodeFrame ./internal/cluster/transport
func FuzzDecodeFrame(f *testing.F) {
	valid := encodeFrame(f, Envelope{From: -1, To: 7, Msg: fuzzMsg{
		U: 123, I: -9, B: true, Bs: []byte("payload"), S: "seed", Seq: []uint64{1, 2},
	}})
	f.Add(valid[frameHeaderLen:])
	gobFrame := encodeFrame(f, Envelope{From: 1, To: 2, Msg: testMsg{Seq: 1, S: "gob"}})
	f.Add(gobFrame[frameHeaderLen:])
	f.Add([]byte{})
	f.Add([]byte{wireVersion})
	f.Add([]byte{wireVersion, formatBinary})
	f.Add([]byte{wireVersion, 99})
	f.Fuzz(func(t *testing.T, body []byte) {
		env, err := DecodeFrame(body) // must not panic
		if err == nil && env.Msg == nil {
			t.Fatal("nil-error decode returned a nil message")
		}
	})
}
