package transport

import (
	"fmt"
	"sync"
	"time"
)

// NodeID identifies an endpoint on the fabric: a cluster node hosting an
// snode, or a client endpoint.
type NodeID int

// TraceContext is the request-tracing context riding every envelope: a
// cluster-unique trace ID, the sender's current span ID (the receiver's
// parent), and the head-sampling decision.  The zero value means
// untraced; on the TCP fabric a zero context costs zero header bytes
// beyond the flags byte (see codec.go).
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Sampled bool
}

// Active reports whether the context carries a sampled trace — the one
// check every instrumentation point makes before doing any trace work.
func (t TraceContext) Active() bool { return t.Sampled && t.TraceID != 0 }

// Envelope is one message in flight.
type Envelope struct {
	From, To NodeID
	// Trace is the tracing context, propagated by value on the in-memory
	// fabric and in the frame header on TCP.
	Trace TraceContext
	// Msg is the payload.  For the TCP fabric every concrete payload type
	// must be registered with encoding/gob (the cluster package registers
	// its protocol messages in init).
	Msg any
}

// Network is the fabric interface.
type Network interface {
	// Register joins an endpoint to the fabric and returns its inbox.  The
	// inbox channel is closed when the network shuts down.  Registering an
	// id twice is an error.
	Register(id NodeID) (<-chan Envelope, error)
	// Unregister removes an endpoint; its inbox is closed and subsequent
	// sends to it fail.
	Unregister(id NodeID) error
	// Send delivers env.Msg to env.To.  Delivery is asynchronous, reliable
	// and FIFO per (From, To) pair.  Send never blocks on slow receivers.
	Send(env Envelope) error
	// Close shuts the fabric down, closing every inbox.
	Close() error
}

// mailbox is an unbounded FIFO delivering into a channel.  Unboundedness
// removes the send-blocks-receive deadlocks a bounded actor fabric invites,
// matching the paper's reliable-cluster-network assumption.  A non-zero
// latency models the interconnect's one-way delay: each envelope becomes
// deliverable latency after it was pushed (FIFO order is preserved because
// the delay is uniform).
//
// The common case — a request/response mailbox that is empty when a
// message arrives — takes a fast path: push places the envelope straight
// into the (buffered) out channel, skipping the pump goroutine and its two
// scheduler handoffs.  The fast path is taken only while the pump has
// nothing queued and nothing in flight, so FIFO order is preserved.
type mailbox struct {
	mu         sync.Mutex
	queue      []timedEnvelope // guarded by mu
	delivering bool            // pump holds an undelivered batch outside the lock; guarded by mu
	wake       chan struct{}
	out        chan Envelope
	closed     bool // guarded by mu
	latency    time.Duration
}

type timedEnvelope struct {
	env Envelope
	due time.Time
}

func newMailbox(latency time.Duration) *mailbox {
	m := &mailbox{
		wake:    make(chan struct{}, 1),
		out:     make(chan Envelope, 256),
		latency: latency,
	}
	go m.pump()
	return m
}

// push enqueues an envelope; returns false if the mailbox is closed.
func (m *mailbox) push(env Envelope) bool {
	te := timedEnvelope{env: env}
	if m.latency > 0 {
		te.due = time.Now().Add(m.latency)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false
	}
	if m.latency == 0 && !m.delivering && len(m.queue) == 0 {
		// Nothing ahead of this envelope: hand it to the receiver
		// directly if the channel has room.  The send happens under m.mu,
		// so pushes cannot reorder against each other, and the pump only
		// sends while delivering is set, so it cannot interleave.
		select {
		case m.out <- env:
			m.mu.Unlock()
			return true
		default:
		}
	}
	m.queue = append(m.queue, te)
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return true
}

// pump moves queued envelopes to the out channel, preserving order and
// honouring each envelope's delivery time.
func (m *mailbox) pump() {
	defer close(m.out)
	for {
		m.mu.Lock()
		for len(m.queue) == 0 {
			if m.closed {
				m.mu.Unlock()
				return
			}
			m.mu.Unlock()
			<-m.wake
			m.mu.Lock()
		}
		batch := m.queue
		m.queue = nil
		m.delivering = true
		m.mu.Unlock()
		for _, te := range batch {
			if m.latency > 0 {
				if wait := time.Until(te.due); wait > 0 {
					time.Sleep(wait)
				}
			}
			m.out <- te.env
		}
		m.mu.Lock()
		m.delivering = false
		m.mu.Unlock()
	}
}

// close marks the mailbox closed and wakes the pump; queued envelopes are
// still delivered before the out channel closes.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// Mem is the in-memory fabric.
type Mem struct {
	mu      sync.RWMutex
	boxes   map[NodeID]*mailbox      // guarded by mu
	faults  *Faults                  // nemesis plan, nil = healthy; guarded by mu
	lines   map[faultLink]*delayLine // per-link delay queues; guarded by mu
	closed  bool                     // guarded by mu
	latency time.Duration
}

// NewMem returns an empty in-memory fabric with zero message latency.
func NewMem() *Mem {
	return &Mem{boxes: make(map[NodeID]*mailbox)}
}

// NewMemLatency returns an in-memory fabric that delivers every message
// after the given one-way delay, modeling a cluster interconnect (tens of
// microseconds on the gigabit networks of the paper's era).  Used by the
// parallelism ablation benchmarks, where serialization cost is latency-
// dominated.
func NewMemLatency(oneWay time.Duration) *Mem {
	return &Mem{boxes: make(map[NodeID]*mailbox), latency: oneWay}
}

// SetFaults attaches a nemesis fault plan to the fabric.  Attach before
// the fabric carries traffic; the plan's rules may then change live
// (Partition, SetLinkDelay, Heal, ...).
func (n *Mem) SetFaults(f *Faults) {
	n.mu.Lock()
	n.faults = f
	n.mu.Unlock()
}

// Register implements Network.
func (n *Mem) Register(id NodeID) (<-chan Envelope, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if _, dup := n.boxes[id]; dup {
		return nil, fmt.Errorf("transport: node %d already registered", id)
	}
	mb := newMailbox(n.latency)
	n.boxes[id] = mb
	return mb.out, nil
}

// Unregister implements Network.
func (n *Mem) Unregister(id NodeID) error {
	n.mu.Lock()
	mb, ok := n.boxes[id]
	if ok {
		delete(n.boxes, id)
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: node %d not registered", id)
	}
	mb.close()
	return nil
}

// Send implements Network.
func (n *Mem) Send(env Envelope) error {
	n.mu.RLock()
	mb, ok := n.boxes[env.To]
	f := n.faults
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("transport: destination %d not registered", env.To)
	}
	if f != nil {
		v := f.judge(env.From, env.To)
		if v.drop {
			// The fabric ate it: the sender sees success, like a lost
			// datagram; in-flight RPCs surface the loss as timeouts.
			return nil
		}
		if v.delay > 0 || n.linePending(env.From, env.To) {
			// Delayed links ride a per-link FIFO queue; once the queue
			// drains after a heal, sends bypass it again.
			n.lineFor(env.From, env.To).push(env, time.Now().Add(v.delay))
			return nil
		}
	}
	if !mb.push(env) {
		return fmt.Errorf("transport: destination %d shutting down", env.To)
	}
	return nil
}

// linePending reports whether the link's delay line (if any) still holds
// undelivered envelopes, in which case new sends must queue behind them
// to preserve the link's FIFO order.
func (n *Mem) linePending(from, to NodeID) bool {
	n.mu.RLock()
	l := n.lines[faultLink{from, to}]
	n.mu.RUnlock()
	return l != nil && l.pending()
}

// lineFor returns the link's delay line, creating it on first use.  The
// line resolves the destination mailbox at delivery time, so an endpoint
// that unregisters mid-delay just drops the late envelopes.
func (n *Mem) lineFor(from, to NodeID) *delayLine {
	k := faultLink{from, to}
	n.mu.RLock()
	l := n.lines[k]
	n.mu.RUnlock()
	if l != nil {
		return l
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if l = n.lines[k]; l != nil {
		return l
	}
	if n.lines == nil {
		n.lines = make(map[faultLink]*delayLine)
	}
	l = newDelayLine(func(env Envelope) {
		n.mu.RLock()
		mb, ok := n.boxes[env.To]
		n.mu.RUnlock()
		if ok {
			mb.push(env)
		}
	})
	n.lines[k] = l
	return l
}

// Close implements Network.
func (n *Mem) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	boxes := n.boxes
	n.boxes = make(map[NodeID]*mailbox)
	lines := n.lines
	n.lines = nil
	n.mu.Unlock()
	for _, l := range lines {
		l.close()
	}
	for _, mb := range boxes {
		mb.close()
	}
	return nil
}
