package transport

import (
	"testing"
	"time"
)

// drainUntilQuiet receives until the inbox stays silent for the given
// window, returning every sequence number seen.
func drainUntilQuiet(in <-chan Envelope, quiet time.Duration) []int {
	var seqs []int
	for {
		select {
		case env, ok := <-in:
			if !ok {
				return seqs
			}
			seqs = append(seqs, env.Msg.(testMsg).Seq)
		case <-time.After(quiet):
			return seqs
		}
	}
}

// setFaults attaches a plan to whichever fabric is under test.
func setFaults(t *testing.T, n Network, f *Faults) {
	t.Helper()
	switch fab := n.(type) {
	case *Mem:
		fab.SetFaults(f)
	case *TCP:
		fab.SetFaults(f)
	default:
		t.Fatalf("unknown fabric %T", n)
	}
}

func TestFaultsPartitionBlocksAndHeals(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			f := NewFaults(1)
			setFaults(t, n, f)
			in1, err := n.Register(1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := n.Register(2); err != nil {
				t.Fatal(err)
			}
			// Pre-partition traffic flows (and, on TCP, establishes the
			// connection the partition must then starve).
			if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: 0}}); err != nil {
				t.Fatal(err)
			}
			recvOne(t, in1)

			f.Partition([]NodeID{1}, []NodeID{2})
			for i := 1; i <= 5; i++ {
				// The send itself must look successful — a partition is
				// silence, not an error the sender can see.
				if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: i}}); err != nil {
					t.Fatalf("send during partition: %v", err)
				}
			}
			if got := drainUntilQuiet(in1, 200*time.Millisecond); len(got) != 0 {
				t.Fatalf("partitioned link delivered %v", got)
			}

			f.Heal()
			if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: 99}}); err != nil {
				t.Fatal(err)
			}
			if got := recvOne(t, in1).Msg.(testMsg).Seq; got != 99 {
				t.Fatalf("post-heal delivery got seq %d, want 99 (lost frames must stay lost)", got)
			}
		})
	}
}

func TestFaultsPartitionOneWay(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			f := NewFaults(2)
			setFaults(t, n, f)
			in1, err := n.Register(1)
			if err != nil {
				t.Fatal(err)
			}
			in2, err := n.Register(2)
			if err != nil {
				t.Fatal(err)
			}
			f.PartitionOneWay([]NodeID{1}, []NodeID{2})
			if err := n.Send(Envelope{From: 1, To: 2, Msg: testMsg{Seq: 1}}); err != nil {
				t.Fatal(err)
			}
			if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: 2}}); err != nil {
				t.Fatal(err)
			}
			if got := recvOne(t, in1).Msg.(testMsg).Seq; got != 2 {
				t.Fatalf("reverse direction got seq %d, want 2", got)
			}
			if got := drainUntilQuiet(in2, 200*time.Millisecond); len(got) != 0 {
				t.Fatalf("blocked direction delivered %v", got)
			}
		})
	}
}

func TestFaultsLinkDelay(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			f := NewFaults(3)
			setFaults(t, n, f)
			in1, err := n.Register(1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := n.Register(2); err != nil {
				t.Fatal(err)
			}
			f.SetLinkDelay([]NodeID{2}, []NodeID{1}, 60*time.Millisecond, 0)
			start := time.Now()
			if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: 1}}); err != nil {
				t.Fatal(err)
			}
			recvOne(t, in1)
			if el := time.Since(start); el < 50*time.Millisecond {
				t.Fatalf("delayed link delivered in %v, want ≥ ~60ms", el)
			}

			// FIFO survives jitter: a later frame drawing a shorter delay
			// must not overtake an earlier one.
			f.SetLinkDelay([]NodeID{2}, []NodeID{1}, 20*time.Millisecond, 15*time.Millisecond)
			const count = 30
			for i := 0; i < count; i++ {
				if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: i}}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < count; i++ {
				if got := recvOne(t, in1).Msg.(testMsg).Seq; got != i {
					t.Fatalf("jittered link reordered: got %d at position %d", got, i)
				}
			}
		})
	}
}

func TestFaultsDelayNoHeadOfLineBlocking(t *testing.T) {
	// A slow 2→1 link must not stall an unrelated 3→1 sender into the
	// same mailbox (the delay queue is per link, not per receiver).
	n := NewMem()
	defer n.Close()
	f := NewFaults(4)
	n.SetFaults(f)
	in1, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(2); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(3); err != nil {
		t.Fatal(err)
	}
	f.SetLinkDelay([]NodeID{2}, []NodeID{1}, 150*time.Millisecond, 0)
	if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Envelope{From: 3, To: 1, Msg: testMsg{Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	first := recvOne(t, in1)
	if first.From != 3 {
		t.Fatalf("fast link waited behind slow link: first delivery from %d", first.From)
	}
	if second := recvOne(t, in1); second.From != 2 {
		t.Fatalf("delayed frame never arrived: second delivery from %d", second.From)
	}
}

func TestFaultsDropRates(t *testing.T) {
	for name, mk := range fabrics() {
		t.Run(name, func(t *testing.T) {
			n := mk()
			defer n.Close()
			f := NewFaults(5)
			setFaults(t, n, f)
			in1, err := n.Register(1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := n.Register(2); err != nil {
				t.Fatal(err)
			}
			f.SetLinkDrop([]NodeID{2}, []NodeID{1}, 1)
			if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: 1}}); err != nil {
				t.Fatal(err)
			}
			if got := drainUntilQuiet(in1, 200*time.Millisecond); len(got) != 0 {
				t.Fatalf("p=1 link delivered %v", got)
			}
			f.SetLinkDrop([]NodeID{2}, []NodeID{1}, 0) // removes the rule
			if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: 2}}); err != nil {
				t.Fatal(err)
			}
			if got := recvOne(t, in1).Msg.(testMsg).Seq; got != 2 {
				t.Fatalf("after rule removal got seq %d", got)
			}
		})
	}
}

func TestTCPDropsNeverCorruptFraming(t *testing.T) {
	// Probabilistic drops on a TCP link remove whole decoded messages;
	// every frame that survives must arrive intact and in order, and the
	// connection must stay usable afterwards.
	n := NewTCP("127.0.0.1")
	defer n.Close()
	f := NewFaults(6)
	n.SetFaults(f)
	in1, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(2); err != nil {
		t.Fatal(err)
	}
	f.SetLinkDrop([]NodeID{2}, []NodeID{1}, 0.5)
	const count = 400
	for i := 0; i < count; i++ {
		if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: i, S: "payload"}}); err != nil {
			t.Fatal(err)
		}
	}
	got := drainUntilQuiet(in1, 500*time.Millisecond)
	if len(got) == 0 || len(got) == count {
		t.Fatalf("received %d of %d at p=0.5 — drops not applied", len(got), count)
	}
	if len(got) < count/5 || len(got) > count*4/5 {
		t.Errorf("received %d of %d at p=0.5 — far outside plausible range", len(got), count)
	}
	// The surviving subset must preserve the link's send order: frames
	// vanish whole, they never tear or reorder the stream.
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("surviving frames reordered: %d after %d", got[i], got[i-1])
		}
	}
	f.Heal()
	if err := n.Send(Envelope{From: 2, To: 1, Msg: testMsg{Seq: 12345}}); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, in1).Msg.(testMsg).Seq; got != 12345 {
		t.Fatalf("connection unusable after lossy period: got seq %d", got)
	}
}

func TestFaultsSeedReproducible(t *testing.T) {
	// Two equally-seeded plans make identical drop decisions; Describe
	// renders the installed rules for scenario logs.
	coinRun := func(seed int64) []bool {
		f := NewFaults(seed)
		f.SetLinkDrop([]NodeID{1}, []NodeID{2}, 0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = f.judge(1, 2).drop
		}
		return out
	}
	a, b := coinRun(42), coinRun(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("coin %d differs across equally-seeded plans", i)
		}
	}
	f := NewFaults(7)
	if f.Seed() != 7 {
		t.Fatalf("Seed() = %d", f.Seed())
	}
	if f.Describe() != "healthy" {
		t.Fatalf("empty plan describes as %q", f.Describe())
	}
	f.Partition([]NodeID{1}, []NodeID{2})
	if d := f.Describe(); d != "block 1→2, block 2→1" {
		t.Fatalf("Describe() = %q", d)
	}
	f.Heal()
	if f.Describe() != "healthy" {
		t.Fatalf("healed plan describes as %q", f.Describe())
	}
}
