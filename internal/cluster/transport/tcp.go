package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"
)

// TCP is a fabric whose messages travel over real TCP connections as
// length-prefixed frames (see codec.go): hot-path payloads use the
// hand-rolled binary codec, the rest ride a per-frame gob fallback.
// Endpoints listen on ephemeral loopback ports; the fabric object doubles
// as the address registry (on a physical cluster this registry is the
// deployment's static node list — the paper's model assumes cluster
// membership is known, §5).
//
// One connection per ordered (From, To) pair preserves the FIFO-per-pair
// guarantee Network requires.  Each outbound connection is drained by a
// dedicated writer goroutine fed from a byte-budgeted queue: senders
// encode and enqueue without blocking (Send never waits on a slow peer),
// the writer dials outside any endpoint-wide lock and flushes only when
// the queue runs dry — many envelopes per syscall under load, prompt
// delivery when idle.  A peer that accepts TCP but stops reading cannot
// grow process memory without bound: once the queue exceeds its budget
// the envelope is dropped, Send fails, and the connection is torn down
// (the next send redials — a recovered peer resumes service, a stalled
// one keeps failing fast).
type TCP struct {
	mu        sync.RWMutex
	addr      string                  // listen address, e.g. "127.0.0.1:0"
	endpoints map[NodeID]*tcpEndpoint // guarded by mu
	budget    int                     // guarded by mu
	faults    *Faults                 // nemesis plan, nil = healthy; guarded by mu
	closed    bool                    // guarded by mu
}

// DefaultWriterBudget bounds the bytes queued on one outbound connection
// awaiting its writer.  Generous — a healthy reader drains far faster
// than this — so hitting it means the peer has genuinely stalled.
const DefaultWriterBudget = 64 << 20

type tcpEndpoint struct {
	id     NodeID
	lis    net.Listener
	box    *mailbox
	budget int
	mu     sync.Mutex
	conns  map[NodeID]*outConn // ordered-pair outbound connections; guarded by mu
	faults *Faults             // nemesis plan, nil = healthy; guarded by mu
	closed bool                // guarded by mu
	wg     sync.WaitGroup
}

// outConn is one outbound ordered-pair connection.  Senders encode their
// envelope straight into the pending slab under the connection lock —
// the byte budget is simply the slab's length — and the writer goroutine
// swaps the slab against a recycled spare and writes it out in one pass:
// no per-envelope allocation, one buffer copy, many envelopes per
// syscall.  The writer owns the net.Conn lifecycle: it dials, drains,
// coalesces flushes, and on any error removes the connection so the next
// send redials.  The slab it currently writes was itself within budget,
// so buffered memory per connection stays under two budgets.
type outConn struct {
	ep     *tcpEndpoint
	to     NodeID
	addr   string
	budget int

	mu     sync.Mutex
	buf    []byte   // pending frames, appended by senders; guarded by mu
	spare  []byte   // recycled slab, swapped in by the writer; guarded by mu
	closed bool     // guarded by mu
	c      net.Conn // set by the writer once dialed; guarded by mu
	wake   chan struct{}
}

// NewTCP returns a TCP fabric listening on the given host (usually
// "127.0.0.1"); each registered endpoint gets its own ephemeral port.
func NewTCP(host string) *TCP {
	return &TCP{addr: host + ":0", endpoints: make(map[NodeID]*tcpEndpoint), budget: DefaultWriterBudget}
}

// SetWriterBudget overrides the per-connection writer-queue byte budget.
// It applies to connections created after the call; use it before the
// fabric carries traffic.
func (t *TCP) SetWriterBudget(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.budget = n
	for _, ep := range t.endpoints {
		ep.mu.Lock()
		ep.budget = n
		ep.mu.Unlock()
	}
}

// SetFaults attaches a nemesis fault plan.  Faults are applied on the
// receive side, after a frame is decoded and before it is delivered, so
// injected drops can never corrupt the framing of the stream they ride.
// Attach before the fabric carries traffic (connections read the plan
// when they are accepted); the plan's rules may then change live.
func (t *TCP) SetFaults(f *Faults) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.faults = f
	for _, ep := range t.endpoints {
		ep.mu.Lock()
		ep.faults = f
		ep.mu.Unlock()
	}
}

// Register implements Network: it starts a listener and accept loop for the
// endpoint.
func (t *TCP) Register(id NodeID) (<-chan Envelope, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if _, dup := t.endpoints[id]; dup {
		return nil, fmt.Errorf("transport: node %d already registered", id)
	}
	lis, err := net.Listen("tcp", t.addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen for node %d: %w", id, err)
	}
	ep := &tcpEndpoint{
		id:     id,
		lis:    lis,
		box:    newMailbox(0),
		budget: t.budget,
		faults: t.faults,
		conns:  make(map[NodeID]*outConn),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	t.endpoints[id] = ep
	return ep.box.out, nil
}

func (ep *tcpEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.lis.Accept()
		if err != nil {
			return // listener closed
		}
		ep.wg.Add(1)
		go ep.readLoop(conn)
	}
}

// frameBufPool holds the read-side frame buffers: one per active read
// loop, grown to the largest frame seen and reused for every subsequent
// frame (DecodeFrame copies what messages keep).
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 4096)
		return &b
	},
}

func (ep *tcpEndpoint) readLoop(conn net.Conn) {
	defer ep.wg.Done()
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	bufp := frameBufPool.Get().(*[]byte)
	defer frameBufPool.Put(bufp)
	ep.mu.Lock()
	faults := ep.faults
	ep.mu.Unlock()
	var hdr [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n < minFrameBody || n > maxFrame {
			log.Printf("transport: node %d: dropping connection: frame body of %d bytes out of range", ep.id, n)
			return
		}
		if cap(*bufp) < int(n) {
			*bufp = make([]byte, n)
		}
		body := (*bufp)[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		env, err := DecodeFrame(body)
		if err != nil {
			// Fail loudly: a mixed-version peer or corrupt stream must
			// surface in logs, not vanish as a silent disconnect.
			log.Printf("transport: node %d: dropping connection: %v", ep.id, err)
			return
		}
		if v := faults.judge(env.From, ep.id); v.drop {
			// Injected loss: the whole decoded message vanishes; the
			// byte stream underneath stays intact.
			continue
		} else if v.delay > 0 {
			// One-way link delay: this connection IS the ordered
			// (From, ep.id) pair, so sleeping here slows only this link
			// and preserves its FIFO order.
			time.Sleep(v.delay)
		}
		if !ep.box.push(env) {
			return
		}
	}
}

// Unregister implements Network.
func (t *TCP) Unregister(id NodeID) error {
	t.mu.Lock()
	ep, ok := t.endpoints[id]
	if ok {
		delete(t.endpoints, id)
	}
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: node %d not registered", id)
	}
	ep.close()
	return nil
}

func (ep *tcpEndpoint) close() {
	ep.lis.Close()
	ep.mu.Lock()
	ep.closed = true
	conns := ep.conns
	ep.conns = make(map[NodeID]*outConn)
	ep.mu.Unlock()
	for _, oc := range conns {
		oc.shut()
	}
	ep.box.close()
}

// errConnClosed reports an enqueue on a connection record that shut down
// under a concurrent writer error; the caller re-resolves and redials.
var errConnClosed = errors.New("transport: connection closed")

// Send implements Network: the envelope is encoded by the sender and
// enqueued on its per-destination connection within the queue's byte
// budget.  Send fails synchronously when either endpoint is off the
// fabric or the destination's writer queue is over budget (stalled
// peer); transmission itself is asynchronous (a connection that later
// breaks surfaces as RPC timeouts, and the next send redials).
func (t *TCP) Send(env Envelope) error {
	t.mu.RLock()
	src, okSrc := t.endpoints[env.From]
	dst, okDst := t.endpoints[env.To]
	t.mu.RUnlock()
	if !okDst {
		return fmt.Errorf("transport: destination %d not registered", env.To)
	}
	if !okSrc {
		return fmt.Errorf("transport: sender %d not registered", env.From)
	}
	oc := src.connTo(env.To, dst.lis.Addr().String())
	if oc == nil {
		return fmt.Errorf("transport: sender %d shutting down", env.From)
	}
	if err := oc.enqueue(env); err != nil {
		if err != errConnClosed {
			return err // over budget: fail fast, no retry
		}
		// The connection failed under a concurrent writer error; fail()
		// already removed it from the endpoint's map, so re-resolving
		// yields a fresh record whose writer redials.
		oc = src.connTo(env.To, dst.lis.Addr().String())
		if oc == nil {
			return fmt.Errorf("transport: sender %d shutting down", env.From)
		}
		if err := oc.enqueue(env); err != nil {
			return fmt.Errorf("transport: send %d→%d: connection unavailable", env.From, env.To)
		}
	}
	return nil
}

// connTo finds or creates the outbound connection record for a
// destination.  No I/O happens under ep.mu: the writer goroutine dials,
// so a slow or unreachable peer never blocks sends to other peers.
func (ep *tcpEndpoint) connTo(to NodeID, addr string) *outConn {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return nil
	}
	if oc, ok := ep.conns[to]; ok {
		return oc
	}
	oc := &outConn{ep: ep, to: to, addr: addr, budget: ep.budget, wake: make(chan struct{}, 1)}
	ep.conns[to] = oc
	ep.wg.Add(1)
	go oc.writeLoop()
	return oc
}

// enqueue encodes the envelope into the pending slab, within the byte
// budget.  The budget bounds the BACKLOG: an envelope is refused only
// when frames are already queued ahead of it — a single frame is always
// admissible on an empty queue (it is bounded by maxFrame anyway), so an
// oversized payload, e.g. a whole-bucket replica sync, can never become
// permanently unsendable.  errConnClosed means the record shut down (the
// caller re-resolves and redials); a budget overflow drops the envelope,
// tears the stalled connection down and returns a descriptive error.
func (oc *outConn) enqueue(env Envelope) error {
	oc.mu.Lock()
	if oc.closed {
		oc.mu.Unlock()
		return errConnClosed
	}
	start := len(oc.buf)
	buf, err := AppendFrame(oc.buf, env)
	if err != nil {
		// Unencodable payload: drop the envelope (as before), keep the
		// connection.
		oc.mu.Unlock()
		log.Printf("transport: node %d→%d: dropping envelope: %v", env.From, env.To, err)
		return nil
	}
	if start > oc.budget {
		// The backlog already queued AHEAD of this envelope exceeds the
		// budget — the writer is not draining (a peer that accepted TCP
		// but stopped reading), so the envelope is dropped and the
		// connection torn down.  Judging the pre-existing backlog rather
		// than the total keeps one admitted oversized frame from
		// condemning the connection while the writer is still busy
		// pushing it out; buffered memory stays bounded by the budget
		// plus one frame (maxFrame) plus the writer's in-flight slab.
		oc.buf = buf[:start]
		oc.mu.Unlock()
		oc.fail()
		return fmt.Errorf("transport: send %d→%d: writer queue over its %d-byte budget (peer not reading); envelope dropped, connection torn down",
			env.From, env.To, oc.budget)
	}
	oc.buf = buf
	oc.mu.Unlock()
	select {
	case oc.wake <- struct{}{}:
	default:
	}
	return nil
}

// shut marks the connection closed and unblocks its writer.
func (oc *outConn) shut() {
	oc.mu.Lock()
	oc.closed = true
	oc.buf = nil
	oc.spare = nil
	c := oc.c
	oc.mu.Unlock()
	select {
	case oc.wake <- struct{}{}:
	default:
	}
	if c != nil {
		c.Close()
	}
}

// fail tears the connection down after an I/O error: queued envelopes are
// dropped (the fabric's reliability model treats a broken peer as gone;
// in-flight RPCs surface it as timeouts) and the record is removed so the
// next send redials.
func (oc *outConn) fail() {
	oc.mu.Lock()
	oc.closed = true
	oc.buf = nil
	oc.spare = nil
	c := oc.c
	oc.mu.Unlock()
	if c != nil {
		c.Close()
	}
	oc.ep.mu.Lock()
	if oc.ep.conns[oc.to] == oc {
		delete(oc.ep.conns, oc.to)
	}
	oc.ep.mu.Unlock()
}

// writeLoop owns the connection: dial, then drain the queue forever,
// copying each pre-encoded frame into the buffered writer and flushing
// only when the queue runs dry — consecutive envelopes coalesce into one
// syscall.
func (oc *outConn) writeLoop() {
	defer oc.ep.wg.Done()
	c, err := net.Dial("tcp", oc.addr)
	if err != nil {
		oc.fail()
		return
	}
	oc.mu.Lock()
	if oc.closed {
		oc.mu.Unlock()
		c.Close()
		return
	}
	oc.c = c
	oc.mu.Unlock()
	bw := bufio.NewWriterSize(c, 64<<10)
	// maxRecycledSlab caps the capacity a slab may keep when recycled: one
	// burst near the budget must not pin tens of MB per connection for its
	// lifetime — an oversized slab is released to the GC and steady-state
	// traffic re-grows a small one.
	const maxRecycledSlab = 1 << 20
	var prev []byte // last written slab, recycled on the next lock pass
	for {
		oc.mu.Lock()
		if prev != nil {
			if oc.spare == nil && !oc.closed && cap(prev) <= maxRecycledSlab {
				oc.spare = prev[:0]
			}
			prev = nil
		}
		for len(oc.buf) == 0 {
			closed := oc.closed
			oc.mu.Unlock()
			// Queue dry: push buffered frames out before sleeping.
			if err := bw.Flush(); err != nil {
				oc.fail()
				return
			}
			if closed {
				c.Close()
				return
			}
			<-oc.wake
			oc.mu.Lock()
		}
		// Swap the pending slab against the recycled spare: senders keep
		// appending while this batch drains, and the two slabs ping-pong
		// so steady-state traffic allocates nothing.
		batch := oc.buf
		oc.buf = oc.spare[:0]
		oc.spare = nil
		oc.mu.Unlock()
		if _, err := bw.Write(batch); err != nil {
			oc.fail()
			return
		}
		prev = batch
	}
}

// Close implements Network.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	eps := t.endpoints
	t.endpoints = make(map[NodeID]*tcpEndpoint)
	t.mu.Unlock()
	for _, ep := range eps {
		ep.close()
	}
	return nil
}
