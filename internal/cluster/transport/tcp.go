package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// TCP is a fabric whose messages travel over real TCP connections encoded
// with encoding/gob.  Endpoints listen on ephemeral loopback ports; the
// fabric object doubles as the address registry (on a physical cluster this
// registry is the deployment's static node list — the paper's model assumes
// cluster membership is known, §5).
//
// One connection per ordered (From, To) pair, dialed lazily, preserves the
// FIFO-per-pair guarantee Network requires.
type TCP struct {
	mu        sync.RWMutex
	addr      string // listen address, e.g. "127.0.0.1:0"
	endpoints map[NodeID]*tcpEndpoint
	closed    bool
}

type tcpEndpoint struct {
	id       NodeID
	lis      net.Listener
	box      *mailbox
	mu       sync.Mutex
	conns    map[NodeID]*outConn // ordered-pair outbound connections
	shutdown chan struct{}
	wg       sync.WaitGroup
}

type outConn struct {
	mu  sync.Mutex
	enc *gob.Encoder
	c   net.Conn
}

// NewTCP returns a TCP fabric listening on the given host (usually
// "127.0.0.1"); each registered endpoint gets its own ephemeral port.
func NewTCP(host string) *TCP {
	return &TCP{addr: host + ":0", endpoints: make(map[NodeID]*tcpEndpoint)}
}

// Register implements Network: it starts a listener and accept loop for the
// endpoint.
func (t *TCP) Register(id NodeID) (<-chan Envelope, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if _, dup := t.endpoints[id]; dup {
		return nil, fmt.Errorf("transport: node %d already registered", id)
	}
	lis, err := net.Listen("tcp", t.addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen for node %d: %w", id, err)
	}
	ep := &tcpEndpoint{
		id:       id,
		lis:      lis,
		box:      newMailbox(0),
		conns:    make(map[NodeID]*outConn),
		shutdown: make(chan struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	t.endpoints[id] = ep
	return ep.box.out, nil
}

func (ep *tcpEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.lis.Accept()
		if err != nil {
			return // listener closed
		}
		ep.wg.Add(1)
		go ep.readLoop(conn)
	}
}

func (ep *tcpEndpoint) readLoop(conn net.Conn) {
	defer ep.wg.Done()
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	for {
		var env Envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		if !ep.box.push(env) {
			return
		}
	}
}

// Unregister implements Network.
func (t *TCP) Unregister(id NodeID) error {
	t.mu.Lock()
	ep, ok := t.endpoints[id]
	if ok {
		delete(t.endpoints, id)
	}
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: node %d not registered", id)
	}
	ep.close()
	return nil
}

func (ep *tcpEndpoint) close() {
	ep.lis.Close()
	ep.mu.Lock()
	for _, oc := range ep.conns {
		oc.c.Close()
	}
	ep.conns = make(map[NodeID]*outConn)
	ep.mu.Unlock()
	ep.box.close()
}

// Send implements Network.  The sender's endpoint dials (or reuses) its
// connection to the destination and gob-encodes the envelope.
func (t *TCP) Send(env Envelope) error {
	t.mu.RLock()
	src, okSrc := t.endpoints[env.From]
	dst, okDst := t.endpoints[env.To]
	t.mu.RUnlock()
	if !okDst {
		return fmt.Errorf("transport: destination %d not registered", env.To)
	}
	if !okSrc {
		return fmt.Errorf("transport: sender %d not registered", env.From)
	}
	oc, err := src.connTo(env.To, dst.lis.Addr().String())
	if err != nil {
		return err
	}
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if err := oc.enc.Encode(&env); err != nil {
		// Drop the broken connection so the next send redials.
		src.mu.Lock()
		if src.conns[env.To] == oc {
			delete(src.conns, env.To)
		}
		src.mu.Unlock()
		oc.c.Close()
		return fmt.Errorf("transport: send %d→%d: %w", env.From, env.To, err)
	}
	return nil
}

func (ep *tcpEndpoint) connTo(to NodeID, addr string) (*outConn, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if oc, ok := ep.conns[to]; ok {
		return oc, nil
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %d→%d: %w", ep.id, to, err)
	}
	oc := &outConn{enc: gob.NewEncoder(c), c: c}
	ep.conns[to] = oc
	return oc, nil
}

// Close implements Network.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	eps := t.endpoints
	t.endpoints = make(map[NodeID]*tcpEndpoint)
	t.mu.Unlock()
	for _, ep := range eps {
		ep.close()
	}
	return nil
}
