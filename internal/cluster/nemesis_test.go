package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dbdht/internal/cluster/transport"
)

// TestFailoverDuringPartitionIsolatingReplica is the compound nemesis
// regression: with R=2, a network partition isolates one snode from its
// peers, and while that partition is open the primary of some of the
// isolated snode's replicated partitions crashes.  The failover election
// must still complete — staleGeometry probes to unreachable members are
// skipped by design (the check is best-effort, like the election it
// guards) — and after the partition heals, anti-entropy must restore
// full coverage with zero acked-write loss.
//
// The partition is snode-only: client links stay healthy, so the
// isolated snode still hears the crash notice and keeps serving its own
// primaries.  That is the interesting regime — both sides of the cut
// observe the crash and run elections with a partial view.
func TestFailoverDuringPartitionIsolatingReplica(t *testing.T) {
	net := transport.NewMem()
	faults := transport.NewFaults(77)
	net.SetFaults(faults)
	c, err := New(Config{
		Pmin: 16, Vmin: 8, Seed: 77, RPCTimeout: 500 * time.Millisecond,
		Replicas: 2, AntiEntropyInterval: 50 * time.Millisecond,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 5; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	growCluster(t, c, 10)

	keys, items := batchKeys(600)
	results, err := c.MPut(items)
	if err != nil {
		t.Fatal(err)
	}
	acked := make(map[string]string) // key → expected value
	for i, r := range results {
		if !r.OK() {
			t.Fatalf("preload MPut %q: %s", r.Key, r.Err)
		}
		acked[keys[i]] = string(items[i].Value)
	}
	// Replication must settle BEFORE the partition opens: the write path
	// acks once the primary holds the data even when a replica is
	// unreachable (the lag is repaired by anti-entropy), so keys acked
	// from here on may exist only on their primaries until the heal.
	waitConverged(t, c)

	ids := c.Snodes()
	victim, isolated := ids[1], ids[len(ids)-1]
	var majority []transport.NodeID
	for _, id := range ids {
		if id != isolated {
			majority = append(majority, id)
		}
	}
	faults.Partition([]transport.NodeID{isolated}, majority)

	// Writer keeps batching through the blackout; only acked results
	// count.  Batches routed at the dead snode burn an RPC timeout and
	// come back unacked — that is the expected degraded mode.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ackedMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]KV, 16)
			for j := range batch {
				k := fmt.Sprintf("cut-%04d-%02d", round, j)
				batch[j] = KV{Key: k, Value: []byte("v-" + k)}
			}
			res, err := c.MPut(batch)
			if err != nil {
				continue
			}
			ackedMu.Lock()
			for _, r := range res {
				if r.OK() {
					acked[r.Key] = "v-" + r.Key
				}
			}
			ackedMu.Unlock()
		}
	}()

	time.Sleep(20 * time.Millisecond) // overlap the writer with the crash
	if err := c.KillSnode(victim); err != nil {
		t.Fatal(err)
	}
	time.Sleep(600 * time.Millisecond) // write into the partitioned, degraded cluster
	faults.Heal()
	time.Sleep(100 * time.Millisecond) // a little post-heal traffic too
	close(stop)
	wg.Wait()

	// Anti-entropy on the healed view re-replicates everything the cut
	// and the crash left lagging.
	waitConverged(t, c)

	ackedKeys := make([]string, 0, len(acked))
	for k := range acked {
		ackedKeys = append(ackedKeys, k)
	}
	res, err := c.MGet(ackedKeys)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for _, r := range res {
		if !r.OK() || !r.Found || string(r.Value) != acked[r.Key] {
			lost++
			if lost <= 5 {
				t.Errorf("acked key %q unreadable after heal: %+v", r.Key, r)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("lost %d of %d acked keys (crash during partition, after heal)", lost, len(ackedKeys))
	}
	st := c.StatsTotal()
	if st.Promotions == 0 {
		t.Fatal("no replica was promoted for the crashed primary's partitions")
	}
	if st.Elections == 0 {
		t.Fatal("no failover election ran despite a primary crash")
	}
}
