package cluster

import (
	"fmt"
	"testing"
	"time"

	"dbdht/internal/cluster/transport"
)

// loadedCluster boots a cluster, loads keys through the batch plane and
// returns the keys — every touched partition's route is now cached at the
// handle.
func loadedCluster(t *testing.T, r int, seed int64) (*Cluster, []string) {
	t.Helper()
	c, err := New(Config{
		Pmin: 32, Vmin: 8, Seed: seed, RPCTimeout: 20 * time.Second,
		Replicas: r, AntiEntropyInterval: 25 * time.Millisecond,
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 4; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < 12; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]string, 512)
	items := make([]KV, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("purge-%04d", i)
		items[i] = KV{Key: keys[i], Value: []byte("v")}
	}
	res, err := c.MPut(items)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !r.OK() {
			t.Fatalf("preload %q: %s", r.Key, r.Err)
		}
	}
	// A second pass so the handle's cache holds a route for every key.
	if _, err := c.MGet(keys); err != nil {
		t.Fatal(err)
	}
	return c, keys
}

// TestRemoveSnodePurgesRoutes: a graceful departure must leave no stale
// pointer behind — the first post-removal batch (reads AND writes) takes
// zero failed round-trips.
func TestRemoveSnodePurgesRoutes(t *testing.T) {
	c, keys := loadedCluster(t, 1, 51)
	victim := c.Snodes()[1]
	if err := c.RemoveSnode(victim); err != nil {
		t.Fatal(err)
	}
	// No cached route may still aim at the leaver, as primary or replica.
	c.routeMu.Lock()
	for p, rt := range c.routes {
		if rt.ref.Host == victim {
			c.routeMu.Unlock()
			t.Fatalf("route %v still aims at removed snode %d", p, victim)
		}
		for _, rep := range rt.replicas {
			if rep == victim {
				c.routeMu.Unlock()
				t.Fatalf("route %v still lists removed snode %d as a replica", p, victim)
			}
		}
	}
	c.routeMu.Unlock()

	before := c.subFails.Load()
	res, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !r.OK() || !r.Found {
			t.Fatalf("key %q unreadable after graceful removal: %+v", r.Key, r)
		}
	}
	items := make([]KV, len(keys))
	for i, k := range keys {
		items[i] = KV{Key: k, Value: []byte("v2")}
	}
	wres, err := c.MPut(items)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range wres {
		if !r.OK() {
			t.Fatalf("key %q unwritable after graceful removal: %s", r.Key, r.Err)
		}
	}
	if fails := c.subFails.Load() - before; fails != 0 {
		t.Fatalf("first post-removal batches took %d failed round-trips, want 0", fails)
	}
}

// TestKillSnodePurgesRoutes: after a crash with R=2, the purge retargets
// the dead primary's routes at its surviving replicas, so the first
// post-crash read batch is served entirely from replicas with zero
// failed round-trips — not by discovering the death one failed RPC at a
// time.
func TestKillSnodePurgesRoutes(t *testing.T) {
	c, keys := loadedCluster(t, 2, 52)
	victim := c.Snodes()[1]
	if err := c.KillSnode(victim); err != nil {
		t.Fatal(err)
	}
	c.routeMu.Lock()
	deadRoutes := 0
	for p, rt := range c.routes {
		if rt.ref.Host == victim && !rt.dead {
			c.routeMu.Unlock()
			t.Fatalf("route %v still aims live traffic at crashed snode %d", p, victim)
		}
		if rt.dead {
			deadRoutes++
		}
	}
	c.routeMu.Unlock()
	if deadRoutes == 0 {
		t.Fatal("no route was retargeted at the crashed primary's replicas")
	}

	before := c.subFails.Load()
	res, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !r.OK() || !r.Found {
			t.Fatalf("key %q unreadable after crash: %+v", r.Key, r)
		}
	}
	if fails := c.subFails.Load() - before; fails != 0 {
		t.Fatalf("first post-crash read batch took %d failed round-trips, want 0", fails)
	}
	if c.StatsTotal().FailoverReads == 0 {
		t.Fatal("no read was served from a replica — the dead routes were not exercised")
	}
}
