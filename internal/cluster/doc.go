// Package cluster is the runtime substrate of the model: it turns the
// algorithmic local approach (package core) into a live system of *software
// nodes* — the paper's snodes (§2.1.1) — that exchange protocol messages
// over a transport fabric, store real key/value data in their partitions,
// and rebalance by actually shipping partition contents between cluster
// nodes.
//
// The architecture follows the paper §3 directly:
//
//   - every snode is an actor (goroutine + unbounded inbox) hosting vnodes;
//   - each group of vnodes has a *leader* snode holding the authoritative
//     LPDR; balancement events within a group are serialized by its leader,
//     while different groups progress in parallel — the paper's central
//     parallelism claim;
//   - vnode creation follows §3.6: draw r ∈ R_h, route a lookup to the
//     victim vnode, ask the victim group's leader to run the §2.5 algorithm
//     over its LPDR, splitting the group first when it is full (§3.7);
//   - lookups route by *custody forwarding*: when a partition leaves a
//     host, the host keeps a tombstone pointing at the new owner, so any
//     stale request chases the chain of custody to the current owner.
//
// The runtime has grown well past the paper's failure-free model (§5):
//
//   - the data plane is batched end to end (batch.go): the handle groups
//     keys by believed owner via a learned route cache and fans sub-batches
//     out in parallel, one per owner, single-key operations riding as
//     one-item batches;
//   - R-way partition replication (replica.go) keeps R−1 replica buckets
//     per partition on deterministically placed snodes, with synchronous
//     write fan-out, client-side failover reads, and background
//     anti-entropy repair — an abrupt snode crash with R ≥ 2 loses no
//     acknowledged write;
//   - partitions move by chunked live migration (migrate.go): the bucket
//     keeps serving reads AND writes while its contents stream out in
//     bounded chunks, freezing only for the final delta round-trip;
//   - an autonomous load-aware balancer (balancer.go, load.go) watches
//     per-bucket EWMA traffic rates and capacity-normalized quotas and
//     moves enrollment toward capacity-proportional targets through the
//     ordinary §3.6 join/leave machinery;
//   - hot-path messages ride a hand-rolled binary frame codec (wire.go)
//     over the TCP fabric, with gob retained only for rare control
//     messages;
//   - crash-durable storage (durable.go, internal/wal): every local
//     mutation is journaled to a per-snode write-ahead log before ack,
//     periodic snapshots truncate the log, and a restarted snode
//     (Cluster.RestartSnode) replays snapshot + tail before serving — an
//     R=1 single-snode restart loses zero acknowledged writes.
//
// See docs/ARCHITECTURE.md for the layer map and lifecycle walkthroughs,
// and docs/WIRE.md for the wire protocol and journal record formats.
package cluster
