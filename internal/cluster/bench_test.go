package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dbdht/internal/cluster/transport"
)

func benchCluster(b *testing.B, pmin, vmin, snodes, vnodes int) *Cluster {
	b.Helper()
	c, err := New(Config{Pmin: pmin, Vmin: vmin, Seed: 1, RPCTimeout: 60 * time.Second}, transport.NewMem())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	for i := 0; i < snodes; i++ {
		if _, err := c.AddSnode(); err != nil {
			b.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < vnodes; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkPut measures the end-to-end data-plane write path (client →
// entry snode → owner → client) through the message fabric.
func BenchmarkPut(b *testing.B) {
	c := benchCluster(b, 32, 8, 8, 32)
	val := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put(fmt.Sprintf("bench-key-%d", i%4096), val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGet measures the read path.
func BenchmarkGet(b *testing.B) {
	c := benchCluster(b, 32, 8, 8, 32)
	for i := 0; i < 4096; i++ {
		if err := c.Put(fmt.Sprintf("bench-key-%d", i), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get(fmt.Sprintf("bench-key-%d", i%4096)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelJoins is the ablation behind the paper's motivation
// (§3, first paragraph): with the *global* approach every vnode creation
// involves the whole DHT, so consecutive creations execute serially; the
// *local* approach serializes only within a group, so creations hitting
// different groups proceed in parallel.
//
// local: Vmin=4 over 64 existing vnodes ⇒ ~8–16 groups ⇒ concurrent joins
// land on different leaders.  global-like: Vmin=512 ⇒ one group ⇒ one
// leader serializes everything.  Same cluster size, same join count;
// compare ns/op.  The fabric models a 50µs one-way interconnect delay —
// balancement cost is latency-dominated on a real cluster, which is exactly
// why the paper parallelizes it.
func BenchmarkParallelJoins(b *testing.B) {
	const snodes, existing, joins = 8, 64, 32
	for _, cfg := range []struct {
		name string
		vmin int
	}{
		{"local-Vmin=4", 4},
		{"globalized-Vmin=512", 512},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, err := New(Config{Pmin: 8, Vmin: cfg.vmin, Seed: int64(i), RPCTimeout: 120 * time.Second}, transport.NewMemLatency(50*time.Microsecond))
				if err != nil {
					b.Fatal(err)
				}
				for s := 0; s < snodes; s++ {
					if _, err := c.AddSnode(); err != nil {
						b.Fatal(err)
					}
				}
				ids := c.Snodes()
				for v := 0; v < existing; v++ {
					if _, _, err := c.CreateVnode(ids[v%len(ids)]); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				var wg sync.WaitGroup
				errs := make(chan error, joins)
				for j := 0; j < joins; j++ {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						if _, _, err := c.CreateVnode(ids[j%len(ids)]); err != nil {
							errs <- err
						}
					}(j)
				}
				wg.Wait()
				b.StopTimer()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
				c.Close()
			}
		})
	}
}

// BenchmarkMigrationCost reports the data volume moved per join: the
// storage/time resource the paper trades against balancement quality
// (§4.1.2).
func BenchmarkMigrationCost(b *testing.B) {
	const keys = 8192
	b.ReportAllocs()
	var keysMoved, joins int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := New(Config{Pmin: 16, Vmin: 4, Seed: int64(i), RPCTimeout: 60 * time.Second}, transport.NewMem())
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 4; s++ {
			if _, err := c.AddSnode(); err != nil {
				b.Fatal(err)
			}
		}
		ids := c.Snodes()
		for v := 0; v < 8; v++ {
			if _, _, err := c.CreateVnode(ids[v%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
		for k := 0; k < keys; k++ {
			if err := c.Put(fmt.Sprintf("k%d", k), []byte("0123456789abcdef")); err != nil {
				b.Fatal(err)
			}
		}
		before := c.StatsTotal().KeysMoved
		b.StartTimer()
		for v := 0; v < 8; v++ {
			if _, _, err := c.CreateVnode(ids[v%len(ids)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		keysMoved += c.StatsTotal().KeysMoved - before
		joins += 8
		c.Close()
	}
	b.ReportMetric(float64(keysMoved)/float64(joins), "keys-moved/join")
}
