package cluster

import (
	"fmt"
	"log/slog"
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/core"
	"dbdht/internal/hashspace"
)

// Config parameterizes a cluster DHT.  Pmin and Vmin are the model's two
// parameters (§4.1); the rest tune the runtime.
type Config struct {
	Pmin int
	Vmin int
	// RPCTimeout bounds every internal request/response exchange
	// (default 30s — generous, because the model assumes a reliable
	// cluster network and a timeout indicates a bug, not a failure).
	RPCTimeout time.Duration
	// MaxHops bounds lookup/forwarding chains (default 512).
	MaxHops int
	// Seed derives each snode's private RNG.
	Seed int64
	// Replicas is R, the number of copies of every partition (primary
	// included).  1 (the default) disables replication, matching the
	// paper's failure-free model; R ≥ 2 keeps R−1 replica buckets on
	// other snodes and survives abrupt single-snode crashes for reads.
	Replicas int
	// AntiEntropyInterval paces the background replica reconciliation
	// pass (default 1s; only runs when Replicas > 1).
	AntiEntropyInterval time.Duration
	// FreezeTimeout bounds how long a batch write waits for a frozen
	// (mid-transfer) partition to settle before failing per key
	// (default 5s).
	FreezeTimeout time.Duration
	// Transfer selects the victim-partition policy.  §2.5 step 4a says
	// "choose a victim partition" without fixing the choice; the policy is
	// invisible to balancement quality (all partitions in a scope have the
	// same size) but changes the *migration cost* in moved keys.
	Transfer TransferPolicy
	// LoadInterval paces the per-bucket EWMA load accounting tick
	// (default 500ms; see load.go).
	LoadInterval time.Duration
	// MigrationChunkKeys bounds how many keys one chunk of a live
	// partition migration carries (default 512; see migrate.go).
	MigrationChunkKeys int
	// MigrationMaxDeltaRounds bounds how many live delta rounds a
	// migration spends chasing concurrent writes before freezing for the
	// final delta (default 4).
	MigrationMaxDeltaRounds int
	// Balance configures the autonomous load-aware balancer at the
	// cluster handle (see balancer.go).  Zero value: background loop off,
	// BalanceNow still available with default thresholds.
	Balance BalanceConfig
	// Durability configures the per-snode write-ahead log and snapshots
	// (see durable.go).  Zero value: no disk I/O on any path.
	Durability DurabilityConfig
	// FailoverPingInterval paces the cluster handle's liveness detector:
	// every interval each snode is pinged, and FailoverPingMisses
	// consecutive misses declare it dead and trigger automatic failover
	// (exactly as if KillSnode had been called).  0 (the default)
	// disables the detector — explicit KillSnode still fails over.
	FailoverPingInterval time.Duration
	// FailoverPingMisses is how many consecutive missed pings declare an
	// snode dead (default 3; only meaningful with FailoverPingInterval).
	FailoverPingMisses int
	// TraceSample is the head-sampling probability for request tracing
	// (0, the default, disables tracing; 1 traces every operation).  See
	// trace.go.  Adjustable at runtime via Cluster.SetTraceSampling.
	TraceSample float64
	// TraceBufferSize is the per-snode span ring capacity (default 4096).
	TraceBufferSize int
	// SlowOpThreshold, when non-zero, logs a structured breakdown of any
	// client batch operation slower than this (traced operations include
	// their full span tree).
	SlowOpThreshold time.Duration
	// Logger receives structured logs from the cluster, snodes and WALs.
	// Nil (the default) discards everything.
	Logger *slog.Logger
}

// TransferPolicy is the victim-partition selection rule.
type TransferPolicy int

const (
	// TransferRandom picks uniformly among the victim's partitions (the
	// default; matches the simulator).
	TransferRandom TransferPolicy = iota
	// TransferFewestKeys picks the partition currently storing the fewest
	// keys, minimizing data movement per handover.
	TransferFewestKeys
)

func (c Config) withDefaults() (Config, error) {
	if c.Pmin < 1 || c.Pmin&(c.Pmin-1) != 0 {
		return c, fmt.Errorf("cluster: Pmin must be a positive power of two, got %d", c.Pmin)
	}
	if c.Vmin < 1 || c.Vmin&(c.Vmin-1) != 0 {
		return c, fmt.Errorf("cluster: Vmin must be a positive power of two, got %d", c.Vmin)
	}
	if c.RPCTimeout == 0 {
		c.RPCTimeout = 30 * time.Second
	}
	if c.MaxHops == 0 {
		c.MaxHops = 512
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Replicas < 1 {
		return c, fmt.Errorf("cluster: Replicas must be ≥ 1, got %d", c.Replicas)
	}
	if c.AntiEntropyInterval == 0 {
		c.AntiEntropyInterval = time.Second
	}
	if c.FreezeTimeout == 0 {
		c.FreezeTimeout = 5 * time.Second
	}
	if c.LoadInterval == 0 {
		c.LoadInterval = 500 * time.Millisecond
	}
	if c.MigrationChunkKeys == 0 {
		c.MigrationChunkKeys = 512
	}
	if c.MigrationMaxDeltaRounds == 0 {
		c.MigrationMaxDeltaRounds = 4
	}
	if c.Balance.QuotaDeviation == 0 {
		c.Balance.QuotaDeviation = 0.15
	}
	if c.Balance.MaxMovesPerRound == 0 {
		c.Balance.MaxMovesPerRound = 2
	}
	if c.Durability.Dir != "" && c.Durability.SnapshotInterval == 0 {
		c.Durability.SnapshotInterval = 30 * time.Second
	}
	if c.FailoverPingMisses == 0 {
		c.FailoverPingMisses = 3
	}
	if c.TraceBufferSize == 0 {
		c.TraceBufferSize = defaultTraceBufferSize
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c, nil
}

// vmax returns 2·Vmin (invariant L2).
func (c Config) vmax() int { return 2 * c.Vmin }

// Stats counts an snode's runtime work; fields are atomic so samplers never
// contend with the actor.
type Stats struct {
	MsgsIn         atomic.Int64
	Forwards       atomic.Int64
	PartitionsSent atomic.Int64
	KeysMoved      atomic.Int64
	SplitAlls      atomic.Int64
	GroupSplits    atomic.Int64
	JoinsLed       atomic.Int64
	LeavesLed      atomic.Int64
	DataOps        atomic.Int64
	Requeues       atomic.Int64
	Batches        atomic.Int64
	ReplWrites     atomic.Int64 // write operations applied to replica buckets
	ReplRepairs    atomic.Int64 // buckets shipped by anti-entropy repair
	ReplLagged     atomic.Int64 // replica exchanges that failed (lagging replica)
	FailoverReads  atomic.Int64 // reads served from the replica store
	ChunksSent     atomic.Int64 // live-migration chunks streamed
	MigAborts      atomic.Int64 // live migrations aborted (bucket back to live)
	FreezeTimeouts atomic.Int64 // writes failed because a frozen partition never settled
	Elections      atomic.Int64 // failover elections this snode coordinated
	Promotions     atomic.Int64 // replica buckets this snode promoted to primary
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	MsgsIn, Forwards, PartitionsSent, KeysMoved int64
	SplitAlls, GroupSplits, JoinsLed, LeavesLed int64
	DataOps, Requeues, Batches                  int64
	ReplWrites, ReplRepairs, ReplLagged         int64
	FailoverReads                               int64
	ChunksSent, MigAborts, FreezeTimeouts       int64
	Elections, Promotions                       int64
	// FailoverDetects counts snodes the cluster handle's liveness
	// detector declared dead; it is handle-level, set only in
	// Cluster.StatsTotal (zero in per-snode snapshots).
	FailoverDetects int64
}

func (s *Stats) snapshot() StatsSnapshot {
	return StatsSnapshot{
		MsgsIn: s.MsgsIn.Load(), Forwards: s.Forwards.Load(),
		PartitionsSent: s.PartitionsSent.Load(), KeysMoved: s.KeysMoved.Load(),
		SplitAlls: s.SplitAlls.Load(), GroupSplits: s.GroupSplits.Load(),
		JoinsLed: s.JoinsLed.Load(), LeavesLed: s.LeavesLed.Load(),
		DataOps: s.DataOps.Load(), Requeues: s.Requeues.Load(),
		Batches:    s.Batches.Load(),
		ReplWrites: s.ReplWrites.Load(), ReplRepairs: s.ReplRepairs.Load(),
		ReplLagged: s.ReplLagged.Load(), FailoverReads: s.FailoverReads.Load(),
		ChunksSent: s.ChunksSent.Load(), MigAborts: s.MigAborts.Load(),
		FreezeTimeouts: s.FreezeTimeouts.Load(),
		Elections:      s.Elections.Load(), Promotions: s.Promotions.Load(),
	}
}

// bucketState is a bucket's lifecycle phase.  Transitions are made while
// holding BOTH s.mu and the bucket's own mutex, so either lock alone makes
// a read race-free: the batch path checks state under bucket.mu without
// touching the snode-wide lock.
type bucketState uint8

const (
	// bucketLive serves reads and writes.
	bucketLive bucketState = iota
	// bucketFrozen is mid-transfer: reads ok, writes requeued until the
	// transfer settles (back to live on failure, dead on success).
	bucketFrozen
	// bucketDead has been shipped away or split; a batch holding a stale
	// pointer re-classifies and chases the custody chain.
	bucketDead
)

// bucket is one partition's key/value store behind its own lock — the
// striping that lets concurrent batches for different partitions on the
// same snode proceed without contending on the snode-wide mutex.  s.mu
// still guards the *maps* of buckets (ownership, custody, membership);
// the data inside a bucket is guarded by the bucket's mutex alone.
type bucket struct {
	mu sync.RWMutex
	// state transitions under BOTH s.mu and mu (setStateLocked), so a
	// read under either lock is race-free; guarded by mu as far as the
	// analyzer can see — single-lock readers under s.mu carry a
	// per-site suppression.
	state bucketState
	m     map[string][]byte // guarded by mu
	// ver counts write batches applied to this bucket (guarded by mu).
	// It piggybacks on the replica fan-out so replicas can rank
	// themselves by recency in a failover election; a promoted bucket
	// inherits the replica's version so it keeps climbing.
	ver uint64
	// mig is non-nil while the bucket streams out in a chunked live
	// migration (see migrate.go).  Like state, the pointer transitions
	// under BOTH s.mu and mu, so a read under either lock is race-free;
	// the dirty set inside is guarded by mu alone.
	mig *migSender

	// Load window counters, bumped atomically on the data path and folded
	// into the EWMA rates by the snode's load ticker (load.go).
	nReads, nWrites, nBytes atomic.Int64
	rates                   loadRates // guarded by mu
}

// newBucket wraps a key/value map as a live bucket.
func newBucket(m map[string][]byte) *bucket {
	if m == nil {
		m = make(map[string][]byte)
	}
	return &bucket{m: m}
}

// setStateLocked transitions the bucket's lifecycle state.  Caller holds
// s.mu; the bucket's own mutex is taken here, completing the dual-lock
// write that makes single-lock reads safe.
func (b *bucket) setStateLocked(st bucketState) {
	b.mu.Lock()
	b.state = st
	if st == bucketDead {
		b.m = nil
	}
	b.mu.Unlock()
}

// keys returns the bucket's current key count.
func (b *bucket) keys() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.m)
}

// vnodeState is one hosted vnode: its group binding, its partitions at the
// group's splitlevel, and the stored data, bucketed per partition (behind
// per-partition locks) so a transfer ships — and concurrent batches lock —
// one bucket.
type vnodeState struct {
	name   VnodeName
	group  core.GroupID
	level  uint8
	joined bool
	parts  map[hashspace.Partition]*bucket
}

// Snode is one software node (§2.1.1): an actor hosting vnodes, holding
// LPDR replicas for the groups its vnodes belong to, and — when it leads a
// group — running that group's balancement events serially while other
// groups proceed in parallel on their own leaders.
type Snode struct {
	id    transport.NodeID
	cfg   Config
	net   transport.Network
	inbox <-chan transport.Envelope

	rngMu sync.Mutex
	rng   *rand.Rand // guarded by rngMu

	mu        sync.Mutex
	vnodes    map[VnodeName]*vnodeState                  // guarded by mu
	owned     map[hashspace.Partition]ownedRef           // guarded by mu; ownership index over every hosted vnode's partitions
	ownedLvls levelSet                                   // guarded by mu
	nextLocal int                                        // guarded by mu
	tombs     map[hashspace.Partition]ownerRef           // guarded by mu; custody forwarding pointers
	tombLvls  levelSet                                   // guarded by mu
	cache     map[hashspace.Partition]ownerRef           // guarded by mu; requester-side accelerator
	cacheLvls levelSet                                   // guarded by mu
	boot      ownerRef                                   // guarded by mu
	hasBoot   bool                                       // guarded by mu
	replicas  map[core.GroupID]*lpdrState                // guarded by mu
	led       map[core.GroupID]*ledGroup                 // guarded by mu
	view      []transport.NodeID                         // guarded by mu; sorted DHT membership (replica placement)
	viewEpoch uint64                                     // guarded by mu; highest membership epoch seen
	rparts    map[hashspace.Partition]map[string][]byte  // guarded by mu; replica buckets backed for other primaries
	rpartLvls levelSet                                   // guarded by mu
	migIn     map[hashspace.Partition]*migInbound        // guarded by mu; staging buckets of inbound live migrations
	rprov     map[hashspace.Partition]bool               // guarded by mu; replica buckets not yet full-synced (write-created)
	rmeta     map[hashspace.Partition]*replMeta          // guarded by mu; volatile failover metadata per replica bucket
	placed    map[hashspace.Partition][]transport.NodeID // guarded by mu; replica hosts last reconciled per owned partition
	inDoubt   map[hashspace.Partition]*migIntent         // guarded by mu; unresolved journaled migration intents (recovery)

	// sendOrd serializes replica-plane sends per destination, so a full
	// sync and the writes racing it reach a replica in an order
	// consistent with the primary's apply order (see syncReplica).
	sendOrdMu sync.Mutex
	sendOrd   map[transport.NodeID]*sync.Mutex // guarded by sendOrdMu

	pendMu  sync.Mutex
	pending map[uint64]chan any // guarded by pendMu
	opSeq   atomic.Uint64

	// dur is the durability layer (nil when Config.Durability is off);
	// crashed marks an abrupt stop (KillSnode), which abandons the WAL's
	// userspace buffer instead of flushing it — simulating process death.
	dur     *durable
	crashed atomic.Bool

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}

	stats Stats

	// Observability: the span ring and latency histograms (trace.go), a
	// sampler for snode-originated traces (migrations), and this snode's
	// structured logger.
	tracer  *tracer
	lat     *latencies
	sampler sampler
	log     *slog.Logger

	// Test-only crash injection points for the two-phase migration
	// protocol: when non-nil and returning an error, migratePartition
	// bails out silently right before / right after the receiver-commit
	// RPC, simulating a sender that died at the worst possible moment.
	testCrashBeforeCommit func(hashspace.Partition) error
	testCrashAfterCommit  func(hashspace.Partition) error
}

// newSnode registers and starts an snode actor on the fabric.  With
// durability configured, the snode first recovers its state from
// snapshot + WAL tail — BEFORE joining the fabric, so no message ever
// observes a half-recovered store.
func newSnode(id transport.NodeID, cfg Config, net transport.Network) (*Snode, error) {
	s := &Snode{
		id:       id,
		cfg:      cfg,
		net:      net,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ int64(uint64(id)*0x9E3779B97F4A7C15))),
		vnodes:   make(map[VnodeName]*vnodeState),
		owned:    make(map[hashspace.Partition]ownedRef),
		tombs:    make(map[hashspace.Partition]ownerRef),
		cache:    make(map[hashspace.Partition]ownerRef),
		replicas: make(map[core.GroupID]*lpdrState),
		led:      make(map[core.GroupID]*ledGroup),
		rparts:   make(map[hashspace.Partition]map[string][]byte),
		rprov:    make(map[hashspace.Partition]bool),
		rmeta:    make(map[hashspace.Partition]*replMeta),
		migIn:    make(map[hashspace.Partition]*migInbound),
		placed:   make(map[hashspace.Partition][]transport.NodeID),
		inDoubt:  make(map[hashspace.Partition]*migIntent),
		sendOrd:  make(map[transport.NodeID]*sync.Mutex),
		pending:  make(map[uint64]chan any),
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
		tracer:   newTracer(cfg.TraceBufferSize),
		lat:      newLatencies(),
		log:      cfg.Logger.With("snode", int(id)),
	}
	s.sampler.setRate(cfg.TraceSample)
	if cfg.Durability.Dir != "" {
		if err := s.openDurability(); err != nil {
			return nil, err
		}
	}
	inbox, err := net.Register(id)
	if err != nil {
		if s.dur != nil {
			_ = s.dur.log.Close()
		}
		return nil, err
	}
	s.inbox = inbox
	// Read recovery state BEFORE the actor loop starts: once loop() runs,
	// s.inDoubt belongs to s.mu and an unlocked read here would race with
	// intent resolution (caught by the lockguard analyzer).
	hasInDoubt := len(s.inDoubt) > 0
	go s.loop()
	go s.loadLoop()
	if cfg.Replicas > 1 {
		go s.antiEntropyLoop()
	}
	if hasInDoubt {
		go s.resolveIntents()
	}
	if s.dur != nil && s.dur.interval > 0 {
		go s.snapshotLoop()
	}
	return s, nil
}

// ID returns the snode's fabric endpoint id.
func (s *Snode) ID() transport.NodeID { return s.id }

// stop terminates the actor; in-flight operations fail with timeouts.
// With durability on, a graceful stop flushes and fsyncs the WAL; a
// crash-stop (KillSnode set s.crashed) abandons the userspace buffer —
// only records already handed to the OS (and, under fsync=batch, every
// acknowledged one) survive, exactly like a process dying mid-append.
func (s *Snode) stop() {
	s.stopOnce.Do(func() {
		close(s.stopCh)
		s.net.Unregister(s.id)
		<-s.done
		s.mu.Lock()
		for _, lg := range s.led {
			lg.ops.close()
		}
		s.mu.Unlock()
		if s.dur != nil {
			if s.crashed.Load() {
				s.dur.log.Abandon()
			} else {
				_ = s.dur.log.Close()
			}
		}
	})
}

// randUint64 draws from the snode's private RNG safely.
func (s *Snode) randUint64() uint64 {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Uint64()
}

func (s *Snode) randIntn(n int) int {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return s.rng.Intn(n)
}

func (s *Snode) randShuffle(n int, swap func(i, j int)) {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	s.rng.Shuffle(n, swap)
}

// send fires one message; errors mean the destination left the fabric,
// which the failure-free model treats as a programming error surfaced to
// callers via timeouts.
func (s *Snode) send(to transport.NodeID, msg any) {
	_ = s.net.Send(transport.Envelope{From: s.id, To: to, Msg: msg})
}

// sendTr is send with a trace context riding the envelope.
func (s *Snode) sendTr(to transport.NodeID, tr transport.TraceContext, msg any) {
	_ = s.net.Send(transport.Envelope{From: s.id, To: to, Trace: tr, Msg: msg})
}

// rpc sends a correlated request and waits for its response.
func (s *Snode) rpc(to transport.NodeID, build func(op uint64) any) (any, error) {
	return s.rpcTr(to, transport.TraceContext{}, build)
}

// rpcTr is rpc with a trace context riding the request envelope.
func (s *Snode) rpcTr(to transport.NodeID, tr transport.TraceContext, build func(op uint64) any) (any, error) {
	return s.rpcTimeout(to, tr, s.cfg.RPCTimeout, build)
}

// rpcTimeout is rpcTr with an explicit deadline, for callers that retry
// on their own (e.g. the migration-intent resolver) and want a probe to
// fail fast instead of burning the full configured RPC timeout.
func (s *Snode) rpcTimeout(to transport.NodeID, tr transport.TraceContext, timeout time.Duration, build func(op uint64) any) (any, error) {
	op := s.opSeq.Add(1)
	ch := make(chan any, 1)
	s.pendMu.Lock()
	s.pending[op] = ch
	s.pendMu.Unlock()
	defer func() {
		s.pendMu.Lock()
		delete(s.pending, op)
		s.pendMu.Unlock()
	}()
	if err := s.net.Send(transport.Envelope{From: s.id, To: to, Trace: tr, Msg: build(op)}); err != nil {
		return nil, err
	}
	select {
	case v := <-ch:
		return v, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("cluster: snode %d: rpc to %d timed out", s.id, to)
	case <-s.stopCh:
		return nil, fmt.Errorf("cluster: snode %d stopping", s.id)
	}
}

// deliver routes a response to the goroutine awaiting it.
func (s *Snode) deliver(op uint64, v any) {
	s.pendMu.Lock()
	ch, ok := s.pending[op]
	s.pendMu.Unlock()
	if ok {
		select {
		case ch <- v:
		default:
		}
	}
}

// loop is the actor: it dispatches every inbound message.  Fast handlers
// run inline; handlers that perform nested RPCs run in their own goroutine
// so the actor never blocks on the fabric.
func (s *Snode) loop() {
	defer close(s.done)
	for env := range s.inbox {
		s.stats.MsgsIn.Add(1)
		switch m := env.Msg.(type) {
		case lookupResp:
			s.deliver(m.Op, m)
		case joinGroupResp:
			s.deliver(m.Op, m)
		case leaveVnodeResp:
			s.deliver(m.Op, m)
		case splitAllResp:
			s.deliver(m.Op, m)
		case transferResp:
			s.deliver(m.Op, m)
		case shipVnodeResp:
			s.deliver(m.Op, m)
		case groupInitResp:
			s.deliver(m.Op, m)
		case pingResp:
			s.deliver(m.Op, m)
		case createVnodeResp:
			s.deliver(m.Op, m)
		case lookupReq:
			s.handleLookup(m, env.Trace)
		case batchReq:
			go s.handleBatch(m, env.Trace)
		case batchResp:
			s.deliver(m.Op, m)
		case createVnodeReq:
			go s.handleCreateVnode(m)
		case joinGroupReq:
			s.routeJoin(m)
		case leaveVnodeReq:
			s.routeLeave(m)
		case splitAllReq:
			go s.handleSplitAll(m)
		case transferReq:
			go s.handleTransfer(m)
		case shipVnodeReq:
			go s.handleShipVnode(m)
		case migBeginReq:
			s.handleMigBegin(m)
		case migBeginResp:
			s.deliver(m.Op, m)
		case migChunkReq:
			s.handleMigChunk(m)
		case migChunkResp:
			s.deliver(m.Op, m)
		case migCommitReq:
			go s.handleMigCommit(m, env.Trace)
		case migCommitResp:
			s.deliver(m.Op, m)
		case migAbortMsg:
			s.handleMigAbort(m)
		case loadReportReq:
			s.handleLoadReport(m)
		case groupInit:
			s.handleGroupInit(m)
		case lpdrSyncMsg:
			s.handleSync(m)
		case bootstrapInfo:
			s.mu.Lock()
			s.boot = m.Owner
			s.hasBoot = true
			s.durAppendWith(func(b []byte) []byte { return encodeWalBoot(b, m.Owner) })
			s.mu.Unlock()
		case snodeLeavingMsg:
			s.handleSnodeLeaving(m)
		case snodeRecoveredMsg:
			s.handleSnodeRecovered(m)
		case viewUpdate:
			s.handleViewUpdate(m)
		case replWriteReq:
			s.handleReplWrite(m, env.Trace)
		case replWriteResp:
			s.deliver(m.Op, m)
		case replProbeReq:
			s.handleReplProbe(m)
		case replProbeResp:
			s.deliver(m.Op, m)
		case replSyncReq:
			s.handleReplSync(m)
		case replSyncResp:
			s.deliver(m.Op, m)
		case replDropMsg:
			s.handleReplDrop(m)
		case promoteQueryReq:
			s.handlePromoteQuery(m)
		case promoteQueryResp:
			s.deliver(m.Op, m)
		case promoteOrderReq:
			go s.handlePromoteOrder(m)
		case promoteOrderResp:
			s.deliver(m.Op, m)
		case overlapQueryReq:
			s.handleOverlapQuery(m)
		case overlapQueryResp:
			s.deliver(m.Op, m)
		case pingReq:
			s.send(m.ReplyTo, pingResp{Op: m.Op})
		}
	}
}

// ownedRef binds an owned partition to its hosting vnode and bucket — one
// entry of the snode-level ownership index behind ownsLocked.  The index
// mirrors every vs.parts map; the two are mutated together under s.mu.
type ownedRef struct {
	vs *vnodeState
	bk *bucket
}

func (s *Snode) setOwnedLocked(p hashspace.Partition, vs *vnodeState, bk *bucket) {
	if _, ok := s.owned[p]; !ok {
		s.ownedLvls.add(p.Level)
	}
	s.owned[p] = ownedRef{vs: vs, bk: bk}
}

// delOwnedLocked removes a partition's index entry, but only while it
// still points at the given bucket: when a partition moves between two
// vnodes on the SAME snode, the receiving vnode's install re-points the
// entry before the sender's cleanup runs, and that newer entry must
// survive.
func (s *Snode) delOwnedLocked(p hashspace.Partition, bk *bucket) {
	if ref, ok := s.owned[p]; ok && ref.bk == bk {
		delete(s.owned, p)
		s.ownedLvls.remove(p.Level)
	}
}

// ownedForLocked returns the ownership-index entry covering hash index h,
// if any.  One index probe per live level — it runs once per batch item,
// so it must not scan the hosted vnodes.  Caller holds s.mu.
func (s *Snode) ownedForLocked(h hashspace.Index) (ownedRef, hashspace.Partition, bool) {
	for _, l := range s.ownedLvls.desc {
		p := hashspace.Containing(h, l)
		if ref, ok := s.owned[p]; ok {
			return ref, p, true
		}
	}
	return ownedRef{}, hashspace.Partition{}, false
}

// ownsLocked returns the hosted vnode and partition owning hash index h,
// if any.  Caller holds s.mu.
func (s *Snode) ownsLocked(h hashspace.Index) (*vnodeState, hashspace.Partition, bool) {
	ref, p, ok := s.ownedForLocked(h)
	return ref.vs, p, ok
}

// forwardTargetLocked picks the next hop for hash index h: the deepest
// custody tombstone covering h, falling back to the bootstrap owner.  Only
// custody pointers are followed on forwarded requests — they advance
// strictly along the chain of custody, guaranteeing termination; the
// requester-side cache (useCache) may only seed the first hop.
//
// A target pointing back at THIS snode is never returned: the caller just
// failed to classify h here under the same lock, so a self-hop cannot make
// progress — a stale self-pointer is skipped, and a self-pointing boot
// fallback means the region is orphaned (its chain died with a crashed
// snode) and the request must fail fast instead of ping-ponging through
// the fallback until MaxHops.  Before this guard a single crash could
// leave every lookup of an orphaned region spinning 512 hops through the
// survivors' mailboxes, congesting the data plane for seconds.
func (s *Snode) forwardTargetLocked(h hashspace.Index, useCache bool) (ownerRef, bool) {
	if ref, ok := probeLevels(h, s.tombs, &s.tombLvls); ok && ref.Host != s.id {
		return ref, true
	}
	if useCache {
		if ref, ok := probeLevels(h, s.cache, &s.cacheLvls); ok && ref.Host != s.id {
			return ref, true
		}
	}
	if s.hasBoot && s.boot.Host != s.id {
		return s.boot, true
	}
	return ownerRef{}, false
}

// levelSet tracks, for a partition-keyed map, how many entries exist at
// each splitlevel and keeps the live levels in a descending slice — the
// probe order.  Membership changes are rare (splits, transfers); probes
// run per key per hop, so they must not iterate or sort a map.
type levelSet struct {
	count [hashspace.MaxLevel + 1]int
	desc  []uint8 // live levels, deepest first
}

// add records one more entry at level l.
func (ls *levelSet) add(l uint8) {
	ls.count[l]++
	if ls.count[l] == 1 {
		i := sort.Search(len(ls.desc), func(i int) bool { return ls.desc[i] < l })
		ls.desc = append(ls.desc, 0)
		copy(ls.desc[i+1:], ls.desc[i:])
		ls.desc[i] = l
	}
}

// remove drops one entry at level l.
func (ls *levelSet) remove(l uint8) {
	ls.count[l]--
	if ls.count[l] == 0 {
		for i, v := range ls.desc {
			if v == l {
				ls.desc = append(ls.desc[:i], ls.desc[i+1:]...)
				break
			}
		}
	}
}

// probeLevels finds the deepest entry of a partition-keyed map covering h.
// It runs on every item of every batch, so it is allocation-free: one map
// lookup per live level, deepest first.
func probeLevels[V any](h hashspace.Index, m map[hashspace.Partition]V, lvls *levelSet) (V, bool) {
	for _, l := range lvls.desc {
		if v, ok := m[hashspace.Containing(h, l)]; ok {
			return v, true
		}
	}
	var zero V
	return zero, false
}

// setTomb records a custody pointer, replacing any coverage at other levels
// implicitly (probes prefer deeper entries, which are newer).
func (s *Snode) setTombLocked(p hashspace.Partition, ref ownerRef) {
	if _, ok := s.tombs[p]; !ok {
		s.tombLvls.add(p.Level)
	}
	s.tombs[p] = ref
}

func (s *Snode) delTombLocked(p hashspace.Partition) {
	if _, ok := s.tombs[p]; ok {
		delete(s.tombs, p)
		s.tombLvls.remove(p.Level)
	}
}

func (s *Snode) setCacheLocked(p hashspace.Partition, ref ownerRef) {
	if _, ok := s.cache[p]; !ok {
		s.cacheLvls.add(p.Level)
	}
	s.cache[p] = ref
}

// handleLookup implements §3.6's owner location with custody forwarding.
// A traced lookup records one span per snode visited — "lookup.serve" at
// the owner, "lookup.hop" at every forwarder — so a custody chain is
// visible end to end.
//
//dbdht:dataplane
func (s *Snode) handleLookup(m lookupReq, tr transport.TraceContext) {
	sp := beginSpan(tr, "lookup.serve")
	s.mu.Lock()
	if vs, p, ok := s.ownsLocked(m.R); ok {
		leader := transport.NodeID(0)
		group := vs.group
		if rep, ok := s.replicas[vs.group]; ok {
			leader = rep.Leader
		}
		s.mu.Unlock()
		s.tracer.finish(sp, s.id, "")
		s.send(m.ReplyTo, lookupResp{
			Op: m.Op, Owner: vs.name, Host: s.id, Partition: p,
			Group: group, Leader: leader,
		})
		return
	}
	if m.Hops >= s.cfg.MaxHops {
		s.mu.Unlock()
		s.tracer.finish(sp, s.id, "max-hops")
		s.send(m.ReplyTo, lookupResp{Op: m.Op, Err: fmt.Sprintf("lookup exceeded %d hops", m.Hops)})
		return
	}
	ref, ok := s.forwardTargetLocked(m.R, m.Hops == 0)
	s.mu.Unlock()
	if !ok {
		s.tracer.finish(sp, s.id, "no-route")
		s.send(m.ReplyTo, lookupResp{Op: m.Op, Err: "no route: empty DHT view"})
		return
	}
	m.Hops++
	s.stats.Forwards.Add(1)
	if sp.active() {
		sp.name = "lookup.hop"
		s.tracer.finish(sp, s.id, "")
		s.sendTr(ref.Host, sp.ctx, m)
		return
	}
	s.send(ref.Host, m)
}

// resolveOwner runs a lookup for hash index r from this snode.
func (s *Snode) resolveOwner(r uint64) (lookupResp, error) {
	v, err := s.rpc(s.id, func(op uint64) any {
		return lookupReq{Op: op, R: r, ReplyTo: s.id}
	})
	if err != nil {
		return lookupResp{}, err
	}
	resp := v.(lookupResp)
	if resp.Err != "" {
		return lookupResp{}, fmt.Errorf("cluster: lookup: %s", resp.Err)
	}
	s.mu.Lock()
	s.setCacheLocked(resp.Partition, ownerRef{Vnode: resp.Owner, Host: resp.Host})
	s.mu.Unlock()
	return resp, nil
}

type dataOp int

const (
	opGet dataOp = iota
	opPut
	opDel
)

// handleSplitAll performs the scope-wide binary split on this host's
// vnodes of the group: every partition splits in two and stored keys are
// re-bucketed by their next hash bit (§2.5 materialized on real data).
// The split is journaled as one small record — replay re-runs the same
// deterministic re-bucketing over the recovered keys.
func (s *Snode) handleSplitAll(m splitAllReq) {
	s.mu.Lock()
	s.splitGroupLocked(m.Group, m.NewLevel)
	seq := s.durAppendWith(func(b []byte) []byte { return encodeWalSplitAll(b, m.Group, m.NewLevel) })
	s.mu.Unlock()
	s.stats.SplitAlls.Add(1)
	if s.dur != nil && !s.durFastAck() {
		// Best-effort wait.  A failed wait means the WAL closed or
		// fail-stopped — but the split IS applied here, so reporting an
		// error would leave the leader believing this host is at the old
		// level while its vnodes already re-bucketed.  Acked-data safety
		// does not depend on this record: every post-split write's own
		// durability wait fails on the same dead WAL and is never
		// acknowledged.
		s.durWaitSeq(seq)
	}
	s.send(m.ReplyTo, splitAllResp{Op: m.Op})
}

// splitGroupLocked splits every joined vnode of the group below newLevel
// in two, re-bucketing stored keys by their next hash bit.  Caller holds
// s.mu (or owns the snode exclusively, during recovery replay).
func (s *Snode) splitGroupLocked(g core.GroupID, newLevel uint8) {
	for _, vs := range s.vnodes {
		if !vs.joined || vs.group != g || vs.level >= newLevel {
			continue
		}
		next := make(map[hashspace.Partition]*bucket, 2*len(vs.parts))
		for p, bk := range vs.parts {
			lo, hi := p.Split()
			loB := make(map[string][]byte)
			hiB := make(map[string][]byte)
			bk.mu.Lock()
			for k, v := range bk.m {
				if lo.Contains(hashspace.HashString(k)) {
					loB[k] = v
				} else {
					hiB[k] = v
				}
			}
			// The parent dies under its own lock: a batch that resolved it
			// before the split re-classifies against the children.
			bk.state = bucketDead
			bk.m = nil
			bk.mu.Unlock()
			next[lo] = newBucket(loB)
			next[hi] = newBucket(hiB)
			s.delOwnedLocked(p, bk)
			s.setOwnedLocked(lo, vs, next[lo])
			s.setOwnedLocked(hi, vs, next[hi])
		}
		vs.parts = next
		vs.level = newLevel
	}
}

// handleTransfer hands one partition of the victim vnode to the new owner
// by chunked live migration (migrate.go): the bucket keeps serving reads
// AND writes while its contents stream out, freezing only for the final
// delta round-trip.
func (s *Snode) handleTransfer(m transferReq) {
	s.mu.Lock()
	vs, ok := s.vnodes[m.From]
	if !ok {
		s.mu.Unlock()
		s.send(m.ReplyTo, transferResp{Op: m.Op, Err: fmt.Sprintf("vnode %v not hosted at %d", m.From, s.id)})
		return
	}
	if vs.level != m.Level {
		s.mu.Unlock()
		s.send(m.ReplyTo, transferResp{Op: m.Op, Err: fmt.Sprintf("vnode %v at level %d, leader expects %d", m.From, vs.level, m.Level)})
		return
	}
	// Pick the victim partition (the paper leaves the choice open): any
	// live partition not already streaming out, per the configured policy.
	var candidates []hashspace.Partition
	for p, bk := range vs.parts {
		if bk.state == bucketLive && bk.mig == nil { //lint:dbdht lockguard state and mig transition under BOTH s.mu and bk.mu, so this read under s.mu is race-free
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		s.mu.Unlock()
		s.send(m.ReplyTo, transferResp{Op: m.Op, Err: fmt.Sprintf("vnode %v has no transferable partition", m.From)})
		return
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Level != candidates[j].Level {
			return candidates[i].Level < candidates[j].Level
		}
		return candidates[i].Prefix < candidates[j].Prefix
	})
	var p hashspace.Partition
	switch s.cfg.Transfer {
	case TransferFewestKeys:
		p = candidates[0]
		for _, c := range candidates[1:] {
			if vs.parts[c].keys() < vs.parts[p].keys() {
				p = c
			}
		}
	default:
		p = candidates[s.randIntn(len(candidates))]
	}
	bk := vs.parts[p]
	s.mu.Unlock()

	keys, err := s.migratePartition(m.Group, m.To, m.ToHost, p, m.Level, vs, bk)
	if err != nil {
		s.send(m.ReplyTo, transferResp{Op: m.Op, Err: err.Error()})
		return
	}
	s.send(m.ReplyTo, transferResp{Op: m.Op, Partition: p, Keys: keys})
}

// copyBucket clones one partition's key/value map (values are immutable
// by convention — the data plane stores and returns copies).
func copyBucket(b map[string][]byte) map[string][]byte {
	out := make(map[string][]byte, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// handleShipVnode migrates every partition of a leaving vnode to the
// leader's planned destinations (sorted partition order ↔ dests order),
// one chunked live migration at a time — each bucket keeps serving until
// its own final delta, instead of the whole vnode freezing upfront.
func (s *Snode) handleShipVnode(m shipVnodeReq) {
	s.mu.Lock()
	vs, ok := s.vnodes[m.Vnode]
	if !ok {
		s.mu.Unlock()
		s.send(m.ReplyTo, shipVnodeResp{Op: m.Op, Err: fmt.Sprintf("vnode %v not hosted at %d", m.Vnode, s.id)})
		return
	}
	parts := make([]hashspace.Partition, 0, len(vs.parts))
	for p := range vs.parts {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Prefix < parts[j].Prefix })
	if len(parts) != len(m.Dests) {
		s.mu.Unlock()
		s.send(m.ReplyTo, shipVnodeResp{Op: m.Op, Err: fmt.Sprintf("vnode %v has %d partitions, plan has %d dests", m.Vnode, len(parts), len(m.Dests))})
		return
	}
	group, level := vs.group, vs.level
	s.mu.Unlock()

	for i, p := range parts {
		s.mu.Lock()
		bk := vs.parts[p]
		s.mu.Unlock()
		dest := m.Dests[i]
		if _, err := s.migratePartition(group, dest.Vnode, dest.Host, p, level, vs, bk); err != nil {
			s.send(m.ReplyTo, shipVnodeResp{Op: m.Op, Err: err.Error()})
			return
		}
	}
	s.mu.Lock()
	delete(s.vnodes, m.Vnode)
	s.durAppendWith(func(b []byte) []byte { return encodeWalVnodeGone(b, m.Vnode) })
	s.mu.Unlock()
	s.send(m.ReplyTo, shipVnodeResp{Op: m.Op})
}

// routingTable snapshots this snode's custody pointers, to be bequeathed to
// the survivors on graceful leave.
func (s *Snode) routingTable() []routeEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]routeEntry, 0, len(s.tombs))
	for p, ref := range s.tombs {
		out = append(out, routeEntry{Partition: p, Ref: ref})
	}
	return out
}

// handleSnodeLeaving repairs routing after a graceful departure: pointers
// at the leaver are dropped and the leaver's custody table is adopted, so
// chains that passed through it now skip it.  Entries we already have (our
// own custody history, or ownership) take precedence.
func (s *Snode) handleSnodeLeaving(m snodeLeavingMsg) {
	s.mu.Lock()
	for p, ref := range s.tombs {
		if ref.Host == m.Leaving {
			s.delTombLocked(p)
		}
	}
	for p, ref := range s.cache {
		if ref.Host == m.Leaving {
			delete(s.cache, p)
			s.cacheLvls.remove(p.Level)
		}
	}
	for _, r := range m.Routes {
		if r.Ref.Host == m.Leaving {
			continue // self-referential leftovers are useless
		}
		if _, have := s.tombs[r.Partition]; !have {
			s.setTombLocked(r.Partition, r.Ref)
		}
	}
	if s.hasBoot && s.boot.Host == m.Leaving {
		s.hasBoot = false // the cluster handle re-seeds shortly after
	}
	s.mu.Unlock()
	if m.Crashed && s.cfg.Replicas > 1 {
		// The snode died with its data: partitions it was primary for
		// need a replica promoted.  Every surviving replica host runs the
		// scan; the deterministic coordinator rule keeps them from racing
		// (see failover.go).
		go s.failoverScan(m.Leaving)
	}
}

// handleSync installs an LPDR replica refresh.  Journaled (fire-and-
// forget, like the sync itself): a lost record only costs group metadata
// that the next sync re-delivers.
func (s *Snode) handleSync(m lpdrSyncMsg) {
	s.mu.Lock()
	st := m.State
	s.replicas[st.Group] = &st
	for _, d := range m.Dissolved {
		delete(s.replicas, d)
	}
	for _, mem := range st.Members {
		if vs, ok := s.vnodes[mem.Vnode]; ok && mem.Host == s.id {
			vs.group = st.Group
			vs.level = st.Level
			vs.joined = true
		}
	}
	s.durAppendWith(func(b []byte) []byte { return encodeWalLpdr(b, st, m.Dissolved) })
	s.mu.Unlock()
}

// handleSnodeRecovered repairs routing after an snode restarted from its
// WAL: the crash dropped every custody pointer at it, so the recovered
// owner re-announces its partitions and survivors adopt pointers back to
// it — unless they own (part of) the region themselves at an equal or
// deeper level.
func (s *Snode) handleSnodeRecovered(m snodeRecoveredMsg) {
	s.mu.Lock()
	for _, rte := range m.Routes {
		if _, p2, ok := s.ownedForLocked(rte.Partition.Start()); ok && p2.Level >= rte.Partition.Level {
			continue
		}
		s.setTombLocked(rte.Partition, rte.Ref)
	}
	s.mu.Unlock()
}

// handleCreateVnode runs the client-facing vnode creation (§3.6).
func (s *Snode) handleCreateVnode(m createVnodeReq) {
	s.mu.Lock()
	name := VnodeName{Snode: s.id, Local: s.nextLocal}
	s.nextLocal++
	s.mu.Unlock()

	if m.Bootstrap {
		if err := s.bootstrapFirstVnode(name); err != nil {
			s.send(m.ReplyTo, createVnodeResp{Op: m.Op, Err: err.Error()})
			return
		}
		s.send(m.ReplyTo, createVnodeResp{Op: m.Op, Vnode: name, Group: core.GroupID{}})
		return
	}

	// Allocate the (empty) vnode so partition installs can land.  The
	// allocation is journaled unjoined; the LPDR sync that completes the
	// join is journaled by handleSync.
	s.mu.Lock()
	s.vnodes[name] = &vnodeState{
		name:  name,
		parts: make(map[hashspace.Partition]*bucket),
	}
	s.durAppendWith(func(b []byte) []byte { return encodeWalVnode(b, walVnodeRec{Name: name}) })
	s.mu.Unlock()

	const maxRetries = 16
	for attempt := 0; attempt < maxRetries; attempt++ {
		r := s.randUint64()
		lr, err := s.resolveOwner(r)
		if err != nil {
			s.abandonVnode(name)
			s.send(m.ReplyTo, createVnodeResp{Op: m.Op, Err: err.Error()})
			return
		}
		v, err := s.rpc(lr.Host, func(op uint64) any {
			return joinGroupReq{Op: op, Group: lr.Group, NewVnode: name, NewHost: s.id, ReplyTo: s.id}
		})
		if err != nil {
			s.abandonVnode(name)
			s.send(m.ReplyTo, createVnodeResp{Op: m.Op, Err: err.Error()})
			return
		}
		resp := v.(joinGroupResp)
		if resp.Retry {
			continue // leadership moved under us; re-resolve
		}
		if resp.Err != "" {
			s.abandonVnode(name)
			s.send(m.ReplyTo, createVnodeResp{Op: m.Op, Err: resp.Err})
			return
		}
		s.send(m.ReplyTo, createVnodeResp{Op: m.Op, Vnode: name, Group: resp.Group})
		return
	}
	s.abandonVnode(name)
	s.send(m.ReplyTo, createVnodeResp{Op: m.Op, Err: "join retries exhausted"})
}

// abandonVnode discards a never-joined vnode allocation after a failure.
func (s *Snode) abandonVnode(name VnodeName) {
	s.mu.Lock()
	if vs, ok := s.vnodes[name]; ok && !vs.joined && len(vs.parts) == 0 {
		delete(s.vnodes, name)
		s.durAppendWith(func(b []byte) []byte { return encodeWalVnodeGone(b, name) })
	}
	s.mu.Unlock()
}

// bootstrapFirstVnode creates group 0 around the DHT's first vnode: the
// whole of R_h pre-split into Pmin partitions (invariant G4's floor), this
// snode leading.
func (s *Snode) bootstrapFirstVnode(name VnodeName) error {
	level := uint8(bits.TrailingZeros(uint(s.cfg.Pmin)))
	parts := make(map[hashspace.Partition]*bucket, s.cfg.Pmin)
	for pre := uint64(0); pre < uint64(s.cfg.Pmin); pre++ {
		parts[hashspace.Partition{Prefix: pre, Level: level}] = newBucket(nil)
	}
	g0 := core.GroupID{}
	s.mu.Lock()
	if len(s.vnodes) != 0 || len(s.led) != 0 {
		s.mu.Unlock()
		return fmt.Errorf("cluster: snode %d is not empty; cannot bootstrap", s.id)
	}
	vs := &vnodeState{
		name: name, group: g0, level: level, joined: true,
		parts: parts,
	}
	s.vnodes[name] = vs
	for p, bk := range parts {
		s.setOwnedLocked(p, vs, bk)
	}
	st := lpdrState{
		Group: g0, Level: level, Leader: s.id,
		Members: []memberInfo{{Vnode: name, Host: s.id, Count: s.cfg.Pmin}},
	}
	s.replicas[g0] = &st
	s.boot = ownerRef{Vnode: name, Host: s.id}
	s.hasBoot = true
	s.installLeaderLocked(st)
	// Journal the birth of the DHT: the pre-split vnode, its LPDR, and
	// the boot route, so a restarted first snode comes back owning R_h.
	rec := walVnodeRec{Name: name, Group: g0, Level: level, Joined: true}
	for p := range parts {
		rec.Parts = append(rec.Parts, p)
	}
	s.durAppendWith(func(b []byte) []byte { return encodeWalVnode(b, rec) })
	s.durAppendWith(func(b []byte) []byte { return encodeWalLpdr(b, st, nil) })
	seq := s.durAppendWith(func(b []byte) []byte { return encodeWalBoot(b, s.boot) })
	s.mu.Unlock()
	if s.dur != nil && !s.durFastAck() && !s.durWaitSeq(seq) {
		return fmt.Errorf("cluster: snode %d stopping: bootstrap not durable", s.id)
	}
	return nil
}
