package cluster

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/core"
	"dbdht/internal/hashspace"
)

// R-way partition replication.  The paper's model is failure-free (§5);
// this file grows the runtime beyond it: every partition's primary (the
// owning vnode's host) keeps R−1 *replica buckets* on other snodes chosen
// deterministically from the DHT view, so an abrupt snode crash loses no
// acknowledged write.
//
//   - Writes are fanned to the replica hosts synchronously, reusing the
//     batch sub-request machinery: a write is acknowledged only once every
//     reachable replica applied it (an unreachable replica is recorded in
//     ReplLagged and repaired by anti-entropy rather than failing the
//     write — the primary still holds the data).
//   - Reads fail over: when the client handle's RPC to a believed owner
//     errors, it re-aims the affected keys at the partition's replicas
//     (learned alongside owner routes from batch responses) with a
//     ReadReplica batch, served straight from the replica store.
//   - Partition transfers re-home replica sets with the primary: the new
//     owner pushes fresh replica buckets before acknowledging the install,
//     and the old owner drops the buckets that became orphans.
//   - A background anti-entropy pass (per-partition key count + checksum
//     exchange) repairs replicas that diverge after a crash or a missed
//     write, and bootstraps replication for partitions that predate their
//     replica hosts.
//
// Replica placement is a pure function of (partition, primary, view):
// every snode with the same membership view picks the same replica hosts,
// so primaries, their successors after a transfer, and the anti-entropy
// pass all converge on one replica set without coordination.
//
// Placement is rendezvous (HRW) hashing: each (partition, host) pair gets
// a 64-bit score and the R−1 highest-scoring non-primary hosts back the
// partition.  Adding or removing one host therefore relocates only the
// replica sets whose score order that host perturbed — ~1/n of them —
// and the anti-entropy pass migrates exactly those deltas.
//
// Each replica bucket also carries volatile metadata (rmeta): the
// primary's write version, the owning vnode's group, and the last primary
// host.  Failover promotion (failover.go) uses it to elect the
// most-caught-up replica deterministically.  It is deliberately not
// journaled: a restarted replica restarts at version 0 and loses
// elections to replicas that stayed up with the data in memory.
//
// Limitations (documented, by design of this increment): failover reads
// are eventually consistent if the primary crashed with a replica write
// still in flight; two *concurrent* writes of the same key may replicate
// in the opposite order from the primary's apply order (callers racing
// same-key writes have no ordering guarantee at the primary either —
// anti-entropy re-converges the replica within one interval); a replica
// bucket created before this snode learned its metadata (possible only
// across a version upgrade) cannot be promoted; ancestor buckets
// stranded at hosts with no deeper local bucket escape the stale sweep
// and linger as bounded garbage (shadowed on reads once current buckets
// sync).

// viewUpdate is the cluster handle's membership broadcast: the sorted ids
// of every live snode, stamped with a monotonically increasing epoch so
// reordered deliveries cannot regress a receiver's view.  Replica
// placement derives from it.
type viewUpdate struct {
	Epoch  uint64
	Snodes []transport.NodeID
}

// replWriteSet is one partition's share of a replica write fan-out.  Ver
// and Group piggyback the failover metadata the replica needs to stand
// for its primary: the primary's post-apply write version for the bucket
// and the owning vnode's group.
type replWriteSet struct {
	Partition hashspace.Partition
	Items     []batchItem
	Ver       uint64
	Group     core.GroupID
}

// replWriteReq applies a batch's writes to the replica buckets its
// destination backs: one message per (primary → replica host) pair per
// batch, carrying every affected partition's items — the fan-out cost
// scales with hosts, not partitions.  Sent by the primary, synchronously,
// before the writes are acknowledged.
type replWriteReq struct {
	Op      uint64
	Kind    dataOp
	Sets    []replWriteSet
	ReplyTo transport.NodeID
	// private is the frame decoder's exclusively-owned-slices mark, as on
	// batchReq: it lets the replica store decoded values without copying.
	private bool
}

type replWriteResp struct {
	Op  uint64
	Err string
}

// replProbeReq is one anti-entropy exchange: the primary's key count and
// order-independent checksum for a partition.  The replica answers whether
// its bucket matches.
type replProbeReq struct {
	Op        uint64
	Partition hashspace.Partition
	Count     int
	Sum       uint64
	ReplyTo   transport.NodeID
}

type replProbeResp struct {
	Op     uint64
	InSync bool
}

// replSyncReq overwrites a replica bucket with the primary's full copy —
// the repair step after a probe mismatch, and the re-homing push after a
// partition transfer.
type replSyncReq struct {
	Op        uint64
	Partition hashspace.Partition
	Data      map[string][]byte
	Ver       uint64
	Group     core.GroupID
	ReplyTo   transport.NodeID
}

type replSyncResp struct {
	Op  uint64
	Err string
}

// replDropMsg tells a host to discard replica buckets it no longer backs
// (fire-and-forget; a missed drop is garbage, not corruption).
type replDropMsg struct {
	Partitions []hashspace.Partition
}

func init() {
	for _, m := range []any{
		viewUpdate{},
		replWriteReq{}, replWriteResp{},
		replProbeReq{}, replProbeResp{},
		replSyncReq{}, replSyncResp{},
		replDropMsg{},
	} {
		gob.Register(m)
	}
}

// bucketDigest summarizes a bucket as (count, order-independent checksum):
// two buckets with equal digests are treated as in sync.
func bucketDigest(b map[string][]byte) (int, uint64) {
	var sum uint64
	for k, v := range b {
		h := fnv.New64a()
		_, _ = h.Write([]byte(k))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write(v)
		sum ^= h.Sum64()
	}
	return len(b), sum
}

// overlapping reports whether two binary-trie partitions intersect, i.e.
// one is an ancestor of (or equal to) the other.
func overlapping(a, b hashspace.Partition) bool {
	if a.Level > b.Level {
		a, b = b, a
	}
	return b.Prefix>>(b.Level-a.Level) == a.Prefix
}

// replicaHostsLocked picks the R−1 replica hosts for a partition owned at
// this snode.  Caller holds s.mu.
func (s *Snode) replicaHostsLocked(p hashspace.Partition) []transport.NodeID {
	return replicaHostsFor(p, s.id, s.view, s.cfg.Replicas)
}

// replicaHostsFor is the pure placement rule: rendezvous (HRW) hashing.
// Every (partition, host) pair gets a 64-bit score and the R−1
// highest-scoring non-primary hosts win, ties broken by the lower id.
// Removing a host only promotes the next-ranked host into the sets the
// dead host was in, and adding a host only displaces the sets it now
// out-scores — each membership change moves ~1/n of the replica sets
// instead of reshuffling most of them (as the old modular-offset rule
// did).
func replicaHostsFor(p hashspace.Partition, primary transport.NodeID, view []transport.NodeID, r int) []transport.NodeID {
	if r <= 1 || len(view) == 0 {
		return nil
	}
	type scored struct {
		id transport.NodeID
		w  uint64
	}
	cands := make([]scored, 0, len(view))
	for _, id := range view {
		if id != primary {
			cands = append(cands, scored{id: id, w: hrwScore(p, id)})
		}
	}
	if len(cands) == 0 {
		return nil
	}
	n := r - 1
	if n > len(cands) {
		n = len(cands)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w > cands[j].w
		}
		return cands[i].id < cands[j].id
	})
	out := make([]transport.NodeID, n)
	for k := 0; k < n; k++ {
		out[k] = cands[k].id
	}
	return out
}

// hrwScore is the rendezvous weight of one (partition, host) pair: a
// SplitMix64-style finalizer over the partition identity mixed with the
// host id.  Pure and stable — every snode computes the same ranking.
func hrwScore(p hashspace.Partition, id transport.NodeID) uint64 {
	x := p.Prefix*0x9e3779b97f4a7c15 ^ uint64(p.Level)<<56 ^ uint64(id)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// --- replica store maintenance (caller holds s.mu) ---

// replMeta is the volatile failover metadata of one replica bucket: the
// highest primary write version seen, the owning vnode's group, and the
// primary host that last fed the bucket.  Map-entry presence in s.rmeta
// distinguishes "metadata known" from "never told" (GroupID's zero value
// is the valid group 0).  Not journaled, not snapshotted — see the file
// header.
type replMeta struct {
	ver   uint64
	group core.GroupID
	prim  transport.NodeID
}

// noteReplMetaLocked folds fresh metadata into a replica bucket's record.
// The version only ratchets up, so a reordered stale fan-out cannot
// regress the election priority.  Caller holds s.mu.
func (s *Snode) noteReplMetaLocked(p hashspace.Partition, ver uint64, g core.GroupID, prim transport.NodeID) {
	m, ok := s.rmeta[p]
	if !ok {
		m = &replMeta{}
		s.rmeta[p] = m
	}
	if ver > m.ver {
		m.ver = ver
	}
	m.group = g
	m.prim = prim
}

func (s *Snode) setReplicaBucketLocked(p hashspace.Partition, b map[string][]byte) {
	if _, ok := s.rparts[p]; !ok {
		s.rpartLvls.add(p.Level)
	}
	s.rparts[p] = b
}

func (s *Snode) delReplicaBucketLocked(p hashspace.Partition) {
	if _, ok := s.rparts[p]; ok {
		delete(s.rparts, p)
		delete(s.rprov, p)
		delete(s.rmeta, p)
		s.rpartLvls.remove(p.Level)
	}
}

// sendOrdFor returns the per-destination mutex serializing replica-plane
// sends to one host.
func (s *Snode) sendOrdFor(host transport.NodeID) *sync.Mutex {
	s.sendOrdMu.Lock()
	defer s.sendOrdMu.Unlock()
	mu, ok := s.sendOrd[host]
	if !ok {
		mu = &sync.Mutex{}
		s.sendOrd[host] = mu
	}
	return mu
}

// dropReplicaWithinLocked discards every replica bucket contained in p
// (p itself included).  Ancestors are deliberately spared: they may still
// carry the only failover copy of a *sibling* region's acknowledged keys,
// they are shadowed by deeper buckets on reads, and their own primary's
// placement pass retires them once the current-level buckets are synced.
func (s *Snode) dropReplicaWithinLocked(p hashspace.Partition) {
	for q := range s.rparts {
		if q.Level >= p.Level && overlapping(q, p) {
			s.delReplicaBucketLocked(q)
		}
	}
}

// --- replica-side handlers (fast: no nested RPCs, run inline) ---

func (s *Snode) handleViewUpdate(m viewUpdate) {
	s.mu.Lock()
	if m.Epoch > s.viewEpoch {
		s.viewEpoch = m.Epoch
		s.view = m.Snodes
	}
	s.mu.Unlock()
}

//
//dbdht:dataplane
func (s *Snode) handleReplWrite(m replWriteReq, tr transport.TraceContext) {
	sp := beginSpan(tr, "repl.write")
	s.mu.Lock()
	applied := s.applyReplWriteLocked(m.Kind, m.Sets, m.private)
	for _, set := range m.Sets {
		s.noteReplMetaLocked(set.Partition, set.Ver, set.Group, m.ReplyTo)
	}
	seq := s.durAppendWith(func(b []byte) []byte {
		return encodeWalReplWrite(b, m.Kind, m.Sets)
	})
	s.mu.Unlock()
	s.stats.ReplWrites.Add(applied)
	if s.durFastAck() {
		s.tracer.finish(sp, s.id, "")
		s.send(m.ReplyTo, replWriteResp{Op: m.Op})
		return
	}
	// The handler runs inline in the actor loop; the group-fsync wait
	// must not stall message dispatch, so the durable ack rides its own
	// goroutine.
	go func() {
		resp := replWriteResp{Op: m.Op}
		t0 := time.Now()
		if !s.durWaitSeq(seq) {
			resp.Err = fmt.Sprintf("snode %d stopping: replica write not durable", s.id)
		}
		s.lat.walWait.ObserveSince(t0)
		s.tracer.finish(sp, s.id, resp.Err)
		s.send(m.ReplyTo, resp)
	}()
}

// applyReplWriteLocked folds one replica write fan-in into the replica
// store.  Caller holds s.mu (or owns the snode exclusively, during
// recovery replay).
func (s *Snode) applyReplWriteLocked(kind dataOp, sets []replWriteSet, private bool) int64 {
	var applied int64
	for _, set := range sets {
		b := s.rparts[set.Partition]
		if b == nil {
			// First write at this partition (typically right after a
			// split): seed the bucket from any stale ancestor's keys in
			// range — they are acknowledged data that must stay
			// failover-readable until anti-entropy ships the
			// authoritative copy.  Until then the bucket is provisional:
			// present keys are real, absent keys are unknown
			// (serveReplicaRead refuses to vouch for them).
			s.rprov[set.Partition] = true
			b = make(map[string][]byte)
			for q, ob := range s.rparts {
				if q.Level < set.Partition.Level && overlapping(q, set.Partition) {
					for k, v := range ob {
						if set.Partition.Contains(hashspace.HashString(k)) {
							b[k] = v
						}
					}
				}
			}
			s.dropReplicaWithinLocked(set.Partition)
			s.setReplicaBucketLocked(set.Partition, b)
		}
		for _, it := range set.Items {
			switch kind {
			case opPut:
				v := it.Value
				if !private {
					v = append([]byte(nil), v...)
				}
				b[it.Key] = v
			case opDel:
				delete(b, it.Key)
			}
		}
		applied += int64(len(set.Items))
	}
	return applied
}

func (s *Snode) handleReplProbe(m replProbeReq) {
	s.mu.Lock()
	b, ok := s.rparts[m.Partition]
	var n int
	var sum uint64
	if ok {
		n, sum = bucketDigest(b)
	}
	inSync := ok && n == m.Count && sum == m.Sum
	if inSync {
		// Digest equality with the primary proves the bucket complete: a
		// write-created (provisional) bucket becomes authoritative here.
		delete(s.rprov, m.Partition)
	}
	s.mu.Unlock()
	s.send(m.ReplyTo, replProbeResp{Op: m.Op, InSync: inSync})
}

func (s *Snode) handleReplSync(m replSyncReq) {
	data := m.Data
	if data == nil {
		data = make(map[string][]byte)
	}
	s.mu.Lock()
	// Replace only this exact bucket.  Strictly deeper buckets are spared:
	// geometry only ever deepens, so a deeper overlapping bucket here can
	// only mean the SENDER's partition is stale (a leftover ancestor), and
	// the deeper buckets may hold the only failover copy of acknowledged
	// keys the stale sync does not carry.
	s.delReplicaBucketLocked(m.Partition)
	s.setReplicaBucketLocked(m.Partition, data)
	delete(s.rprov, m.Partition) // a full sync makes the bucket authoritative
	s.noteReplMetaLocked(m.Partition, m.Ver, m.Group, m.ReplyTo)
	// Lazy encode: the whole-bucket serialization must cost nothing when
	// durability is off.
	seq := s.durAppendWith(func(b []byte) []byte {
		return encodeWalReplSync(b, m.Partition, data)
	})
	s.mu.Unlock()
	if s.durFastAck() {
		s.send(m.ReplyTo, replSyncResp{Op: m.Op})
		return
	}
	go func() { // inline handler: the fsync wait must not stall the actor
		resp := replSyncResp{Op: m.Op}
		if !s.durWaitSeq(seq) {
			resp.Err = fmt.Sprintf("snode %d stopping: replica sync not durable", s.id)
		}
		s.send(m.ReplyTo, resp)
	}()
}

func (s *Snode) handleReplDrop(m replDropMsg) {
	s.mu.Lock()
	for _, p := range m.Partitions {
		s.delReplicaBucketLocked(p)
	}
	s.durAppendWith(func(b []byte) []byte { return encodeWalReplDrop(b, m.Partitions) })
	s.mu.Unlock()
}

// serveReplicaRead answers a ReadReplica batch from the replica store —
// the read-failover path when a primary stopped answering.  Keys this
// snode holds no replica bucket for get a per-key error (the requester
// falls back to its normal retry path).
//
// Owned buckets take precedence when at least as deep as any replica
// bucket covering the key: a failover promotion moves the authoritative
// copy from the replica store into an owned bucket (and drops the
// replica), so a probe planned against the pre-promotion placement must
// serve from the promoted bucket — not from whatever stale shallower
// replica leftover still covers the key.
//
//dbdht:dataplane
func (s *Snode) serveReplicaRead(m batchReq, tr transport.TraceContext) {
	sp := beginSpan(tr, "repl.read")
	results := make([]batchItemResp, len(m.Items))
	var served int64
	s.mu.Lock()
	for i, it := range m.Items {
		if m.Kind != opGet {
			results[i] = batchItemResp{Err: "replicas serve reads only"}
			continue
		}
		h := hashspace.HashString(it.Key)
		p, b, ok := s.replicaBucketLocked(h)
		if ref, po, owned := s.ownedForLocked(h); owned && (!ok || po.Level >= p.Level) {
			bk := ref.bk
			bk.mu.RLock()
			if bk.state != bucketDead {
				v, found := bk.m[it.Key]
				results[i] = batchItemResp{Value: append([]byte(nil), v...), Found: found}
				bk.mu.RUnlock()
				served++
				continue
			}
			bk.mu.RUnlock()
		}
		if !ok {
			results[i] = batchItemResp{Err: fmt.Sprintf("snode %d holds no replica for key %q", s.id, it.Key)}
			continue
		}
		v, found := b[it.Key]
		if !found && s.rprov[p] {
			// The bucket was write-created and never full-synced: a
			// missing key is unknown, not authoritatively absent.
			results[i] = batchItemResp{Err: fmt.Sprintf("snode %d replica for key %q is provisional", s.id, it.Key)}
			continue
		}
		results[i] = batchItemResp{Value: append([]byte(nil), v...), Found: found}
		served++
	}
	s.mu.Unlock()
	s.stats.FailoverReads.Add(served)
	s.tracer.finish(sp, s.id, "")
	s.send(m.ReplyTo, batchResp{Op: m.Op, Results: results})
}

// replicaBucketLocked finds the deepest replica bucket covering h.
// Caller holds s.mu.
func (s *Snode) replicaBucketLocked(h hashspace.Index) (hashspace.Partition, map[string][]byte, bool) {
	for _, l := range s.rpartLvls.desc {
		p := hashspace.Containing(h, l)
		if b, ok := s.rparts[p]; ok {
			return p, b, true
		}
	}
	return hashspace.Partition{}, nil, false
}

// --- primary-side fan-out ---

// replFanMeta is the per-partition failover metadata a primary piggybacks
// on its replica fan-out: the bucket's post-apply write version and the
// owning vnode's group.
type replFanMeta struct {
	ver   uint64
	group core.GroupID
}

// replicate synchronously applies a write set to its replica hosts, one
// replWriteReq per destination host (carrying every affected partition's
// items placed there), all in parallel.  An unreachable replica is
// recorded and skipped (the primary holds the data and anti-entropy
// repairs the replica later); an error is returned only when this snode is
// stopping, in which case the write must NOT be acknowledged — the
// primary's copy dies with it.
//
//dbdht:dataplane
func (s *Snode) replicate(kind dataOp, writes map[hashspace.Partition][]batchItem, dests map[hashspace.Partition][]transport.NodeID, meta map[hashspace.Partition]replFanMeta, tr transport.TraceContext) error {
	byHost := make(map[transport.NodeID][]replWriteSet)
	for p, items := range writes {
		for _, host := range dests[p] {
			byHost[host] = append(byHost[host], replWriteSet{
				Partition: p, Items: items,
				Ver: meta[p].ver, Group: meta[p].group,
			})
		}
	}
	if len(byHost) == 0 {
		return nil
	}
	errs := make(chan error, len(byHost))
	for host, sets := range byHost {
		go func(host transport.NodeID, sets []replWriteSet) {
			// The send (not the wait) is serialized per destination so a
			// concurrent full sync cannot be overtaken by a write it does
			// not contain (see syncReplica).
			fsp := beginSpan(tr, "repl.fanout")
			_, err := s.rpcOrderedSend(host, fsp.ctx, func(op uint64) any {
				return replWriteReq{Op: op, Kind: kind, Sets: sets, ReplyTo: s.id}
			})
			if fsp.active() {
				outcome := ""
				if err != nil {
					outcome = err.Error()
				}
				s.tracer.finish(fsp, s.id, outcome)
			}
			errs <- err
		}(host, sets)
	}
	var stopping error
	for range byHost {
		if err := <-errs; err != nil {
			select {
			case <-s.stopCh:
				stopping = err
			default:
				s.stats.ReplLagged.Add(1)
			}
		}
	}
	return stopping
}

// rpcOrderedSend is s.rpc with the send serialized through the
// destination's replica-plane send mutex; the response wait happens
// outside the mutex.
func (s *Snode) rpcOrderedSend(to transport.NodeID, tr transport.TraceContext, build func(op uint64) any) (any, error) {
	op := s.opSeq.Add(1)
	ch := make(chan any, 1)
	s.pendMu.Lock()
	s.pending[op] = ch
	s.pendMu.Unlock()
	defer func() {
		s.pendMu.Lock()
		delete(s.pending, op)
		s.pendMu.Unlock()
	}()
	ord := s.sendOrdFor(to)
	ord.Lock()
	err := s.net.Send(transport.Envelope{From: s.id, To: to, Trace: tr, Msg: build(op)})
	ord.Unlock()
	if err != nil {
		return nil, err
	}
	select {
	case v := <-ch:
		return v, nil
	case <-time.After(s.cfg.RPCTimeout):
		return nil, fmt.Errorf("cluster: snode %d: rpc to %d timed out", s.id, to)
	case <-s.stopCh:
		return nil, fmt.Errorf("cluster: snode %d stopping", s.id)
	}
}

// syncReplica ships the current bucket of an owned partition to one
// replica host and waits for the ack.  The destination's send mutex is
// held from before the snapshot copy until after the send, and every
// replica write to that destination sends under the same mutex: a write
// applied after the copy is therefore sent after the sync, so FIFO
// delivery guarantees the full sync can never overwrite a newer
// replicated write at the replica.  s.mu itself is released before the
// send — a slow destination stalls only its own replica traffic, never
// the data plane.  ok is false when the partition is no longer owned
// here.
func (s *Snode) syncReplica(p hashspace.Partition, host transport.NodeID) (ok bool, err error) {
	op := s.opSeq.Add(1)
	ch := make(chan any, 1)
	s.pendMu.Lock()
	s.pending[op] = ch
	s.pendMu.Unlock()
	defer func() {
		s.pendMu.Lock()
		delete(s.pending, op)
		s.pendMu.Unlock()
	}()
	ord := s.sendOrdFor(host)
	ord.Lock()
	s.mu.Lock()
	vs, p2, owned := s.ownsLocked(p.Start())
	var bk *bucket
	var g core.GroupID
	if owned && p2 == p {
		bk = vs.parts[p]
		g = vs.group
	}
	s.mu.Unlock()
	if bk == nil {
		ord.Unlock()
		return false, nil
	}
	bk.mu.RLock()
	if bk.state == bucketDead {
		bk.mu.RUnlock()
		ord.Unlock()
		return false, nil
	}
	data := copyBucket(bk.m)
	ver := bk.ver
	bk.mu.RUnlock()
	err = s.net.Send(transport.Envelope{From: s.id, To: host,
		Msg: replSyncReq{Op: op, Partition: p, Data: data, Ver: ver, Group: g, ReplyTo: s.id}})
	ord.Unlock()
	if err != nil {
		return true, err
	}
	select {
	case v := <-ch:
		if resp := v.(replSyncResp); resp.Err != "" {
			return true, fmt.Errorf("cluster: replica sync at %d: %s", host, resp.Err)
		}
		return true, nil
	case <-time.After(s.cfg.RPCTimeout):
		return true, fmt.Errorf("cluster: replica sync to %d timed out", host)
	case <-s.stopCh:
		return true, fmt.Errorf("cluster: snode %d stopping", s.id)
	}
}

// rehomeReplicas pushes full replica buckets for a freshly installed
// partition to its (new) replica hosts, before the install is
// acknowledged, so the transfer never shrinks the number of copies.
// Best-effort: an unreachable replica host is left to anti-entropy.
func (s *Snode) rehomeReplicas(p hashspace.Partition) {
	s.mu.Lock()
	hosts := s.replicaHostsLocked(p)
	if len(hosts) > 0 {
		s.placed[p] = hosts
	}
	s.mu.Unlock()
	if len(hosts) == 0 {
		return
	}
	done := make(chan struct{}, len(hosts))
	for _, host := range hosts {
		go func(host transport.NodeID) {
			defer func() { done <- struct{}{} }()
			if _, err := s.syncReplica(p, host); err != nil {
				s.stats.ReplLagged.Add(1)
			}
		}(host)
	}
	for range hosts {
		<-done
	}
}

// dropOrphanReplicas tells the hosts that replicated p for this (old)
// primary to discard their buckets, sparing any host the new primary's
// placement still uses.  Fire-and-forget.
func (s *Snode) dropOrphanReplicas(p hashspace.Partition, newPrimary transport.NodeID) {
	if s.cfg.Replicas <= 1 {
		return
	}
	if newPrimary == s.id {
		// Intra-snode transfer (vnode to vnode on this host): the
		// placement is a function of (partition, host, view) and the host
		// did not change, so there is nothing to drop — and the `placed`
		// record was just refreshed by the receiving vnode's install;
		// deleting it here would orphan the old replica on the next view
		// change.
		return
	}
	s.mu.Lock()
	old, tracked := s.placed[p]
	if !tracked {
		old = s.replicaHostsLocked(p)
	}
	delete(s.placed, p)
	keep := make(map[transport.NodeID]bool)
	for _, h := range replicaHostsFor(p, newPrimary, s.view, s.cfg.Replicas) {
		keep[h] = true
	}
	s.mu.Unlock()
	for _, host := range old {
		if !keep[host] && host != newPrimary {
			s.send(host, replDropMsg{Partitions: []hashspace.Partition{p}})
		}
	}
}

// --- anti-entropy ---

// antiEntropyLoop periodically reconciles every owned partition with its
// replica hosts.  Started by newSnode when replication is on.
func (s *Snode) antiEntropyLoop() {
	t := time.NewTicker(s.cfg.AntiEntropyInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			t0 := time.Now()
			s.antiEntropyPass()
			s.lat.aePass.ObserveSince(t0)
			s.sweepStaleReplicas()
		}
	}
}

// sweepStaleReplicas retires replica buckets whose region has provably
// moved to a deeper splitlevel.  Candidates are ancestors overlapped by a
// deeper bucket at this host (the overlap proves the region is live and
// locally reachable, so the validating lookup resolves fast); the routed
// lookup makes the verdict exact — a region that still resolves at the
// candidate's own level, or does not resolve at all (its primary may be
// dead and this bucket its failover copy), is kept.
func (s *Snode) sweepStaleReplicas() {
	s.mu.Lock()
	var cands []hashspace.Partition
	for q := range s.rparts {
		for q2 := range s.rparts {
			if q2.Level > q.Level && overlapping(q, q2) {
				cands = append(cands, q)
				break
			}
		}
	}
	s.mu.Unlock()
	for _, q := range cands {
		select {
		case <-s.stopCh:
			return
		default:
		}
		lr, err := s.resolveOwner(q.Start())
		if err != nil {
			continue
		}
		if lr.Partition.Level > q.Level {
			s.mu.Lock()
			s.delReplicaBucketLocked(q)
			s.mu.Unlock()
		}
	}
}

// antiEntropyPass probes each replica of each owned partition with the
// primary's digest and ships a full bucket on mismatch.  Divergence shows
// up after crashes (a replica host died and placement moved), membership
// changes (a new view re-homes replica sets) and partition splits (the
// children need buckets at the new level).  The pass also reconciles
// *placement*: hosts that dropped out of a partition's replica set since
// the last pass are told to discard their now-orphaned buckets.
func (s *Snode) antiEntropyPass() {
	// Snapshot the current placement under one cheap lock pass (no
	// hashing here, and no bookkeeping mutation yet — placement advances
	// only for partitions whose replica set is confirmed below).
	s.mu.Lock()
	cur := make(map[hashspace.Partition][]transport.NodeID)
	frozen := make(map[hashspace.Partition]bool)
	for _, vs := range s.vnodes {
		for p, bk := range vs.parts {
			// Frozen (mid-transfer) partitions and partitions of a vnode
			// whose join has not completed stay in the snapshot so their
			// placement record is not mistaken for a handover (which
			// would delete it and orphan the old replica's bucket
			// forever), but they are neither probed nor advanced this
			// pass.
			cur[p] = s.replicaHostsLocked(p)
			if !vs.joined || bk.state != bucketLive { //lint:dbdht lockguard state transitions under BOTH s.mu and bk.mu, so this read under s.mu is race-free
				frozen[p] = true
			}
		}
	}
	s.mu.Unlock()

	// Probe/repair every current replica.  synced[p] records that every
	// host of p's placement holds a confirmed up-to-date bucket.
	synced := make(map[hashspace.Partition]bool, len(cur))
	for p, hosts := range cur {
		if len(hosts) == 0 || frozen[p] {
			continue
		}
		// Digest under the bucket's own lock: a large store stalls only
		// writers of that one partition, never the rest of the data
		// plane; one digest serves every replica host of the partition.
		s.mu.Lock()
		vs, p2, owned := s.ownsLocked(p.Start())
		var bk *bucket
		if owned && p2 == p {
			bk = vs.parts[p]
		}
		s.mu.Unlock()
		if bk == nil {
			continue // moved or split since the snapshot; its new owner reconciles it
		}
		bk.mu.RLock()
		if bk.state != bucketLive {
			bk.mu.RUnlock()
			continue
		}
		n, sum := bucketDigest(bk.m)
		bk.mu.RUnlock()
		ok := true
		for _, host := range hosts {
			select {
			case <-s.stopCh:
				return
			default:
			}
			v, err := s.rpc(host, func(op uint64) any {
				return replProbeReq{Op: op, Partition: p, Count: n, Sum: sum, ReplyTo: s.id}
			})
			if err != nil {
				s.stats.ReplLagged.Add(1)
				ok = false
				continue
			}
			if v.(replProbeResp).InSync {
				continue
			}
			stillOwned, serr := s.syncReplica(p, host)
			if !stillOwned {
				ok = false
				break
			}
			if serr != nil {
				s.stats.ReplLagged.Add(1)
				ok = false
				continue
			}
			s.stats.ReplRepairs.Add(1)
		}
		synced[p] = ok
	}

	// Retire stale buckets only now, and only where the replacement set
	// is confirmed: dropping before (or despite a failed) sync would open
	// a window with the old copy gone and the new one not shipped, where
	// a primary crash violates the R-copy guarantee.  Unconfirmed
	// partitions keep their old `placed` record, so the move is retried —
	// and the old copies retained — on the next pass.
	drops := make(map[transport.NodeID][]hashspace.Partition)
	s.mu.Lock()
	for p, hosts := range cur {
		if !synced[p] {
			continue
		}
		inSet := make(map[transport.NodeID]bool, len(hosts))
		for _, h := range hosts {
			inSet[h] = true
		}
		for _, old := range s.placed[p] {
			if !inSet[old] {
				drops[old] = append(drops[old], p)
			}
		}
		s.placed[p] = hosts
	}
	// Partitions that vanished from the owned set since the last pass
	// split into children (handovers clean up their own bookkeeping in
	// dropOrphanReplicas): once every child's replica set is confirmed,
	// the parent-level buckets recorded for the old placement are pure
	// leftovers and can go.
	for p, hosts := range s.placed {
		if _, owned := cur[p]; owned {
			continue
		}
		// cur is a pass-START snapshot and this pass spent real time in
		// probe/sync RPCs: a partition installed meanwhile is absent from
		// cur yet owned right now, and its `placed` record — just written
		// by the install's re-homing — must survive, or its old replica
		// host is never told to drop.  Re-validate against the live
		// ownership index before treating the record as a leftover.
		if _, p2, ok := s.ownedForLocked(p.Start()); ok && p2 == p {
			continue
		}
		covered, hasChild := true, false
		for q := range cur {
			if q.Level > p.Level && overlapping(p, q) {
				hasChild = true
				if !synced[q] {
					covered = false
					break
				}
			}
		}
		if hasChild && covered {
			for _, h := range hosts {
				drops[h] = append(drops[h], p)
			}
			delete(s.placed, p)
		} else if !hasChild {
			delete(s.placed, p) // handed over; the new primary tracks it now
		}
	}
	s.mu.Unlock()
	for host, ps := range drops {
		s.send(host, replDropMsg{Partitions: ps})
	}
}

// replicaPartitions lists the partitions this snode currently backs as a
// replica, sorted — introspection for tests and status.
func (s *Snode) replicaPartitions() []hashspace.Partition {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]hashspace.Partition, 0, len(s.rparts))
	for p := range s.rparts {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Level != out[j].Level {
			return out[i].Level < out[j].Level
		}
		return out[i].Prefix < out[j].Prefix
	})
	return out
}
