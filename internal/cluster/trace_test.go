package cluster

import (
	"testing"
	"time"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/wal"
)

// runTracePropagation boots a 3-snode R=2 cluster with sampling at 100%
// and a group-commit WAL, runs one MPut, and checks that the resulting
// trace stitches the whole write path together: client root, per-snode
// batch serving, replica fan-out and ack wait, and the WAL durability
// wait — with spans recorded on at least two distinct snodes.
func runTracePropagation(t *testing.T, net transport.Network) {
	t.Helper()
	c, err := New(Config{
		Pmin: 32, Vmin: 8, Seed: 7, RPCTimeout: 20 * time.Second,
		Replicas: 2, AntiEntropyInterval: time.Hour,
		TraceSample: 1,
		Durability:  DurabilityConfig{Dir: t.TempDir(), Fsync: wal.FsyncBatch},
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 3; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	growCluster(t, c, 12)

	_, items := batchKeys(64)
	results, err := c.MPut(items)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OK() {
			t.Fatalf("MPut %q: %s", r.Key, r.Err)
		}
	}

	var id uint64
	for _, ts := range c.Traces() {
		if ts.Name == "op.mput" {
			id = ts.TraceID
			break
		}
	}
	if id == 0 {
		t.Fatal("no op.mput trace recorded at 100% sampling")
	}
	spans := c.Trace(id)
	names := map[string]int{}
	snodes := map[transport.NodeID]bool{}
	ids := map[uint64]bool{}
	for _, sp := range spans {
		if sp.TraceID != id {
			t.Fatalf("Trace(%d) returned span of trace %d", id, sp.TraceID)
		}
		names[sp.Name]++
		ids[sp.SpanID] = true
		if sp.Snode >= 0 {
			snodes[sp.Snode] = true
		}
	}
	if names["op.mput"] != 1 {
		t.Fatalf("trace has %d op.mput roots, want 1 (spans: %v)", names["op.mput"], names)
	}
	for _, want := range []string{
		"batch.rpc",      // client-side round trip
		"batch.serve",    // primary serving the shard
		"batch.repl-ack", // primary waiting on replica acks
		"repl.fanout",    // primary pushing to replicas
		"repl.write",     // replica applying the write
		"batch.wal-wait", // primary waiting for WAL group commit
	} {
		if names[want] == 0 {
			t.Errorf("trace is missing %q spans (got %v)", want, names)
		}
	}
	if len(snodes) < 2 {
		t.Fatalf("trace spans recorded on %d snode(s), want >= 2 (spans: %v)", len(snodes), names)
	}
	// Every non-root span's parent must be another span of this trace:
	// a broken link means a stage failed to propagate the context.
	for _, sp := range spans {
		if sp.Parent != 0 && !ids[sp.Parent] {
			t.Errorf("span %s@%d has unknown parent %d", sp.Name, sp.Snode, sp.Parent)
		}
		if sp.Outcome != "ok" {
			t.Errorf("span %s@%d outcome = %q, want ok", sp.Name, sp.Snode, sp.Outcome)
		}
	}
}

func TestTracePropagationMem(t *testing.T) {
	runTracePropagation(t, transport.NewMem())
}

func TestTracePropagationTCP(t *testing.T) {
	runTracePropagation(t, transport.NewTCP("127.0.0.1"))
}

// TestTraceSamplingToggle: tracing starts off (default), records nothing,
// and can be turned on and back off live.
func TestTraceSamplingToggle(t *testing.T) {
	c := newTestCluster(t, 32, 8, 3, 9)
	growCluster(t, c, 6)
	_, items := batchKeys(32)

	if _, err := c.MPut(items); err != nil {
		t.Fatal(err)
	}
	if got := c.Traces(); len(got) != 0 {
		t.Fatalf("tracing off recorded %d traces", len(got))
	}

	c.SetTraceSampling(1)
	if got := c.TraceSampling(); got != 1 {
		t.Fatalf("TraceSampling() = %v after SetTraceSampling(1)", got)
	}
	if _, err := c.MPut(items); err != nil {
		t.Fatal(err)
	}
	on := len(c.Traces())
	if on == 0 {
		t.Fatal("tracing on recorded no traces")
	}

	c.SetTraceSampling(0)
	if _, err := c.MPut(items); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Traces()); got != on {
		t.Fatalf("tracing off again: trace count went %d -> %d", on, got)
	}
}

// TestTraceSamplingOffNoAlloc is the overhead guard: with sampling off,
// the per-operation tracing cost must be one atomic load and zero
// allocations.
func TestTraceSamplingOffNoAlloc(t *testing.T) {
	var sm sampler
	sm.setRate(0)
	allocs := testing.AllocsPerRun(1000, func() {
		tr := sm.next()
		sp := beginSpan(tr, "op.mput")
		if sp.active() {
			t.Fatal("unsampled context produced an active span")
		}
	})
	if allocs != 0 {
		t.Fatalf("sampling-off path allocates %v per op, want 0", allocs)
	}
}

// TestLatencyHistogramsPopulated: batch traffic must land observations in
// the cluster-wide latency snapshot even with tracing off.
func TestLatencyHistogramsPopulated(t *testing.T) {
	c := newReplicatedCluster(t, transport.NewMem(), 3, 2, 11)
	growCluster(t, c, 6)
	_, items := batchKeys(64)
	if _, err := c.MPut(items); err != nil {
		t.Fatal(err)
	}
	lat := c.Latencies()
	if lat.BatchRPC.Count == 0 {
		t.Fatal("BatchRPC histogram empty after MPut")
	}
	if lat.ReplicaAckWait.Count == 0 {
		t.Fatal("ReplicaAckWait histogram empty after R=2 MPut")
	}
}
