package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"dbdht/internal/balance"
	"dbdht/internal/cluster/transport"
)

// Autonomous load-aware balancement.  The paper's machinery balances
// quotas *within* the scope of each balancement event — a join or a leave
// — but nothing in the runtime decided WHEN to hold those events: after
// boot, enrollment was only ever adjusted by hand (SetEnrollment).  This
// file closes the loop: a background controller at the cluster handle
// observes every snode's real load (per-bucket EWMA rates, load.go) and
// its share of the hash space, compares them against configurable
// capacity weights (heterogeneous snodes, base-model feature (a)), and
// when the capacity-normalized per-snode quota deviation exceeds a
// threshold it adjusts per-snode vnode enrollment toward
// capacity-proportional targets (balance.WeightedTargets).  The actual
// partition migrations are *delegated*: every enrollment step is a §3.6
// join or leave executed by the affected group's leader, so concurrent
// balancement work spreads across group leaders exactly as the paper's
// §3.1 parallelism model prescribes — the controller only decides where
// vnodes should live.
//
// Load-awareness: quota drives the convergence metric (σ of Q_s/w_s —
// balancing it is what the §2.5 algorithm can guarantee), while the
// observed traffic rates order the work: among equally over-enrolled
// snodes the hottest one sheds first, so a hot spot drains before a
// merely data-heavy cold spot.

// BalanceConfig tunes the autonomous balancer.
type BalanceConfig struct {
	// Interval paces the background control loop; 0 (the default) leaves
	// the loop off — BalanceNow still runs rounds on demand.
	Interval time.Duration
	// QuotaDeviation is the action threshold: a round only moves
	// enrollment when the relative stddev of capacity-normalized per-snode
	// quotas exceeds it (default 0.15).
	QuotaDeviation float64
	// MaxMovesPerRound bounds the enrollment adjustments (vnode creates
	// plus removes) of one round, so a badly skewed cluster converges in
	// measured steps instead of one migration storm (default 2).
	MaxMovesPerRound int
}

// SnodeLoad is one snode's load report as the balancer saw it.
type SnodeLoad struct {
	Snode    transport.NodeID
	Capacity float64
	Vnodes   int
	Keys     int
	Quota    float64 // fraction of R_h owned
	Reads    float64 // EWMA ops/s
	Writes   float64 // EWMA ops/s
	Bytes    float64 // EWMA bytes/s
}

// BalanceRound is the outcome of one control-loop round.
type BalanceRound struct {
	// Sigma is the relative stddev of capacity-normalized per-snode
	// quotas (Q_s/w_s) before any action this round.
	Sigma float64
	// Moves is the number of enrollment adjustments performed.
	Moves int
	// Loads are the per-snode reports the decision was based on.
	Loads []SnodeLoad
}

// BalancerStats aggregates the balancer's lifetime counters.
type BalancerStats struct {
	Rounds    int64   // control rounds run
	Moves     int64   // enrollment adjustments performed
	LastSigma float64 // capacity-normalized quota deviation at the last round
}

// BalancerStats returns the balancer's lifetime counters.
func (c *Cluster) BalancerStats() BalancerStats {
	return BalancerStats{
		Rounds:    c.balRounds.Load(),
		Moves:     c.balMoves.Load(),
		LastSigma: math.Float64frombits(c.balSigma.Load()),
	}
}

// balancerLoop runs rounds until the cluster shuts down.  Started by New
// when Balance.Interval > 0.
func (c *Cluster) balancerLoop() {
	t := time.NewTicker(c.cfg.Balance.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			_, _ = c.BalanceNow()
		}
	}
}

// LoadReport collects every snode's current load report (no balancing
// action).  Snodes that fail to answer — e.g. mid-departure — are
// omitted.
func (c *Cluster) LoadReport() ([]SnodeLoad, error) {
	c.mu.Lock()
	ids := append([]transport.NodeID(nil), c.order...)
	caps := make(map[transport.NodeID]float64, len(ids))
	for _, id := range ids {
		caps[id] = c.caps[id]
	}
	c.mu.Unlock()
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: no snodes")
	}
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	loads := make([]SnodeLoad, 0, len(ids))
	for _, id := range ids {
		wg.Add(1)
		go func(id transport.NodeID) {
			defer wg.Done()
			v, err := c.rpc(id, func(op uint64) any {
				return loadReportReq{Op: op, ReplyTo: clientID}
			})
			if err != nil {
				return
			}
			resp := v.(loadReportResp)
			w := caps[id]
			if w <= 0 {
				w = 1
			}
			mu.Lock()
			loads = append(loads, SnodeLoad{
				Snode: id, Capacity: w,
				Vnodes: resp.Vnodes, Keys: resp.Keys, Quota: resp.Quota,
				Reads: resp.Reads, Writes: resp.Writes, Bytes: resp.Bytes,
			})
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	if len(loads) == 0 {
		return nil, fmt.Errorf("cluster: no snode answered its load report")
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].Snode < loads[j].Snode })
	return loads, nil
}

// quotaSigma is the convergence metric: relative stddev of the
// capacity-normalized per-snode quotas Q_s/w_s.
func quotaSigma(loads []SnodeLoad) float64 {
	if len(loads) == 0 {
		return 0
	}
	norm := make([]float64, len(loads))
	mean := 0.0
	for i, l := range loads {
		norm[i] = l.Quota / l.Capacity
		mean += norm[i]
	}
	mean /= float64(len(norm))
	if mean == 0 {
		return 0
	}
	sum := 0.0
	for _, q := range norm {
		d := q - mean
		sum += d * d
	}
	return math.Sqrt(sum/float64(len(norm))) / mean
}

// loadPerCapacity orders urgency: observed traffic normalized by the
// snode's capacity weight, falling back to quota when the cluster is idle.
func (l SnodeLoad) loadPerCapacity() float64 {
	ops := l.Reads + l.Writes
	if ops > 0 {
		return ops / l.Capacity
	}
	return l.Quota / l.Capacity
}

// BalanceNow runs one balancement round: collect load reports, measure
// the capacity-normalized quota deviation, and — only if it exceeds the
// configured threshold — move vnode enrollment toward
// capacity-proportional targets, at most MaxMovesPerRound steps.  Rounds
// are serialized; the background loop calls this on its ticker.
func (c *Cluster) BalanceNow() (BalanceRound, error) {
	c.balMu.Lock()
	defer c.balMu.Unlock()
	loads, err := c.LoadReport()
	if err != nil {
		return BalanceRound{}, err
	}
	round := BalanceRound{Loads: loads, Sigma: quotaSigma(loads)}
	c.balRounds.Add(1)
	c.balSigma.Store(math.Float64bits(round.Sigma))
	if round.Sigma <= c.cfg.Balance.QuotaDeviation {
		return round, nil
	}

	// Work on a copy: the move loop tracks enrollment as it changes it,
	// and round.Loads must stay the pristine reports the decision was
	// based on.
	work := append([]SnodeLoad(nil), loads...)
	totalV := 0
	weights := make(map[transport.NodeID]float64, len(work))
	byID := make(map[transport.NodeID]*SnodeLoad, len(work))
	for i := range work {
		l := &work[i]
		totalV += l.Vnodes
		weights[l.Snode] = l.Capacity
		byID[l.Snode] = l
	}
	if totalV == 0 {
		return round, fmt.Errorf("cluster: balance: no vnodes enrolled")
	}
	targets, err := balance.WeightedTargets(weights, totalV,
		func(a, b transport.NodeID) bool { return a < b })
	if err != nil {
		return round, err
	}

	// Donors shed a vnode (over target), receivers gain one (under
	// target).  Load per capacity orders the donors — the hottest
	// overloaded snode sheds first — and the neediest receiver fills
	// first.
	var donors, receivers []*SnodeLoad
	for _, l := range byID {
		switch {
		case l.Vnodes > targets[l.Snode]:
			donors = append(donors, l)
		case l.Vnodes < targets[l.Snode]:
			receivers = append(receivers, l)
		}
	}
	sort.Slice(donors, func(i, j int) bool {
		if di, dj := donors[i].loadPerCapacity(), donors[j].loadPerCapacity(); di != dj {
			return di > dj
		}
		return donors[i].Snode < donors[j].Snode
	})
	sort.Slice(receivers, func(i, j int) bool {
		di := targets[receivers[i].Snode] - receivers[i].Vnodes
		dj := targets[receivers[j].Snode] - receivers[j].Vnodes
		if di != dj {
			return di > dj
		}
		return receivers[i].Snode < receivers[j].Snode
	})

	if len(donors) == 0 && len(receivers) == 0 {
		// Enrollment is already capacity-proportional but the quotas are
		// not (e.g. uneven partition counts across groups): shift one
		// vnode from the largest normalized quota to the smallest.
		var hi, lo *SnodeLoad
		for _, l := range byID {
			if (hi == nil || l.Quota/l.Capacity > hi.Quota/hi.Capacity) && l.Vnodes > 1 {
				hi = l
			}
			if lo == nil || l.Quota/l.Capacity < lo.Quota/lo.Capacity {
				lo = l
			}
		}
		if hi == nil || lo == nil || hi == lo {
			return round, nil
		}
		donors, receivers = []*SnodeLoad{hi}, []*SnodeLoad{lo}
		targets[hi.Snode] = hi.Vnodes - 1
		targets[lo.Snode] = lo.Vnodes + 1
	}

	// Alternate create and remove steps — growth first, so capacity is in
	// place before the shed migrations land — until the round budget or
	// both lists run out.  Every step is one §3.6 join/leave executed by
	// the affected group's leader.
	var firstErr error
	for round.Moves < c.cfg.Balance.MaxMovesPerRound && (len(receivers) > 0 || len(donors) > 0) {
		acted := false
		if len(receivers) > 0 {
			r := receivers[0]
			if _, _, err := c.CreateVnode(r.Snode); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				receivers = receivers[1:]
			} else {
				round.Moves++
				r.Vnodes++
				if r.Vnodes >= targets[r.Snode] {
					receivers = receivers[1:]
				}
				acted = true
			}
		}
		if round.Moves >= c.cfg.Balance.MaxMovesPerRound {
			break
		}
		if len(donors) > 0 {
			d := donors[0]
			if err := c.shedVnode(d.Snode); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				donors = donors[1:]
			} else {
				round.Moves++
				d.Vnodes--
				if d.Vnodes <= targets[d.Snode] {
					donors = donors[1:]
				}
				acted = true
			}
		}
		if !acted {
			break
		}
	}
	c.balMoves.Add(int64(round.Moves))
	return round, firstErr
}

// shedVnode removes the most recently created vnode hosted at the snode.
func (c *Cluster) shedVnode(id transport.NodeID) error {
	c.mu.Lock()
	s, ok := c.snodes[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: snode %d not in cluster", id)
	}
	hosted := s.hostedVnodes()
	if len(hosted) == 0 {
		return fmt.Errorf("cluster: snode %d hosts no vnode to shed", id)
	}
	return c.RemoveVnode(hosted[len(hosted)-1])
}
