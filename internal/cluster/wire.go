package cluster

import (
	"math"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/core"
	"dbdht/internal/hashspace"
)

// Hand-rolled binary codecs for the hot-path protocol messages: batch
// req/resp (the entire data plane), the replica write fan-out and probe,
// lookup, and ping.  These implement transport.WireMessage, so the TCP
// fabric frames them with the binary codec instead of gob — no reflection,
// no per-message type descriptors.  Control messages (join/split/transfer/
// ship/sync/...) stay on the gob fallback: they are orders of magnitude
// rarer and their payloads change more often.
//
// Tags are a wire-compatibility contract: never renumber, only append.
// Integers are varints (zigzag for the signed NodeID/int fields — the
// client endpoint id is negative); byte slices and strings are
// length-prefixed.

const (
	wireTagLookupReq     uint16 = 1
	wireTagLookupResp    uint16 = 2
	wireTagBatchReq      uint16 = 3
	wireTagBatchResp     uint16 = 4
	wireTagReplWriteReq  uint16 = 5
	wireTagReplWriteResp uint16 = 6
	wireTagReplProbeReq  uint16 = 7
	wireTagReplProbeResp uint16 = 8
	wireTagPingReq       uint16 = 9
	wireTagPingResp      uint16 = 10
	wireTagMigBeginReq   uint16 = 11
	wireTagMigBeginResp  uint16 = 12
	wireTagMigChunkReq   uint16 = 13
	wireTagMigChunkResp  uint16 = 14
	wireTagMigCommitReq  uint16 = 15
	wireTagMigCommitResp uint16 = 16
	wireTagMigAbort      uint16 = 17
	wireTagLoadReq       uint16 = 18
	wireTagLoadResp      uint16 = 19
)

func init() {
	transport.RegisterWire(wireTagLookupReq, decodeLookupReq)
	transport.RegisterWire(wireTagLookupResp, decodeLookupResp)
	transport.RegisterWire(wireTagBatchReq, decodeBatchReq)
	transport.RegisterWire(wireTagBatchResp, decodeBatchResp)
	transport.RegisterWire(wireTagReplWriteReq, decodeReplWriteReq)
	transport.RegisterWire(wireTagReplWriteResp, decodeReplWriteResp)
	transport.RegisterWire(wireTagReplProbeReq, decodeReplProbeReq)
	transport.RegisterWire(wireTagReplProbeResp, decodeReplProbeResp)
	transport.RegisterWire(wireTagPingReq, decodePingReq)
	transport.RegisterWire(wireTagPingResp, decodePingResp)
	transport.RegisterWire(wireTagMigBeginReq, decodeMigBeginReq)
	transport.RegisterWire(wireTagMigBeginResp, decodeMigBeginResp)
	transport.RegisterWire(wireTagMigChunkReq, decodeMigChunkReq)
	transport.RegisterWire(wireTagMigChunkResp, decodeMigChunkResp)
	transport.RegisterWire(wireTagMigCommitReq, decodeMigCommitReq)
	transport.RegisterWire(wireTagMigCommitResp, decodeMigCommitResp)
	transport.RegisterWire(wireTagMigAbort, decodeMigAbort)
	transport.RegisterWire(wireTagLoadReq, decodeLoadReportReq)
	transport.RegisterWire(wireTagLoadResp, decodeLoadReportResp)
}

// --- shared sub-structures ---

func appendPartition(b []byte, p hashspace.Partition) []byte {
	b = transport.AppendUvarint(b, p.Prefix)
	return transport.AppendUvarint(b, uint64(p.Level))
}

func readPartition(r *transport.WireReader) hashspace.Partition {
	pre := r.Uvarint()
	lvl := r.Uvarint()
	// Validate before use: an out-of-range level would index past the
	// level-set arrays downstream (a remote panic from a corrupt frame),
	// and stray prefix bits would corrupt partition-keyed maps.
	if lvl > hashspace.MaxLevel {
		r.Invalid("partition level")
		return hashspace.Partition{}
	}
	p := hashspace.Partition{Prefix: pre, Level: uint8(lvl)}
	if !p.Valid() {
		r.Invalid("partition prefix")
		return hashspace.Partition{}
	}
	return p
}

func appendVnodeName(b []byte, n VnodeName) []byte {
	b = transport.AppendVarint(b, int64(n.Snode))
	return transport.AppendVarint(b, int64(n.Local))
}

func readVnodeName(r *transport.WireReader) VnodeName {
	sn := r.Varint()
	lo := r.Varint()
	return VnodeName{Snode: transport.NodeID(sn), Local: int(lo)}
}

func appendRouteEntry(b []byte, e routeEntry) []byte {
	b = appendPartition(b, e.Partition)
	b = appendVnodeName(b, e.Ref.Vnode)
	b = transport.AppendVarint(b, int64(e.Ref.Host))
	b = transport.AppendUvarint(b, uint64(len(e.Replicas)))
	for _, h := range e.Replicas {
		b = transport.AppendVarint(b, int64(h))
	}
	return b
}

func readRouteEntry(r *transport.WireReader) routeEntry {
	var e routeEntry
	e.Partition = readPartition(r)
	e.Ref.Vnode = readVnodeName(r)
	e.Ref.Host = transport.NodeID(r.Varint())
	if n := r.ArrayLen(1); n > 0 {
		e.Replicas = make([]transport.NodeID, n)
		for i := range e.Replicas {
			e.Replicas[i] = transport.NodeID(r.Varint())
		}
	}
	return e
}

func appendBatchItems(b []byte, items []batchItem) []byte {
	b = transport.AppendUvarint(b, uint64(len(items)))
	for _, it := range items {
		b = transport.AppendString(b, it.Key)
		b = transport.AppendBytes(b, it.Value)
	}
	return b
}

func readBatchItems(r *transport.WireReader) []batchItem {
	n := r.ArrayLen(2)
	if n == 0 {
		return nil
	}
	items := make([]batchItem, n)
	for i := range items {
		items[i].Key = r.String()
		items[i].Value = r.Bytes()
	}
	return items
}

// --- lookup ---

func (m lookupReq) WireTag() uint16 { return wireTagLookupReq }

func (m lookupReq) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	b = transport.AppendUvarint(b, m.R)
	b = transport.AppendVarint(b, int64(m.ReplyTo))
	return transport.AppendVarint(b, int64(m.Hops))
}

func decodeLookupReq(r *transport.WireReader) (any, error) {
	var m lookupReq
	m.Op = r.Uvarint()
	m.R = r.Uvarint()
	m.ReplyTo = transport.NodeID(r.Varint())
	m.Hops = int(r.Varint())
	return m, r.Err()
}

func (m lookupResp) WireTag() uint16 { return wireTagLookupResp }

func (m lookupResp) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	b = appendVnodeName(b, m.Owner)
	b = transport.AppendVarint(b, int64(m.Host))
	b = appendPartition(b, m.Partition)
	b = transport.AppendUvarint(b, m.Group.Bits)
	b = transport.AppendUvarint(b, uint64(m.Group.Len))
	b = transport.AppendVarint(b, int64(m.Leader))
	return transport.AppendString(b, m.Err)
}

func decodeLookupResp(r *transport.WireReader) (any, error) {
	var m lookupResp
	m.Op = r.Uvarint()
	m.Owner = readVnodeName(r)
	m.Host = transport.NodeID(r.Varint())
	m.Partition = readPartition(r)
	m.Group = core.GroupID{Bits: r.Uvarint(), Len: uint8(r.Uvarint())}
	m.Leader = transport.NodeID(r.Varint())
	m.Err = r.String()
	return m, r.Err()
}

// --- batch ---

func (m batchReq) WireTag() uint16 { return wireTagBatchReq }

func (m batchReq) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	b = transport.AppendVarint(b, int64(m.Kind))
	b = appendBatchItems(b, m.Items)
	b = transport.AppendVarint(b, int64(m.ReplyTo))
	b = transport.AppendVarint(b, int64(m.Hops))
	return transport.AppendBool(b, m.ReadReplica)
}

func decodeBatchReq(r *transport.WireReader) (any, error) {
	var m batchReq
	m.Op = r.Uvarint()
	m.Kind = dataOp(r.Varint())
	m.Items = readBatchItems(r)
	m.ReplyTo = transport.NodeID(r.Varint())
	m.Hops = int(r.Varint())
	m.ReadReplica = r.Bool()
	m.private = true // decoded slices are exclusively this message's
	return m, r.Err()
}

func (m batchResp) WireTag() uint16 { return wireTagBatchResp }

func (m batchResp) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	b = transport.AppendUvarint(b, uint64(len(m.Results)))
	for _, res := range m.Results {
		b = transport.AppendBytes(b, res.Value)
		b = transport.AppendBool(b, res.Found)
		b = transport.AppendString(b, res.Err)
	}
	b = transport.AppendUvarint(b, uint64(len(m.Served)))
	for _, e := range m.Served {
		b = appendRouteEntry(b, e)
	}
	return b
}

func decodeBatchResp(r *transport.WireReader) (any, error) {
	var m batchResp
	m.Op = r.Uvarint()
	if n := r.ArrayLen(3); n > 0 {
		m.Results = make([]batchItemResp, n)
		for i := range m.Results {
			m.Results[i].Value = r.Bytes()
			m.Results[i].Found = r.Bool()
			m.Results[i].Err = r.String()
		}
	}
	if n := r.ArrayLen(5); n > 0 {
		m.Served = make([]routeEntry, n)
		for i := range m.Served {
			m.Served[i] = readRouteEntry(r)
		}
	}
	return m, r.Err()
}

// --- replica plane ---

func (m replWriteReq) WireTag() uint16 { return wireTagReplWriteReq }

func (m replWriteReq) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	b = transport.AppendVarint(b, int64(m.Kind))
	b = transport.AppendUvarint(b, uint64(len(m.Sets)))
	for _, set := range m.Sets {
		b = appendPartition(b, set.Partition)
		b = appendBatchItems(b, set.Items)
		b = transport.AppendUvarint(b, set.Ver)
		b = appendGroup(b, set.Group)
	}
	return transport.AppendVarint(b, int64(m.ReplyTo))
}

func decodeReplWriteReq(r *transport.WireReader) (any, error) {
	var m replWriteReq
	m.Op = r.Uvarint()
	m.Kind = dataOp(r.Varint())
	if n := r.ArrayLen(3); n > 0 {
		m.Sets = make([]replWriteSet, n)
		for i := range m.Sets {
			m.Sets[i].Partition = readPartition(r)
			m.Sets[i].Items = readBatchItems(r)
			m.Sets[i].Ver = r.Uvarint()
			m.Sets[i].Group = readGroup(r)
		}
	}
	m.ReplyTo = transport.NodeID(r.Varint())
	m.private = true // decoded slices are exclusively this message's
	return m, r.Err()
}

func (m replWriteResp) WireTag() uint16 { return wireTagReplWriteResp }

func (m replWriteResp) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	return transport.AppendString(b, m.Err)
}

func decodeReplWriteResp(r *transport.WireReader) (any, error) {
	var m replWriteResp
	m.Op = r.Uvarint()
	m.Err = r.String()
	return m, r.Err()
}

func (m replProbeReq) WireTag() uint16 { return wireTagReplProbeReq }

func (m replProbeReq) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	b = appendPartition(b, m.Partition)
	b = transport.AppendVarint(b, int64(m.Count))
	b = transport.AppendUvarint(b, m.Sum)
	return transport.AppendVarint(b, int64(m.ReplyTo))
}

func decodeReplProbeReq(r *transport.WireReader) (any, error) {
	var m replProbeReq
	m.Op = r.Uvarint()
	m.Partition = readPartition(r)
	m.Count = int(r.Varint())
	m.Sum = r.Uvarint()
	m.ReplyTo = transport.NodeID(r.Varint())
	return m, r.Err()
}

func (m replProbeResp) WireTag() uint16 { return wireTagReplProbeResp }

func (m replProbeResp) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	return transport.AppendBool(b, m.InSync)
}

func decodeReplProbeResp(r *transport.WireReader) (any, error) {
	var m replProbeResp
	m.Op = r.Uvarint()
	m.InSync = r.Bool()
	return m, r.Err()
}

// --- ping ---

func (m pingReq) WireTag() uint16 { return wireTagPingReq }

func (m pingReq) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	return transport.AppendVarint(b, int64(m.ReplyTo))
}

func decodePingReq(r *transport.WireReader) (any, error) {
	var m pingReq
	m.Op = r.Uvarint()
	m.ReplyTo = transport.NodeID(r.Varint())
	return m, r.Err()
}

func (m pingResp) WireTag() uint16 { return wireTagPingResp }

func (m pingResp) AppendWire(b []byte) []byte {
	return transport.AppendUvarint(b, m.Op)
}

func decodePingResp(r *transport.WireReader) (any, error) {
	var m pingResp
	m.Op = r.Uvarint()
	return m, r.Err()
}

// --- chunked live migration ---

func appendGroup(b []byte, g core.GroupID) []byte {
	b = transport.AppendUvarint(b, g.Bits)
	return transport.AppendUvarint(b, uint64(g.Len))
}

func readGroup(r *transport.WireReader) core.GroupID {
	return core.GroupID{Bits: r.Uvarint(), Len: uint8(r.Uvarint())}
}

func appendMigItems(b []byte, items []migItem) []byte {
	b = transport.AppendUvarint(b, uint64(len(items)))
	for _, it := range items {
		b = transport.AppendString(b, it.Key)
		b = transport.AppendBytes(b, it.Value)
		b = transport.AppendBool(b, it.Del)
	}
	return b
}

func readMigItems(r *transport.WireReader) []migItem {
	n := r.ArrayLen(3)
	if n == 0 {
		return nil
	}
	items := make([]migItem, n)
	for i := range items {
		items[i].Key = r.String()
		items[i].Value = r.Bytes()
		items[i].Del = r.Bool()
	}
	return items
}

func (m migBeginReq) WireTag() uint16 { return wireTagMigBeginReq }

func (m migBeginReq) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	b = appendGroup(b, m.Group)
	b = appendVnodeName(b, m.To)
	b = appendPartition(b, m.Partition)
	b = transport.AppendUvarint(b, uint64(m.Level))
	return transport.AppendVarint(b, int64(m.ReplyTo))
}

func decodeMigBeginReq(r *transport.WireReader) (any, error) {
	var m migBeginReq
	m.Op = r.Uvarint()
	m.Group = readGroup(r)
	m.To = readVnodeName(r)
	m.Partition = readPartition(r)
	m.Level = uint8(r.Uvarint())
	m.ReplyTo = transport.NodeID(r.Varint())
	return m, r.Err()
}

func (m migBeginResp) WireTag() uint16 { return wireTagMigBeginResp }

func (m migBeginResp) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	return transport.AppendString(b, m.Err)
}

func decodeMigBeginResp(r *transport.WireReader) (any, error) {
	var m migBeginResp
	m.Op = r.Uvarint()
	m.Err = r.String()
	return m, r.Err()
}

func (m migChunkReq) WireTag() uint16 { return wireTagMigChunkReq }

func (m migChunkReq) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	b = appendVnodeName(b, m.To)
	b = appendPartition(b, m.Partition)
	b = appendMigItems(b, m.Items)
	return transport.AppendVarint(b, int64(m.ReplyTo))
}

func decodeMigChunkReq(r *transport.WireReader) (any, error) {
	var m migChunkReq
	m.Op = r.Uvarint()
	m.To = readVnodeName(r)
	m.Partition = readPartition(r)
	m.Items = readMigItems(r)
	m.ReplyTo = transport.NodeID(r.Varint())
	m.private = true // decoded slices are exclusively this message's
	return m, r.Err()
}

func (m migChunkResp) WireTag() uint16 { return wireTagMigChunkResp }

func (m migChunkResp) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	return transport.AppendString(b, m.Err)
}

func decodeMigChunkResp(r *transport.WireReader) (any, error) {
	var m migChunkResp
	m.Op = r.Uvarint()
	m.Err = r.String()
	return m, r.Err()
}

func (m migCommitReq) WireTag() uint16 { return wireTagMigCommitReq }

func (m migCommitReq) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	b = appendVnodeName(b, m.To)
	b = appendPartition(b, m.Partition)
	b = appendMigItems(b, m.Items)
	return transport.AppendVarint(b, int64(m.ReplyTo))
}

func decodeMigCommitReq(r *transport.WireReader) (any, error) {
	var m migCommitReq
	m.Op = r.Uvarint()
	m.To = readVnodeName(r)
	m.Partition = readPartition(r)
	m.Items = readMigItems(r)
	m.ReplyTo = transport.NodeID(r.Varint())
	m.private = true
	return m, r.Err()
}

func (m migCommitResp) WireTag() uint16 { return wireTagMigCommitResp }

func (m migCommitResp) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	return transport.AppendString(b, m.Err)
}

func decodeMigCommitResp(r *transport.WireReader) (any, error) {
	var m migCommitResp
	m.Op = r.Uvarint()
	m.Err = r.String()
	return m, r.Err()
}

func (m migAbortMsg) WireTag() uint16 { return wireTagMigAbort }

func (m migAbortMsg) AppendWire(b []byte) []byte {
	b = appendVnodeName(b, m.To)
	return appendPartition(b, m.Partition)
}

func decodeMigAbort(r *transport.WireReader) (any, error) {
	var m migAbortMsg
	m.To = readVnodeName(r)
	m.Partition = readPartition(r)
	return m, r.Err()
}

// --- load reports ---

func appendFloat(b []byte, v float64) []byte {
	return transport.AppendUvarint(b, math.Float64bits(v))
}

func readFloat(r *transport.WireReader) float64 {
	return math.Float64frombits(r.Uvarint())
}

func (m loadReportReq) WireTag() uint16 { return wireTagLoadReq }

func (m loadReportReq) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	return transport.AppendVarint(b, int64(m.ReplyTo))
}

func decodeLoadReportReq(r *transport.WireReader) (any, error) {
	var m loadReportReq
	m.Op = r.Uvarint()
	m.ReplyTo = transport.NodeID(r.Varint())
	return m, r.Err()
}

func (m loadReportResp) WireTag() uint16 { return wireTagLoadResp }

func (m loadReportResp) AppendWire(b []byte) []byte {
	b = transport.AppendUvarint(b, m.Op)
	b = transport.AppendVarint(b, int64(m.Vnodes))
	b = transport.AppendVarint(b, int64(m.Keys))
	b = appendFloat(b, m.Quota)
	b = appendFloat(b, m.Reads)
	b = appendFloat(b, m.Writes)
	return appendFloat(b, m.Bytes)
}

func decodeLoadReportResp(r *transport.WireReader) (any, error) {
	var m loadReportResp
	m.Op = r.Uvarint()
	m.Vnodes = int(r.Varint())
	m.Keys = int(r.Varint())
	m.Quota = readFloat(r)
	m.Reads = readFloat(r)
	m.Writes = readFloat(r)
	m.Bytes = readFloat(r)
	return m, r.Err()
}
