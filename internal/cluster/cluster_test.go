package cluster

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/core"
	"dbdht/internal/hashspace"
)

func newTestCluster(t *testing.T, pmin, vmin, snodes int, seed int64) *Cluster {
	t.Helper()
	c, err := New(Config{Pmin: pmin, Vmin: vmin, Seed: seed, RPCTimeout: 20 * time.Second}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < snodes; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// growCluster creates n vnodes round-robin across the snodes.
func growCluster(t *testing.T, c *Cluster, n int) []VnodeName {
	t.Helper()
	ids := c.Snodes()
	var names []VnodeName
	for i := 0; i < n; i++ {
		name, _, err := c.CreateVnode(ids[i%len(ids)])
		if err != nil {
			t.Fatalf("create vnode %d: %v", i, err)
		}
		names = append(names, name)
	}
	return names
}

// verifySnapshot checks the cluster-wide invariants on a quiescent cluster:
// the materialized partitions tile R_h (G1′/L1), every group's vnodes share
// one splitlevel (G3′), group sizes respect L2's upper bound, and LPDR
// replicas agree with materialized partition counts.
func verifySnapshot(t *testing.T, c *Cluster) Snapshot {
	t.Helper()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	all := hashspace.NewSet()
	groupLevels := make(map[core.GroupID]uint8)
	groupSizes := make(map[core.GroupID]int)
	counts := make(map[VnodeName]int)
	for _, v := range snap.Vnodes {
		for _, p := range v.Partitions {
			if err := all.Add(p); err != nil {
				t.Fatalf("overlap: %v", err)
			}
		}
		if lvl, seen := groupLevels[v.Group]; seen && lvl != v.Level {
			t.Fatalf("group %v has mixed levels %d and %d", v.Group, lvl, v.Level)
		}
		groupLevels[v.Group] = v.Level
		groupSizes[v.Group]++
		counts[v.Name] = len(v.Partitions)
	}
	if len(snap.Vnodes) > 0 && !all.Covers() {
		t.Fatal("materialized partitions do not tile R_h")
	}
	vmax := 2 * c.cfg.Vmin
	for g, n := range groupSizes {
		if n < 1 || n > vmax {
			t.Fatalf("group %v has %d vnodes (Vmax=%d)", g, n, vmax)
		}
	}
	// Leader LPDRs must match materialized state.
	for host, reps := range snap.Replicas {
		for _, rep := range reps {
			if snap.Leaders[rep.Group] == host {
				for _, m := range rep.Members {
					if got := counts[m.Vnode]; got != m.Count {
						t.Fatalf("leader LPDR of %v says %v has %d partitions, materialized %d", rep.Group, m.Vnode, m.Count, got)
					}
				}
			}
		}
	}
	return snap
}

func TestBootstrapSingleVnode(t *testing.T) {
	c := newTestCluster(t, 8, 4, 1, 1)
	name, gid, err := c.CreateVnode(c.Snodes()[0])
	if err != nil {
		t.Fatal(err)
	}
	if gid != (core.GroupID{}) {
		t.Fatalf("first group = %v", gid)
	}
	if name.String() != "1.0" {
		t.Fatalf("canonical name = %q", name)
	}
	snap := verifySnapshot(t, c)
	if len(snap.Vnodes) != 1 || len(snap.Vnodes[0].Partitions) != 8 {
		t.Fatalf("bootstrap state: %+v", snap.Vnodes)
	}
}

func TestGrowthSingleSnode(t *testing.T) {
	c := newTestCluster(t, 8, 4, 1, 2)
	growCluster(t, c, 12)
	snap := verifySnapshot(t, c)
	if len(snap.Vnodes) != 12 {
		t.Fatalf("vnodes = %d", len(snap.Vnodes))
	}
	// 12 vnodes with Vmax=8 means at least one group split happened.
	if c.StatsTotal().GroupSplits == 0 {
		t.Fatal("expected a group split")
	}
}

func TestGrowthManySnodes(t *testing.T) {
	c := newTestCluster(t, 8, 4, 8, 3)
	growCluster(t, c, 64)
	snap := verifySnapshot(t, c)
	if len(snap.Vnodes) != 64 {
		t.Fatalf("vnodes = %d", len(snap.Vnodes))
	}
	// Quotas sum to 1.
	sum := 0.0
	for _, q := range snap.VnodeQuotas() {
		sum += q
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("quotas sum to %v", sum)
	}
}

func TestPutGetDelete(t *testing.T) {
	c := newTestCluster(t, 8, 4, 4, 4)
	growCluster(t, c, 8)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if err := c.Put(key, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		v, found, err := c.Get(key)
		if err != nil || !found {
			t.Fatalf("get %s: %v found=%v", key, err, found)
		}
		if string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("get %s = %q", key, v)
		}
	}
	if _, found, err := c.Get("absent"); err != nil || found {
		t.Fatalf("absent key: %v %v", err, found)
	}
	if found, err := c.Delete("key-7"); err != nil || !found {
		t.Fatalf("delete: %v %v", err, found)
	}
	if _, found, _ := c.Get("key-7"); found {
		t.Fatal("key-7 still present after delete")
	}
	if found, _ := c.Delete("key-7"); found {
		t.Fatal("double delete must report not found")
	}
}

func TestDataSurvivesRebalancing(t *testing.T) {
	c := newTestCluster(t, 8, 4, 4, 5)
	growCluster(t, c, 2)
	const keys = 500
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	// Grow aggressively: splits, transfers and group splits all move data.
	growCluster(t, c, 30)
	snap := verifySnapshot(t, c)
	total := 0
	for _, v := range snap.Vnodes {
		total += v.Keys
	}
	if total != keys {
		t.Fatalf("key count after rebalancing = %d, want %d", total, keys)
	}
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%d", i)
		v, found, err := c.Get(key)
		if err != nil || !found {
			t.Fatalf("get %s after rebalance: %v found=%v", key, err, found)
		}
		if v[0] != byte(i) || v[1] != byte(i>>8) {
			t.Fatalf("get %s corrupted", key)
		}
	}
}

func TestConcurrentJoinsAcrossGroups(t *testing.T) {
	c := newTestCluster(t, 8, 4, 8, 6)
	growCluster(t, c, 32) // several groups exist now
	ids := c.Snodes()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := verifySnapshot(t, c)
	if len(snap.Vnodes) != 96 {
		t.Fatalf("vnodes = %d, want 96", len(snap.Vnodes))
	}
}

func TestConcurrentDataAndJoins(t *testing.T) {
	c := newTestCluster(t, 8, 4, 6, 7)
	growCluster(t, c, 12)
	const keys = 300
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 128)
	// Joins and reads/writes race; everything must stay linearizable enough
	// that no key is lost and no operation errors.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ids := c.Snodes()
		for i := 0; i < 20; i++ {
			if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
				errs <- err
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				key := fmt.Sprintf("k%d", i)
				if w%2 == 0 {
					if _, found, err := c.Get(key); err != nil || !found {
						errs <- fmt.Errorf("get %s: %v found=%v", key, err, found)
						return
					}
				} else {
					if err := c.Put(key, []byte("v2")); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := verifySnapshot(t, c)
	total := 0
	for _, v := range snap.Vnodes {
		total += v.Keys
	}
	if total != keys {
		t.Fatalf("keys after churn = %d, want %d", total, keys)
	}
}

func TestRemoveVnodeCluster(t *testing.T) {
	c := newTestCluster(t, 8, 4, 4, 8)
	names := growCluster(t, c, 16)
	const keys = 200
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := c.RemoveVnode(names[i]); err != nil {
			t.Fatalf("remove %v: %v", names[i], err)
		}
	}
	snap := verifySnapshot(t, c)
	if len(snap.Vnodes) != 10 {
		t.Fatalf("vnodes = %d, want 10", len(snap.Vnodes))
	}
	total := 0
	for _, v := range snap.Vnodes {
		total += v.Keys
	}
	if total != keys {
		t.Fatalf("keys after removals = %d, want %d", total, keys)
	}
	for i := 0; i < keys; i++ {
		if _, found, err := c.Get(fmt.Sprintf("k%d", i)); err != nil || !found {
			t.Fatalf("get k%d: %v %v", i, err, found)
		}
	}
	if err := c.RemoveVnode(VnodeName{Snode: 1, Local: 999}); err == nil {
		t.Fatal("removing unknown vnode must fail")
	}
}

func TestSetEnrollment(t *testing.T) {
	c := newTestCluster(t, 8, 4, 3, 9)
	growCluster(t, c, 6)
	ids := c.Snodes()
	n, err := c.SetEnrollment(ids[0], 5)
	if err != nil || n != 5 {
		t.Fatalf("SetEnrollment up: %d, %v", n, err)
	}
	n, err = c.SetEnrollment(ids[0], 2)
	if err != nil || n != 2 {
		t.Fatalf("SetEnrollment down: %d, %v", n, err)
	}
	verifySnapshot(t, c)
	if _, err := c.SetEnrollment(ids[0], -1); err == nil {
		t.Fatal("negative enrollment must fail")
	}
	if _, err := c.SetEnrollment(99, 1); err == nil {
		t.Fatal("unknown snode must fail")
	}
}

func TestRemoveSnode(t *testing.T) {
	c := newTestCluster(t, 8, 4, 4, 10)
	growCluster(t, c, 16)
	const keys = 150
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	victim := c.Snodes()[1]
	if err := c.RemoveSnode(victim); err != nil {
		t.Fatalf("remove snode: %v", err)
	}
	if len(c.Snodes()) != 3 {
		t.Fatalf("snodes = %d", len(c.Snodes()))
	}
	snap := verifySnapshot(t, c)
	for _, v := range snap.Vnodes {
		if v.Host == victim {
			t.Fatalf("vnode %v still hosted at removed snode", v.Name)
		}
	}
	total := 0
	for _, v := range snap.Vnodes {
		total += v.Keys
	}
	if total != keys {
		t.Fatalf("keys after snode leave = %d, want %d", total, keys)
	}
	for i := 0; i < keys; i++ {
		if _, found, err := c.Get(fmt.Sprintf("k%d", i)); err != nil || !found {
			t.Fatalf("get k%d after snode leave: %v %v", i, err, found)
		}
	}
	if err := c.RemoveSnode(99); err == nil {
		t.Fatal("removing unknown snode must fail")
	}
}

func TestLookupMatchesOwner(t *testing.T) {
	c := newTestCluster(t, 8, 4, 4, 11)
	growCluster(t, c, 10)
	if err := c.Put("route-me", []byte("x")); err != nil {
		t.Fatal(err)
	}
	owner, err := c.Lookup("route-me")
	if err != nil {
		t.Fatal(err)
	}
	snap := verifySnapshot(t, c)
	h := hashspace.HashString("route-me")
	for _, v := range snap.Vnodes {
		for _, p := range v.Partitions {
			if p.Contains(h) {
				if v.Name != owner {
					t.Fatalf("Lookup says %v, snapshot says %v", owner, v.Name)
				}
				return
			}
		}
	}
	t.Fatal("no vnode owns the key in the snapshot")
}

func TestClusterOverTCP(t *testing.T) {
	c, err := New(Config{Pmin: 8, Vmin: 4, Seed: 12, RPCTimeout: 20 * time.Second}, transport.NewTCP("127.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	growCluster(t, c, 10)
	for i := 0; i < 50; i++ {
		if err := c.Put(fmt.Sprintf("tcp-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	growCluster(t, c, 6) // rebalance over TCP moves real gob-encoded data
	for i := 0; i < 50; i++ {
		v, found, err := c.Get(fmt.Sprintf("tcp-%d", i))
		if err != nil || !found || v[0] != byte(i) {
			t.Fatalf("tcp get %d: %v %v %v", i, err, found, v)
		}
	}
	verifySnapshot(t, c)
}

func TestConfigValidationCluster(t *testing.T) {
	if _, err := New(Config{Pmin: 3, Vmin: 4}, transport.NewMem()); err == nil {
		t.Fatal("bad Pmin must fail")
	}
	if _, err := New(Config{Pmin: 4, Vmin: 3}, transport.NewMem()); err == nil {
		t.Fatal("bad Vmin must fail")
	}
	c := newTestCluster(t, 8, 4, 1, 13)
	if _, _, err := c.CreateVnode(42); err == nil {
		t.Fatal("create at unknown snode must fail")
	}
}

func TestEmptyClusterDataOps(t *testing.T) {
	c := newTestCluster(t, 8, 4, 1, 14)
	// No vnodes yet: data ops must fail cleanly, not hang.
	if err := c.Put("k", []byte("v")); err == nil {
		t.Fatal("put on empty DHT must fail")
	}
	cEmpty, err := New(Config{Pmin: 8, Vmin: 4}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer cEmpty.Close()
	if err := cEmpty.Put("k", nil); err == nil {
		t.Fatal("put with no snodes must fail")
	}
}

// The LPDR replicas at member hosts converge to the leader's view.
func TestReplicaConvergence(t *testing.T) {
	c := newTestCluster(t, 8, 4, 4, 15)
	growCluster(t, c, 24)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.Ping(); err != nil {
			t.Fatal(err)
		}
		snap := c.Snapshot()
		ok := true
		// Each group's leader replica and any member replica must agree on
		// membership size and level.
		type gview struct {
			level uint8
			n     int
		}
		leaderView := make(map[core.GroupID]gview)
		for host, reps := range snap.Replicas {
			for _, rep := range reps {
				if snap.Leaders[rep.Group] == host {
					leaderView[rep.Group] = gview{rep.Level, len(rep.Members)}
				}
			}
		}
		for _, reps := range snap.Replicas {
			for _, rep := range reps {
				lv, isLive := leaderView[rep.Group]
				if !isLive {
					continue // stale replica of a dissolved group
				}
				if lv.level != rep.Level || lv.n != len(rep.Members) {
					ok = false
				}
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas did not converge")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
