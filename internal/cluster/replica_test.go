package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/hashspace"
)

// newReplicatedCluster boots a cluster with R-way replication and a fast
// anti-entropy cadence suited to tests.
func newReplicatedCluster(t *testing.T, net transport.Network, snodes, r int, seed int64) *Cluster {
	t.Helper()
	// RPCTimeout is deliberately short: an envelope in flight to an snode
	// at the instant it crashes is dropped, and the sender should give up
	// (and fail over) quickly.
	c, err := New(Config{
		Pmin: 32, Vmin: 8, Seed: seed, RPCTimeout: 5 * time.Second,
		Replicas: r, AntiEntropyInterval: 25 * time.Millisecond,
	}, net)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < snodes; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestReplicaPlacement(t *testing.T) {
	view := []transport.NodeID{1, 2, 3, 4}
	p := hashspace.Partition{Prefix: 5, Level: 4}
	hosts := replicaHostsFor(p, 2, view, 3)
	if len(hosts) != 2 {
		t.Fatalf("R=3 placement over 4 snodes = %v, want 2 hosts", hosts)
	}
	seen := map[transport.NodeID]bool{}
	for _, h := range hosts {
		if h == 2 {
			t.Fatalf("placement %v includes the primary", hosts)
		}
		if seen[h] {
			t.Fatalf("placement %v repeats a host", hosts)
		}
		seen[h] = true
	}
	// Deterministic: same inputs, same placement.
	again := replicaHostsFor(p, 2, view, 3)
	for i := range hosts {
		if hosts[i] != again[i] {
			t.Fatalf("placement not deterministic: %v vs %v", hosts, again)
		}
	}
	// Degraded modes: more replicas than candidates, no candidates, R=1.
	if got := replicaHostsFor(p, 2, view, 16); len(got) != 3 {
		t.Fatalf("oversized R should use every other host, got %v", got)
	}
	if got := replicaHostsFor(p, 7, []transport.NodeID{7}, 2); got != nil {
		t.Fatalf("single-snode view must place no replicas, got %v", got)
	}
	if got := replicaHostsFor(p, 2, view, 1); got != nil {
		t.Fatalf("R=1 must place no replicas, got %v", got)
	}
}

// TestReplicaPlacementHRWRelocation pins the rendezvous-hashing
// property the placement exists for: one membership change relocates
// only ~1/n of the replica sets, not all of them (a modular-offset
// scheme reshuffles nearly everything).
func TestReplicaPlacementHRWRelocation(t *testing.T) {
	const (
		level   = 10 // 1024 partitions — enough for tight statistics
		r       = 3  // R=3 → 2 replica hosts per partition
		primary = transport.NodeID(1)
	)
	view := make([]transport.NodeID, 12)
	for i := range view {
		view[i] = transport.NodeID(i + 1)
	}
	placement := func(v []transport.NodeID) map[hashspace.Partition][]transport.NodeID {
		out := make(map[hashspace.Partition][]transport.NodeID)
		for prefix := uint64(0); prefix < 1<<level; prefix++ {
			p := hashspace.Partition{Prefix: prefix, Level: level}
			out[p] = replicaHostsFor(p, primary, v, r)
		}
		return out
	}
	same := func(a, b []transport.NodeID) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	base := placement(view)

	// Adding one host: a set changes only when the newcomer out-scores a
	// member, which happens with probability (r-1)/candidates — about
	// 2/12 ≈ 17% here.  Allow generous slack either way, but far below
	// the near-100% a modular scheme produces.
	grown := placement(append(append([]transport.NodeID(nil), view...), 13))
	changed := 0
	for p, hosts := range base {
		if !same(hosts, grown[p]) {
			changed++
		}
	}
	frac := float64(changed) / float64(len(base))
	if frac > 0.35 || frac < 0.05 {
		t.Errorf("adding 1 of 12 hosts relocated %.1f%% of replica sets, want ≈ %.1f%%",
			100*frac, 100*float64(r-1)/12)
	}

	// Removing one host: only the sets that actually contained it may
	// change; every other set must be byte-identical.
	removed := view[len(view)-1]
	shrunk := placement(view[:len(view)-1])
	for p, hosts := range base {
		had := false
		for _, h := range hosts {
			if h == removed {
				had = true
			}
		}
		if !had && !same(hosts, shrunk[p]) {
			t.Fatalf("partition %v: set %v changed to %v though host %d was not a member",
				p, hosts, shrunk[p], removed)
		}
		if had && same(hosts, shrunk[p]) {
			t.Fatalf("partition %v: set %v still places removed host %d", p, hosts, removed)
		}
	}
}

// replicasConverged reports whether every owned, unfrozen partition has
// digest-matching buckets at each of its placed replica hosts.
func replicasConverged(c *Cluster) bool {
	c.mu.Lock()
	byID := make(map[transport.NodeID]*Snode, len(c.snodes))
	snodes := make([]*Snode, 0, len(c.snodes))
	for _, id := range c.order {
		byID[id] = c.snodes[id]
		snodes = append(snodes, c.snodes[id])
	}
	c.mu.Unlock()
	type want struct {
		p     hashspace.Partition
		host  transport.NodeID
		count int
		sum   uint64
	}
	var wants []want
	for _, s := range snodes {
		s.mu.Lock()
		for _, vs := range s.vnodes {
			if !vs.joined {
				continue
			}
			for p, b := range vs.parts {
				if b.state != bucketLive {
					continue
				}
				b.mu.RLock()
				n, sum := bucketDigest(b.m)
				b.mu.RUnlock()
				for _, host := range s.replicaHostsLocked(p) {
					wants = append(wants, want{p, host, n, sum})
				}
			}
		}
		s.mu.Unlock()
	}
	for _, w := range wants {
		r, ok := byID[w.host]
		if !ok {
			return false
		}
		r.mu.Lock()
		b, ok := r.rparts[w.p]
		var n int
		var sum uint64
		if ok {
			n, sum = bucketDigest(b)
		}
		r.mu.Unlock()
		if !ok || n != w.count || sum != w.sum {
			return false
		}
	}
	return true
}

func waitConverged(t *testing.T, c *Cluster) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !replicasConverged(c) {
		if time.Now().After(deadline) {
			t.Fatal("replicas did not converge with their primaries")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReplicatedRoundTrip checks the R=2 write path end to end: puts and
// deletes reach the replica buckets, and the replica set converges with
// the primaries' digests.
func TestReplicatedRoundTrip(t *testing.T) {
	c := newReplicatedCluster(t, transport.NewMem(), 4, 2, 31)
	growCluster(t, c, 12)
	keys, items := batchKeys(256)
	results, err := c.MPut(items)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OK() {
			t.Fatalf("MPut %q: %s", r.Key, r.Err)
		}
	}
	if _, err := c.MDelete(keys[:64]); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c)
	st := c.StatsTotal()
	if st.ReplWrites == 0 {
		t.Fatal("replicated writes left ReplWrites at zero")
	}
	// The deleted keys are gone from the replicas too: kill any snode and
	// read through whatever path survives.
	victim := c.Snodes()[2]
	if err := c.KillSnode(victim); err != nil {
		t.Fatal(err)
	}
	results, err = c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.OK() {
			t.Fatalf("MGet %q after crash: %s", r.Key, r.Err)
		}
		if i < 64 && r.Found {
			t.Fatalf("deleted key %q resurrected after crash", r.Key)
		}
		if i >= 64 && !r.Found {
			t.Fatalf("acknowledged key %q lost after crash", r.Key)
		}
	}
}

// runCrashWorkload drives the acceptance scenario on any fabric: with
// R=2, write under load, kill one snode mid-workload, and require every
// acknowledged key to still be readable.
func runCrashWorkload(t *testing.T, c *Cluster, vnodes, preload int) {
	growCluster(t, c, vnodes)
	keys, items := batchKeys(preload)
	results, err := c.MPut(items)
	if err != nil {
		t.Fatal(err)
	}
	acked := make(map[string]string) // key → expected value
	var ackedMu sync.Mutex
	for i, r := range results {
		if !r.OK() {
			t.Fatalf("preload MPut %q: %s", r.Key, r.Err)
		}
		acked[keys[i]] = string(items[i].Value)
	}

	// Writer goroutine: keeps batching new keys while the crash happens;
	// only acknowledged results count.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; ; round++ {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]KV, 32)
			for j := range batch {
				k := fmt.Sprintf("live-%04d-%02d", round, j)
				batch[j] = KV{Key: k, Value: []byte("v-" + k)}
			}
			res, err := c.MPut(batch)
			if err != nil {
				continue // cluster-level hiccup: nothing acknowledged
			}
			ackedMu.Lock()
			for _, r := range res {
				if r.OK() {
					acked[r.Key] = "v-" + r.Key
				}
			}
			ackedMu.Unlock()
		}
	}()

	time.Sleep(20 * time.Millisecond) // let the writer overlap the crash
	victim := c.Snodes()[1]
	if err := c.KillSnode(victim); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // keep writing into the degraded cluster
	close(stop)
	wg.Wait()

	ackedKeys := make([]string, 0, len(acked))
	for k := range acked {
		ackedKeys = append(ackedKeys, k)
	}
	res, err := c.MGet(ackedKeys)
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	for _, r := range res {
		if !r.OK() || !r.Found || string(r.Value) != acked[r.Key] {
			lost++
			if lost <= 5 {
				t.Errorf("acknowledged key %q unreadable after crash: %+v", r.Key, r)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("lost %d of %d acknowledged keys after killing snode %d", lost, len(ackedKeys), victim)
	}
	// The crash must have exercised the failover machinery: either reads
	// were served straight from replicas, or the surviving replica set
	// already promoted new primaries (which then serve reads normally).
	if st := c.StatsTotal(); st.FailoverReads == 0 && st.Promotions == 0 {
		t.Fatal("neither replica reads nor promotions — the crash scenario did not exercise failover")
	}
}

func TestCrashFailoverMem(t *testing.T) {
	c := newReplicatedCluster(t, transport.NewMem(), 6, 2, 32)
	runCrashWorkload(t, c, 16, 512)
}

func TestCrashFailoverTCP(t *testing.T) {
	c := newReplicatedCluster(t, transport.NewTCP("127.0.0.1"), 4, 2, 33)
	runCrashWorkload(t, c, 8, 128)
}

// TestAntiEntropyRehomesAfterCrash kills a replica-holding snode and
// expects failover promotion plus the background anti-entropy pass to
// restore full coverage at R copies on the shrunken view, so a *second*
// crash (of a primary) still loses no reads.
func TestAntiEntropyRehomesAfterCrash(t *testing.T) {
	c := newReplicatedCluster(t, transport.NewMem(), 5, 2, 34)
	growCluster(t, c, 12)
	keys, items := batchKeys(300)
	results, err := c.MPut(items)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OK() {
			t.Fatalf("MPut %q: %s", r.Key, r.Err)
		}
	}
	waitConverged(t, c)
	if err := c.KillSnode(c.Snodes()[3]); err != nil {
		t.Fatal(err)
	}
	// Failover promotion re-owns the victim's partitions at surviving
	// replicas, and the survivors converge on the new placement: every
	// partition is back under a live primary with a fresh replica.
	allOwned := func() bool {
		snap := c.Snapshot()
		for _, k := range keys {
			h := hashspace.HashString(k)
			owned := false
			for _, v := range snap.Vnodes {
				for _, p := range v.Partitions {
					if p.Contains(h) {
						owned = true
					}
				}
			}
			if !owned {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(15 * time.Second)
	for !allOwned() {
		if time.Now().After(deadline) {
			t.Fatal("failover promotion did not restore primary coverage")
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitConverged(t, c)
	st := c.StatsTotal()
	if st.ReplRepairs == 0 {
		t.Fatal("anti-entropy repaired nothing after a replica host crashed")
	}
	if st.Promotions == 0 {
		t.Fatal("no replica was promoted after the primary crashed")
	}
	// Second crash, this time losing the promoted primaries too: every key
	// must stay readable — either straight from the re-homed replicas or
	// from the next round of promotions.  Refresh the handle's replica
	// routes first (they may predate the first crash).
	if _, err := c.MGet(keys); err != nil {
		t.Fatal(err)
	}
	if err := c.KillSnode(c.Snodes()[1]); err != nil {
		t.Fatal(err)
	}
	res, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.OK() || !r.Found {
			t.Fatalf("MGet %q after second crash = %+v", keys[i], r)
		}
	}
}

// TestAntiEntropyDropsOrphanedReplicas grows the cluster (a membership
// change shifts nearly every partition's replica placement) and expects
// the reconciliation machinery to discard the stranded buckets: any
// live-partition bucket at a host outside the partition's placement
// (placement drops), and any ancestor bucket shadowed by a deeper bucket
// at the same host (the stale-replica sweep).  Ancestor leftovers with
// no local deeper overlap are tolerated — they are bounded garbage the
// sweep deliberately leaves rather than risk dropping a dead primary's
// failover copy.
func TestAntiEntropyDropsOrphanedReplicas(t *testing.T) {
	c := newReplicatedCluster(t, transport.NewMem(), 3, 2, 37)
	growCluster(t, c, 8)
	_, items := batchKeys(200)
	if _, err := c.MPut(items); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c)
	if _, err := c.AddSnode(); err != nil {
		t.Fatal(err)
	}
	noOrphans := func() bool {
		c.mu.Lock()
		snodes := make([]*Snode, 0, len(c.snodes))
		for _, id := range c.order {
			snodes = append(snodes, c.snodes[id])
		}
		c.mu.Unlock()
		expected := make(map[transport.NodeID]map[hashspace.Partition]bool)
		live := make(map[hashspace.Partition]bool)
		for _, s := range snodes {
			s.mu.Lock()
			for _, vs := range s.vnodes {
				if !vs.joined {
					continue
				}
				for p := range vs.parts {
					live[p] = true
					for _, host := range s.replicaHostsLocked(p) {
						if expected[host] == nil {
							expected[host] = make(map[hashspace.Partition]bool)
						}
						expected[host][p] = true
					}
				}
			}
			s.mu.Unlock()
		}
		for _, s := range snodes {
			held := s.replicaPartitions()
			for _, p := range held {
				if live[p] && !expected[s.id][p] {
					return false // live partition replicated at a host outside its placement
				}
				if !live[p] {
					for _, q := range held {
						if q.Level > p.Level && overlapping(p, q) {
							return false // stale ancestor the sweep should have retired
						}
					}
				}
			}
		}
		return true
	}
	deadline := time.Now().Add(15 * time.Second)
	for !noOrphans() || !replicasConverged(c) {
		if time.Now().After(deadline) {
			c.mu.Lock()
			for id, s := range c.snodes {
				t.Logf("snode %d replica partitions: %v", id, s.replicaPartitions())
			}
			c.mu.Unlock()
			t.Fatal("orphaned replica buckets were not dropped after the membership change")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBatchFrozenPartitionDeadline is the regression test for the frozen
// retry loop: a partition stuck mid-transfer must fail batch writes with
// a per-key error once FreezeTimeout passes, not spin forever.
func TestBatchFrozenPartitionDeadline(t *testing.T) {
	c, err := New(Config{
		Pmin: 32, Vmin: 8, Seed: 35, RPCTimeout: 20 * time.Second,
		FreezeTimeout: 100 * time.Millisecond,
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 3; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	growCluster(t, c, 8)
	const key = "freeze-me"
	if err := c.Put(key, []byte("v0")); err != nil {
		t.Fatal(err)
	}
	// Wedge the owning partition as a stuck transfer would.
	freeze := func(on bool) {
		h := hashspace.HashString(key)
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, s := range c.snodes {
			s.mu.Lock()
			if vs, p, ok := s.ownsLocked(h); ok {
				if on {
					vs.parts[p].setStateLocked(bucketFrozen)
				} else {
					vs.parts[p].setStateLocked(bucketLive)
				}
			}
			s.mu.Unlock()
		}
	}
	freeze(true)
	start := time.Now()
	results, err := c.MPut([]KV{{Key: key, Value: []byte("v1")}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].OK() || !strings.Contains(results[0].Err, "frozen") {
		t.Fatalf("write to frozen partition = %+v, want a frozen per-key error", results[0])
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond || elapsed > 10*time.Second {
		t.Fatalf("frozen write surfaced after %v, want ≈FreezeTimeout", elapsed)
	}
	// Reads are never blocked by a freeze, and the value is untouched.
	if res, err := c.MGet([]string{key}); err != nil || !res[0].OK() || string(res[0].Value) != "v0" {
		t.Fatalf("MGet during freeze = %+v, %v", res, err)
	}
	freeze(false)
	results, err = c.MPut([]KV{{Key: key, Value: []byte("v2")}})
	if err != nil || !results[0].OK() {
		t.Fatalf("MPut after thaw = %+v, %v", results, err)
	}
}

// TestMBatchRetriesStaleRoutes is the regression test for stale owner
// routes: a cached owner that left the cluster must be invalidated on the
// first RPC error and the affected sub-batch re-resolved through the
// normal lookup path, succeeding without per-key errors.
func TestMBatchRetriesStaleRoutes(t *testing.T) {
	c := newTestCluster(t, 32, 8, 4, 36)
	growCluster(t, c, 16)
	keys, items := batchKeys(128)
	if _, err := c.MPut(items); err != nil {
		t.Fatal(err)
	}
	if _, err := c.MGet(keys); err != nil { // warm the route cache
		t.Fatal(err)
	}
	victim := c.Snodes()[1]
	// Snapshot the routes aimed at the victim, then remove it gracefully
	// (which migrates its data and drops those routes) and re-inject the
	// now-stale entries, simulating a handle that raced the departure.
	c.routeMu.Lock()
	var stale []routeEntry
	for p, rt := range c.routes {
		if rt.ref.Host == victim {
			stale = append(stale, routeEntry{Partition: p, Ref: rt.ref})
		}
	}
	c.routeMu.Unlock()
	if len(stale) == 0 {
		t.Fatal("test setup: no cached routes point at the victim")
	}
	if err := c.RemoveSnode(victim); err != nil {
		t.Fatal(err)
	}
	c.learnRoutes(stale)
	res, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.OK() || !r.Found || string(r.Value) != fmt.Sprintf("batch-val-%04d", i) {
			t.Fatalf("MGet %q through stale route = %+v", keys[i], r)
		}
	}
	// The stale routes were invalidated, not just worked around.
	c.routeMu.Lock()
	for p, rt := range c.routes {
		if rt.ref.Host == victim {
			t.Errorf("route %v still aims at removed snode %d", p, victim)
		}
	}
	c.routeMu.Unlock()
}
