package cluster

import "sync"

// queue is a small unbounded FIFO used for per-group leader work: the actor
// loop must never block when enqueueing an operation, and a group can have
// an arbitrary backlog of pending joins (the paper serializes balancement
// events within a group, §3.6).
type queue[T any] struct {
	mu     sync.Mutex
	items  []T // guarded by mu
	wake   chan struct{}
	closed bool // guarded by mu
}

func newQueue[T any]() *queue[T] {
	return &queue[T]{wake: make(chan struct{}, 1)}
}

// push enqueues an item; it reports false if the queue is closed.
func (q *queue[T]) push(item T) bool {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, item)
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return true
}

// pop blocks until an item is available or the queue closes; ok is false
// only on close-and-drained.
func (q *queue[T]) pop() (item T, ok bool) {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			item = q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			return item, true
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			var zero T
			return zero, false
		}
		<-q.wake
	}
}

// close marks the queue closed; pending items are still popped.
func (q *queue[T]) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}
