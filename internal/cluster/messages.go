package cluster

import (
	"encoding/gob"

	"dbdht/internal/cluster/transport"
	"dbdht/internal/core"
	"dbdht/internal/hashspace"
)

// Protocol messages.  Every request carries Op (the sender's correlation
// id) and ReplyTo (the endpoint awaiting the matching response); forwarded
// requests keep both, so whichever snode completes the operation answers
// the original requester directly.
//
// Over the TCP fabric, hot-path messages (batch req/resp, replica
// fan-out, lookup, ping) ride the hand-rolled binary frame codec — see
// wire.go.  The control messages in this file are gob-registered and use
// the frame codec's gob fallback: they are orders of magnitude rarer, so
// reflection cost is irrelevant and schema flexibility wins.

// memberInfo is one LPDR row: a vnode, its host and its partition count.
type memberInfo struct {
	Vnode VnodeName
	Host  transport.NodeID
	Count int
}

// lpdrState is a serialized LPDR replica: the paper's per-group table of
// partitions per vnode (§3.2) plus the group's splitlevel and leader.
type lpdrState struct {
	Group   core.GroupID
	Level   uint8
	Leader  transport.NodeID
	Members []memberInfo
}

// --- lookup (§3.6: find the vnode holding the partition containing r) ---

type lookupReq struct {
	Op      uint64
	R       uint64
	ReplyTo transport.NodeID
	Hops    int
}

type lookupResp struct {
	Op        uint64
	Owner     VnodeName
	Host      transport.NodeID
	Partition hashspace.Partition
	Group     core.GroupID
	Leader    transport.NodeID
	Err       string
}

// --- vnode creation (§2.5 + §3.6/§3.7) ---

type createVnodeReq struct {
	Op        uint64
	ReplyTo   transport.NodeID
	Bootstrap bool // first vnode of the DHT: creates group 0 locally
}

type createVnodeResp struct {
	Op    uint64
	Vnode VnodeName
	Group core.GroupID
	Err   string
}

// joinGroupReq asks a group leader to admit a new (empty) vnode.
type joinGroupReq struct {
	Op       uint64
	Group    core.GroupID
	NewVnode VnodeName
	NewHost  transport.NodeID
	ReplyTo  transport.NodeID
	Hops     int
}

type joinGroupResp struct {
	Op    uint64
	Group core.GroupID // group actually joined (a child after a split)
	Retry bool         // leadership moved; re-resolve and retry
	Err   string
}

// --- vnode removal (dynamic leave; base-model feature (c)) ---

type leaveVnodeReq struct {
	Op      uint64
	Vnode   VnodeName
	Group   core.GroupID
	ReplyTo transport.NodeID
	Hops    int
}

type leaveVnodeResp struct {
	Op    uint64
	Retry bool
	Err   string
}

// --- intra-group rebalancement (leader → member hosts) ---

// splitAllReq orders a host to binary-split every partition of its vnodes
// belonging to the group (§2.5's scope-wide split, data re-bucketed by the
// next hash bit).
type splitAllReq struct {
	Op       uint64
	Group    core.GroupID
	NewLevel uint8
	ReplyTo  transport.NodeID
}

type splitAllResp struct {
	Op  uint64
	Err string
}

// transferReq orders the host of From to hand one partition (its choice,
// per §2.5 step 4a) to vnode To hosted at ToHost.
type transferReq struct {
	Op      uint64
	Group   core.GroupID
	From    VnodeName
	To      VnodeName
	ToHost  transport.NodeID
	Level   uint8
	ReplyTo transport.NodeID
}

type transferResp struct {
	Op        uint64
	Partition hashspace.Partition
	Keys      int
	Err       string
}

// shipVnodeReq orders the host of a leaving vnode to ship each of its
// partitions (in sorted order) to the planned destinations.
type shipVnodeReq struct {
	Op      uint64
	Vnode   VnodeName
	Dests   []ownerRef
	ReplyTo transport.NodeID
}

type shipVnodeResp struct {
	Op  uint64
	Err string
}

// Partition contents travel by chunked live migration — see migrate.go
// for migBeginReq/migChunkReq/migCommitReq/migAbortMsg.

// --- group management ---

// groupInit hands a freshly created (child) group's authoritative state to
// its leader after a group split (§3.7).
type groupInit struct {
	Op      uint64
	State   lpdrState
	ReplyTo transport.NodeID
}

type groupInitResp struct {
	Op  uint64
	Err string
}

// lpdrSyncMsg is the fire-and-forget replica refresh every member host (and
// the join initiator) receives once a balancement event completes — the
// paper's "all copies of the LPDR become synchronized" (§3.6).
type lpdrSyncMsg struct {
	State     lpdrState
	Dissolved []core.GroupID // parent groups dropped by a split
}

// bootstrapInfo seeds an snode's fallback route: the first vnode of the DHT
// (or a current owner), from which every custody chain is reachable.
type bootstrapInfo struct {
	Owner ownerRef
}

// routeEntry is one custody pointer: the partition as it was when it left
// its host, and where it went.  Entries learned from batch responses also
// carry the partition's replica hosts, so requesters can fail reads over
// when the owner stops answering.
type routeEntry struct {
	Partition hashspace.Partition
	Ref       ownerRef
	Replicas  []transport.NodeID
}

// snodeLeavingMsg announces an snode departure.  Survivors drop every
// forwarding pointer aimed at the leaver and adopt the leaver's own
// custody table, so every routing chain that used to pass through the
// leaver now skips it.  Crashed marks an abrupt death (KillSnode or the
// liveness detector) rather than a graceful leave: the data died with the
// snode, and survivors backing its partitions as replicas start the
// failover election (failover.go).
type snodeLeavingMsg struct {
	Leaving transport.NodeID
	Routes  []routeEntry
	Crashed bool
}

// snodeRecoveredMsg announces an snode restarted from its write-ahead
// log (Cluster.RestartSnode): the crash pruned every custody pointer at
// it, so it re-announces the partitions it recovered and survivors adopt
// pointers back to the recovered owner.
type snodeRecoveredMsg struct {
	Recovered transport.NodeID
	Routes    []routeEntry
}

// The data plane is batched end to end: single-key operations on the
// cluster handle are one-item batches (see batch.go), so batchReq /
// batchResp are the only key/value messages on the wire.

// pingReq/pingResp let tests and clients quiesce an snode's inbox.
type pingReq struct {
	Op      uint64
	ReplyTo transport.NodeID
}

type pingResp struct {
	Op uint64
}

func init() {
	for _, m := range []any{
		lookupReq{}, lookupResp{},
		createVnodeReq{}, createVnodeResp{},
		joinGroupReq{}, joinGroupResp{},
		leaveVnodeReq{}, leaveVnodeResp{},
		splitAllReq{}, splitAllResp{},
		transferReq{}, transferResp{},
		shipVnodeReq{}, shipVnodeResp{},
		groupInit{}, groupInitResp{},
		lpdrSyncMsg{}, bootstrapInfo{}, snodeLeavingMsg{}, snodeRecoveredMsg{},
		pingReq{}, pingResp{},
	} {
		gob.Register(m)
	}
}
