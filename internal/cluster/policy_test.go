package cluster

import (
	"fmt"
	"testing"
	"time"

	"dbdht/internal/cluster/transport"
)

// loadAndGrow loads a cluster with keys, then triggers rebalancing joins
// and returns the number of keys moved.
func loadAndGrow(t *testing.T, policy TransferPolicy, seed int64) int64 {
	t.Helper()
	c, err := New(Config{Pmin: 16, Vmin: 4, Seed: seed, RPCTimeout: 20 * time.Second, Transfer: policy}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 4; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	for v := 0; v < 8; v++ {
		if _, _, err := c.CreateVnode(ids[v%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	// Skewed storage: some partitions hold far more keys than others.
	for i := 0; i < 4000; i++ {
		if err := c.Put(fmt.Sprintf("bulk:%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	before := c.StatsTotal().KeysMoved
	for v := 0; v < 8; v++ {
		if _, _, err := c.CreateVnode(ids[v%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	// All keys must still be present regardless of policy.
	snap := c.Snapshot()
	total := 0
	for _, v := range snap.Vnodes {
		total += v.Keys
	}
	if total != 4000 {
		t.Fatalf("keys after growth = %d, want 4000", total)
	}
	return c.StatsTotal().KeysMoved - before
}

// TestTransferPolicyReducesMigration: picking the emptiest partition moves
// fewer keys than picking at random, with identical balancement quality
// (partition counts are policy-independent).
func TestTransferPolicyReducesMigration(t *testing.T) {
	var randomTotal, fewestTotal int64
	for seed := int64(0); seed < 3; seed++ {
		randomTotal += loadAndGrow(t, TransferRandom, 100+seed)
		fewestTotal += loadAndGrow(t, TransferFewestKeys, 100+seed)
	}
	if fewestTotal >= randomTotal {
		t.Fatalf("fewest-keys policy moved %d keys, random moved %d; expected a reduction", fewestTotal, randomTotal)
	}
}

// TestCustodyChains: after many migrations, a fresh snode with only the
// bootstrap pointer can still resolve every key by chasing custody chains.
func TestCustodyChains(t *testing.T) {
	c, err := New(Config{Pmin: 8, Vmin: 4, Seed: 7, RPCTimeout: 20 * time.Second}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	for v := 0; v < 20; v++ { // many joins ⇒ long custody history
		if _, _, err := c.CreateVnode(ids[v%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := c.Put(fmt.Sprintf("chain:%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// A latecomer snode has no history at all — only the bootstrap pointer.
	late, err := c.AddSnode()
	if err != nil {
		t.Fatal(err)
	}
	_ = late
	for i := 0; i < 100; i++ {
		if _, found, err := c.Get(fmt.Sprintf("chain:%d", i)); err != nil || !found {
			t.Fatalf("get via custody chain: %v %v", err, found)
		}
	}
	// Forwards must have happened (chains were actually chased).
	if c.StatsTotal().Forwards == 0 {
		t.Fatal("expected forwarded lookups")
	}
}

// TestManySnodeLeaves: serial graceful departures down to one node keep
// all data reachable.
func TestManySnodeLeaves(t *testing.T) {
	c, err := New(Config{Pmin: 8, Vmin: 4, Seed: 21, RPCTimeout: 20 * time.Second}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	for v := 0; v < 15; v++ {
		if _, _, err := c.CreateVnode(ids[v%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	const keys = 120
	for i := 0; i < keys; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Remove snodes one by one (keep the last two: group dissolution limits
	// apply when vnode counts shrink too far).
	for len(c.Snodes()) > 2 {
		victim := c.Snodes()[0]
		if err := c.RemoveSnode(victim); err != nil {
			t.Fatalf("remove snode %d: %v", victim, err)
		}
		for i := 0; i < keys; i++ {
			v, found, err := c.Get(fmt.Sprintf("k%d", i))
			if err != nil || !found || v[0] != byte(i) {
				t.Fatalf("after removing %d: get k%d = %v %v", victim, i, err, found)
			}
		}
	}
}

// TestEnrollmentProportionalQuota: a node enrolling twice the vnodes holds
// roughly twice the hash range (base-model feature (a) on the runtime).
func TestEnrollmentProportionalQuota(t *testing.T) {
	c, err := New(Config{Pmin: 32, Vmin: 16, Seed: 31, RPCTimeout: 20 * time.Second}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	targets := map[transport.NodeID]int{ids[0]: 8, ids[1]: 4, ids[2]: 2, ids[3]: 2}
	for id, n := range targets {
		if _, err := c.SetEnrollment(id, n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	quotas := snap.VnodeQuotas()
	byHost := map[transport.NodeID]float64{}
	for i, v := range snap.Vnodes {
		byHost[v.Host] += quotas[i]
	}
	// 16 vnodes total (power of two, single group) ⇒ exact proportionality.
	for id, n := range targets {
		want := float64(n) / 16
		got := byHost[id]
		if got < want*0.99 || got > want*1.01 {
			t.Fatalf("snode %d quota = %v, want %v", id, got, want)
		}
	}
}
