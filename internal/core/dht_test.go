package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbdht/internal/metrics"
)

func newDHT(t *testing.T, pmin, vmin int, seed int64) *DHT {
	t.Helper()
	d, err := New(Config{Pmin: pmin, Vmin: vmin}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func grow(t *testing.T, d *DHT, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, _, err := d.AddVnode(); err != nil {
			t.Fatalf("AddVnode #%d: %v", i, err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{{Pmin: 0, Vmin: 8}, {Pmin: 3, Vmin: 8}, {Pmin: 8, Vmin: 0}, {Pmin: 8, Vmin: 12}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v must be invalid", bad)
		}
	}
	if err := (Config{Pmin: 8, Vmin: 8}).Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Pmin: 8, Vmin: 8}, nil); err == nil {
		t.Fatal("nil rng must be rejected")
	}
}

func TestFirstVnodeCreatesFirstGroup(t *testing.T) {
	d := newDHT(t, 8, 4, 1)
	id, gid, err := d.AddVnode()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || gid != (GroupID{}) {
		t.Fatalf("first vnode = %d in group %v", id, gid)
	}
	if d.Groups() != 1 || d.Vnodes() != 1 {
		t.Fatalf("G=%d V=%d", d.Groups(), d.Vnodes())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// While V ≤ Vmax there is one sole group (zone 1 of §4.1.1); the group
// splits on the (Vmax+1)'th vnode.
func TestSingleGroupUntilVmax(t *testing.T) {
	d := newDHT(t, 8, 4, 2)
	grow(t, d, d.Vmax())
	if d.Groups() != 1 {
		t.Fatalf("G=%d before overflow, want 1", d.Groups())
	}
	grow(t, d, 1)
	if d.Groups() != 2 {
		t.Fatalf("G=%d after overflow, want 2", d.Groups())
	}
	if d.Stats().GroupSplits != 1 {
		t.Fatalf("GroupSplits=%d", d.Stats().GroupSplits)
	}
	// The split children carry ids "0" and "1".
	ids := d.GroupIDs()
	if len(ids) != 2 || ids[0].String() != "0" || ids[1].String() != "1" {
		t.Fatalf("group ids = %v", ids)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsDuringGrowth(t *testing.T) {
	d := newDHT(t, 8, 8, 3)
	for i := 0; i < 200; i++ {
		if _, _, err := d.AddVnode(); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("after add %d: %v", i, err)
		}
	}
	// Vnode quotas must sum to 1: the groups tile R_h.
	sum := 0.0
	for _, q := range d.VnodeQuotas() {
		sum += q
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("vnode quotas sum to %v", sum)
	}
	gsum := 0.0
	for _, q := range d.GroupQuotas() {
		gsum += q
	}
	if math.Abs(gsum-1) > 1e-9 {
		t.Fatalf("group quotas sum to %v", gsum)
	}
}

// Zone 1 (§4.1.1): while one group exists, the local approach IS the global
// approach — σ̄(Q_v) equals the GPDR relative deviation of the counts.
func TestZone1MatchesGlobalBehaviour(t *testing.T) {
	d := newDHT(t, 16, 8, 5)
	for v := 0; v < 16; v++ { // stays within Vmax=16 ⇒ one group
		grow(t, d, 1)
		n := v + 1
		if n&(n-1) == 0 {
			// Power of two ⇒ perfectly balanced (G5′ within the sole group).
			if q := d.QualityOfBalancement(); q > 1e-12 {
				t.Fatalf("V=%d: σ̄=%v, want 0", n, q)
			}
		}
	}
}

func TestLookupAlwaysResolves(t *testing.T) {
	d := newDHT(t, 8, 8, 7)
	grow(t, d, 100)
	f := func(i uint64) bool {
		v, ok := d.Lookup(i)
		if !ok {
			return false
		}
		// The owner must actually own a partition containing i.
		gid, ok := d.GroupOf(v)
		if !ok {
			return false
		}
		g, _ := d.Group(gid)
		for _, p := range g.sc.Partitions(v) {
			if p.Contains(i) {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.LookupKey([]byte("anything")); !ok {
		t.Fatal("LookupKey must resolve")
	}
}

func TestGroupSizesWithinL2(t *testing.T) {
	d := newDHT(t, 8, 8, 11)
	grow(t, d, 500)
	for _, id := range d.GroupIDs() {
		g, _ := d.Group(id)
		if g.Vnodes() < 1 || g.Vnodes() > d.Vmax() {
			t.Fatalf("group %v has %d vnodes", id, g.Vnodes())
		}
	}
	// With 500 vnodes and Vmin=8 there must be many groups.
	if d.Groups() < 500/16 {
		t.Fatalf("suspiciously few groups: %d", d.Groups())
	}
}

func TestRemoveVnode(t *testing.T) {
	d := newDHT(t, 8, 4, 13)
	grow(t, d, 50)
	rng := rand.New(rand.NewSource(99))
	removed := 0
	for attempt := 0; removed < 30 && attempt < 500; attempt++ {
		// Pick a random live vnode via lookup.
		v, ok := d.Lookup(rng.Uint64())
		if !ok {
			t.Fatal("lookup failed")
		}
		gid, _ := d.GroupOf(v)
		g, _ := d.Group(gid)
		if g.Vnodes() == 1 {
			continue // dissolution refused by design
		}
		if err := d.RemoveVnode(v); err != nil {
			t.Fatalf("remove %d: %v", v, err)
		}
		removed++
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("after remove %d: %v", v, err)
		}
	}
	if removed < 30 {
		t.Fatalf("only removed %d vnodes", removed)
	}
	if err := d.RemoveVnode(100000); err == nil {
		t.Fatal("removing absent vnode must fail")
	}
}

func TestRemoveLastVnodeRefused(t *testing.T) {
	d := newDHT(t, 8, 4, 17)
	grow(t, d, 1)
	if err := d.RemoveVnode(0); err == nil {
		t.Fatal("removing the only vnode must fail")
	}
}

func TestRemoveSingletonGroupRefused(t *testing.T) {
	d := newDHT(t, 8, 2, 19)
	grow(t, d, 40)
	// Shrink some group to one member, then removal of that member must be
	// refused while other groups exist.
	var target *Group
	for _, id := range d.GroupIDs() {
		g, _ := d.Group(id)
		if g.Vnodes() >= 2 {
			target = g
			break
		}
	}
	if target == nil {
		t.Fatal("no group with ≥2 vnodes")
	}
	for target.Vnodes() > 1 {
		vs := target.sc.Vnodes()
		if err := d.RemoveVnode(vs[0]); err != nil {
			t.Fatal(err)
		}
	}
	last := target.sc.Vnodes()[0]
	if err := d.RemoveVnode(last); err == nil {
		t.Fatal("removing a singleton group's vnode must fail")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Determinism: identical seeds produce identical evolution — required for
// the reproducibility of every figure.
func TestDeterministicEvolution(t *testing.T) {
	run := func() ([]float64, int) {
		d := newDHT(t, 16, 16, 42)
		grow(t, d, 300)
		return d.VnodeQuotas(), d.Groups()
	}
	q1, g1 := run()
	q2, g2 := run()
	if g1 != g2 {
		t.Fatalf("group counts differ: %d vs %d", g1, g2)
	}
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatalf("quota %d differs: %v vs %v", i, q1[i], q2[i])
		}
	}
}

// §4.2: with Vmin large enough that Vmax ≥ total vnodes, there is one sole
// group and the local approach degenerates to the global approach exactly.
func TestDegenerateToGlobalWhenVminHuge(t *testing.T) {
	d := newDHT(t, 32, 512, 23)
	grow(t, d, 256)
	if d.Groups() != 1 {
		t.Fatalf("G=%d, want 1", d.Groups())
	}
	// At V=256 (power of two) the balance is perfect.
	if q := d.QualityOfBalancement(); q > 1e-12 {
		t.Fatalf("σ̄=%v, want 0 at power-of-two V", q)
	}
}

// The headline qualitative result of figure 4/6: smaller Vmin (many small
// groups) yields worse balancement than larger Vmin, and both are far from
// the global optimum of 0 at powers of two.
func TestQualityOrderingAcrossVmin(t *testing.T) {
	quality := func(vmin int) float64 {
		var runs []metrics.Series
		for seed := int64(0); seed < 5; seed++ {
			d := newDHT(t, 32, vmin, 100+seed)
			grow(t, d, 512)
			runs = append(runs, metrics.Series{X: []int{0}, Y: []float64{d.QualityOfBalancement()}})
		}
		m, err := metrics.MeanSeries(runs)
		if err != nil {
			t.Fatal(err)
		}
		return m.Y[0]
	}
	small := quality(8)
	large := quality(128)
	if small <= large {
		t.Fatalf("σ̄(Vmin=8)=%v must exceed σ̄(Vmin=128)=%v", small, large)
	}
}

func TestStatsAccumulateAcrossGroupSplits(t *testing.T) {
	d := newDHT(t, 8, 4, 29)
	grow(t, d, 100)
	st := d.Stats()
	if st.GroupSplits == 0 || st.GroupCreations < 2*st.GroupSplits {
		t.Fatalf("stats: %+v", st)
	}
	if st.Handovers == 0 || st.PartitionSplits == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestGroupAccessors(t *testing.T) {
	d := newDHT(t, 8, 4, 31)
	grow(t, d, 20)
	for _, id := range d.GroupIDs() {
		g, ok := d.Group(id)
		if !ok {
			t.Fatalf("group %v missing", id)
		}
		lp := g.LPDR()
		if len(lp) != g.Vnodes() {
			t.Fatalf("LPDR size %d ≠ V_g %d", len(lp), g.Vnodes())
		}
		for v, c := range lp {
			if c < 8 || c > 16 {
				t.Fatalf("G4′ violated in LPDR of %v: vnode %d has %d", id, v, c)
			}
		}
		if g.Quota() <= 0 || g.Quota() > 1 {
			t.Fatalf("group quota %v out of range", g.Quota())
		}
		if g.ID() != id {
			t.Fatal("ID accessor mismatch")
		}
		if g.Level() == 0 {
			t.Fatal("group level must be positive after growth")
		}
	}
	if _, ok := d.Group(GroupID{Bits: 12345, Len: 60}); ok {
		t.Fatal("absent group must not resolve")
	}
	if _, ok := d.GroupOf(99999); ok {
		t.Fatal("absent vnode must not resolve a group")
	}
}

// Property: random add-heavy churn preserves every invariant.
func TestChurnPropertyLocal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := New(Config{Pmin: 8, Vmin: 4}, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			return false
		}
		for op := 0; op < 80; op++ {
			if d.Vnodes() < 2 || rng.Intn(4) != 0 {
				if _, _, err := d.AddVnode(); err != nil {
					return false
				}
			} else {
				v, ok := d.Lookup(rng.Uint64())
				if !ok {
					return false
				}
				if err := d.RemoveVnode(v); err != nil {
					// Singleton-group and last-vnode refusals are expected.
					continue
				}
			}
		}
		return d.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupBalancementMetric(t *testing.T) {
	d := newDHT(t, 32, 32, 37)
	grow(t, d, 64) // one group: σ̄(Q_g) = 0
	if gb := d.GroupBalancement(); gb != 0 {
		t.Fatalf("single group σ̄(Q_g) = %v, want 0", gb)
	}
	grow(t, d, 200)
	if d.Groups() < 2 {
		t.Fatal("expected multiple groups")
	}
	if gb := d.GroupBalancement(); gb < 0 {
		t.Fatalf("σ̄(Q_g) = %v", gb)
	}
	var empty DHT
	if empty.GroupBalancement() != 0 {
		t.Fatal("empty DHT group balancement must be 0")
	}
}

// Group identifiers remain globally unique across an entire grown DHT,
// including dissolved ancestors never colliding with live descendants.
func TestLiveGroupIDsDistinct(t *testing.T) {
	d := newDHT(t, 8, 4, 53)
	grow(t, d, 300)
	seen := map[GroupID]bool{}
	for _, id := range d.GroupIDs() {
		if seen[id] {
			t.Fatalf("duplicate live group id %v", id)
		}
		seen[id] = true
	}
	// Identifier lengths are consistent with the number of splits: a DHT
	// with G live groups has ids of length ≤ ~log2(G) + a few.
	for id := range seen {
		if int(id.Len) > 12 {
			t.Fatalf("implausibly deep group id %v for %d groups", id, len(seen))
		}
	}
}

// The DHT-wide index agrees with per-group scopes after heavy churn.
func TestIndexConsistencyAfterChurn(t *testing.T) {
	d := newDHT(t, 8, 4, 59)
	rng := rand.New(rand.NewSource(60))
	for op := 0; op < 400; op++ {
		if d.Vnodes() < 5 || rng.Intn(3) > 0 {
			if _, _, err := d.AddVnode(); err != nil {
				t.Fatal(err)
			}
		} else {
			v, _ := d.Lookup(rng.Uint64())
			_ = d.RemoveVnode(v) // refusals fine
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Spot-check lookups against group scopes.
	for i := 0; i < 200; i++ {
		r := rng.Uint64()
		v, ok := d.Lookup(r)
		if !ok {
			t.Fatal("lookup miss")
		}
		gid, _ := d.GroupOf(v)
		g, _ := d.Group(gid)
		owner, ok := g.sc.Lookup(r)
		if !ok || owner != v {
			t.Fatalf("index says %d, group scope says %d,%v", v, owner, ok)
		}
	}
}
