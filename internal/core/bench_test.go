package core

import (
	"math/rand"
	"testing"
)

// BenchmarkAddVnode measures the cost of one vnode creation — the local
// approach's central operation — on an already-large DHT.
func BenchmarkAddVnode(b *testing.B) {
	d, err := New(Config{Pmin: 32, Vmin: 32}, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		if _, _, err := d.AddVnode(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.AddVnode(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookup measures key location on a 1024-vnode DHT.
func BenchmarkLookup(b *testing.B) {
	d, err := New(Config{Pmin: 32, Vmin: 32}, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		if _, _, err := d.AddVnode(); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	idx := make([]uint64, 1024)
	for i := range idx {
		idx[i] = rng.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := d.Lookup(idx[i%len(idx)]); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkGrowTo1024 measures a full figure-4-style run: 1024 consecutive
// creations from scratch.
func BenchmarkGrowTo1024(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := New(Config{Pmin: 32, Vmin: 32}, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		for v := 0; v < 1024; v++ {
			if _, _, err := d.AddVnode(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
