package core

import (
	"testing"
	"testing/quick"
)

// TestFigure3Identifiers replays the exact split tree of the paper's
// figure 3 and checks every binary string and base-10 value.
func TestFigure3Identifiers(t *testing.T) {
	g0 := GroupID{}
	if g0.String() != "0" || g0.Bits != 0 {
		t.Fatalf("first group = %q (%d)", g0.String(), g0.Bits)
	}
	a, b := g0.Split()
	if a.String() != "0" || a.Bits != 0 || b.String() != "1" || b.Bits != 1 {
		t.Fatalf("level-1 ids = %q(%d), %q(%d)", a.String(), a.Bits, b.String(), b.Bits)
	}
	a0, a1 := a.Split()
	b0, b1 := b.Split()
	wants := []struct {
		g    GroupID
		str  string
		bits uint64
	}{
		{a0, "00", 0}, {a1, "10", 2}, {b0, "01", 1}, {b1, "11", 3},
	}
	for _, w := range wants {
		if w.g.String() != w.str || w.g.Bits != w.bits {
			t.Errorf("got %q(%d), want %q(%d)", w.g.String(), w.g.Bits, w.str, w.bits)
		}
	}
	// Third level, exactly the eight identifiers of figure 3.
	var l3 []GroupID
	for _, g := range []GroupID{a0, a1, b0, b1} {
		x, y := g.Split()
		l3 = append(l3, x, y)
	}
	wantStr := map[string]uint64{
		"000": 0, "100": 4, "010": 2, "110": 6,
		"001": 1, "101": 5, "011": 3, "111": 7,
	}
	seen := map[string]bool{}
	for _, g := range l3 {
		want, ok := wantStr[g.String()]
		if !ok {
			t.Errorf("unexpected level-3 id %q", g.String())
			continue
		}
		if g.Bits != want {
			t.Errorf("id %q has value %d, want %d", g.String(), g.Bits, want)
		}
		seen[g.String()] = true
	}
	if len(seen) != 8 {
		t.Errorf("level-3 ids not all distinct: %v", seen)
	}
}

// Property: any sequence of splits from the root yields globally unique
// identifiers — the decentralization claim of §3.7.1.
func TestGroupIDUniquenessUnderRandomSplits(t *testing.T) {
	f := func(choices []bool) bool {
		live := []GroupID{{}}
		seen := map[GroupID]bool{{}: true}
		for _, pickHi := range choices {
			if len(live) == 0 {
				return true
			}
			// Split the first live group; keep one child live per choice to
			// vary the shapes of the tree.
			g := live[0]
			live = live[1:]
			lo, hi := g.Split()
			if seen[lo] || seen[hi] {
				return false
			}
			seen[lo], seen[hi] = true, true
			if pickHi {
				live = append(live, hi, lo)
			} else {
				live = append(live, lo, hi)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupIDLess(t *testing.T) {
	g := GroupID{}
	a, b := g.Split()
	if !g.Less(a) || a.Less(g) {
		t.Fatal("shorter id must order first")
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("same-length ids order by value")
	}
	if a.Less(a) {
		t.Fatal("Less must be irreflexive")
	}
}

func TestGroupIDSplitDepthLimit(t *testing.T) {
	g := GroupID{Len: 63}
	defer func() {
		if recover() == nil {
			t.Fatal("splitting a depth-63 id must panic")
		}
	}()
	g.Split()
}
