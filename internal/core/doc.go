// Package core implements the *local approach* of Rufino et al. (IPDPS
// 2004) — the paper's primary contribution.  The global set of vnodes is
// fully divided into mutually exclusive groups (invariant L1); each group
// balances itself with the same σ-decreasing algorithm the global approach
// uses, but restricted to its own Local Partition Distribution Record, so
// balancement events in different groups proceed independently and in
// parallel (§3.1).  Group membership fluctuates within strict bounds
// Vmin ≤ V_g ≤ Vmax = 2·Vmin (invariant L2), and full groups split in two,
// generating identifiers with the decentralized binary scheme of §3.7.1.
package core
