package core

import (
	"fmt"
	"math/rand"
	"sort"

	"dbdht/internal/hashspace"
	"dbdht/internal/metrics"
	"dbdht/internal/scope"
)

// VnodeID identifies a vnode; IDs are unique DHT-wide so vnodes keep their
// identity when groups split.
type VnodeID = scope.VnodeID

// Config carries the two parameters that govern the local approach (§4.1):
// Pmin sets the grain of balancement inside each group, Vmin the size of
// groups.  Both must be powers of two; Pmax = 2·Pmin and Vmax = 2·Vmin
// follow from invariants G4′ and L2.
type Config struct {
	Pmin int
	Vmin int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Pmin < 1 || c.Pmin&(c.Pmin-1) != 0 {
		return fmt.Errorf("core: Pmin must be a positive power of two, got %d", c.Pmin)
	}
	if c.Vmin < 1 || c.Vmin&(c.Vmin-1) != 0 {
		return fmt.Errorf("core: Vmin must be a positive power of two, got %d", c.Vmin)
	}
	return nil
}

// Group couples a group identifier with its balancement scope.  The scope's
// PDR plays the role of the group's LPDR (§3.2); the scope's level is the
// group's common splitlevel l_g (invariant G3′).
type Group struct {
	id GroupID
	sc *scope.Scope
}

// ID returns the group's identifier.
func (g *Group) ID() GroupID { return g.id }

// Vnodes returns the group's vnode count V_g.
func (g *Group) Vnodes() int { return g.sc.Len() }

// Level returns the group's common splitlevel l_g.
func (g *Group) Level() uint8 { return g.sc.Level() }

// Quota returns the group quota Q_g, the fraction of R_h covered by all the
// group's vnodes (§4.2.1).
func (g *Group) Quota() float64 { return g.sc.TotalQuota() }

// LPDR returns a copy of the group's Local Partition Distribution Record.
func (g *Group) LPDR() map[VnodeID]int { return g.sc.Counts() }

// Stats carries the cumulative structural work performed by the DHT.
type Stats struct {
	// Handovers, PartitionSplits and PartitionMerges aggregate the per-scope
	// counters across all groups (including dissolved ones).
	Handovers       int
	PartitionSplits int
	PartitionMerges int
	// GroupSplits counts group divisions (§3.7); GroupCreations counts
	// groups ever created (the first group plus two per split).
	GroupSplits    int
	GroupCreations int
}

// DHT is a local-approach DHT.  It is not safe for concurrent use; the
// cluster runtime (package cluster) layers real parallelism on top by
// running one scope per group leader, which is exactly the concurrency
// model the paper proposes — simultaneous balancement events in different
// groups, serial within a group (§3.1).
type DHT struct {
	cfg        Config
	vmax       int
	rng        *rand.Rand
	groups     map[GroupID]*Group
	vnodeGroup map[VnodeID]GroupID
	index      map[hashspace.Partition]VnodeID
	levels     map[uint8]int // refcount of group splitlevels, for lookups
	nextID     VnodeID
	stats      Stats
	// prevScopeStats remembers per-group scope counters already folded into
	// stats, so dissolved groups keep their contribution.
	folded scope.Stats
}

// indexObserver keeps the DHT-wide partition→vnode index in sync with every
// group scope's structural changes.
type indexObserver struct{ d *DHT }

func (o indexObserver) PartitionMoved(p hashspace.Partition, from, to VnodeID) {
	o.d.index[p] = to
}

func (o indexObserver) PartitionSplit(p hashspace.Partition, owner VnodeID) {
	delete(o.d.index, p)
	lo, hi := p.Split()
	o.d.index[lo] = owner
	o.d.index[hi] = owner
}

func (o indexObserver) PartitionMerged(p hashspace.Partition, owner VnodeID) {
	lo, hi := p.Split()
	delete(o.d.index, lo)
	delete(o.d.index, hi)
	o.d.index[p] = owner
}

func (o indexObserver) VnodeRemoved(v VnodeID) {
	delete(o.d.vnodeGroup, v)
}

// New returns an empty local-approach DHT.  rng drives every random choice
// the paper specifies: the victim-group draw r ∈ R_h (§3.6), the random
// halves of a group split and the random child receiving the new vnode
// (§3.7), and victim-partition selection (§2.5).
func New(cfg Config, rng *rand.Rand) (*DHT, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("core: rng must not be nil")
	}
	return &DHT{
		cfg:        cfg,
		vmax:       2 * cfg.Vmin,
		rng:        rng,
		groups:     make(map[GroupID]*Group),
		vnodeGroup: make(map[VnodeID]GroupID),
		index:      make(map[hashspace.Partition]VnodeID),
		levels:     make(map[uint8]int),
	}, nil
}

// Config returns the DHT's parameters.
func (d *DHT) Config() Config { return d.cfg }

// Vmax returns 2·Vmin (invariant L2).
func (d *DHT) Vmax() int { return d.vmax }

// Vnodes returns the overall number of vnodes V.
func (d *DHT) Vnodes() int { return len(d.vnodeGroup) }

// Groups returns the current number of groups G.
func (d *DHT) Groups() int { return len(d.groups) }

// GroupIDs returns the live group identifiers in deterministic order.
func (d *DHT) GroupIDs() []GroupID {
	out := make([]GroupID, 0, len(d.groups))
	for id := range d.groups {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Group returns the group with the given identifier.
func (d *DHT) Group(id GroupID) (*Group, bool) {
	g, ok := d.groups[id]
	return g, ok
}

// GroupOf returns the group hosting vnode v.
func (d *DHT) GroupOf(v VnodeID) (GroupID, bool) {
	id, ok := d.vnodeGroup[v]
	return id, ok
}

// newGroup registers an empty group under the given identifier.
func (d *DHT) newGroup(id GroupID) (*Group, error) {
	if _, dup := d.groups[id]; dup {
		return nil, fmt.Errorf("core: duplicate group id %v", id)
	}
	sc, err := scope.New(d.cfg.Pmin, d.rng, indexObserver{d})
	if err != nil {
		return nil, err
	}
	// Group scopes own scattered subsets of R_h, so partition coalescing
	// can be impossible; tolerate transient G4′ upper-bound overshoot.
	sc.SetSoftUpperBound(true)
	g := &Group{id: id, sc: sc}
	d.groups[id] = g
	d.levels[sc.Level()]++
	d.stats.GroupCreations++
	return g, nil
}

// dropGroup unregisters a dissolved group.
func (d *DHT) dropGroup(g *Group) {
	d.foldStats(g.sc.Stats())
	d.decLevel(g.sc.Level())
	delete(d.groups, g.id)
}

func (d *DHT) decLevel(l uint8) {
	d.levels[l]--
	if d.levels[l] == 0 {
		delete(d.levels, l)
	}
}

// groupOp runs a mutation on a group's scope, keeping the level refcounts
// accurate when the operation performs a scope-wide split or merge.
func (d *DHT) groupOp(g *Group, fn func() error) error {
	before := g.sc.Level()
	err := fn()
	if after := g.sc.Level(); after != before {
		d.decLevel(before)
		d.levels[after]++
	}
	return err
}

// foldStats accumulates a dissolved scope's counters into the DHT totals.
func (d *DHT) foldStats(s scope.Stats) {
	d.folded.Handovers += s.Handovers
	d.folded.Splits += s.Splits
	d.folded.Merges += s.Merges
}

// Stats returns the cumulative structural-work counters.
func (d *DHT) Stats() Stats {
	out := d.stats
	out.Handovers = d.folded.Handovers
	out.PartitionSplits = d.folded.Splits
	out.PartitionMerges = d.folded.Merges
	for _, g := range d.groups {
		s := g.sc.Stats()
		out.Handovers += s.Handovers
		out.PartitionSplits += s.Splits
		out.PartitionMerges += s.Merges
	}
	return out
}

// AddVnode creates a new vnode following §3.6: draw r ∈ R_h uniformly, look
// up the vnode owning r (the victim vnode) and its group (the victim
// group); if the victim group is full, split it per §3.7 and pick one child
// at random; then run the §2.5 algorithm inside the chosen group.  The id
// of the new vnode and its group are returned.
func (d *DHT) AddVnode() (VnodeID, GroupID, error) {
	id := d.nextID
	if len(d.groups) == 0 {
		// First vnode ⇒ first group (§3.7 case a).
		g, err := d.newGroup(GroupID{})
		if err != nil {
			return 0, GroupID{}, err
		}
		if err := d.groupOp(g, func() error { return g.sc.AddVnode(id) }); err != nil {
			return 0, GroupID{}, err
		}
		// Bootstrap emits no observer events; seed the DHT index directly.
		for _, p := range g.sc.Partitions(id) {
			d.index[p] = id
		}
		d.vnodeGroup[id] = g.id
		d.nextID++
		return id, g.id, nil
	}
	r := d.rng.Uint64()
	victim, ok := d.Lookup(r)
	if !ok {
		return 0, GroupID{}, fmt.Errorf("core: lookup of r=%d found no owner; index corrupt", r)
	}
	gid := d.vnodeGroup[victim]
	g := d.groups[gid]
	if g.sc.Len() == d.vmax {
		// Victim group full ⇒ split (§3.7 case b), then a random child
		// becomes the container of the new vnode.
		lo, hi, err := d.splitGroup(g)
		if err != nil {
			return 0, GroupID{}, err
		}
		if d.rng.Intn(2) == 0 {
			g = lo
		} else {
			g = hi
		}
	}
	if err := d.groupOp(g, func() error { return g.sc.AddVnode(id) }); err != nil {
		return 0, GroupID{}, err
	}
	d.vnodeGroup[id] = g.id
	d.nextID++
	return id, g.id, nil
}

// splitGroup divides a full group into two groups of Vmin vnodes each,
// randomly selected from the original (§3.7), both inheriting the parent's
// splitlevel, with identifiers from the §3.7.1 scheme.
func (d *DHT) splitGroup(g *Group) (lo, hi *Group, err error) {
	if g.sc.Len() != d.vmax {
		return nil, nil, fmt.Errorf("core: splitting group %v with %d vnodes, want Vmax=%d", g.id, g.sc.Len(), d.vmax)
	}
	members := g.sc.Vnodes()
	d.rng.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
	loID, hiID := g.id.Split()
	level := g.sc.Level()
	if lo, err = d.newGroup(loID); err != nil {
		return nil, nil, err
	}
	if hi, err = d.newGroup(hiID); err != nil {
		return nil, nil, err
	}
	for i, v := range members {
		dst := lo
		if i >= d.cfg.Vmin {
			dst = hi
		}
		set, err := g.sc.Detach(v)
		if err != nil {
			return nil, nil, err
		}
		if err := dst.sc.Attach(v, set, level); err != nil {
			return nil, nil, err
		}
		d.vnodeGroup[v] = dst.id
	}
	// Empty child scopes were registered at level 0 by newGroup; move their
	// refcounts to the level they adopted on Attach.
	for _, child := range []*Group{lo, hi} {
		if l := child.sc.Level(); l != 0 {
			d.decLevel(0)
			d.levels[l]++
		}
	}
	d.dropGroup(g)
	d.stats.GroupSplits++
	return lo, hi, nil
}

// RemoveVnode dissolves a vnode inside its group (dynamic leave — an
// extension; the paper defines removal only for the base model's feature
// set).  The group's scope redistributes and, if needed, coalesces
// partitions, so G2′–G5′ keep holding.  Invariant L2's lower bound is
// relaxed on shrink: a group may run a membership deficit (V_g < Vmin)
// until future insertions refill it, mirroring the exception the paper
// already grants group 0.  Removing a group's last vnode is refused, since
// group dissolution is undefined in the model.
func (d *DHT) RemoveVnode(v VnodeID) error {
	gid, ok := d.vnodeGroup[v]
	if !ok {
		return fmt.Errorf("core: vnode %d not present", v)
	}
	g := d.groups[gid]
	if g.sc.Len() == 1 {
		if len(d.groups) == 1 {
			return fmt.Errorf("core: cannot remove the last vnode of the DHT")
		}
		return fmt.Errorf("core: vnode %d is the last member of group %v; group dissolution is undefined in the model", v, gid)
	}
	return d.groupOp(g, func() error { return g.sc.RemoveVnode(v) })
}

// Lookup returns the vnode owning hash index i.  Groups may sit at
// different splitlevels (sizes differ between groups, §3.4), so the probe
// walks the small set of levels currently in use.
func (d *DHT) Lookup(i hashspace.Index) (VnodeID, bool) {
	for l := range d.levels {
		if v, ok := d.index[hashspace.Containing(i, l)]; ok {
			return v, true
		}
	}
	return 0, false
}

// LookupKey hashes a key and returns the responsible vnode.
func (d *DHT) LookupKey(key []byte) (VnodeID, bool) {
	return d.Lookup(hashspace.Hash(key))
}

// VnodeQuotas returns Q_v for every vnode of the DHT in ascending vnode
// order.  Quotas are exact: Q_v = P_{v,g} · 2^(−l_g) (§3.5).
func (d *DHT) VnodeQuotas() []float64 {
	ids := make([]VnodeID, 0, len(d.vnodeGroup))
	for v := range d.vnodeGroup {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]float64, len(ids))
	for i, v := range ids {
		g := d.groups[d.vnodeGroup[v]]
		q, _ := g.sc.Quota(v)
		out[i] = q
	}
	return out
}

// GroupQuotas returns Q_g for every live group, ordered by group id.
func (d *DHT) GroupQuotas() []float64 {
	ids := d.GroupIDs()
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = d.groups[id].Quota()
	}
	return out
}

// QualityOfBalancement returns σ̄(Q_v, Q̄_v), the only valid quality metric
// under the local approach (§3.5), as a fraction.
func (d *DHT) QualityOfBalancement() float64 {
	return metrics.RelStdDev(d.VnodeQuotas())
}

// GroupBalancement returns σ̄(Q_g, Q̄_g), the quality of the balancement
// *between groups* of §4.2.1, measured against the ideal average quota
// Q̄_g = 1/G.
func (d *DHT) GroupBalancement() float64 {
	qs := d.GroupQuotas()
	if len(qs) == 0 {
		return 0
	}
	return metrics.RelStdDevAround(qs, 1/float64(len(qs)))
}

// CheckInvariants verifies, beyond each group scope's G2′–G5′ checks:
// L1 + G1′ (the groups' partitions are mutually disjoint and tile R_h),
// L2's upper bound V_g ≤ Vmax (the lower bound is enforced only as
// 1 ≤ V_g, per the group-0 exception and the shrink relaxation), and the
// consistency of the vnode→group map, the partition index and the level
// refcounts.
func (d *DHT) CheckInvariants() error {
	if len(d.groups) == 0 {
		if len(d.vnodeGroup) != 0 || len(d.index) != 0 {
			return fmt.Errorf("core: empty DHT with residual state")
		}
		return nil
	}
	all := hashspace.NewSet()
	vnodeCount := 0
	indexCount := 0
	levelSeen := make(map[uint8]int)
	for id, g := range d.groups {
		if g.id != id {
			return fmt.Errorf("core: group map key %v ≠ group id %v", id, g.id)
		}
		if err := g.sc.CheckInvariants(); err != nil {
			return fmt.Errorf("core: group %v: %w", id, err)
		}
		if n := g.sc.Len(); n < 1 || n > d.vmax {
			return fmt.Errorf("core: L2 violated: group %v has %d vnodes (Vmax=%d)", id, n, d.vmax)
		}
		levelSeen[g.sc.Level()]++
		for _, v := range g.sc.Vnodes() {
			vnodeCount++
			if got, ok := d.vnodeGroup[v]; !ok || got != id {
				return fmt.Errorf("core: vnode %d group map says %v, scope says %v", v, got, id)
			}
			for _, p := range g.sc.Partitions(v) {
				if err := all.Add(p); err != nil {
					return fmt.Errorf("core: L1/G1′ violated: %w", err)
				}
				owner, ok := d.index[p]
				if !ok || owner != v {
					return fmt.Errorf("core: index for %v says vnode %d, scope says %d", p, owner, v)
				}
				indexCount++
			}
		}
	}
	if !all.Covers() {
		return fmt.Errorf("core: G1′ violated: groups do not tile R_h")
	}
	if vnodeCount != len(d.vnodeGroup) {
		return fmt.Errorf("core: %d vnodes in scopes, %d in group map", vnodeCount, len(d.vnodeGroup))
	}
	if indexCount != len(d.index) {
		return fmt.Errorf("core: index has %d entries, scopes have %d partitions", len(d.index), indexCount)
	}
	for l, n := range levelSeen {
		if d.levels[l] != n {
			return fmt.Errorf("core: level %d refcount %d, want %d", l, d.levels[l], n)
		}
	}
	for l := range d.levels {
		if levelSeen[l] == 0 {
			return fmt.Errorf("core: stale level refcount for %d", l)
		}
	}
	return nil
}
