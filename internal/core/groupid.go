package core

import "fmt"

// GroupID is the decentralized binary group identifier of §3.7.1.  The
// first group of a DHT carries the zero value (displayed "0", per figure 3).
// When a group splits, each child inherits the parent's binary identifier
// prefixed (as new most-significant digit) with 0 or 1, so only the snode
// coordinating the split participates in naming — no global agreement
// needed.  Len counts the digits; Bits holds their value.
type GroupID struct {
	// Bits is the numeric value of the binary identifier (figure 3 shows
	// both the binary string and this base-10 value).
	Bits uint64
	// Len is the number of binary digits; the first group has Len 0.
	Len uint8
}

// Split returns the two child identifiers: the parent's digits prefixed by
// 0 and by 1 respectively.  Prefixing digit b onto an identifier of length
// n yields value b·2ⁿ + Bits, exactly reproducing figure 3 (e.g. "10"₂ = 2
// splits into "010"₂ = 2 and "110"₂ = 6).
func (g GroupID) Split() (lo, hi GroupID) {
	if g.Len >= 63 {
		panic(fmt.Sprintf("core: group identifier %v too deep to split", g))
	}
	lo = GroupID{Bits: g.Bits, Len: g.Len + 1}
	hi = GroupID{Bits: g.Bits | 1<<g.Len, Len: g.Len + 1}
	return lo, hi
}

// Less orders identifiers deterministically (by length, then value); the
// runtime uses it for reproducible tie-breaking, not for any protocol
// purpose.
func (g GroupID) Less(o GroupID) bool {
	if g.Len != o.Len {
		return g.Len < o.Len
	}
	return g.Bits < o.Bits
}

// String renders the binary identifier as in figure 3 ("0", "10", "110");
// the first group renders as "0".
func (g GroupID) String() string {
	if g.Len == 0 {
		return "0"
	}
	return fmt.Sprintf("%0*b", int(g.Len), g.Bits)
}
