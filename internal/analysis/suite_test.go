package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"dbdht/internal/analysis"
	"dbdht/internal/analysis/analysistest"
)

func TestWireTag(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WireTag, "wiretagtest", "cleantest")
}

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockGuard, "lockguardtest", "cleantest")
}

func TestNoGob(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NoGob, "nogobtest", "cleantest")
}

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.AtomicField, "atomicfieldtest", "cleantest")
}

func TestTraceCtx(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.TraceCtx, "tracectxtest", "cleantest")
}

// TestFullSuiteClean runs every analyzer together over the clean golden
// package: the suite as a whole must stay silent, not just each analyzer
// in isolation.
func TestFullSuiteClean(t *testing.T) {
	diags := runOn(t, "cleantest", analysis.All())
	for _, d := range diags {
		t.Errorf("unexpected diagnostic on clean package: %s", d)
	}
}

// TestSuppression checks the //lint:dbdht policy: a justified suppression
// silences its line, an unjustified one is itself a finding and silences
// nothing, and a suppression naming a different analyzer does not apply.
func TestSuppression(t *testing.T) {
	diags := runOn(t, "suppresstest", []*analysis.Analyzer{analysis.LockGuard})
	var suppress, lockguard int
	for _, d := range diags {
		switch {
		case d.Analyzer == "suppress" && strings.Contains(d.Message, "suppression without justification"):
			suppress++
		case d.Analyzer == "lockguard" && strings.Contains(d.Message, "b.n read without b.mu held"):
			lockguard++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if suppress != 1 {
		t.Errorf("got %d unjustified-suppression findings, want 1", suppress)
	}
	if lockguard != 2 {
		t.Errorf("got %d lockguard findings, want 2 (unjustified + wrong-analyzer suppressions must not apply)", lockguard)
	}
}

func runOn(t *testing.T, pkgName string, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(src)
	if err != nil {
		t.Fatal(err)
	}
	loader.ExtraRoot = src
	loader.TagsLockPath = ""
	pkg, err := loader.LoadDir(filepath.Join(src, pkgName))
	if err != nil {
		t.Fatalf("loading %s: %v", pkgName, err)
	}
	diags, err := analysis.RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}
