package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity per field: a struct field
// that is passed by address to a sync/atomic function anywhere in the
// package must be accessed through sync/atomic everywhere — one plain
// `s.n++` next to an `atomic.AddInt64(&s.n, 1)` is a data race the race
// detector only catches when both sites run concurrently in a test.
// (Fields typed atomic.Int64 & friends are immune by construction; this
// analyzer covers the legacy pointer-style API.)
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic anywhere are accessed atomically everywhere",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) error {
	// Pass 1: fields used with the pointer-style atomic API, and every
	// such use site (to exclude them from pass 2).
	atomicFields := make(map[*types.Var]bool)
	atomicUses := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if field := fieldOf(pass, sel); field != nil {
					atomicFields[field] = true
					atomicUses[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: every other access to those fields is a finding.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicUses[sel] {
				return true
			}
			field := fieldOf(pass, sel)
			if field == nil || !atomicFields[field] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "field %s is accessed with sync/atomic elsewhere; this plain access races with it — use the atomic API here too (or migrate the field to atomic.%s)",
				field.Name(), suggestedAtomicType(field.Type()))
			return true
		})
	}
	return nil
}

func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "sync/atomic"
}

func fieldOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil
	}
	v, _ := selection.Obj().(*types.Var)
	return v
}

func suggestedAtomicType(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		}
	}
	return "Value"
}
