package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed + type-checked package, ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TagsLockPath is the wiretag registry governing this package (may be
	// empty for packages outside a module).
	TagsLockPath string
}

// Loader parses and type-checks packages of one module from source.  It
// resolves module-local imports itself and delegates everything else to
// the toolchain's source importer, so it needs no module proxy, no
// export data and no external dependencies — the properties that let the
// analyzer suite build in a hermetic container.
type Loader struct {
	Fset      *token.FileSet
	Module    string // module path from go.mod ("" outside a module)
	ModuleDir string // directory holding go.mod
	// ExtraRoot, when set, is a GOPATH/src-style root checked before the
	// module: import "a/b" loads <ExtraRoot>/a/b.  The analysistest
	// harness points it at a testdata/src directory.
	ExtraRoot string
	// TagsLockPath overrides the wiretag registry location (defaults to
	// <ModuleDir>/internal/analysis/tags.lock).
	TagsLockPath string

	std   types.Importer
	cache map[string]*Package
}

// NewLoader builds a loader rooted at the module containing dir (dir may
// be any directory inside the module; outside a module, only ExtraRoot
// and stdlib imports resolve).
func NewLoader(dir string) (*Loader, error) {
	l := &Loader{
		Fset:  token.NewFileSet(),
		cache: make(map[string]*Package),
	}
	modDir, modPath, err := findModule(dir)
	if err == nil {
		l.ModuleDir = modDir
		l.Module = modPath
		l.TagsLockPath = filepath.Join(modDir, "internal", "analysis", "tags.lock")
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	return l, nil
}

// findModule walks up from dir to the nearest go.mod.
func findModule(dir string) (modDir, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer over the loader's resolution order:
// ExtraRoot, then the module, then the toolchain's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.ExtraRoot != "" {
		if dir := filepath.Join(l.ExtraRoot, filepath.FromSlash(path)); isPkgDir(dir) {
			pkg, err := l.load(path, dir)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	if l.Module != "" && (path == l.Module || strings.HasPrefix(path, l.Module+"/")) {
		dir := filepath.Join(l.ModuleDir, filepath.FromSlash(strings.TrimPrefix(path, l.Module)))
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func isPkgDir(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// LoadDir loads the package in dir (resolving its import path from the
// loader's roots; a directory outside every root loads under a synthetic
// path).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPathFor(abs)
	return l.load(path, abs)
}

func (l *Loader) importPathFor(abs string) string {
	if l.ExtraRoot != "" {
		if rel, err := filepath.Rel(l.ExtraRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	if l.ModuleDir != "" {
		if rel, err := filepath.Rel(l.ModuleDir, abs); err == nil && !strings.HasPrefix(rel, "..") {
			if rel == "." {
				return l.Module
			}
			return l.Module + "/" + filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(abs)
}

// load parses and type-checks one package directory (memoized by import
// path).  Test files (_test.go) are excluded: the invariants the suite
// enforces live in production sources.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return pkg, nil
	}
	l.cache[path] = nil // cycle guard
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go sources in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:         path,
		Dir:          dir,
		Fset:         l.Fset,
		Files:        files,
		Types:        tpkg,
		Info:         info,
		TagsLockPath: l.TagsLockPath,
	}
	l.cache[path] = pkg
	return pkg, nil
}

// ExpandPatterns resolves go-tool style package patterns ("./...", "./x",
// "dir") into package directories, skipping testdata, hidden directories
// and directories without Go sources.
func (l *Loader) ExpandPatterns(cwd string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] && isPkgDir(d) {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(cwd, root)
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(p)
			if p != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}
