package atomicfieldtest

import "sync/atomic"

type counter struct {
	n    int64
	hits int64
	ok   uint32
}

func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.n) // ok: atomic access to an atomic field
}

func (c *counter) racy() int64 {
	return c.n // want `field n is accessed with sync/atomic elsewhere.*atomic.Int64`
}

func (c *counter) racyWrite() {
	c.n = 0 // want `field n is accessed with sync/atomic elsewhere`
}

func (c *counter) plain() { c.hits++ } // ok: hits is never touched atomically

func (c *counter) addOK()         { atomic.AddUint32(&c.ok, 1) }
func (c *counter) loadOK() uint32 { return atomic.LoadUint32(&c.ok) }
