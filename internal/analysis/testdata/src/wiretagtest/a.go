package wiretagtest // want `registry entry wireTagGone = 7 in .*tags.lock has no constant`

// RegisterWire stands in for the transport registry.
func RegisterWire(tag uint16, fn func([]byte) any) {}

const (
	wireTagPing  uint16 = 1
	wireTagPong  uint16 = 2
	wireTagDup   uint16 = 2 // want `tag wireTagDup reuses value 2 already held by wireTagPong` `tag wireTagDup = 2 collides with registry entry wireTagPong`
	wireTagNovel uint16 = 9 // want `tag wireTagNovel = 9 is not registered`
	wireTagMoved uint16 = 5 // want `tag wireTagMoved = 5 disagrees with registry \(.*tags.lock says 4\)`
	wireTagBurn  uint16 = 6 // want `tag wireTagBurn = 6 collides with registry entry retired`
	wireTagNoDec uint16 = 8 // want `wire tag wireTagNoDec has no decoder`
)

const (
	walTagPut   uint16 = 32
	walTagNoEnc uint16 = 33 // want `WAL tag walTagNoEnc has no encoder`
)

type ping struct{}

func (ping) WireTag() uint16 { return wireTagPing }

type pong struct{}

func (pong) WireTag() uint16 { return wireTagPong }

type dup struct{}

func (dup) WireTag() uint16 { return wireTagDup }

type novel struct{}

func (novel) WireTag() uint16 { return wireTagNovel }

type moved struct{}

func (moved) WireTag() uint16 { return wireTagMoved }

type burn struct{}

func (burn) WireTag() uint16 { return wireTagBurn }

type noDec struct{}

func (noDec) WireTag() uint16 { return wireTagNoDec }

func init() {
	RegisterWire(wireTagPing, func(b []byte) any { return ping{} })
	RegisterWire(wireTagPong, func(b []byte) any { return pong{} })
	RegisterWire(wireTagDup, func(b []byte) any { return dup{} })
	RegisterWire(wireTagNovel, func(b []byte) any { return novel{} })
	RegisterWire(wireTagMoved, func(b []byte) any { return moved{} })
	RegisterWire(wireTagBurn, func(b []byte) any { return burn{} })
}

func encodePut(buf []byte) []byte {
	return append(buf, byte(uint64(walTagPut)))
}

func replay(tag uint16) int {
	switch tag {
	case walTagPut:
		return 1
	case walTagNoEnc:
		return 2
	}
	return 0
}
