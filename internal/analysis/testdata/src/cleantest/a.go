// Package cleantest is the non-flagging golden package: every analyzer in
// the suite must stay silent on it.
package cleantest

import (
	"context"
	"sync"
	"sync/atomic"
)

type TraceContext struct{ ID uint64 }

const (
	wireTagGet uint16 = 1
	walTagSet  uint16 = 32
)

func RegisterWire(tag uint16, fn func([]byte) any) {}

type getReq struct{ K string }

func (getReq) WireTag() uint16 { return wireTagGet }

func init() {
	RegisterWire(wireTagGet, func(b []byte) any { return getReq{} })
}

func encodeSet(buf []byte) []byte { return append(buf, byte(walTagSet)) }

func replay(tag uint16) bool {
	switch tag {
	case walTagSet:
		return true
	}
	return false
}

type node struct {
	mu  sync.Mutex
	n   int64 // guarded by mu
	raw int64
	out chan any
}

func (nd *node) bump() {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	nd.n++
}

func (nd *node) count()       { atomic.AddInt64(&nd.raw, 1) }
func (nd *node) total() int64 { return atomic.LoadInt64(&nd.raw) }

func (nd *node) send(m any)                    { nd.out <- m }
func (nd *node) sendTr(tr TraceContext, m any) { nd.out <- tr; nd.out <- m }

//dbdht:dataplane
func (nd *node) handleGet(ctx context.Context, tr TraceContext, r getReq) {
	<-ctx.Done()
	nd.sendTr(tr, getReq{K: r.K})
}
