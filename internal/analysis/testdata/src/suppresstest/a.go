// Package suppresstest exercises the //lint:dbdht suppression policy; its
// expectations are asserted directly (not via want comments) because the
// suppression marker is itself a comment and cannot share a line with one.
package suppresstest

import "sync"

type box struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (b *box) justified() int {
	//lint:dbdht lockguard test justification: read is benign here
	return b.n
}

func (b *box) unjustified() int {
	//lint:dbdht lockguard
	return b.n
}

func (b *box) wrongAnalyzer() int {
	//lint:dbdht wiretag justification for a different analyzer
	return b.n
}
