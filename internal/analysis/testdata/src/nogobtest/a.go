package nogobtest

import (
	"bytes"
	"encoding/gob"
)

//dbdht:dataplane
func handleDirect(v any) {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(v) // want `data-plane function handleDirect uses encoding/gob`
}

//dbdht:dataplane
func handleChain(v any) { // want `data-plane function handleChain reaches encoding/gob via handleChain → helper → encodeGob`
	helper(v)
}

func helper(v any) { encodeGob(v) }

func encodeGob(v any) {
	var buf bytes.Buffer
	_ = gob.NewEncoder(&buf).Encode(v)
}

//dbdht:dataplane
func handleClean(v []byte) []byte {
	return append([]byte{1}, v...)
}

// controlPlane may use gob: it is not a dataplane root.
func controlPlane(v any) { encodeGob(v) }
