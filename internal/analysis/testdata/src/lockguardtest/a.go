package lockguardtest

import "sync"

type store struct {
	mu sync.Mutex
	rw sync.RWMutex

	n     int            // guarded by mu
	m     map[string]int // guarded by mu
	state int            // guarded by mu or rw
	// guarded by nothere
	bogus int // want `guarded-by annotation names "nothere", which is not a sibling sync.Mutex/RWMutex field`
	free  int
}

func newStore() *store {
	st := &store{m: make(map[string]int)}
	st.n = 1 // constructor-local: unshared, exempt
	return st
}

func (s *store) serve() {}

func newServingStore() *store {
	st := &store{m: make(map[string]int)}
	st.n = 1 // still exempt: nothing else can see st yet
	go st.serve()
	st.n = 2 // want `st.n written without st.mu held`
	return st
}

func (s *store) good() {
	s.mu.Lock()
	s.n++
	s.m["k"] = 1
	delete(s.m, "gone")
	s.mu.Unlock()
}

func (s *store) deferGood() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *store) bad() int {
	return s.n // want `s.n read without s.mu held`
}

func (s *store) badWrite() {
	s.n = 1 // want `s.n written without s.mu held`
}

func (s *store) afterUnlock() {
	s.mu.Lock()
	s.n = 1
	s.mu.Unlock()
	s.n = 2 // want `s.n written without s.mu held`
}

func (s *store) earlyReturn(cond bool) int {
	s.mu.Lock()
	if cond {
		v := s.n
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return s.free
}

func (s *store) condUnlock(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
	}
	s.n = 3 // want `s.n written without s.mu held`
}

func (s *store) rlockRead() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.state // ok: either guard satisfies a read
}

func (s *store) rlockWrite() {
	s.rw.RLock()
	s.state = 1 // want `s.state written without s.mu or s.rw held`
	s.rw.RUnlock()
}

func (s *store) setLocked() {
	s.n = 7 // ok: Locked suffix asserts the caller holds the guards
}

func (s *store) spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.n++ // want `s.n written without s.mu held`
	}()
	s.n++
}

func (s *store) journal(fn func()) { fn() }

func (s *store) withClosure() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal(func() {
		s.n++ // ok: the literal runs where it appears, under the lock
	})
}

func (s *store) dualRead() int {
	//lint:dbdht lockguard golden test of a justified dual-lock suppression
	return s.state
}

func (s *store) escape() *int {
	return &s.n // want `s.n written without s.mu held`
}

// recover rebuilds state before anything else can see the store.
//
//dbdht:exclusive
func (s *store) recover() {
	s.n = 9 // ok: exclusive access, locks unnecessary by construction
	s.m = map[string]int{"seed": 1}
}
