package tracectxtest

import "context"

type TraceContext struct{ ID uint64 }

type fooReq struct{ K string }

type fooResp struct{ V string }

type node struct{ out chan any }

func (n *node) send(m any) { n.out <- m }

func (n *node) sendTr(tr TraceContext, m any) {
	n.out <- tr
	n.out <- m
}

func (n *node) rpc(m any) any {
	n.out <- m
	return nil
}

func (n *node) rpcTr(tr TraceContext, m any) any {
	n.out <- tr
	n.out <- m
	return nil
}

func (n *node) forward(tr TraceContext, k string) {
	n.sendTr(tr, fooReq{K: k}) // ok: traced variant
}

func (n *node) reply(tr TraceContext, v string) {
	_ = tr.ID
	n.send(fooResp{V: v}) // ok: responses are deliberately untraced
}

func (n *node) dropped(tr TraceContext, k string) { // want `trace context parameter tr is never used`
	n.send(fooReq{K: k}) // want `request sent via n.send while a trace context is in scope — use sendTr`
}

func (n *node) partial(tr TraceContext, k string) {
	n.sendTr(tr, fooReq{K: k})
	n.send(fooReq{K: k + "2"}) // want `use sendTr`
}

func (n *node) call(tr TraceContext, k string) any {
	_ = tr.ID
	return n.rpc(fooReq{K: k}) // want `use rpcTr`
}

func run(ctx context.Context) { <-ctx.Done() }

func lookup(ctx context.Context) {
	go run(context.Background()) // want `context.Background\(\) inside a function that already has a context parameter`
	run(ctx)
}

func todoer(ctx context.Context) {
	run(context.TODO()) // want `context.TODO\(\) inside a function that already has a context parameter`
	run(ctx)
}

func ignores(ctx context.Context, k string) string { // want `context.Context parameter ctx is never used`
	return k
}

func blankOK(_ context.Context, k string) string { return k }

func late(k string, ctx context.Context) { // want `context.Context parameter ctx should be the function's first parameter`
	_ = k
	run(ctx)
}

func traceFirst(tr TraceContext, ctx context.Context) { // ok: trace params may lead
	_ = tr.ID
	run(ctx)
}
