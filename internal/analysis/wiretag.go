package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WireTag enforces the frozen wire/WAL tag number space (docs/WIRE.md):
//
//   - every `wireTag*` / `walTag*` constant has a unique value — the two
//     families share one number space, so a WAL record tag can never
//     collide with a wire message tag;
//   - every tag is registered in internal/analysis/tags.lock with exactly
//     its current value, so reusing or renumbering a tag requires an
//     explicit, reviewable lockfile edit (and deleting a lockfile entry
//     while the constant exists fails the build);
//   - a `retired` lockfile entry reserves its number forever;
//   - every wire tag has both an encoder (a WireTag() method returning
//     it) and a decoder (a transport.RegisterWire call installing it);
//   - every WAL tag is written by an encoder and handled by a replay
//     switch case.
var WireTag = &Analyzer{
	Name: "wiretag",
	Doc:  "wire/WAL tags are unique, lockfile-registered, and fully wired (encoder + decoder)",
	Run:  runWireTag,
}

type tagConst struct {
	name  string
	value uint64
	pos   token.Pos
}

func runWireTag(pass *Pass) error {
	var tags []tagConst
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "wireTag") && !strings.HasPrefix(name.Name, "walTag") {
						continue
					}
					obj := pass.Info.Defs[name]
					if obj == nil {
						continue
					}
					cv := obj.(interface{ Val() constant.Value }).Val()
					v, ok := constant.Uint64Val(cv)
					if !ok {
						pass.Reportf(name.Pos(), "tag constant %s is not an unsigned integer", name.Name)
						continue
					}
					tags = append(tags, tagConst{name: name.Name, value: v, pos: name.Pos()})
				}
			}
		}
	}
	if len(tags) == 0 {
		return nil // not a tag-bearing package
	}

	// Uniqueness across the shared number space.
	byValue := make(map[uint64]tagConst)
	sorted := append([]tagConst(nil), tags...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].pos < sorted[j].pos })
	for _, t := range sorted {
		if prev, dup := byValue[t.value]; dup {
			pass.Reportf(t.pos, "tag %s reuses value %d already held by %s — the wire/WAL tag space is frozen; pick the next free number and register it in tags.lock",
				t.name, t.value, prev.name)
			continue
		}
		byValue[t.value] = t
	}

	// Lockfile reconciliation.
	lockPath := pass.TagsLockPath
	if lockPath == "" {
		lockPath = filepath.Join(pass.Dir, "tags.lock")
	}
	lock, lockOrder, err := parseTagsLock(lockPath)
	if err != nil {
		pass.Reportf(pass.Files[0].Package, "cannot read tag registry: %v", err)
		return nil
	}
	rel := lockPath
	if r, err := filepath.Rel(pass.Dir, lockPath); err == nil && !strings.HasPrefix(r, "..") {
		rel = r
	}
	lockByValue := make(map[uint64]string)
	for _, name := range lockOrder {
		v := lock[name]
		if prev, dup := lockByValue[v]; dup && name != "retired" && prev != "retired" {
			pass.Reportf(pass.Files[0].Package, "%s: entries %s and %s both claim value %d", rel, prev, name, v)
		}
		lockByValue[v] = name
	}
	codeByName := make(map[string]tagConst, len(tags))
	for _, t := range tags {
		codeByName[t.name] = t
	}
	for _, t := range tags {
		locked, ok := lock[t.name]
		switch {
		case !ok:
			if holder, taken := lockByValue[t.value]; taken && holder != t.name {
				pass.Reportf(t.pos, "tag %s = %d collides with registry entry %s = %d in %s — the value is burned; allocate a fresh one",
					t.name, t.value, holder, t.value, rel)
			} else {
				pass.Reportf(t.pos, "tag %s = %d is not registered in %s — append it (tags are append-only)", t.name, t.value, rel)
			}
		case locked != t.value:
			pass.Reportf(t.pos, "tag %s = %d disagrees with registry (%s says %d) — tags are never renumbered", t.name, t.value, rel, locked)
		}
	}
	for _, name := range lockOrder {
		if name == "retired" {
			continue
		}
		if _, ok := codeByName[name]; !ok {
			pass.Reportf(pass.Files[0].Package,
				"registry entry %s = %d in %s has no constant — tags are frozen forever; rename the entry to \"retired\" instead of deleting it",
				name, lock[name], rel)
		}
	}

	// Encoder/decoder completeness.
	enc, dec := tagUsageSides(pass)
	for _, t := range tags {
		wire := strings.HasPrefix(t.name, "wireTag")
		if !enc[t.name] {
			if wire {
				pass.Reportf(t.pos, "wire tag %s has no encoder: no WireTag() method returns it", t.name)
			} else {
				pass.Reportf(t.pos, "WAL tag %s has no encoder: no record encoder writes it", t.name)
			}
		}
		if !dec[t.name] {
			if wire {
				pass.Reportf(t.pos, "wire tag %s has no decoder: no transport.RegisterWire call installs one", t.name)
			} else {
				pass.Reportf(t.pos, "WAL tag %s has no decoder: no replay switch case handles it", t.name)
			}
		}
	}
	return nil
}

// tagUsageSides classifies every use of a tag constant as encoder-side or
// decoder-side.  Decoder side: first argument of a RegisterWire call (wire
// tags) or a switch case expression (WAL replay).  Encoder side: the
// return expression of a WireTag method (wire tags) or any other use in a
// function body (WAL record encoders write the tag as their first field).
func tagUsageSides(pass *Pass) (enc, dec map[string]bool) {
	enc = make(map[string]bool)
	dec = make(map[string]bool)
	tagName := func(e ast.Expr) (string, bool) {
		e = ast.Unparen(e)
		// Tags may appear converted: uint64(walTagWrite).
		if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if _, isConv := pass.Info.Types[call.Fun]; isConv && pass.Info.Types[call.Fun].IsType() {
				e = ast.Unparen(call.Args[0])
			}
		}
		id, ok := e.(*ast.Ident)
		if !ok || (!strings.HasPrefix(id.Name, "wireTag") && !strings.HasPrefix(id.Name, "walTag")) {
			return "", false
		}
		return id.Name, true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fun := n.Fun
				if sel, ok := fun.(*ast.SelectorExpr); ok {
					fun = sel.Sel
				}
				if id, ok := fun.(*ast.Ident); ok && id.Name == "RegisterWire" && len(n.Args) == 2 {
					if name, ok := tagName(n.Args[0]); ok {
						dec[name] = true
					}
				}
			case *ast.CaseClause:
				for _, e := range n.List {
					if name, ok := tagName(e); ok {
						dec[name] = true
					}
				}
			case *ast.FuncDecl:
				if n.Name.Name == "WireTag" && n.Recv != nil && n.Body != nil {
					ast.Inspect(n.Body, func(m ast.Node) bool {
						ret, ok := m.(*ast.ReturnStmt)
						if !ok {
							return true
						}
						for _, e := range ret.Results {
							if name, ok := tagName(e); ok {
								enc[name] = true
							}
						}
						return true
					})
					return false // WireTag methods are encoder-only
				}
				if n.Body != nil && strings.HasPrefix(n.Name.Name, "encode") {
					ast.Inspect(n.Body, func(m ast.Node) bool {
						if e, ok := m.(ast.Expr); ok {
							if name, ok := tagName(e); ok {
								enc[name] = true
							}
						}
						return true
					})
				}
			}
			return true
		})
	}
	return enc, dec
}

// parseTagsLock reads the registry: one `name = value` pair per line,
// `#` comments, `retired = value` reserving a burned number.
func parseTagsLock(path string) (map[string]uint64, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	lock := make(map[string]uint64)
	var order []string
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, nil, fmt.Errorf("%s:%d: want \"name = value\", got %q", path, i+1, line)
		}
		name = strings.TrimSpace(name)
		v, err := strconv.ParseUint(strings.TrimSpace(val), 10, 16)
		if err != nil {
			return nil, nil, fmt.Errorf("%s:%d: bad tag value: %v", path, i+1, err)
		}
		if _, dup := lock[name]; dup && name != "retired" {
			return nil, nil, fmt.Errorf("%s:%d: duplicate entry %s", path, i+1, name)
		}
		lock[name] = v
		order = append(order, name)
	}
	return lock, order, nil
}
