// Package analysistest runs analyzers against golden packages: Go files
// under <testdata>/src/<pkg> carry `// want "regexp"` comments (backtick
// quoting also works) on the exact lines where diagnostics are expected.
// A file with no want comments asserts the analyzer stays silent on it —
// the non-flagging half of every analyzer's coverage.
//
// The layout and comment syntax mirror golang.org/x/tools/go/analysis/
// analysistest so the golden files survive a future migration to the
// upstream framework unchanged.
package analysistest

import (
	"path/filepath"
	"regexp"
	"testing"

	"dbdht/internal/analysis"
)

var (
	wantRe = regexp.MustCompile(`//\s*want\s+(.+)$`)
	// One quoted expectation: `...` or "..." (with escapes).
	strRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	src     string
	matched bool
}

// Run loads each named package from <testdata>/src and checks the
// analyzer's diagnostics against the package's want comments, both ways:
// every diagnostic needs a matching expectation and every expectation
// needs a matching diagnostic.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pkgName := range pkgs {
		loader, err := analysis.NewLoader(src)
		if err != nil {
			t.Fatal(err)
		}
		loader.ExtraRoot = src
		loader.TagsLockPath = "" // golden packages carry their own tags.lock
		pkg, err := loader.LoadDir(filepath.Join(src, pkgName))
		if err != nil {
			t.Fatalf("loading %s: %v", pkgName, err)
		}
		diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgName, err)
		}
		expects := collectWants(t, pkg)
		for _, d := range diags {
			matched := false
			for _, e := range expects {
				if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
					continue
				}
				if e.re.MatchString(d.Message) {
					e.matched = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Pos, d.Analyzer, d.Message)
			}
		}
		for _, e := range expects {
			if !e.matched {
				t.Errorf("%s:%d: no diagnostic matched %q", e.file, e.line, e.src)
			}
		}
	}
}

func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, sm := range strRe.FindAllStringSubmatch(m[1], -1) {
					text := sm[1]
					if text == "" {
						text = sm[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, text, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, src: text})
				}
			}
		}
	}
	return out
}
