package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoInvariantsClean runs the full analyzer suite over the real
// module, so `go test ./...` — not just the CI analyze job — fails when a
// tag constant is deleted from tags.lock, a duplicate tag lands, a
// guarded field is accessed bare, gob creeps onto the data plane, or a
// trace context is dropped.  Suppressed findings carry their inline
// justification and do not count.
func TestRepoInvariantsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type-check is a few seconds; skipped under -short")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(cwd)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.ExpandPatterns(filepath.Dir(filepath.Dir(cwd)), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("ExpandPatterns found no packages")
	}
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		diags, err := RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
