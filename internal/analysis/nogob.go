package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoGob enforces the gob-free data plane: no encoding/gob call may be
// reachable — through any chain of same-package static calls — from a
// function marked with a `//dbdht:dataplane` directive.  The batch,
// replica-write, failover-read, lookup and migration-chunk paths carry
// every byte the system serves; one stray gob.Encode would put
// reflection back on the hot path (the regression PR 3 removed).  This
// replaces the runtime codec-counter test as the first line of defense:
// the counter only trips when a test exercises the exact path, the
// analyzer trips on the call graph alone.
//
// The check is per-package and resolves static calls only (direct
// function calls and concrete-receiver methods); interface dispatch and
// function values are out of scope, as are calls into other packages —
// the transport package's gob fallback is guarded by its own invariant
// (binary-codec registration, enforced by wiretag).
var NoGob = &Analyzer{
	Name: "nogob",
	Doc:  "no gob encode/decode reachable from //dbdht:dataplane functions",
	Run:  runNoGob,
}

const dataplaneDirective = "//dbdht:dataplane"

func runNoGob(pass *Pass) error {
	// One node per function declared in this package.
	type fnode struct {
		decl    *ast.FuncDecl
		root    bool
		gobCall token.Pos // first direct gob use in the body, if any
		callees []*types.Func
	}
	nodes := make(map[*types.Func]*fnode)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &fnode{decl: fd}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if strings.HasPrefix(strings.TrimSpace(c.Text), dataplaneDirective) {
						n.root = true
					}
				}
			}
			ast.Inspect(fd.Body, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.SelectorExpr:
					if isGobSelector(pass, m) && n.gobCall == token.NoPos {
						n.gobCall = m.Pos()
					}
				case *ast.CallExpr:
					if callee := staticCallee(pass, m); callee != nil && callee.Pkg() == pass.Pkg {
						n.callees = append(n.callees, callee)
					}
				}
				return true
			})
			nodes[obj] = n
		}
	}

	// BFS from each root, reporting the offending chain once per root.
	for _, n := range nodes {
		if !n.root {
			continue
		}
		type step struct {
			fn   *types.Func
			via  []string
			node *fnode
		}
		seen := make(map[*types.Func]bool)
		start, _ := pass.Info.Defs[n.decl.Name].(*types.Func)
		queue := []step{{fn: start, via: []string{n.decl.Name.Name}, node: n}}
		seen[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if cur.node == nil {
				continue
			}
			if cur.node.gobCall != token.NoPos {
				if len(cur.via) == 1 {
					pass.Reportf(cur.node.gobCall, "data-plane function %s uses encoding/gob — the data plane is reflection-free by contract (docs/WIRE.md); add a binary codec in wire.go instead", cur.via[0])
				} else {
					pass.Reportf(n.decl.Name.Pos(), "data-plane function %s reaches encoding/gob via %s — the data plane is reflection-free by contract (docs/WIRE.md); add a binary codec in wire.go instead",
						cur.via[0], strings.Join(cur.via, " → "))
				}
				break
			}
			for _, callee := range cur.node.callees {
				if seen[callee] {
					continue
				}
				seen[callee] = true
				queue = append(queue, step{fn: callee, via: append(append([]string(nil), cur.via...), callee.Name()), node: nodes[callee]})
			}
		}
	}
	return nil
}

// isGobSelector reports whether sel is a reference into encoding/gob.
func isGobSelector(pass *Pass, sel *ast.SelectorExpr) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "encoding/gob"
}

// staticCallee resolves a call to its target *types.Func when the target
// is statically known (plain functions and concrete methods).
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface dispatch is not static.
				if _, isIface := sel.Recv().Underlying().(*types.Interface); !isIface {
					return fn
				}
			}
			return nil
		}
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn // package-qualified call
		}
	}
	return nil
}
