package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// TraceCtx enforces trace/context propagation discipline on RPC paths:
//
//  1. a named trace parameter (transport.TraceContext) or context.Context
//     parameter that the function never uses is a dropped context —
//     callers paid to thread it here and it dies on the floor (this is
//     exactly how PR 6's span trees develop holes);
//  2. a function that HAS a context.Context parameter must not mint a
//     fresh context.Background()/context.TODO() — that severs
//     cancellation and deadlines mid-path;
//  3. a function that has a TraceContext parameter in scope and sends a
//     request message (a composite literal whose type name ends in
//     "Req") through the untraced send/rpc variants drops the trace on
//     an RPC hop — use sendTr/rpcTr/rpcTimeout;
//  4. context.Context parameters come first (matching the stdlib
//     convention, so call sites stay uniform).
var TraceCtx = &Analyzer{
	Name: "tracectx",
	Doc:  "trace and context parameters are forwarded, never dropped, on RPC paths",
	Run:  runTraceCtx,
}

func runTraceCtx(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkTraceFunc(pass, fd)
		}
	}
	return nil
}

func checkTraceFunc(pass *Pass, fd *ast.FuncDecl) {
	type ctxParam struct {
		name  *ast.Ident
		obj   types.Object
		trace bool // transport.TraceContext (vs context.Context)
	}
	var params []ctxParam
	leadingCtx := true // only ctx/trace params seen so far
	if fd.Type.Params != nil {
		for _, fl := range fd.Type.Params.List {
			t := pass.Info.TypeOf(fl.Type)
			isTrace := isTraceContextType(t)
			isCtx := isContextType(t)
			for _, name := range fl.Names {
				if !isTrace && !isCtx {
					leadingCtx = false
					continue
				}
				if name.Name == "_" {
					continue
				}
				// Rule 4: context.Context leads (trace params may precede it).
				if isCtx && !leadingCtx {
					pass.Reportf(name.Pos(), "context.Context parameter %s should be the function's first parameter", name.Name)
				}
				params = append(params, ctxParam{name: name, obj: pass.Info.Defs[name], trace: isTrace})
			}
		}
	}

	if len(params) == 0 {
		return
	}

	used := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[id]; obj != nil {
			used[obj] = true
		}
		return true
	})
	// Rule 1: dropped parameters.
	for _, p := range params {
		if p.obj != nil && !used[p.obj] {
			kind := "context.Context"
			if p.trace {
				kind = "trace context"
			}
			pass.Reportf(p.name.Pos(), "%s parameter %s is never used — the context dies here instead of propagating; forward it or rename it _", kind, p.name.Name)
		}
	}

	hasCtx := false
	hasTrace := false
	for _, p := range params {
		if p.trace {
			hasTrace = true
		} else {
			hasCtx = true
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return true // closures inherit the outer scope's obligations
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Rule 2: fresh root contexts beneath a context parameter.
		if hasCtx {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "context" &&
						(sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") {
						pass.Reportf(call.Pos(), "context.%s() inside a function that already has a context parameter — forward the caller's context instead of severing cancellation", sel.Sel.Name)
					}
				}
			}
		}
		// Rule 3: untraced request sends with a trace context in scope.
		if hasTrace {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "send" || sel.Sel.Name == "rpc") {
				if recvHasTracedVariant(pass, sel) && sendsRequestLiteral(pass, call) {
					variant := "sendTr"
					if sel.Sel.Name == "rpc" {
						variant = "rpcTr"
					}
					pass.Reportf(call.Pos(), "request sent via %s.%s while a trace context is in scope — use %s so the span tree survives this hop",
						types.ExprString(sel.X), sel.Sel.Name, variant)
				}
			}
		}
		return true
	})
}

func isTraceContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "TraceContext"
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// recvHasTracedVariant reports whether the receiver type of sel also has
// a <method>Tr sibling — the signal that the untraced variant was a
// choice, not the only option.
func recvHasTracedVariant(pass *Pass, sel *ast.SelectorExpr) bool {
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	named := namedStruct(t)
	if named == nil {
		return false
	}
	want := sel.Sel.Name + "Tr"
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == want {
			return true
		}
	}
	return false
}

// sendsRequestLiteral reports whether any argument is a composite
// literal of a message type whose name ends in "Req" (the repo's request
// naming convention) or a closure returning one.
func sendsRequestLiteral(pass *Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(cl)
			if named, ok := t.(*types.Named); ok && strings.HasSuffix(named.Obj().Name(), "Req") {
				found = true
			}
			return true
		})
	}
	return found
}
