package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces "guarded by <mutex>" field annotations: a struct
// field whose doc or line comment contains `guarded by mu` (alternatives:
// `guarded by mu or balMu`) may only be accessed while one of the named
// sibling mutexes is held on the same base expression — e.g. `s.vnodes`
// requires `s.mu.Lock()` (or a held RLock for reads) earlier in the
// function, not yet unlocked.
//
// The analysis is intra-procedural and follows this codebase's
// conventions:
//
//   - a method whose name ends in "Locked" asserts its caller holds the
//     receiver's guard mutexes (the convention the repo already uses);
//   - a function marked `//dbdht:exclusive` runs while no other
//     goroutine can reach the data (pre-start recovery, post-stop
//     teardown) and is skipped entirely — the directive documents WHY
//     locks are unnecessary, unlike a bare missing lock;
//   - a variable built from a composite literal in the same function
//     (constructors) is exempt — nothing else can see it yet;
//   - `go func(){...}` bodies start with no locks held; other function
//     literals inherit the locks held where they appear (they run under
//     the caller's locks, e.g. the durAppendWith journaling closures);
//   - a deferred Unlock keeps the mutex held to the end of the function.
//
// Dual-lock reads (fields written under two mutexes and legally read
// under either, like bucket.state) are suppressed per-site with a
// justification: //lint:dbdht lockguard <why>.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated 'guarded by <mutex>' are only accessed with that mutex held",
	Run:  runLockGuard,
}

var guardedByRe = regexp.MustCompile(`guarded by ([a-zA-Z_][a-zA-Z0-9_]*(?:\s+or\s+[a-zA-Z_][a-zA-Z0-9_]*)*)`)

// lockState records how a mutex is held: write (Lock) or read (RLock).
type lockState struct{ write bool }

type lockGuardCtx struct {
	pass *Pass
	// guards maps an annotated field object to the sibling mutex field
	// names that may guard it.
	guards map[*types.Var][]string
	// structMutexes maps a struct's named type to the union of guard
	// mutex names annotated on its fields (for the "Locked" convention).
	structMutexes map[*types.Named][]string
}

func runLockGuard(pass *Pass) error {
	ctx := &lockGuardCtx{
		pass:          pass,
		guards:        make(map[*types.Var][]string),
		structMutexes: make(map[*types.Named][]string),
	}
	ctx.collectAnnotations()
	if len(ctx.guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isExclusive(fd) {
				continue
			}
			held := make(map[string]lockState)
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				// The caller asserts it holds the guards of the receiver —
				// and of any annotated-struct parameter (free helpers like
				// collectDeltaLocked(bk, ...) take the locked value as an
				// argument instead).
				seed := func(fl *ast.Field) {
					for _, name := range fl.Names {
						obj := pass.Info.Defs[name]
						if obj == nil {
							continue
						}
						if named := namedStruct(obj.Type()); named != nil {
							for _, mu := range ctx.structMutexes[named] {
								held[name.Name+"."+mu] = lockState{write: true}
							}
						}
					}
				}
				if fd.Recv != nil {
					for _, fl := range fd.Recv.List {
						seed(fl)
					}
				}
				if fd.Type.Params != nil {
					for _, fl := range fd.Type.Params.List {
						seed(fl)
					}
				}
			}
			w := &lockWalker{ctx: ctx, exempt: make(map[types.Object]bool)}
			w.walkStmts(fd.Body.List, held)
		}
	}
	return nil
}

// exclusiveDirective marks functions that run while the data structure is
// unreachable from other goroutines (recovery before the actor loop
// starts, teardown after it drains): lockguard skips their bodies.
const exclusiveDirective = "//dbdht:exclusive"

func isExclusive(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), exclusiveDirective) {
			return true
		}
	}
	return false
}

// collectAnnotations parses `guarded by ...` field comments, validating
// that every named guard is a sibling field of mutex type.
func (ctx *lockGuardCtx) collectAnnotations() {
	for _, f := range ctx.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := make(map[string]*ast.Field)
			for _, fl := range st.Fields.List {
				for _, name := range fl.Names {
					fieldNames[name.Name] = fl
				}
			}
			var structGuards []string
			for _, fl := range st.Fields.List {
				text := ""
				if fl.Doc != nil {
					text += fl.Doc.Text()
				}
				if fl.Comment != nil {
					text += " " + fl.Comment.Text()
				}
				m := guardedByRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				var guards []string
				for _, g := range regexp.MustCompile(`\s+or\s+`).Split(m[1], -1) {
					gf, ok := fieldNames[g]
					if !ok || !isMutexField(ctx.pass, gf) {
						ctx.pass.Reportf(fl.Pos(), "guarded-by annotation names %q, which is not a sibling sync.Mutex/RWMutex field", g)
						continue
					}
					guards = append(guards, g)
				}
				if len(guards) == 0 {
					continue
				}
				for _, name := range fl.Names {
					if obj, ok := ctx.pass.Info.Defs[name].(*types.Var); ok {
						ctx.guards[obj] = guards
					}
				}
				for _, g := range guards {
					if !contains(structGuards, g) {
						structGuards = append(structGuards, g)
					}
				}
			}
			if len(structGuards) > 0 {
				if obj := ctx.pass.Info.Defs[ts.Name]; obj != nil {
					if named, ok := obj.Type().(*types.Named); ok {
						ctx.structMutexes[named] = structGuards
					}
				}
			}
			return true
		})
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func isMutexField(pass *Pass, fl *ast.Field) bool {
	t := pass.Info.TypeOf(fl.Type)
	return isMutexType(t)
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func namedStruct(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// lockWalker tracks held mutexes through one function body in statement
// order.
type lockWalker struct {
	ctx *lockGuardCtx
	// exempt holds constructor-local objects (assigned from composite
	// literals in this function): accesses through them are unchecked.
	exempt map[types.Object]bool
}

func copyHeld(h map[string]lockState) map[string]lockState {
	c := make(map[string]lockState, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// walkStmts processes stmts in order, mutating held.  Returns true when
// the sequence definitely terminates the enclosing flow (return, branch,
// panic).
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]lockState) bool {
	terminated := false
	for _, s := range stmts {
		if w.walkStmt(s, held) {
			terminated = true
		}
	}
	return terminated
}

// runBranch analyzes a conditional body on a copy of held; when the body
// falls through (does not terminate), its unlocks propagate to the outer
// set — conditional Locks never do.
func (w *lockWalker) runBranch(body []ast.Stmt, held map[string]lockState) {
	inner := copyHeld(held)
	terminated := w.walkStmts(body, inner)
	if terminated {
		return
	}
	for k := range held {
		if _, still := inner[k]; !still {
			delete(held, k)
		}
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt, held map[string]lockState) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.ExprStmt:
		if w.applyLockOp(s.X, held) {
			return false
		}
		if isPanicCall(s.X) {
			w.checkExpr(s.X, false, held)
			return true
		}
		w.checkExpr(s.X, false, held)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.checkExpr(r, false, held)
		}
		if s.Tok == token.DEFINE {
			w.noteConstructors(s)
		}
		for _, l := range s.Lhs {
			if s.Tok == token.DEFINE {
				if id, ok := l.(*ast.Ident); ok {
					_ = id
					continue
				}
			}
			w.checkWriteTarget(l, held)
		}
	case *ast.IncDecStmt:
		w.checkWriteTarget(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, false, held)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held to the end: drop the
		// Unlock instead of applying it.  Deferred closures run at return
		// time, when the locks of this point may be long gone.
		if _, op, ok := w.lockOpOf(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return false
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(fl.Body.List, make(map[string]lockState))
			return false
		}
		for _, a := range s.Call.Args {
			w.checkExpr(a, false, held)
		}
	case *ast.GoStmt:
		// A spawned goroutine holds nothing, whatever the spawner holds.
		// It also ends the constructor exemption: once any goroutine is
		// launched, a "fresh" value may be shared (the newSnode pattern —
		// building a struct, starting its actor loop, then reading its
		// fields unlocked — is exactly the race this catches).
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			for _, a := range s.Call.Args {
				w.checkExpr(a, false, held)
			}
			w.walkStmts(fl.Body.List, make(map[string]lockState))
			clear(w.exempt)
			return false
		}
		w.checkExpr(s.Call, false, held)
		clear(w.exempt)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.checkExpr(r, false, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		w.walkStmt(s.Init, held)
		w.checkExpr(s.Cond, false, held)
		w.runBranch(s.Body.List, held)
		if s.Else != nil {
			w.runBranch([]ast.Stmt{s.Else}, held)
		}
	case *ast.ForStmt:
		w.walkStmt(s.Init, held)
		if s.Cond != nil {
			w.checkExpr(s.Cond, false, held)
		}
		body := s.Body.List
		if s.Post != nil {
			body = append(append([]ast.Stmt(nil), body...), s.Post)
		}
		w.runBranch(body, held)
	case *ast.RangeStmt:
		w.checkExpr(s.X, false, held)
		w.runBranch(s.Body.List, held)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init, held)
		if s.Tag != nil {
			w.checkExpr(s.Tag, false, held)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.checkExpr(e, false, held)
			}
			w.runBranch(cc.Body, held)
		}
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init, held)
		w.walkStmt(s.Assign, held)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			w.runBranch(cc.Body, held)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.walkStmt(cc.Comm, held)
			}
			w.runBranch(cc.Body, held)
		}
	case *ast.SendStmt:
		w.checkExpr(s.Chan, false, held)
		w.checkExpr(s.Value, false, held)
	default:
		// Anything else (empty stmt, etc.): nothing to track.
	}
	return false
}

// noteConstructors records variables defined from composite literals —
// fresh values no other goroutine can reach.
func (w *lockWalker) noteConstructors(s *ast.AssignStmt) {
	for i, l := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		r := ast.Unparen(s.Rhs[i])
		if u, ok := r.(*ast.UnaryExpr); ok && u.Op == token.AND {
			r = ast.Unparen(u.X)
		}
		if _, ok := r.(*ast.CompositeLit); ok {
			if obj := w.ctx.pass.Info.Defs[id]; obj != nil {
				w.exempt[obj] = true
			}
		}
	}
}

// applyLockOp updates held if e is a mutex Lock/Unlock call; reports
// true when it was one.
func (w *lockWalker) applyLockOp(e ast.Expr, held map[string]lockState) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	key, op, ok := w.lockOpOf(call)
	if !ok {
		return false
	}
	switch op {
	case "Lock", "TryLock":
		held[key] = lockState{write: true}
	case "RLock", "TryRLock":
		if _, already := held[key]; !already {
			held[key] = lockState{write: false}
		}
	case "Unlock", "RUnlock":
		delete(held, key)
	}
	return true
}

// lockOpOf recognizes `<base>.<mutexField>.Lock()` shapes and returns the
// held-set key "<base>.<mutexField>" plus the operation name.
func (w *lockWalker) lockOpOf(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	if !isMutexType(w.ctx.pass.Info.TypeOf(sel.X)) {
		return "", "", false
	}
	return types.ExprString(sel.X), op, true
}

// checkWriteTarget checks an assignment target: the outermost annotated
// selector needs the guard held for writing; everything beneath is a read.
func (w *lockWalker) checkWriteTarget(l ast.Expr, held map[string]lockState) {
	switch l := ast.Unparen(l).(type) {
	case *ast.SelectorExpr:
		w.checkSelector(l, true, held)
		w.checkExpr(l.X, false, held)
	case *ast.IndexExpr:
		// m[k] = v writes the map field itself.
		if sel, ok := ast.Unparen(l.X).(*ast.SelectorExpr); ok {
			w.checkSelector(sel, true, held)
			w.checkExpr(sel.X, false, held)
		} else {
			w.checkExpr(l.X, false, held)
		}
		w.checkExpr(l.Index, false, held)
	case *ast.StarExpr:
		w.checkExpr(l.X, false, held)
	case *ast.Ident:
		// Plain locals: nothing guarded.
	default:
		w.checkExpr(l, false, held)
	}
}

// checkExpr walks an expression, checking every annotated-field access
// as a read (write targets go through checkWriteTarget).
func (w *lockWalker) checkExpr(e ast.Expr, write bool, held map[string]lockState) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		w.checkSelector(e, write, held)
		w.checkExpr(e.X, false, held)
	case *ast.FuncLit:
		// Non-go, non-defer literals run where they appear (journaling
		// closures under the caller's locks): inherit the held set.
		w.walkStmts(e.Body.List, copyHeld(held))
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "delete" && len(e.Args) == 2 {
			w.checkWriteTarget(e.Args[0], held)
			w.checkExpr(e.Args[1], false, held)
			return
		}
		w.checkExpr(e.Fun, false, held)
		for _, a := range e.Args {
			w.checkExpr(a, false, held)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			// Taking the address hands out mutable access.
			if sel, ok := ast.Unparen(e.X).(*ast.SelectorExpr); ok {
				w.checkSelector(sel, true, held)
				w.checkExpr(sel.X, false, held)
				return
			}
		}
		w.checkExpr(e.X, write, held)
	case *ast.BinaryExpr:
		w.checkExpr(e.X, false, held)
		w.checkExpr(e.Y, false, held)
	case *ast.IndexExpr:
		w.checkExpr(e.X, write, held)
		w.checkExpr(e.Index, false, held)
	case *ast.SliceExpr:
		w.checkExpr(e.X, write, held)
		w.checkExpr(e.Low, false, held)
		w.checkExpr(e.High, false, held)
		w.checkExpr(e.Max, false, held)
	case *ast.StarExpr:
		w.checkExpr(e.X, write, held)
	case *ast.ParenExpr:
		w.checkExpr(e.X, write, held)
	case *ast.TypeAssertExpr:
		w.checkExpr(e.X, false, held)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.checkExpr(kv.Value, false, held)
				continue
			}
			w.checkExpr(el, false, held)
		}
	case *ast.KeyValueExpr:
		w.checkExpr(e.Value, false, held)
	default:
		// Idents, literals, types: nothing to check.
	}
}

// checkSelector reports an annotated-field access without its guard.
func (w *lockWalker) checkSelector(sel *ast.SelectorExpr, write bool, held map[string]lockState) {
	selection, ok := w.ctx.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	guards, annotated := w.ctx.guards[field]
	if !annotated {
		return
	}
	// Constructor-local bases are unshared.
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if obj := w.ctx.pass.Info.Uses[id]; obj != nil && w.exempt[obj] {
			return
		}
	}
	base := types.ExprString(sel.X)
	for _, g := range guards {
		st, heldNow := held[base+"."+g]
		if heldNow && (st.write || !write) {
			return
		}
	}
	verb := "read"
	if write {
		verb = "written"
	}
	want := make([]string, len(guards))
	for i, g := range guards {
		want[i] = base + "." + g
	}
	w.ctx.pass.Reportf(sel.Sel.Pos(), "%s.%s %s without %s held (field is 'guarded by %s')",
		base, field.Name(), verb, strings.Join(want, " or "), strings.Join(guards, " or "))
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
