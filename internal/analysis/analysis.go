// Package analysis is dbdht's project-invariant analyzer suite: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// driver model (the container this repo builds in has no module proxy, so
// the suite is built on go/ast + go/types alone).  Each Analyzer enforces
// one invariant that otherwise lives only in prose and reviewer vigilance:
//
//   - wiretag:     wire/WAL record tags are unique, registered in
//     tags.lock, and every tagged message has encoder + decoder.
//   - lockguard:   struct fields annotated "guarded by <mutex>" are only
//     accessed with that mutex held.
//   - nogob:       no gob encode/decode is reachable from functions marked
//     //dbdht:dataplane.
//   - atomicfield: a field accessed via sync/atomic anywhere is accessed
//     atomically everywhere.
//   - tracectx:    trace/context parameters are forwarded, never dropped,
//     on RPC paths.
//
// The suite runs standalone and under `go vet -vettool=` via cmd/dbdhtlint.
// Suppressions require an inline justification:
//
//	//lint:dbdht <analyzer> <why this site is exempt>
//
// placed on the offending line or the line above it.  See
// docs/INVARIANTS.md for the catalogue and the suppression policy.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.  The API mirrors
// golang.org/x/tools/go/analysis so the suite can migrate to the upstream
// framework wholesale if the toolchain ever vendors it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's parsed and type-checked state through one
// analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Dir is the directory holding the package's sources.
	Dir string
	// TagsLockPath points wiretag at its registry file.  Empty means
	// "walk up from Dir to the module root and use
	// internal/analysis/tags.lock" (resolved by the driver).
	TagsLockPath string

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless a matching //lint:dbdht
// suppression covers that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppression is one parsed //lint:dbdht comment.
type suppression struct {
	file     string
	line     int // the line the suppression covers (its own line, or the next)
	analyzer string
	reason   string
}

var suppressRe = regexp.MustCompile(`^//lint:dbdht\s+([a-z]+)\s*(.*)$`)

// collectSuppressions scans a file's comments for //lint:dbdht markers.  A
// marker covers diagnostics on its own line (trailing comment) and on the
// line immediately below (a comment on its own line above the code).
func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := suppressRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, suppression{file: pos.Filename, line: pos.Line, analyzer: m[1], reason: strings.TrimSpace(m[2])})
			}
		}
	}
	return out
}

// RunAnalyzers executes the given analyzers over one loaded package and
// returns surviving diagnostics (suppressed findings are dropped; a
// suppression with no justification is itself a finding).
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sups := collectSuppressions(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	for _, s := range sups {
		if s.reason == "" {
			diags = append(diags, Diagnostic{
				Pos:      token.Position{Filename: s.file, Line: s.line},
				Analyzer: "suppress",
				Message:  "suppression without justification: write //lint:dbdht <analyzer> <reason>",
			})
		}
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:     a,
			Fset:         pkg.Fset,
			Files:        pkg.Files,
			Pkg:          pkg.Types,
			Info:         pkg.Info,
			Dir:          pkg.Dir,
			TagsLockPath: pkg.TagsLockPath,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
		}
	diagLoop:
		for _, d := range pass.diagnostics {
			for _, s := range sups {
				if s.reason != "" && s.analyzer == a.Name && s.file == d.Pos.Filename &&
					(s.line == d.Pos.Line || s.line == d.Pos.Line-1) {
					continue diagLoop
				}
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{WireTag, LockGuard, NoGob, AtomicField, TraceCtx}
}
