package global

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newDHT(t *testing.T, pmin int, seed int64) *DHT {
	t.Helper()
	d, err := New(pmin, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func grow(t *testing.T, d *DHT, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := d.AddVnode(); err != nil {
			t.Fatalf("AddVnode #%d: %v", i, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(12, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("non-power-of-two Pmin must fail")
	}
	d := newDHT(t, 32, 1)
	if d.Pmin() != 32 || d.Pmax() != 64 {
		t.Fatalf("Pmin/Pmax = %d/%d", d.Pmin(), d.Pmax())
	}
}

func TestGrowthInvariants(t *testing.T) {
	d := newDHT(t, 8, 2)
	for i := 0; i < 150; i++ {
		grow(t, d, 1)
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("after vnode %d: %v", i, err)
		}
	}
	if d.Vnodes() != 150 {
		t.Fatalf("V = %d", d.Vnodes())
	}
	p := d.Partitions()
	if p&(p-1) != 0 {
		t.Fatalf("G2 violated: P=%d", p)
	}
}

// Invariant G5 and the sawtooth of the global approach: σ̄ = 0 exactly at
// every power-of-two V, positive in between.
func TestSawtoothQuality(t *testing.T) {
	d := newDHT(t, 16, 3)
	for v := 1; v <= 128; v++ {
		grow(t, d, 1)
		q := d.QualityOfBalancement()
		if v&(v-1) == 0 {
			if q > 1e-12 {
				t.Fatalf("V=%d: σ̄=%v, want 0", v, q)
			}
			if c, _ := d.PartitionCount(d.VnodeIDs()[0]); c != 16 {
				t.Fatalf("V=%d: first vnode has %d partitions, want Pmin", v, c)
			}
		} else if v > 1 && q == 0 {
			t.Fatalf("V=%d: σ̄=0 unexpected off powers of two", v)
		}
	}
}

func TestQuotasSumToOne(t *testing.T) {
	d := newDHT(t, 8, 5)
	grow(t, d, 77)
	sum := 0.0
	for _, q := range d.Quotas() {
		sum += q
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("quotas sum to %v", sum)
	}
}

func TestGPDRMatchesCounts(t *testing.T) {
	d := newDHT(t, 8, 7)
	grow(t, d, 20)
	gpdr := d.GPDR()
	if len(gpdr) != 20 {
		t.Fatalf("GPDR has %d entries", len(gpdr))
	}
	total := 0
	for v, c := range gpdr {
		got, ok := d.PartitionCount(v)
		if !ok || got != c {
			t.Fatalf("GPDR[%d]=%d but PartitionCount=%d,%v", v, c, got, ok)
		}
		if len(d.PartitionsOf(v)) != c {
			t.Fatalf("materialized partitions of %d ≠ GPDR", v)
		}
		total += c
	}
	if total != d.Partitions() {
		t.Fatalf("GPDR total %d ≠ P %d", total, d.Partitions())
	}
}

func TestLookupResolvesEverywhere(t *testing.T) {
	d := newDHT(t, 8, 11)
	grow(t, d, 33)
	f := func(i uint64) bool {
		_, ok := d.Lookup(i)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.LookupKey([]byte("k")); !ok {
		t.Fatal("LookupKey must resolve")
	}
}

func TestRemoveVnodeGlobal(t *testing.T) {
	d := newDHT(t, 8, 13)
	grow(t, d, 40)
	rng := rand.New(rand.NewSource(1))
	for d.Vnodes() > 1 {
		ids := d.VnodeIDs()
		if err := d.RemoveVnode(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("V=%d: %v", d.Vnodes(), err)
		}
	}
	if err := d.RemoveVnode(d.VnodeIDs()[0]); err == nil {
		t.Fatal("removing last vnode must fail")
	}
}

func TestLevelGrowsLogarithmically(t *testing.T) {
	d := newDHT(t, 8, 17)
	grow(t, d, 64)
	// P = Pmin * 64 = 512 ⇒ level = 9.
	if d.Level() != 9 {
		t.Fatalf("level = %d, want 9", d.Level())
	}
	if d.Partitions() != 512 {
		t.Fatalf("P = %d, want 512", d.Partitions())
	}
}

func TestStatsExposed(t *testing.T) {
	d := newDHT(t, 8, 19)
	grow(t, d, 10)
	st := d.Stats()
	if st.Handovers == 0 || st.Splits == 0 {
		t.Fatalf("stats: %+v", st)
	}
}
