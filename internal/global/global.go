package global

import (
	"fmt"
	"math/rand"

	"dbdht/internal/hashspace"
	"dbdht/internal/metrics"
	"dbdht/internal/scope"
)

// VnodeID identifies a vnode of the DHT.
type VnodeID = scope.VnodeID

// DHT is a global-approach DHT.  It is not safe for concurrent use — which
// is faithful to the model: the global approach executes vnode creations
// serially across the whole DHT (§3, first paragraph).
type DHT struct {
	sc     *scope.Scope
	nextID VnodeID
}

// New returns an empty global-approach DHT.  Pmin must be a power of two;
// rng drives victim-partition selection and must not be nil.
func New(pmin int, rng *rand.Rand) (*DHT, error) {
	sc, err := scope.New(pmin, rng, nil)
	if err != nil {
		return nil, err
	}
	return &DHT{sc: sc}, nil
}

// Pmin returns the fine-grain balancement parameter Pmin.
func (d *DHT) Pmin() int { return d.sc.Pmin() }

// Pmax returns 2·Pmin (invariant G4).
func (d *DHT) Pmax() int { return d.sc.Pmax() }

// Vnodes returns the number of vnodes V.
func (d *DHT) Vnodes() int { return d.sc.Len() }

// Partitions returns the overall number of partitions P (invariant G2 keeps
// it a power of two).
func (d *DHT) Partitions() int { return d.sc.TotalPartitions() }

// Level returns the common splitlevel l of all partitions (invariant G3).
func (d *DHT) Level() uint8 { return d.sc.Level() }

// Stats returns cumulative structural-work counters (handovers, splits,
// merges).
func (d *DHT) Stats() scope.Stats { return d.sc.Stats() }

// AddVnode creates a new vnode, running the §2.5 creation algorithm across
// the whole DHT, and returns its id.
func (d *DHT) AddVnode() (VnodeID, error) {
	id := d.nextID
	if err := d.sc.AddVnode(id); err != nil {
		return 0, err
	}
	d.nextID++
	return id, nil
}

// RemoveVnode dissolves a vnode, reassigning and, if necessary, coalescing
// partitions (dynamic leave — feature (c) of the base model, §1).
func (d *DHT) RemoveVnode(v VnodeID) error {
	if d.sc.Len() == 1 {
		return fmt.Errorf("global: cannot remove the last vnode of the DHT")
	}
	return d.sc.RemoveVnode(v)
}

// VnodeIDs returns the live vnode ids in ascending order.
func (d *DHT) VnodeIDs() []VnodeID { return d.sc.Vnodes() }

// PartitionCount returns P_v for vnode v.
func (d *DHT) PartitionCount(v VnodeID) (int, bool) { return d.sc.PartitionCount(v) }

// PartitionsOf returns the partitions currently bound to vnode v.
func (d *DHT) PartitionsOf(v VnodeID) []hashspace.Partition { return d.sc.Partitions(v) }

// GPDR returns a copy of the Global Partition Distribution Record: the
// number of partitions per vnode (§2.1.4).
func (d *DHT) GPDR() map[VnodeID]int { return d.sc.Counts() }

// Lookup returns the vnode responsible for hash index i.
func (d *DHT) Lookup(i hashspace.Index) (VnodeID, bool) { return d.sc.Lookup(i) }

// LookupKey hashes an arbitrary key and returns the responsible vnode.
func (d *DHT) LookupKey(key []byte) (VnodeID, bool) { return d.sc.Lookup(hashspace.Hash(key)) }

// Quotas returns Q_v for every vnode in ascending vnode order (§2.3).
func (d *DHT) Quotas() []float64 { return d.sc.Quotas() }

// QualityOfBalancement returns σ̄(Q_v, Q̄_v), the paper's quality metric,
// as a fraction (§2.3: multiply by 100 for the figures' percentages).
// In the global approach this equals σ̄(P_v, P̄_v) by the §2.4 argument.
func (d *DHT) QualityOfBalancement() float64 { return metrics.RelStdDev(d.sc.Quotas()) }

// CheckInvariants verifies G1 (full, non-overlapping division of R_h) and
// the scope-level invariants G2–G5.
func (d *DHT) CheckInvariants() error {
	if err := d.sc.CheckInvariants(); err != nil {
		return err
	}
	if d.sc.Len() == 0 {
		return nil
	}
	// G1: the union of all vnodes' partitions tiles R_h exactly.
	all := hashspace.NewSet()
	for _, v := range d.sc.Vnodes() {
		for _, p := range d.sc.Partitions(v) {
			if err := all.Add(p); err != nil {
				return fmt.Errorf("global: G1 violated: %w", err)
			}
		}
	}
	if !all.Covers() {
		return fmt.Errorf("global: G1 violated: partitions do not cover R_h")
	}
	return nil
}
