// Package global implements the *global approach* of Rufino et al. — the
// base model reviewed in §2 of the IPDPS 2004 paper (originally introduced
// in their PDCN'04 companion paper, reference [7]).
//
// The whole DHT is a single balancement scope: every snode conceptually
// hosts a copy of the Global Partition Distribution Record (GPDR) and every
// vnode creation involves the totality of the vnodes, which is precisely the
// serialization bottleneck the local approach (package core) removes.
// Invariants G1–G5 hold at all times and are verifiable via
// CheckInvariants.
package global
