// Package server exposes a running dbdht cluster over HTTP/JSON: the
// key/value data plane (single-key and batched), the admin plane (snode
// and vnode membership, enrollment), and introspection (status snapshot
// and Prometheus metrics).  It is built on net/http's pattern mux only —
// no external dependencies — and is safe for concurrent use, mirroring
// the cluster handle's own concurrency guarantees.
package server
