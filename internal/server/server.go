package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dbdht/internal/cluster"
	"dbdht/internal/cluster/transport"
	"dbdht/internal/metrics"
	"dbdht/internal/wal"
)

// MaxValueBytes bounds a single value (and a whole batch body).
const MaxValueBytes = 8 << 20

// Server serves the HTTP API over one cluster handle.
type Server struct {
	c     *cluster.Cluster
	mux   *http.ServeMux
	start time.Time

	// Per-route request counters and latency histograms, exported at
	// /v1/metrics.
	reqs map[string]*atomic.Int64
	lats map[string]*metrics.Histogram

	// Cached per-snode load reports for the metrics scrape: LoadReport is
	// a cluster-wide RPC fan-out that can block up to RPCTimeout on a
	// wedged snode, which must never stall a Prometheus scrape (the local
	// counters matter most exactly when part of the cluster is sick).
	// Scrapes serve the cache and refresh it in the background.
	loadMu      sync.Mutex
	loads       []cluster.SnodeLoad // guarded by loadMu
	loadRefresh atomic.Bool
}

// New builds a Server around a running cluster.
func New(c *cluster.Cluster) *Server {
	s := &Server{
		c:     c,
		mux:   http.NewServeMux(),
		start: time.Now(),
		reqs:  make(map[string]*atomic.Int64),
		lats:  make(map[string]*metrics.Histogram),
	}
	s.route("PUT /v1/kv/{key...}", s.handlePut)
	s.route("GET /v1/kv/{key...}", s.handleGet)
	s.route("DELETE /v1/kv/{key...}", s.handleDelete)
	s.route("POST /v1/kv:batch", s.handleBatch)
	s.route("POST /v1/snodes", s.handleAddSnode)
	s.route("DELETE /v1/snodes/{id}", s.handleRemoveSnode)
	s.route("PUT /v1/snodes/{id}/enrollment", s.handleEnrollment)
	s.route("PUT /v1/snodes/{id}/capacity", s.handleCapacity)
	s.route("POST /v1/vnodes", s.handleCreateVnode)
	s.route("POST /v1/balance", s.handleBalanceNow)
	s.route("GET /v1/balance", s.handleBalanceStatus)
	s.route("POST /v1/snapshot", s.handleSnapshotNow)
	s.route("GET /v1/status", s.handleStatus)
	s.route("GET /v1/metrics", s.handleMetrics)
	s.route("GET /v1/trace", s.handleTraceList)
	s.route("GET /v1/trace/{id}", s.handleTraceGet)
	s.route("PUT /v1/trace/sampling", s.handleTraceSampling)
	return s
}

// route registers a handler with a request counter and latency histogram.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	ctr := &atomic.Int64{}
	lat := metrics.NewLatencyHistogram()
	s.reqs[pattern] = ctr
	s.lats[pattern] = lat
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		ctr.Add(1)
		start := time.Now()
		h(w, r)
		lat.ObserveSince(start)
	})
}

// Handler returns the API's http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// --- encoding helpers ---

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// clusterErrCode maps a cluster-level error to an HTTP status.
func clusterErrCode(err error) int {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "not in cluster"):
		return http.StatusNotFound
	case strings.Contains(msg, "no snodes"), strings.Contains(msg, "no route"):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, MaxValueBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func pathID(r *http.Request) (transport.NodeID, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return 0, fmt.Errorf("bad snode id %q", r.PathValue("id"))
	}
	return transport.NodeID(id), nil
}

// --- KV plane ---

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, "empty key")
		return
	}
	value, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxValueBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "value exceeds %d bytes", MaxValueBytes)
			return
		}
		writeErr(w, http.StatusBadRequest, "reading value: %v", err)
		return
	}
	if err := s.c.Put(key, value); err != nil {
		writeErr(w, clusterErrCode(err), "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, "empty key")
		return
	}
	value, found, err := s.c.Get(key)
	if err != nil {
		writeErr(w, clusterErrCode(err), "%v", err)
		return
	}
	if !found {
		writeErr(w, http.StatusNotFound, "key %q not found", key)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(value)
}

type deleteResponse struct {
	Found bool `json:"found"`
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.PathValue("key") == "" {
		writeErr(w, http.StatusBadRequest, "empty key")
		return
	}
	found, err := s.c.Delete(r.PathValue("key"))
	if err != nil {
		writeErr(w, clusterErrCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, deleteResponse{Found: found})
}

// BatchRequest is the body of POST /v1/kv:batch.  Op selects the verb
// applied to every item; Value is base64 in JSON ([]byte), used by "put".
type BatchRequest struct {
	Op    string      `json:"op"` // "put" | "get" | "delete"
	Items []BatchItem `json:"items"`
}

// BatchItem is one key (and, for puts, its value) of a batch.
type BatchItem struct {
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"`
}

// BatchResponse answers a batch, results parallel to the request items.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// BatchResult is one key's outcome; Error is empty on success.
type BatchResult struct {
	Key   string `json:"key"`
	Found bool   `json:"found"`
	Value []byte `json:"value,omitempty"`
	Error string `json:"error,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !readJSON(w, r, &req) {
		return
	}
	var (
		results []cluster.BatchResult
		err     error
	)
	switch req.Op {
	case "put":
		items := make([]cluster.KV, len(req.Items))
		for i, it := range req.Items {
			items[i] = cluster.KV{Key: it.Key, Value: it.Value}
		}
		results, err = s.c.MPut(items)
	case "get", "delete":
		keys := make([]string, len(req.Items))
		for i, it := range req.Items {
			keys[i] = it.Key
		}
		if req.Op == "get" {
			results, err = s.c.MGet(keys)
		} else {
			results, err = s.c.MDelete(keys)
		}
	default:
		writeErr(w, http.StatusBadRequest, "unknown batch op %q (want put, get or delete)", req.Op)
		return
	}
	if err != nil {
		writeErr(w, clusterErrCode(err), "%v", err)
		return
	}
	resp := BatchResponse{Results: make([]BatchResult, len(results))}
	for i, res := range results {
		resp.Results[i] = BatchResult{Key: res.Key, Found: res.Found, Value: res.Value, Error: res.Err}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- admin plane ---

type snodeResponse struct {
	ID int `json:"id"`
}

type addSnodeRequest struct {
	Capacity float64 `json:"capacity"` // 0: unit capacity
}

func (s *Server) handleAddSnode(w http.ResponseWriter, r *http.Request) {
	req := addSnodeRequest{}
	if r.ContentLength != 0 {
		if !readJSON(w, r, &req) {
			return
		}
	}
	if req.Capacity < 0 {
		writeErr(w, http.StatusBadRequest, "capacity must be > 0, got %v", req.Capacity)
		return
	}
	if req.Capacity == 0 {
		req.Capacity = 1
	}
	id, err := s.c.AddSnodeWithCapacity(req.Capacity)
	if err != nil {
		writeErr(w, clusterErrCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, snodeResponse{ID: int(id)})
}

type capacityRequest struct {
	Weight float64 `json:"weight"`
}

func (s *Server) handleCapacity(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	var req capacityRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Weight <= 0 {
		writeErr(w, http.StatusBadRequest, "capacity weight must be > 0, got %v", req.Weight)
		return
	}
	if err := s.c.SetCapacity(id, req.Weight); err != nil {
		writeErr(w, clusterErrCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"capacity": req.Weight})
}

// SnodeLoadStatus is one snode's load report in a balance response.
type SnodeLoadStatus struct {
	Snode    int     `json:"snode"`
	Capacity float64 `json:"capacity"`
	Vnodes   int     `json:"vnodes"`
	Keys     int     `json:"keys"`
	Quota    float64 `json:"quota"`
	ReadsPS  float64 `json:"reads_per_s"`
	WritesPS float64 `json:"writes_per_s"`
	BytesPS  float64 `json:"bytes_per_s"`
}

// BalanceResponse answers POST /v1/balance with the round's outcome and
// GET /v1/balance with the balancer's lifetime counters.
type BalanceResponse struct {
	Sigma     float64           `json:"sigma"`
	Threshold float64           `json:"threshold,omitempty"`
	Moves     int               `json:"moves"`
	Rounds    int64             `json:"rounds,omitempty"`
	Loads     []SnodeLoadStatus `json:"loads,omitempty"`
}

func loadStatuses(loads []cluster.SnodeLoad) []SnodeLoadStatus {
	out := make([]SnodeLoadStatus, len(loads))
	for i, l := range loads {
		out[i] = SnodeLoadStatus{
			Snode: int(l.Snode), Capacity: l.Capacity, Vnodes: l.Vnodes,
			Keys: l.Keys, Quota: l.Quota,
			ReadsPS: l.Reads, WritesPS: l.Writes, BytesPS: l.Bytes,
		}
	}
	return out
}

func (s *Server) handleBalanceNow(w http.ResponseWriter, r *http.Request) {
	round, err := s.c.BalanceNow()
	if err != nil {
		writeErr(w, clusterErrCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, BalanceResponse{
		Sigma: round.Sigma, Moves: round.Moves, Loads: loadStatuses(round.Loads),
	})
}

func (s *Server) handleBalanceStatus(w http.ResponseWriter, r *http.Request) {
	st := s.c.BalancerStats()
	loads, err := s.c.LoadReport()
	if err != nil {
		writeErr(w, clusterErrCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, BalanceResponse{
		Sigma:  st.LastSigma,
		Moves:  int(st.Moves),
		Rounds: st.Rounds,
		Loads:  loadStatuses(loads),
	})
}

func (s *Server) handleRemoveSnode(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.c.RemoveSnode(id); err != nil {
		writeErr(w, clusterErrCode(err), "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type enrollmentRequest struct {
	Target int `json:"target"`
}

type enrollmentResponse struct {
	Hosted int `json:"hosted"`
}

func (s *Server) handleEnrollment(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	var req enrollmentRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Target < 0 {
		writeErr(w, http.StatusBadRequest, "enrollment target must be >= 0, got %d", req.Target)
		return
	}
	hosted, err := s.c.SetEnrollment(id, req.Target)
	if err != nil {
		writeErr(w, clusterErrCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, enrollmentResponse{Hosted: hosted})
}

type createVnodeRequest struct {
	Snode int `json:"snode"` // 0: server picks the least-loaded snode
}

type createVnodeResponse struct {
	Vnode string `json:"vnode"`
	Group string `json:"group"`
	Snode int    `json:"snode"`
}

func (s *Server) handleCreateVnode(w http.ResponseWriter, r *http.Request) {
	req := createVnodeRequest{}
	if r.ContentLength != 0 {
		if !readJSON(w, r, &req) {
			return
		}
	}
	at := transport.NodeID(req.Snode)
	if req.Snode == 0 {
		// Pick the snode currently hosting the fewest vnodes.
		hosted := make(map[transport.NodeID]int)
		snap := s.c.Snapshot()
		for _, v := range snap.Vnodes {
			hosted[v.Host]++
		}
		ids := s.c.Snodes()
		if len(ids) == 0 {
			writeErr(w, http.StatusServiceUnavailable, "cluster: no snodes")
			return
		}
		at = ids[0]
		for _, id := range ids[1:] {
			if hosted[id] < hosted[at] {
				at = id
			}
		}
	}
	name, group, err := s.c.CreateVnode(at)
	if err != nil {
		writeErr(w, clusterErrCode(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, createVnodeResponse{
		Vnode: name.String(), Group: group.String(), Snode: int(at),
	})
}

// handleSnapshotNow forces one snapshot + WAL-truncation pass on every
// snode — the operator hook before an upgrade or backup.  With
// durability off it is a successful no-op (nothing to snapshot).
func (s *Server) handleSnapshotNow(w http.ResponseWriter, r *http.Request) {
	if err := s.c.SnapshotNow(); err != nil {
		writeErr(w, clusterErrCode(err), "%v", err)
		return
	}
	st := s.c.WALStats()
	writeJSON(w, http.StatusOK, map[string]int64{"snapshot_files": st.SnapWrites})
}

// --- tracing ---

// TraceSummary is one sampled trace in GET /v1/trace.
type TraceSummary struct {
	TraceID    string  `json:"trace_id"` // hex
	Name       string  `json:"name"`
	Start      string  `json:"start"` // RFC 3339 with nanoseconds
	DurationMS float64 `json:"duration_ms"`
	Outcome    string  `json:"outcome"`
	Spans      int     `json:"spans"`
}

// TraceSpan is one recorded stage in GET /v1/trace/{id}.
type TraceSpan struct {
	SpanID     string  `json:"span_id"`          // hex
	Parent     string  `json:"parent,omitempty"` // hex; absent for the root
	Name       string  `json:"name"`
	Snode      int     `json:"snode"` // -1 is the client handle
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Outcome    string  `json:"outcome"`
}

// TraceResponse answers GET /v1/trace/{id}.
type TraceResponse struct {
	TraceID string      `json:"trace_id"`
	Spans   []TraceSpan `json:"spans"`
}

func traceID(id uint64) string { return strconv.FormatUint(id, 16) }

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	summaries := s.c.Traces()
	out := make([]TraceSummary, 0, len(summaries))
	for _, ts := range summaries {
		out = append(out, TraceSummary{
			TraceID: traceID(ts.TraceID), Name: ts.Name,
			Start:      ts.Start.Format(time.RFC3339Nano),
			DurationMS: float64(ts.Duration) / float64(time.Millisecond),
			Outcome:    ts.Outcome, Spans: ts.Spans,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sampling": s.c.TraceSampling(),
		"traces":   out,
	})
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 16, 64)
	if err != nil || id == 0 {
		writeErr(w, http.StatusBadRequest, "bad trace id %q (want hex)", r.PathValue("id"))
		return
	}
	spans := s.c.Trace(id)
	if len(spans) == 0 {
		writeErr(w, http.StatusNotFound, "trace %s not found (unsampled or evicted)", r.PathValue("id"))
		return
	}
	resp := TraceResponse{TraceID: traceID(id), Spans: make([]TraceSpan, len(spans))}
	for i, sp := range spans {
		out := TraceSpan{
			SpanID: traceID(sp.SpanID), Name: sp.Name, Snode: int(sp.Snode),
			Start:      sp.Start.Format(time.RFC3339Nano),
			DurationMS: float64(sp.Duration) / float64(time.Millisecond),
			Outcome:    sp.Outcome,
		}
		if sp.Parent != 0 {
			out.Parent = traceID(sp.Parent)
		}
		resp.Spans[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

type traceSamplingRequest struct {
	Rate float64 `json:"rate"`
}

func (s *Server) handleTraceSampling(w http.ResponseWriter, r *http.Request) {
	var req traceSamplingRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Rate < 0 || req.Rate > 1 {
		writeErr(w, http.StatusBadRequest, "sampling rate must be in [0, 1], got %v", req.Rate)
		return
	}
	s.c.SetTraceSampling(req.Rate)
	writeJSON(w, http.StatusOK, map[string]float64{"sampling": s.c.TraceSampling()})
}

// --- introspection ---

// SnodeStatus summarizes one live snode.
type SnodeStatus struct {
	ID     int `json:"id"`
	Vnodes int `json:"vnodes"`
	Keys   int `json:"keys"`
}

// VnodeStatus is one vnode's materialized state.
type VnodeStatus struct {
	Name       string `json:"name"`
	Snode      int    `json:"snode"`
	Group      string `json:"group"`
	Level      int    `json:"level"`
	Partitions int    `json:"partitions"`
	Keys       int    `json:"keys"`
}

// DurabilityStatus reports the crash-durability layer's state.
type DurabilityStatus struct {
	Enabled bool   `json:"enabled"`
	Fsync   string `json:"fsync,omitempty"` // off | batch | always
	// WAL counters aggregated over the snodes (live + departed).
	Appends       int64 `json:"wal_appends,omitempty"`
	Bytes         int64 `json:"wal_bytes,omitempty"`
	Fsyncs        int64 `json:"wal_fsyncs,omitempty"`
	SnapshotFiles int64 `json:"snapshot_files,omitempty"`
}

// StatusResponse is the GET /v1/status document: a cluster snapshot plus
// the aggregated runtime counters.
type StatusResponse struct {
	Snodes        []SnodeStatus         `json:"snodes"`
	Vnodes        []VnodeStatus         `json:"vnodes"`
	Groups        int                   `json:"groups"`
	Keys          int                   `json:"keys"`
	Replicas      int                   `json:"replicas"` // configured copies per partition (R)
	SigmaQv       float64               `json:"sigma_qv"` // σ̄(Q_v), fraction
	Durability    DurabilityStatus      `json:"durability"`
	Stats         cluster.StatsSnapshot `json:"stats"`
	UptimeSeconds float64               `json:"uptime_seconds"`
}

func (s *Server) buildStatus() StatusResponse {
	st, _ := s.buildStatusAndWAL()
	return st
}

// buildStatusAndWAL also returns the aggregated WAL counters it sampled
// (all zeros with durability off), so the metrics scrape reuses one
// snode sweep for both the status block and the dbdht_wal_* families.
func (s *Server) buildStatusAndWAL() (StatusResponse, wal.StatsSnapshot) {
	snap := s.c.Snapshot()
	perSnode := make(map[transport.NodeID]*SnodeStatus)
	for _, id := range s.c.Snodes() {
		perSnode[id] = &SnodeStatus{ID: int(id)}
	}
	groups := make(map[string]bool)
	resp := StatusResponse{
		Snodes:        []SnodeStatus{},
		Vnodes:        make([]VnodeStatus, 0, len(snap.Vnodes)),
		Replicas:      s.c.ReplicationFactor(),
		Stats:         s.c.StatsTotal(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	var wst wal.StatsSnapshot
	if on, mode := s.c.DurabilityEnabled(); on {
		wst = s.c.WALStats()
		resp.Durability = DurabilityStatus{
			Enabled: true, Fsync: mode.String(),
			Appends: wst.Appends, Bytes: wst.Bytes, Fsyncs: wst.Fsyncs,
			SnapshotFiles: wst.SnapWrites,
		}
	}
	for _, v := range snap.Vnodes {
		groups[v.Group.String()] = true
		resp.Keys += v.Keys
		if ss, ok := perSnode[v.Host]; ok {
			ss.Vnodes++
			ss.Keys += v.Keys
		}
		resp.Vnodes = append(resp.Vnodes, VnodeStatus{
			Name: v.Name.String(), Snode: int(v.Host), Group: v.Group.String(),
			Level: int(v.Level), Partitions: len(v.Partitions), Keys: v.Keys,
		})
	}
	for _, id := range s.c.Snodes() {
		if ss, ok := perSnode[id]; ok {
			resp.Snodes = append(resp.Snodes, *ss)
		}
	}
	resp.Groups = len(groups)
	resp.SigmaQv = metrics.RelStdDev(snap.VnodeQuotas())
	return resp, wst
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.buildStatus())
}

// cachedLoads serves the last collected load reports and kicks off one
// background refresh (deduplicated), so a scrape never blocks on the
// cluster-wide RPC fan-out.  The gauges lag by at most one scrape.
func (s *Server) cachedLoads() []cluster.SnodeLoad {
	if s.loadRefresh.CompareAndSwap(false, true) {
		go func() {
			defer s.loadRefresh.Store(false)
			loads, err := s.c.LoadReport()
			if err != nil {
				return
			}
			s.loadMu.Lock()
			s.loads = loads
			s.loadMu.Unlock()
		}()
	}
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	return s.loads
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st, wst := s.buildStatusAndWAL()
	counter := func(name, help string, v int64) metrics.Family {
		return metrics.Family{
			Name: name, Help: help, Type: metrics.TypeCounter,
			Samples: []metrics.Sample{{Value: float64(v)}},
		}
	}
	gauge := func(name, help string, v float64) metrics.Family {
		return metrics.Family{
			Name: name, Help: help, Type: metrics.TypeGauge,
			Samples: []metrics.Sample{{Value: v}},
		}
	}
	keysPerSnode := metrics.Family{
		Name: "dbdht_snode_keys", Help: "keys stored per snode", Type: metrics.TypeGauge,
	}
	vnodesPerSnode := metrics.Family{
		Name: "dbdht_snode_vnodes", Help: "vnodes hosted per snode", Type: metrics.TypeGauge,
	}
	for _, ss := range st.Snodes {
		labels := []metrics.Label{{Name: "snode", Value: strconv.Itoa(ss.ID)}}
		keysPerSnode.Samples = append(keysPerSnode.Samples,
			metrics.Sample{Labels: labels, Value: float64(ss.Keys)})
		vnodesPerSnode.Samples = append(vnodesPerSnode.Samples,
			metrics.Sample{Labels: labels, Value: float64(ss.Vnodes)})
	}
	capPerSnode := metrics.Family{
		Name: "dbdht_snode_capacity", Help: "capacity weight per snode", Type: metrics.TypeGauge,
	}
	quotaPerSnode := metrics.Family{
		Name: "dbdht_balance_snode_quota", Help: "fraction of the hash space owned per snode", Type: metrics.TypeGauge,
	}
	readsPerSnode := metrics.Family{
		Name: "dbdht_balance_snode_reads_per_s", Help: "decayed read rate per snode (EWMA)", Type: metrics.TypeGauge,
	}
	writesPerSnode := metrics.Family{
		Name: "dbdht_balance_snode_writes_per_s", Help: "decayed write rate per snode (EWMA)", Type: metrics.TypeGauge,
	}
	for _, l := range s.cachedLoads() {
		labels := []metrics.Label{{Name: "snode", Value: strconv.Itoa(int(l.Snode))}}
		capPerSnode.Samples = append(capPerSnode.Samples, metrics.Sample{Labels: labels, Value: l.Capacity})
		quotaPerSnode.Samples = append(quotaPerSnode.Samples, metrics.Sample{Labels: labels, Value: l.Quota})
		readsPerSnode.Samples = append(readsPerSnode.Samples, metrics.Sample{Labels: labels, Value: l.Reads})
		writesPerSnode.Samples = append(writesPerSnode.Samples, metrics.Sample{Labels: labels, Value: l.Writes})
	}
	bal := s.c.BalancerStats()
	httpReqs := metrics.Family{
		Name: "dbdht_http_requests_total", Help: "API requests served per route", Type: metrics.TypeCounter,
	}
	for route, ctr := range s.reqs {
		httpReqs.Samples = append(httpReqs.Samples, metrics.Sample{
			Labels: []metrics.Label{{Name: "route", Value: route}},
			Value:  float64(ctr.Load()),
		})
	}
	families := []metrics.Family{
		gauge("dbdht_snodes", "live snodes", float64(len(st.Snodes))),
		gauge("dbdht_vnodes", "enrolled vnodes", float64(len(st.Vnodes))),
		gauge("dbdht_groups", "balancement groups", float64(st.Groups)),
		gauge("dbdht_keys", "stored keys", float64(st.Keys)),
		gauge("dbdht_replication_factor", "configured copies per partition (R)", float64(st.Replicas)),
		gauge("dbdht_balance_sigma_qv", "relative stddev of vnode quotas (fraction)", st.SigmaQv),
		gauge("dbdht_balance_sigma_snode", "relative stddev of capacity-normalized per-snode quotas at the last balancer round", bal.LastSigma),
		counter("dbdht_balance_rounds_total", "autonomous balancer rounds run", bal.Rounds),
		counter("dbdht_balance_moves_total", "enrollment adjustments made by the balancer", bal.Moves),
		gauge("dbdht_uptime_seconds", "server uptime", st.UptimeSeconds),
		keysPerSnode,
		vnodesPerSnode,
		capPerSnode,
		quotaPerSnode,
		readsPerSnode,
		writesPerSnode,
		counter("dbdht_msgs_total", "protocol messages received", st.Stats.MsgsIn),
		counter("dbdht_forwards_total", "custody-chain forwards", st.Stats.Forwards),
		counter("dbdht_partitions_sent_total", "partitions migrated", st.Stats.PartitionsSent),
		counter("dbdht_keys_moved_total", "keys migrated with partitions", st.Stats.KeysMoved),
		counter("dbdht_split_alls_total", "scope-wide splits", st.Stats.SplitAlls),
		counter("dbdht_group_splits_total", "group splits", st.Stats.GroupSplits),
		counter("dbdht_joins_led_total", "vnode joins led", st.Stats.JoinsLed),
		counter("dbdht_leaves_led_total", "vnode leaves led", st.Stats.LeavesLed),
		counter("dbdht_data_ops_total", "data operations applied", st.Stats.DataOps),
		counter("dbdht_requeues_total", "operations requeued on frozen partitions", st.Stats.Requeues),
		counter("dbdht_batches_total", "batch requests handled", st.Stats.Batches),
		counter("dbdht_migration_chunks_total", "live-migration chunks streamed", st.Stats.ChunksSent),
		counter("dbdht_migration_aborts_total", "live migrations aborted", st.Stats.MigAborts),
		counter("dbdht_freeze_timeouts_total", "writes failed on a frozen partition that never settled", st.Stats.FreezeTimeouts),
		counter("dbdht_repl_writes_total", "writes applied to replica buckets", st.Stats.ReplWrites),
		counter("dbdht_repl_repairs_total", "replica buckets repaired by anti-entropy", st.Stats.ReplRepairs),
		counter("dbdht_repl_lagged_total", "failed replica exchanges (replication lag)", st.Stats.ReplLagged),
		counter("dbdht_failover_reads_total", "reads served from replica buckets", st.Stats.FailoverReads),
		counter("dbdht_failover_elections_total", "failover elections coordinated after primary crashes", st.Stats.Elections),
		counter("dbdht_promotions_total", "replica buckets promoted to primary by failover", st.Stats.Promotions),
		counter("dbdht_failover_detected_total", "snodes declared crashed by the liveness detector", st.Stats.FailoverDetects),
		httpReqs,
	}
	lat := s.c.Latencies()
	families = append(families,
		metrics.HistogramFamily("dbdht_batch_rpc_seconds",
			"client-side batch RPC round trip", lat.BatchRPC),
		metrics.HistogramFamily("dbdht_replica_ack_wait_seconds",
			"primary's wait for replica write acks", lat.ReplicaAckWait),
		metrics.HistogramFamily("dbdht_wal_durable_wait_seconds",
			"wait for the WAL group commit covering a write", lat.WALDurableWait),
		metrics.HistogramFamily("dbdht_migration_chunk_seconds",
			"one live-migration chunk transfer", lat.MigrationChunk),
		metrics.HistogramFamily("dbdht_anti_entropy_pass_seconds",
			"one anti-entropy repair pass", lat.AntiEntropyPass),
	)
	httpLat := metrics.Family{
		Name: "dbdht_http_request_seconds", Help: "API request latency per route",
		Type: metrics.TypeHistogram,
	}
	for route, h := range s.lats {
		f := metrics.HistogramFamily(httpLat.Name, httpLat.Help, h.Snapshot(),
			metrics.Label{Name: "route", Value: route})
		httpLat.Samples = append(httpLat.Samples, f.Samples...)
	}
	families = append(families, httpLat)
	walEnabled := 0.0
	if st.Durability.Enabled {
		walEnabled = 1
	}
	families = append(families,
		gauge("dbdht_wal_enabled", "1 when crash-durable storage (WAL + snapshots) is on", walEnabled),
		counter("dbdht_wal_appends_total", "records appended to snode WALs", wst.Appends),
		counter("dbdht_wal_bytes_total", "payload bytes appended to snode WALs", wst.Bytes),
		counter("dbdht_wal_fsyncs_total", "fsync calls issued by snode WALs", wst.Fsyncs),
		counter("dbdht_wal_flushes_total", "WAL flush rounds (group commits)", wst.Flushes),
		counter("dbdht_wal_segment_rotations_total", "WAL segment files rotated", wst.Rotations),
		counter("dbdht_wal_segments_truncated_total", "WAL segments deleted behind snapshots", wst.Truncated),
		counter("dbdht_wal_torn_bytes_total", "bytes cut from torn WAL tails at recovery", wst.TornBytes),
		counter("dbdht_wal_records_replayed_total", "records replayed during recovery", wst.Replayed),
		counter("dbdht_wal_snapshot_files_total", "snapshot files written", wst.SnapWrites),
	)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = metrics.WritePrometheus(w, families)
}
