package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dbdht/client"
	"dbdht/internal/cluster"
	"dbdht/internal/cluster/transport"
	"dbdht/internal/server"
)

// ctx is the background context the client calls run under; per-request
// deadlines come from the client's own timeout.
var ctx = context.Background()

// boot starts an in-memory cluster with the given shape and serves its API
// from an httptest server.
func boot(t *testing.T, snodes, vnodes int) (*cluster.Cluster, *httptest.Server) {
	t.Helper()
	c, err := cluster.New(cluster.Config{Pmin: 32, Vmin: 8, Seed: 1}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < snodes; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < vnodes; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(server.New(c).Handler())
	t.Cleanup(ts.Close)
	return c, ts
}

// TestEndToEndRoundTrip is the acceptance path: PUT → GET → batch GET →
// DELETE over HTTP, then a Prometheus scrape.
func TestEndToEndRoundTrip(t *testing.T) {
	_, ts := boot(t, 4, 16)
	cl := client.New(ts.URL)

	if err := cl.Put(ctx, "alpha", []byte("one")); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := cl.Put(ctx, "beta", []byte("two")); err != nil {
		t.Fatalf("put: %v", err)
	}
	v, found, err := cl.Get(ctx, "alpha")
	if err != nil || !found || string(v) != "one" {
		t.Fatalf("get alpha = %q, %v, %v; want \"one\", true, nil", v, found, err)
	}

	results, err := cl.MGet(ctx, []string{"alpha", "beta", "missing"})
	if err != nil {
		t.Fatalf("batch get: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("batch get returned %d results, want 3", len(results))
	}
	if !results[0].OK() || !results[0].Found || string(results[0].Value) != "one" {
		t.Fatalf("batch get alpha = %+v", results[0])
	}
	if !results[1].OK() || !results[1].Found || string(results[1].Value) != "two" {
		t.Fatalf("batch get beta = %+v", results[1])
	}
	if !results[2].OK() || results[2].Found {
		t.Fatalf("batch get missing = %+v", results[2])
	}

	found, err = cl.Delete(ctx, "alpha")
	if err != nil || !found {
		t.Fatalf("delete alpha = %v, %v; want true, nil", found, err)
	}
	if _, found, _ = cl.Get(ctx, "alpha"); found {
		t.Fatal("alpha still present after delete")
	}

	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, want := range []string{
		"# TYPE dbdht_keys gauge",
		"# TYPE dbdht_msgs_total counter",
		"# TYPE dbdht_batches_total counter",
		"# TYPE dbdht_snode_keys gauge",
		"dbdht_snodes 4",
		"dbdht_vnodes 16",
		"dbdht_http_requests_total{route=\"PUT /v1/kv/{key...}\"}",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestBatchPutDeleteOverHTTP(t *testing.T) {
	_, ts := boot(t, 2, 8)
	cl := client.New(ts.URL)

	items := make([]client.Item, 32)
	keys := make([]string, 32)
	for i := range items {
		keys[i] = fmt.Sprintf("key-%03d", i)
		items[i] = client.Item{Key: keys[i], Value: []byte(fmt.Sprintf("val-%03d", i))}
	}
	results, err := cl.MPut(ctx, items)
	if err != nil {
		t.Fatalf("batch put: %v", err)
	}
	for _, r := range results {
		if !r.OK() {
			t.Fatalf("batch put %q failed: %s", r.Key, r.Error)
		}
	}
	results, err = cl.MGet(ctx, keys)
	if err != nil {
		t.Fatalf("batch get: %v", err)
	}
	for i, r := range results {
		if !r.Found || string(r.Value) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("batch get %q = %+v", keys[i], r)
		}
	}
	results, err = cl.MDelete(ctx, keys)
	if err != nil {
		t.Fatalf("batch delete: %v", err)
	}
	for _, r := range results {
		if !r.OK() || !r.Found {
			t.Fatalf("batch delete %q = %+v", r.Key, r)
		}
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Keys != 0 {
		t.Fatalf("status reports %d keys after deleting all, want 0", st.Keys)
	}
	if st.Stats.Batches == 0 {
		t.Fatal("status reports zero batches after batch traffic")
	}
}

func TestAdminPlane(t *testing.T) {
	c, ts := boot(t, 2, 4)
	cl := client.New(ts.URL)

	id, err := cl.AddSnode(ctx)
	if err != nil {
		t.Fatalf("add snode: %v", err)
	}
	if got := len(c.Snodes()); got != 3 {
		t.Fatalf("cluster has %d snodes after add, want 3", got)
	}
	vnode, group, err := cl.CreateVnode(ctx, id)
	if err != nil {
		t.Fatalf("create vnode: %v", err)
	}
	if vnode == "" || group == "" {
		t.Fatalf("create vnode returned %q/%q", vnode, group)
	}
	// Server-side placement (snode 0 = pick least loaded).
	if _, _, err := cl.CreateVnode(ctx, 0); err != nil {
		t.Fatalf("create vnode (auto): %v", err)
	}
	hosted, err := cl.SetEnrollment(ctx, id, 4)
	if err != nil || hosted != 4 {
		t.Fatalf("set enrollment = %d, %v; want 4, nil", hosted, err)
	}
	if err := cl.RemoveSnode(ctx, id); err != nil {
		t.Fatalf("remove snode: %v", err)
	}
	if got := len(c.Snodes()); got != 2 {
		t.Fatalf("cluster has %d snodes after remove, want 2", got)
	}
	st, err := cl.Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if len(st.Snodes) != 2 {
		t.Fatalf("status reports %d snodes, want 2", len(st.Snodes))
	}
}

func TestHTTPErrors(t *testing.T) {
	_, ts := boot(t, 1, 2)

	get := func(method, path, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := get("GET", "/v1/kv/nope", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET missing key: %d, want 404", resp.StatusCode)
	}
	// The empty key is rejected uniformly across all three verbs.
	for _, method := range []string{"PUT", "GET", "DELETE"} {
		if resp := get(method, "/v1/kv/", "x"); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s empty key: %d, want 400", method, resp.StatusCode)
		}
	}
	if resp := get("DELETE", "/v1/snodes/99", ""); resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown snode: %d, want 404", resp.StatusCode)
	}
	if resp := get("DELETE", "/v1/snodes/zzz", ""); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("DELETE malformed snode id: %d, want 400", resp.StatusCode)
	}
	if resp := get("POST", "/v1/kv:batch", `{"op":"frobnicate","items":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("batch with unknown op: %d, want 400", resp.StatusCode)
	}
	if resp := get("POST", "/v1/kv:batch", `{"op":`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("batch with malformed JSON: %d, want 400", resp.StatusCode)
	}
	if resp := get("PUT", "/v1/snodes/1/enrollment", `{"target":-3}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative enrollment: %d, want 400", resp.StatusCode)
	}
	big := bytes.Repeat([]byte("x"), server.MaxValueBytes+1)
	if resp := get("PUT", "/v1/kv/huge", string(big)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized value: %d, want 413", resp.StatusCode)
	}
}

// TestKeysWithSlashes exercises the {key...} wildcard: keys may contain
// path separators.
func TestKeysWithSlashes(t *testing.T) {
	_, ts := boot(t, 1, 2)
	cl := client.New(ts.URL)
	key := "users/42/profile"
	if err := cl.Put(ctx, key, []byte("p")); err != nil {
		t.Fatalf("put: %v", err)
	}
	v, found, err := cl.Get(ctx, key)
	if err != nil || !found || string(v) != "p" {
		t.Fatalf("get %q = %q, %v, %v", key, v, found, err)
	}
}

// TestBalancePlane exercises the balancer admin endpoints: capacity
// re-weighting, a manual round, and the status document.
func TestBalancePlane(t *testing.T) {
	c, ts := boot(t, 2, 8)
	do := func(method, path, body string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	// Re-weight snode 2 to 4×; the next round should see sigma above any
	// reasonable threshold (equal enrollment over 1:4 capacities).
	resp, body := do("PUT", "/v1/snodes/2/capacity", `{"weight":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("set capacity: %d %s", resp.StatusCode, body)
	}
	if resp, body := do("PUT", "/v1/snodes/2/capacity", `{"weight":-1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative capacity: %d %s", resp.StatusCode, body)
	}
	if resp, body := do("POST", "/v1/snodes", `{"capacity":-2}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("add snode with negative capacity: %d %s", resp.StatusCode, body)
	}

	resp, body = do("POST", "/v1/balance", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("balance now: %d %s", resp.StatusCode, body)
	}
	var round server.BalanceResponse
	if err := json.Unmarshal(body, &round); err != nil {
		t.Fatalf("balance response %s: %v", body, err)
	}
	if round.Sigma <= 0 || len(round.Loads) != 2 {
		t.Fatalf("balance round = %+v, want positive sigma and 2 load reports", round)
	}
	if round.Moves == 0 {
		t.Fatalf("1:4 capacity skew triggered no enrollment moves: %+v", round)
	}

	resp, body = do("GET", "/v1/balance", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("balance status: %d %s", resp.StatusCode, body)
	}
	var st server.BalanceResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Rounds == 0 {
		t.Fatalf("balance status reports zero rounds after a manual round: %+v", st)
	}
	if bs := c.BalancerStats(); bs.Moves == 0 {
		t.Fatalf("cluster stats show no balancer moves: %+v", bs)
	}

	// The new metrics families appear in the exposition.  The per-snode
	// load gauges come from a cache refreshed in the background (a scrape
	// must never block on the cluster-wide load fan-out), so poll a few
	// scrapes for them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body = do("GET", "/v1/metrics", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics: %d", resp.StatusCode)
		}
		missing := ""
		for _, want := range []string{"dbdht_balance_rounds_total", "dbdht_balance_sigma_snode", "dbdht_snode_capacity", "dbdht_migration_chunks_total", "dbdht_freeze_timeouts_total"} {
			if !strings.Contains(string(body), want) {
				missing = want
				break
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics exposition lacks %s", missing)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDurabilityPlane exercises the durability surfaces: status block,
// the snapshot trigger, and the dbdht_wal_* metrics families.
func TestDurabilityPlane(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Pmin: 32, Vmin: 8, Seed: 1,
		Durability: cluster.DurabilityConfig{Dir: t.TempDir(), SnapshotInterval: -1},
	}, transport.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	id, err := c.AddSnode()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CreateVnode(id); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(c).Handler())
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL)
	if err := cl.Put(ctx, "durable-key", []byte("v")); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st server.StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("status %s: %v", body, err)
	}
	if !st.Durability.Enabled || st.Durability.Fsync != "off" || st.Durability.Appends == 0 {
		t.Fatalf("durability status = %+v, want enabled with appends", st.Durability)
	}

	resp, err = http.Post(ts.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %d %s", resp.StatusCode, body)
	}
	var snap map[string]int64
	if err := json.Unmarshal(body, &snap); err != nil || snap["snapshot_files"] == 0 {
		t.Fatalf("snapshot response %s (err %v), want counted files", body, err)
	}

	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"dbdht_wal_enabled 1", "dbdht_wal_appends_total", "dbdht_wal_snapshot_files_total"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics exposition lacks %q", want)
		}
	}
}
