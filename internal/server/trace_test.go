package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dbdht/client"
	"dbdht/internal/cluster"
	"dbdht/internal/cluster/transport"
	"dbdht/internal/server"
	"dbdht/internal/wal"
)

// TestTraceEndpoints is the observability acceptance path: a traced MPut
// against a 3-snode R=2 TCP cluster with a group-commit WAL must come
// back from GET /v1/trace/{id} with spans covering routing/fan-out, the
// replica-ack wait and the WAL durability wait, recorded on at least two
// snodes — and the scrape must expose the latency histogram families.
func TestTraceEndpoints(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Pmin: 32, Vmin: 8, Seed: 3, RPCTimeout: 20 * time.Second,
		Replicas: 2, AntiEntropyInterval: time.Hour,
		TraceSample: 1,
		Durability:  cluster.DurabilityConfig{Dir: t.TempDir(), Fsync: wal.FsyncBatch},
	}, transport.NewTCP("127.0.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for i := 0; i < 3; i++ {
		if _, err := c.AddSnode(); err != nil {
			t.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < 9; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(server.New(c).Handler())
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL)

	items := make([]client.Item, 64)
	for i := range items {
		items[i] = client.Item{
			Key:   fmt.Sprintf("trace-key-%04d", i),
			Value: []byte(fmt.Sprintf("trace-val-%04d", i)),
		}
	}
	results, err := cl.MPut(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.OK() {
			t.Fatalf("MPut %q: %s", r.Key, r.Error)
		}
	}

	// List: the MPut must show up as a sampled trace.
	var list struct {
		Sampling float64               `json:"sampling"`
		Traces   []server.TraceSummary `json:"traces"`
	}
	getJSON(t, ts.URL+"/v1/trace", &list)
	if list.Sampling != 1 {
		t.Fatalf("sampling = %v, want 1", list.Sampling)
	}
	var id string
	for _, tr := range list.Traces {
		if tr.Name == "op.mput" {
			id = tr.TraceID
			break
		}
	}
	if id == "" {
		t.Fatalf("no op.mput trace in %+v", list.Traces)
	}

	// By id: the span breakdown must cross snodes and cover the write path.
	var trace server.TraceResponse
	getJSON(t, ts.URL+"/v1/trace/"+id, &trace)
	names := map[string]int{}
	snodes := map[int]bool{}
	for _, sp := range trace.Spans {
		names[sp.Name]++
		if sp.Snode >= 0 {
			snodes[sp.Snode] = true
		}
	}
	for _, want := range []string{
		"op.mput", "batch.rpc", "batch.serve",
		"batch.repl-ack", "repl.fanout", "repl.write", "batch.wal-wait",
	} {
		if names[want] == 0 {
			t.Errorf("trace %s missing %q spans (got %v)", id, want, names)
		}
	}
	if len(snodes) < 2 {
		t.Fatalf("trace spans on %d snode(s), want >= 2", len(snodes))
	}

	// Unknown and malformed ids fail loudly.
	if code := statusOf(t, ts.URL+"/v1/trace/fffffffffffffffe"); code != http.StatusNotFound {
		t.Fatalf("unknown trace id -> %d, want 404", code)
	}
	if code := statusOf(t, ts.URL+"/v1/trace/zzz"); code != http.StatusBadRequest {
		t.Fatalf("malformed trace id -> %d, want 400", code)
	}

	// The scrape exposes the new histogram families.
	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE dbdht_batch_rpc_seconds histogram",
		"# TYPE dbdht_replica_ack_wait_seconds histogram",
		"# TYPE dbdht_wal_durable_wait_seconds histogram",
		"# TYPE dbdht_migration_chunk_seconds histogram",
		"# TYPE dbdht_anti_entropy_pass_seconds histogram",
		"# TYPE dbdht_http_request_seconds histogram",
		"dbdht_batch_rpc_seconds_bucket{le=\"+Inf\"}",
		"dbdht_batch_rpc_seconds_count",
		"dbdht_wal_durable_wait_seconds_sum",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	// Sampling is adjustable live.
	body := strings.NewReader(`{"rate": 0.25}`)
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/trace/sampling", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /v1/trace/sampling -> %d", resp.StatusCode)
	}
	if got := c.TraceSampling(); got != 0.25 {
		t.Fatalf("TraceSampling() = %v after PUT, want 0.25", got)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s -> %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func statusOf(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
