package sim

import "testing"

func TestAccessSkewZipfWorseThanUniform(t *testing.T) {
	uniform, zipf, err := AccessSkew(16, 8, 64, 5000, 20000, 1.3, Options{Runs: 3, Vnodes: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if zipf.SigmaAccess <= uniform.SigmaAccess {
		t.Fatalf("zipf access σ̄ (%v) must exceed uniform (%v)", zipf.SigmaAccess, uniform.SigmaAccess)
	}
	if zipf.HottestShare <= uniform.HottestShare {
		t.Fatalf("zipf hottest share (%v) must exceed uniform (%v)", zipf.HottestShare, uniform.HottestShare)
	}
	// Quota balance is identical in both regimes: the model balances the
	// hash range, not the access stream (§5).
	if uniform.SigmaQuota != zipf.SigmaQuota {
		t.Fatalf("quota σ̄ must not depend on the workload: %v vs %v", uniform.SigmaQuota, zipf.SigmaQuota)
	}
	if uniform.HottestShare <= 0 || uniform.HottestShare > 1 {
		t.Fatalf("hottest share %v out of range", uniform.HottestShare)
	}
}

func TestAccessSkewValidation(t *testing.T) {
	if _, _, err := AccessSkew(16, 8, 0, 100, 100, 1.3, Options{Runs: 1, Vnodes: 1}); err == nil {
		t.Fatal("vnodes=0 must fail")
	}
	if _, _, err := AccessSkew(16, 8, 4, 0, 100, 1.3, Options{Runs: 1, Vnodes: 1}); err == nil {
		t.Fatal("keys=0 must fail")
	}
	if _, _, err := AccessSkew(16, 8, 4, 100, 0, 1.3, Options{Runs: 1, Vnodes: 1}); err == nil {
		t.Fatal("ops=0 must fail")
	}
	if _, _, err := AccessSkew(16, 8, 4, 100, 100, 1.3, Options{Runs: 0, Vnodes: 1}); err == nil {
		t.Fatal("bad options must fail")
	}
}
