package sim

import (
	"fmt"
	"math/rand"

	"dbdht/internal/ch"
	"dbdht/internal/core"
	"dbdht/internal/global"
	"dbdht/internal/metrics"
)

// LocalQuality measures σ̄(Q_v, Q̄_v) of the local approach after each of
// o.Vnodes consecutive vnode creations, averaged over o.Runs seeds.  This is
// one line of figure 4 (Pmin = Vmin) or figure 6 (Pmin fixed, Vmin varies).
// Values are fractions; the figures plot them ×100.
func LocalQuality(pmin, vmin int, o Options) (metrics.Series, error) {
	o, err := o.withDefaults()
	if err != nil {
		return metrics.Series{}, err
	}
	label := fmt.Sprintf("local Pmin=%d Vmin=%d", pmin, vmin)
	return average(o, func(run int) (metrics.Series, error) {
		d, err := core.New(core.Config{Pmin: pmin, Vmin: vmin}, rand.New(rand.NewSource(o.Seed+int64(run))))
		if err != nil {
			return metrics.Series{}, err
		}
		s := metrics.Series{Label: label}
		for v := 1; v <= o.Vnodes; v++ {
			if _, _, err := d.AddVnode(); err != nil {
				return metrics.Series{}, err
			}
			if v%o.SampleEvery == 0 || v == o.Vnodes {
				s.X = append(s.X, v)
				s.Y = append(s.Y, d.QualityOfBalancement())
			}
		}
		return s, nil
	})
}

// GlobalQuality is LocalQuality for the global approach (package global):
// the baseline the local curves are compared against in §4.2, and the
// degenerate Vmin=512 line of figure 6.
func GlobalQuality(pmin int, o Options) (metrics.Series, error) {
	o, err := o.withDefaults()
	if err != nil {
		return metrics.Series{}, err
	}
	label := fmt.Sprintf("global Pmin=%d", pmin)
	return average(o, func(run int) (metrics.Series, error) {
		d, err := global.New(pmin, rand.New(rand.NewSource(o.Seed+int64(run))))
		if err != nil {
			return metrics.Series{}, err
		}
		s := metrics.Series{Label: label}
		for v := 1; v <= o.Vnodes; v++ {
			if _, err := d.AddVnode(); err != nil {
				return metrics.Series{}, err
			}
			if v%o.SampleEvery == 0 || v == o.Vnodes {
				s.X = append(s.X, v)
				s.Y = append(s.Y, d.QualityOfBalancement())
			}
		}
		return s, nil
	})
}

// GroupEvolution bundles the three curves of §4.2.1 recorded during one
// growth experiment: the real and ideal overall number of groups (figure 7)
// and the quality of the balancement *between* groups σ̄(Q_g, Q̄_g)
// (figure 8).
type GroupEvolution struct {
	Real    metrics.Series
	Ideal   metrics.Series
	Quality metrics.Series
}

// Groups runs the local approach and records the group-evolution curves.
func Groups(pmin, vmin int, o Options) (GroupEvolution, error) {
	o, err := o.withDefaults()
	if err != nil {
		return GroupEvolution{}, err
	}
	vmax := 2 * vmin
	type triple struct{ real, ideal, quality metrics.Series }
	runs := make([]triple, o.Runs)
	_, err = runAll(o, func(run int) (metrics.Series, error) {
		d, err := core.New(core.Config{Pmin: pmin, Vmin: vmin}, rand.New(rand.NewSource(o.Seed+int64(run))))
		if err != nil {
			return metrics.Series{}, err
		}
		tr := &runs[run]
		for v := 1; v <= o.Vnodes; v++ {
			if _, _, err := d.AddVnode(); err != nil {
				return metrics.Series{}, err
			}
			if v%o.SampleEvery == 0 || v == o.Vnodes {
				tr.real.X = append(tr.real.X, v)
				tr.real.Y = append(tr.real.Y, float64(d.Groups()))
				tr.ideal.X = append(tr.ideal.X, v)
				tr.ideal.Y = append(tr.ideal.Y, float64(idealGroups(v, vmax)))
				tr.quality.X = append(tr.quality.X, v)
				tr.quality.Y = append(tr.quality.Y, d.GroupBalancement())
			}
		}
		return metrics.Series{}, nil
	})
	if err != nil {
		return GroupEvolution{}, err
	}
	collect := func(pick func(*triple) metrics.Series, label string) (metrics.Series, error) {
		all := make([]metrics.Series, len(runs))
		for i := range runs {
			all[i] = pick(&runs[i])
			all[i].Label = label
		}
		return metrics.MeanSeries(all)
	}
	var out GroupEvolution
	if out.Real, err = collect(func(t *triple) metrics.Series { return t.real }, "Greal"); err != nil {
		return out, err
	}
	if out.Ideal, err = collect(func(t *triple) metrics.Series { return t.ideal }, "Gideal"); err != nil {
		return out, err
	}
	if out.Quality, err = collect(func(t *triple) metrics.Series { return t.quality }, "sigma(Qg)"); err != nil {
		return out, err
	}
	return out, nil
}

// CHQuality measures σ̄(Q_n, Q̄_n) of Consistent Hashing as homogeneous
// nodes join one by one — the CH curves of figure 9 (k = 32 and 64
// partitions/node in the paper).
func CHQuality(k int, o Options) (metrics.Series, error) {
	o, err := o.withDefaults()
	if err != nil {
		return metrics.Series{}, err
	}
	label := fmt.Sprintf("CH %d pts/node", k)
	return average(o, func(run int) (metrics.Series, error) {
		r, err := ch.New(k, rand.New(rand.NewSource(o.Seed+int64(run))))
		if err != nil {
			return metrics.Series{}, err
		}
		s := metrics.Series{Label: label}
		for n := 1; n <= o.Vnodes; n++ {
			if _, err := r.AddNode(1); err != nil {
				return metrics.Series{}, err
			}
			if n%o.SampleEvery == 0 || n == o.Vnodes {
				s.X = append(s.X, n)
				s.Y = append(s.Y, r.QualityOfBalancement())
			}
		}
		return s, nil
	})
}

// ThetaPoint is one point of figure 5.
type ThetaPoint struct {
	Vmin  int
	Sigma float64 // σ̄(Q_v) at V = o.Vnodes for Pmin = Vmin
	Theta float64
}

// Theta computes the figure-5 tradeoff θ = α·V̂min + β·σ̄̂ for the candidate
// values of Vmin (with Pmin = Vmin, as §4.1 establishes), where both terms
// are normalized by their maximum over the candidate set and α + β = 1.
// The paper uses α = β = 0.5 and finds the minimum at Vmin = 32.
func Theta(vmins []int, alpha float64, o Options) ([]ThetaPoint, error) {
	if len(vmins) == 0 {
		return nil, fmt.Errorf("sim: no Vmin candidates")
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("sim: alpha must be in [0,1], got %v", alpha)
	}
	beta := 1 - alpha
	out := make([]ThetaPoint, len(vmins))
	maxV, maxS := 0.0, 0.0
	for i, vm := range vmins {
		s, err := LocalQuality(vm, vm, o)
		if err != nil {
			return nil, err
		}
		out[i] = ThetaPoint{Vmin: vm, Sigma: s.Last()}
		if float64(vm) > maxV {
			maxV = float64(vm)
		}
		if out[i].Sigma > maxS {
			maxS = out[i].Sigma
		}
	}
	for i := range out {
		nv := float64(out[i].Vmin) / maxV
		ns := 0.0
		if maxS > 0 {
			ns = out[i].Sigma / maxS
		}
		out[i].Theta = alpha*nv + beta*ns
	}
	return out, nil
}

// PlateauRatio quantifies the §4.1.1 observation that "each time Pmin and
// Vmin double, σ̄(Q_v) decreases by nearly 30%": it returns the 2nd-zone
// plateau value (mean of the last tailFrac of the curve) for each candidate
// and the consecutive ratios plateau[i+1]/plateau[i].
func PlateauRatio(vmins []int, tailFrac float64, o Options) (plateaus []float64, ratios []float64, err error) {
	for _, vm := range vmins {
		s, err := LocalQuality(vm, vm, o)
		if err != nil {
			return nil, nil, err
		}
		plateaus = append(plateaus, s.Tail(tailFrac))
	}
	for i := 1; i < len(plateaus); i++ {
		if plateaus[i-1] == 0 {
			return nil, nil, fmt.Errorf("sim: zero plateau for Vmin=%d", vmins[i-1])
		}
		ratios = append(ratios, plateaus[i]/plateaus[i-1])
	}
	return plateaus, ratios, nil
}

// PminEffect quantifies the §4.1 observation that "increasing Pmin beyond
// the same value of Vmin decreases σ̄(Q_v) by a very marginal amount": it
// returns the plateau σ̄ for Pmin = Vmin and for Pmin = mult·Vmin.
func PminEffect(vmin, mult int, tailFrac float64, o Options) (atVmin, beyond float64, err error) {
	if mult < 2 {
		return 0, 0, fmt.Errorf("sim: mult must be ≥ 2, got %d", mult)
	}
	base, err := LocalQuality(vmin, vmin, o)
	if err != nil {
		return 0, 0, err
	}
	big, err := LocalQuality(mult*vmin, vmin, o)
	if err != nil {
		return 0, 0, err
	}
	return base.Tail(tailFrac), big.Tail(tailFrac), nil
}

// HeteroQuality measures how well each model honours heterogeneous node
// weights (base-model feature (a): the share of the DHT handled by a node
// is a function of its resources).  weights[i] is node i's relative
// capacity; node i enrolls weights[i] vnodes (our model) or weights[i]·k
// ring points (weighted CH per reference [3]).  The returned value is
// σ̄ of the normalized shares Q_n/(w_n/Σw), measured around the ideal 1,
// averaged over o.Runs (lower is better; 0 is perfectly
// proportional).
func HeteroQuality(weights []int, pmin, vmin, chK int, o Options) (local, consistent float64, err error) {
	o, err = o.withDefaults()
	if err != nil {
		return 0, 0, err
	}
	total := 0
	for i, w := range weights {
		if w < 1 {
			return 0, 0, fmt.Errorf("sim: weight %d of node %d must be ≥ 1", w, i)
		}
		total += w
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("sim: no nodes")
	}
	localRuns, err := average(o, func(run int) (metrics.Series, error) {
		d, err := core.New(core.Config{Pmin: pmin, Vmin: vmin}, rand.New(rand.NewSource(o.Seed+int64(run))))
		if err != nil {
			return metrics.Series{}, err
		}
		// Node n hosts one vnode per unit of weight; vnode ids are assigned
		// sequentially, so record each node's id range.
		owner := make([]int, 0, total)
		for n, w := range weights {
			for j := 0; j < w; j++ {
				if _, _, err := d.AddVnode(); err != nil {
					return metrics.Series{}, err
				}
				owner = append(owner, n)
			}
		}
		qv := d.VnodeQuotas()
		shares := make([]float64, len(weights))
		for i, q := range qv {
			shares[owner[i]] += q
		}
		return metrics.Series{X: []int{0}, Y: []float64{normalizedDeviation(shares, weights, total)}}, nil
	})
	if err != nil {
		return 0, 0, err
	}
	chRuns, err := average(o, func(run int) (metrics.Series, error) {
		r, err := ch.New(chK, rand.New(rand.NewSource(o.Seed+int64(run))))
		if err != nil {
			return metrics.Series{}, err
		}
		for _, w := range weights {
			if _, err := r.AddNode(w); err != nil {
				return metrics.Series{}, err
			}
		}
		return metrics.Series{X: []int{0}, Y: []float64{normalizedDeviation(r.Quotas(), weights, total)}}, nil
	})
	if err != nil {
		return 0, 0, err
	}
	return localRuns.Y[0], chRuns.Y[0], nil
}

// normalizedDeviation returns σ̄ of shares[i]/(weights[i]/total) around the
// ideal value 1.
func normalizedDeviation(shares []float64, weights []int, total int) float64 {
	norm := make([]float64, len(shares))
	for i := range shares {
		ideal := float64(weights[i]) / float64(total)
		norm[i] = shares[i] / ideal
	}
	return metrics.RelStdDevAround(norm, 1)
}
