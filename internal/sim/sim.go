package sim

import (
	"fmt"
	"runtime"
	"sync"

	"dbdht/internal/metrics"
)

// Options configures an experiment.
type Options struct {
	// Runs is the number of independently seeded repetitions to average
	// (100 in the paper).
	Runs int
	// Vnodes is how many consecutive vnode creations each run performs
	// (1024 in the paper; 8192 for the §4.1.1 stability check).
	Vnodes int
	// Seed is the base seed; run i derives its generator from Seed+i, so a
	// fixed Seed reproduces a figure bit-for-bit.
	Seed int64
	// SampleEvery records the metric at every k-th creation (and always at
	// the final one).  1 — the default when 0 — records every step, as the
	// paper's figures do.
	SampleEvery int
	// Workers bounds the goroutine pool; 0 means GOMAXPROCS.
	Workers int
}

func (o Options) withDefaults() (Options, error) {
	if o.Runs < 1 {
		return o, fmt.Errorf("sim: Runs must be ≥ 1, got %d", o.Runs)
	}
	if o.Vnodes < 1 {
		return o, fmt.Errorf("sim: Vnodes must be ≥ 1, got %d", o.Vnodes)
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = 1
	}
	if o.SampleEvery < 0 {
		return o, fmt.Errorf("sim: SampleEvery must be ≥ 0, got %d", o.SampleEvery)
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return o, fmt.Errorf("sim: Workers must be ≥ 0, got %d", o.Workers)
	}
	return o, nil
}

// sampledX returns the x axis for the configured sampling.
func (o Options) sampledX() []int {
	var xs []int
	for v := 1; v <= o.Vnodes; v++ {
		if v%o.SampleEvery == 0 || v == o.Vnodes {
			xs = append(xs, v)
		}
	}
	return xs
}

// runAll executes one experiment function per run index across the worker
// pool and returns the per-run results in run order.  The first error wins.
func runAll(o Options, fn func(run int) (metrics.Series, error)) ([]metrics.Series, error) {
	out := make([]metrics.Series, o.Runs)
	errs := make([]error, o.Runs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.Workers)
	for run := 0; run < o.Runs; run++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(run int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[run], errs[run] = fn(run)
		}(run)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// average runs fn across all seeds and averages the resulting curves.
func average(o Options, fn func(run int) (metrics.Series, error)) (metrics.Series, error) {
	runs, err := runAll(o, fn)
	if err != nil {
		return metrics.Series{}, err
	}
	return metrics.MeanSeries(runs)
}

// idealGroups returns G_ideal(V): the number of groups "should double every
// time V crosses a power of two boundary" above Vmax (§4.2.1, figure 7).
func idealGroups(v, vmax int) int {
	g := 1
	for v > vmax {
		v = (v + 1) / 2
		g *= 2
	}
	return g
}
