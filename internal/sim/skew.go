package sim

import (
	"fmt"
	"math/rand"

	"dbdht/internal/core"
	"dbdht/internal/hashspace"
	"dbdht/internal/metrics"
	"dbdht/internal/workload"
)

// SkewResult summarizes how data-plane load spreads across vnodes under a
// key-popularity distribution.
type SkewResult struct {
	// SigmaAccess is σ̄ of per-vnode access counts (0 = every vnode serves
	// the same number of operations).
	SigmaAccess float64
	// HottestShare is the fraction of all accesses absorbed by the single
	// most-loaded vnode.
	HottestShare float64
	// SigmaQuota is σ̄(Q_v) of the underlying DHT, for reference: the model
	// balances *quotas*, and under skew that no longer balances *load*.
	SigmaQuota float64
}

// AccessSkew quantifies the paper's §5/§6 caveat — the model assumes
// uniform access and rebalances only on membership change — by driving ops
// through a grown DHT under uniform and zipfian key popularity and
// measuring the per-vnode load imbalance.  Results are averaged over
// o.Runs.
func AccessSkew(pmin, vmin, vnodes, keys, ops int, zipfS float64, o Options) (uniform, zipf SkewResult, err error) {
	o, err = o.withDefaults()
	if err != nil {
		return SkewResult{}, SkewResult{}, err
	}
	if keys < 1 || ops < 1 || vnodes < 1 {
		return SkewResult{}, SkewResult{}, fmt.Errorf("sim: keys, ops and vnodes must be ≥ 1")
	}
	measure := func(run int, gen workload.KeyGen, d *core.DHT) (SkewResult, error) {
		_ = run
		counts := make(map[core.VnodeID]int)
		for i := 0; i < ops; i++ {
			key := gen.Next()
			v, ok := d.Lookup(hashspace.HashString(key))
			if !ok {
				return SkewResult{}, fmt.Errorf("sim: lookup failed for %q", key)
			}
			counts[v]++
		}
		loads := make([]float64, 0, d.Vnodes())
		hottest := 0
		for _, id := range allVnodes(d) {
			c := counts[id]
			loads = append(loads, float64(c))
			if c > hottest {
				hottest = c
			}
		}
		return SkewResult{
			SigmaAccess:  metrics.RelStdDev(loads),
			HottestShare: float64(hottest) / float64(ops),
			SigmaQuota:   d.QualityOfBalancement(),
		}, nil
	}
	type accum struct{ sa, hs, sq float64 }
	runOne := func(run int, zipfian bool) (SkewResult, error) {
		rng := rand.New(rand.NewSource(o.Seed + int64(run)))
		d, err := core.New(core.Config{Pmin: pmin, Vmin: vmin}, rng)
		if err != nil {
			return SkewResult{}, err
		}
		for v := 0; v < vnodes; v++ {
			if _, _, err := d.AddVnode(); err != nil {
				return SkewResult{}, err
			}
		}
		wrng := rand.New(rand.NewSource(o.Seed + 7919 + int64(run)))
		var gen workload.KeyGen
		if zipfian {
			gen, err = workload.NewZipf(wrng, zipfS, keys)
		} else {
			gen, err = workload.NewUniform(wrng, keys)
		}
		if err != nil {
			return SkewResult{}, err
		}
		return measure(run, gen, d)
	}
	var au, az accum
	for run := 0; run < o.Runs; run++ {
		ru, err := runOne(run, false)
		if err != nil {
			return SkewResult{}, SkewResult{}, err
		}
		rz, err := runOne(run, true)
		if err != nil {
			return SkewResult{}, SkewResult{}, err
		}
		au.sa += ru.SigmaAccess
		au.hs += ru.HottestShare
		au.sq += ru.SigmaQuota
		az.sa += rz.SigmaAccess
		az.hs += rz.HottestShare
		az.sq += rz.SigmaQuota
	}
	n := float64(o.Runs)
	uniform = SkewResult{SigmaAccess: au.sa / n, HottestShare: au.hs / n, SigmaQuota: au.sq / n}
	zipf = SkewResult{SigmaAccess: az.sa / n, HottestShare: az.hs / n, SigmaQuota: az.sq / n}
	return uniform, zipf, nil
}

// allVnodes lists a DHT's live vnodes via its groups.
func allVnodes(d *core.DHT) []core.VnodeID {
	var out []core.VnodeID
	for _, gid := range d.GroupIDs() {
		g, _ := d.Group(gid)
		for v := range g.LPDR() {
			out = append(out, v)
		}
	}
	return out
}
