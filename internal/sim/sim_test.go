package sim

import (
	"math"
	"testing"
)

// Small-but-meaningful options: fewer runs/vnodes than the paper for test
// speed; the full-scale figures are produced by cmd/dhtsim and the benches.
func testOpts() Options {
	return Options{Runs: 8, Vnodes: 256, Seed: 1, SampleEvery: 1}
}

func TestOptionsValidation(t *testing.T) {
	for _, bad := range []Options{
		{Runs: 0, Vnodes: 10},
		{Runs: 1, Vnodes: 0},
		{Runs: 1, Vnodes: 1, SampleEvery: -1},
		{Runs: 1, Vnodes: 1, Workers: -1},
	} {
		if _, err := bad.withDefaults(); err == nil {
			t.Errorf("options %+v must be invalid", bad)
		}
	}
	o, err := (Options{Runs: 1, Vnodes: 1}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if o.SampleEvery != 1 || o.Workers < 1 {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

func TestIdealGroups(t *testing.T) {
	cases := []struct{ v, vmax, want int }{
		{1, 64, 1}, {64, 64, 1}, {65, 64, 2}, {128, 64, 2},
		{129, 64, 4}, {256, 64, 4}, {257, 64, 8}, {512, 64, 8},
		{513, 64, 16}, {1024, 64, 16},
		{8, 8, 1}, {9, 8, 2}, {17, 8, 4},
	}
	for _, c := range cases {
		if got := idealGroups(c.v, c.vmax); got != c.want {
			t.Errorf("idealGroups(%d,%d) = %d, want %d", c.v, c.vmax, got, c.want)
		}
	}
}

func TestLocalQualityShape(t *testing.T) {
	s, err := LocalQuality(16, 16, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.X) != 256 {
		t.Fatalf("series has %d points", len(s.X))
	}
	// Zone 1: while V ≤ Vmax=32 there is one group; at V=32 balance is
	// perfect (σ̄ averages to 0 across runs because it is 0 in each run).
	if v, err := s.At(32); err != nil || v > 1e-9 {
		t.Fatalf("σ̄ at V=Vmax = %v, %v; want 0", v, err)
	}
	// Zone 2: after groups appear, σ̄ sits on a positive plateau.
	if tail := s.Tail(0.25); tail <= 0.005 {
		t.Fatalf("2nd-zone plateau %v suspiciously low", tail)
	}
}

func TestGlobalQualitySawtooth(t *testing.T) {
	s, err := GlobalQuality(16, Options{Runs: 3, Vnodes: 128, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{2, 4, 8, 16, 32, 64, 128} {
		if y, err := s.At(v); err != nil || y > 1e-9 {
			t.Fatalf("global σ̄ at power-of-two V=%d is %v, want 0", v, y)
		}
	}
	if y, _ := s.At(96); y <= 0 {
		t.Fatal("global σ̄ between powers of two must be positive")
	}
}

// Figure 4's headline ordering: larger Pmin=Vmin ⇒ lower plateau.
func TestFigure4Ordering(t *testing.T) {
	o := testOpts()
	s8, err := LocalQuality(8, 8, o)
	if err != nil {
		t.Fatal(err)
	}
	s32, err := LocalQuality(32, 32, o)
	if err != nil {
		t.Fatal(err)
	}
	if s8.Tail(0.25) <= s32.Tail(0.25) {
		t.Fatalf("plateau(8,8)=%v must exceed plateau(32,32)=%v", s8.Tail(0.25), s32.Tail(0.25))
	}
}

// Figure 6: with Pmin fixed, smaller Vmin degrades σ̄; Vmin big enough for a
// single group matches the global approach exactly (same seeds).
func TestFigure6DegenerateMatchesGlobal(t *testing.T) {
	o := Options{Runs: 4, Vnodes: 128, Seed: 3}
	local, err := LocalQuality(32, 128, o) // Vmax=256 > 128 ⇒ one group
	if err != nil {
		t.Fatal(err)
	}
	glob, err := GlobalQuality(32, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range local.Y {
		if math.Abs(local.Y[i]-glob.Y[i]) > 1e-12 {
			t.Fatalf("V=%d: local(one group)=%v ≠ global=%v", local.X[i], local.Y[i], glob.Y[i])
		}
	}
}

func TestGroupsEvolution(t *testing.T) {
	ge, err := Groups(8, 8, Options{Runs: 4, Vnodes: 128, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// One group up to Vmax=16.
	if y, _ := ge.Real.At(16); y != 1 {
		t.Fatalf("Greal at V=16 = %v, want 1", y)
	}
	if y, _ := ge.Ideal.At(16); y != 1 {
		t.Fatalf("Gideal at V=16 = %v, want 1", y)
	}
	// By V=128 the ideal is 8 groups; the real count must be in the
	// vicinity (between total/Vmax and total/Vmin).
	if y, _ := ge.Ideal.At(128); y != 8 {
		t.Fatalf("Gideal at V=128 = %v, want 8", y)
	}
	real128, _ := ge.Real.At(128)
	if real128 < 4 || real128 > 16 {
		t.Fatalf("Greal at V=128 = %v, outside [4,16]", real128)
	}
	// σ̄(Qg) is 0 while one group exists, positive later.
	if y, _ := ge.Quality.At(8); y != 0 {
		t.Fatalf("σ̄(Qg) with one group = %v", y)
	}
	if ge.Quality.Tail(0.25) <= 0 {
		t.Fatal("σ̄(Qg) must be positive once groups multiply")
	}
}

func TestCHQualityDecreasingInK(t *testing.T) {
	o := Options{Runs: 6, Vnodes: 128, Seed: 5}
	s32, err := CHQuality(32, o)
	if err != nil {
		t.Fatal(err)
	}
	s64, err := CHQuality(64, o)
	if err != nil {
		t.Fatal(err)
	}
	if s64.Tail(0.5) >= s32.Tail(0.5) {
		t.Fatalf("CH: k=64 (%v) must beat k=32 (%v)", s64.Tail(0.5), s32.Tail(0.5))
	}
	// CH never reaches the 0-σ̄ states the balanced model hits.
	if s32.Last() <= 0 {
		t.Fatal("CH σ̄ must stay positive")
	}
}

func TestTheta(t *testing.T) {
	pts, err := Theta([]int{8, 16, 32}, 0.5, Options{Runs: 4, Vnodes: 128, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// θ is normalized: every component within [0,1], so θ ∈ [0,1].
	for _, p := range pts {
		if p.Theta < 0 || p.Theta > 1 {
			t.Fatalf("θ(%d) = %v out of range", p.Vmin, p.Theta)
		}
	}
	// The largest Vmin candidate has V̂min = 1, so θ ≥ α there.
	last := pts[len(pts)-1]
	if last.Theta < 0.5 {
		t.Fatalf("θ(max Vmin) = %v, must be ≥ α = 0.5", last.Theta)
	}
	if _, err := Theta(nil, 0.5, testOpts()); err == nil {
		t.Fatal("empty candidate set must error")
	}
	if _, err := Theta([]int{8}, 2, testOpts()); err == nil {
		t.Fatal("alpha out of range must error")
	}
}

func TestPlateauRatioRoughly70Percent(t *testing.T) {
	plateaus, ratios, err := PlateauRatio([]int{8, 16, 32}, 0.25, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(plateaus) != 3 || len(ratios) != 2 {
		t.Fatalf("sizes: %d plateaus, %d ratios", len(plateaus), len(ratios))
	}
	// §4.1.1: each doubling drops σ̄ by "nearly 30%" ⇒ ratio ≈ 0.7.  Allow a
	// generous band at test scale.
	for i, r := range ratios {
		if r < 0.4 || r > 0.95 {
			t.Fatalf("ratio[%d] = %v, outside plausible band around 0.7", i, r)
		}
	}
}

func TestHeteroQuality(t *testing.T) {
	weights := []int{1, 1, 2, 4, 8, 1, 2, 1}
	local, consistent, err := HeteroQuality(weights, 8, 8, 32, Options{Runs: 4, Vnodes: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if local < 0 || consistent < 0 {
		t.Fatalf("negative deviations: %v, %v", local, consistent)
	}
	// The balanced model should track weights at least as well as CH.
	if local > consistent*1.5 {
		t.Fatalf("local %v much worse than CH %v", local, consistent)
	}
	if _, _, err := HeteroQuality([]int{0}, 8, 8, 32, testOpts()); err == nil {
		t.Fatal("zero weight must be rejected")
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	o1 := Options{Runs: 4, Vnodes: 64, Seed: 9, Workers: 1}
	oN := Options{Runs: 4, Vnodes: 64, Seed: 9, Workers: 4}
	a, err := LocalQuality(8, 8, o1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LocalQuality(8, 8, oN)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatalf("worker count changed results at V=%d: %v vs %v", a.X[i], a.Y[i], b.Y[i])
		}
	}
}

func TestSampling(t *testing.T) {
	s, err := LocalQuality(8, 8, Options{Runs: 2, Vnodes: 100, Seed: 10, SampleEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{32, 64, 96, 100}
	if len(s.X) != len(want) {
		t.Fatalf("sampled X = %v", s.X)
	}
	for i := range want {
		if s.X[i] != want[i] {
			t.Fatalf("sampled X = %v, want %v", s.X, want)
		}
	}
}

// §4.1: raising Pmin beyond Vmin buys only a marginal improvement — the
// reason the paper presents figure 4 with Pmin = Vmin only.
func TestPminBeyondVminMarginal(t *testing.T) {
	base, beyond, err := PminEffect(16, 4, 0.25, Options{Runs: 6, Vnodes: 256, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	// "Very marginal": quadrupling Pmin alone moves the plateau by well
	// under the ~30% a joint (Pmin, Vmin) doubling gives — in either
	// direction, since at test scale the effect is noise-level.
	if diff := math.Abs(beyond-base) / base; diff > 0.2 {
		t.Fatalf("Pmin beyond Vmin changed plateau by %.0f%% (%v -> %v); expected marginal", 100*diff, base, beyond)
	}
	if _, _, err := PminEffect(16, 1, 0.25, Options{Runs: 1, Vnodes: 8}); err == nil {
		t.Fatal("mult < 2 must fail")
	}
}
