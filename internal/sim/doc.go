// Package sim is the experiment harness for the evaluation section (§4) of
// Rufino et al. (IPDPS 2004).  Each driver regenerates one figure: it runs
// the relevant model for a configured number of consecutive vnode creations,
// measures the paper's metric after every creation, repeats over many
// independently-seeded runs ("all the results presented are averages of 100
// runs of the same test") and returns the point-wise mean curve.
//
// Runs are independent, so the harness fans them out across a bounded pool
// of goroutines — one of the few places in the repository where parallelism
// is a harness concern rather than the model under study.
package sim
