package workload

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestZipfMatchesAnalytic checks the empirical head-rank frequencies
// against the analytic Zipf(s, 1) distribution rand.NewZipf draws from:
// P(k) ∝ (1+k)^-s over n keys.
func TestZipfMatchesAnalytic(t *testing.T) {
	const n, draws = 1000, 200000
	for _, tc := range []struct {
		s   float64
		tol float64 // relative tolerance on the head ranks
	}{
		{1.2, 0.10},
		{1.5, 0.10},
		{2.0, 0.10},
	} {
		t.Run(fmt.Sprintf("s=%v", tc.s), func(t *testing.T) {
			z, err := NewZipf(rand.New(rand.NewSource(11)), tc.s, n)
			if err != nil {
				t.Fatal(err)
			}
			counts := make(map[string]int)
			for i := 0; i < draws; i++ {
				counts[z.Next()]++
			}
			norm := 0.0
			for k := 0; k < n; k++ {
				norm += math.Pow(1+float64(k), -tc.s)
			}
			for k := 0; k < 5; k++ {
				want := math.Pow(1+float64(k), -tc.s) / norm
				got := float64(counts[fmt.Sprintf("key-%08d", k)]) / draws
				if math.Abs(got-want)/want > tc.tol {
					t.Errorf("rank %d: empirical %.4f vs analytic %.4f (>%v%% off)",
						k, got, want, 100*tc.tol)
				}
			}
		})
	}
}

// TestGenMixRatios checks the generator honours YCSB-style ratios
// within binomial tolerance, for each classic preset and a custom mix.
func TestGenMixRatios(t *testing.T) {
	const ops = 20000
	for _, tc := range []struct {
		name   string
		ratios MixRatios
	}{
		{"ycsb-a", YCSBA()},
		{"ycsb-b", YCSBB()},
		{"ycsb-c", YCSBC()},
		{"ycsb-e", YCSBE()},
		{"custom", MixRatios{Update: 0.2, Insert: 0.1, Scan: 0.1, Delete: 0.05}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			keys, err := NewUniform(rng, 500)
			if err != nil {
				t.Fatal(err)
			}
			g, err := NewGen(rng, keys, tc.ratios, 32, 8)
			if err != nil {
				t.Fatal(err)
			}
			var updates, inserts, scans, deletes, reads float64
			seenInserts := map[string]bool{}
			for i := 0; i < ops; i++ {
				op := g.Next()
				switch {
				case op.Kind == Put && strings.HasPrefix(op.Key, "ins-"):
					inserts++
					if seenInserts[op.Key] {
						t.Fatalf("insert key %q repeated — inserts must be fresh", op.Key)
					}
					seenInserts[op.Key] = true
					if len(op.Value) != 32 {
						t.Fatalf("insert value size = %d", len(op.Value))
					}
				case op.Kind == Put:
					updates++
					if len(op.Value) != 32 {
						t.Fatalf("update value size = %d", len(op.Value))
					}
				case op.Kind == Scan:
					scans++
					if op.ScanLen != 8 {
						t.Fatalf("scan len = %d, want 8", op.ScanLen)
					}
				case op.Kind == Delete:
					deletes++
				case op.Kind == Get:
					reads++
					if op.ScanLen != 0 || op.Value != nil {
						t.Fatal("get must carry no value or scan length")
					}
				}
			}
			readFrac := 1 - tc.ratios.Update - tc.ratios.Insert - tc.ratios.Scan - tc.ratios.Delete
			for _, c := range []struct {
				what string
				got  float64
				want float64
			}{
				{"updates", updates, tc.ratios.Update},
				{"inserts", inserts, tc.ratios.Insert},
				{"scans", scans, tc.ratios.Scan},
				{"deletes", deletes, tc.ratios.Delete},
				{"reads", reads, readFrac},
			} {
				got := c.got / ops
				// ±4 binomial standard deviations never flakes in practice.
				tol := 4 * math.Sqrt(c.want*(1-c.want)/ops)
				if math.Abs(got-c.want) > tol {
					t.Errorf("%s: %.4f of ops, want %.4f ± %.4f", c.what, got, c.want, tol)
				}
			}
		})
	}
}

// TestGenSeedDeterminism: two generators built from equal seeds emit
// identical op streams — keys, kinds, values, scan lengths; a different
// seed diverges.
func TestGenSeedDeterminism(t *testing.T) {
	build := func(seed int64) *Gen {
		rng := rand.New(rand.NewSource(seed))
		keys, err := NewZipf(rng, 1.3, 1000)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGen(rng, keys, MixRatios{Update: 0.4, Insert: 0.1, Scan: 0.1}, 16, 4)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b, c := build(7), build(7), build(8)
	diverged := false
	for i := 0; i < 5000; i++ {
		x, y, z := a.Next(), b.Next(), c.Next()
		if x.Kind != y.Kind || x.Key != y.Key || x.ScanLen != y.ScanLen || !bytes.Equal(x.Value, y.Value) {
			t.Fatalf("op %d: equal seeds diverged: %+v vs %+v", i, x, y)
		}
		if x.Kind != z.Kind || x.Key != z.Key {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical 5000-op streams")
	}
}

func TestGenValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := NewSequential("k")
	if _, err := NewGen(nil, keys, MixRatios{}, 8, 1); err == nil {
		t.Fatal("nil rng must fail")
	}
	if _, err := NewGen(rng, nil, MixRatios{}, 8, 1); err == nil {
		t.Fatal("nil keys must fail")
	}
	if _, err := NewGen(rng, keys, MixRatios{Update: 0.9, Scan: 0.2}, 8, 1); err == nil {
		t.Fatal("ratios summing over 1 must fail")
	}
	if _, err := NewGen(rng, keys, MixRatios{Update: -0.1}, 8, 1); err == nil {
		t.Fatal("negative ratio must fail")
	}
	if _, err := NewGen(rng, keys, MixRatios{Scan: 0.5}, 8, 0); err == nil {
		t.Fatal("scan mix without scanLen must fail")
	}
	if _, err := NewGen(rng, keys, MixRatios{}, -1, 1); err == nil {
		t.Fatal("negative value size must fail")
	}
}

func TestChunkOps(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ops, err := ChunkOps(rng, "blob-7", 10_000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := ChunkKeys("blob-7", 10_000, 4096)
	if len(ops) != 3 || len(wantKeys) != 3 {
		t.Fatalf("chunks = %d/%d, want 3", len(ops), len(wantKeys))
	}
	total := 0
	for i, op := range ops {
		if op.Kind != Put {
			t.Fatalf("chunk %d kind = %v", i, op.Kind)
		}
		if op.Key != wantKeys[i] {
			t.Fatalf("chunk %d key = %q, want %q", i, op.Key, wantKeys[i])
		}
		total += len(op.Value)
	}
	if total != 10_000 {
		t.Fatalf("chunk bytes = %d, want 10000", total)
	}
	if len(ops[0].Value) != 4096 || len(ops[2].Value) != 10_000-2*4096 {
		t.Fatalf("chunk sizes = %d, %d, %d", len(ops[0].Value), len(ops[1].Value), len(ops[2].Value))
	}
	// Chunk order must equal lexical key order (fixed-width suffix).
	for i := 1; i < len(ops); i++ {
		if !(ops[i-1].Key < ops[i].Key) {
			t.Fatalf("chunk keys out of lexical order: %q !< %q", ops[i-1].Key, ops[i].Key)
		}
	}
	if _, err := ChunkOps(nil, "b", 10, 4); err == nil {
		t.Fatal("nil rng must fail")
	}
	if _, err := ChunkOps(rng, "b", 0, 4); err == nil {
		t.Fatal("zero total must fail")
	}
	if _, err := ChunkOps(rng, "b", 10, 0); err == nil {
		t.Fatal("zero chunk must fail")
	}
}

func TestPacerOpenLoop(t *testing.T) {
	if _, err := NewPacer(0); err == nil {
		t.Fatal("zero rate must fail")
	}
	p, err := NewPacer(1000) // 1ms interval
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 50; i++ {
		// Microseconds of scheduling slop are expected; real backlog is not.
		if lag := p.Wait(); lag > 5*time.Millisecond {
			t.Fatalf("op %d reported lag %v while keeping up", i, lag)
		}
	}
	// 50 slots at 1ms spacing cannot complete much before 49ms.
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("50 paced ops finished in %v — pacer did not pace", el)
	}
	// Fall behind schedule: the next slot must report the backlog
	// instead of silently absorbing it (open-loop semantics).
	time.Sleep(30 * time.Millisecond)
	if lag := p.Wait(); lag < 20*time.Millisecond {
		t.Fatalf("lag = %v after a 30ms stall, want ≥ 20ms", lag)
	}
}
