package workload

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Pacer schedules operations open-loop at a fixed target rate: the i-th
// op is due at start + i/rate regardless of how long earlier ops took,
// so a slow server builds a visible backlog instead of silently slowing
// the load (the coordinated-omission trap of closed loops).  One Pacer
// may be shared by many goroutines; each Wait claims the next slot.
type Pacer struct {
	interval time.Duration
	start    time.Time
	n        atomic.Int64
}

// NewPacer returns a pacer targeting opsPerSec operations per second,
// clock running from construction.
func NewPacer(opsPerSec float64) (*Pacer, error) {
	if opsPerSec <= 0 {
		return nil, fmt.Errorf("workload: target rate must be > 0, got %v", opsPerSec)
	}
	return &Pacer{
		interval: time.Duration(float64(time.Second) / opsPerSec),
		start:    time.Now(),
	}, nil
}

// Wait blocks until the caller's slot is due and returns how far behind
// schedule the slot already was (0 when the generator is keeping up).
// The returned lag is the open-loop scheduling delay to add to the op's
// measured service time.
func (p *Pacer) Wait() time.Duration {
	i := p.n.Add(1) - 1
	due := p.start.Add(time.Duration(i) * p.interval)
	lag := time.Since(due)
	if lag < 0 {
		time.Sleep(-lag)
		return 0
	}
	return lag
}
