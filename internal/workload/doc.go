// Package workload generates key and operation streams for exercising the
// DHT's data plane.  The paper's model assumes uniform data distributions
// and no hotspots (§5); the generators here provide that uniform regime plus
// the skewed (zipfian) and sequential regimes the paper lists as future
// work, so the repository can measure how the balancement behaves when its
// assumptions are stretched.
package workload
