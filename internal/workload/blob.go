package workload

import (
	"fmt"
	"math/rand"
)

// ChunkKeys lists the chunk keys a blob of totalSize bytes occupies
// when stored in chunkSize pieces under the given base key: base/c0000,
// base/c0001, ...  The fixed-width suffix keeps chunk order equal to
// lexical order.
func ChunkKeys(base string, totalSize, chunkSize int) []string {
	n := (totalSize + chunkSize - 1) / chunkSize
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%s/c%04d", base, i)
	}
	return keys
}

// ChunkOps splits one large value into chunked Put ops — the pattern
// real deployments use for blobs bigger than a single record.  Each
// chunk is chunkSize bytes of rng-derived data except a possibly short
// tail; the ops are ordered and their keys match ChunkKeys.
func ChunkOps(rng *rand.Rand, base string, totalSize, chunkSize int) ([]Op, error) {
	if rng == nil {
		return nil, fmt.Errorf("workload: rng must not be nil")
	}
	if totalSize < 1 || chunkSize < 1 {
		return nil, fmt.Errorf("workload: blob sizes must be ≥ 1, got total=%d chunk=%d", totalSize, chunkSize)
	}
	keys := ChunkKeys(base, totalSize, chunkSize)
	ops := make([]Op, len(keys))
	left := totalSize
	for i, k := range keys {
		sz := chunkSize
		if left < sz {
			sz = left
		}
		left -= sz
		val := make([]byte, sz)
		rng.Read(val) // never fails per math/rand contract
		ops[i] = Op{Kind: Put, Key: k, Value: val}
	}
	return ops, nil
}
