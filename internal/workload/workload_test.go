package workload

import (
	"math/rand"
	"strings"
	"testing"
)

func TestUniformValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewUniform(rng, 0); err == nil {
		t.Fatal("n=0 must fail")
	}
	if _, err := NewUniform(nil, 10); err == nil {
		t.Fatal("nil rng must fail")
	}
}

func TestUniformCoversSpace(t *testing.T) {
	u, err := NewUniform(rand.New(rand.NewSource(2)), 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		seen[u.Next()] = true
	}
	if len(seen) != 8 {
		t.Fatalf("saw %d distinct keys, want 8", len(seen))
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(rand.New(rand.NewSource(3)), 1.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[z.Next()]++
	}
	// The most popular key must dominate heavily under s=1.5.
	if counts["key-00000000"] < 5000 {
		t.Fatalf("zipf head count = %d, expected heavy skew", counts["key-00000000"])
	}
	if _, err := NewZipf(nil, 1.5, 10); err == nil {
		t.Fatal("nil rng must fail")
	}
	if _, err := NewZipf(rand.New(rand.NewSource(4)), 0.9, 10); err == nil {
		t.Fatal("s ≤ 1 must fail")
	}
	if _, err := NewZipf(rand.New(rand.NewSource(4)), 1.5, 0); err == nil {
		t.Fatal("n=0 must fail")
	}
}

func TestSequential(t *testing.T) {
	s := NewSequential("pfx")
	if got := s.Next(); got != "pfx-00000000" {
		t.Fatalf("first key = %q", got)
	}
	if got := s.Next(); got != "pfx-00000001" {
		t.Fatalf("second key = %q", got)
	}
	if !strings.HasPrefix(s.Next(), "pfx-") {
		t.Fatal("prefix not honoured")
	}
}

func TestMixProportions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	keys := NewSequential("k")
	m, err := NewMix(rng, keys, 0.3, 0.1, 16)
	if err != nil {
		t.Fatal(err)
	}
	var puts, dels, gets int
	for i := 0; i < 10000; i++ {
		op := m.Next()
		switch op.Kind {
		case Put:
			puts++
			if len(op.Value) != 16 {
				t.Fatalf("value size = %d", len(op.Value))
			}
		case Delete:
			dels++
		case Get:
			gets++
			if op.Value != nil {
				t.Fatal("get must carry no value")
			}
		}
	}
	if puts < 2700 || puts > 3300 {
		t.Fatalf("puts = %d, want ≈3000", puts)
	}
	if dels < 800 || dels > 1200 {
		t.Fatalf("dels = %d, want ≈1000", dels)
	}
	if gets < 5700 || gets > 6300 {
		t.Fatalf("gets = %d, want ≈6000", gets)
	}
}

func TestMixValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys := NewSequential("k")
	for _, bad := range []struct{ put, del float64 }{{-0.1, 0}, {0, -0.1}, {0.6, 0.5}} {
		if _, err := NewMix(rng, keys, bad.put, bad.del, 8); err == nil {
			t.Errorf("mix %v must fail", bad)
		}
	}
	if _, err := NewMix(nil, keys, 0.5, 0, 8); err == nil {
		t.Fatal("nil rng must fail")
	}
	if _, err := NewMix(rng, nil, 0.5, 0, 8); err == nil {
		t.Fatal("nil keys must fail")
	}
	if _, err := NewMix(rng, keys, 0.5, 0, -1); err == nil {
		t.Fatal("negative value size must fail")
	}
}
