package workload

import (
	"fmt"
	"math/rand"
)

// MixRatios are YCSB-style operation proportions.  Reads fill whatever
// the named fractions leave over, so the zero value is a read-only
// workload (YCSB C).
type MixRatios struct {
	// Update is the fraction of ops that overwrite an existing key.
	Update float64
	// Insert is the fraction of ops that put a fresh, never-seen key
	// (drawn from a sequential tail, as YCSB's insert stream does).
	Insert float64
	// Scan is the fraction of ops that read ScanLen consecutive keys.
	Scan float64
	// Delete is the fraction of ops that delete a key.
	Delete float64
}

// The classic YCSB core-workload mixes.
//
// YCSBA is the update-heavy mix (50% reads, 50% updates), YCSBB the
// read-mostly mix (95/5), YCSBC read-only, and YCSBE the short-scan mix
// (95% scans, 5% inserts).
func YCSBA() MixRatios { return MixRatios{Update: 0.5} }
func YCSBB() MixRatios { return MixRatios{Update: 0.05} }
func YCSBC() MixRatios { return MixRatios{} }
func YCSBE() MixRatios { return MixRatios{Insert: 0.05, Scan: 0.95} }

func (r MixRatios) check() error {
	for _, f := range []float64{r.Update, r.Insert, r.Scan, r.Delete} {
		if f < 0 {
			return fmt.Errorf("workload: negative mix fraction %v", f)
		}
	}
	if s := r.Update + r.Insert + r.Scan + r.Delete; s > 1+1e-9 {
		return fmt.Errorf("workload: mix fractions sum to %v > 1", s)
	}
	return nil
}

// Gen generates a YCSB-style operation stream: keys from any KeyGen
// (zipfian for hotspots, uniform for flat load), operation kinds in the
// given ratios, fixed-size random values, and a private sequential tail
// for inserts.  Two Gens built from equally-seeded rngs and generators
// emit identical streams.
type Gen struct {
	rng       *rand.Rand
	keys      KeyGen
	ratios    MixRatios
	valueSize int
	scanLen   int
	inserts   *Sequential
}

// NewGen returns a generator over the given key stream.  valueSize
// bytes of rng-derived data back every Put; scanLen is the span of each
// Scan (ignored when ratios.Scan is 0).
func NewGen(rng *rand.Rand, keys KeyGen, ratios MixRatios, valueSize, scanLen int) (*Gen, error) {
	if rng == nil || keys == nil {
		return nil, fmt.Errorf("workload: rng and keys must not be nil")
	}
	if err := ratios.check(); err != nil {
		return nil, err
	}
	if valueSize < 0 {
		return nil, fmt.Errorf("workload: value size must be ≥ 0, got %d", valueSize)
	}
	if ratios.Scan > 0 && scanLen < 1 {
		return nil, fmt.Errorf("workload: scan mix needs scanLen ≥ 1, got %d", scanLen)
	}
	return &Gen{
		rng: rng, keys: keys, ratios: ratios,
		valueSize: valueSize, scanLen: scanLen,
		inserts: NewSequential("ins"),
	}, nil
}

// Next returns the next operation in the stream.
func (g *Gen) Next() Op {
	r := g.rng.Float64()
	switch {
	case r < g.ratios.Update:
		val := make([]byte, g.valueSize)
		g.rng.Read(val) // never fails per math/rand contract
		return Op{Kind: Put, Key: g.keys.Next(), Value: val}
	case r < g.ratios.Update+g.ratios.Insert:
		val := make([]byte, g.valueSize)
		g.rng.Read(val)
		return Op{Kind: Put, Key: g.inserts.Next(), Value: val}
	case r < g.ratios.Update+g.ratios.Insert+g.ratios.Scan:
		return Op{Kind: Scan, Key: g.keys.Next(), ScanLen: g.scanLen}
	case r < g.ratios.Update+g.ratios.Insert+g.ratios.Scan+g.ratios.Delete:
		return Op{Kind: Delete, Key: g.keys.Next()}
	default:
		return Op{Kind: Get, Key: g.keys.Next()}
	}
}
