package workload

import (
	"fmt"
	"math/rand"
)

// KeyGen produces a stream of keys.
type KeyGen interface {
	// Next returns the next key in the stream.
	Next() string
}

// Uniform draws keys uniformly from a space of n distinct keys.
type Uniform struct {
	rng *rand.Rand
	n   int
}

// NewUniform returns a uniform generator over n distinct keys.
func NewUniform(rng *rand.Rand, n int) (*Uniform, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: key space must be ≥ 1, got %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: rng must not be nil")
	}
	return &Uniform{rng: rng, n: n}, nil
}

// Next implements KeyGen.
func (u *Uniform) Next() string { return fmt.Sprintf("key-%08d", u.rng.Intn(u.n)) }

// Zipf draws keys with zipfian popularity (hotspots): key ranks follow a
// Zipf(s, 1) distribution over n keys.
type Zipf struct {
	z *rand.Zipf
}

// NewZipf returns a zipfian generator with exponent s > 1 over n keys.
func NewZipf(rng *rand.Rand, s float64, n int) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: key space must be ≥ 1, got %d", n)
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf exponent must be > 1, got %v", s)
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: rng must not be nil")
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	if z == nil {
		return nil, fmt.Errorf("workload: invalid zipf parameters s=%v n=%d", s, n)
	}
	return &Zipf{z: z}, nil
}

// Next implements KeyGen.
func (z *Zipf) Next() string { return fmt.Sprintf("key-%08d", z.z.Uint64()) }

// Sequential produces key-0, key-1, ... — the worst case for range-naive
// hash distribution checks and the best case for cache warmup.
type Sequential struct {
	prefix string
	next   int
}

// NewSequential returns a sequential generator with the given key prefix.
func NewSequential(prefix string) *Sequential { return &Sequential{prefix: prefix} }

// Next implements KeyGen.
func (s *Sequential) Next() string {
	k := fmt.Sprintf("%s-%08d", s.prefix, s.next)
	s.next++
	return k
}

// OpKind is one data-plane operation type.
type OpKind int

// Operation kinds.
const (
	Get OpKind = iota
	Put
	Delete
	// Scan reads ScanLen consecutive keys starting at Key (YCSB
	// workload E); against a hash-partitioned store the harness expands
	// it into a multi-get over the successor keys.
	Scan
)

// String names the kind for tables and verdicts.
func (k OpKind) String() string {
	switch k {
	case Get:
		return "get"
	case Put:
		return "put"
	case Delete:
		return "delete"
	case Scan:
		return "scan"
	}
	return fmt.Sprintf("opkind(%d)", int(k))
}

// Op is one operation against the DHT.
type Op struct {
	Kind  OpKind
	Key   string
	Value []byte
	// ScanLen is the number of consecutive keys a Scan covers (0 for
	// other kinds).
	ScanLen int
}

// Mix generates operations with the given proportions over a key stream.
type Mix struct {
	rng       *rand.Rand
	keys      KeyGen
	putFrac   float64
	delFrac   float64
	valueSize int
}

// NewMix returns a generator producing puts, deletes and gets in the given
// fractions (gets fill the remainder), with valueSize-byte values.
func NewMix(rng *rand.Rand, keys KeyGen, putFrac, delFrac float64, valueSize int) (*Mix, error) {
	if rng == nil || keys == nil {
		return nil, fmt.Errorf("workload: rng and keys must not be nil")
	}
	if putFrac < 0 || delFrac < 0 || putFrac+delFrac > 1 {
		return nil, fmt.Errorf("workload: invalid mix put=%v del=%v", putFrac, delFrac)
	}
	if valueSize < 0 {
		return nil, fmt.Errorf("workload: value size must be ≥ 0, got %d", valueSize)
	}
	return &Mix{rng: rng, keys: keys, putFrac: putFrac, delFrac: delFrac, valueSize: valueSize}, nil
}

// Next returns the next operation.
func (m *Mix) Next() Op {
	key := m.keys.Next()
	r := m.rng.Float64()
	switch {
	case r < m.putFrac:
		val := make([]byte, m.valueSize)
		m.rng.Read(val) // never fails per math/rand contract
		return Op{Kind: Put, Key: key, Value: val}
	case r < m.putFrac+m.delFrac:
		return Op{Kind: Delete, Key: key}
	default:
		return Op{Kind: Get, Key: key}
	}
}
