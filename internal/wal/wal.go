package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncMode selects the durability class of acknowledged appends.
type FsyncMode int

const (
	// FsyncOff never calls fsync: appends are buffered and flushed to the
	// OS in the background.  Survives a graceful close, not a crash.
	FsyncOff FsyncMode = iota
	// FsyncBatch group-commits: WaitDurable returns only after an fsync
	// covering the record, and concurrent waiters share one fsync.
	FsyncBatch
	// FsyncAlways syncs every flush round regardless of waiters.
	FsyncAlways
)

// ParseFsyncMode parses the -fsync flag values "off", "batch", "always".
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "off":
		return FsyncOff, nil
	case "batch":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync mode %q (want off, batch or always)", s)
}

func (m FsyncMode) String() string {
	switch m {
	case FsyncOff:
		return "off"
	case FsyncBatch:
		return "batch"
	case FsyncAlways:
		return "always"
	}
	return fmt.Sprintf("FsyncMode(%d)", int(m))
}

// Options parameterizes a log.
type Options struct {
	// Fsync selects the durability class.  The zero value is FsyncOff:
	// acknowledged records are NOT synced — callers that need ack-implies-
	// on-disk must pick FsyncBatch or FsyncAlways explicitly.
	Fsync FsyncMode
	// SegmentBytes rotates to a fresh segment once the current one
	// exceeds this size (default 16 MiB).
	SegmentBytes int64
	// BufferBytes sizes the append buffer handed to the flusher in one
	// piece (default 256 KiB).
	BufferBytes int
	// Logger receives recovery and I/O-failure events.  Nil discards.
	Logger *slog.Logger
	// Faults optionally injects disk faults (slow or failing fsyncs) into
	// the flush path — the nemesis hook for fault-tolerance scenarios.
	// Nil means a healthy disk.
	Faults *Faults
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.BufferBytes == 0 {
		o.BufferBytes = 256 << 10
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.DiscardHandler)
	}
	return o
}

// Stats counts a log's lifetime work; fields are atomic so samplers never
// contend with appenders.
type Stats struct {
	Appends     atomic.Int64 // records appended
	Bytes       atomic.Int64 // payload bytes appended (framing excluded)
	Fsyncs      atomic.Int64 // fsync calls issued
	FsyncErrors atomic.Int64 // failed fsyncs (real or injected); the batch re-buffers and retries
	Flushes     atomic.Int64 // flush rounds (buffered bytes handed to the OS)
	Rotations   atomic.Int64 // segment files opened after the first
	Truncated   atomic.Int64 // segment files deleted by TruncateThrough
	TornBytes   atomic.Int64 // bytes cut from the tail segment at recovery
	Replayed    atomic.Int64 // records handed to Replay callbacks
	SnapWrites  atomic.Int64 // snapshot files written (WriteSnapshot)
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Appends, Bytes, Fsyncs, FsyncErrors, Flushes int64
	Rotations, Truncated, TornBytes              int64
	Replayed, SnapWrites                         int64
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Appends: s.Appends.Load(), Bytes: s.Bytes.Load(),
		Fsyncs: s.Fsyncs.Load(), FsyncErrors: s.FsyncErrors.Load(),
		Flushes:   s.Flushes.Load(),
		Rotations: s.Rotations.Load(), Truncated: s.Truncated.Load(),
		TornBytes: s.TornBytes.Load(), Replayed: s.Replayed.Load(),
		SnapWrites: s.SnapWrites.Load(),
	}
}

// Fold accumulates another snapshot into this one.
func (a *StatsSnapshot) Fold(b StatsSnapshot) {
	a.Appends += b.Appends
	a.Bytes += b.Bytes
	a.Fsyncs += b.Fsyncs
	a.FsyncErrors += b.FsyncErrors
	a.Flushes += b.Flushes
	a.Rotations += b.Rotations
	a.Truncated += b.Truncated
	a.TornBytes += b.TornBytes
	a.Replayed += b.Replayed
	a.SnapWrites += b.SnapWrites
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const recHeaderLen = 8 // uint32 length + uint32 CRC

// maxRecord bounds one record's payload so a corrupt length prefix can
// never drive an unbounded allocation at replay (matches the transport
// frame limit).
const maxRecord = 256 << 20

// flushPollInterval is the FsyncOff flusher's cadence: long enough that
// a loaded snode coalesces thousands of records into one write syscall
// (per-record write() churn measurably taxes the serving path), short
// enough that an acknowledged-but-unsynced record reaches the OS within
// a few milliseconds.
const flushPollInterval = 5 * time.Millisecond

// Log is an append-only, segmented write-ahead log.  Append and
// WaitDurable are safe for concurrent use; Replay and TruncateThrough
// must not race appends of the segments they touch (the cluster layer
// replays before serving and truncates only fully-snapshotted segments).
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // current tail segment; guarded by mu
	fSize    int64    // bytes written to f (buffered included); guarded by mu
	firstSeq uint64   // first sequence of the current segment; guarded by mu
	nextSeq  uint64   // sequence the next Append returns; guarded by mu
	buf      []byte   // records buffered since the last flush; guarded by mu
	spare    []byte   // recycled flush slab (swapped with buf each round); guarded by mu
	closed   bool     // guarded by mu
	failed   bool     // fail-stop after an unrecoverable I/O error; guarded by mu

	// Group commit: appenders publish the seq they need durable and wait
	// on cond; the flusher goroutine flushes (and fsyncs, per mode) and
	// advances durableSeq.  The flusher itself is woken through the wake
	// channel, NOT the cond — an append must never pay a broadcast that
	// also wakes every durability waiter.
	cond       *sync.Cond    // broadcasts durableSeq advances and close
	wake       chan struct{} // capacity 1: flusher work signal
	durableSeq uint64        // highest seq known flushed (+synced, per mode); guarded by mu
	flushedSeq uint64        // highest seq handed to the OS; guarded by mu
	done       chan struct{}

	// flushMu serializes flushThrough: the buffer grab and the file write
	// happen under it, so records reach the file in append order even when
	// Sync races the flusher goroutine.
	flushMu sync.Mutex

	log   *slog.Logger
	stats Stats
}

// segName formats the canonical segment file name for a first sequence.
func segName(firstSeq uint64) string {
	return fmt.Sprintf("%020d.seg", firstSeq)
}

// parseSegName extracts a segment's first sequence from its file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment first-sequences present in dir,
// ascending.
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range ents {
		if seq, ok := parseSegName(e.Name()); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// Open opens (creating if needed) the log in dir, recovering the tail:
// the last segment is scanned record by record and truncated at the
// first torn or corrupt frame, so appends resume exactly after the last
// complete record.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:     dir,
		opts:    opts,
		nextSeq: 1,
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
		log:     opts.Logger,
	}
	l.cond = sync.NewCond(&l.mu)
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if len(segs) > 0 {
		// Count the records of every non-tail segment (they were sealed by
		// a rotation, but a crash can still tear the then-tail — scanning
		// is cheap at open), then recover the tail.
		for i, first := range segs {
			path := filepath.Join(dir, segName(first))
			n, validLen, serr := scanSegment(path)
			if serr != nil {
				return nil, serr
			}
			if i == len(segs)-1 {
				// Tail: cut any torn bytes so appends land after the last
				// complete record.
				if fi, err := os.Stat(path); err == nil && fi.Size() > validLen {
					l.stats.TornBytes.Add(fi.Size() - validLen)
					if err := os.Truncate(path, validLen); err != nil {
						return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
					}
					l.log.Info("wal: truncated torn tail",
						"segment", segName(first), "bytes", fi.Size()-validLen)
				}
				l.firstSeq = first
				l.nextSeq = first + uint64(n)
				l.fSize = validLen
			} else {
				l.nextSeq = first + uint64(n)
			}
		}
		f, err := os.OpenFile(filepath.Join(dir, segName(l.firstSeq)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.f = f
	} else {
		if err := l.openSegmentLocked(1); err != nil {
			return nil, err
		}
	}
	go l.flusher()
	return l, nil
}

// scanSegment walks one segment file, returning the number of complete
// records and the byte offset right after the last one.  A torn or
// corrupt frame ends the scan cleanly (it is not an error — recovery
// truncates there).
func scanSegment(path string) (records int, validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [recHeaderLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return records, validLen, nil // clean EOF or torn header
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		crc := binary.BigEndian.Uint32(hdr[4:8])
		if n > maxRecord {
			return records, validLen, nil // corrupt length
		}
		if uint32(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return records, validLen, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return records, validLen, nil // corrupt payload
		}
		records++
		validLen += int64(recHeaderLen) + int64(n)
	}
}

// openSegmentLocked starts a fresh segment whose first record will be
// firstSeq, fsyncing the directory so the new file's entry survives a
// system crash — records fsynced into a segment whose directory entry
// never reached disk would vanish with it.  Caller holds l.mu (or owns
// the log exclusively, at Open).
func (l *Log) openSegmentLocked(firstSeq uint64) error {
	// O_APPEND is load-bearing: the flush error path truncates the file to
	// undo a write whose fsync failed, and the retry must land at the
	// truncated end — a plain fd would keep its old offset and leave a
	// zero-filled hole that replays as garbage.
	f, err := os.OpenFile(filepath.Join(l.dir, segName(firstSeq)), os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		_ = f.Close()
		return err
	}
	if l.f != nil {
		l.stats.Rotations.Add(1)
	}
	l.f = f
	l.fSize = 0
	l.firstSeq = firstSeq
	return nil
}

// NextSeq returns the sequence the next Append will be assigned — the
// snapshot cut point: every record at or above it is outside the
// snapshot and must replay on top.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Mode returns the configured fsync mode.
func (l *Log) Mode() FsyncMode { return l.opts.Fsync }

// Stats exposes the log's counters.
func (l *Log) Stats() *Stats { return &l.stats }

// Append frames payload as one record, buffers it, and returns its
// sequence.  It never blocks on I/O (only on the log's own mutex), so it
// is safe to call under fine-grained data locks; durability is claimed
// separately via WaitDurable.  Appending to a closed log returns 0.
func (l *Log) Append(payload []byte) uint64 {
	return l.AppendWith(func(buf []byte) []byte { return append(buf, payload...) })
}

// AppendWith is Append with the payload encoded by enc DIRECTLY into the
// log's buffer — the hot-path variant that skips the intermediate
// allocation and copy a pre-encoded []byte would cost.  enc must only
// append to (and return) the slice it is given.
func (l *Log) AppendWith(enc func(buf []byte) []byte) uint64 {
	l.mu.Lock()
	if l.closed || l.failed {
		l.mu.Unlock()
		return 0
	}
	seq := l.nextSeq
	l.nextSeq++
	start := len(l.buf)
	l.buf = append(l.buf, 0, 0, 0, 0, 0, 0, 0, 0) // header back-patched below
	l.buf = enc(l.buf)
	payload := l.buf[start+recHeaderLen:]
	binary.BigEndian.PutUint32(l.buf[start:], uint32(len(payload)))
	binary.BigEndian.PutUint32(l.buf[start+4:], crc32.Checksum(payload, crcTable))
	l.stats.Appends.Add(1)
	l.stats.Bytes.Add(int64(len(payload)))
	l.mu.Unlock()
	// FsyncOff appends don't wake the flusher: nobody awaits the ack, so
	// the flusher polls on a millisecond cadence instead — the append
	// path stays free of channel operations and goroutine wakeups.
	if l.opts.Fsync != FsyncOff {
		l.kick()
	}
	if l.opts.Fsync == FsyncAlways {
		_ = l.flushThrough(seq, true)
	}
	return seq
}

// kick wakes the flusher without blocking (the channel holds one
// pending signal; a lost extra signal is fine — the flusher drains the
// whole buffer every round).
func (l *Log) kick() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// WaitDurable blocks until the record at seq satisfies the log's
// durability class: immediately under FsyncOff, after a covering fsync
// under FsyncBatch/FsyncAlways.  Returns false if the log closed first.
func (l *Log) WaitDurable(seq uint64) bool {
	if l.opts.Fsync == FsyncOff || seq == 0 {
		return seq != 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durableSeq < seq && !l.closed && !l.failed {
		l.cond.Wait()
	}
	return l.durableSeq >= seq
}

// Sync forces everything appended so far to disk (fsync regardless of
// mode) — used at snapshot barriers and graceful close.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.nextSeq - 1
	l.mu.Unlock()
	return l.flushThrough(target, true)
}

// flusher is the group-commit loop: it waits for buffered records, hands
// them to the OS in one write, fsyncs per mode, and advances durableSeq
// for every waiter at once.  In FsyncOff mode — where nobody waits on
// acks — it POLLS on a millisecond cadence instead of being woken per
// append: a whole millisecond of appends coalesces into one write
// syscall, and the append path never touches a channel or wakes a
// goroutine.
func (l *Log) flusher() {
	defer close(l.done)
	poll := l.opts.Fsync == FsyncOff
	for {
		l.mu.Lock()
		for len(l.buf) == 0 && !l.closed {
			l.mu.Unlock()
			if poll {
				time.Sleep(flushPollInterval)
			} else {
				<-l.wake
			}
			l.mu.Lock()
		}
		if l.closed && len(l.buf) == 0 {
			l.mu.Unlock()
			return
		}
		if poll && len(l.buf) < l.opts.BufferBytes && !l.closed {
			// Let the in-progress burst finish accumulating.
			l.mu.Unlock()
			time.Sleep(flushPollInterval)
			l.mu.Lock()
		}
		if l.failed {
			l.mu.Unlock()
			return // fail-stopped: nothing can be made durable anymore
		}
		target := l.nextSeq - 1
		l.mu.Unlock()
		if err := l.flushThrough(target, !poll); err != nil {
			// Transient I/O error: the records went back to the buffer;
			// back off before retrying instead of spinning on the error.
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// flushThrough writes every record appended up to seq target to the OS
// (rotating segments as size demands) and optionally fsyncs, then
// advances the durable watermark.  flushMu keeps concurrent callers
// (the flusher goroutine and Sync) writing buffers in append order.
//
// A failed write or sync must not lose records that were never acked as
// durable but WILL be covered by a later durableSeq advance: the file is
// truncated back to its pre-write size (clearing any partial write) and
// the unwritten records go back to the FRONT of the buffer, so the next
// round retries them in order.  If even the truncate fails, the log
// fail-stops: no further append is accepted and every durability wait
// fails, so nothing can be acknowledged against a file of unknown state.
func (l *Log) flushThrough(target uint64, sync bool) error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	l.mu.Lock()
	if l.failed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log failed on an earlier I/O error")
	}
	if l.flushedSeq >= target && (!sync || l.durableSeq >= target) {
		l.mu.Unlock()
		return nil
	}
	buf := l.buf
	l.buf = l.spare[:0] // recycle the previous round's slab
	l.spare = nil
	f := l.f
	prevSize := l.fSize
	flushed := l.nextSeq - 1
	l.mu.Unlock()

	var err error
	if len(buf) > 0 {
		_, err = f.Write(buf)
		l.stats.Flushes.Add(1)
	}
	if err == nil && sync {
		// Nemesis hook: an injected failure takes the error path below
		// (truncate + re-buffer + retry) before the real fsync ever runs;
		// an injected stall just makes durability late, never wrong.
		var d time.Duration
		if d, err = l.opts.Faults.fsyncFault(); err == nil {
			if d > 0 {
				time.Sleep(d)
			}
			err = f.Sync()
			l.stats.Fsyncs.Add(1)
		}
		if err != nil {
			l.stats.FsyncErrors.Add(1)
		}
	}

	l.mu.Lock()
	if err == nil {
		l.fSize = prevSize + int64(len(buf))
		if cap(buf) <= 4*l.opts.BufferBytes {
			l.spare = buf[:0] // hand the slab back for the next round
		}
		if flushed > l.flushedSeq {
			l.flushedSeq = flushed
		}
		if sync && flushed > l.durableSeq {
			l.durableSeq = flushed
		}
		if l.fSize >= l.opts.SegmentBytes && !l.closed {
			// Seal the segment.  The new one's name must be the sequence of
			// the first record it will actually hold — the first UNFLUSHED
			// record — not nextSeq: records appended while this round's
			// write was in flight are still buffered and land in the new
			// segment.  (Recovery derives every record's sequence from the
			// segment name, so a wrong name would mislabel the replay.)
			old := l.f
			if rerr := l.openSegmentLocked(l.flushedSeq + 1); rerr == nil {
				_ = old.Close()
			}
		}
	} else if len(buf) > 0 {
		// Undo any partial write, then restore the records ahead of
		// whatever was appended meanwhile.  (O_APPEND writes continue at
		// the truncated end.)
		if terr := f.Truncate(prevSize); terr != nil {
			l.failed = true
			l.log.Error("wal: fail-stop: flush failed and partial write could not be undone",
				"flush_err", err, "truncate_err", terr)
		} else {
			l.buf = append(buf, l.buf...)
			l.log.Warn("wal: flush failed, records re-buffered for retry", "err", err)
		}
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	return nil
}

// Replay streams every complete record with sequence ≥ start, in order,
// to fn.  A torn tail ends the stream cleanly.  fn returning an error
// aborts the replay with that error.
func (l *Log) Replay(start uint64, fn func(seq uint64, payload []byte) error) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for i, first := range segs {
		// Skip segments that end before start: a segment's records span
		// [first, nextSegFirst); only the last segment has an open end.
		if i+1 < len(segs) && segs[i+1] <= start {
			continue
		}
		if err := l.replaySegment(filepath.Join(l.dir, segName(first)), first, start, fn); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) replaySegment(path string, firstSeq, start uint64, fn func(seq uint64, payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	var hdr [recHeaderLen]byte
	seq := firstSeq
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil // clean EOF or torn header
		}
		n := binary.BigEndian.Uint32(hdr[0:4])
		crc := binary.BigEndian.Uint32(hdr[4:8])
		if n > maxRecord {
			return nil
		}
		if uint32(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return nil
		}
		if seq >= start {
			l.stats.Replayed.Add(1)
			if err := fn(seq, payload); err != nil {
				return err
			}
		}
		seq++
	}
}

// TruncateThrough deletes every sealed segment whose records all have
// sequence ≤ seq — the log-compaction step after a snapshot covering
// those records landed.  The tail segment is never deleted.
func (l *Log) TruncateThrough(seq uint64) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for i, first := range segs {
		if i+1 >= len(segs) {
			break // tail stays
		}
		if segs[i+1]-1 > seq {
			break // segment holds records beyond seq
		}
		if err := os.Remove(filepath.Join(l.dir, segName(first))); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.stats.Truncated.Add(1)
	}
	return nil
}

// Close flushes and fsyncs everything buffered, then closes the log.
// Pending WaitDurable calls are released.
func (l *Log) Close() error {
	err := l.Sync()
	l.shutdown()
	return err
}

// Abandon closes the log WITHOUT flushing its userspace buffer —
// simulating a crash: only bytes already handed to the OS survive.
// Records buffered but never flushed are lost, exactly like a process
// dying mid-append; under FsyncBatch no acknowledged (WaitDurable'd)
// record can be among them.
func (l *Log) Abandon() {
	l.mu.Lock()
	l.buf = nil // drop unflushed records on the floor
	l.mu.Unlock()
	l.shutdown()
}

func (l *Log) shutdown() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		l.cond.Broadcast()
	}
	l.mu.Unlock()
	l.kick()
	<-l.done
	l.mu.Lock()
	if l.f != nil {
		_ = l.f.Close()
		l.f = nil
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}
