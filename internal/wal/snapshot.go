package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot files.  A snapshot is one opaque payload (the cluster layer
// encodes a bucket, or the snode's metadata, with its wire helpers)
// stored with the same CRC framing as a log record:
//
//	uint32  big-endian payload length
//	uint32  big-endian CRC-32C of the payload
//	...     payload
//
// Writes are atomic: the file is written and fsynced under a temporary
// name, then renamed into place and the directory fsynced, so a crash
// mid-snapshot leaves either the previous file or the new one — never a
// half-written hybrid.  Readers verify length and CRC; a corrupt file
// returns an error and the caller falls back to replaying more log.

// WriteSnapshot atomically writes payload to path with CRC framing.
func (s *Stats) WriteSnapshot(path string, payload []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	var hdr [recHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	_, err = f.Write(hdr[:])
	if err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return err
	}
	if s != nil {
		s.SnapWrites.Add(1)
	}
	return nil
}

// ReadSnapshot reads and verifies a snapshot file written by
// WriteSnapshot.
func ReadSnapshot(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot: %w", err)
	}
	if len(data) < recHeaderLen {
		return nil, fmt.Errorf("wal: snapshot %s: shorter than its header", path)
	}
	n := binary.BigEndian.Uint32(data[0:4])
	crc := binary.BigEndian.Uint32(data[4:8])
	if uint64(n) != uint64(len(data)-recHeaderLen) {
		return nil, fmt.Errorf("wal: snapshot %s: length mismatch (header %d, file %d)", path, n, len(data)-recHeaderLen)
	}
	payload := data[recHeaderLen:]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("wal: snapshot %s: CRC mismatch", path)
	}
	return payload, nil
}

// syncDir fsyncs a directory so renames within it survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	return nil
}
