package wal

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is a nemesis disk-fault plan for a log: slow fsyncs (base ±
// jitter) and probabilistic fsync failures, both drawn from one seeded
// *rand.Rand so a scenario's disk behaviour is reproducible from a
// printed seed.  Attach via Options.Faults; rules may change live.
//
// An injected fsync failure takes the log's ordinary flush-error path:
// the written bytes are truncated back off the segment, the records
// re-buffer at the front of the queue, and the next flush round retries
// them in order — exactly what a transient EIO exercises.  A slow fsync
// sleeps in the flush path while holding only the flush lock, so
// appends continue and only durability waits (and therefore write acks
// under FsyncBatch/FsyncAlways) stretch.
type Faults struct {
	seed int64
	// ruled counts installed rules so the per-fsync check is one atomic
	// load while the plan is empty.
	ruled atomic.Int64

	mu         sync.Mutex
	rng        *rand.Rand    // guarded by mu
	slowBase   time.Duration // guarded by mu
	slowJitter time.Duration // guarded by mu
	errRate    float64       // guarded by mu
}

// ErrInjectedFsync is the error surfaced by an injected fsync failure.
var ErrInjectedFsync = errors.New("wal: injected fsync failure")

// NewFaults returns an empty disk-fault plan whose randomness derives
// from seed alone.
func NewFaults(seed int64) *Faults {
	return &Faults{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the seed the plan was built from.
func (f *Faults) Seed() int64 { return f.seed }

// SetSlowFsync makes every fsync take an extra base ± jitter (uniform).
// Zero base and jitter removes the rule.
func (f *Faults) SetSlowFsync(base, jitter time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.slowBase, f.slowJitter = base, jitter
	f.recountLocked()
}

// SetFsyncErrorRate makes each fsync independently fail with probability
// p (the record batch re-buffers and retries).  p = 0 removes the rule.
func (f *Faults) SetFsyncErrorRate(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.errRate = p
	f.recountLocked()
}

// Heal removes every rule: the disk is healthy again.
func (f *Faults) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.slowBase, f.slowJitter, f.errRate = 0, 0, 0
	f.recountLocked()
}

// recountLocked refreshes the fast-path rule gate.  Caller holds f.mu.
func (f *Faults) recountLocked() {
	n := int64(0)
	if f.slowBase > 0 || f.slowJitter > 0 {
		n++
	}
	if f.errRate > 0 {
		n++
	}
	f.ruled.Store(n)
}

// fsyncFault decides one fsync's fate: how long to stall first, and
// whether to fail instead of syncing.  Nil and empty plans answer
// without locking.
func (f *Faults) fsyncFault() (delay time.Duration, err error) {
	if f == nil || f.ruled.Load() == 0 {
		return 0, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.errRate > 0 && f.rng.Float64() < f.errRate {
		return 0, ErrInjectedFsync
	}
	delay = f.slowBase
	if f.slowJitter > 0 {
		delay += time.Duration((2*f.rng.Float64() - 1) * float64(f.slowJitter))
	}
	if delay < 0 {
		delay = 0
	}
	return delay, nil
}
