// Package wal implements the crash-durability primitives under the
// cluster's snode storage: a segmented, CRC-framed write-ahead log with
// group-commit fsync, and atomic snapshot files.
//
// The log is a sequence of records, each assigned a monotonically
// increasing sequence number starting at 1.  Records live in segment
// files named by the sequence of their first record
// (wal/00000000000000000001.seg), so replay order and truncation points
// fall out of a directory listing.  Every record is framed as
//
//	uint32  big-endian payload length
//	uint32  big-endian CRC-32C (Castagnoli) of the payload
//	...     payload
//
// mirroring the transport frame codec's length-prefixed discipline
// (internal/cluster/transport).  The payload itself is opaque here — the
// cluster layer encodes typed records with the same varint helpers it
// uses on the wire (see internal/cluster/walrec.go and docs/WIRE.md).
//
// Durability is a two-step contract shaped for a data path that appends
// under fine-grained locks: Append buffers the record and returns its
// sequence immediately (safe to call under a bucket lock — it only takes
// the log's own mutex), and WaitDurable(seq) blocks, outside any lock,
// until the record's durability class is satisfied:
//
//   - FsyncOff: nothing is awaited; a background flusher moves bytes to
//     the OS promptly, but an acknowledged write may die with the process.
//   - FsyncBatch: WaitDurable blocks until an fsync covering seq
//     completed.  Concurrent committers share one fsync (group commit),
//     so the fsync rate scales with flush rounds, not with writers.
//   - FsyncAlways: like FsyncBatch, but the flusher syncs on every round
//     even when no committer is waiting.
//
// Recovery tolerates torn writes: Open scans the tail segment and
// truncates it at the first record whose length or CRC does not check
// out, so a crash mid-append never poisons the log — everything up to
// the last complete record replays, and new appends continue from there.
package wal
