package wal

import (
	"fmt"
	"testing"
)

// BenchmarkAppend measures the hot-path cost of journaling one record
// (buffering + CRC + wake) under each fsync mode, with concurrent
// appenders as on a loaded snode.
func BenchmarkAppend(b *testing.B) {
	for _, mode := range []FsyncMode{FsyncOff, FsyncBatch} {
		b.Run("fsync="+mode.String(), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{Fsync: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, 100)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					seq := l.Append(payload)
					if mode != FsyncOff {
						l.WaitDurable(seq)
					}
				}
			})
		})
	}
}

// BenchmarkAppendWith is BenchmarkAppend through the encode-in-place
// fast path the cluster's batch loop uses.
func BenchmarkAppendWith(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Fsync: FsyncOff})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 100)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.AppendWith(func(buf []byte) []byte { return append(buf, payload...) })
		}
	})
}

var _ = fmt.Sprintf
