package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// collect replays the log from start into a slice of (seq, payload).
func collect(t *testing.T, l *Log, start uint64) (seqs []uint64, payloads [][]byte) {
	t.Helper()
	err := l.Replay(start, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, payloads
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		seq := l.Append(p)
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq %d", i, seq)
		}
	}
	if !l.WaitDurable(100) {
		t.Fatal("WaitDurable(100) failed")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seqs, payloads := collect(t, l2, 0)
	if len(seqs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(seqs))
	}
	for i := range seqs {
		if seqs[i] != uint64(i+1) || !bytes.Equal(payloads[i], want[i]) {
			t.Fatalf("record %d: seq %d payload %q", i, seqs[i], payloads[i])
		}
	}
	if got := l2.NextSeq(); got != 101 {
		t.Fatalf("NextSeq after reopen: %d, want 101", got)
	}
}

// tailSegment returns the path of the highest-numbered segment file.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return filepath.Join(dir, segName(segs[len(segs)-1]))
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Append([]byte(fmt.Sprintf("rec-%d", i)))
	}
	l.WaitDurable(10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail mid-record: drop the last 3 bytes.
	tail := tailSegment(t, dir)
	fi, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tail, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if torn := l2.Stats().TornBytes.Load(); torn == 0 {
		t.Fatal("expected torn bytes to be recorded")
	}
	seqs, _ := collect(t, l2, 0)
	if len(seqs) != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", len(seqs))
	}
	// Appends continue exactly after the last complete record.
	if seq := l2.Append([]byte("after-recovery")); seq != 10 {
		t.Fatalf("post-recovery append got seq %d, want 10", seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	seqs, payloads := collect(t, l3, 0)
	if len(seqs) != 10 || string(payloads[9]) != "after-recovery" {
		t.Fatalf("after re-append: %d records, last %q", len(seqs), payloads[len(payloads)-1])
	}
}

func TestCorruptCRCRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append([]byte(fmt.Sprintf("rec-%d", i)))
	}
	l.WaitDurable(5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the LAST record's payload.
	tail := tailSegment(t, dir)
	data, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(tail, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seqs, _ := collect(t, l2, 0)
	if len(seqs) != 4 {
		t.Fatalf("replayed %d records after CRC corruption, want 4", len(seqs))
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every flush round rotates.
	l, err := Open(dir, Options{Fsync: FsyncBatch, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		l.Append([]byte(fmt.Sprintf("record-payload-%03d", i)))
		l.WaitDurable(uint64(i + 1)) // force a flush (and rotation check) per record
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	// Truncate through seq 30: sealed segments entirely ≤ 30 disappear,
	// and replay from 31 still yields records 31..n.
	if err := l.TruncateThrough(30); err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, l, 31)
	if len(seqs) != n-30 || seqs[0] != 31 {
		t.Fatalf("replay from 31: %d records starting at %v", len(seqs), seqs[:1])
	}
	left, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) >= len(segs) {
		t.Fatalf("truncation deleted nothing: %d → %d segments", len(segs), len(left))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		each    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if seq == 0 {
					t.Errorf("append refused")
					return
				}
				if !l.WaitDurable(seq) {
					t.Errorf("WaitDurable(%d) failed", seq)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	appended := l.Stats().Appends.Load()
	fsyncs := l.Stats().Fsyncs.Load()
	if appended != writers*each {
		t.Fatalf("appended %d, want %d", appended, writers*each)
	}
	if fsyncs >= appended {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", fsyncs, appended)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seqs, _ := collect(t, l2, 0)
	if len(seqs) != writers*each {
		t.Fatalf("replayed %d, want %d", len(seqs), writers*each)
	}
}

func TestAbandonKeepsDurablePrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	const durable = 20
	for i := 0; i < durable; i++ {
		l.Append([]byte(fmt.Sprintf("acked-%d", i)))
	}
	if !l.WaitDurable(durable) {
		t.Fatal("WaitDurable failed")
	}
	// Unacknowledged tail, then crash.
	for i := 0; i < 100; i++ {
		l.Append([]byte(fmt.Sprintf("unacked-%d", i)))
	}
	l.Abandon()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seqs, _ := collect(t, l2, 0)
	if len(seqs) < durable {
		t.Fatalf("crash lost acknowledged records: %d < %d", len(seqs), durable)
	}
	// Whatever survived must be a contiguous prefix.
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("non-contiguous replay at %d: seq %d", i, seq)
		}
	}
}

func TestSnapshotRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	payload := []byte("some snapshot payload with structure")
	var st Stats
	if err := st.WriteSnapshot(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: %q", got)
	}
	if st.SnapWrites.Load() != 1 {
		t.Fatalf("SnapWrites = %d", st.SnapWrites.Load())
	}
	// Corrupt one payload byte: the read must fail, not mis-decode.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(path); err == nil {
		t.Fatal("corrupt snapshot read succeeded")
	}
}

func TestFsyncModes(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncOff, FsyncBatch, FsyncAlways} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Fsync: mode})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10; i++ {
				seq := l.Append([]byte(fmt.Sprintf("r%d", i)))
				if !l.WaitDurable(seq) {
					t.Fatalf("WaitDurable(%d) failed", seq)
				}
			}
			if mode == FsyncOff && l.Stats().Fsyncs.Load() != 0 {
				t.Fatalf("FsyncOff issued %d fsyncs", l.Stats().Fsyncs.Load())
			}
			if mode != FsyncOff && l.Stats().Fsyncs.Load() == 0 {
				t.Fatal("no fsync issued")
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			seqs, _ := collect(t, l2, 0)
			if len(seqs) != 10 {
				t.Fatalf("replayed %d records, want 10", len(seqs))
			}
		})
	}
}

func TestParseFsyncMode(t *testing.T) {
	for s, want := range map[string]FsyncMode{"off": FsyncOff, "batch": FsyncBatch, "always": FsyncAlways} {
		got, err := ParseFsyncMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Fatal("ParseFsyncMode accepted garbage")
	}
}
