package wal

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func TestFaultsSlowFsyncStretchesDurability(t *testing.T) {
	dir := t.TempDir()
	f := NewFaults(1)
	l, err := Open(dir, Options{Fsync: FsyncBatch, Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Baseline: a healthy durability wait is far under the injected stall.
	seq := l.Append([]byte("warm"))
	if !l.WaitDurable(seq) {
		t.Fatal("warm-up WaitDurable failed")
	}

	f.SetSlowFsync(80*time.Millisecond, 0)
	start := time.Now()
	seq = l.Append([]byte("slow"))
	if !l.WaitDurable(seq) {
		t.Fatal("WaitDurable failed under slow fsync")
	}
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Fatalf("durability wait %v under an 80ms fsync stall — fault not applied", el)
	}

	f.Heal()
	start = time.Now()
	seq = l.Append([]byte("healed"))
	if !l.WaitDurable(seq) {
		t.Fatal("WaitDurable failed after heal")
	}
	if el := time.Since(start); el > 60*time.Millisecond {
		t.Fatalf("durability wait still %v after heal", el)
	}
}

func TestFaultsFsyncErrorRetriesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	f := NewFaults(2)
	l, err := Open(dir, Options{Fsync: FsyncBatch, Faults: f})
	if err != nil {
		t.Fatal(err)
	}

	// Every fsync fails: acked durability cannot be reached, but the
	// records re-buffer instead of being thrown away.
	f.SetFsyncErrorRate(1)
	var seqs []uint64
	for i := 0; i < 10; i++ {
		seqs = append(seqs, l.Append([]byte(fmt.Sprintf("rec-%d", i))))
	}
	durable := make(chan bool, 1)
	go func() { durable <- l.WaitDurable(seqs[len(seqs)-1]) }()
	select {
	case <-durable:
		t.Fatal("WaitDurable returned while every fsync fails")
	case <-time.After(200 * time.Millisecond):
	}

	// Heal: the re-buffered records must flush and the wait complete.
	f.Heal()
	l.kick()
	select {
	case ok := <-durable:
		if !ok {
			t.Fatal("WaitDurable failed after the disk healed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("durability never recovered after heal")
	}
	if errs := l.Stats().FsyncErrors.Load(); errs == 0 {
		t.Fatal("no fsync errors counted despite error rate 1")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The injected-failure period must leave a fully replayable log.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got [][]byte
	if err := l2.Replay(0, func(seq uint64, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(seqs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(seqs))
	}
	for i, p := range got {
		if !bytes.Equal(p, []byte(fmt.Sprintf("rec-%d", i))) {
			t.Fatalf("record %d replayed as %q", i, p)
		}
	}
}

func TestFaultsSeededAndNilSafe(t *testing.T) {
	var nilF *Faults
	if d, err := nilF.fsyncFault(); d != 0 || err != nil {
		t.Fatal("nil plan must be a healthy disk")
	}
	f := NewFaults(9)
	if f.Seed() != 9 {
		t.Fatalf("Seed() = %d", f.Seed())
	}
	if d, err := f.fsyncFault(); d != 0 || err != nil {
		t.Fatal("empty plan must be a healthy disk")
	}
	// Equal seeds draw identical error coins.
	coins := func(seed int64) []bool {
		p := NewFaults(seed)
		p.SetFsyncErrorRate(0.5)
		out := make([]bool, 64)
		for i := range out {
			_, err := p.fsyncFault()
			out[i] = err != nil
		}
		return out
	}
	a, b := coins(3), coins(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("coin %d differs across equally-seeded plans", i)
		}
	}
	// Jitter never yields a negative delay.
	f.SetSlowFsync(time.Millisecond, 10*time.Millisecond)
	for i := 0; i < 100; i++ {
		if d, err := f.fsyncFault(); err != nil || d < 0 {
			t.Fatalf("draw %d: delay %v err %v", i, d, err)
		}
	}
}
