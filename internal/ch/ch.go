package ch

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dbdht/internal/metrics"
)

// NodeID identifies a physical node on the ring.
type NodeID int

type point struct {
	pos  uint64
	node NodeID
}

// Ring is a consistent-hashing ring.  Not safe for concurrent use.
type Ring struct {
	k      int // points per unit of weight ("partitions per node", §4.3)
	rng    *rand.Rand
	points []point // sorted by pos; positions are unique
	taken  map[uint64]struct{}
	quotas map[NodeID]float64
	nextID NodeID
}

// New returns an empty ring placing k points per unit of node weight.  The
// paper's figure 9 uses k = 32 and k = 64 with homogeneous (weight-1) nodes.
func New(k int, rng *rand.Rand) (*Ring, error) {
	if k < 1 {
		return nil, fmt.Errorf("ch: points per node must be ≥ 1, got %d", k)
	}
	if rng == nil {
		return nil, fmt.Errorf("ch: rng must not be nil")
	}
	return &Ring{
		k:      k,
		rng:    rng,
		taken:  make(map[uint64]struct{}),
		quotas: make(map[NodeID]float64),
	}, nil
}

// K returns the points-per-weight parameter.
func (r *Ring) K() int { return r.k }

// Nodes returns the number of physical nodes.
func (r *Ring) Nodes() int { return len(r.quotas) }

// Points returns the total number of ring points (virtual servers).
func (r *Ring) Points() int { return len(r.points) }

// frac converts an arc length to a fraction of the ring.
func frac(arc uint64) float64 { return math.Ldexp(float64(arc), -64) }

// AddNode joins a node of the given positive integer weight, placing
// weight·k random points, and returns its id.  Homogeneous clusters use
// weight 1; the heterogeneous variant of [3] uses proportional weights.
func (r *Ring) AddNode(weight int) (NodeID, error) {
	if weight < 1 {
		return 0, fmt.Errorf("ch: node weight must be ≥ 1, got %d", weight)
	}
	id := r.nextID
	r.nextID++
	r.quotas[id] = 0
	for i := 0; i < weight*r.k; i++ {
		r.insertPoint(id)
	}
	return id, nil
}

// insertPoint places one fresh, unique random point for the node and updates
// the two affected quotas.
func (r *Ring) insertPoint(id NodeID) {
	var pos uint64
	for {
		pos = r.rng.Uint64()
		if _, dup := r.taken[pos]; !dup {
			break
		}
	}
	r.taken[pos] = struct{}{}
	if len(r.points) == 0 {
		r.points = append(r.points, point{pos, id})
		r.quotas[id] += 1.0
		return
	}
	// i is where the new point lands in sorted order.
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].pos >= pos })
	pred := r.points[(i-1+len(r.points))%len(r.points)]
	succ := r.points[i%len(r.points)]
	// The new point carves [pos, succ.pos) out of pred's arc; uint64
	// subtraction wraps correctly around the ring.
	stolen := frac(succ.pos - pos)
	r.quotas[pred.node] -= stolen
	r.quotas[id] += stolen
	r.points = append(r.points, point{})
	copy(r.points[i+1:], r.points[i:])
	r.points[i] = point{pos, id}
}

// RemoveNode withdraws a node; each of its arcs merges into the predecessor
// point's arc.  Removing the last node empties the ring.
func (r *Ring) RemoveNode(id NodeID) error {
	if _, ok := r.quotas[id]; !ok {
		return fmt.Errorf("ch: node %d not on ring", id)
	}
	if r.Nodes() == 1 {
		r.points = r.points[:0]
		r.taken = make(map[uint64]struct{})
		delete(r.quotas, id)
		return nil
	}
	// Walk the ring once; every maximal run of points owned by id hands its
	// combined arc to the preceding surviving point's owner.
	kept := r.points[:0:0]
	for _, p := range r.points {
		if p.node != id {
			kept = append(kept, p)
		} else {
			delete(r.taken, p.pos)
		}
	}
	if len(kept) == 0 {
		return fmt.Errorf("ch: internal: survivors own no points")
	}
	// Recompute the quota gained by each surviving arc that absorbed space.
	// Simple exact approach: rebuild quotas from the kept points (O(P));
	// removals are rare compared to joins in the paper's workloads.
	quotas := make(map[NodeID]float64, len(r.quotas)-1)
	for n := range r.quotas {
		if n != id {
			quotas[n] = 0
		}
	}
	for i, p := range kept {
		next := kept[(i+1)%len(kept)]
		arc := next.pos - p.pos
		if len(kept) == 1 {
			quotas[p.node] = 1.0
			break
		}
		quotas[p.node] += frac(arc)
	}
	r.points = kept
	r.quotas = quotas
	return nil
}

// Lookup returns the node responsible for ring position i: the owner of the
// nearest point at or before i, wrapping around.
func (r *Ring) Lookup(i uint64) (NodeID, bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	j := sort.Search(len(r.points), func(k int) bool { return r.points[k].pos > i })
	// Predecessor of i is points[j-1]; j==0 wraps to the last point.
	return r.points[(j-1+len(r.points))%len(r.points)].node, true
}

// Quota returns the fraction of the ring owned by a node.
func (r *Ring) Quota(id NodeID) (float64, bool) {
	q, ok := r.quotas[id]
	return q, ok
}

// Quotas returns Q_n for every node in ascending node order (§4.3).
func (r *Ring) Quotas() []float64 {
	ids := make([]NodeID, 0, len(r.quotas))
	for id := range r.quotas {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = r.quotas[id]
	}
	return out
}

// QualityOfBalancement returns σ̄(Q_n, Q̄_n) — the metric figure 9 plots for
// the CH curves — as a fraction.
func (r *Ring) QualityOfBalancement() float64 {
	return metrics.RelStdDev(r.Quotas())
}

// bruteQuotas recomputes all quotas from scratch; exported to tests via
// export_test.go to validate the incremental accounting.
func (r *Ring) bruteQuotas() map[NodeID]float64 {
	out := make(map[NodeID]float64, len(r.quotas))
	for id := range r.quotas {
		out[id] = 0
	}
	if len(r.points) == 1 {
		out[r.points[0].node] = 1.0
		return out
	}
	for i, p := range r.points {
		next := r.points[(i+1)%len(r.points)]
		out[p.node] += frac(next.pos - p.pos)
	}
	return out
}
