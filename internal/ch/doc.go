// Package ch implements the Consistent Hashing reference model of Karger et
// al. (STOC'97, the paper's reference [4]) that §4.3 of Rufino et al.
// compares against: a ring of randomly placed points (virtual servers), each
// physical node owning the arcs that start at its points, so partitions have
// *random* sizes — in contrast to the equal-size, bounded-count partitions
// of the cluster-oriented model.
//
// The weighted variant of Dabek et al. (SOSP'01, reference [3]) is obtained
// by giving a node a number of points proportional to its weight.
//
// Quotas are maintained incrementally: inserting a point splits exactly one
// existing arc, removing a point merges its arc into the predecessor's, so
// each join/leave costs O(k log P) instead of a full O(P) recomputation.
// Tests cross-check the incremental accounting against brute force.
package ch
