package ch

// BruteQuotas exposes the from-scratch quota computation so tests can verify
// the incremental arc accounting.
func (r *Ring) BruteQuotas() map[NodeID]float64 { return r.bruteQuotas() }
