package ch

import (
	"math/rand"
	"testing"
)

// BenchmarkAddNode measures one CH join (k=32 points) with incremental
// quota maintenance, on a 1024-node ring.
func BenchmarkAddNode(b *testing.B) {
	r, err := New(32, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	for n := 0; n < 1024; n++ {
		if _, err := r.AddNode(1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.AddNode(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookup measures ring lookups on a 1024-node ring.
func BenchmarkLookup(b *testing.B) {
	r, err := New(32, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	for n := 0; n < 1024; n++ {
		if _, err := r.AddNode(1); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	idx := make([]uint64, 1024)
	for i := range idx {
		idx[i] = rng.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := r.Lookup(idx[i%len(idx)]); !ok {
			b.Fatal("miss")
		}
	}
}
