package ch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newRing(t *testing.T, k int, seed int64) *Ring {
	t.Helper()
	r, err := New(k, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := New(8, nil); err == nil {
		t.Fatal("nil rng must be rejected")
	}
	r := newRing(t, 8, 1)
	if r.K() != 8 {
		t.Fatalf("K = %d", r.K())
	}
}

func TestFirstNodeOwnsRing(t *testing.T) {
	r := newRing(t, 16, 2)
	id, err := r.AddNode(1)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := r.Quota(id)
	if !ok || math.Abs(q-1) > 1e-9 {
		t.Fatalf("first node quota = %v,%v", q, ok)
	}
	if r.Points() != 16 || r.Nodes() != 1 {
		t.Fatalf("points=%d nodes=%d", r.Points(), r.Nodes())
	}
}

func TestQuotasSumToOne(t *testing.T) {
	r := newRing(t, 32, 3)
	for n := 0; n < 50; n++ {
		if _, err := r.AddNode(1); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, q := range r.Quotas() {
			sum += q
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("after %d nodes: quotas sum to %v", n+1, sum)
		}
	}
}

func TestIncrementalMatchesBruteForce(t *testing.T) {
	r := newRing(t, 8, 5)
	for n := 0; n < 40; n++ {
		if _, err := r.AddNode(1 + n%3); err != nil {
			t.Fatal(err)
		}
		brute := r.BruteQuotas()
		for id, want := range brute {
			got, ok := r.Quota(id)
			if !ok || math.Abs(got-want) > 1e-9 {
				t.Fatalf("after %d joins: node %d incremental %v ≠ brute %v", n+1, id, got, want)
			}
		}
	}
}

func TestWeightedNodesGetProportionalPoints(t *testing.T) {
	r := newRing(t, 16, 7)
	if _, err := r.AddNode(1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddNode(3); err != nil {
		t.Fatal(err)
	}
	if r.Points() != 16+48 {
		t.Fatalf("points = %d, want 64", r.Points())
	}
	if _, err := r.AddNode(0); err == nil {
		t.Fatal("weight 0 must be rejected")
	}
}

// With many nodes, a weight-w node's expected quota is w/Σw; check the
// heavier node indeed holds a visibly larger share.
func TestWeightBiasesQuota(t *testing.T) {
	r := newRing(t, 64, 11)
	var heavy NodeID
	for n := 0; n < 20; n++ {
		w := 1
		if n == 10 {
			w = 8
		}
		id, err := r.AddNode(w)
		if err != nil {
			t.Fatal(err)
		}
		if n == 10 {
			heavy = id
		}
	}
	qh, _ := r.Quota(heavy)
	// Expected share 8/27 ≈ 0.296; a uniform node would have 1/27 ≈ 0.037.
	if qh < 0.15 {
		t.Fatalf("heavy node quota %v suspiciously small", qh)
	}
}

func TestLookupMatchesArcOwnership(t *testing.T) {
	r := newRing(t, 4, 13)
	for n := 0; n < 10; n++ {
		if _, err := r.AddNode(1); err != nil {
			t.Fatal(err)
		}
	}
	// Lookups at each point's exact position map to that point's node.
	for _, p := range r.points {
		if got, ok := r.Lookup(p.pos); !ok || got != p.node {
			t.Fatalf("Lookup(point %d) = %v,%v want %v", p.pos, got, ok, p.node)
		}
	}
	// Positions before the first point wrap to the last point's owner.
	first := r.points[0]
	last := r.points[len(r.points)-1]
	if first.pos > 0 {
		if got, _ := r.Lookup(first.pos - 1); got != last.node {
			t.Fatalf("wraparound lookup = %v, want %v", got, last.node)
		}
	}
	empty := newRing(t, 4, 14)
	if _, ok := empty.Lookup(0); ok {
		t.Fatal("lookup on empty ring must miss")
	}
}

func TestLookupQuotaConsistency(t *testing.T) {
	// Sampling lookups uniformly should hit nodes roughly proportionally to
	// their quotas (sanity link between Lookup and quota accounting).
	r := newRing(t, 32, 17)
	for n := 0; n < 8; n++ {
		r.AddNode(1)
	}
	counts := make(map[NodeID]int)
	rng := rand.New(rand.NewSource(99))
	const samples = 200000
	for i := 0; i < samples; i++ {
		id, _ := r.Lookup(rng.Uint64())
		counts[id]++
	}
	for id, c := range counts {
		q, _ := r.Quota(id)
		got := float64(c) / samples
		if math.Abs(got-q) > 0.01 {
			t.Fatalf("node %d: sampled share %v vs quota %v", id, got, q)
		}
	}
}

func TestRemoveNode(t *testing.T) {
	r := newRing(t, 8, 19)
	var ids []NodeID
	for n := 0; n < 12; n++ {
		id, _ := r.AddNode(1)
		ids = append(ids, id)
	}
	rng := rand.New(rand.NewSource(7))
	for len(ids) > 0 {
		i := rng.Intn(len(ids))
		if err := r.RemoveNode(ids[i]); err != nil {
			t.Fatal(err)
		}
		ids = append(ids[:i], ids[i+1:]...)
		sum := 0.0
		for _, q := range r.Quotas() {
			sum += q
		}
		if len(ids) > 0 && math.Abs(sum-1) > 1e-6 {
			t.Fatalf("%d nodes left: quotas sum to %v", len(ids), sum)
		}
		brute := r.BruteQuotas()
		for id, want := range brute {
			got, _ := r.Quota(id)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("node %d: %v ≠ brute %v", id, got, want)
			}
		}
	}
	if r.Nodes() != 0 || r.Points() != 0 {
		t.Fatalf("ring not empty: %d nodes, %d points", r.Nodes(), r.Points())
	}
	if err := r.RemoveNode(0); err == nil {
		t.Fatal("removing absent node must fail")
	}
}

// The k·log₂N effect: more points per node yield a tighter distribution.
func TestMorePointsImproveBalance(t *testing.T) {
	avgQuality := func(k int) float64 {
		tot := 0.0
		for seed := int64(0); seed < 10; seed++ {
			r := newRing(t, k, 100+seed)
			for n := 0; n < 128; n++ {
				r.AddNode(1)
			}
			tot += r.QualityOfBalancement()
		}
		return tot / 10
	}
	q8, q64 := avgQuality(8), avgQuality(64)
	if q64 >= q8 {
		t.Fatalf("σ̄(k=64)=%v must beat σ̄(k=8)=%v", q64, q8)
	}
}

// Property: quotas are always non-negative and the ring always resolves.
func TestQuotaNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r, err := New(4, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for n := 0; n < 30; n++ {
			if _, err := r.AddNode(1 + rng.Intn(3)); err != nil {
				return false
			}
		}
		for _, q := range r.Quotas() {
			if q < 0 || q > 1 {
				return false
			}
		}
		_, ok := r.Lookup(rng.Uint64())
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
