package hashspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetAddRejectsOverlap(t *testing.T) {
	s := NewSet()
	p := Partition{Prefix: 0b10, Level: 2}
	if err := s.Add(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(p); err == nil {
		t.Fatal("duplicate Add must fail")
	}
	if err := s.Add(p.Parent()); err == nil {
		t.Fatal("adding ancestor of member must fail")
	}
	lo, _ := p.Split()
	if err := s.Add(lo); err == nil {
		t.Fatal("adding descendant of member must fail")
	}
	if err := s.Add(Partition{Prefix: 5, Level: 2}); err == nil {
		t.Fatal("invalid partition must be rejected")
	}
	if s.Len() != 1 {
		t.Fatalf("set length = %d, want 1", s.Len())
	}
}

func TestSetRemove(t *testing.T) {
	s := NewSet()
	p := Partition{Prefix: 1, Level: 1}
	if s.Remove(p) {
		t.Fatal("removing absent member must report false")
	}
	if err := s.Add(p); err != nil {
		t.Fatal(err)
	}
	if !s.Remove(p) {
		t.Fatal("removing present member must report true")
	}
	if s.Has(p) {
		t.Fatal("member still present after Remove")
	}
}

// fullTiling builds the complete level-l tiling of R_h.
func fullTiling(t *testing.T, l uint8) *Set {
	t.Helper()
	s := NewSet()
	for pre := uint64(0); pre < 1<<l; pre++ {
		if err := s.Add(Partition{Prefix: pre, Level: l}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSetCoversFullTiling(t *testing.T) {
	for _, l := range []uint8{0, 1, 2, 5, 8} {
		s := fullTiling(t, l)
		if !s.Covers() {
			t.Errorf("level-%d tiling must cover R_h", l)
		}
		if q := s.Quota(); q != 1.0 {
			t.Errorf("level-%d tiling quota = %v, want 1", l, q)
		}
	}
}

func TestSetCoversDetectsHole(t *testing.T) {
	s := fullTiling(t, 3)
	s.Remove(Partition{Prefix: 5, Level: 3})
	if s.Covers() {
		t.Fatal("tiling with a hole must not cover")
	}
	s2 := NewSet()
	if s2.Covers() {
		t.Fatal("empty set must not cover")
	}
	// Missing the first partition.
	s3 := fullTiling(t, 2)
	s3.Remove(Partition{Prefix: 0, Level: 2})
	if s3.Covers() {
		t.Fatal("tiling missing the start must not cover")
	}
	// Missing the last partition.
	s4 := fullTiling(t, 2)
	s4.Remove(Partition{Prefix: 3, Level: 2})
	if s4.Covers() {
		t.Fatal("tiling missing the end must not cover")
	}
}

func TestSetCoversMixedLevels(t *testing.T) {
	// {0@1, 10@2, 110@3, 111@3} tiles R_h with three distinct levels.
	s := NewSet()
	for _, p := range []Partition{
		{Prefix: 0b0, Level: 1},
		{Prefix: 0b10, Level: 2},
		{Prefix: 0b110, Level: 3},
		{Prefix: 0b111, Level: 3},
	} {
		if err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Covers() {
		t.Fatal("mixed-level exact tiling must cover")
	}
}

func TestSetLookup(t *testing.T) {
	s := NewSet()
	a := Partition{Prefix: 0b0, Level: 1}
	b := Partition{Prefix: 0b10, Level: 2}
	for _, p := range []Partition{a, b} {
		if err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := s.Lookup(0); !ok || got != a {
		t.Fatalf("Lookup(0) = %v,%v want %v", got, ok, a)
	}
	if got, ok := s.Lookup(a.Start() ^ 1<<63 | 1); !ok || got != b {
		t.Fatalf("Lookup(high half low quarter) = %v,%v want %v", got, ok, b)
	}
	if _, ok := s.Lookup(^uint64(0)); ok {
		t.Fatal("Lookup outside members must miss")
	}
}

func TestSetPartitionsSorted(t *testing.T) {
	s := fullTiling(t, 4)
	parts := s.Partitions()
	for i := 1; i < len(parts); i++ {
		if parts[i-1].Prefix >= parts[i].Prefix {
			t.Fatal("Partitions must be sorted by prefix within a level")
		}
	}
}

// Property: splitting every member of a full tiling yields a full tiling with
// doubled count and identical total quota — the heart of invariant G3.
func TestSetSplitAllPreservesCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := uint8(1 + rng.Intn(6))
		s := NewSet()
		for pre := uint64(0); pre < 1<<l; pre++ {
			if err := s.Add(Partition{Prefix: pre, Level: l}); err != nil {
				return false
			}
		}
		before := s.Len()
		split := NewSet()
		for _, p := range s.Partitions() {
			lo, hi := p.Split()
			if split.Add(lo) != nil || split.Add(hi) != nil {
				return false
			}
		}
		return split.Len() == 2*before && split.Covers() && split.Quota() == 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
