package hashspace

import (
	"math/rand"
	"testing"
)

func BenchmarkHash(b *testing.B) {
	key := []byte("benchmark-key-0123456789")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Hash(key)
	}
}

func BenchmarkContaining(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	idx := make([]Index, 1024)
	for i := range idx {
		idx[i] = rng.Uint64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Containing(idx[i%len(idx)], 12)
	}
}

func BenchmarkSplit(b *testing.B) {
	p := Partition{Prefix: 0b1011, Level: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Split()
	}
}

func BenchmarkSetLookup(b *testing.B) {
	s := NewSet()
	for pre := uint64(0); pre < 1<<10; pre++ {
		if err := s.Add(Partition{Prefix: pre, Level: 10}); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	idx := make([]Index, 1024)
	for i := range idx {
		idx[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Lookup(idx[i%len(idx)]); !ok {
			b.Fatal("miss")
		}
	}
}
