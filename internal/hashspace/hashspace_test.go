package hashspace

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRootCoversEverything(t *testing.T) {
	r := Root()
	if !r.Valid() {
		t.Fatal("root must be valid")
	}
	for _, i := range []Index{0, 1, math.MaxUint64, math.MaxUint64 / 2} {
		if !r.Contains(i) {
			t.Errorf("root must contain %d", i)
		}
	}
	if got := r.Quota(); got != 1.0 {
		t.Errorf("root quota = %v, want 1", got)
	}
	if r.Start() != 0 {
		t.Errorf("root start = %d, want 0", r.Start())
	}
}

func TestSplitHalvesQuota(t *testing.T) {
	p := Root()
	for l := 0; l < 30; l++ {
		lo, hi := p.Split()
		if lo.Quota() != p.Quota()/2 || hi.Quota() != p.Quota()/2 {
			t.Fatalf("level %d: children quotas %v,%v want %v", l, lo.Quota(), hi.Quota(), p.Quota()/2)
		}
		if lo.Level != p.Level+1 || hi.Level != p.Level+1 {
			t.Fatalf("level %d: children levels %d,%d", l, lo.Level, hi.Level)
		}
		p = hi
	}
}

func TestSplitChildrenPartitionParent(t *testing.T) {
	p := Partition{Prefix: 0b101, Level: 3}
	lo, hi := p.Split()
	if lo.Overlaps(hi) {
		t.Fatal("children overlap each other")
	}
	if !lo.Overlaps(p) || !hi.Overlaps(p) {
		t.Fatal("children must overlap parent")
	}
	if lo.Parent() != p || hi.Parent() != p {
		t.Fatal("Parent must invert Split")
	}
	if lo.Sibling() != hi || hi.Sibling() != lo {
		t.Fatal("Sibling mismatch")
	}
	if !lo.IsLowChild() || hi.IsLowChild() {
		t.Fatal("IsLowChild mismatch")
	}
}

func TestContainsMatchesStartAndWidth(t *testing.T) {
	p := Partition{Prefix: 0b11, Level: 2} // top quarter
	start := p.Start()
	if start != 0xC000000000000000 {
		t.Fatalf("start = %x", start)
	}
	if !p.Contains(start) || !p.Contains(math.MaxUint64) {
		t.Fatal("must contain its endpoints")
	}
	if p.Contains(start - 1) {
		t.Fatal("must not contain index below start")
	}
}

func TestContainingInvertsContains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 1000; n++ {
		i := rng.Uint64()
		l := uint8(rng.Intn(40))
		p := Containing(i, l)
		if !p.Valid() {
			t.Fatalf("Containing(%d,%d) invalid: %+v", i, l, p)
		}
		if !p.Contains(i) {
			t.Fatalf("Containing(%d,%d) = %v does not contain the index", i, l, p)
		}
	}
}

func TestValidRejectsStrayPrefixBits(t *testing.T) {
	bad := Partition{Prefix: 0b100, Level: 2}
	if bad.Valid() {
		t.Fatal("prefix with bits above Level must be invalid")
	}
	if (Partition{Prefix: 1, Level: 0}).Valid() {
		t.Fatal("root with nonzero prefix must be invalid")
	}
	if (Partition{Level: MaxLevel + 1}).Valid() {
		t.Fatal("level beyond MaxLevel must be invalid")
	}
}

func TestOverlapsSymmetric(t *testing.T) {
	f := func(aPre, bPre uint64, aLvl, bLvl uint8) bool {
		aLvl %= 32
		bLvl %= 32
		a := Containing(aPre, aLvl)
		b := Containing(bPre, bLvl)
		return a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapsIffAncestry(t *testing.T) {
	f := func(i uint64, la, lb uint8) bool {
		la %= 40
		lb %= 40
		a := Containing(i, la)
		b := Containing(i, lb)
		// Same index at two levels: always ancestor/descendant, so overlap.
		return a.Overlaps(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// And cousins never overlap.
	a := Partition{Prefix: 0b00, Level: 2}
	b := Partition{Prefix: 0b01, Level: 2}
	if a.Overlaps(b) {
		t.Fatal("siblings must not overlap")
	}
	deep := Partition{Prefix: 0b0111, Level: 4} // inside b
	if a.Overlaps(deep) {
		t.Fatal("disjoint subtrees must not overlap")
	}
}

func TestStringFormat(t *testing.T) {
	cases := map[Partition]string{
		Root():                    "ε@0",
		{Prefix: 0b0, Level: 1}:   "0@1",
		{Prefix: 0b1, Level: 1}:   "1@1",
		{Prefix: 0b010, Level: 3}: "010@3",
		{Prefix: 0b110, Level: 3}: "110@3",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", p, got, want)
		}
	}
}

func TestHashDeterministicAndDispersed(t *testing.T) {
	if Hash([]byte("key")) != Hash([]byte("key")) {
		t.Fatal("Hash must be deterministic")
	}
	if Hash([]byte("a")) == Hash([]byte("b")) {
		t.Fatal("distinct short keys should not collide under FNV-1a")
	}
	if HashString("key") != Hash([]byte("key")) {
		t.Fatal("HashString must agree with Hash")
	}
	// Crude dispersion check: 4k keys spread across the 16 top-level buckets.
	counts := make([]int, 16)
	for i := 0; i < 4096; i++ {
		counts[HashString(string(rune(i))+"-key")>>60]++
	}
	for b, c := range counts {
		if c == 0 {
			t.Errorf("bucket %d empty: FNV dispersion suspicious", b)
		}
	}
}

// Partitions are hash *prefixes*, so the top bits must disperse uniformly
// even for highly similar keys — the reason Hash finalizes FNV with an
// avalanche mix (raw FNV fails this badly: σ̄ > 1.0 on sequential keys).
func TestHashTopBitDispersion(t *testing.T) {
	const n, buckets = 20000, 256
	counts := make([]float64, buckets)
	for i := 0; i < n; i++ {
		h := HashString(fmt.Sprintf("key-%08d", i))
		counts[h>>(Bits-8)]++
	}
	mean := float64(n) / buckets
	sum := 0.0
	for _, c := range counts {
		d := c - mean
		sum += d * d
	}
	rel := math.Sqrt(sum/buckets) / mean
	if rel > 0.25 {
		t.Fatalf("top-8-bit dispersion σ̄ = %.3f, want < 0.25", rel)
	}
}

func TestSplitPanicsAtMaxLevel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split at MaxLevel must panic")
		}
	}()
	p := Partition{Prefix: 0, Level: MaxLevel}
	p.Split()
}

func TestParentSiblingPanicOnRoot(t *testing.T) {
	for name, f := range map[string]func(){
		"Parent":     func() { Root().Parent() },
		"Sibling":    func() { Root().Sibling() },
		"IsLowChild": func() { Root().IsLowChild() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on root must panic", name)
				}
			}()
			f()
		}()
	}
}

func TestQuotaIsExactPowerOfTwo(t *testing.T) {
	f := func(l uint8) bool {
		l %= 60
		p := Partition{Prefix: 0, Level: l}
		return p.Quota() == math.Ldexp(1, -int(l))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
