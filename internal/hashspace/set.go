package hashspace

import (
	"fmt"
	"sort"
)

// Set is a collection of partitions.  The model's invariant G1/G1′ demands
// that the partitions owned by a DHT (or the subset owned by one group) be
// mutually disjoint; Set provides the verification primitives used by tests
// and by the runtime's self-checks.
//
// Set is not safe for concurrent use; owners (vnodes) are single-writer.
type Set struct {
	parts map[Partition]struct{}
}

// NewSet returns an empty Set.
func NewSet() *Set { return &Set{parts: make(map[Partition]struct{})} }

// Len returns the number of partitions in the set.
func (s *Set) Len() int { return len(s.parts) }

// Has reports whether p is a member.
func (s *Set) Has(p Partition) bool {
	_, ok := s.parts[p]
	return ok
}

// Add inserts p.  It returns an error if p is invalid or overlaps a member
// (a violation of invariant G1).
func (s *Set) Add(p Partition) error {
	if !p.Valid() {
		return fmt.Errorf("hashspace: invalid partition %+v", p)
	}
	if s.Has(p) {
		return fmt.Errorf("hashspace: duplicate partition %v", p)
	}
	// Overlap with any ancestor or descendant already present?
	for a := p; a.Level > 0; {
		a = a.Parent()
		if s.Has(a) {
			return fmt.Errorf("hashspace: %v overlaps ancestor %v", p, a)
		}
	}
	// Descendant check would be O(|set|); owners only ever insert partitions
	// at the set's common level, so scanning is acceptable and exact.
	for q := range s.parts {
		if q.Level > p.Level && q.Overlaps(p) {
			return fmt.Errorf("hashspace: %v overlaps descendant %v", p, q)
		}
	}
	s.parts[p] = struct{}{}
	return nil
}

// Remove deletes p, reporting whether it was present.
func (s *Set) Remove(p Partition) bool {
	if !s.Has(p) {
		return false
	}
	delete(s.parts, p)
	return true
}

// Partitions returns the members sorted by (Level, Prefix) for deterministic
// iteration.
func (s *Set) Partitions() []Partition {
	out := make([]Partition, 0, len(s.parts))
	for p := range s.parts {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Level != out[j].Level {
			return out[i].Level < out[j].Level
		}
		return out[i].Prefix < out[j].Prefix
	})
	return out
}

// Quota returns the fraction of R_h covered by the set (the sum of member
// quotas; exact because members are disjoint).
func (s *Set) Quota() float64 {
	q := 0.0
	for p := range s.parts {
		q += p.Quota()
	}
	return q
}

// Lookup returns the member containing index i, if any.
func (s *Set) Lookup(i Index) (Partition, bool) {
	// Probe each level that occurs in the set, deepest first.  The model
	// keeps at most a handful of distinct levels alive at once.
	seen := make(map[uint8]struct{}, 4)
	for p := range s.parts {
		seen[p.Level] = struct{}{}
	}
	levels := make([]uint8, 0, len(seen))
	for l := range seen {
		levels = append(levels, l)
	}
	sort.Slice(levels, func(a, b int) bool { return levels[a] > levels[b] })
	for _, l := range levels {
		p := Containing(i, l)
		if s.Has(p) {
			return p, true
		}
	}
	return Partition{}, false
}

// Covers reports whether the members exactly tile the whole of R_h
// (invariant G1: full division of R_h into non-overlapping partitions).
// Members are assumed disjoint (enforced by Add); full cover of disjoint
// trie partitions is equivalent to quotas summing to 1, but to stay exact we
// verify structurally: sort by start and check contiguity.
func (s *Set) Covers() bool {
	parts := s.Partitions()
	if len(parts) == 0 {
		return false
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].Start() < parts[j].Start() })
	if parts[0].Start() != 0 {
		return false
	}
	for i := 1; i < len(parts); i++ {
		prev := parts[i-1]
		// End of prev = start + 2^(Bits-level); compare via the start of the
		// next partition at prev's level to avoid overflow at level 0.
		if prev.Level == 0 {
			return len(parts) == 1
		}
		nextStart := (prev.Prefix + 1) << (Bits - uint(prev.Level))
		if prev.Prefix+1 == 1<<prev.Level {
			// prev ends exactly at 2^Bits: must be the last partition.
			return i == len(parts)
		}
		if parts[i].Start() != nextStart {
			return false
		}
	}
	last := parts[len(parts)-1]
	if last.Level == 0 {
		return len(parts) == 1
	}
	return last.Prefix+1 == 1<<last.Level
}
