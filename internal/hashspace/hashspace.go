package hashspace

import (
	"fmt"
	"math"
)

// Bits is Bh, the fixed width in bits of a hash index.
const Bits = 64

// MaxLevel is the deepest splitlevel a partition may reach.  Beyond this a
// partition would be a single index; the model never goes near it (a DHT with
// 8192 vnodes and Pmin=128 sits at level ~20) but the algebra enforces it.
const MaxLevel = Bits

// Index is a point in R_h.
type Index = uint64

// Partition is a contiguous, binary-aligned subset of R_h: all indices whose
// Level most significant bits equal Prefix.  The zero value is the whole of
// R_h (splitlevel 0), matching the paper's notion that every partition
// descends from R_h by binary splits.
type Partition struct {
	// Prefix holds the Level most significant bits that identify the
	// partition, right-aligned.  Bits above Level must be zero.
	Prefix uint64
	// Level is the splitlevel: the number of binary splits separating this
	// partition from the whole range R_h (§3.4).
	Level uint8
}

// Root returns the partition covering the whole of R_h (splitlevel 0).
func Root() Partition { return Partition{} }

// Valid reports whether p is a well-formed partition: Level within range and
// no prefix bits set above Level.
func (p Partition) Valid() bool {
	if p.Level > MaxLevel {
		return false
	}
	if p.Level == 0 {
		return p.Prefix == 0
	}
	if p.Level == Bits {
		return true
	}
	return p.Prefix < 1<<p.Level
}

// Start returns the smallest index contained in p.
func (p Partition) Start() Index {
	if p.Level == 0 {
		return 0
	}
	return p.Prefix << (Bits - uint(p.Level))
}

// Contains reports whether index i falls inside p.
func (p Partition) Contains(i Index) bool {
	if p.Level == 0 {
		return true
	}
	return i>>(Bits-uint(p.Level)) == p.Prefix
}

// Quota returns the fraction of R_h covered by p, i.e. 2^(−Level).
func (p Partition) Quota() float64 { return math.Ldexp(1, -int(p.Level)) }

// Split divides p into its two equal halves (one binary split, §3.4),
// returning the low (bit 0) and high (bit 1) children.  Split panics if p is
// already a single index; the model's invariants keep levels far from that.
func (p Partition) Split() (lo, hi Partition) {
	if p.Level >= MaxLevel {
		panic(fmt.Sprintf("hashspace: cannot split single-index partition %v", p))
	}
	lo = Partition{Prefix: p.Prefix << 1, Level: p.Level + 1}
	hi = Partition{Prefix: p.Prefix<<1 | 1, Level: p.Level + 1}
	return lo, hi
}

// Parent returns the partition p resulted from splitting.  It panics on the
// root, which has no parent.
func (p Partition) Parent() Partition {
	if p.Level == 0 {
		panic("hashspace: root partition has no parent")
	}
	return Partition{Prefix: p.Prefix >> 1, Level: p.Level - 1}
}

// Sibling returns the other half of p's parent.  It panics on the root.
func (p Partition) Sibling() Partition {
	if p.Level == 0 {
		panic("hashspace: root partition has no sibling")
	}
	return Partition{Prefix: p.Prefix ^ 1, Level: p.Level}
}

// IsLowChild reports whether p is the low (bit 0) child of its parent.
// It panics on the root.
func (p Partition) IsLowChild() bool {
	if p.Level == 0 {
		panic("hashspace: root partition has no parent")
	}
	return p.Prefix&1 == 0
}

// Overlaps reports whether p and q share at least one index.  Two trie
// partitions overlap iff one is an ancestor of (or equal to) the other.
func (p Partition) Overlaps(q Partition) bool {
	if p.Level > q.Level {
		p, q = q, p
	}
	// p is the shallower one; q overlaps iff its top p.Level bits match.
	if p.Level == 0 {
		return true
	}
	return q.Prefix>>(q.Level-p.Level) == p.Prefix
}

// String formats p as the binary prefix string used in the paper's figure 3,
// e.g. "010@3"; the root prints as "ε@0".
func (p Partition) String() string {
	if p.Level == 0 {
		return "ε@0"
	}
	return fmt.Sprintf("%0*b@%d", int(p.Level), p.Prefix, p.Level)
}

// Containing returns the unique partition at the given splitlevel that
// contains index i.
func Containing(i Index, level uint8) Partition {
	if level > MaxLevel {
		panic(fmt.Sprintf("hashspace: level %d out of range", level))
	}
	if level == 0 {
		return Root()
	}
	return Partition{Prefix: i >> (Bits - uint(level)), Level: level}
}

// FNV-1a parameters (matching hash/fnv), inlined below: the hash runs once
// per key per hop on the batched data plane, and the hash.Hash64 interface
// costs two heap allocations per call that this path cannot afford.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash maps an arbitrary key to an Index in R_h.  The model requires a
// fixed hash with uniform dispersion (§2.2) *in the most significant bits*,
// because partitions are identified by hash prefixes.  Raw FNV-1a disperses
// its low bits well but leaves strong structure in the high bits for
// similar keys (measured σ̄ > 100% across 256 top-bit buckets on sequential
// keys), so the FNV output is passed through a murmur3-style avalanche
// finalizer, which spreads every input bit across the whole word.
func Hash(key []byte) Index {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return mix(h)
}

// HashString is Hash for string keys without forcing a copy at call sites.
func HashString(key string) Index {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return mix(h)
}

// mix is the 64-bit murmur3 avalanche finalizer.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
