// Package hashspace models the range R_h of the hash function underlying a
// dynamically balanced DHT, together with the binary-trie partitions the
// Rufino et al. model (IPDPS 2004) carves it into.
//
// In the paper, R_h = {i ∈ N0 : 0 ≤ i < 2^Bh} for a fixed number of bits Bh,
// and every partition results from repeated binary splits of R_h (§3.4).
// A partition at splitlevel l covers exactly 1/2^l of R_h.  We therefore
// represent a partition as the pair (Prefix, Level): the Level most
// significant bits of every index it contains equal Prefix.  This makes the
// paper's invariants — non-overlap, full coverage, power-of-two counts —
// cheap to verify and cheap to property-test.
//
// Bh is fixed at 64 so that hash indices are plain uint64 values.  Sizes of
// partitions at level 0 would overflow uint64, so quotas (fractions of R_h)
// are always computed as 2^(−Level) in float64 rather than via materialized
// sizes.
package hashspace
