// Package invariant machine-checks what a fault-injection run must not
// break.  A Recorder captures the client-side history of a workload —
// which writes were acknowledged, when, and what every read returned —
// and the checkers turn that history plus a final read-back into
// structured verdicts:
//
//   - CheckNoAckedLoss: every acknowledged write survives (the
//     durability contract of R ≥ 2 replication and the WAL);
//   - CheckBoundedStaleness: a failover read may serve an old value,
//     but never older than the configured bound, and never a value
//     nobody wrote (a phantom);
//   - CheckConvergence: after Heal the cluster stops repairing and the
//     balancer's quota deviation settles within the deadline.
//
// The Recorder assumes each key has a single sequential writer (the
// harness gives every writer goroutine its own key prefix), which makes
// "the last acknowledged value" well defined without a consensus log.
package invariant

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// Verdict is one checker's structured outcome, embedded verbatim in
// BENCH records.
type Verdict struct {
	// Name identifies the invariant ("no-acked-write-loss", ...).
	Name string `json:"name"`
	// Pass reports whether the history satisfies the invariant.
	Pass bool `json:"pass"`
	// Detail is a one-line human explanation (first violation, or what
	// was checked).
	Detail string `json:"detail"`
	// Metrics carries the checker's numeric evidence (counts, worst
	// staleness, convergence time).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func (v Verdict) String() string {
	s := "PASS"
	if !v.Pass {
		s = "FAIL"
	}
	return fmt.Sprintf("%-24s %s  %s", v.Name, s, v.Detail)
}

// writeEv is one recorded write attempt on a key.
type writeEv struct {
	sum     uint64 // FNV-64a of the value written
	start   time.Time
	acked   bool
	ackedAt time.Time
}

// keyHist is a key's write history in issue order (single writer per
// key, so issue order is the only order).
type keyHist struct {
	writes []writeEv
}

// readEv is one recorded read and what it observed.
type readEv struct {
	key   string
	sum   uint64
	found bool
	start time.Time
	end   time.Time
}

// Recorder captures a workload's client-visible history.  Values are
// folded to FNV-64a sums at record time, so holding the history of
// millions of ops stays cheap.  Safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	keys  map[string]*keyHist // guarded by mu
	reads []readEv            // guarded by mu
}

// NewRecorder returns an empty history.
func NewRecorder() *Recorder {
	return &Recorder{keys: make(map[string]*keyHist)}
}

// ValueSum is the fingerprint the checkers compare values by.
func ValueSum(value []byte) uint64 {
	h := fnv.New64a()
	h.Write(value) // never fails per hash.Hash contract
	return h.Sum64()
}

// RecordWrite records one write attempt: started at start, carrying
// value, and acked reports whether the cluster acknowledged it.  An
// unacknowledged (timed-out) write is indeterminate — it may or may not
// survive — and the checkers treat it that way.
func (r *Recorder) RecordWrite(key string, value []byte, start time.Time, acked bool) {
	ev := writeEv{sum: ValueSum(value), start: start, acked: acked}
	if acked {
		ev.ackedAt = time.Now()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.keys[key]
	if h == nil {
		h = &keyHist{}
		r.keys[key] = h
	}
	h.writes = append(h.writes, ev)
}

// RecordRead records one read spanning [start, end] that observed the
// given value (found = false for a miss; value is then ignored).
func (r *Recorder) RecordRead(key string, value []byte, found bool, start, end time.Time) {
	ev := readEv{key: key, found: found, start: start, end: end}
	if found {
		ev.sum = ValueSum(value)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.reads = append(r.reads, ev)
}

// AckedKeys lists every key with at least one acknowledged write,
// sorted — the read-back set for CheckNoAckedLoss.
func (r *Recorder) AckedKeys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.keys))
	for k, h := range r.keys {
		for _, w := range h.writes {
			if w.acked {
				keys = append(keys, k)
				break
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// Counts reports how many writes (total, acked) and reads the history
// holds.
func (r *Recorder) Counts() (writes, acked, reads int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, h := range r.keys {
		writes += len(h.writes)
		for _, w := range h.writes {
			if w.acked {
				acked++
			}
		}
	}
	return writes, acked, len(r.reads)
}

// ReadBack is a key's final observed state after the run settled.
type ReadBack struct {
	Value []byte
	Found bool
}

// CheckNoAckedLoss verifies every acknowledged write survived: for each
// key with acked writes, the final read-back must be found and carry
// either the last acked value or the value of some unacknowledged write
// issued after it (a timed-out overwrite is indeterminate: it may have
// landed).  A miss, or a value matching no recorded write, is a
// violation.
func (r *Recorder) CheckNoAckedLoss(final map[string]ReadBack) Verdict {
	r.mu.Lock()
	defer r.mu.Unlock()
	var checked, lost, corrupt int
	var firstBad string
	for key, h := range r.keys {
		lastAcked := -1
		for i, w := range h.writes {
			if w.acked {
				lastAcked = i
			}
		}
		if lastAcked < 0 {
			continue // nothing was promised for this key
		}
		checked++
		fb, ok := final[key]
		if !ok || !fb.Found {
			lost++
			if firstBad == "" {
				firstBad = fmt.Sprintf("key %q: acked write missing on read-back", key)
			}
			continue
		}
		got := ValueSum(fb.Value)
		allowed := got == h.writes[lastAcked].sum
		for _, w := range h.writes[lastAcked+1:] {
			if !w.acked && w.sum == got {
				allowed = true // an indeterminate later write landed
			}
		}
		if !allowed {
			corrupt++
			if firstBad == "" {
				firstBad = fmt.Sprintf("key %q: read-back matches no surviving write", key)
			}
		}
	}
	v := Verdict{
		Name: "no-acked-write-loss",
		Pass: lost == 0 && corrupt == 0,
		Metrics: map[string]float64{
			"keys_checked": float64(checked),
			"keys_lost":    float64(lost),
			"keys_corrupt": float64(corrupt),
		},
	}
	if v.Pass {
		v.Detail = fmt.Sprintf("all %d acked keys intact on read-back", checked)
	} else {
		v.Detail = firstBad
	}
	return v
}

// CheckBoundedStaleness verifies every mid-run read was at most bound
// stale: a read may return an old value (failover reads serve replicas),
// but only if the value it superseded it by less than bound — i.e. the
// next acknowledged write's ack was within bound of the read's start.
// Reads returning a value no write produced are phantoms and always
// fail.
func (r *Recorder) CheckBoundedStaleness(bound time.Duration) Verdict {
	r.mu.Lock()
	defer r.mu.Unlock()
	var checked, stale, phantom int
	var worst time.Duration
	var firstBad string
	for _, rd := range r.reads {
		h := r.keys[rd.key]
		if h == nil {
			continue // read of a key this history never wrote
		}
		checked++
		if !rd.found {
			// A miss is stale iff some write was acked at least `bound`
			// before the read began (it should have been visible).
			for _, w := range h.writes {
				if w.acked && rd.start.Sub(w.ackedAt) > bound {
					stale++
					if firstBad == "" {
						firstBad = fmt.Sprintf("key %q: miss %v after first ack", rd.key, rd.start.Sub(w.ackedAt).Round(time.Millisecond))
					}
					break
				}
			}
			continue
		}
		// Find the write the read observed; staleness is measured to
		// the first acked write that superseded it.
		matched := false
		for i, w := range h.writes {
			if w.sum != rd.sum {
				continue
			}
			matched = true
			var lag time.Duration
			for _, w2 := range h.writes[i+1:] {
				if w2.acked {
					lag = rd.start.Sub(w2.ackedAt)
					break
				}
			}
			if lag > worst {
				worst = lag
			}
			if lag > bound {
				stale++
				if firstBad == "" {
					firstBad = fmt.Sprintf("key %q: read a value superseded %v earlier (bound %v)", rd.key, lag.Round(time.Millisecond), bound)
				}
			}
			break
		}
		if !matched {
			phantom++
			if firstBad == "" {
				firstBad = fmt.Sprintf("key %q: read a value no write produced", rd.key)
			}
		}
	}
	v := Verdict{
		Name: "bounded-staleness",
		Pass: stale == 0 && phantom == 0,
		Metrics: map[string]float64{
			"reads_checked": float64(checked),
			"reads_stale":   float64(stale),
			"reads_phantom": float64(phantom),
			"worst_lag_ms":  float64(worst.Milliseconds()),
			"bound_ms":      float64(bound.Milliseconds()),
		},
	}
	if v.Pass {
		v.Detail = fmt.Sprintf("%d reads within %v (worst lag %v)", checked, bound, worst.Round(time.Millisecond))
	} else {
		v.Detail = firstBad
	}
	return v
}

// ConvergenceProbe samples the cluster's repair progress: repairs is a
// monotone counter of replica-repair pushes (anti-entropy), sigma the
// balancer's current quota deviation σ̄(Qv) in percent.
type ConvergenceProbe func() (repairs int64, sigma float64)

// CheckConvergence verifies the cluster re-converges after Heal: polling
// every poll, the repair counter must go quiet (unchanged for settle
// consecutive polls) with sigma ≤ maxSigma, all within `within` of
// healedAt.  The convergence time reported is from healedAt to the
// start of the quiet streak.
func CheckConvergence(healedAt time.Time, within, poll time.Duration, settle int, maxSigma float64, probe ConvergenceProbe) Verdict {
	if settle < 1 {
		settle = 1
	}
	deadline := healedAt.Add(within)
	lastRepairs, lastSigma := probe()
	quietSince := time.Now()
	quiet := 0
	for {
		time.Sleep(poll)
		repairs, sigma := probe()
		lastSigma = sigma
		if repairs != lastRepairs || sigma > maxSigma {
			lastRepairs, quiet = repairs, 0
			quietSince = time.Now()
		} else {
			quiet++
			if quiet >= settle {
				return Verdict{
					Name: "convergence-after-heal",
					Pass: true,
					Detail: fmt.Sprintf("repairs quiet and σ̄(Qv) = %.2f%% ≤ %.2f%% %v after heal",
						sigma, maxSigma, quietSince.Sub(healedAt).Round(time.Millisecond)),
					Metrics: map[string]float64{
						"convergence_ms": float64(quietSince.Sub(healedAt).Milliseconds()),
						"sigma_pct":      sigma,
						"max_sigma_pct":  maxSigma,
					},
				}
			}
		}
		if time.Now().After(deadline) {
			return Verdict{
				Name: "convergence-after-heal",
				Pass: false,
				Detail: fmt.Sprintf("still repairing or σ̄(Qv) = %.2f%% > %.2f%% at deadline (%v after heal)",
					lastSigma, maxSigma, within),
				Metrics: map[string]float64{
					"convergence_ms": -1,
					"sigma_pct":      lastSigma,
					"max_sigma_pct":  maxSigma,
				},
			}
		}
	}
}
