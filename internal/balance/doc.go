// Package balance implements the partition-reassignment algorithm of §2.5 of
// Rufino et al. (IPDPS 2004) over an abstract Partition Distribution Record.
//
// The same algorithm drives both scopes of the model: the global approach
// runs it over the GPDR (every vnode of the DHT), the local approach runs it
// over the LPDR of one group (§3.1: "within each group, balancement is based
// on the same algorithm used by the global approach").  The package is
// generic in the vnode key so the simulator can use small integers while the
// cluster runtime uses canonical snode_id.vnode_id names.
//
// A Table records the number of partitions per vnode.  Because every
// partition in a scope shares the same size (invariants G3/G3′), minimizing
// σ(P_v, P̄_v) minimizes σ(Q_v, Q̄_v) within the scope (§2.4), so the
// algorithm reasons purely about counts; owners translate the returned moves
// into actual partition (and data) transfers.
package balance
