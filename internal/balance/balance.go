package balance

import (
	"fmt"
	"math"
	"sort"
)

// Table is a partition distribution record: vnode key → partition count.
// Selection among equal counts is deterministic, ordered by the comparison
// function supplied at construction, so simulations are exactly reproducible.
//
// Table is not safe for concurrent use; in the cluster runtime each group's
// leader owns its LPDR.
type Table[K comparable] struct {
	counts map[K]int
	less   func(a, b K) bool
}

// NewTable returns an empty table whose tie-breaking order is defined by
// less (a strict weak ordering over keys).
func NewTable[K comparable](less func(a, b K) bool) *Table[K] {
	return &Table[K]{counts: make(map[K]int), less: less}
}

// Add registers a vnode with zero partitions (step 1 of the §2.5 algorithm).
func (t *Table[K]) Add(k K) error {
	if _, ok := t.counts[k]; ok {
		return fmt.Errorf("balance: vnode %v already in table", k)
	}
	t.counts[k] = 0
	return nil
}

// Remove deletes a vnode, returning its final count.
func (t *Table[K]) Remove(k K) (int, error) {
	c, ok := t.counts[k]
	if !ok {
		return 0, fmt.Errorf("balance: vnode %v not in table", k)
	}
	delete(t.counts, k)
	return c, nil
}

// SetCount overwrites a vnode's count; used at bootstrap (the first vnode
// starts with Pmin partitions) and after merges recompute ownership.
func (t *Table[K]) SetCount(k K, c int) error {
	if _, ok := t.counts[k]; !ok {
		return fmt.Errorf("balance: vnode %v not in table", k)
	}
	if c < 0 {
		return fmt.Errorf("balance: negative count %d for vnode %v", c, k)
	}
	t.counts[k] = c
	return nil
}

// Count returns the count for k and whether k is present.
func (t *Table[K]) Count(k K) (int, bool) {
	c, ok := t.counts[k]
	return c, ok
}

// Len returns the number of vnodes (V, or V_g for a group LPDR).
func (t *Table[K]) Len() int { return len(t.counts) }

// Total returns the overall number of partitions (P, or P_g).
func (t *Table[K]) Total() int {
	sum := 0
	for _, c := range t.counts {
		sum += c
	}
	return sum
}

// Keys returns all vnode keys in the table's deterministic order.
func (t *Table[K]) Keys() []K {
	out := make([]K, 0, len(t.counts))
	for k := range t.counts {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return t.less(out[i], out[j]) })
	return out
}

// Counts returns a copy of the distribution keyed by vnode.
func (t *Table[K]) Counts() map[K]int {
	out := make(map[K]int, len(t.counts))
	for k, c := range t.counts {
		out[k] = c
	}
	return out
}

// Max returns the vnode with the most partitions — the "victim vnode" of
// step 3 — breaking ties toward the smallest key.  ok is false when empty.
func (t *Table[K]) Max() (k K, c int, ok bool) {
	first := true
	for key, cnt := range t.counts {
		if first || cnt > c || (cnt == c && t.less(key, k)) {
			k, c, ok = key, cnt, true
			first = false
		}
	}
	return k, c, ok
}

// Min returns the vnode with the fewest partitions, breaking ties toward the
// smallest key.  ok is false when empty.
func (t *Table[K]) Min() (k K, c int, ok bool) {
	first := true
	for key, cnt := range t.counts {
		if first || cnt < c || (cnt == c && t.less(key, k)) {
			k, c, ok = key, cnt, true
			first = false
		}
	}
	return k, c, ok
}

// DoubleAll doubles every count; callers invoke it when performing the
// scope-wide binary split of §2.5 ("all the older vnodes binary split their
// own partitions, doubling its number to P_v = Pmax").
func (t *Table[K]) DoubleAll() {
	for k := range t.counts {
		t.counts[k] *= 2
	}
}

// RelStdDev returns σ̄(P_v, P̄_v), the relative standard deviation of the
// counts — the quality metric of the scope per §2.4.
func (t *Table[K]) RelStdDev() float64 {
	if len(t.counts) == 0 {
		return 0
	}
	mean := float64(t.Total()) / float64(len(t.counts))
	if mean == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range t.counts {
		d := float64(c) - mean
		sum += d * d
	}
	return math.Sqrt(sum/float64(len(t.counts))) / mean
}

// CheckBounds verifies invariant G4/G4′: Pmin ≤ P_v ≤ Pmax for every vnode.
func (t *Table[K]) CheckBounds(pmin, pmax int) error {
	for k, c := range t.counts {
		if c < pmin || c > pmax {
			return fmt.Errorf("balance: vnode %v has %d partitions, outside [%d,%d]", k, c, pmin, pmax)
		}
	}
	return nil
}

// Move records the transfer of one partition between vnodes.
type Move[K comparable] struct {
	From, To K
}

// movesDecreasesSigma reports whether moving one partition from a vnode with
// a partitions to one with b decreases σ(P_v, P̄_v).  The mean is unchanged
// by a move, so comparing variances suffices:
//
//	(a−1)² + (b+1)² < a² + b²  ⇔  b < a − 1  ⇔  a − b ≥ 2.
//
// Tests cross-check this closed form against an explicit σ computation.
func moveDecreasesSigma(a, b int) bool { return a-b >= 2 }

// PlanCreate runs the §2.5 creation algorithm for newKey, which must already
// be registered (via Add) with zero partitions:
//
//  1. if the current maximum count equals pmin the whole scope performs a
//     binary split first (split=true; counts double to Pmax) — this is the
//     G5/G5′ power-of-two moment when no vnode may drop below Pmin;
//  2. repeatedly pick the victim vnode (largest count) and hand one
//     partition to the new vnode while doing so decreases σ(P_v, P̄_v).
//
// The returned moves are in execution order.  The table is updated in place.
func (t *Table[K]) PlanCreate(newKey K, pmin int) (split bool, moves []Move[K], err error) {
	if pmin < 1 {
		return false, nil, fmt.Errorf("balance: pmin must be ≥ 1, got %d", pmin)
	}
	c, ok := t.counts[newKey]
	if !ok {
		return false, nil, fmt.Errorf("balance: new vnode %v not registered", newKey)
	}
	if c != 0 {
		return false, nil, fmt.Errorf("balance: new vnode %v starts with %d partitions, want 0", newKey, c)
	}
	if len(t.counts) == 1 {
		// First vnode of the scope: it receives the whole range pre-split
		// into Pmin partitions; no victims exist.
		t.counts[newKey] = pmin
		return false, nil, nil
	}
	if _, maxC, _ := t.maxExcluding(newKey); maxC == pmin {
		// Handing over would violate G4's lower bound: split the scope.
		t.DoubleAll()
		split = true
	}
	for {
		victim, maxC, ok := t.maxExcluding(newKey)
		if !ok {
			break
		}
		if !moveDecreasesSigma(maxC, t.counts[newKey]) {
			break
		}
		if maxC <= pmin {
			// Defensive guard: the σ criterion alone never drives a victim
			// below Pmin (see package tests), but G4 is an invariant and we
			// refuse to break it rather than silently corrupt the scope.
			return split, moves, fmt.Errorf("balance: victim %v at lower bound %d", victim, pmin)
		}
		t.counts[victim]--
		t.counts[newKey]++
		moves = append(moves, Move[K]{From: victim, To: newKey})
	}
	return split, moves, nil
}

// maxExcluding is Max over all vnodes except skip.
func (t *Table[K]) maxExcluding(skip K) (k K, c int, ok bool) {
	first := true
	for key, cnt := range t.counts {
		if key == skip {
			continue
		}
		if first || cnt > c || (cnt == c && t.less(key, k)) {
			k, c, ok = key, cnt, true
			first = false
		}
	}
	return k, c, ok
}

// PlanRemove removes the vnode k and assigns each of its partitions to the
// vnode with the fewest partitions at that moment (the σ-minimizing greedy
// placement; the symmetric counterpart of PlanCreate, used for the base
// model's dynamic leave — feature (c) of §1).  It returns one destination
// per orphaned partition, in order.  Destinations may exceed Pmax; callers
// detect that via MergeNeeded and coalesce.
func (t *Table[K]) PlanRemove(k K) (dests []K, err error) {
	c, err := t.Remove(k)
	if err != nil {
		return nil, err
	}
	if len(t.counts) == 0 {
		if c > 0 {
			return nil, fmt.Errorf("balance: removing last vnode %v orphans %d partitions", k, c)
		}
		return nil, nil
	}
	dests = make([]K, 0, c)
	for i := 0; i < c; i++ {
		dest, _, _ := t.Min()
		t.counts[dest]++
		dests = append(dests, dest)
	}
	return dests, nil
}

// MergeNeeded reports whether the scope must halve its partition count after
// vnodes left.  Two cases: P > V·Pmax, where even the flattest distribution
// violates G4's upper bound; and P = V·Pmax, where V is necessarily a power
// of two (P and Pmax are powers of two) and invariant G5 demands all vnodes
// hold exactly Pmin — reached by halving P and flattening.  On the growth
// path P = V·Pmin at powers of two, so this never fires during creations.
func (t *Table[K]) MergeNeeded(pmax int) bool {
	return len(t.counts) > 0 && t.Total() >= len(t.counts)*pmax
}

// WeightedTargets apportions total discrete units (the cluster runtime
// uses it for per-snode vnode enrollment slots) across keys proportionally
// to their positive capacity weights, by the largest-remainder method:
// every key gets the floor of its exact share, and the leftover units go
// to the largest fractional remainders (ties broken toward the smallest
// key, keeping the apportionment deterministic).  When total ≥ len(weights)
// every key is guaranteed at least one unit — a zero target would evict a
// host from the DHT entirely, which is an operator decision, not a
// balancement one — with the units taken from the largest targets.
func WeightedTargets[K comparable](weights map[K]float64, total int, less func(a, b K) bool) (map[K]int, error) {
	if total < 0 {
		return nil, fmt.Errorf("balance: negative total %d", total)
	}
	sum := 0.0
	for k, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("balance: weight of %v must be a positive finite number, got %v", k, w)
		}
		sum += w
	}
	out := make(map[K]int, len(weights))
	if len(weights) == 0 || total == 0 {
		for k := range weights {
			out[k] = 0
		}
		return out, nil
	}
	type ent struct {
		k    K
		frac float64
	}
	ents := make([]ent, 0, len(weights))
	assigned := 0
	for k, w := range weights {
		share := float64(total) * w / sum
		fl := int(math.Floor(share))
		out[k] = fl
		assigned += fl
		ents = append(ents, ent{k: k, frac: share - float64(fl)})
	}
	sort.Slice(ents, func(i, j int) bool {
		if ents[i].frac != ents[j].frac {
			return ents[i].frac > ents[j].frac
		}
		return less(ents[i].k, ents[j].k)
	})
	for i := 0; assigned < total; i++ {
		out[ents[i%len(ents)].k]++
		assigned++
	}
	// Min-one fixup: lift zero targets by taking from the current maxima.
	if total >= len(weights) {
		for k, c := range out {
			if c > 0 {
				continue
			}
			var maxK K
			maxC := -1
			for k2, c2 := range out {
				if c2 > maxC || (c2 == maxC && less(k2, maxK)) {
					maxK, maxC = k2, c2
				}
			}
			if maxC > 1 {
				out[maxK]--
				out[k] = 1
			}
		}
	}
	return out, nil
}

// Flatten repeatedly moves one partition from the current maximum to the
// current minimum while that decreases σ, never driving a victim below pmin.
// It is used after merges and removals to restore the flattest reachable
// distribution; on creation paths PlanCreate already leaves the scope flat.
func (t *Table[K]) Flatten(pmin int) []Move[K] {
	var moves []Move[K]
	for {
		from, maxC, ok1 := t.Max()
		to, minC, ok2 := t.Min()
		if !ok1 || !ok2 || from == to {
			break
		}
		if !moveDecreasesSigma(maxC, minC) || maxC <= pmin {
			break
		}
		t.counts[from]--
		t.counts[to]++
		moves = append(moves, Move[K]{From: from, To: to})
	}
	return moves
}
