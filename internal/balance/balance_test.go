package balance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func intLess(a, b int) bool { return a < b }

func newIntTable(t *testing.T, counts map[int]int) *Table[int] {
	t.Helper()
	tb := NewTable[int](intLess)
	for k := range counts {
		if err := tb.Add(k); err != nil {
			t.Fatal(err)
		}
	}
	for k, c := range counts {
		if err := tb.SetCount(k, c); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestAddRemoveSetCount(t *testing.T) {
	tb := NewTable[int](intLess)
	if err := tb.Add(1); err != nil {
		t.Fatal(err)
	}
	if err := tb.Add(1); err == nil {
		t.Fatal("duplicate Add must fail")
	}
	if err := tb.SetCount(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := tb.SetCount(2, 5); err == nil {
		t.Fatal("SetCount on absent vnode must fail")
	}
	if err := tb.SetCount(1, -1); err == nil {
		t.Fatal("negative count must fail")
	}
	if c, err := tb.Remove(1); err != nil || c != 5 {
		t.Fatalf("Remove = %d,%v", c, err)
	}
	if _, err := tb.Remove(1); err == nil {
		t.Fatal("double Remove must fail")
	}
}

func TestMaxMinDeterministicTieBreak(t *testing.T) {
	tb := newIntTable(t, map[int]int{3: 7, 1: 7, 2: 7})
	for trial := 0; trial < 20; trial++ {
		if k, c, ok := tb.Max(); !ok || k != 1 || c != 7 {
			t.Fatalf("Max = %d,%d,%v want 1,7,true", k, c, ok)
		}
		if k, c, ok := tb.Min(); !ok || k != 1 || c != 7 {
			t.Fatalf("Min = %d,%d,%v want 1,7,true", k, c, ok)
		}
	}
	var empty Table[int]
	empty.less = intLess
	if _, _, ok := empty.Max(); ok {
		t.Fatal("Max of empty table must report !ok")
	}
}

func TestKeysSorted(t *testing.T) {
	tb := newIntTable(t, map[int]int{5: 1, 1: 2, 3: 3})
	keys := tb.Keys()
	want := []int{1, 3, 5}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

// The closed-form move criterion must agree with the paper's literal
// "compute σ before and after" formulation.
func TestMoveCriterionMatchesExplicitSigma(t *testing.T) {
	// A move keeps the mean constant, so σ decreases iff Σx² decreases;
	// integer arithmetic keeps the comparison exact (a float σ would round
	// permutations like 17,16 → 16,17 inconsistently).
	explicit := func(counts []int, from, to int) bool {
		sumsq := func(xs []int) int {
			s := 0
			for _, x := range xs {
				s += x * x
			}
			return s
		}
		before := sumsq(counts)
		moved := append([]int(nil), counts...)
		moved[from]--
		moved[to]++
		return sumsq(moved) < before
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		counts := make([]int, n)
		for i := range counts {
			counts[i] = 1 + rng.Intn(20)
		}
		from := rng.Intn(n)
		to := rng.Intn(n)
		if from == to || counts[from] < 1 {
			return true
		}
		return moveDecreasesSigma(counts[from], counts[to]) == explicit(counts, from, to)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanCreateFirstVnode(t *testing.T) {
	tb := NewTable[int](intLess)
	if err := tb.Add(0); err != nil {
		t.Fatal(err)
	}
	split, moves, err := tb.PlanCreate(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if split || len(moves) != 0 {
		t.Fatalf("first vnode: split=%v moves=%v", split, moves)
	}
	if c, _ := tb.Count(0); c != 32 {
		t.Fatalf("first vnode count = %d, want Pmin=32", c)
	}
}

func TestPlanCreateSecondVnodeSplits(t *testing.T) {
	const pmin = 8
	tb := NewTable[int](intLess)
	tb.Add(0)
	tb.PlanCreate(0, pmin)
	tb.Add(1)
	split, moves, err := tb.PlanCreate(1, pmin)
	if err != nil {
		t.Fatal(err)
	}
	if !split {
		t.Fatal("adding 2nd vnode when all at Pmin must trigger scope split")
	}
	// After split v0 has 2*pmin; handover flattens to pmin/pmin... both 8.
	c0, _ := tb.Count(0)
	c1, _ := tb.Count(1)
	if c0 != pmin || c1 != pmin {
		t.Fatalf("counts after 2nd create = %d,%d want %d,%d", c0, c1, pmin, pmin)
	}
	if len(moves) != pmin {
		t.Fatalf("moves = %d, want %d", len(moves), pmin)
	}
	for _, m := range moves {
		if m.From != 0 || m.To != 1 {
			t.Fatalf("unexpected move %+v", m)
		}
	}
}

func TestPlanCreateErrors(t *testing.T) {
	tb := newIntTable(t, map[int]int{0: 8})
	if _, _, err := tb.PlanCreate(99, 8); err == nil {
		t.Fatal("unregistered new vnode must error")
	}
	tb.Add(1)
	tb.SetCount(1, 3)
	if _, _, err := tb.PlanCreate(1, 8); err == nil {
		t.Fatal("nonzero starting count must error")
	}
	tb2 := newIntTable(t, map[int]int{0: 8})
	tb2.Add(1)
	if _, _, err := tb2.PlanCreate(1, 0); err == nil {
		t.Fatal("pmin < 1 must error")
	}
}

// Simulate the global approach purely on counts: consecutive creations must
// keep G4 bounds and reach the perfectly flat distribution at every power of
// two (invariant G5), with σ̄ = 0 there.
func TestConsecutiveCreationsInvariants(t *testing.T) {
	const pmin = 8
	const pmax = 2 * pmin
	tb := NewTable[int](intLess)
	for v := 0; v < 256; v++ {
		if err := tb.Add(v); err != nil {
			t.Fatal(err)
		}
		if _, _, err := tb.PlanCreate(v, pmin); err != nil {
			t.Fatalf("create %d: %v", v, err)
		}
		if err := tb.CheckBounds(pmin, pmax); err != nil {
			t.Fatalf("after create %d: %v", v, err)
		}
		vcount := v + 1
		if vcount&(vcount-1) == 0 { // power of two: invariant G5
			for _, k := range tb.Keys() {
				if c, _ := tb.Count(k); c != pmin {
					t.Fatalf("V=%d (power of 2): vnode %d has %d, want Pmin", vcount, k, c)
				}
			}
			if s := tb.RelStdDev(); s != 0 {
				t.Fatalf("V=%d: σ̄ = %v, want 0", vcount, s)
			}
		}
		// Total partitions always a power of two (invariant G2).
		p := tb.Total()
		if p&(p-1) != 0 {
			t.Fatalf("V=%d: P=%d not a power of two", vcount, p)
		}
	}
}

// Property: after any creation the distribution is flat to within one
// partition — the σ-greedy handover from the max cannot stop earlier.
func TestPlanCreateReachesFlatDistribution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pmin := 1 << (1 + rng.Intn(4))
		n := 1 + rng.Intn(100)
		tb := NewTable[int](intLess)
		for v := 0; v < n; v++ {
			tb.Add(v)
			if _, _, err := tb.PlanCreate(v, pmin); err != nil {
				return false
			}
		}
		minC, maxC := math.MaxInt, 0
		for _, c := range tb.Counts() {
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		return maxC-minC <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanRemove(t *testing.T) {
	tb := newIntTable(t, map[int]int{0: 10, 1: 12, 2: 14})
	dests, err := tb.PlanRemove(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dests) != 14 {
		t.Fatalf("dests = %d, want 14", len(dests))
	}
	c0, _ := tb.Count(0)
	c1, _ := tb.Count(1)
	if c0+c1 != 36 {
		t.Fatalf("total after remove = %d, want 36", c0+c1)
	}
	if d := c0 - c1; d < -1 || d > 1 {
		t.Fatalf("greedy distribution not flat: %d vs %d", c0, c1)
	}
	// First orphan must go to the smallest-count vnode (0 at 10).
	if dests[0] != 0 {
		t.Fatalf("first dest = %d, want 0", dests[0])
	}
}

func TestPlanRemoveLastVnode(t *testing.T) {
	tb := newIntTable(t, map[int]int{7: 4})
	if _, err := tb.PlanRemove(7); err == nil {
		t.Fatal("removing last vnode with partitions must error")
	}
	tb2 := newIntTable(t, map[int]int{7: 0})
	if dests, err := tb2.PlanRemove(7); err != nil || len(dests) != 0 {
		t.Fatalf("removing empty last vnode: %v,%v", dests, err)
	}
	tb3 := newIntTable(t, map[int]int{1: 1})
	if _, err := tb3.PlanRemove(99); err == nil {
		t.Fatal("removing absent vnode must error")
	}
}

func TestMergeNeeded(t *testing.T) {
	tb := newIntTable(t, map[int]int{0: 16, 1: 16})
	if !tb.MergeNeeded(16) {
		t.Fatal("P = V*Pmax must merge: G5 demands all-Pmin at powers of two")
	}
	tb2 := newIntTable(t, map[int]int{0: 17, 1: 16})
	if !tb2.MergeNeeded(16) {
		t.Fatal("P > V*Pmax must require a merge")
	}
	tb3 := newIntTable(t, map[int]int{0: 8, 1: 12, 2: 12})
	if tb3.MergeNeeded(16) {
		t.Fatal("P < V*Pmax must not merge")
	}
	empty := NewTable[int](intLess)
	if empty.MergeNeeded(16) {
		t.Fatal("empty table never needs merge")
	}
}

func TestFlatten(t *testing.T) {
	tb := newIntTable(t, map[int]int{0: 20, 1: 8, 2: 8})
	moves := tb.Flatten(8)
	c0, _ := tb.Count(0)
	c1, _ := tb.Count(1)
	c2, _ := tb.Count(2)
	if c0+c1+c2 != 36 {
		t.Fatal("Flatten must conserve partitions")
	}
	if c0-c1 > 1 || c0-c2 > 1 || c1-c0 > 1 || c2-c0 > 1 {
		t.Fatalf("not flat: %d %d %d", c0, c1, c2)
	}
	if len(moves) == 0 {
		t.Fatal("Flatten must have moved something")
	}
	// Flatten never drives a victim below pmin.
	tb2 := newIntTable(t, map[int]int{0: 9, 1: 8})
	if got := tb2.Flatten(9); len(got) != 0 {
		t.Fatalf("Flatten must respect pmin floor, moved %v", got)
	}
}

func TestRelStdDev(t *testing.T) {
	tb := newIntTable(t, map[int]int{0: 8, 1: 8, 2: 8})
	if s := tb.RelStdDev(); s != 0 {
		t.Fatalf("flat table σ̄ = %v, want 0", s)
	}
	var empty Table[int]
	if empty.RelStdDev() != 0 {
		t.Fatal("empty table σ̄ must be 0")
	}
	zero := newIntTable(t, map[int]int{0: 0})
	if zero.RelStdDev() != 0 {
		t.Fatal("zero-mean table σ̄ must be 0")
	}
}

func TestCheckBounds(t *testing.T) {
	tb := newIntTable(t, map[int]int{0: 8, 1: 16})
	if err := tb.CheckBounds(8, 16); err != nil {
		t.Fatal(err)
	}
	if err := tb.CheckBounds(9, 16); err == nil {
		t.Fatal("count below pmin must fail bounds check")
	}
	if err := tb.CheckBounds(8, 15); err == nil {
		t.Fatal("count above pmax must fail bounds check")
	}
}

func TestDoubleAllAndTotals(t *testing.T) {
	tb := newIntTable(t, map[int]int{0: 3, 1: 5})
	tb.DoubleAll()
	if tot := tb.Total(); tot != 16 {
		t.Fatalf("Total after DoubleAll = %d, want 16", tot)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	counts := tb.Counts()
	if counts[0] != 6 || counts[1] != 10 {
		t.Fatalf("Counts = %v", counts)
	}
	// Counts returns a copy.
	counts[0] = 999
	if c, _ := tb.Count(0); c != 6 {
		t.Fatal("Counts must return a copy")
	}
}
