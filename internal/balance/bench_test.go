package balance

import (
	"strconv"
	"testing"
)

// BenchmarkPlanCreate measures the §2.5 reassignment plan over PDR tables
// of the sizes a group's LPDR reaches (Vmax for the largest figure-6
// configuration is 1024, i.e. the whole DHT in one group).
func BenchmarkPlanCreate(b *testing.B) {
	for _, size := range []int{16, 64, 1024} {
		b.Run("V="+strconv.Itoa(size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				t := NewTable[int](func(a, c int) bool { return a < c })
				for v := 0; v < size; v++ {
					t.Add(v)
					if _, _, err := t.PlanCreate(v, 32); err != nil {
						b.Fatal(err)
					}
				}
				t.Add(size)
				b.StartTimer()
				if _, _, err := t.PlanCreate(size, 32); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
