// Figure-level benchmarks: one per table/figure of the paper's evaluation
// (§4).  Each benchmark regenerates the figure's underlying experiment at
// reduced run count (benchmarks measure cost; cmd/dhtsim reproduces the
// figures at full paper scale) and reports the headline metric via
// b.ReportMetric so `go test -bench` output doubles as a results table:
//
//	sigma%   final σ̄ of the experiment's quality metric (×100)
//	groups   final number of groups (figure 7)
package dbdht_test

import (
	"fmt"
	"strconv"
	"testing"

	"dbdht"
	"dbdht/internal/sim"
)

// benchOpts keeps each figure benchmark to a few hundred milliseconds per
// iteration while preserving the paper's 1024-vnode horizon.
func benchOpts(seed int64) sim.Options {
	return sim.Options{Runs: 4, Vnodes: 1024, Seed: seed, SampleEvery: 1024}
}

func BenchmarkFig4LocalQuality(b *testing.B) {
	for _, pv := range []int{8, 32, 128} {
		b.Run(benchName("PminVmin", pv), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				s, err := sim.LocalQuality(pv, pv, benchOpts(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				last = s.Last()
			}
			b.ReportMetric(100*last, "sigma%")
		})
	}
}

func BenchmarkFig5Theta(b *testing.B) {
	var min int
	for i := 0; i < b.N; i++ {
		pts, err := sim.Theta([]int{8, 16, 32, 64, 128}, 0.5, sim.Options{Runs: 2, Vnodes: 1024, Seed: int64(i), SampleEvery: 1024})
		if err != nil {
			b.Fatal(err)
		}
		best := pts[0]
		for _, p := range pts {
			if p.Theta < best.Theta {
				best = p
			}
		}
		min = best.Vmin
	}
	b.ReportMetric(float64(min), "argmin-Vmin")
}

func BenchmarkFig6VminSweep(b *testing.B) {
	for _, vmin := range []int{8, 64, 512} {
		b.Run(benchName("Vmin", vmin), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				s, err := sim.LocalQuality(32, vmin, benchOpts(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				last = s.Last()
			}
			b.ReportMetric(100*last, "sigma%")
		})
	}
}

func BenchmarkFig7GroupEvolution(b *testing.B) {
	var groups float64
	for i := 0; i < b.N; i++ {
		ge, err := sim.Groups(32, 32, benchOpts(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		groups = ge.Real.Last()
	}
	b.ReportMetric(groups, "groups")
}

func BenchmarkFig8GroupQuality(b *testing.B) {
	var q float64
	for i := 0; i < b.N; i++ {
		ge, err := sim.Groups(32, 32, benchOpts(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		q = ge.Quality.Last()
	}
	b.ReportMetric(100*q, "sigma%")
}

func BenchmarkFig9ConsistentHashing(b *testing.B) {
	for _, k := range []int{32, 64} {
		b.Run(benchName("pts", k), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				s, err := sim.CHQuality(k, benchOpts(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				last = s.Last()
			}
			b.ReportMetric(100*last, "sigma%")
		})
	}
}

func BenchmarkFig9LocalCounterpart(b *testing.B) {
	for _, vmin := range []int{32, 512} {
		b.Run(benchName("Vmin", vmin), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				s, err := sim.LocalQuality(32, vmin, benchOpts(int64(i)))
				if err != nil {
					b.Fatal(err)
				}
				last = s.Last()
			}
			b.ReportMetric(100*last, "sigma%")
		})
	}
}

func BenchmarkStability8192(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		s, err := sim.LocalQuality(32, 32, sim.Options{Runs: 1, Vnodes: 8192, Seed: int64(i), SampleEvery: 8192})
		if err != nil {
			b.Fatal(err)
		}
		last = s.Last()
	}
	b.ReportMetric(100*last, "sigma%")
}

func BenchmarkDoublingRatio(b *testing.B) {
	var r float64
	for i := 0; i < b.N; i++ {
		_, ratios, err := sim.PlateauRatio([]int{16, 32}, 0.25, sim.Options{Runs: 2, Vnodes: 1024, Seed: int64(i), SampleEvery: 8})
		if err != nil {
			b.Fatal(err)
		}
		r = ratios[0]
	}
	b.ReportMetric(r, "ratio")
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}

// benchCluster boots a quiesced data-plane cluster for throughput
// benchmarks: 8 snodes, 32 vnodes, in-memory fabric.
func benchCluster(b *testing.B) *dbdht.Cluster {
	return benchClusterR(b, 1)
}

// benchClusterR is benchCluster with R-way replication.
func benchClusterR(b *testing.B, replicas int) *dbdht.Cluster {
	b.Helper()
	c, err := dbdht.NewCluster(dbdht.ClusterOptions{Pmin: 32, Vmin: 8, Seed: 1, Replicas: replicas})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	for i := 0; i < 8; i++ {
		if _, err := c.AddSnode(); err != nil {
			b.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < 32; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// benchClusterTCPR is benchClusterR over the real TCP fabric on loopback:
// every protocol message is framed, encoded and sent through the kernel's
// network stack, so encode cost and per-connection serialization show up.
func benchClusterTCPR(b *testing.B, replicas int) *dbdht.Cluster {
	b.Helper()
	c, err := dbdht.NewClusterTCP(dbdht.ClusterOptions{Pmin: 32, Vmin: 8, Seed: 1, Replicas: replicas}, "127.0.0.1")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	for i := 0; i < 8; i++ {
		if _, err := c.AddSnode(); err != nil {
			b.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < 32; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkClusterMPutTCP measures batched puts over the TCP fabric at
// batch=256 — the headline wire-path number: it exercises the frame codec,
// the per-connection writer and the snode storage locks end to end, with
// (R=2) and without (R=1) the synchronous replica fan-out.
func BenchmarkClusterMPutTCP(b *testing.B) {
	for _, r := range []int{1, 2} {
		b.Run(benchName("R", r), func(b *testing.B) {
			const size = 256
			c := benchClusterTCPR(b, r)
			value := make([]byte, 64)
			items := make([]dbdht.KV, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range items {
					items[j] = dbdht.KV{Key: fmt.Sprintf("bench-key-%d", (i*size+j)%4096), Value: value}
				}
				results, err := c.MPut(items)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if !r.OK() {
						b.Fatalf("MPut %q: %s", r.Key, r.Err)
					}
				}
			}
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "keys/s")
			lat := c.Latencies().BatchRPC
			b.ReportMetric(1e6*lat.Quantile(0.50), "p50-µs")
			b.ReportMetric(1e6*lat.Quantile(0.95), "p95-µs")
			b.ReportMetric(1e6*lat.Quantile(0.99), "p99-µs")
		})
	}
}

// BenchmarkClusterMPutTCPDurable is BenchmarkClusterMPutTCP R=1 with the
// write-ahead log on: every batch encodes one journal record per touched
// bucket before ack.  fsync=off measures the pure journaling overhead
// (the regression guard against the non-durable baseline); fsync=batch
// adds the group-commit fsync each batch awaits.
func BenchmarkClusterMPutTCPDurable(b *testing.B) {
	for _, mode := range []dbdht.FsyncMode{dbdht.FsyncOff, dbdht.FsyncBatch} {
		b.Run("fsync="+mode.String(), func(b *testing.B) {
			const size = 256
			c, err := dbdht.NewClusterTCP(dbdht.ClusterOptions{
				Pmin: 32, Vmin: 8, Seed: 1,
				Durability: dbdht.DurabilityConfig{
					Dir: b.TempDir(), Fsync: mode, SnapshotInterval: -1,
				},
			}, "127.0.0.1")
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(c.Close)
			for i := 0; i < 8; i++ {
				if _, err := c.AddSnode(); err != nil {
					b.Fatal(err)
				}
			}
			ids := c.Snodes()
			for i := 0; i < 32; i++ {
				if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
					b.Fatal(err)
				}
			}
			value := make([]byte, 64)
			items := make([]dbdht.KV, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range items {
					items[j] = dbdht.KV{Key: fmt.Sprintf("bench-key-%d", (i*size+j)%4096), Value: value}
				}
				results, err := c.MPut(items)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if !r.OK() {
						b.Fatalf("MPut %q: %s", r.Key, r.Err)
					}
				}
			}
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "keys/s")
		})
	}
}

// BenchmarkClusterPut measures single-key puts: one serial request/response
// round-trip per key.  Compare ns/op·batch with BenchmarkClusterMPut at the
// same batch sizes to see the batching win.
func BenchmarkClusterPut(b *testing.B) {
	c := benchCluster(b)
	value := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put(fmt.Sprintf("bench-key-%d", i%4096), value); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "keys/s")
}

// BenchmarkClusterMPut measures batched puts: keys grouped by owner and
// fanned out in parallel across the groups (§3.1), amortizing round-trips.
func BenchmarkClusterMPut(b *testing.B) {
	for _, size := range []int{16, 64, 256} {
		b.Run(benchName("batch", size), func(b *testing.B) {
			c := benchCluster(b)
			value := make([]byte, 64)
			items := make([]dbdht.KV, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range items {
					items[j] = dbdht.KV{Key: fmt.Sprintf("bench-key-%d", (i*size+j)%4096), Value: value}
				}
				results, err := c.MPut(items)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if !r.OK() {
						b.Fatalf("MPut %q: %s", r.Key, r.Err)
					}
				}
			}
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "keys/s")
		})
	}
}

// BenchmarkClusterMPutReplicated measures the cost of durability: every
// batched put is synchronously fanned to R−1 replica snodes before it is
// acknowledged.
func BenchmarkClusterMPutReplicated(b *testing.B) {
	for _, r := range []int{2, 3} {
		b.Run(benchName("R", r), func(b *testing.B) {
			const size = 256
			c := benchClusterR(b, r)
			value := make([]byte, 64)
			items := make([]dbdht.KV, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range items {
					items[j] = dbdht.KV{Key: fmt.Sprintf("bench-key-%d", (i*size+j)%4096), Value: value}
				}
				results, err := c.MPut(items)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if !r.OK() {
						b.Fatalf("MPut %q: %s", r.Key, r.Err)
					}
				}
			}
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "keys/s")
		})
	}
}

// BenchmarkClusterMGet is the read-side counterpart.
func BenchmarkClusterMGet(b *testing.B) {
	for _, size := range []int{16, 64, 256} {
		b.Run(benchName("batch", size), func(b *testing.B) {
			c := benchCluster(b)
			value := make([]byte, 64)
			keys := make([]string, 4096)
			var items []dbdht.KV
			for i := range keys {
				keys[i] = fmt.Sprintf("bench-key-%d", i)
				items = append(items, dbdht.KV{Key: keys[i], Value: value})
			}
			if _, err := c.MPut(items); err != nil {
				b.Fatal(err)
			}
			batch := make([]string, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range batch {
					batch[j] = keys[(i*size+j)%len(keys)]
				}
				results, err := c.MGet(batch)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if !r.OK() || !r.Found {
						b.Fatalf("MGet %q = %+v", r.Key, r)
					}
				}
			}
			b.ReportMetric(float64(b.N*size)/b.Elapsed().Seconds(), "keys/s")
		})
	}
}
