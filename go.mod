module dbdht

go 1.24
