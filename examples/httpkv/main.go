// HTTP KV: the full serving stack in one process — a live cluster, the
// HTTP API from internal/server, and the Go client from package client —
// demonstrating single-key and batched operations over real HTTP, plus a
// Prometheus metrics scrape.  This is what cmd/dhtd runs as a daemon.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"strings"

	"dbdht"
	"dbdht/client"
	"dbdht/internal/server"
)

func main() {
	ctx := context.Background()
	c, err := dbdht.NewCluster(dbdht.ClusterOptions{Pmin: 32, Vmin: 8, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 4; i++ {
		if _, err := c.AddSnode(); err != nil {
			log.Fatal(err)
		}
	}
	ids := c.Snodes()
	for i := 0; i < 16; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			log.Fatal(err)
		}
	}

	ts := httptest.NewServer(server.New(c).Handler())
	defer ts.Close()
	cl := client.New(ts.URL)
	fmt.Printf("serving a %d-snode cluster at %s\n\n", len(ids), ts.URL)

	// Single-key round-trip.
	if err := cl.Put(ctx, "greeting", []byte("hello, DHT")); err != nil {
		log.Fatal(err)
	}
	v, found, err := cl.Get(ctx, "greeting")
	if err != nil || !found {
		log.Fatalf("get greeting: %v (found=%v)", err, found)
	}
	fmt.Printf("GET /v1/kv/greeting -> %q\n", v)

	// Batched writes: one HTTP request, fanned out in parallel across the
	// DHT's groups server-side.
	items := make([]client.Item, 100)
	keys := make([]string, 100)
	for i := range items {
		keys[i] = fmt.Sprintf("user/%02d", i)
		items[i] = client.Item{Key: keys[i], Value: []byte(fmt.Sprintf("profile-%02d", i))}
	}
	if _, err := cl.MPut(ctx, items); err != nil {
		log.Fatal(err)
	}
	results, err := cl.MGet(ctx, keys)
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, r := range results {
		if r.OK() && r.Found {
			hits++
		}
	}
	fmt.Printf("POST /v1/kv:batch put+get of %d keys -> %d hits\n", len(keys), hits)

	st, err := cl.Status(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET /v1/status -> %d snodes, %d vnodes, %d groups, %d keys, σ̄(Qv)=%.1f%%\n",
		len(st.Snodes), len(st.Vnodes), st.Groups, st.Keys, 100*st.SigmaQv)

	text, err := cl.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGET /v1/metrics (excerpt):")
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "dbdht_keys ") ||
			strings.HasPrefix(line, "dbdht_batches_total") ||
			strings.HasPrefix(line, "dbdht_msgs_total") {
			fmt.Println("  " + line)
		}
	}
}
