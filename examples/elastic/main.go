// Elastic membership: the base model's dynamic features (§1) on a live
// cluster — nodes join, change their enrollment level as their resources
// shift, and leave gracefully, while the DHT stays balanced and no data is
// lost.  The run prints the migration cost of every reconfiguration, the
// storage/time side of the paper's quality-vs-resources tradeoff (§4.1.2).
package main

import (
	"fmt"
	"log"

	"dbdht"
	"dbdht/internal/metrics"
)

func report(c *dbdht.Cluster, phase string, prevKeys int64) int64 {
	if err := c.Ping(); err != nil {
		log.Fatal(err)
	}
	snap := c.Snapshot()
	quotas := snap.VnodeQuotas()
	st := c.StatsTotal()
	fmt.Printf("%-34s vnodes=%3d  σ̄(Qv)=%6.2f%%  keys moved so far=%d (+%d)\n",
		phase, len(snap.Vnodes), 100*metrics.RelStdDev(quotas), st.KeysMoved, st.KeysMoved-prevKeys)
	return st.KeysMoved
}

func main() {
	c, err := dbdht.NewCluster(dbdht.ClusterOptions{Pmin: 16, Vmin: 4, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Phase 1: three nodes, three vnodes each, plus a working set.
	for i := 0; i < 3; i++ {
		if _, err := c.AddSnode(); err != nil {
			log.Fatal(err)
		}
	}
	for _, id := range c.Snodes() {
		if _, err := c.SetEnrollment(id, 3); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 3000; i++ {
		if err := c.Put(fmt.Sprintf("key-%d", i), []byte("payload")); err != nil {
			log.Fatal(err)
		}
	}
	moved := report(c, "3 nodes x 3 vnodes + 3000 keys", 0)

	// Phase 2: a powerful node joins and enrolls heavily.
	big, err := c.AddSnode()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.SetEnrollment(big, 6); err != nil {
		log.Fatal(err)
	}
	moved = report(c, fmt.Sprintf("node %d joins with 6 vnodes", big), moved)

	// Phase 3: an original node is repurposed — its enrollment halves.
	victim := c.Snodes()[0]
	if _, err := c.SetEnrollment(victim, 1); err != nil {
		log.Fatal(err)
	}
	moved = report(c, fmt.Sprintf("node %d shrinks to 1 vnode", victim), moved)

	// Phase 4: another node leaves the cluster entirely.
	leaver := c.Snodes()[1]
	if err := c.RemoveSnode(leaver); err != nil {
		log.Fatal(err)
	}
	moved = report(c, fmt.Sprintf("node %d leaves gracefully", leaver), moved)
	_ = moved

	// All 3000 keys survived four reconfigurations.
	for i := 0; i < 3000; i++ {
		if _, found, err := c.Get(fmt.Sprintf("key-%d", i)); err != nil || !found {
			log.Fatalf("key-%d lost: %v %v", i, err, found)
		}
	}
	fmt.Println("all 3000 keys intact after join, re-enrollment and leave")
}
