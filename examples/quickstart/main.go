// Quickstart: build a local-approach DHT (the paper's contribution), grow
// it to 1024 vnodes, and watch the quality of the balancement evolve the
// way figure 4 describes — perfect balance while one group exists, a
// bounded plateau once groups multiply.
package main

import (
	"fmt"
	"log"

	"dbdht"
)

func main() {
	d, err := dbdht.NewLocal(dbdht.Options{Pmin: 32, Vmin: 32, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("growing a DHT with Pmin=Vmin=32 to 1024 vnodes")
	fmt.Println("     V  groups  σ̄(Qv) %   σ̄(Qg) %")
	for v := 1; v <= 1024; v++ {
		if _, _, err := d.AddVnode(); err != nil {
			log.Fatal(err)
		}
		if v&(v-1) == 0 || v == 96 || v == 192 { // powers of two + zone-2 samples
			fmt.Printf("  %4d  %6d  %8.2f  %8.2f\n",
				v, d.Groups(), 100*d.QualityOfBalancement(), 100*d.GroupBalancement())
		}
	}

	// The DHT is a real hash table: look keys up.
	for _, key := range []string{"alpha", "beta", "gamma"} {
		v, ok := d.LookupKey([]byte(key))
		if !ok {
			log.Fatalf("lookup %q failed", key)
		}
		gid, _ := d.GroupOf(v)
		fmt.Printf("key %-6q → vnode %d (group %v)\n", key, v, gid)
	}

	// Invariants G1′–G5′, L1, L2 hold at every step; verify once more.
	if err := d.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("work done: %d handovers, %d scope splits, %d group splits\n",
		st.Handovers, st.PartitionSplits, st.GroupSplits)
}
