// Heterogeneous cluster: the base model's motivating feature (§1) — the
// share of the DHT handled by each cluster node tracks the resources it
// enrolls.  A node's enrollment level is its vnode count, so a node with
// twice the capacity enrolls twice the vnodes and ends up with twice the
// quota.  The same experiment on weighted Consistent Hashing shows the
// deterministic model tracking weights far more tightly.
package main

import (
	"fmt"
	"log"

	"dbdht"
	"dbdht/internal/metrics"
)

func main() {
	// A 16-node cluster from three machine generations: weights 1, 2 and 4
	// (total enrollment 32 vnodes).
	weights := []int{4, 4, 4, 4, 2, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1}

	d, err := dbdht.NewLocal(dbdht.Options{Pmin: 32, Vmin: 16, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	// Node i enrolls weights[i] vnodes; remember which vnode serves whom.
	owner := map[dbdht.VnodeID]int{}
	for node, w := range weights {
		for j := 0; j < w; j++ {
			id, _, err := d.AddVnode()
			if err != nil {
				log.Fatal(err)
			}
			owner[id] = node
		}
	}

	// Node shares: sum of the node's vnode quotas.
	quotas := d.VnodeQuotas()
	shares := make([]float64, len(weights))
	i := 0
	for _, q := range quotas {
		shares[owner[dbdht.VnodeID(i)]] += q
		i++
	}

	total := 0
	for _, w := range weights {
		total += w
	}
	fmt.Println("node  weight  ideal %  actual %  actual/ideal")
	norm := make([]float64, len(weights))
	for n, w := range weights {
		ideal := float64(w) / float64(total)
		norm[n] = shares[n] / ideal
		fmt.Printf("%4d  %6d  %7.2f  %8.2f  %12.3f\n", n, w, 100*ideal, 100*shares[n], norm[n])
	}
	fmt.Printf("\nweight-tracking error σ̄ (0 = perfectly proportional): %.2f%%\n",
		100*metrics.RelStdDevAround(norm, 1))

	// Contrast with weighted Consistent Hashing (32 points per weight unit).
	ring, err := dbdht.NewConsistentHashing(32, 7)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range weights {
		if _, err := ring.AddNode(w); err != nil {
			log.Fatal(err)
		}
	}
	chShares := ring.Quotas()
	chNorm := make([]float64, len(weights))
	for n, w := range weights {
		chNorm[n] = chShares[n] / (float64(w) / float64(total))
	}
	fmt.Printf("weighted Consistent Hashing error σ̄:              %.2f%%\n",
		100*metrics.RelStdDevAround(chNorm, 1))
}
