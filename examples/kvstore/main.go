// KV store: a live message-passing cluster — goroutine snodes over an
// in-memory fabric — storing real data that migrates as the DHT rebalances.
// This is the system a downstream user would actually run: enroll nodes,
// put/get keys, grow the cluster, and never lose a key.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dbdht"
	"dbdht/internal/workload"
)

func main() {
	c, err := dbdht.NewCluster(dbdht.ClusterOptions{Pmin: 32, Vmin: 8, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Four cluster nodes, four vnodes each.
	for i := 0; i < 4; i++ {
		if _, err := c.AddSnode(); err != nil {
			log.Fatal(err)
		}
	}
	for _, id := range c.Snodes() {
		if _, err := c.SetEnrollment(id, 4); err != nil {
			log.Fatal(err)
		}
	}

	// Load a zipf-skewed working set.
	rng := rand.New(rand.NewSource(1))
	keys, err := workload.NewZipf(rng, 1.3, 2000)
	if err != nil {
		log.Fatal(err)
	}
	stored := map[string]string{}
	for i := 0; i < 5000; i++ {
		k := keys.Next()
		v := fmt.Sprintf("value-of-%s-%d", k, i)
		if err := c.Put(k, []byte(v)); err != nil {
			log.Fatal(err)
		}
		stored[k] = v
	}
	fmt.Printf("loaded %d distinct keys into a 4-node cluster\n", len(stored))

	// Grow the cluster: two new nodes enroll; partitions and their data
	// migrate to the newcomers while the store stays fully available.
	for i := 0; i < 2; i++ {
		id, err := c.AddSnode()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.SetEnrollment(id, 4); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snode %d joined with 4 vnodes\n", id)
	}

	// Every key is still there, byte for byte.
	for k, want := range stored {
		got, found, err := c.Get(k)
		if err != nil || !found || string(got) != want {
			log.Fatalf("key %q lost or corrupted after growth: %v %v %q", k, err, found, got)
		}
	}
	fmt.Printf("verified all %d keys after rebalancing\n", len(stored))

	st := c.StatsTotal()
	fmt.Printf("cluster moved %d partitions (%d keys) across %d group splits; %d messages total\n",
		st.PartitionsSent, st.KeysMoved, st.GroupSplits, st.MsgsIn)
}
