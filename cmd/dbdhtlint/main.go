// dbdhtlint runs the dbdht project-invariant analyzer suite
// (internal/analysis: wiretag, lockguard, nogob, atomicfield, tracectx).
//
// Standalone, over source (no build cache needed):
//
//	dbdhtlint [-only a,b] [packages]      # default ./...
//
// As a vet tool, over the build graph (uses go vet's export data, so
// cross-package types come from the compiler, not from source):
//
//	go vet -vettool=$(pwd)/bin/dbdhtlint ./...
//
// Exit status: 0 clean, 1 findings (standalone), 2 findings (vet
// protocol), 3 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dbdht/internal/analysis"
)

func main() {
	// The go vet driver probes its -vettool with -V=full (version for the
	// build cache key) and -flags (supported flags, as JSON), then invokes
	// it once per package with a single *.cfg argument.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// A "devel" version line must end in a buildID= field or the
			// go command rejects the tool.
			fmt.Printf("%s version devel buildID=dbdht-invariants-suite\n", filepath.Base(os.Args[0]))
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(arg, ".cfg"):
			os.Exit(runVet(arg))
		}
	}
	os.Exit(runStandalone())
}

func runStandalone() int {
	fs := flag.NewFlagSet("dbdhtlint", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Parse(os.Args[1:])

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(os.Stderr, "dbdhtlint: unknown analyzer %q\n", n)
			return 3
		}
		analyzers = sel
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbdhtlint:", err)
		return 3
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbdhtlint:", err)
		return 3
	}
	dirs, err := loader.ExpandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbdhtlint:", err)
		return 3
	}
	findings := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbdhtlint:", err)
			return 3
		}
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbdhtlint:", err)
			return 3
		}
		for _, d := range diags {
			rel := d.Pos
			if r, err := filepath.Rel(cwd, rel.Filename); err == nil && !strings.HasPrefix(r, "..") {
				rel.Filename = r
			}
			fmt.Printf("%s: %s: %s\n", rel, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "dbdhtlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// vetConfig is the subset of the go vet unit config this tool reads (the
// same JSON shape x/tools' unitchecker consumes).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbdhtlint:", err)
		return 3
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dbdhtlint: parsing %s: %v\n", cfgPath, err)
		return 3
	}
	// The tool exports no facts, so downstream units never need real vetx
	// content — but the driver requires the file to exist.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	// Test variants ("p [p.test]", "p_test [p.test]") re-run the same
	// production sources plus _test.go files; the invariants live in
	// production code only, so analyze the pure unit and skip variants.
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		writeVetx()
		return 0
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbdhtlint:", err)
			return 3
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		writeVetx()
		return 0
	}

	// Resolve imports through the compiler's export data, exactly as the
	// driver built it: source path -> canonical path -> package file.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "dbdhtlint:", err)
		return 3
	}

	lockPath := ""
	if l, lerr := analysis.NewLoader(cfg.Dir); lerr == nil {
		lockPath = l.TagsLockPath
	}
	pkg := &analysis.Package{
		Path:         cfg.ImportPath,
		Dir:          cfg.Dir,
		Fset:         fset,
		Files:        files,
		Types:        tpkg,
		Info:         info,
		TagsLockPath: lockPath,
	}
	diags, err := analysis.RunAnalyzers(pkg, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbdhtlint:", err)
		return 3
	}
	writeVetx()
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
		}
		return 2
	}
	return 0
}
