// Command dhtkv runs a live dbdht cluster end to end: it boots N snodes
// over the chosen fabric, enrolls vnodes, drives a key/value workload, and
// prints the distribution quality and runtime cost counters.
//
// Usage:
//
//	dhtkv -snodes 8 -vnodes 32 -ops 20000 -workload zipf
//	dhtkv -transport tcp -snodes 4 -vnodes 16 -ops 5000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"dbdht"
	"dbdht/internal/metrics"
	"dbdht/internal/workload"
)

func main() {
	var (
		snodes    = flag.Int("snodes", 8, "cluster nodes")
		vnodes    = flag.Int("vnodes", 32, "total vnodes to enroll (round-robin)")
		ops       = flag.Int("ops", 10000, "data operations to run")
		keys      = flag.Int("keys", 5000, "distinct keys in the workload")
		valSize   = flag.Int("valsize", 64, "value size in bytes")
		wl        = flag.String("workload", "uniform", "key distribution: uniform | zipf | seq")
		pmin      = flag.Int("pmin", 32, "Pmin (power of two)")
		vmin      = flag.Int("vmin", 8, "Vmin (power of two)")
		seed      = flag.Int64("seed", 1, "seed")
		transport = flag.String("transport", "mem", "fabric: mem | tcp")
	)
	flag.Parse()
	if err := run(*snodes, *vnodes, *ops, *keys, *valSize, *wl, *pmin, *vmin, *seed, *transport); err != nil {
		fmt.Fprintf(os.Stderr, "dhtkv: %v\n", err)
		os.Exit(1)
	}
}

func run(snodes, vnodes, ops, keys, valSize int, wl string, pmin, vmin int, seed int64, fabric string) error {
	opts := dbdht.ClusterOptions{Pmin: pmin, Vmin: vmin, Seed: seed}
	var (
		c   *dbdht.Cluster
		err error
	)
	switch fabric {
	case "mem":
		c, err = dbdht.NewCluster(opts)
	case "tcp":
		c, err = dbdht.NewClusterTCP(opts, "127.0.0.1")
	default:
		return fmt.Errorf("unknown transport %q", fabric)
	}
	if err != nil {
		return err
	}
	defer c.Close()

	for i := 0; i < snodes; i++ {
		if _, err := c.AddSnode(); err != nil {
			return err
		}
	}
	ids := c.Snodes()
	start := time.Now()
	for i := 0; i < vnodes; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			return err
		}
	}
	enrollDur := time.Since(start)

	rng := rand.New(rand.NewSource(seed + 1))
	var gen workload.KeyGen
	switch wl {
	case "uniform":
		gen, err = workload.NewUniform(rng, keys)
	case "zipf":
		gen, err = workload.NewZipf(rng, 1.2, keys)
	case "seq":
		gen = workload.NewSequential("key")
	default:
		return fmt.Errorf("unknown workload %q", wl)
	}
	if err != nil {
		return err
	}
	mix, err := workload.NewMix(rng, gen, 0.4, 0.05, valSize)
	if err != nil {
		return err
	}

	start = time.Now()
	var puts, gets, dels, hits int
	for i := 0; i < ops; i++ {
		op := mix.Next()
		switch op.Kind {
		case workload.Put:
			if err := c.Put(op.Key, op.Value); err != nil {
				return err
			}
			puts++
		case workload.Get:
			_, found, err := c.Get(op.Key)
			if err != nil {
				return err
			}
			if found {
				hits++
			}
			gets++
		case workload.Delete:
			if _, err := c.Delete(op.Key); err != nil {
				return err
			}
			dels++
		}
	}
	opsDur := time.Since(start)

	if err := c.Ping(); err != nil {
		return err
	}
	snap := c.Snapshot()
	quotas := snap.VnodeQuotas()
	perNode := make(map[int]float64)
	keysStored := 0
	for i, v := range snap.Vnodes {
		perNode[int(v.Host)] += quotas[i]
		keysStored += v.Keys
	}
	nodeQuotas := make([]float64, 0, len(perNode))
	for _, q := range perNode {
		nodeQuotas = append(nodeQuotas, q)
	}
	st := c.StatsTotal()

	fmt.Printf("cluster: %d snodes, %d vnodes (Pmin=%d, Vmin=%d, fabric=%s)\n", snodes, vnodes, pmin, vmin, fabric)
	fmt.Printf("enrollment: %v (%.1f vnode joins/s)\n", enrollDur.Round(time.Millisecond), float64(vnodes)/enrollDur.Seconds())
	fmt.Printf("workload: %d ops in %v (%.0f ops/s) — %d puts, %d gets (%d hits), %d deletes\n",
		ops, opsDur.Round(time.Millisecond), float64(ops)/opsDur.Seconds(), puts, gets, hits, dels)
	fmt.Printf("stored keys: %d across %d vnodes\n", keysStored, len(snap.Vnodes))
	fmt.Printf("balancement: σ̄(Qv) = %.2f%%  σ̄(Qn) = %.2f%%\n",
		100*metrics.RelStdDev(quotas), 100*metrics.RelStdDev(nodeQuotas))
	fmt.Printf("runtime cost: %d msgs, %d forwards, %d partitions moved, %d keys moved, %d group splits\n",
		st.MsgsIn, st.Forwards, st.PartitionsSent, st.KeysMoved, st.GroupSplits)
	return nil
}
