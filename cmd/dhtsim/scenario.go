// Nemesis scenarios: a scenario is a value — {topology, workload,
// nemesis schedule, invariants} — and the runner is one generic loop, so
// new fault campaigns are data, not code.  Every source of randomness
// (key choice, op mix, values, drop coins, jitter draws) derives from
// the -seed flag, so a failing run reproduces exactly from its printed
// seed.  Each run emits a BENCH_nemesis_<name>.json record with the
// machine-checked invariant verdicts and the latency tail.
package main

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"text/tabwriter"
	"time"

	"dbdht"
	"dbdht/internal/invariant"
	"dbdht/internal/workload"
)

// scnTopo is the cluster a scenario runs on.
type scnTopo struct {
	snodes, vnodes int
	replicas       int
	pmin, vmin     int
	rpcTimeout     time.Duration
	antiEntropy    time.Duration
	durable        bool // journal to a temp dir, fsync=batch
}

// scnLoad is the workload a scenario applies: `workers` goroutines each
// run `ops` operations of a YCSB-style mix over a private zipfian or
// uniform key stream.  Per-worker key prefixes keep every key
// single-writer, which is what makes "the last acknowledged value" well
// defined for the invariant checkers.
type scnLoad struct {
	workers   int
	ops       int     // per worker; fixed so the key stream is a pure function of the seed
	rate      float64 // aggregate open-loop target op/s (0 = closed loop)
	keys      int     // per-worker key-space size
	zipf      float64 // zipf exponent (0 = uniform keys)
	ratios    workload.MixRatios
	valueSize int
	scanLen   int
	blobEvery int // every n-th op per worker writes a chunked blob instead
	blobSize  int
	blobChunk int
}

// scnEvent is one nemesis schedule entry, fired `at` after the workload
// starts.  heal marks the event the convergence clock starts from.
type scnEvent struct {
	at   time.Duration
	desc string
	heal bool
	do   func(*scnEnv) error
}

// scnEnv is what nemesis events and probes act on.
type scnEnv struct {
	c    *dbdht.Cluster
	net  *dbdht.NetFaults
	disk *dbdht.DiskFaults
	ids  []dbdht.SnodeID
}

// scenario is a complete nemesis campaign.
type scenario struct {
	name, title string
	topo        scnTopo
	load        scnLoad
	nemesis     []scnEvent
	staleBound  time.Duration // bounded-staleness budget for mid-run reads
	convergeIn  time.Duration // deadline for convergence after heal
	maxSigma    float64       // quota deviation [%] the cluster must settle under
}

// --- the scenario catalog ---

// partitionScenario: a 2s symmetric partition splits the snodes in half
// under sustained zipfian writes (clients stay connected, so writes ack
// from primaries while cross-cut replication lags), then heals.
// Anti-entropy must re-converge and no acknowledged write may be lost.
func partitionScenario() scenario {
	return scenario{
		name:  "partition",
		title: "2s symmetric partition between snode halves under zipfian writes, then heal",
		topo: scnTopo{
			snodes: 6, vnodes: 24, replicas: 2, pmin: 32, vmin: 8,
			rpcTimeout: 1 * time.Second, antiEntropy: 50 * time.Millisecond,
		},
		load: scnLoad{
			workers: 4, ops: 1500, rate: 1500, keys: 2000, zipf: 1.2,
			ratios: workload.MixRatios{Update: 0.8}, valueSize: 64,
		},
		nemesis: []scnEvent{
			{at: 1 * time.Second, desc: "partition snodes {0..2} | {3..5}",
				do: func(e *scnEnv) error { e.net.Partition(e.ids[:3], e.ids[3:]); return nil }},
			{at: 3 * time.Second, desc: "heal", heal: true,
				do: func(e *scnEnv) error { e.net.Heal(); return nil }},
		},
		staleBound: 2 * time.Second,
		convergeIn: 20 * time.Second,
		maxSigma:   50,
	}
}

// slowlinkScenario: the classic flaky WAN link — 250ms ± 50ms one-way
// delay plus 5% frame loss in both directions between the halves.
// Nothing is down, everything is slow; acks must survive it.
func slowlinkScenario() scenario {
	return scenario{
		name:  "slowlink",
		title: "250ms±50ms delay + 5% drop between snode halves under a read-mostly mix, then heal",
		topo: scnTopo{
			snodes: 6, vnodes: 24, replicas: 2, pmin: 32, vmin: 8,
			rpcTimeout: 1 * time.Second, antiEntropy: 50 * time.Millisecond,
		},
		load: scnLoad{
			workers: 4, ops: 1200, rate: 1200, keys: 2000, zipf: 1.2,
			ratios: workload.MixRatios{Update: 0.3}, valueSize: 64,
		},
		nemesis: []scnEvent{
			{at: 1 * time.Second, desc: "slow+lossy link snodes {0..2} | {3..5} (250ms±50ms, drop 5%)",
				do: func(e *scnEnv) error {
					a, b := e.ids[:3], e.ids[3:]
					e.net.SetLinkDelay(a, b, 250*time.Millisecond, 50*time.Millisecond)
					e.net.SetLinkDelay(b, a, 250*time.Millisecond, 50*time.Millisecond)
					e.net.SetLinkDrop(a, b, 0.05)
					e.net.SetLinkDrop(b, a, 0.05)
					return nil
				}},
			{at: 3 * time.Second, desc: "heal", heal: true,
				do: func(e *scnEnv) error { e.net.Heal(); return nil }},
		},
		staleBound: 2 * time.Second,
		convergeIn: 20 * time.Second,
		maxSigma:   50,
	}
}

// slowdiskScenario: the WAL's fsyncs turn slow (20ms±10ms) and start
// failing 20% of the time mid-run.  Failed fsyncs re-buffer and retry,
// so durability waits stretch but no acknowledged write may be lost.
func slowdiskScenario() scenario {
	return scenario{
		name:  "slowdisk",
		title: "slow (20ms±10ms) and failing (20%) fsyncs under fsync=batch writes, then heal",
		topo: scnTopo{
			snodes: 4, vnodes: 16, replicas: 2, pmin: 32, vmin: 8,
			rpcTimeout: 2 * time.Second, antiEntropy: 50 * time.Millisecond,
			durable: true,
		},
		load: scnLoad{
			workers: 4, ops: 900, rate: 900, keys: 2000, zipf: 1.2,
			ratios: workload.MixRatios{Update: 0.8}, valueSize: 64,
		},
		nemesis: []scnEvent{
			{at: 1 * time.Second, desc: "slow fsync 20ms±10ms, fsync error rate 20%",
				do: func(e *scnEnv) error {
					e.disk.SetSlowFsync(20*time.Millisecond, 10*time.Millisecond)
					e.disk.SetFsyncErrorRate(0.2)
					return nil
				}},
			{at: 3 * time.Second, desc: "heal", heal: true,
				do: func(e *scnEnv) error { e.disk.Heal(); return nil }},
		},
		staleBound: 2 * time.Second,
		convergeIn: 20 * time.Second,
		maxSigma:   50,
	}
}

// ycsbScenario: no nemesis — the YCSB-B read-mostly mix with short
// scans and periodic chunked 64KiB blobs, open-loop paced.  The
// baseline the fault campaigns are read against.
func ycsbScenario() scenario {
	s := scenario{
		name:  "ycsb",
		title: "YCSB-B (95/5) with scans and chunked 64KiB blobs, open-loop paced, no nemesis",
		topo: scnTopo{
			snodes: 4, vnodes: 16, replicas: 2, pmin: 32, vmin: 8,
			rpcTimeout: 2 * time.Second, antiEntropy: 100 * time.Millisecond,
		},
		load: scnLoad{
			workers: 4, ops: 2000, rate: 4000, keys: 4000, zipf: 1.2,
			valueSize: 128, scanLen: 8,
			blobEvery: 500, blobSize: 64 << 10, blobChunk: 8 << 10,
		},
		staleBound: 2 * time.Second,
		convergeIn: 10 * time.Second,
		maxSigma:   50,
	}
	s.load.ratios = workload.YCSBB()
	s.load.ratios.Scan = 0.05
	return s
}

// --- the generic runner ---

// runScenario builds the topology, applies the workload while firing
// the nemesis schedule, then machine-checks the invariants and writes
// the BENCH record.  Any failed invariant is an error.
func runScenario(sc scenario, seed int64, benchDir string) error {
	fmt.Printf("\n== nemesis %s: %s ==\n", sc.name, sc.title)
	fmt.Printf("seed %d — rerun with -exp %s -seed %d to reproduce the exact fault schedule and key stream\n",
		seed, sc.name, seed)

	netFaults := dbdht.NewNetFaults(seed)
	opts := dbdht.ClusterOptions{
		Pmin: sc.topo.pmin, Vmin: sc.topo.vmin, Seed: seed,
		Replicas:            sc.topo.replicas,
		RPCTimeout:          sc.topo.rpcTimeout,
		AntiEntropyInterval: sc.topo.antiEntropy,
		Faults:              netFaults,
	}
	env := &scnEnv{net: netFaults}
	if sc.topo.durable {
		dir, err := os.MkdirTemp("", "dbdht-nemesis-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		env.disk = dbdht.NewDiskFaults(seed + 1)
		opts.Durability = dbdht.DurabilityConfig{
			Dir: dir, Fsync: dbdht.FsyncBatch, SnapshotInterval: -1,
			Faults: env.disk,
		}
	}
	c, err := dbdht.NewCluster(opts)
	if err != nil {
		return err
	}
	defer c.Close()
	env.c = c
	for i := 0; i < sc.topo.snodes; i++ {
		if _, err := c.AddSnode(); err != nil {
			return err
		}
	}
	env.ids = c.Snodes()
	for i := 0; i < sc.topo.vnodes; i++ {
		if _, _, err := c.CreateVnode(env.ids[i%len(env.ids)]); err != nil {
			return err
		}
	}

	// Print the deterministic nemesis schedule up front.
	for _, ev := range sc.nemesis {
		fmt.Printf("  t=%-6v %s\n", ev.at, ev.desc)
	}

	rec := invariant.NewRecorder()
	var pacer *workload.Pacer
	if sc.load.rate > 0 {
		if pacer, err = workload.NewPacer(sc.load.rate); err != nil {
			return err
		}
	}

	// Nemesis firing runs beside the workload; a fired event's error
	// aborts the run.
	start := time.Now()
	var healedAt time.Time
	nemErr := make(chan error, 1)
	nemDone := make(chan struct{})
	go func() {
		defer close(nemDone)
		for _, ev := range sc.nemesis {
			if wait := time.Until(start.Add(ev.at)); wait > 0 {
				time.Sleep(wait)
			}
			fmt.Printf("  [%7.3fs] nemesis: %s\n", time.Since(start).Seconds(), ev.desc)
			if err := ev.do(env); err != nil {
				nemErr <- fmt.Errorf("nemesis %q: %w", ev.desc, err)
				return
			}
			if ev.heal {
				healedAt = time.Now()
			}
		}
	}()

	var wg sync.WaitGroup
	workerErrs := make(chan error, sc.load.workers)
	prints := make([]uint64, sc.load.workers)
	for w := 0; w < sc.load.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fpw, err := runWorker(c, rec, pacer, sc.load, seed, w)
			prints[w] = fpw
			if err != nil {
				workerErrs <- fmt.Errorf("worker %d: %w", w, err)
			}
		}(w)
	}
	wg.Wait()
	<-nemDone
	select {
	case err := <-nemErr:
		return err
	case err := <-workerErrs:
		return err
	default:
	}
	loadDur := time.Since(start)
	if healedAt.IsZero() {
		healedAt = time.Now() // no heal event: converge from workload end
	}

	// Key-stream fingerprint: XOR of the per-worker FNV sums over every
	// generated key.  Two runs with one seed must print the same value.
	var fingerprint uint64
	for _, p := range prints {
		fingerprint ^= p
	}
	fmt.Printf("  key-stream fingerprint %016x (seed-stable)\n", fingerprint)

	// Invariant 3 first — it polls until the cluster goes quiet, and the
	// final read-back for invariant 1 wants the repaired state.
	conv := invariant.CheckConvergence(healedAt, sc.convergeIn, 100*time.Millisecond, 3, sc.maxSigma,
		func() (int64, float64) {
			repairs := c.StatsTotal().ReplRepairs
			sigma := 0.0
			if loads, err := c.LoadReport(); err == nil {
				sigma = 100 * quotaSigmaOf(loads)
			}
			return repairs, sigma
		})

	acked := rec.AckedKeys()
	final := make(map[string]invariant.ReadBack, len(acked))
	for off := 0; off < len(acked); off += 4096 {
		end := min(off+4096, len(acked))
		res, err := c.MGet(acked[off:end])
		if err != nil {
			return fmt.Errorf("final read-back: %w", err)
		}
		for _, r := range res {
			if !r.OK() {
				continue // an erroring read stays absent = counted lost
			}
			final[r.Key] = invariant.ReadBack{Value: r.Value, Found: r.Found}
		}
	}
	verdicts := []invariant.Verdict{
		rec.CheckNoAckedLoss(final),
		rec.CheckBoundedStaleness(sc.staleBound),
		conv,
	}

	writes, ackedN, reads := rec.Counts()
	lat := c.Latencies()
	us := func(q float64) float64 { return 1e6 * lat.BatchRPC.Quantile(q) }
	st := c.StatsTotal()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "writes\tacked\treads\tload [s]\trepl lagged\trepairs\tbatch-RPC p50 [µs]\tp95 [µs]\tp99 [µs]")
	fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f\t%d\t%d\t%.0f\t%.0f\t%.0f\n",
		writes, ackedN, reads, loadDur.Seconds(), st.ReplLagged, st.ReplRepairs,
		us(0.50), us(0.95), us(0.99))
	tw.Flush()
	pass := true
	for _, v := range verdicts {
		fmt.Printf("  %s\n", v)
		if !v.Pass {
			pass = false
		}
	}

	if err := writeScenarioRecord(sc, seed, fingerprint, verdicts, pass, benchDir, map[string]float64{
		"writes": float64(writes), "acked": float64(ackedN), "reads": float64(reads),
		"load_s": loadDur.Seconds(), "repl_lagged": float64(st.ReplLagged),
		"repl_repairs":     float64(st.ReplRepairs),
		"batch_rpc_p50_us": us(0.50), "batch_rpc_p95_us": us(0.95), "batch_rpc_p99_us": us(0.99),
	}); err != nil {
		return err
	}
	if !pass {
		return fmt.Errorf("nemesis %s: invariant violation (see verdicts above)", sc.name)
	}
	return nil
}

// runWorker drives one worker's op stream and returns the worker's
// key-stream fingerprint.  All randomness derives from (seed, w), so
// the stream — keys, kinds, values — is identical across runs.
func runWorker(c *dbdht.Cluster, rec *invariant.Recorder, pacer *workload.Pacer, load scnLoad, seed int64, w int) (uint64, error) {
	rng := rand.New(rand.NewSource(seed + int64(w)*1_000_003))
	var keys workload.KeyGen
	var err error
	if load.zipf > 0 {
		keys, err = workload.NewZipf(rng, load.zipf, load.keys)
	} else {
		keys, err = workload.NewUniform(rng, load.keys)
	}
	if err != nil {
		return 0, err
	}
	gen, err := workload.NewGen(rng, keys, load.ratios, load.valueSize, max(load.scanLen, 1))
	if err != nil {
		return 0, err
	}

	prefix := fmt.Sprintf("w%d-", w)
	fp := fnv.New64a()
	var puts []dbdht.KV
	putIdx := make(map[string]int) // key → index in puts
	var gets []string
	blobs := 0

	flushPuts := func() error {
		if len(puts) == 0 {
			return nil
		}
		batch := puts
		puts, putIdx = nil, make(map[string]int)
		start := time.Now()
		res, err := c.MPut(batch)
		if err != nil {
			// Whole-call failure: every write is unacknowledged but may
			// still have landed — record as indeterminate.
			for _, kv := range batch {
				rec.RecordWrite(kv.Key, kv.Value, start, false)
			}
			return nil
		}
		for _, r := range res {
			var val []byte
			for _, kv := range batch {
				if kv.Key == r.Key {
					val = kv.Value
					break
				}
			}
			rec.RecordWrite(r.Key, val, start, r.OK())
		}
		return nil
	}
	flushGets := func() error {
		if len(gets) == 0 {
			return nil
		}
		batch := gets
		gets = nil
		start := time.Now()
		res, err := c.MGet(batch)
		if err != nil {
			return nil // whole-call failure: nothing was observed
		}
		end := time.Now()
		for _, r := range res {
			if r.OK() {
				rec.RecordRead(r.Key, r.Value, r.Found, start, end)
			}
		}
		return nil
	}

	const batchSize = 32
	// A hot zipfian key can recur within one pending batch; the later
	// value supersedes the unsent earlier one, keeping every MPut free
	// of duplicate keys so "the last acknowledged value" stays exact.
	addPut := func(key string, val []byte) error {
		if j, ok := putIdx[key]; ok {
			puts[j].Value = val
			return nil
		}
		putIdx[key] = len(puts)
		puts = append(puts, dbdht.KV{Key: key, Value: val})
		if len(puts) >= batchSize {
			return flushPuts()
		}
		return nil
	}
	for i := 0; i < load.ops; i++ {
		if pacer != nil {
			pacer.Wait()
		}
		if load.blobEvery > 0 && i > 0 && i%load.blobEvery == 0 {
			// A chunked blob replaces this op: one MPut carrying every chunk.
			base := fmt.Sprintf("%sblob-%04d", prefix, blobs)
			blobs++
			ops, err := workload.ChunkOps(rng, base, load.blobSize, load.blobChunk)
			if err != nil {
				return 0, err
			}
			if err := flushPuts(); err != nil {
				return 0, err
			}
			for _, op := range ops {
				fp.Write([]byte(op.Key))
				if err := addPut(op.Key, op.Value); err != nil {
					return 0, err
				}
			}
			if err := flushPuts(); err != nil {
				return 0, err
			}
			continue
		}
		op := gen.Next()
		op.Key = prefix + op.Key
		fp.Write([]byte(op.Key))
		switch op.Kind {
		case workload.Put:
			if err := addPut(op.Key, op.Value); err != nil {
				return 0, err
			}
		case workload.Scan:
			gets = append(gets, scanKeys(op.Key, op.ScanLen)...)
			if len(gets) >= batchSize {
				if err := flushGets(); err != nil {
					return 0, err
				}
			}
		default: // Get (the scenarios use no deletes)
			gets = append(gets, op.Key)
			if len(gets) >= batchSize {
				if err := flushGets(); err != nil {
					return 0, err
				}
			}
		}
	}
	if err := flushPuts(); err != nil {
		return 0, err
	}
	if err := flushGets(); err != nil {
		return 0, err
	}
	return fp.Sum64(), nil
}

// scanKeys expands a scan anchor into its n consecutive keys by
// incrementing the key's trailing decimal index (the generators all
// emit fixed-width numeric suffixes, so order is lexical).
func scanKeys(key string, n int) []string {
	i := len(key)
	for i > 0 && key[i-1] >= '0' && key[i-1] <= '9' {
		i--
	}
	if i == len(key) || n < 1 {
		return []string{key}
	}
	head, digits := key[:i], key[i:]
	idx, err := strconv.Atoi(digits)
	if err != nil {
		return []string{key}
	}
	out := make([]string, n)
	for j := range out {
		out[j] = fmt.Sprintf("%s%0*d", head, len(digits), idx+j)
	}
	return out
}

// quotaSigmaOf is the balancer's convergence metric: relative stddev of
// capacity-normalized per-snode quotas.
func quotaSigmaOf(loads []dbdht.SnodeLoad) float64 {
	if len(loads) == 0 {
		return 0
	}
	mean := 0.0
	norm := make([]float64, len(loads))
	for i, l := range loads {
		norm[i] = l.Quota / l.Capacity
		mean += norm[i]
	}
	mean /= float64(len(norm))
	if mean == 0 {
		return 0
	}
	sum := 0.0
	for _, q := range norm {
		d := q - mean
		sum += d * d
	}
	return math.Sqrt(sum/float64(len(norm))) / mean
}

// scnRecord is the BENCH_nemesis_<name>.json shape.
type scnRecord struct {
	Scenario    string              `json:"scenario"`
	Title       string              `json:"title"`
	Date        string              `json:"date"`
	Go          string              `json:"go"`
	Seed        int64               `json:"seed"`
	Fingerprint string              `json:"key_stream_fingerprint"`
	Nemesis     []string            `json:"nemesis"`
	Metrics     map[string]float64  `json:"metrics"`
	Invariants  []invariant.Verdict `json:"invariants"`
	Pass        bool                `json:"pass"`
}

func writeScenarioRecord(sc scenario, seed int64, fingerprint uint64, verdicts []invariant.Verdict, pass bool, dir string, metrics map[string]float64) error {
	var sched []string
	for _, ev := range sc.nemesis {
		sched = append(sched, fmt.Sprintf("t=%v %s", ev.at, ev.desc))
	}
	rec := scnRecord{
		Scenario: sc.name, Title: sc.title,
		Date: time.Now().Format("2006-01-02"),
		Go:   runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		Seed: seed, Fingerprint: fmt.Sprintf("%016x", fingerprint),
		Nemesis: sched, Metrics: metrics, Invariants: verdicts, Pass: pass,
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_nemesis_"+sc.name+".json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  record written to %s\n", path)
	return nil
}
