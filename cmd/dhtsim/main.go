// Command dhtsim regenerates the evaluation of Rufino et al. (IPDPS 2004):
// every figure of §4 is reproduced as a text table (or CSV) from the same
// simulations the paper describes — 1024 consecutive vnode creations,
// metrics sampled after each, averaged over 100 seeded runs.
//
// Usage:
//
//	dhtsim -exp fig4            # σ̄(Q_v) for Pmin=Vmin ∈ {8..128}
//	dhtsim -exp fig5            # θ tradeoff, minimum at Vmin=32
//	dhtsim -exp fig6            # σ̄(Q_v), Pmin=32, Vmin ∈ {8..512}
//	dhtsim -exp fig7            # G_real vs G_ideal, Pmin=Vmin=32
//	dhtsim -exp fig8            # σ̄(Q_g), Pmin=Vmin=32
//	dhtsim -exp fig9            # local vs Consistent Hashing
//	dhtsim -exp stability       # §4.1.1: plateau stable out to 8192 vnodes
//	dhtsim -exp ratio           # §4.1.1: ~30% σ̄ drop per doubling
//	dhtsim -exp hetero          # weighted nodes: model vs weighted CH
//	dhtsim -exp skew            # live balancer under a 10× hot-spot write skew
//	dhtsim -exp crash           # crash-and-recover: R=2 replication under a kill
//	dhtsim -exp restart         # durability: kill -9 one snode (R=1) and replay its WAL
//	dhtsim -exp failover        # self-healing: primary killed under sustained writes, replicas promote
//	dhtsim -exp trace           # observability: traced MPut with latency tails and a span dump
//	dhtsim -exp partition       # nemesis: 2s symmetric partition + heal, invariants machine-checked
//	dhtsim -exp slowlink        # nemesis: 250ms±50ms delay + 5% drop between snode halves
//	dhtsim -exp slowdisk        # nemesis: slow and failing fsyncs under durable writes
//	dhtsim -exp ycsb            # YCSB-B mix with scans and chunked blobs, open-loop paced
//	dhtsim -exp all             # everything above
//
// Flags -runs, -vnodes, -seed, -sample scale the effort; the defaults match
// the paper (100 runs × 1024 vnodes) with sparse sampling for readable
// tables.  -csv emits machine-readable output instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"dbdht"
	"dbdht/internal/cluster"
	"dbdht/internal/metrics"
	"dbdht/internal/sim"
	"dbdht/internal/viz"
)

// expCtx is what every experiment runs with: the simulation options,
// the chosen table printer, and where scenario BENCH records go.
type expCtx struct {
	o        sim.Options
	print    printFn
	benchDir string
}

// experiment is one -exp entry.  The registry below is the single
// source of truth for experiment names: dispatch, validation, and the
// usage text all iterate it, so a new experiment cannot be reachable
// but unlisted (or listed but unreachable).
type experiment struct {
	name, desc string
	run        func(expCtx) error
}

var experiments = []experiment{
	{"fig4", "σ̄(Q_v) for Pmin=Vmin ∈ {8..128}", func(e expCtx) error { return fig4(e.o, e.print) }},
	{"fig5", "θ tradeoff, minimum at Vmin=32", func(e expCtx) error { return fig5(e.o) }},
	{"fig6", "σ̄(Q_v), Pmin=32, Vmin ∈ {8..512}", func(e expCtx) error { return fig6(e.o, e.print) }},
	{"fig7", "G_real vs G_ideal, Pmin=Vmin=32", func(e expCtx) error { return fig7(e.o, e.print) }},
	{"fig8", "σ̄(Q_g), Pmin=Vmin=32", func(e expCtx) error { return fig8(e.o, e.print) }},
	{"fig9", "local vs Consistent Hashing", func(e expCtx) error { return fig9(e.o, e.print) }},
	{"stability", "§4.1.1: plateau stable out to 8192 vnodes", func(e expCtx) error { return stability(e.o, e.print) }},
	{"ratio", "§4.1.1: ~30% σ̄ drop per doubling", func(e expCtx) error { return ratio(e.o) }},
	{"hetero", "weighted nodes: model vs weighted CH", func(e expCtx) error { return hetero(e.o) }},
	{"skew", "live balancer under a 10× hot-spot write skew", func(e expCtx) error { return skew(e.o) }},
	{"crash", "crash-and-recover: R=2 replication under a kill", func(e expCtx) error { return crash(e.o) }},
	{"restart", "durability: kill -9 one snode (R=1) and replay its WAL", func(e expCtx) error { return restart(e.o) }},
	{"failover", "self-healing: primary killed under sustained writes", func(e expCtx) error { return failover(e.o) }},
	{"trace", "observability: traced MPut with latency tails", func(e expCtx) error { return traceDemo(e.o.Seed) }},
	{"partition", "nemesis: symmetric partition + heal under zipfian writes", func(e expCtx) error {
		return runScenario(partitionScenario(), e.o.Seed, e.benchDir)
	}},
	{"slowlink", "nemesis: slow + lossy link between snode halves", func(e expCtx) error {
		return runScenario(slowlinkScenario(), e.o.Seed, e.benchDir)
	}},
	{"slowdisk", "nemesis: slow and failing fsyncs under durable writes", func(e expCtx) error {
		return runScenario(slowdiskScenario(), e.o.Seed, e.benchDir)
	}},
	{"ycsb", "YCSB-B mix with scans and chunked blobs, open-loop paced", func(e expCtx) error {
		return runScenario(ycsbScenario(), e.o.Seed, e.benchDir)
	}},
}

// experimentNames lists every registered -exp value, in order.
func experimentNames() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return names
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: "+strings.Join(experimentNames(), " ")+" all")
		runs     = flag.Int("runs", 100, "independent runs to average (paper: 100)")
		vnodes   = flag.Int("vnodes", 1024, "consecutive vnode creations per run (paper: 1024)")
		seed     = flag.Int64("seed", 1, "base seed; run i uses seed+i")
		sample   = flag.Int("sample", 64, "print every k-th step (metrics are still computed each step)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		plot     = flag.Bool("plot", false, "render an ASCII chart of each figure after its table")
		benchDir = flag.String("bench-dir", ".", "directory nemesis scenarios write their BENCH_*.json records to")
	)
	flag.Parse()
	if *exp != "all" {
		known := false
		for _, e := range experiments {
			if e.name == *exp {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "dhtsim: unknown experiment %q\nvalid experiments: %s all\n",
				*exp, strings.Join(experimentNames(), " "))
			os.Exit(2)
		}
	}
	printer := tablePrinter
	if *csv {
		printer = csvPrinter
	}
	if *plot {
		base := printer
		printer = func(title, xlabel string, series []metrics.Series, percent bool) {
			base(title, xlabel, series, percent)
			chart, err := viz.Render(title, series, viz.Options{Percent: percent})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dhtsim: plot: %v\n", err)
				return
			}
			fmt.Println(chart)
		}
	}
	ctx := expCtx{
		o:        sim.Options{Runs: *runs, Vnodes: *vnodes, Seed: *seed, SampleEvery: *sample},
		print:    printer,
		benchDir: *benchDir,
	}
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		if err := e.run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dhtsim: %s: %v\n", e.name, err)
			os.Exit(1)
		}
	}
}

// printFn renders a family of series sharing one x axis.
type printFn func(title, xlabel string, series []metrics.Series, percent bool)

func tablePrinter(title, xlabel string, series []metrics.Series, percent bool) {
	fmt.Printf("\n== %s ==\n", title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := []string{xlabel}
	for _, s := range series {
		header = append(header, s.Label)
	}
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for i, x := range series[0].X {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range series {
			v := s.Y[i]
			if percent {
				row = append(row, fmt.Sprintf("%.2f", 100*v))
			} else {
				row = append(row, fmt.Sprintf("%.2f", v))
			}
		}
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
}

func csvPrinter(title, xlabel string, series []metrics.Series, percent bool) {
	fmt.Printf("# %s\n", title)
	header := []string{xlabel}
	for _, s := range series {
		header = append(header, s.Label)
	}
	fmt.Println(strings.Join(header, ","))
	for i, x := range series[0].X {
		row := []string{fmt.Sprintf("%d", x)}
		for _, s := range series {
			v := s.Y[i]
			if percent {
				v *= 100
			}
			row = append(row, fmt.Sprintf("%.4f", v))
		}
		fmt.Println(strings.Join(row, ","))
	}
}

func fig4(o sim.Options, print printFn) error {
	var series []metrics.Series
	for _, pv := range []int{8, 16, 32, 64, 128} {
		s, err := sim.LocalQuality(pv, pv, o)
		if err != nil {
			return err
		}
		s.Label = fmt.Sprintf("(Pmin,Vmin)=(%d,%d)", pv, pv)
		series = append(series, s)
	}
	print("Figure 4: quality of the balancement σ̄(Qv) [%], Pmin=Vmin", "V", series, true)
	return nil
}

func fig5(o sim.Options) error {
	pts, err := sim.Theta([]int{8, 16, 32, 64, 128}, 0.5, o)
	if err != nil {
		return err
	}
	fmt.Printf("\n== Figure 5: θ tradeoff (α=β=0.5) ==\n")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Vmin\tσ̄(Qv) at V=end [%]\tθ")
	best := pts[0]
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%.2f\t%.3f\n", p.Vmin, 100*p.Sigma, p.Theta)
		if p.Theta < best.Theta {
			best = p
		}
	}
	w.Flush()
	fmt.Printf("θ minimizes at Vmin=%d (paper: 32)\n", best.Vmin)
	return nil
}

func fig6(o sim.Options, print printFn) error {
	var series []metrics.Series
	for _, vmin := range []int{8, 16, 32, 64, 128, 256, 512} {
		s, err := sim.LocalQuality(32, vmin, o)
		if err != nil {
			return err
		}
		s.Label = fmt.Sprintf("Vmin=%d", vmin)
		series = append(series, s)
	}
	print("Figure 6: σ̄(Qv) [%], Pmin=32", "V", series, true)
	return nil
}

func fig7(o sim.Options, print printFn) error {
	ge, err := sim.Groups(32, 32, o)
	if err != nil {
		return err
	}
	print("Figure 7: evolution of the number of groups, Pmin=Vmin=32", "V",
		[]metrics.Series{ge.Real, ge.Ideal}, false)
	return nil
}

func fig8(o sim.Options, print printFn) error {
	ge, err := sim.Groups(32, 32, o)
	if err != nil {
		return err
	}
	print("Figure 8: balancement between groups σ̄(Qg) [%], Pmin=Vmin=32", "V",
		[]metrics.Series{ge.Quality}, true)
	return nil
}

func fig9(o sim.Options, print printFn) error {
	var series []metrics.Series
	for _, k := range []int{32, 64} {
		s, err := sim.CHQuality(k, o)
		if err != nil {
			return err
		}
		s.Label = fmt.Sprintf("CH %d pts/node", k)
		series = append(series, s)
	}
	for _, vmin := range []int{32, 64, 128, 256, 512} {
		s, err := sim.LocalQuality(32, vmin, o)
		if err != nil {
			return err
		}
		s.Label = fmt.Sprintf("local Vmin=%d", vmin)
		series = append(series, s)
	}
	print("Figure 9: σ̄(Qn) [%], local approach (Pmin=32, 1 vnode/node) vs Consistent Hashing", "N", series, true)
	return nil
}

func stability(o sim.Options, print printFn) error {
	// §4.1.1: "this observation was confirmed by additional tests made with
	// 8192 vnodes."  Scale runs down to keep the default invocation quick.
	o.Vnodes = 8192
	if o.Runs > 20 {
		o.Runs = 20
	}
	if o.SampleEvery < 256 {
		o.SampleEvery = 256
	}
	s, err := sim.LocalQuality(32, 32, o)
	if err != nil {
		return err
	}
	s.Label = "(Pmin,Vmin)=(32,32)"
	print("Stability check (§4.1.1): σ̄(Qv) [%] out to 8192 vnodes", "V", []metrics.Series{s}, true)
	return nil
}

func ratio(o sim.Options) error {
	vmins := []int{8, 16, 32, 64, 128}
	plateaus, ratios, err := sim.PlateauRatio(vmins, 0.25, o)
	if err != nil {
		return err
	}
	fmt.Printf("\n== §4.1.1: σ̄ drop per (Pmin,Vmin) doubling (paper: \"nearly 30%%\") ==\n")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Pmin=Vmin\tplateau σ̄ [%]\tratio to previous")
	for i, vm := range vmins {
		if i == 0 {
			fmt.Fprintf(w, "%d\t%.2f\t-\n", vm, 100*plateaus[i])
		} else {
			fmt.Fprintf(w, "%d\t%.2f\t%.2f\n", vm, 100*plateaus[i], ratios[i-1])
		}
	}
	w.Flush()
	return nil
}

func skew(o sim.Options) error {
	// §5/§6 caveat made quantitative: the model balances quotas, which
	// balances *load* only under uniform access.
	runs := o.Runs
	if runs > 10 {
		runs = 10
	}
	uniform, zipf, err := sim.AccessSkew(32, 32, 256, 20000, 100000, 1.2,
		sim.Options{Runs: runs, Vnodes: 1, Seed: o.Seed})
	if err != nil {
		return err
	}
	fmt.Printf("\n== Access skew (future work §6): per-vnode load imbalance, 256 vnodes ==\n")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workload\tσ̄(accesses) [%]\thottest vnode share [%]\tσ̄(Qv) [%]")
	fmt.Fprintf(w, "uniform\t%.1f\t%.2f\t%.2f\n", 100*uniform.SigmaAccess, 100*uniform.HottestShare, 100*uniform.SigmaQuota)
	fmt.Fprintf(w, "zipf s=1.2\t%.1f\t%.2f\t%.2f\n", 100*zipf.SigmaAccess, 100*zipf.HottestShare, 100*zipf.SigmaQuota)
	w.Flush()
	return skewLive(o.Seed)
}

// skewLive drives the autonomous balancer on a *live* cluster: four
// snodes with 1:4 heterogeneous capacities start equally enrolled, a
// 10× hot-spot write workload runs continuously, and balancer rounds
// migrate partitions (chunked, live) until the capacity-normalized
// per-snode quota deviation converges — under sustained writes, with
// zero freeze-timeout write failures and zero acknowledged-write loss.
func skewLive(seed int64) error {
	fmt.Printf("\n== Live balancer under a 10× hot-spot write skew, capacities 1:1:4:4 ==\n")
	c, err := dbdht.NewCluster(dbdht.ClusterOptions{
		Pmin: 32, Vmin: 8, Seed: seed,
		RPCTimeout:   10 * time.Second,
		LoadInterval: 25 * time.Millisecond,
		Balance:      dbdht.BalanceConfig{QuotaDeviation: 0.2, MaxMovesPerRound: 2},
	})
	if err != nil {
		return err
	}
	defer c.Close()
	for _, w := range []float64{1, 1, 4, 4} {
		if _, err := c.AddSnodeWithCapacity(w); err != nil {
			return err
		}
	}
	ids := c.Snodes()
	for i := 0; i < 16; i++ { // equal enrollment: wrong for 1:4 capacities
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			return err
		}
	}
	const n = 20000
	items := make([]dbdht.KV, n)
	for i := range items {
		items[i] = dbdht.KV{Key: fmt.Sprintf("skew-key-%05d", i), Value: []byte(fmt.Sprintf("val-%05d", i))}
	}
	results, err := c.MPut(items)
	if err != nil {
		return err
	}
	acked := 0
	for _, r := range results {
		if r.OK() {
			acked++
		}
	}

	// Hot-spot writers: 90% of writes hammer the hottest 10% of a key
	// range disjoint from the preload, so the final readability check of
	// the preload keys genuinely detects acknowledged-write loss (a
	// rewritten key could mask a drop).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var writeErrs, writesOK int64
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch := make([]dbdht.KV, 64)
				for j := range batch {
					idx := (r*64 + j*7) % (n / 10) // hot subset
					if j%10 == 0 {
						idx = (r*64 + j*13) % n // 10% of ops roam the full set
					}
					k := fmt.Sprintf("skew-hot-%05d", idx)
					batch[j] = dbdht.KV{Key: k, Value: []byte("h-" + k)}
				}
				res, err := c.MPut(batch)
				if err != nil {
					continue
				}
				for _, br := range res {
					if br.OK() {
						atomic.AddInt64(&writesOK, 1)
					} else {
						atomic.AddInt64(&writeErrs, 1)
					}
				}
				r++
			}
		}(g)
	}

	first, err := c.BalanceNow()
	if err != nil {
		return err
	}
	last := first
	rounds := 1
	for ; rounds < 40 && last.Sigma > 0.2; rounds++ {
		if last, err = c.BalanceNow(); err != nil {
			return err
		}
	}
	close(stop)
	wg.Wait()

	// Every acknowledged preload key must still be readable.
	keys := make([]string, n)
	for i := range items {
		keys[i] = items[i].Key
	}
	reads, err := c.MGet(keys)
	if err != nil {
		return err
	}
	readable := 0
	for _, r := range reads {
		if r.OK() && r.Found {
			readable++
		}
	}
	st := c.StatsTotal()
	bs := c.BalancerStats()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "σ̄ before [%]\tσ̄ after [%]\trounds\tmoves\tpartitions migrated\tchunks\tfreeze timeouts\twrites ok/failed\treadable [%]")
	fmt.Fprintf(w, "%.1f\t%.1f\t%d\t%d\t%d\t%d\t%d\t%d/%d\t%.2f\n",
		100*first.Sigma, 100*last.Sigma, rounds, bs.Moves,
		st.PartitionsSent, st.ChunksSent, st.FreezeTimeouts,
		writesOK, writeErrs, 100*float64(readable)/float64(acked))
	w.Flush()
	if st.FreezeTimeouts != 0 {
		return fmt.Errorf("skew: %d writes hit FreezeTimeout during live migration", st.FreezeTimeouts)
	}
	return nil
}

// crash runs the crash-and-recover scenario on a *live* cluster: with
// R=2 replication, load a key set, kill one snode abruptly, and measure
// how many acknowledged keys stay readable (failover reads), then wait
// for anti-entropy to re-establish R copies on the survivors and measure
// again.  With R=1 the same kill loses every key the dead snode owned —
// run both to see the difference.
func crash(o sim.Options) error {
	fmt.Printf("\n== Crash and recover: 8 snodes, 32 vnodes, 20000 keys, one snode killed ==\n")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "R\tacked keys\treadable after crash [%]\treadable after repair [%]\tfailover reads\trepairs")
	for _, r := range []int{1, 2} {
		if err := crashRun(w, r, o.Seed); err != nil {
			return err
		}
	}
	w.Flush()
	return nil
}

func crashRun(w io.Writer, r int, seed int64) error {
	c, err := dbdht.NewCluster(dbdht.ClusterOptions{
		Pmin: 32, Vmin: 8, Seed: seed, Replicas: r,
		AntiEntropyInterval: 50 * time.Millisecond,
		RPCTimeout:          10 * time.Second,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	for i := 0; i < 8; i++ {
		if _, err := c.AddSnode(); err != nil {
			return err
		}
	}
	ids := c.Snodes()
	for i := 0; i < 32; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			return err
		}
	}
	const n = 20000
	keys := make([]string, n)
	items := make([]dbdht.KV, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("crash-key-%05d", i)
		items[i] = dbdht.KV{Key: keys[i], Value: []byte(fmt.Sprintf("val-%05d", i))}
	}
	results, err := c.MPut(items)
	if err != nil {
		return err
	}
	var acked []string
	for _, res := range results {
		if res.OK() {
			acked = append(acked, res.Key)
		}
	}
	if err := c.KillSnode(ids[3]); err != nil {
		return err
	}
	readable := func() (int, error) {
		res, err := c.MGet(acked)
		if err != nil {
			return 0, err
		}
		ok := 0
		for _, r := range res {
			if r.OK() && r.Found {
				ok++
			}
		}
		return ok, nil
	}
	afterCrash, err := readable()
	if err != nil {
		return err
	}
	// Let anti-entropy re-home the replica sets onto the survivors, then
	// measure again (with R=1 there is nothing to repair).
	if r > 1 {
		last := int64(-1)
		for settled := 0; settled < 3; {
			time.Sleep(100 * time.Millisecond)
			if reps := c.StatsTotal().ReplRepairs; reps == last {
				settled++
			} else {
				last = reps
				settled = 0
			}
		}
	}
	afterRepair, err := readable()
	if err != nil {
		return err
	}
	st := c.StatsTotal()
	fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\t%d\t%d\n", r, len(acked),
		100*float64(afterCrash)/float64(len(acked)),
		100*float64(afterRepair)/float64(len(acked)),
		st.FailoverReads, st.ReplRepairs)
	return nil
}

// restart runs the durability acceptance scenario on a *live* cluster:
// a single snode (R=1 — no replication safety net) journaling to disk
// with group-commit fsync is loaded with keys, killed abruptly (its
// WAL's userspace buffer is abandoned, not flushed, simulating process
// death), and restarted from snapshot + log tail.  Zero acknowledged
// writes may be lost.  A second pass snapshots mid-run, so recovery
// stitches snapshot and WAL tail together.
func restart(o sim.Options) error {
	fmt.Printf("\n== Restart recovery: 1 snode, R=1, fsync=batch, kill -9 then restart ==\n")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "phase\tacked keys\treadable after restart [%]\twal records replayed\ttorn bytes cut")
	for _, snapshotted := range []bool{false, true} {
		if err := restartRun(w, o.Seed, snapshotted); err != nil {
			return err
		}
	}
	w.Flush()
	return nil
}

func restartRun(w io.Writer, seed int64, snapshotted bool) error {
	dir, err := os.MkdirTemp("", "dbdht-restart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	c, err := dbdht.NewCluster(dbdht.ClusterOptions{
		Pmin: 32, Vmin: 8, Seed: seed,
		RPCTimeout: 10 * time.Second,
		Durability: dbdht.DurabilityConfig{
			Dir: dir, Fsync: dbdht.FsyncBatch, SnapshotInterval: -1,
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()
	id, err := c.AddSnode()
	if err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		if _, _, err := c.CreateVnode(id); err != nil {
			return err
		}
	}
	const n = 20000
	items := make([]dbdht.KV, n)
	for i := range items {
		items[i] = dbdht.KV{Key: fmt.Sprintf("restart-key-%05d", i), Value: []byte(fmt.Sprintf("val-%05d", i))}
	}
	half := items[:n/2]
	rest := items[n/2:]
	results, err := c.MPut(half)
	if err != nil {
		return err
	}
	var acked []string
	for _, res := range results {
		if res.OK() {
			acked = append(acked, res.Key)
		}
	}
	if snapshotted {
		// Snapshot between the two write waves: recovery must stitch the
		// snapshotted buckets and the post-snapshot WAL tail together.
		if err := c.SnapshotNow(); err != nil {
			return err
		}
	}
	if results, err = c.MPut(rest); err != nil {
		return err
	}
	for _, res := range results {
		if res.OK() {
			acked = append(acked, res.Key)
		}
	}

	if err := c.KillSnode(id); err != nil {
		return err
	}
	if err := c.RestartSnode(id); err != nil {
		return err
	}
	res, err := c.MGet(acked)
	if err != nil {
		return err
	}
	want := make(map[string]string, n)
	for _, it := range items {
		want[it.Key] = string(it.Value)
	}
	readable := 0
	for _, r := range res {
		// Found alone is not enough: recovery must bring back the VALUE
		// that was acknowledged, byte for byte.
		if r.OK() && r.Found && string(r.Value) == want[r.Key] {
			readable++
		}
	}
	wst := c.WALStats()
	phase := "wal only"
	if snapshotted {
		phase = "snapshot + wal tail"
	}
	fmt.Fprintf(w, "%s\t%d\t%.2f\t%d\t%d\n", phase, len(acked),
		100*float64(readable)/float64(len(acked)), wst.Replayed, wst.TornBytes)
	if readable != len(acked) {
		return fmt.Errorf("restart: lost %d of %d acknowledged writes", len(acked)-readable, len(acked))
	}
	return nil
}

// failover runs the self-healing acceptance scenario: a durable R=2
// cluster takes a sustained stream of batched writes while one primary
// snode is killed abruptly.  The surviving replicas must elect and
// promote new primaries automatically — no operator RestartSnode — so
// the write stream resumes within a bounded blackout window (< 2s) and
// every acknowledged write stays readable.
func failover(o sim.Options) error {
	fmt.Printf("\n== Automatic failover: 6 snodes, 24 vnodes, R=2, fsync=batch, primary killed under sustained MPut ==\n")
	dir, err := os.MkdirTemp("", "dbdht-failover-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	c, err := dbdht.NewCluster(dbdht.ClusterOptions{
		Pmin: 32, Vmin: 8, Seed: o.Seed, Replicas: 2,
		RPCTimeout:          5 * time.Second,
		AntiEntropyInterval: 25 * time.Millisecond,
		Durability: dbdht.DurabilityConfig{
			Dir: dir, Fsync: dbdht.FsyncBatch, SnapshotInterval: -1,
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()
	for i := 0; i < 6; i++ {
		if _, err := c.AddSnode(); err != nil {
			return err
		}
	}
	ids := c.Snodes()
	for i := 0; i < 24; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			return err
		}
	}

	const batch = 256
	var acked []string
	seq := 0
	// writeBatch streams one batch of fresh keys; okAll reports whether
	// every key in the batch was acknowledged.  A whole-call error is
	// returned so the caller can decide whether it is fatal (before the
	// kill) or part of the blackout (after it).
	writeBatch := func() (okAll bool, err error) {
		items := make([]dbdht.KV, batch)
		for i := range items {
			k := fmt.Sprintf("failover-key-%06d", seq)
			seq++
			items[i] = dbdht.KV{Key: k, Value: []byte("val-" + k)}
		}
		res, err := c.MPut(items)
		if err != nil {
			return false, err
		}
		okAll = true
		for _, r := range res {
			if r.OK() {
				acked = append(acked, r.Key)
			} else {
				okAll = false
			}
		}
		return okAll, nil
	}

	// Warm-up: the stream must be fully healthy before the kill.
	for i := 0; i < 10; i++ {
		ok, err := writeBatch()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("failover: warm-up batch had failures before the kill")
		}
	}

	victim := ids[1]
	killAt := time.Now()
	if err := c.KillSnode(victim); err != nil {
		return err
	}
	// Keep writing through the blackout; it ends at the first of 5
	// consecutive fully-acknowledged batches (a single clean batch can
	// slip between two partitions' promotions, so one success is not
	// proof of health).  256 keys spread over the hash space make a batch
	// that misses every partition of the dead snode (~1/6 of the space)
	// vanishingly unlikely, so sustained full acks mean the promoted
	// replicas are serving writes.
	blackout := time.Duration(-1)
	deadline := time.Now().Add(10 * time.Second)
	var firstOK time.Time
	streak := 0
	for time.Now().Before(deadline) {
		ok, err := writeBatch()
		if err != nil || !ok {
			streak = 0 // whole-call failure is part of the blackout
			continue
		}
		if streak == 0 {
			firstOK = time.Now()
		}
		streak++
		if streak == 5 {
			blackout = firstOK.Sub(killAt)
			break
		}
	}
	if blackout < 0 {
		return fmt.Errorf("failover: writes did not resume within 10s of the kill")
	}

	// Zero acknowledged-write loss: every acked key must read back.
	lost := 0
	for off := 0; off < len(acked); off += 4096 {
		end := off + 4096
		if end > len(acked) {
			end = len(acked)
		}
		res, err := c.MGet(acked[off:end])
		if err != nil {
			return err
		}
		for _, r := range res {
			if !r.OK() || !r.Found {
				lost++
			}
		}
	}

	st := c.StatsTotal()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "acked keys\tblackout [ms]\telections\tpromotions\tfailover reads\tlost acked keys")
	fmt.Fprintf(w, "%d\t%.0f\t%d\t%d\t%d\t%d\n", len(acked),
		float64(blackout.Microseconds())/1000, st.Elections, st.Promotions, st.FailoverReads, lost)
	w.Flush()
	if lost > 0 {
		return fmt.Errorf("failover: lost %d of %d acknowledged writes", lost, len(acked))
	}
	if st.Promotions == 0 {
		return fmt.Errorf("failover: no replica was promoted — the kill did not exercise failover")
	}
	if blackout > 2*time.Second {
		return fmt.Errorf("failover: write blackout %v exceeds the 2s acceptance window", blackout)
	}
	return nil
}

func hetero(o sim.Options) error {
	// 64 nodes with a 1/2/4 capacity mix (base-model feature (a)).
	weights := make([]int, 64)
	for i := range weights {
		weights[i] = 1 << (i % 3)
	}
	local, consistent, err := sim.HeteroQuality(weights, 32, 32, 32, o)
	if err != nil {
		return err
	}
	fmt.Printf("\n== Heterogeneous enrollment: σ̄ of weight-normalized node shares [%%] ==\n")
	fmt.Printf("local approach (1 vnode per weight unit): %.2f\n", 100*local)
	fmt.Printf("weighted Consistent Hashing (32 pts/weight): %.2f\n", 100*consistent)
	return nil
}

// traceDemo is the observability scenario: a 3-snode R=2 TCP cluster with
// 100% trace sampling serves a batched write workload; the output reports
// keys/s alongside the p50/p95/p99 batch-RPC latency from the new
// histograms, then dumps one MPut trace span by span so the whole path —
// client fan-out, primary serve, replica ack wait — is visible.
func traceDemo(seed int64) error {
	fmt.Printf("\n== Traced MPut: 3 snodes, R=2, TCP fabric, 100%% sampling ==\n")
	c, err := dbdht.NewClusterTCP(dbdht.ClusterOptions{
		Pmin: 32, Vmin: 8, Seed: seed, Replicas: 2,
		RPCTimeout: 10 * time.Second, AntiEntropyInterval: time.Hour,
		TraceSample: 1,
	}, "127.0.0.1")
	if err != nil {
		return err
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.AddSnode(); err != nil {
			return err
		}
	}
	ids := c.Snodes()
	for i := 0; i < 9; i++ {
		if _, _, err := c.CreateVnode(ids[i%len(ids)]); err != nil {
			return err
		}
	}

	const batches, size = 50, 256
	items := make([]dbdht.KV, size)
	start := time.Now()
	for b := 0; b < batches; b++ {
		for j := range items {
			k := fmt.Sprintf("trace-key-%05d", (b*size+j)%4096)
			items[j] = dbdht.KV{Key: k, Value: []byte("v-" + k)}
		}
		results, err := c.MPut(items)
		if err != nil {
			return err
		}
		for _, r := range results {
			if !r.OK() {
				return fmt.Errorf("trace: MPut %q: %s", r.Key, r.Err)
			}
		}
	}
	elapsed := time.Since(start)

	lat := c.Latencies()
	us := func(q float64) float64 { return 1e6 * lat.BatchRPC.Quantile(q) }
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "batches\tkeys\tkeys/s\tbatch-RPC p50 [µs]\tp95 [µs]\tp99 [µs]")
	fmt.Fprintf(w, "%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\n",
		batches, batches*size, float64(batches*size)/elapsed.Seconds(),
		us(0.50), us(0.95), us(0.99))
	w.Flush()

	var root cluster.TraceSummary
	for _, ts := range c.Traces() {
		if ts.Name == "op.mput" {
			root = ts
			break
		}
	}
	if root.TraceID == 0 {
		return fmt.Errorf("trace: no op.mput trace recorded at 100%% sampling")
	}
	spans := c.Trace(root.TraceID)
	fmt.Printf("\ntrace %x — %s, %d spans, %v total:\n", root.TraceID, root.Name, len(spans), root.Duration)
	printSpanTree(spans, 0, 0)
	return nil
}

// printSpanTree renders a trace's spans as an indented tree under the
// given parent span id.
func printSpanTree(spans []cluster.Span, parent uint64, depth int) {
	for _, sp := range spans {
		if sp.Parent != parent {
			continue
		}
		fmt.Printf("  %s%-18s snode %-3d %10v  %s\n",
			strings.Repeat("  ", depth), sp.Name, int(sp.Snode), sp.Duration, sp.Outcome)
		printSpanTree(spans, sp.SpanID, depth+1)
	}
}
